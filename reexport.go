package inkfuse

import (
	"io"

	"inkfuse/internal/algebra"
	"inkfuse/internal/core"
	"inkfuse/internal/exec"
	"inkfuse/internal/flight"
	"inkfuse/internal/ir"
	"inkfuse/internal/metrics"
	"inkfuse/internal/obs"
	"inkfuse/internal/plancache"
	"inkfuse/internal/sql"
	"inkfuse/internal/stats"
	"inkfuse/internal/storage"
	"inkfuse/internal/trace"
	"inkfuse/internal/types"
)

// The public API is a thin facade: aliases over the engine's internal
// packages so applications program against a single import.

// Value types and schemas.
type (
	// Kind is a physical value type.
	Kind = types.Kind
	// ColumnDesc describes a schema column.
	ColumnDesc = types.ColumnDesc
	// Schema is an ordered list of columns.
	Schema = types.Schema
)

// Kind constants.
const (
	Bool    = types.Bool
	Int32   = types.Int32
	Int64   = types.Int64
	Float64 = types.Float64
	Date    = types.Date
	String  = types.String
)

// MkDate converts a calendar date to the engine's Date representation.
func MkDate(y, m, d int) int32 { return types.MkDate(y, m, d) }

// DateString renders a Date value as YYYY-MM-DD.
func DateString(d int32) string { return types.DateString(d) }

// Storage.
type (
	// Table is an in-memory columnar table.
	Table = storage.Table
	// Catalog maps table names to tables.
	Catalog = storage.Catalog
	// Chunk is a columnar batch of tuples (also the result format).
	Chunk = storage.Chunk
	// Vector is a typed column.
	Vector = storage.Vector
)

// NewTable creates an empty columnar table.
func NewTable(name string, schema Schema) *Table { return storage.NewTable(name, schema) }

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return storage.NewCatalog() }

// Relational plans.
type (
	// Node is a relational operator.
	Node = algebra.Node
	// Expr is a scalar expression.
	Expr = algebra.Expr
	// NamedExpr is a computed column in a Map.
	NamedExpr = algebra.NamedExpr
	// AggSpec is one aggregate of a GroupBy.
	AggSpec = algebra.AggSpec
	// HashJoin joins two inputs (Build is inserted into the hash table).
	HashJoin = algebra.HashJoin
	// GroupBy aggregates (construct directly for case-insensitive keys via
	// its NoCase field; NewGroupBy covers the common case).
	GroupBy = algebra.GroupBy
	// Plan is a lowered suboperator plan.
	Plan = core.Plan
)

// Join modes.
const (
	InnerJoin     = ir.InnerJoin
	SemiJoin      = ir.SemiJoin
	LeftOuterJoin = ir.LeftOuterJoin
	AntiJoin      = ir.AntiJoin
)

// Operator constructors.
var (
	NewScan    = algebra.NewScan
	NewFilter  = algebra.NewFilter
	NewMap     = algebra.NewMap
	NewGroupBy = algebra.NewGroupBy
	NewProject = algebra.NewProject
	NewOrderBy = algebra.NewOrderBy
)

// Expression constructors.
var (
	Col     = algebra.Col
	I32     = algebra.I32
	I64     = algebra.I64
	F64     = algebra.F64
	Str     = algebra.Str
	DateLit = algebra.DateLit
	Add     = algebra.Add
	Sub     = algebra.Sub
	Mul     = algebra.Mul
	Div     = algebra.Div
	Lt      = algebra.Lt
	Le      = algebra.Le
	Eq      = algebra.Eq
	Ne      = algebra.Ne
	Ge      = algebra.Ge
	Gt      = algebra.Gt
	Between = algebra.Between
	And     = algebra.And
	Or      = algebra.Or
	Not     = algebra.Not
	Like    = algebra.Like
	NotLike = algebra.NotLike
	In      = algebra.In
	Case    = algebra.Case
	CastTo  = algebra.Cast
)

// Aggregate constructors.
var (
	Sum     = algebra.Sum
	Count   = algebra.Count
	CountIf = algebra.CountIf
	MinOf   = algebra.MinOf
	MaxOf   = algebra.MaxOf
	Avg     = algebra.Avg
)

// Execution.
type (
	// Options configures execution (backend, workers, chunk/morsel sizes,
	// compile-latency model).
	Options = exec.Options
	// Backend selects the execution strategy.
	Backend = exec.Backend
	// LatencyModel simulates machine-code compilation latency.
	LatencyModel = exec.LatencyModel
	// Result is a completed query with its statistics.
	Result = exec.Result
	// Stats are the engine-internal execution counters.
	Stats = stats.Counters
	// QueryError is a query-scoped failure carrying the failing pipeline,
	// backend, worker and morsel; it wraps one of the typed errors below.
	QueryError = exec.QueryError
)

// Observability: per-query execution traces (Options.Trace → Result.Trace)
// and the engine-wide metrics registry (see MetricsText / MetricsSnapshot;
// also exported via expvar as "inkfuse").
type (
	// QueryTrace is one query's execution trace.
	QueryTrace = trace.Query
	// PipelineTrace is the trace of one pipeline within a query.
	PipelineTrace = trace.Pipeline
	// WorkerTrace is one worker's share of a pipeline trace.
	WorkerTrace = trace.Worker
	// EWMASample is one hybrid routing decision with the throughput
	// estimates that drove it.
	EWMASample = trace.EWMASample
	// SubOpProf is one suboperator's sampled profile within a pipeline
	// trace (Options.Profile → PipelineTrace.SubOps): calls, tuples and
	// nanoseconds attributed over the sampled chunks.
	SubOpProf = trace.SubOpProf
	// MetricsValues is a snapshot of the engine-wide metrics registry.
	MetricsValues = metrics.Snapshot
)

// Typed query-failure causes (match with errors.Is). A failing query returns
// one of these — wrapped in a *QueryError when the failure has a location —
// while the process and concurrently running queries are unaffected.
var (
	// ErrCanceled: the RunContext/ExecuteContext context was canceled.
	ErrCanceled = exec.ErrCanceled
	// ErrDeadlineExceeded: the context deadline passed mid-query.
	ErrDeadlineExceeded = exec.ErrDeadlineExceeded
	// ErrMemoryBudget: the query crossed Options.MemoryBudget.
	ErrMemoryBudget = exec.ErrMemoryBudget
	// ErrPanic: a panic in query execution was recovered and isolated.
	ErrPanic = exec.ErrPanic
)

// Backends.
const (
	BackendVectorized = exec.BackendVectorized
	BackendCompiling  = exec.BackendCompiling
	BackendROF        = exec.BackendROF
	BackendHybrid     = exec.BackendHybrid
)

// Latency models (see DESIGN.md §2 for calibration).
var (
	LatencyC        = exec.LatencyC
	LatencyLLVM     = exec.LatencyLLVM
	LatencyFastPath = exec.LatencyFastPath
	LatencyNone     = exec.LatencyNone
)

// ParseBackend converts a backend name ("vectorized", "compiling", "rof",
// "hybrid") to a Backend.
func ParseBackend(s string) (Backend, error) { return exec.ParseBackend(s) }

// SQL text frontend (see CompileSQL / RunSQL in inkfuse.go).
type (
	// SQLStatement is a parsed, bound SELECT: relational tree, output
	// columns, parameters and the plan-cache fingerprint.
	SQLStatement = sql.Statement
	// SQLPosition is a 1-based line/column location in SQL source text.
	SQLPosition = sql.Position
	// SQLParseError is a syntax error with its source position.
	SQLParseError = sql.ParseError
	// SQLBindError is a semantic error (unknown column, kind mismatch, …)
	// with its source position.
	SQLBindError = sql.BindError
	// PlanCache is a fingerprint-keyed LRU of lowered plans and their
	// compiled artifacts (see internal/plancache for the lease protocol).
	PlanCache = plancache.Cache
	// PreparedPlan is one cached plan instance leased from a PlanCache.
	PreparedPlan = plancache.Prepared
	// PlanCacheConfig bounds a PlanCache.
	PlanCacheConfig = plancache.Config
)

// SQLErrorPosition extracts the source location from a CompileSQL error
// (false for errors that carry none).
func SQLErrorPosition(err error) (SQLPosition, bool) { return sql.ErrorPosition(err) }

// NewPlanCache builds a plan/artifact cache; zero config uses the defaults
// (64 entries, 64 MiB artifact budget).
func NewPlanCache(cfg PlanCacheConfig) *PlanCache { return plancache.New(cfg) }

// Engine flight recorder and canonical query log (see internal/flight and
// internal/obs): the always-on observability layer inkserve exposes at
// GET /debug/flight and emits as one wide slog event per query.
type (
	// FlightEvent is one decoded flight-recorder event.
	FlightEvent = flight.Event
	// FlightKind classifies a flight-recorder event.
	FlightKind = flight.Kind
	// QueryEvent is the canonical wide event of one query completion.
	QueryEvent = obs.QueryEvent
	// TailSampler decides which canonical query events are logged: the
	// interesting tail always, plain successes at SuccessRate.
	TailSampler = obs.TailSampler
)

// FlightSnapshot returns the engine flight recorder's surviving events in
// chronological order.
func FlightSnapshot() []FlightEvent { return flight.Default.Snapshot() }

// FlightRecent returns the last n flight events of one query, interleaved
// with engine-wide events (plan cache, drain); query 0 matches everything.
func FlightRecent(n int, query uint64) []FlightEvent { return flight.Default.Recent(n, query) }

// FlightDump writes the human-readable flight-recorder dump to w.
func FlightDump(w io.Writer) { flight.Default.Dump(w) }

module inkfuse

go 1.23

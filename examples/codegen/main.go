// Codegen demo: the generated-code artifacts of the paper's figures.
//
// It prints (1) the fused C a compiling engine generates for
// SELECT (a+b)-c FROM r (Fig 3, left), (2) the vectorized primitives the
// same compilation stack generates for the sliced pipeline (Fig 3, right),
// (3) runtime-constant resolution for SELECT x + 42 FROM t (Fig 5), and
// (4) the key-packing suboperators of a compound-key aggregation (Fig 6).
package main

import (
	"fmt"
	"log"

	"inkfuse"
)

func main() {
	r := inkfuse.NewTable("r", inkfuse.Schema{
		{Name: "a", Kind: inkfuse.Int64},
		{Name: "b", Kind: inkfuse.Int64},
		{Name: "c", Kind: inkfuse.Int64},
	})
	r.AppendRow(int64(1), int64(2), int64(3))

	fmt.Println("=== Fig 3 (left): fused code for SELECT (a+b)-c FROM r ===")
	fig3 := inkfuse.NewProject(inkfuse.NewMap(inkfuse.NewScan(r, "a", "b", "c"),
		inkfuse.NamedExpr{As: "res", E: inkfuse.Sub(
			inkfuse.Add(inkfuse.Col("a"), inkfuse.Col("b")), inkfuse.Col("c"))}), "res")
	mustPrint(inkfuse.GeneratedC(fig3, "fig3"))

	fmt.Println("=== Fig 5: SELECT x + 42 FROM t — the 42 comes from runtime state ===")
	t := inkfuse.NewTable("t", inkfuse.Schema{{Name: "x", Kind: inkfuse.Int64}})
	t.AppendRow(int64(7))
	fig5 := inkfuse.NewProject(inkfuse.NewMap(inkfuse.NewScan(t, "x"),
		inkfuse.NamedExpr{As: "y", E: inkfuse.Add(inkfuse.Col("x"), inkfuse.I64(42))}), "y")
	mustPrint(inkfuse.GeneratedC(fig5, "fig5"))

	fmt.Println("=== Fig 6: SELECT cint, cfloat, min(cdouble) ... GROUP BY cint, cfloat ===")
	ft := inkfuse.NewTable("ft", inkfuse.Schema{
		{Name: "cint", Kind: inkfuse.Int64},
		{Name: "cfloat", Kind: inkfuse.Float64},
		{Name: "cdouble", Kind: inkfuse.Float64},
	})
	ft.AppendRow(int64(1), 2.0, 3.0)
	fig6 := inkfuse.NewGroupBy(inkfuse.NewScan(ft, "cint", "cfloat", "cdouble"),
		[]string{"cint", "cfloat"}, inkfuse.MinOf("cdouble", "min_cdouble"))
	mustPrint(inkfuse.GeneratedC(fig6, "fig6"))

	n, err := inkfuse.PrimitiveCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Fig 3 (right): the same stack generated %d vectorized primitives at startup ===\n", n)
	fmt.Printf("(%d suboperator families; run `go run ./cmd/primgen` to see all of them as C)\n",
		inkfuse.SubOperatorCount())

	// Execute fig5 to show both artifacts run.
	res, err := inkfuse.Run(fig5, "fig5", inkfuse.Options{Backend: inkfuse.BackendVectorized})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuting fig5 on the generated interpreter: x=7 -> y=%v\n", res.Chunk.Row(0)[0])
}

func mustPrint(s string, err error) {
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s)
}

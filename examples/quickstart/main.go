// Quickstart: build a small table, run an aggregation query through the
// public API, and print the result — first on the instantly-available
// vectorized interpreter, then on the hybrid backend.
package main

import (
	"fmt"
	"log"

	"inkfuse"
)

func main() {
	// A tiny sales table.
	sales := inkfuse.NewTable("sales", inkfuse.Schema{
		{Name: "region", Kind: inkfuse.String},
		{Name: "amount", Kind: inkfuse.Float64},
		{Name: "items", Kind: inkfuse.Int64},
	})
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < 100_000; i++ {
		sales.AppendRow(regions[i%4], float64(i%500)*1.25, int64(i%7+1))
	}

	// SELECT region, sum(amount), avg(amount), count(*) FROM sales
	// WHERE amount > 100 GROUP BY region ORDER BY sum(amount) DESC
	plan := inkfuse.NewOrderBy(
		inkfuse.NewGroupBy(
			inkfuse.NewFilter(
				inkfuse.NewScan(sales, "region", "amount", "items"),
				inkfuse.Gt(inkfuse.Col("amount"), inkfuse.F64(100)),
			),
			[]string{"region"},
			inkfuse.Sum("amount", "total"),
			inkfuse.Avg("amount", "avg_amount"),
			inkfuse.Count("n"),
		),
		[]string{"total"}, []bool{true}, 0,
	)

	for _, backend := range []inkfuse.Backend{inkfuse.BackendVectorized, inkfuse.BackendHybrid} {
		res, err := inkfuse.Run(plan, "quickstart", inkfuse.Options{Backend: backend})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %v backend (%v, %d rows)\n", backend, res.Wall, res.Rows())
		fmt.Printf("%-8s %14s %12s %8s\n", "region", "total", "avg", "count")
		for i := 0; i < res.Rows(); i++ {
			row := res.Chunk.Row(i)
			fmt.Printf("%-8s %14.2f %12.2f %8d\n", row[0], row[1], row[2], row[3])
		}
	}
}

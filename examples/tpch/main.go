// TPC-H runner: generate benchmark data at any scale factor and execute any
// of the paper's eight queries on any backend.
//
//	go run ./examples/tpch -q q1 -sf 0.05 -backend hybrid
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"inkfuse"
)

func main() {
	q := flag.String("q", "q1", "query: q1 q3 q4 q5 q6 q13 q14 q19, or 'all'")
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 ≈ 6M lineitem rows)")
	backendName := flag.String("backend", "hybrid", "vectorized | compiling | rof | hybrid")
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	maxRows := flag.Int("rows", 10, "result rows to print")
	flag.Parse()

	backend, err := inkfuse.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}

	gen := time.Now()
	cat := inkfuse.GenerateTPCH(*sf, 42)
	fmt.Printf("generated TPC-H SF %g in %v\n", *sf, time.Since(gen).Round(time.Millisecond))

	queries := []string{*q}
	if *q == "all" {
		queries = inkfuse.TPCHQueries()
	}
	for _, name := range queries {
		node, err := inkfuse.TPCHQuery(cat, name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := inkfuse.Run(node, name, inkfuse.Options{Backend: backend, Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s on %v: %v (compile wait %v), %d rows\n",
			name, backend, res.Wall.Round(10*time.Microsecond),
			res.Stats.CompileWait.Round(10*time.Microsecond), res.Rows())
		fmt.Println(res.Cols)
		for i := 0; i < res.Rows() && i < *maxRows; i++ {
			row := res.Chunk.Row(i)
			for j, v := range row {
				if res.Chunk.Cols[j].Kind == inkfuse.Date {
					row[j] = inkfuse.DateString(v.(int32))
				}
			}
			fmt.Printf("%v\n", row)
		}
		if res.Rows() > *maxRows {
			fmt.Printf("... (%d more rows)\n", res.Rows()-*maxRows)
		}
	}
}

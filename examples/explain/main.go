// Explain demo: how a relational plan becomes suboperator pipelines
// (paper Fig 7) and what each backend does with them.
//
//	go run ./examples/explain [-q q3] [-sf 0.01]
package main

import (
	"flag"
	"fmt"
	"log"

	"inkfuse"
)

func main() {
	q := flag.String("q", "q3", "TPC-H query to explain")
	sf := flag.Float64("sf", 0.01, "scale factor")
	flag.Parse()

	cat := inkfuse.GenerateTPCH(*sf, 42)
	node, err := inkfuse.TPCHQuery(cat, *q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s lowered to suboperator pipelines ===\n\n", *q)
	plan, err := inkfuse.Explain(node, *q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	fmt.Println("=== one execution per backend ===")
	fmt.Printf("%-12s %12s %14s %16s %16s\n",
		"backend", "wall", "compile-wait", "primitive-calls", "fused-calls")
	for _, backend := range []inkfuse.Backend{
		inkfuse.BackendVectorized, inkfuse.BackendCompiling,
		inkfuse.BackendROF, inkfuse.BackendHybrid,
	} {
		res, err := inkfuse.Run(node, *q, inkfuse.Options{Backend: backend})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v %12v %14v %16d %16d\n",
			backend, res.Wall.Round(10e3), res.Stats.CompileWait.Round(10e3),
			res.Stats.PrimitiveCalls, res.Stats.FusedCalls)
	}
	fmt.Println()
	fmt.Println("The vectorized backend resolves every suboperator above to a")
	fmt.Println("pre-generated primitive (primitive-calls); the compiling backend")
	fmt.Println("fuses each pipeline into one program (fused-calls = morsels).")

	fmt.Println()
	fmt.Println("=== EXPLAIN ANALYZE (hybrid): the same plan, with measured numbers ===")
	fmt.Println()
	out, _, err := inkfuse.ExplainAnalyze(node, *q, inkfuse.Options{Backend: inkfuse.BackendHybrid})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}

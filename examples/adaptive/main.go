// Adaptive execution demo: watch the hybrid backend hide compilation
// latency. The query starts instantly on the pre-generated vectorized
// interpreter while the fused program compiles in the background; once the
// code is ready, morsels are routed by measured tuple throughput
// (paper §V-B: 5% explore each backend, 90% exploit the faster one).
package main

import (
	"fmt"
	"log"

	"inkfuse"
)

func main() {
	cat := inkfuse.GenerateTPCH(0.05, 42)
	node, err := inkfuse.TPCHQuery(cat, "q1")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TPC-H Q1, one cold run per backend (SF 0.05):")
	fmt.Printf("%-12s %12s %14s %10s %10s\n", "backend", "wall", "compile-wait", "morsels", "routing")
	type row struct {
		backend inkfuse.Backend
		lat     inkfuse.LatencyModel
	}
	for _, r := range []row{
		{inkfuse.BackendVectorized, inkfuse.LatencyNone},
		{inkfuse.BackendCompiling, inkfuse.LatencyC},
		{inkfuse.BackendHybrid, inkfuse.LatencyC},
	} {
		lat := r.lat
		res, err := inkfuse.Run(node, "q1", inkfuse.Options{Backend: r.backend, Latency: &lat})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		total := s.MorselsCompiled + s.MorselsVectorized
		routing := "-"
		if r.backend == inkfuse.BackendHybrid {
			routing = fmt.Sprintf("jit=%d vec=%d", s.MorselsCompiled, s.MorselsVectorized)
		}
		fmt.Printf("%-12v %12v %14v %10d %10s\n",
			r.backend, res.Wall.Round(10e3), s.CompileWait.Round(10e3), total, routing)
	}

	fmt.Println()
	fmt.Println("The compiling backend pays its compile latency before the first tuple;")
	fmt.Println("the hybrid backend starts on the generated interpreter immediately and")
	fmt.Println("switches to the fused code only where its measured throughput is higher.")
}

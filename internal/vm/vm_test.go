package vm

import (
	"math"
	"testing"
	"testing/quick"

	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

func fvec(vals ...float64) *storage.Vector {
	v := storage.NewVector(types.Float64, len(vals))
	copy(v.F64, vals)
	return v
}

func ivec(vals ...int64) *storage.Vector {
	v := storage.NewVector(types.Int64, len(vals))
	copy(v.I64, vals)
	return v
}

func svec(vals ...string) *storage.Vector {
	v := storage.NewVector(types.String, len(vals))
	copy(v.Str, vals)
	return v
}

// runExpr compiles a one-expression function over the inputs and returns the
// emitted column.
func runExpr(t *testing.T, ins []ir.Var, e ir.Expr, state []any, vecs []*storage.Vector, n int) *storage.Vector {
	t.Helper()
	dst := ir.Var{ID: 100, K: e.Kind(), Name: "out"}
	f := &ir.Func{
		Name: "test",
		Ins:  ins,
		Body: []ir.Stmt{
			ir.Assign{Dst: dst, E: e},
			ir.EmitStmt{Cols: []ir.Var{dst}},
		},
		OutKinds:  []types.Kind{e.Kind()},
		NumStates: len(state),
	}
	p, err := Compile(f)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out := storage.NewChunk([]types.Kind{e.Kind()})
	ctx := NewCtx()
	if got := p.Run(ctx, state, vecs, n, out); got != n {
		t.Fatalf("emitted %d rows, want %d", got, n)
	}
	return out.Cols[0]
}

func TestArithColCol(t *testing.T) {
	a := ir.Var{ID: 1, K: types.Float64, Name: "a"}
	b := ir.Var{ID: 2, K: types.Float64, Name: "b"}
	for _, c := range []struct {
		op   ir.BinOp
		want []float64
	}{
		{ir.Add, []float64{5, 10}},
		{ir.Sub, []float64{-3, 6}},
		{ir.Mul, []float64{4, 16}},
		{ir.Div, []float64{0.25, 4}},
	} {
		out := runExpr(t, []ir.Var{a, b},
			ir.BinExpr{Op: c.op, L: ir.Ref(a), R: ir.Ref(b)},
			nil, []*storage.Vector{fvec(1, 8), fvec(4, 2)}, 2)
		if out.F64[0] != c.want[0] || out.F64[1] != c.want[1] {
			t.Fatalf("%v: got %v want %v", c.op, out.F64, c.want)
		}
	}
}

func TestArithConstSides(t *testing.T) {
	a := ir.Var{ID: 1, K: types.Int64, Name: "a"}
	state := []any{rt.ConstI64(10)}
	// col - const
	out := runExpr(t, []ir.Var{a},
		ir.BinExpr{Op: ir.Sub, L: ir.Ref(a), R: ir.ConstRef{StateID: 0, K: types.Int64}},
		state, []*storage.Vector{ivec(3, 25)}, 2)
	if out.I64[0] != -7 || out.I64[1] != 15 {
		t.Fatalf("col-const: %v", out.I64)
	}
	// const - col
	out = runExpr(t, []ir.Var{a},
		ir.BinExpr{Op: ir.Sub, L: ir.ConstRef{StateID: 0, K: types.Int64}, R: ir.Ref(a)},
		state, []*storage.Vector{ivec(3, 25)}, 2)
	if out.I64[0] != 7 || out.I64[1] != -15 {
		t.Fatalf("const-col: %v", out.I64)
	}
}

func TestCmpAllOpsProperty(t *testing.T) {
	a := ir.Var{ID: 1, K: types.Int64, Name: "a"}
	b := ir.Var{ID: 2, K: types.Int64, Name: "b"}
	f := func(x, y int64) bool {
		for op := ir.Lt; op <= ir.Gt; op++ {
			out := runExprQuick(a, b, op, x, y)
			var want bool
			switch op {
			case ir.Lt:
				want = x < y
			case ir.Le:
				want = x <= y
			case ir.Eq:
				want = x == y
			case ir.Ne:
				want = x != y
			case ir.Ge:
				want = x >= y
			case ir.Gt:
				want = x > y
			}
			if out != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func runExprQuick(a, b ir.Var, op ir.CmpOp, x, y int64) bool {
	dst := ir.Var{ID: 100, K: types.Bool}
	f := &ir.Func{Ins: []ir.Var{a, b}, Body: []ir.Stmt{
		ir.Assign{Dst: dst, E: ir.CmpExpr{Op: op, L: ir.Ref(a), R: ir.Ref(b)}},
		ir.EmitStmt{Cols: []ir.Var{dst}},
	}}
	p := MustCompile(f)
	out := storage.NewChunk([]types.Kind{types.Bool})
	p.Run(NewCtx(), nil, []*storage.Vector{ivec(x), ivec(y)}, 1, out)
	return out.Cols[0].B[0]
}

func TestStringCompare(t *testing.T) {
	a := ir.Var{ID: 1, K: types.String, Name: "a"}
	state := []any{rt.ConstStr("BUILDING")}
	out := runExpr(t, []ir.Var{a},
		ir.CmpExpr{Op: ir.Eq, L: ir.Ref(a), R: ir.ConstRef{StateID: 0, K: types.String}},
		state, []*storage.Vector{svec("BUILDING", "AUTO", "BUILDING")}, 3)
	if !out.B[0] || out.B[1] || !out.B[2] {
		t.Fatalf("string eq: %v", out.B)
	}
}

func TestLogicNotCase(t *testing.T) {
	a := ir.Var{ID: 1, K: types.Bool, Name: "a"}
	b := ir.Var{ID: 2, K: types.Bool, Name: "b"}
	bvec := func(vals ...bool) *storage.Vector {
		v := storage.NewVector(types.Bool, len(vals))
		copy(v.B, vals)
		return v
	}
	and := runExpr(t, []ir.Var{a, b}, ir.LogicExpr{Op: ir.And, L: ir.Ref(a), R: ir.Ref(b)},
		nil, []*storage.Vector{bvec(true, true, false), bvec(true, false, true)}, 3)
	if !and.B[0] || and.B[1] || and.B[2] {
		t.Fatalf("and: %v", and.B)
	}
	or := runExpr(t, []ir.Var{a, b}, ir.LogicExpr{Op: ir.Or, L: ir.Ref(a), R: ir.Ref(b)},
		nil, []*storage.Vector{bvec(false, true, false), bvec(false, false, true)}, 3)
	if or.B[0] || !or.B[1] || !or.B[2] {
		t.Fatalf("or: %v", or.B)
	}
	not := runExpr(t, []ir.Var{a}, ir.NotExpr{E: ir.Ref(a)},
		nil, []*storage.Vector{bvec(true, false)}, 2)
	if not.B[0] || !not.B[1] {
		t.Fatalf("not: %v", not.B)
	}

	// CASE with const then-arm.
	v := ir.Var{ID: 3, K: types.Float64, Name: "v"}
	state := []any{rt.ConstF64(0)}
	sel := runExpr(t, []ir.Var{a, v},
		ir.CondExpr{Cond: ir.Ref(a), Then: ir.Ref(v), Else: ir.ConstRef{StateID: 0, K: types.Float64}},
		state, []*storage.Vector{bvec(true, false), fvec(3.5, 7.5)}, 2)
	if sel.F64[0] != 3.5 || sel.F64[1] != 0 {
		t.Fatalf("case: %v", sel.F64)
	}
}

func TestCasts(t *testing.T) {
	a32 := ir.Var{ID: 1, K: types.Int32, Name: "a"}
	v32 := storage.NewVector(types.Int32, 2)
	v32.I32[0], v32.I32[1] = -5, 7
	out := runExpr(t, []ir.Var{a32}, ir.CastExpr{To: types.Int64, E: ir.Ref(a32)},
		nil, []*storage.Vector{v32}, 2)
	if out.I64[0] != -5 || out.I64[1] != 7 {
		t.Fatalf("i32->i64: %v", out.I64)
	}
	outF := runExpr(t, []ir.Var{a32}, ir.CastExpr{To: types.Float64, E: ir.Ref(a32)},
		nil, []*storage.Vector{v32}, 2)
	if outF.F64[0] != -5 {
		t.Fatalf("i32->f64: %v", outF.F64)
	}
	a64 := ir.Var{ID: 2, K: types.Int64, Name: "b"}
	outF2 := runExpr(t, []ir.Var{a64}, ir.CastExpr{To: types.Float64, E: ir.Ref(a64)},
		nil, []*storage.Vector{ivec(9)}, 1)
	if outF2.F64[0] != 9 {
		t.Fatalf("i64->f64: %v", outF2.F64)
	}
}

func TestLikeAndInList(t *testing.T) {
	s := ir.Var{ID: 1, K: types.String, Name: "s"}
	state := []any{
		&rt.LikeState{M: rt.NewLikeMatcher("PROMO%")},
		rt.NewInList("AIR", "RAIL"),
	}
	like := runExpr(t, []ir.Var{s}, ir.LikeExpr{S: ir.Ref(s), StateID: 0},
		state, []*storage.Vector{svec("PROMO TIN", "STANDARD", "PROMOX")}, 3)
	if !like.B[0] || like.B[1] || !like.B[2] {
		t.Fatalf("like: %v", like.B)
	}
	nlike := runExpr(t, []ir.Var{s}, ir.LikeExpr{S: ir.Ref(s), StateID: 0, Negate: true},
		state, []*storage.Vector{svec("PROMO TIN", "STANDARD")}, 2)
	if nlike.B[0] || !nlike.B[1] {
		t.Fatalf("notlike: %v", nlike.B)
	}
	in := runExpr(t, []ir.Var{s}, ir.InListExpr{S: ir.Ref(s), StateID: 1},
		state, []*storage.Vector{svec("AIR", "SHIP", "RAIL")}, 3)
	if !in.B[0] || in.B[1] || !in.B[2] {
		t.Fatalf("inlist: %v", in.B)
	}
}

func TestFilterCompaction(t *testing.T) {
	a := ir.Var{ID: 1, K: types.Int64, Name: "a"}
	cond := ir.Var{ID: 2, K: types.Bool, Name: "c"}
	inner := ir.Var{ID: 3, K: types.Int64, Name: "a2"}
	f := &ir.Func{
		Ins: []ir.Var{a},
		Body: []ir.Stmt{
			ir.Assign{Dst: cond, E: ir.CmpExpr{Op: ir.Gt, L: ir.Ref(a), R: ir.ConstRef{StateID: 0, K: types.Int64}}},
			ir.FilterStmt{
				Cond:   cond,
				Copies: []ir.Copy{{Dst: inner, Src: a}},
				Body:   []ir.Stmt{ir.EmitStmt{Cols: []ir.Var{inner}}},
			},
		},
		NumStates: 1,
	}
	p := MustCompile(f)
	out := storage.NewChunk([]types.Kind{types.Int64})
	n := p.Run(NewCtx(), []any{rt.ConstI64(10)}, []*storage.Vector{ivec(5, 15, 10, 30)}, 4, out)
	if n != 2 || out.Cols[0].I64[0] != 15 || out.Cols[0].I64[1] != 30 {
		t.Fatalf("filter: n=%d %v", n, out.Cols[0].I64)
	}
	// All-false filter emits nothing.
	out.Reset()
	n = p.Run(NewCtx(), []any{rt.ConstI64(100)}, []*storage.Vector{ivec(5, 15)}, 2, out)
	if n != 0 {
		t.Fatalf("all-false filter emitted %d", n)
	}
}

func TestAggPipelineEndToEnd(t *testing.T) {
	// Pack key (i64), lookup, sum + count; then verify table contents.
	key := ir.Var{ID: 1, K: types.Int64, Name: "k"}
	val := ir.Var{ID: 2, K: types.Float64, Name: "v"}
	row0 := ir.Var{ID: 3, K: types.Ptr, Name: "r0"}
	row1 := ir.Var{ID: 4, K: types.Ptr, Name: "r1"}
	row2 := ir.Var{ID: 5, K: types.Ptr, Name: "r2"}
	grp := ir.Var{ID: 6, K: types.Ptr, Name: "g"}

	layout := &rt.RowLayoutState{KeyFixed: 8}
	init := make([]byte, 16)
	agg := &rt.AggTableState{Init: init, Shards: 2, Merge: []rt.AggMerge{
		{Op: rt.MergeSumF64, Off: 0}, {Op: rt.MergeSumI64, Off: 8},
	}}
	f := &ir.Func{
		Ins: []ir.Var{key, val},
		Body: []ir.Stmt{
			ir.MakeRow{Dst: row0, StateID: 0},
			ir.PackFixed{Dst: row1, Row: row0, Region: ir.KeyRegion, StateID: 1, Val: ir.Ref(key)},
			ir.SealKey{Dst: row2, Row: row1, StateID: 0},
			ir.AggLookup{Dst: grp, Row: row2, StateID: 2},
			ir.AggUpdate{Group: grp, Fn: ir.AggSumF64, StateID: 3, Val: ir.Ref(val)},
			ir.AggUpdate{Group: grp, Fn: ir.AggCount, StateID: 4},
		},
		NumStates: 5,
	}
	state := []any{layout, &rt.OffsetState{Off: 0, Layout: layout}, agg,
		&rt.OffsetState{Off: 0}, &rt.OffsetState{Off: 8}}
	p := MustCompile(f)
	ctx := NewCtx()
	p.Run(ctx, state, []*storage.Vector{ivec(1, 2, 1, 1), fvec(1.5, 2.5, 3.5, 4.5)}, 4, nil)
	// The scheduler flushes thread-local pre-aggregation at morsel end;
	// mirror that before reading the worker's shard table.
	ctx.FlushLocalAggs()
	tbl := ctx.AggTable(agg)
	if tbl.Groups() != 2 {
		t.Fatalf("groups = %d", tbl.Groups())
	}
	if ctx.Counters.HTLocalHits != 2 {
		t.Fatalf("local hits = %d, want 2 (keys 1,1 repeat)", ctx.Counters.HTLocalHits)
	}
	if ctx.Counters.HTSpills != 2 {
		t.Fatalf("spills = %d, want 2 groups flushed", ctx.Counters.HTSpills)
	}
	for _, row := range tbl.Snapshot() {
		k := rt.GetI64(rt.RowKey(row), 0)
		sum := rt.GetF64(row, rt.RowPayloadOff(row))
		cnt := rt.GetI64(row, rt.RowPayloadOff(row)+8)
		switch k {
		case 1:
			if math.Abs(sum-9.5) > 1e-12 || cnt != 3 {
				t.Fatalf("key 1: sum=%v cnt=%d", sum, cnt)
			}
		case 2:
			if sum != 2.5 || cnt != 1 {
				t.Fatalf("key 2: sum=%v cnt=%d", sum, cnt)
			}
		default:
			t.Fatalf("unexpected key %d", k)
		}
	}
}

func buildJoinTable(keys []int64) *rt.JoinTableState {
	jt := &rt.JoinTableState{Table: rt.NewJoinTable(2)}
	for _, k := range keys {
		blob := make([]byte, 8)
		rt.PutI64(blob, 0, k)
		payload := make([]byte, 8)
		rt.PutI64(payload, 0, k*100)
		jt.Table.Insert(blob, payload, rt.Hash64(blob))
	}
	jt.Table.Seal()
	return jt
}

// probeFunc builds a probe step: pack probe key, probe, unpack build payload.
func probeFunc(mode ir.JoinMode, jtState, layoutState, offState, unpackState int) *ir.Func {
	key := ir.Var{ID: 1, K: types.Int64, Name: "k"}
	r0 := ir.Var{ID: 2, K: types.Ptr, Name: "r0"}
	r1 := ir.Var{ID: 3, K: types.Ptr, Name: "r1"}
	r2 := ir.Var{ID: 4, K: types.Ptr, Name: "r2"}
	build := ir.Var{ID: 5, K: types.Ptr, Name: "build"}
	probe := ir.Var{ID: 6, K: types.Ptr, Name: "probe"}
	matched := ir.Var{ID: 7, K: types.Bool, Name: "m"}
	pv := ir.Var{ID: 8, K: types.Int64, Name: "pv"}
	pk := ir.Var{ID: 9, K: types.Int64, Name: "pk"}

	var body []ir.Stmt
	probeBody := []ir.Stmt{
		ir.Assign{Dst: pk, E: ir.UnpackFixed{Row: ir.Ref(probe), Region: ir.KeyRegion, StateID: unpackState, K: types.Int64}},
	}
	emit := []ir.Var{pk}
	if mode != ir.SemiJoin {
		probeBody = append(probeBody,
			ir.Assign{Dst: pv, E: ir.UnpackFixed{Row: ir.Ref(build), Region: ir.PayloadRegion, StateID: unpackState, K: types.Int64}})
		emit = append(emit, pv)
	}
	if mode == ir.LeftOuterJoin {
		emit = append(emit, matched)
	}
	probeBody = append(probeBody, ir.EmitStmt{Cols: emit})
	body = append(body,
		ir.MakeRow{Dst: r0, StateID: layoutState},
		ir.PackFixed{Dst: r1, Row: r0, Region: ir.KeyRegion, StateID: offState, Val: ir.Ref(key)},
		ir.SealKey{Dst: r2, Row: r1, StateID: layoutState},
		ir.ProbeStmt{StateID: jtState, Mode: mode, ProbeRow: r2,
			Build: build, Probe: probe, Matched: matched, Body: probeBody},
	)
	kinds := []types.Kind{types.Int64}
	if mode != ir.SemiJoin {
		kinds = append(kinds, types.Int64)
	}
	if mode == ir.LeftOuterJoin {
		kinds = append(kinds, types.Bool)
	}
	return &ir.Func{Ins: []ir.Var{key}, Body: body, OutKinds: kinds, NumStates: 4}
}

func TestJoinProbeModes(t *testing.T) {
	jt := buildJoinTable([]int64{1, 1, 3}) // key 1 twice, key 3 once
	layout := &rt.RowLayoutState{KeyFixed: 8}
	state := []any{jt, layout, &rt.OffsetState{Off: 0, Layout: layout}, &rt.OffsetState{Off: 0}}

	run := func(mode ir.JoinMode) *storage.Chunk {
		f := probeFunc(mode, 0, 1, 2, 3)
		p := MustCompile(f)
		out := storage.NewChunk(f.OutKinds)
		p.Run(NewCtx(), state, []*storage.Vector{ivec(1, 2, 3)}, 3, out)
		return out
	}

	inner := run(ir.InnerJoin)
	if inner.Rows() != 3 { // key1 x2 + key3 x1
		t.Fatalf("inner rows = %d", inner.Rows())
	}
	for i := 0; i < inner.Rows(); i++ {
		k := inner.Cols[0].I64[i]
		if inner.Cols[1].I64[i] != k*100 {
			t.Fatalf("inner payload mismatch at %d", i)
		}
	}

	semi := run(ir.SemiJoin)
	if semi.Rows() != 2 || semi.Cols[0].I64[0] != 1 || semi.Cols[0].I64[1] != 3 {
		t.Fatalf("semi rows: %v", semi.Cols[0].I64[:semi.Rows()])
	}

	outer := run(ir.LeftOuterJoin)
	if outer.Rows() != 4 { // 2 matches for 1, null for 2, 1 match for 3
		t.Fatalf("outer rows = %d", outer.Rows())
	}
	nulls := 0
	for i := 0; i < outer.Rows(); i++ {
		if !outer.Cols[2].B[i] {
			nulls++
			if outer.Cols[0].I64[i] != 2 || outer.Cols[1].I64[i] != 0 {
				t.Fatalf("unmatched row wrong: %v %v", outer.Cols[0].I64[i], outer.Cols[1].I64[i])
			}
		}
	}
	if nulls != 1 {
		t.Fatalf("unmatched count = %d", nulls)
	}
}

func TestPrefetchStmt(t *testing.T) {
	jt := buildJoinTable([]int64{1, 2})
	layout := &rt.RowLayoutState{KeyFixed: 8}
	key := ir.Var{ID: 1, K: types.Int64}
	r0 := ir.Var{ID: 2, K: types.Ptr}
	r1 := ir.Var{ID: 3, K: types.Ptr}
	r2 := ir.Var{ID: 4, K: types.Ptr}
	f := &ir.Func{
		Ins: []ir.Var{key},
		Body: []ir.Stmt{
			ir.MakeRow{Dst: r0, StateID: 1},
			ir.PackFixed{Dst: r1, Row: r0, Region: ir.KeyRegion, StateID: 2, Val: ir.Ref(key)},
			ir.SealKey{Dst: r2, Row: r1, StateID: 1},
			ir.Prefetch{Row: r2, StateID: 0},
		},
		NumStates: 3,
	}
	p := MustCompile(f)
	state := []any{jt, layout, &rt.OffsetState{Off: 0, Layout: layout}}
	// Must simply not crash and count ops.
	ctx := NewCtx()
	p.Run(ctx, state, []*storage.Vector{ivec(1, 2, 99)}, 3, nil)
	if ctx.Counters.VMOps == 0 {
		t.Fatal("prefetch counted no ops")
	}
}

func TestCompileErrors(t *testing.T) {
	unbound := ir.Var{ID: 9, K: types.Int64}
	f := &ir.Func{Body: []ir.Stmt{ir.EmitStmt{Cols: []ir.Var{unbound}}}}
	if _, err := Compile(f); err == nil {
		t.Fatal("expected error for unbound var")
	}
	bad := &ir.Func{Body: []ir.Stmt{
		ir.Assign{Dst: ir.Var{ID: 1, K: types.Int64},
			E: ir.BinExpr{Op: ir.Add,
				L: ir.Ref(ir.Var{ID: 2, K: types.String}),
				R: ir.Ref(ir.Var{ID: 3, K: types.String})}},
	}}
	if _, err := Compile(bad); err == nil {
		t.Fatal("expected error for string arithmetic")
	}
}

func TestProgramSharedAcrossCtxs(t *testing.T) {
	// The same compiled Program must be usable from multiple worker
	// contexts without interference (the primitive cache is shared).
	a := ir.Var{ID: 1, K: types.Float64}
	dst := ir.Var{ID: 2, K: types.Float64}
	f := &ir.Func{Ins: []ir.Var{a}, Body: []ir.Stmt{
		ir.Assign{Dst: dst, E: ir.BinExpr{Op: ir.Mul, L: ir.Ref(a), R: ir.ConstRef{StateID: 0, K: types.Float64}}},
		ir.EmitStmt{Cols: []ir.Var{dst}},
	}, NumStates: 1}
	p := MustCompile(f)
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func(w int) {
			ctx := NewCtx()
			state := []any{rt.ConstF64(float64(w + 1))}
			ok := true
			for i := 0; i < 500; i++ {
				out := storage.NewChunk([]types.Kind{types.Float64})
				p.Run(ctx, state, []*storage.Vector{fvec(2)}, 1, out)
				if out.Cols[0].F64[0] != 2*float64(w+1) {
					ok = false
				}
			}
			done <- ok
		}(w)
	}
	for w := 0; w < 4; w++ {
		if !<-done {
			t.Fatal("cross-context interference")
		}
	}
}

package vm

import (
	"fmt"

	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

func (c *compiler) block(stmts []ir.Stmt) ([]exec, error) {
	var blk []exec
	for _, s := range stmts {
		if err := c.stmt(s, &blk); err != nil {
			return nil, err
		}
	}
	return blk, nil
}

// stmt compiles one IR statement into closures appended to blk.
//
//inklint:dispatch ir.Stmt
func (c *compiler) stmt(s ir.Stmt, blk *[]exec) error {
	switch s := s.(type) {
	case ir.Assign:
		slot, err := c.expr(s.E, blk)
		if err != nil {
			return err
		}
		if c.p.slotKinds[slot] != s.Dst.K {
			return fmt.Errorf("assign kind mismatch: %v into %s (%v)", c.p.slotKinds[slot], s.Dst, s.Dst.K)
		}
		c.slotOf[s.Dst.ID] = slot
		return nil

	case ir.Copy:
		src, err := c.slot(s.Src)
		if err != nil {
			return err
		}
		c.slotOf[s.Dst.ID] = src
		return nil

	case ir.FilterStmt:
		cs, err := c.slot(s.Cond)
		if err != nil {
			return err
		}
		type gpair struct{ src, dst int }
		pairs := make([]gpair, 0, len(s.Copies))
		for _, cp := range s.Copies {
			src, err := c.slot(cp.Src)
			if err != nil {
				return err
			}
			pairs = append(pairs, gpair{src: src, dst: c.bind(cp.Dst)})
		}
		body, err := c.block(s.Body)
		if err != nil {
			return err
		}
		selAux := c.newAux()
		*blk = append(*blk, func(fr *frame, n int) {
			cond := fr.vecs[cs].B[:n]
			sel := fr.auxSel(selAux)
			for i, ok := range cond {
				if ok {
					sel = append(sel, int32(i))
				}
			}
			fr.putAuxSel(selAux, sel)
			for _, p := range pairs {
				fr.vecs[p.src].Gather(fr.vecs[p.dst], sel)
			}
			fr.ctx.Counters.VMOps += int64(n)
			runBlock(body, fr, len(sel))
		})
		return nil

	case ir.MakeRow:
		ds := c.bind(s.Dst)
		id := s.StateID
		*blk = append(*blk, func(fr *frame, n int) {
			layout := fr.state[id].(*rt.RowLayoutState)
			sc := fr.ctx.Scratch(layout)
			sc.Prepare(n)
			dv := fr.vecs[ds]
			dv.Resize(n)
			d := dv.Ptr[:n]
			for i := range d {
				d[i] = sc.Row(i)
			}
			fr.ctx.Counters.VMOps += int64(n)
		})
		return nil

	case ir.PackFixed:
		rs, err := c.slot(s.Row)
		if err != nil {
			return err
		}
		vs, err := c.expr(s.Val, blk)
		if err != nil {
			return err
		}
		id := s.StateID
		payload := s.Region == ir.PayloadRegion
		var op exec
		switch k := s.Val.Kind(); k {
		case types.Bool:
			op = packFixedOp(rs, vs, id, payload, getB, rt.PutBool)
		case types.Int32, types.Date:
			op = packFixedOp(rs, vs, id, payload, getI32, rt.PutI32)
		case types.Int64:
			op = packFixedOp(rs, vs, id, payload, getI64, rt.PutI64)
		case types.Float64:
			op = packFixedOp(rs, vs, id, payload, getF64, rt.PutF64)
		default:
			return fmt.Errorf("pack fixed of kind %v", k)
		}
		*blk = append(*blk, op)
		// Fixed-width packing mutates in place: the row handle is unchanged.
		c.slotOf[s.Dst.ID] = rs
		return nil

	case ir.PackStr:
		rs, err := c.slot(s.Row)
		if err != nil {
			return err
		}
		vs, err := c.expr(s.Val, blk)
		if err != nil {
			return err
		}
		ds := c.bind(s.Dst)
		id := s.StateID
		key := s.Region == ir.KeyRegion
		*blk = append(*blk, func(fr *frame, n int) {
			layout := fr.state[id].(*rt.OffsetState).Layout
			sc := fr.ctx.Scratch(layout)
			v := fr.vecs[vs].Str[:n]
			for i := range v {
				if key {
					sc.AppendKeyString(i, v[i])
				} else {
					sc.AppendPayloadString(i, v[i])
				}
			}
			// Appending may reallocate: refresh the row handles.
			dv := fr.vecs[ds]
			dv.Resize(n)
			d := dv.Ptr[:n]
			for i := range d {
				d[i] = sc.Row(i)
			}
			_ = fr.vecs[rs] // rows were addressed through the scratch
			fr.ctx.Counters.VMOps += int64(n)
		})
		return nil

	case ir.SealKey:
		if _, err := c.slot(s.Row); err != nil {
			return err
		}
		ds := c.bind(s.Dst)
		id := s.StateID
		*blk = append(*blk, func(fr *frame, n int) {
			layout := fr.state[id].(*rt.RowLayoutState)
			sc := fr.ctx.Scratch(layout)
			dv := fr.vecs[ds]
			dv.Resize(n)
			d := dv.Ptr[:n]
			for i := range d {
				sc.SealKey(i)
				d[i] = sc.Row(i)
			}
			fr.ctx.Counters.VMOps += int64(n)
		})
		return nil

	case ir.AggLookup:
		rs, err := c.slot(s.Row)
		if err != nil {
			return err
		}
		ds := c.bind(s.Dst)
		id := s.StateID
		ax := c.newAux()
		*blk = append(*blk, func(fr *frame, n int) {
			st := fr.state[id].(*rt.AggTableState)
			tb := auxBatch(fr, ax)
			rows := fr.vecs[rs].Ptr[:n]
			keys := sizedRows(&tb.keys, n)
			seeds := sizedRows(&tb.seeds, n)
			for i, r := range rows {
				key := rt.RowKey(r)
				keys[i] = key
				// The probe row's payload region seeds new groups (it
				// carries preserved original key strings for collated keys,
				// paper §IV-D; empty otherwise).
				seeds[i] = r[4+len(key):]
			}
			dv := fr.vecs[ds]
			dv.Resize(n)
			if st.Partitions > 0 {
				// Exchange-partitioned build: the chunk's keys all route to
				// this worker's partitions of the shared table, written
				// lock-free — no thread-local table, no spills.
				aggBatchLookupPart(fr, tb, st, keys, seeds, dv.Ptr[:n])
			} else {
				aggBatchLookup(fr, tb, st, keys, seeds, dv.Ptr[:n])
			}
			fr.ctx.Counters.VMOps += int64(n)
			fr.ctx.Counters.HTProbes += int64(n)
		})
		return nil

	case ir.AggLookupFixed:
		ks, err := c.slot(s.Key)
		if err != nil {
			return err
		}
		ds := c.bind(s.Dst)
		id := s.StateID
		ax := c.newAux()
		var op exec
		switch s.Key.K {
		case types.Bool:
			op = aggLookupFixedOp(ks, ds, id, ax, 1, getB, rt.PutBool)
		case types.Int32, types.Date:
			op = aggLookupFixedOp(ks, ds, id, ax, 4, getI32, rt.PutI32)
		case types.Int64:
			op = aggLookupFixedOp(ks, ds, id, ax, 8, getI64, rt.PutI64)
		case types.Float64:
			op = aggLookupFixedOp(ks, ds, id, ax, 8, getF64, rt.PutF64)
		default:
			return fmt.Errorf("direct lookup on kind %v", s.Key.K)
		}
		*blk = append(*blk, op)
		return nil

	case ir.AggUpdate:
		gs, err := c.slot(s.Group)
		if err != nil {
			return err
		}
		vs := -1
		if s.Val != nil {
			if vs, err = c.expr(s.Val, blk); err != nil {
				return err
			}
		}
		op, err := aggUpdateOp(s.Fn, gs, vs, s.StateID)
		if err != nil {
			return err
		}
		*blk = append(*blk, op)
		return nil

	case ir.JoinInsert:
		rs, err := c.slot(s.Row)
		if err != nil {
			return err
		}
		id := s.StateID
		ax := c.newAux()
		*blk = append(*blk, func(fr *frame, n int) {
			js := fr.state[id].(*rt.JoinTableState)
			tb := auxBatch(fr, ax)
			rows := fr.vecs[rs].Ptr[:n]
			keys := sizedRows(&tb.keys, n)
			pays := sizedRows(&tb.seeds, n)
			for i, r := range rows {
				key := rt.RowKey(r)
				keys[i] = key
				pays[i] = r[4+len(key):]
			}
			tb.hashes = rt.HashBatch(keys, tb.hashes)
			if js.Parted != nil {
				// Exchange-partitioned build: single-writer partitions, no
				// shard grouping or locks.
				js.Parted.InsertBatch(keys, pays, tb.hashes)
			} else {
				js.Table.InsertBatch(keys, pays, tb.hashes, &tb.sc)
			}
			fr.ctx.Counters.VMOps += int64(n)
			fr.ctx.Counters.HTInserts += int64(n)
		})
		return nil

	case ir.Prefetch:
		rs, err := c.slot(s.Row)
		if err != nil {
			return err
		}
		id := s.StateID
		ax := c.newAux()
		*blk = append(*blk, func(fr *frame, n int) {
			tbl := fr.state[id].(*rt.JoinTableState).Index()
			tb := auxBatch(fr, ax)
			rows := fr.vecs[rs].Ptr[:n]
			keys := sizedRows(&tb.keys, n)
			for i, r := range rows {
				keys[i] = rt.RowKey(r)
			}
			tb.hashes = rt.HashBatch(keys, tb.hashes)
			var acc byte
			for i, k := range keys {
				// Touch consults the bloom/tag filter first, so the staged
				// prefetch only streams bucket lines that the probe pass will
				// actually walk.
				acc ^= tbl.Touch(k, tb.hashes[i])
			}
			fr.prefetchSink = acc
			fr.ctx.Counters.VMOps += int64(n)
		})
		return nil

	case ir.Partition:
		rs, err := c.slot(s.Row)
		if err != nil {
			return err
		}
		id := s.StateID
		ax := c.newAux()
		*blk = append(*blk, func(fr *frame, n int) {
			st := fr.state[id].(*rt.ExchangeState)
			w := fr.ctx.Exchange(st)
			tb := auxBatch(fr, ax)
			rows := fr.vecs[rs].Ptr[:n]
			keys := sizedRows(&tb.keys, n)
			for i, r := range rows {
				keys[i] = rt.RowKey(r)
			}
			tb.hashes = rt.HashBatch(keys, tb.hashes)
			for i, r := range rows {
				w.Route(r, tb.hashes[i])
			}
			fr.ctx.Counters.VMOps += int64(n)
			fr.ctx.Counters.PartRoutedRows += int64(n)
		})
		return nil

	case ir.ProbeStmt:
		return c.probe(s, blk)

	case ir.EmitStmt:
		slots := make([]int, len(s.Cols))
		for i, v := range s.Cols {
			sl, err := c.slot(v)
			if err != nil {
				return err
			}
			slots[i] = sl
		}
		vecAux := c.newAux()
		*blk = append(*blk, func(fr *frame, n int) {
			vsp := auxSlice[*storage.Vector](fr, vecAux)
			vs := (*vsp)[:0]
			for _, sl := range slots {
				vs = append(vs, fr.vecs[sl])
			}
			*vsp = vs
			bytes := fr.out.AppendFromVectors(vs, n)
			fr.emitted += n
			fr.ctx.Counters.EmittedRows += int64(n)
			fr.ctx.Counters.MaterializedBytes += bytes
		})
		return nil

	default:
		return fmt.Errorf("unknown stmt %T", s)
	}
}

func packFixedOp[T any](rs, vs, stateID int, payload bool,
	get func(*storage.Vector) []T, put func([]byte, int, T)) exec {
	return func(fr *frame, n int) {
		off := fr.state[stateID].(*rt.OffsetState).Off
		rows := fr.vecs[rs].Ptr[:n]
		v := get(fr.vecs[vs])[:n]
		if payload {
			for i, r := range rows {
				put(r, rt.RowPayloadOff(r)+off, v[i])
			}
		} else {
			for i, r := range rows {
				put(r, 4+off, v[i])
			}
		}
		fr.ctx.Counters.VMOps += int64(n)
	}
}

// aggLookupFixedOp probes the aggregation table with a raw fixed-width
// column value, no packed-row scratch (paper §IV-D's single-column fast
// path). The whole chunk's keys are encoded into one stride buffer — the
// buffer is safe to reuse per chunk because both the local and the sharded
// table copy the key on group creation.
func aggLookupFixedOp[T any](ks, ds, stateID, ax, width int,
	get func(*storage.Vector) []T, put func([]byte, int, T)) exec {
	return func(fr *frame, n int) {
		st := fr.state[stateID].(*rt.AggTableState)
		tb := auxBatch(fr, ax)
		vals := get(fr.vecs[ks])[:n]
		buf := sizedBytes(&tb.keybuf, n*width)
		keys := sizedRows(&tb.keys, n)
		for i, v := range vals {
			off := i * width
			put(buf, off, v)
			keys[i] = buf[off : off+width : off+width]
		}
		dv := fr.vecs[ds]
		dv.Resize(n)
		aggBatchLookup(fr, tb, st, keys, nil, dv.Ptr[:n])
		fr.ctx.Counters.VMOps += int64(n)
		fr.ctx.Counters.HTProbes += int64(n)
	}
}

func aggUpdateOp(fn ir.AggFunc, gs, vs, stateID int) (exec, error) {
	switch fn {
	case ir.AggSumI64:
		return aggFold(gs, vs, stateID, getI64, func(g []byte, o int, v int64) {
			rt.PutI64(g, o, rt.GetI64(g, o)+v)
		}), nil
	case ir.AggSumF64:
		return aggFold(gs, vs, stateID, getF64, func(g []byte, o int, v float64) {
			rt.PutF64(g, o, rt.GetF64(g, o)+v)
		}), nil
	case ir.AggCount:
		return func(fr *frame, n int) {
			off := fr.state[stateID].(*rt.OffsetState).Off
			rows := fr.vecs[gs].Ptr[:n]
			for _, g := range rows {
				o := rt.RowPayloadOff(g) + off
				rt.PutI64(g, o, rt.GetI64(g, o)+1)
			}
			fr.ctx.Counters.VMOps += int64(n)
		}, nil
	case ir.AggCountIf:
		return aggFold(gs, vs, stateID, getB, func(g []byte, o int, v bool) {
			if v {
				rt.PutI64(g, o, rt.GetI64(g, o)+1)
			}
		}), nil
	case ir.AggMinF64:
		return aggFold(gs, vs, stateID, getF64, func(g []byte, o int, v float64) {
			if v < rt.GetF64(g, o) {
				rt.PutF64(g, o, v)
			}
		}), nil
	case ir.AggMaxF64:
		return aggFold(gs, vs, stateID, getF64, func(g []byte, o int, v float64) {
			if v > rt.GetF64(g, o) {
				rt.PutF64(g, o, v)
			}
		}), nil
	case ir.AggMinI32:
		return aggFold(gs, vs, stateID, getI32, func(g []byte, o int, v int32) {
			if v < rt.GetI32(g, o) {
				rt.PutI32(g, o, v)
			}
		}), nil
	case ir.AggMaxI32:
		return aggFold(gs, vs, stateID, getI32, func(g []byte, o int, v int32) {
			if v > rt.GetI32(g, o) {
				rt.PutI32(g, o, v)
			}
		}), nil
	default:
		return nil, fmt.Errorf("unknown aggregate %v", fn)
	}
}

func aggFold[T any](gs, vs, stateID int, get func(*storage.Vector) []T,
	fold func(g []byte, off int, v T)) exec {
	return func(fr *frame, n int) {
		off := fr.state[stateID].(*rt.OffsetState).Off
		rows := fr.vecs[gs].Ptr[:n]
		v := get(fr.vecs[vs])[:n]
		for i, g := range rows {
			fold(g, rt.RowPayloadOff(g)+off, v[i])
		}
		fr.ctx.Counters.VMOps += int64(n)
	}
}

func (c *compiler) probe(s ir.ProbeStmt, blk *[]exec) error {
	prs, err := c.slot(s.ProbeRow)
	if err != nil {
		return err
	}
	probeDst := c.bind(s.Probe)
	buildDst := -1
	if s.Mode == ir.InnerJoin || s.Mode == ir.LeftOuterJoin {
		buildDst = c.bind(s.Build)
	}
	matchedDst := -1
	if s.Mode == ir.LeftOuterJoin {
		matchedDst = c.bind(s.Matched)
	}
	body, err := c.block(s.Body)
	if err != nil {
		return err
	}
	selAux := c.newAux()
	rowAux := c.newAux()
	batchAux := c.newAux()
	id := s.StateID
	mode := s.Mode
	*blk = append(*blk, func(fr *frame, n int) {
		tbl := fr.state[id].(*rt.JoinTableState).Index()
		probeRows := fr.vecs[prs].Ptr[:n]
		tb := auxBatch(fr, batchAux)
		keys := sizedRows(&tb.keys, n)
		for i, pr := range probeRows {
			keys[i] = rt.RowKey(pr)
		}
		tb.hashes = rt.HashBatch(keys, tb.hashes)
		hashes := tb.hashes
		sel := fr.auxSel(selAux)
		var build [][]byte
		if buildDst >= 0 {
			build = fr.auxRows(rowAux)
		}
		var matched []bool
		if matchedDst >= 0 {
			mv := fr.vecs[matchedDst]
			mv.Resize(0)
			matched = mv.B
		}
		// The bloom/tag filter screens the whole chunk first: a definite miss
		// never walks bucket memory. For anti and outer joins a filter miss is
		// itself the answer (unmatched), so those rows resolve without any
		// table access at all.
		var skips int
		switch mode {
		case ir.InnerJoin:
			cand, sk := tbl.LookupBatch(hashes, tb.pend[:0])
			tb.pend, skips = cand, sk
			for _, ci := range cand {
				i := int(ci)
				it := tbl.Lookup(keys[i], hashes[i])
				for r := it.Next(); r != nil; r = it.Next() {
					sel = append(sel, ci)
					build = append(build, r)
				}
			}
		case ir.SemiJoin:
			cand, sk := tbl.LookupBatch(hashes, tb.pend[:0])
			tb.pend, skips = cand, sk
			for _, ci := range cand {
				i := int(ci)
				it := tbl.Lookup(keys[i], hashes[i])
				if it.Next() != nil {
					sel = append(sel, ci)
				}
			}
		case ir.AntiJoin:
			for i := range probeRows {
				if !tbl.MayContain(hashes[i]) {
					skips++
					sel = append(sel, int32(i))
					continue
				}
				it := tbl.Lookup(keys[i], hashes[i])
				if it.Next() == nil {
					sel = append(sel, int32(i))
				}
			}
		case ir.LeftOuterJoin:
			for i := range probeRows {
				if !tbl.MayContain(hashes[i]) {
					skips++
					sel = append(sel, int32(i))
					build = append(build, nil)
					matched = append(matched, false)
					continue
				}
				it := tbl.Lookup(keys[i], hashes[i])
				any := false
				for r := it.Next(); r != nil; r = it.Next() {
					any = true
					sel = append(sel, int32(i))
					build = append(build, r)
					matched = append(matched, true)
				}
				if !any {
					sel = append(sel, int32(i))
					build = append(build, nil)
					matched = append(matched, false)
				}
			}
		}
		fr.ctx.Counters.HTBloomSkips += int64(skips)
		fr.putAuxSel(selAux, sel)
		out := len(sel)
		if buildDst >= 0 {
			fr.putAuxRows(rowAux, build)
			bv := fr.vecs[buildDst]
			bv.Ptr = build
		}
		if matchedDst >= 0 {
			fr.vecs[matchedDst].B = matched
		}
		fr.vecs[prs].Gather(fr.vecs[probeDst], sel)
		fr.ctx.Counters.VMOps += int64(n)
		fr.ctx.Counters.HTProbes += int64(n)
		fr.ctx.Counters.HTMatches += int64(out)
		runBlock(body, fr, out)
	})
	return nil
}

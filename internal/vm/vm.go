// Package vm compiles the suboperator IR into executable closure programs —
// the Go stand-in for InkFuse's clang-compiled C (DESIGN.md §2).
//
// A Program executes one step over dense batch registers: every IR variable
// becomes a typed vector; fused programs carry tuples through those
// registers across suboperator boundaries without materializing tuple
// buffers, while the pre-generated vectorized primitives are single-subop
// Programs invoked chunk-at-a-time by internal/interp. Filter scopes compact
// and probe scopes expand, so vectors are always dense (paper §IV-B).
package vm

import (
	"fmt"

	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/stats"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// Ctx is one worker's execution context: per-worker scratch space, frames,
// pre-aggregation tables and counters. A Ctx is not safe for concurrent use;
// the scheduler gives each worker its own.
type Ctx struct {
	// Counters accumulates this worker's statistics.
	Counters stats.Counters
	// Budget, when non-nil, caps the runtime-state bytes this query may
	// allocate; worker-private tables created through this Ctx charge to it.
	Budget *rt.MemBudget

	scratch   map[*rt.RowLayoutState]*rt.RowScratch
	aggs      map[*rt.AggTableState]*rt.AggTable
	locals    map[*rt.AggTableState]*rt.LocalAggTable
	exchanges map[*rt.ExchangeState]*rt.ExchangeWriter
	frames    map[*Program]*frame
}

// NewCtx creates an execution context.
func NewCtx() *Ctx {
	return &Ctx{
		scratch:   make(map[*rt.RowLayoutState]*rt.RowScratch),
		aggs:      make(map[*rt.AggTableState]*rt.AggTable),
		locals:    make(map[*rt.AggTableState]*rt.LocalAggTable),
		exchanges: make(map[*rt.ExchangeState]*rt.ExchangeWriter),
		frames:    make(map[*Program]*frame),
	}
}

// Scratch returns this worker's packed-row scratch for a layout.
func (c *Ctx) Scratch(st *rt.RowLayoutState) *rt.RowScratch {
	s, ok := c.scratch[st]
	if !ok {
		s = rt.NewRowScratch(st.KeyFixed, st.PayloadFixed)
		c.scratch[st] = s
	}
	return s
}

// AggTable returns this worker's pre-aggregation table for an aggregation
// state (morsel-driven parallel aggregation; merged by the scheduler).
func (c *Ctx) AggTable(st *rt.AggTableState) *rt.AggTable {
	t, ok := c.aggs[st]
	if !ok {
		t = st.NewInstance()
		t.SetBudget(c.Budget)
		c.aggs[st] = t
	}
	return t
}

// LocalAgg returns this worker's bounded thread-local pre-aggregation table
// for an aggregation state, backed by the worker's sharded table.
func (c *Ctx) LocalAgg(st *rt.AggTableState) *rt.LocalAggTable {
	l, ok := c.locals[st]
	if !ok {
		l = rt.NewLocalAggTable(st, c.AggTable(st))
		c.locals[st] = l
	}
	return l
}

// Exchange returns this worker's private routing writer for an exchange
// (local hash-partitioned exchange, DESIGN.md §15). Registration with the
// shared state happens once per (worker, exchange); routing through the
// returned writer is lock-free.
func (c *Ctx) Exchange(st *rt.ExchangeState) *rt.ExchangeWriter {
	w, ok := c.exchanges[st]
	if !ok {
		w = st.NewWriter()
		c.exchanges[st] = w
	}
	return w
}

// FlushLocalAggs spills every thread-local pre-aggregation table into its
// backing sharded table. The scheduler calls it at every morsel boundary —
// local group rows must not live across morsels — so the off path (pipelines
// without aggregation) is a single empty-map check.
func (c *Ctx) FlushLocalAggs() {
	if len(c.locals) == 0 {
		return
	}
	for _, l := range c.locals {
		c.Counters.HTSpills += l.Flush()
	}
}

// TakeAggTables hands the worker's pre-aggregation tables to the scheduler
// for merging and resets them for the next pipeline. Thread-local tables are
// flushed first so no group is left behind, and dropped with the tables they
// back.
func (c *Ctx) TakeAggTables() map[*rt.AggTableState]*rt.AggTable {
	c.FlushLocalAggs()
	if len(c.locals) > 0 {
		c.locals = make(map[*rt.AggTableState]*rt.LocalAggTable)
	}
	out := c.aggs
	c.aggs = make(map[*rt.AggTableState]*rt.AggTable)
	return out
}

// exec is one compiled operation, executed at the current scope cardinality.
type exec func(fr *frame, n int)

// Program is the compiled form of an ir.Func.
type Program struct {
	Fn *ir.Func

	body      []exec
	slotKinds []types.Kind
	insSlots  []int
	numAux    int
}

// frame is the per-worker register file for one program.
type frame struct {
	ctx     *Ctx
	state   []any
	vecs    []*storage.Vector
	aux     []any
	out     *storage.Chunk
	emitted int

	// prefetchSink keeps ROF prefetch loads observable (never read).
	prefetchSink byte
}

//inkfuse:hotpath
func (c *Ctx) frame(p *Program) *frame {
	fr, ok := c.frames[p] //inklint:allow map — per-(ctx,program) frame memo — one lookup per morsel call, not per row
	if !ok {
		fr = &frame{ctx: c, vecs: make([]*storage.Vector, len(p.slotKinds)), aux: make([]any, p.numAux)} //inklint:allow alloc — first-use frame construction; memoized in c.frames thereafter
		for i, k := range p.slotKinds {
			fr.vecs[i] = storage.NewVector(k, 0) //inklint:allow call — first-use slot vector construction; memoized with the frame
		}
		c.frames[p] = fr //inklint:allow map — memoization write on first use only
	}
	return fr
}

// Run executes the program over n source rows bound to the input vectors,
// appending emitted rows to out (which may be nil for pure sinks). It
// returns the number of emitted rows.
//
//inkfuse:hotpath
func (p *Program) Run(ctx *Ctx, state []any, ins []*storage.Vector, n int, out *storage.Chunk) int {
	fr := ctx.frame(p)
	fr.state = state
	fr.out = out
	fr.emitted = 0
	if len(ins) != len(p.insSlots) {
		panic(fmt.Sprintf("vm: program %s wants %d inputs, got %d", p.Fn.Name, len(p.insSlots), len(ins)))
	}
	for i, v := range ins {
		fr.vecs[p.insSlots[i]] = v
	}
	runBlock(p.body, fr, n)
	return fr.emitted
}

//inkfuse:hotpath
func runBlock(b []exec, fr *frame, n int) {
	for _, op := range b {
		op(fr, n) //inklint:allow call — the vm execution model — dispatch through pre-compiled closures
	}
}

// auxSlice returns the k-th auxiliary buffer's pointer box, creating it on
// first use. Aux slots hold *[]T rather than []T: callers mutate the slice
// through the pointer, so steady-state primitive calls never re-box a slice
// header into the `any` slot — re-boxing would allocate on every invocation,
// which is exactly the per-chunk overhead the interpreter must not have.
func auxSlice[T any](fr *frame, k int) *[]T {
	if fr.aux[k] == nil {
		fr.aux[k] = new([]T)
	}
	return fr.aux[k].(*[]T)
}

// auxSel returns the k-th auxiliary int32 selection buffer, reset to length
// zero; write the grown slice back through putAuxSel.
func (fr *frame) auxSel(k int) []int32 {
	return (*auxSlice[int32](fr, k))[:0]
}

func (fr *frame) putAuxSel(k int, s []int32) { *auxSlice[int32](fr, k) = s }

// auxRows returns the k-th auxiliary row buffer, reset to length zero.
func (fr *frame) auxRows(k int) [][]byte {
	return (*auxSlice[[]byte](fr, k))[:0]
}

func (fr *frame) putAuxRows(k int, s [][]byte) { *auxSlice[[]byte](fr, k) = s }

// Compile translates an IR function into an executable program.
func Compile(f *ir.Func) (*Program, error) {
	c := &compiler{
		p:      &Program{Fn: f},
		slotOf: make(map[int]int),
	}
	for _, v := range f.Ins {
		c.p.insSlots = append(c.p.insSlots, c.bind(v))
	}
	body, err := c.block(f.Body)
	if err != nil {
		return nil, fmt.Errorf("vm: compiling %s: %w", f.Name, err)
	}
	c.p.body = body
	return c.p, nil
}

// MustCompile is Compile that panics; used for the startup-generated
// primitives whose IR the engine itself produced.
func MustCompile(f *ir.Func) *Program {
	p, err := Compile(f)
	if err != nil {
		panic(err)
	}
	return p
}

type compiler struct {
	p      *Program
	slotOf map[int]int // ir var ID -> slot
}

// bind allocates (or returns) the slot for an IR variable.
func (c *compiler) bind(v ir.Var) int {
	if s, ok := c.slotOf[v.ID]; ok {
		return s
	}
	s := c.newSlot(v.K)
	c.slotOf[v.ID] = s
	return s
}

func (c *compiler) newSlot(k types.Kind) int {
	c.p.slotKinds = append(c.p.slotKinds, k)
	return len(c.p.slotKinds) - 1
}

func (c *compiler) newAux() int {
	c.p.numAux++
	return c.p.numAux - 1
}

func (c *compiler) slot(v ir.Var) (int, error) {
	s, ok := c.slotOf[v.ID]
	if !ok {
		return 0, fmt.Errorf("use of unbound var %s", v)
	}
	return s, nil
}

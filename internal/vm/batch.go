package vm

import (
	"inkfuse/internal/rt"
)

// Chunk-batched table access for the compiled statements. Every backend —
// the vectorized interpreter's single-subop primitives and the fused
// programs alike — executes table statements through these kernels, so the
// batched path needs no new primitive IDs and the enumeration invariant
// holds unchanged: the same suboperator instantiations exist, their table
// access just happens a chunk at a time.

// tableBatch is the per-call-site scratch of one batched table statement:
// extracted key/seed views, the hash vector, the pending (local-table miss)
// compaction buffers, and the shard-grouping scratch. One aux slot holds it,
// so steady-state chunks allocate nothing.
type tableBatch struct {
	keys   [][]byte // per-row key blobs (views into rows or keybuf)
	seeds  [][]byte // per-row creation extras / build payloads
	hashes []uint64
	keybuf []byte  // packed fixed-width key encodings
	pend   []int32 // rows the local table could not absorb / bloom candidates
	pkeys  [][]byte
	pseeds [][]byte
	phash  []uint64
	pout   [][]byte
	sc     rt.BatchScratch
}

func auxBatch(fr *frame, k int) *tableBatch {
	if fr.aux[k] == nil {
		fr.aux[k] = new(tableBatch)
	}
	return fr.aux[k].(*tableBatch)
}

func sizedRows(s *[][]byte, n int) [][]byte {
	if cap(*s) < n {
		*s = make([][]byte, n)
	}
	*s = (*s)[:n]
	return *s
}

func sizedU64(s *[]uint64, n int) []uint64 {
	if cap(*s) < n {
		*s = make([]uint64, n)
	}
	*s = (*s)[:n]
	return *s
}

func sizedBytes(s *[]byte, n int) []byte {
	if cap(*s) < n {
		*s = make([]byte, n)
	}
	*s = (*s)[:n]
	return *s
}

// aggBatchSeg bounds the rows a batched agg lookup processes per pass.
// Upstream of an expanding join probe, fused programs hand the lookup the
// whole expanded chunk (an order of magnitude past the scan chunk size);
// hashing and scattering that in one sweep pushes the scratch vectors out
// of cache and loses to the scalar path. Segmenting keeps every pass inside
// the footprint the kernels were sized for.
const aggBatchSeg = 1024

// aggBatchLookup resolves one chunk of aggregation keys into d. Keys are
// first offered to the worker's thread-local pre-aggregation table (no shard
// lock; absorbs high-locality group-bys); the misses are compacted and
// resolved through the sharded table's batched path, one lock per
// (segment, shard). seeds may be nil.
func aggBatchLookup(fr *frame, tb *tableBatch, st *rt.AggTableState, keys, seeds, d [][]byte) {
	tbl := fr.ctx.AggTable(st)
	loc := fr.ctx.LocalAgg(st)
	// Between chunks the local table may flush a full interval (clustered
	// keys keep absorbing into fresh capacity) or disable itself outright
	// (non-repeating keys) — see LocalAggTable.MaybeFlush.
	fr.ctx.Counters.HTSpills += loc.MaybeFlush()
	for off := 0; off < len(keys); off += aggBatchSeg {
		end := min(off+aggBatchSeg, len(keys))
		var sseg [][]byte
		if seeds != nil {
			sseg = seeds[off:end]
		}
		aggBatchSegment(fr, tb, tbl, loc, keys[off:end], sseg, d[off:end])
	}
}

// aggBatchLookupPart resolves one chunk of aggregation keys against an
// exchange-partitioned table (DESIGN.md §15). No thread-local table, no shard
// locks, no segmenting: each key's routing bits select a partition this worker
// owns exclusively for the morsel, so the lookup is a straight probe loop and
// HTSpills stays 0 by construction.
func aggBatchLookupPart(fr *frame, tb *tableBatch, st *rt.AggTableState, keys, seeds, d [][]byte) {
	tb.hashes = rt.HashBatch(keys, tb.hashes)
	st.Parted.FindOrCreateBatch(keys, seeds, tb.hashes, d)
}

func aggBatchSegment(fr *frame, tb *tableBatch, tbl *rt.AggTable, loc *rt.LocalAggTable, keys, seeds, d [][]byte) {
	n := len(keys)
	tb.hashes = rt.HashBatch(keys, tb.hashes)
	hashes := tb.hashes
	if loc.Disabled() {
		tbl.FindOrCreateBatch(keys, seeds, hashes, d, &tb.sc)
		return
	}
	pend := tb.pend[:0]
	var hits int64
	var seed []byte
	for i := 0; i < n; i++ {
		if seeds != nil {
			seed = seeds[i]
		}
		row, hit, ok := loc.FindOrCreate(keys[i], hashes[i], seed)
		if !ok {
			pend = append(pend, int32(i))
			continue
		}
		d[i] = row
		if hit {
			hits++
		}
	}
	tb.pend = pend
	fr.ctx.Counters.HTLocalHits += hits
	if len(pend) == 0 {
		return
	}
	// Local-table overflow: compact the misses and resolve them against the
	// sharded table in one batch. A pending key is never resident locally, so
	// the same logical group is only ever updated through one row per flush
	// interval and the morsel-end merge reconciles the rest.
	pk := sizedRows(&tb.pkeys, len(pend))
	ph := sizedU64(&tb.phash, len(pend))
	po := sizedRows(&tb.pout, len(pend))
	var ps [][]byte
	if seeds != nil {
		ps = sizedRows(&tb.pseeds, len(pend))
	}
	for j, i := range pend {
		pk[j] = keys[i]
		ph[j] = hashes[i]
		if seeds != nil {
			ps[j] = seeds[i]
		}
	}
	tbl.FindOrCreateBatch(pk, ps, ph, po, &tb.sc)
	for j, i := range pend {
		d[i] = po[j]
	}
}

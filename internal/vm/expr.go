package vm

import (
	"fmt"
	"strings"

	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// Typed slice accessors: resolve the concrete array of a vector once per
// batch so the kernels below run over plain slices.

func getB(v *storage.Vector) []bool      { return v.B }
func getI32(v *storage.Vector) []int32   { return v.I32 }
func getI64(v *storage.Vector) []int64   { return v.I64 }
func getF64(v *storage.Vector) []float64 { return v.F64 }
func getStr(v *storage.Vector) []string  { return v.Str }
func getPtr(v *storage.Vector) [][]byte  { return v.Ptr }

// Runtime-constant accessors (paper §IV-C: constants are resolved from state
// at execution time so primitives stay enumerable).

func constB(id int) func([]any) bool {
	return func(st []any) bool { return st[id].(*rt.ConstState).B }
}
func constI32(id int) func([]any) int32 {
	return func(st []any) int32 { return st[id].(*rt.ConstState).I32 }
}
func constI64(id int) func([]any) int64 {
	return func(st []any) int64 { return st[id].(*rt.ConstState).I64 }
}
func constF64(id int) func([]any) float64 {
	return func(st []any) float64 { return st[id].(*rt.ConstState).F64 }
}
func constStr(id int) func([]any) string {
	return func(st []any) string { return st[id].(*rt.ConstState).Str }
}

type number interface{ ~int32 | ~int64 | ~float64 }

type ordered interface {
	~int32 | ~int64 | ~float64 | ~string
}

func arithKernel[T number](op ir.BinOp) func(d, a, b []T) {
	switch op {
	case ir.Add:
		return func(d, a, b []T) {
			for i := range d {
				d[i] = a[i] + b[i]
			}
		}
	case ir.Sub:
		return func(d, a, b []T) {
			for i := range d {
				d[i] = a[i] - b[i]
			}
		}
	case ir.Mul:
		return func(d, a, b []T) {
			for i := range d {
				d[i] = a[i] * b[i]
			}
		}
	default: // Div
		return func(d, a, b []T) {
			for i := range d {
				d[i] = a[i] / b[i]
			}
		}
	}
}

func cmpKernel[T ordered](op ir.CmpOp) func(d []bool, a, b []T) {
	switch op {
	case ir.Lt:
		return func(d []bool, a, b []T) {
			for i := range d {
				d[i] = a[i] < b[i]
			}
		}
	case ir.Le:
		return func(d []bool, a, b []T) {
			for i := range d {
				d[i] = a[i] <= b[i]
			}
		}
	case ir.Eq:
		return func(d []bool, a, b []T) {
			for i := range d {
				d[i] = a[i] == b[i]
			}
		}
	case ir.Ne:
		return func(d []bool, a, b []T) {
			for i := range d {
				d[i] = a[i] != b[i]
			}
		}
	case ir.Ge:
		return func(d []bool, a, b []T) {
			for i := range d {
				d[i] = a[i] >= b[i]
			}
		}
	default: // Gt
		return func(d []bool, a, b []T) {
			for i := range d {
				d[i] = a[i] > b[i]
			}
		}
	}
}

// operand is a compiled expression operand: either a slot or a runtime
// constant. Having both lets one kernel cover the column/column and
// column/constant primitive variants. Constant operands broadcast into a
// per-frame auxiliary buffer, so a Program stays safe to share across
// workers.
type operand[T any] struct {
	slot  int
	get   func(*storage.Vector) []T
	cget  func([]any) T
	aux   int
	isCol bool
}

func (o operand[T]) load(fr *frame, n int) []T {
	if o.isCol {
		return o.get(fr.vecs[o.slot])[:n]
	}
	// Broadcast the constant into this frame's reusable buffer (pointer-boxed
	// in aux so refilling it never re-boxes, see auxSlice).
	c := o.cget(fr.state)
	bp := auxSlice[T](fr, o.aux)
	b := *bp
	if cap(b) < n {
		b = make([]T, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = c
	}
	*bp = b
	return b
}

// compileOperand compiles e either to a column slot or a constant accessor.
func compileOperand[T any](c *compiler, blk *[]exec, e ir.Expr,
	get func(*storage.Vector) []T, cget func(int) func([]any) T) (operand[T], error) {
	if cr, ok := e.(ir.ConstRef); ok {
		return operand[T]{cget: cget(cr.StateID), aux: c.newAux()}, nil
	}
	s, err := c.expr(e, blk)
	if err != nil {
		return operand[T]{}, err
	}
	return operand[T]{slot: s, get: get, isCol: true}, nil
}

// binOp emits a kernel over two operands into a fresh slot of kind k. The
// destination element type D may differ from the operand type T
// (comparisons produce bools).
func binOp[T, D any](c *compiler, blk *[]exec, k types.Kind, l, r operand[T],
	kern func(d []D, a, b []T), getD func(*storage.Vector) []D) int {
	ds := c.newSlot(k)
	*blk = append(*blk, func(fr *frame, n int) {
		dv := fr.vecs[ds]
		dv.Resize(n)
		a := l.load(fr, n)
		b := r.load(fr, n)
		kern(getD(dv)[:n], a, b)
		fr.ctx.Counters.VMOps += int64(n)
	})
	return ds
}

func buildArith[T number](c *compiler, blk *[]exec, x ir.BinExpr, k types.Kind,
	get func(*storage.Vector) []T, cget func(int) func([]any) T) (int, error) {
	l, err := compileOperand(c, blk, x.L, get, cget)
	if err != nil {
		return 0, err
	}
	r, err := compileOperand(c, blk, x.R, get, cget)
	if err != nil {
		return 0, err
	}
	return binOp(c, blk, k, l, r, arithKernel[T](x.Op), get), nil
}

func buildCmp[T ordered](c *compiler, blk *[]exec, x ir.CmpExpr,
	get func(*storage.Vector) []T, cget func(int) func([]any) T) (int, error) {
	l, err := compileOperand(c, blk, x.L, get, cget)
	if err != nil {
		return 0, err
	}
	r, err := compileOperand(c, blk, x.R, get, cget)
	if err != nil {
		return 0, err
	}
	return binOp(c, blk, types.Bool, l, r, cmpKernel[T](x.Op), getB), nil
}

func buildSelect[T any](c *compiler, blk *[]exec, x ir.CondExpr, k types.Kind,
	get func(*storage.Vector) []T, cget func(int) func([]any) T) (int, error) {
	cs, err := c.expr(x.Cond, blk)
	if err != nil {
		return 0, err
	}
	t, err := compileOperand(c, blk, x.Then, get, cget)
	if err != nil {
		return 0, err
	}
	e, err := compileOperand(c, blk, x.Else, get, cget)
	if err != nil {
		return 0, err
	}
	ds := c.newSlot(k)
	*blk = append(*blk, func(fr *frame, n int) {
		dv := fr.vecs[ds]
		dv.Resize(n)
		d := get(dv)[:n]
		cond := fr.vecs[cs].B[:n]
		tv := t.load(fr, n)
		ev := e.load(fr, n)
		for i := range d {
			if cond[i] {
				d[i] = tv[i]
			} else {
				d[i] = ev[i]
			}
		}
		fr.ctx.Counters.VMOps += int64(n)
	})
	return ds, nil
}

// expr compiles an expression, appending its ops to blk, and returns the
// slot holding the dense result at the current scope cardinality.
//
//inklint:dispatch ir.Expr
func (c *compiler) expr(e ir.Expr, blk *[]exec) (int, error) {
	switch x := e.(type) {
	case ir.VarRef:
		return c.slot(x.V)

	case ir.ConstRef:
		// Standalone constant: broadcast into a fresh slot.
		ds := c.newSlot(x.K)
		id := x.StateID
		switch x.K {
		case types.Bool:
			cg := constB(id)
			*blk = append(*blk, func(fr *frame, n int) { fillVec(fr, ds, n, cg(fr.state), getB) })
		case types.Int32, types.Date:
			cg := constI32(id)
			*blk = append(*blk, func(fr *frame, n int) { fillVec(fr, ds, n, cg(fr.state), getI32) })
		case types.Int64:
			cg := constI64(id)
			*blk = append(*blk, func(fr *frame, n int) { fillVec(fr, ds, n, cg(fr.state), getI64) })
		case types.Float64:
			cg := constF64(id)
			*blk = append(*blk, func(fr *frame, n int) { fillVec(fr, ds, n, cg(fr.state), getF64) })
		case types.String:
			cg := constStr(id)
			*blk = append(*blk, func(fr *frame, n int) { fillVec(fr, ds, n, cg(fr.state), getStr) })
		default:
			return 0, fmt.Errorf("const of kind %v", x.K)
		}
		return ds, nil

	case ir.BinExpr:
		switch x.Kind() {
		case types.Int32:
			return buildArith(c, blk, x, types.Int32, getI32, constI32)
		case types.Int64:
			return buildArith(c, blk, x, types.Int64, getI64, constI64)
		case types.Float64:
			return buildArith(c, blk, x, types.Float64, getF64, constF64)
		default:
			return 0, fmt.Errorf("arith on kind %v", x.Kind())
		}

	case ir.CmpExpr:
		switch x.L.Kind() {
		case types.Int32, types.Date:
			return buildCmp(c, blk, x, getI32, constI32)
		case types.Int64:
			return buildCmp(c, blk, x, getI64, constI64)
		case types.Float64:
			return buildCmp(c, blk, x, getF64, constF64)
		case types.String:
			return buildCmp(c, blk, x, getStr, constStr)
		default:
			return 0, fmt.Errorf("compare on kind %v", x.L.Kind())
		}

	case ir.LogicExpr:
		ls, err := c.expr(x.L, blk)
		if err != nil {
			return 0, err
		}
		rs, err := c.expr(x.R, blk)
		if err != nil {
			return 0, err
		}
		ds := c.newSlot(types.Bool)
		and := x.Op == ir.And
		*blk = append(*blk, func(fr *frame, n int) {
			dv := fr.vecs[ds]
			dv.Resize(n)
			d := dv.B[:n]
			a := fr.vecs[ls].B[:n]
			b := fr.vecs[rs].B[:n]
			if and {
				for i := range d {
					d[i] = a[i] && b[i]
				}
			} else {
				for i := range d {
					d[i] = a[i] || b[i]
				}
			}
			fr.ctx.Counters.VMOps += int64(n)
		})
		return ds, nil

	case ir.NotExpr:
		es, err := c.expr(x.E, blk)
		if err != nil {
			return 0, err
		}
		ds := c.newSlot(types.Bool)
		*blk = append(*blk, func(fr *frame, n int) {
			dv := fr.vecs[ds]
			dv.Resize(n)
			d := dv.B[:n]
			a := fr.vecs[es].B[:n]
			for i := range d {
				d[i] = !a[i]
			}
			fr.ctx.Counters.VMOps += int64(n)
		})
		return ds, nil

	case ir.CastExpr:
		es, err := c.expr(x.E, blk)
		if err != nil {
			return 0, err
		}
		from, to := x.E.Kind(), x.To
		ds := c.newSlot(to)
		var op exec
		switch {
		case (from == types.Int32 || from == types.Date) && to == types.Int64:
			op = func(fr *frame, n int) {
				dv := fr.vecs[ds]
				dv.Resize(n)
				d := dv.I64[:n]
				a := fr.vecs[es].I32[:n]
				for i := range d {
					d[i] = int64(a[i])
				}
				fr.ctx.Counters.VMOps += int64(n)
			}
		case (from == types.Int32 || from == types.Date) && to == types.Float64:
			op = func(fr *frame, n int) {
				dv := fr.vecs[ds]
				dv.Resize(n)
				d := dv.F64[:n]
				a := fr.vecs[es].I32[:n]
				for i := range d {
					d[i] = float64(a[i])
				}
				fr.ctx.Counters.VMOps += int64(n)
			}
		case from == types.Int64 && to == types.Float64:
			op = func(fr *frame, n int) {
				dv := fr.vecs[ds]
				dv.Resize(n)
				d := dv.F64[:n]
				a := fr.vecs[es].I64[:n]
				for i := range d {
					d[i] = float64(a[i])
				}
				fr.ctx.Counters.VMOps += int64(n)
			}
		case from == types.Int64 && to == types.Int32:
			op = func(fr *frame, n int) {
				dv := fr.vecs[ds]
				dv.Resize(n)
				d := dv.I32[:n]
				a := fr.vecs[es].I64[:n]
				for i := range d {
					d[i] = int32(a[i])
				}
				fr.ctx.Counters.VMOps += int64(n)
			}
		default:
			return 0, fmt.Errorf("unsupported cast %v -> %v", from, to)
		}
		*blk = append(*blk, op)
		return ds, nil

	case ir.LikeExpr:
		ss, err := c.expr(x.S, blk)
		if err != nil {
			return 0, err
		}
		ds := c.newSlot(types.Bool)
		id, neg := x.StateID, x.Negate
		*blk = append(*blk, func(fr *frame, n int) {
			m := fr.state[id].(*rt.LikeState).M
			dv := fr.vecs[ds]
			dv.Resize(n)
			d := dv.B[:n]
			s := fr.vecs[ss].Str[:n]
			for i := range d {
				d[i] = m.Match(s[i]) != neg
			}
			fr.ctx.Counters.VMOps += int64(n)
		})
		return ds, nil

	case ir.InListExpr:
		ss, err := c.expr(x.S, blk)
		if err != nil {
			return 0, err
		}
		ds := c.newSlot(types.Bool)
		id := x.StateID
		*blk = append(*blk, func(fr *frame, n int) {
			set := fr.state[id].(*rt.InListState).Set
			dv := fr.vecs[ds]
			dv.Resize(n)
			d := dv.B[:n]
			s := fr.vecs[ss].Str[:n]
			for i := range d {
				d[i] = set[s[i]]
			}
			fr.ctx.Counters.VMOps += int64(n)
		})
		return ds, nil

	case ir.StrLower:
		ss, err := c.expr(x.E, blk)
		if err != nil {
			return 0, err
		}
		ds := c.newSlot(types.String)
		*blk = append(*blk, func(fr *frame, n int) {
			dv := fr.vecs[ds]
			dv.Resize(n)
			d := dv.Str[:n]
			s := fr.vecs[ss].Str[:n]
			for i := range d {
				d[i] = strings.ToLower(s[i])
			}
			fr.ctx.Counters.VMOps += int64(n)
		})
		return ds, nil

	case ir.CondExpr:
		switch x.Kind() {
		case types.Bool:
			return buildSelect(c, blk, x, types.Bool, getB, constB)
		case types.Int32, types.Date:
			return buildSelect(c, blk, x, x.Kind(), getI32, constI32)
		case types.Int64:
			return buildSelect(c, blk, x, types.Int64, getI64, constI64)
		case types.Float64:
			return buildSelect(c, blk, x, types.Float64, getF64, constF64)
		case types.String:
			return buildSelect(c, blk, x, types.String, getStr, constStr)
		default:
			return 0, fmt.Errorf("case of kind %v", x.Kind())
		}

	case ir.UnpackFixed:
		rs, err := c.expr(x.Row, blk)
		if err != nil {
			return 0, err
		}
		ds := c.newSlot(x.K)
		id := x.StateID
		payload := x.Region == ir.PayloadRegion
		base := func(r []byte) int {
			if payload {
				return rt.RowPayloadOff(r)
			}
			return 4
		}
		var op exec
		switch x.K {
		case types.Bool:
			op = unpackOp(rs, ds, id, base, getB, rt.GetBool)
		case types.Int32, types.Date:
			op = unpackOp(rs, ds, id, base, getI32, rt.GetI32)
		case types.Int64:
			op = unpackOp(rs, ds, id, base, getI64, rt.GetI64)
		case types.Float64:
			op = unpackOp(rs, ds, id, base, getF64, rt.GetF64)
		default:
			return 0, fmt.Errorf("unpack fixed of kind %v", x.K)
		}
		*blk = append(*blk, op)
		return ds, nil

	case ir.UnpackStr:
		rs, err := c.expr(x.Row, blk)
		if err != nil {
			return 0, err
		}
		ds := c.newSlot(types.String)
		id := x.StateID
		key := x.Region == ir.KeyRegion
		*blk = append(*blk, func(fr *frame, n int) {
			st := fr.state[id].(*rt.VarSlotState)
			dv := fr.vecs[ds]
			dv.Resize(n)
			d := dv.Str[:n]
			rows := fr.vecs[rs].Ptr[:n]
			for i := range d {
				r := rows[i]
				if r == nil {
					d[i] = ""
					continue
				}
				var off int
				if key {
					off = rt.KeyStringOff(r, st.FixedWidth, st.VarIdx)
				} else {
					off = rt.PayloadStringOff(r, st.FixedWidth, st.VarIdx)
				}
				d[i] = rt.GetString(r, off)
			}
			fr.ctx.Counters.VMOps += int64(n)
		})
		return ds, nil

	default:
		return 0, fmt.Errorf("unknown expr %T", e)
	}
}

func fillVec[T any](fr *frame, ds, n int, v T, get func(*storage.Vector) []T) {
	dv := fr.vecs[ds]
	dv.Resize(n)
	d := get(dv)[:n]
	for i := range d {
		d[i] = v
	}
	fr.ctx.Counters.VMOps += int64(n)
}

func unpackOp[T any](rs, ds, stateID int, base func([]byte) int,
	get func(*storage.Vector) []T, read func([]byte, int) T) exec {
	return func(fr *frame, n int) {
		off := fr.state[stateID].(*rt.OffsetState).Off
		dv := fr.vecs[ds]
		dv.Resize(n)
		d := get(dv)[:n]
		rows := fr.vecs[rs].Ptr[:n]
		var zero T
		for i := range d {
			r := rows[i]
			if r == nil {
				d[i] = zero
				continue
			}
			d[i] = read(r, base(r)+off)
		}
		fr.ctx.Counters.VMOps += int64(n)
	}
}

package serve

// Serving-layer tests: queries over HTTP execute and advance the metrics, a
// panicking query returns a structured 500 with the engine's *QueryError
// location while the server keeps serving, and the fault-injection points in
// the request path fire.

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"inkfuse/internal/faultinject"
)

var (
	testSrvOnce sync.Once
	testSrv     *Server
)

// testServer shares one SF 0.01 catalog across the package's tests.
func testServer() *Server {
	testSrvOnce.Do(func() {
		testSrv = New(Config{
			SF:        0.01,
			SlowQuery: time.Hour, // keep the log quiet at Info
			Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
	})
	return testSrv
}

func postQuery(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestQuerySuccessAdvancesMetrics(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	// Scrape before, so the test asserts a delta, not an absolute count
	// (other tests share the process-wide registries).
	_, before := get(t, ts, "/metrics")
	resp, body := postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if qr.Rows == 0 || qr.WallMS <= 0 || len(qr.Columns) == 0 || len(qr.Data) == 0 {
		t.Fatalf("thin response: %+v", qr)
	}
	_, after := get(t, ts, "/metrics")
	for _, metric := range []string{
		"inkfuse_queries_started",
		`inkfuse_query_seconds_bucket{backend="vectorized",le="+Inf"}`,
		`inkfuse_morsel_seconds_count{backend="vectorized"}`,
	} {
		if !strings.Contains(string(after), metric) {
			t.Errorf("/metrics missing %q", metric)
		}
	}
	if counterValue(t, after, "inkfuse_queries_succeeded") <= counterValue(t, before, "inkfuse_queries_succeeded") {
		t.Error("query counter did not advance")
	}
	if counterValue(t, after, `inkfuse_query_seconds_count{backend="vectorized"}`) <=
		counterValue(t, before, `inkfuse_query_seconds_count{backend="vectorized"}`) {
		t.Error("query latency histogram did not advance")
	}
}

// counterValue extracts one metric's value from an exposition body (0 when
// the metric is not present yet).
func counterValue(t *testing.T, exposition []byte, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(exposition), "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("unparsable metric line %q: %v", line, err)
		}
		return v
	}
	return 0
}

func TestPanicQueryReturns500AndServerSurvives(t *testing.T) {
	defer faultinject.Reset()
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Panic: "injected query panic"})
	resp, body := postQuery(t, ts, `{"query":"q1","backend":"vectorized"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("bad error JSON: %v\n%s", err, body)
	}
	if er.Kind != "panic" {
		t.Fatalf("kind %q, want panic: %+v", er.Kind, er)
	}
	if er.QueryError == nil || er.QueryError.Query != "q1" ||
		er.QueryError.Backend != "vectorized" || er.QueryError.Pipeline == "" {
		t.Fatalf("missing/incomplete query error location: %+v", er.QueryError)
	}

	// The panic was query-scoped: the same server keeps serving.
	faultinject.Reset()
	resp, body = postQuery(t, ts, `{"query":"q1","backend":"vectorized"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: status %d: %s", resp.StatusCode, body)
	}
}

func TestQueryTimeoutClassified(t *testing.T) {
	defer faultinject.Reset()
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Delay: 2 * time.Millisecond})
	resp, body := postQuery(t, ts, `{"query":"q1","backend":"vectorized","timeout_ms":1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "deadline" && er.Kind != "canceled" {
		t.Fatalf("kind %q: %+v", er.Kind, er)
	}
}

func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	resp, _ := postQuery(t, ts, `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", resp.StatusCode)
	}
	resp, body := postQuery(t, ts, `{"query":"q99"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown query: status %d, want 404: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "unknown_query" {
		t.Fatalf("kind %q, want unknown_query", er.Kind)
	}
	resp, _ = postQuery(t, ts, `{"query":"q6","backend":"turbo"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown backend: status %d, want 400", resp.StatusCode)
	}
}

func TestServeFaultPoints(t *testing.T) {
	defer faultinject.Reset()
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	// Each request-path point fires and fails only its own request.
	faultinject.Arm(faultinject.ServeParse, faultinject.Fault{Nth: 1})
	resp, _ := postQuery(t, ts, `{"query":"q6"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ServeParse fault: status %d, want 400", resp.StatusCode)
	}
	if faultinject.Calls(faultinject.ServeParse) == 0 {
		t.Fatal("ServeParse point not wired")
	}
	faultinject.Reset()

	faultinject.Arm(faultinject.ServeExecute, faultinject.Fault{Nth: 1, Panic: "execute-path panic"})
	resp, body := postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("ServeExecute panic: status %d, want 500: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "internal" {
		t.Fatalf("kind %q, want internal", er.Kind)
	}
	faultinject.Reset()

	faultinject.Arm(faultinject.ServeRespond, faultinject.Fault{Nth: 1})
	resp, _ = postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("ServeRespond fault: status %d, want 500", resp.StatusCode)
	}
	faultinject.Reset()

	// And after all that, the server still serves.
	resp, _ = postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after faults: status %d", resp.StatusCode)
	}
}

func TestExplainAndProfileOverHTTP(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts, `{"query":"q1","backend":"vectorized","explain":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qr.Explain, "== explain analyze q1") || !strings.Contains(qr.Explain, "-- subops:") {
		t.Fatalf("explain rendering missing suboperator profile:\n%s", qr.Explain)
	}
	resp, body = postQuery(t, ts, `{"query":"q6","backend":"vectorized","profile":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qr.Trace, "subops: sampled") {
		t.Fatalf("profile trace missing suboperator section:\n%s", qr.Trace)
	}
}

func TestAuxEndpoints(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts, "/queries")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"q6"`) {
		t.Fatalf("queries: %d %s", resp.StatusCode, body)
	}
	resp, _ = get(t, ts, "/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof: %d", resp.StatusCode)
	}
	resp, body = get(t, ts, "/debug/vars")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "inkfuse") {
		t.Fatalf("expvar: %d %s", resp.StatusCode, body)
	}
	resp, _ = get(t, ts, "/metrics")
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("metrics content type %q", got)
	}
}

func TestRowCapTruncates(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts, `{"query":"q1","backend":"vectorized","max_rows":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Data) != 1 || !qr.Truncated || qr.Rows <= 1 {
		t.Fatalf("row cap not applied: rows=%d data=%d truncated=%v", qr.Rows, len(qr.Data), qr.Truncated)
	}
}

package serve

// Tests for the SQL text path of the serve layer: raw SQL over HTTP, the
// prepared-statement lifecycle, plan-cache hit reporting, pre-admission
// rejection of malformed statements, and the bugfix sweep (rows_truncated
// semantics, 413 memory_budget classification).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"inkfuse/internal/faultinject"
)

func decodeQuery(t *testing.T, body []byte) QueryResponse {
	t.Helper()
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	return qr
}

func decodeError(t *testing.T, body []byte) ErrorResponse {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("bad error JSON: %v\n%s", err, body)
	}
	return er
}

func TestSQLOverHTTP(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	// Cold: the shape has never been seen, so the plan cache misses.
	resp, body := postQuery(t, ts,
		`{"sql":"select count(*) as n from lineitem where l_quantity < 10"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	qr := decodeQuery(t, body)
	if qr.Rows != 1 || len(qr.Data) != 1 || qr.Columns[0] != "n" {
		t.Fatalf("thin response: %+v", qr)
	}
	if qr.Fingerprint == "" || qr.PlanCache != "miss" {
		t.Fatalf("want fingerprint + plan_cache=miss, got %q/%q", qr.Fingerprint, qr.PlanCache)
	}

	// Warm: same shape, different literal — same fingerprint, cache hit.
	resp, body = postQuery(t, ts,
		`{"sql":"select count(*) as n from lineitem where l_quantity < 45"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	hit := decodeQuery(t, body)
	if hit.Fingerprint != qr.Fingerprint {
		t.Fatalf("literal change altered fingerprint: %q vs %q", hit.Fingerprint, qr.Fingerprint)
	}
	if hit.PlanCache != "hit" {
		t.Fatalf("want plan_cache=hit, got %q", hit.PlanCache)
	}

	// /queries reports the cache.
	resp, body = get(t, ts, "/queries")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queries: %d", resp.StatusCode)
	}
	var idx struct {
		PlanCache struct {
			Enabled bool  `json:"enabled"`
			Hits    int64 `json:"hits"`
		} `json:"plan_cache"`
	}
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatal(err)
	}
	if !idx.PlanCache.Enabled || idx.PlanCache.Hits < 1 {
		t.Fatalf("plan_cache stats not reported: %s", body)
	}
}

func TestPreparedLifecycle(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/prepare", "application/json",
		strings.NewReader(`{"sql":"select sum(l_extendedprice) as s from lineitem where l_quantity < ? and l_discount >= ?"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare: %d %s", resp.StatusCode, body)
	}
	var pr PrepareResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Handle == "" || pr.Params != 2 || pr.Fingerprint == "" {
		t.Fatalf("thin prepare response: %+v", pr)
	}

	// Execute twice with different parameter values; the second run must hit
	// the plan cache (same fingerprint, instance returned after run one).
	exec1 := fmt.Sprintf(`{"prepared":%q,"params":[30, 0.02]}`, pr.Handle)
	resp2, body := postQuery(t, ts, exec1)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("execute 1: %d %s", resp2.StatusCode, body)
	}
	first := decodeQuery(t, body)
	if first.Fingerprint != pr.Fingerprint {
		t.Fatalf("fingerprint mismatch: %q vs %q", first.Fingerprint, pr.Fingerprint)
	}
	resp2, body = postQuery(t, ts, fmt.Sprintf(`{"prepared":%q,"params":[11, 0.05]}`, pr.Handle))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("execute 2: %d %s", resp2.StatusCode, body)
	}
	if second := decodeQuery(t, body); second.PlanCache != "hit" {
		t.Fatalf("second execution should hit the plan cache, got %q", second.PlanCache)
	}

	// Wrong parameter count is rejected before execution.
	resp2, body = postQuery(t, ts, fmt.Sprintf(`{"prepared":%q,"params":[30]}`, pr.Handle))
	if er := decodeError(t, body); resp2.StatusCode != http.StatusBadRequest || er.Kind != "bad_params" {
		t.Fatalf("want 400 bad_params, got %d %s", resp2.StatusCode, body)
	}

	// Close the handle: 204, then the handle is gone for execute and DELETE.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/prepare/"+pr.Handle, nil)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNoContent {
		t.Fatalf("close: %d", resp3.StatusCode)
	}
	resp2, body = postQuery(t, ts, exec1)
	if er := decodeError(t, body); resp2.StatusCode != http.StatusNotFound || er.Kind != "unknown_prepared" {
		t.Fatalf("closed handle should 404, got %d %s", resp2.StatusCode, body)
	}
	resp3, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("double close: %d", resp3.StatusCode)
	}
}

// TestParseErrorsRejectBeforeAdmission: malformed SQL fails with 400 and a
// source location, and — the bugfix contract — never reaches the scheduler.
// The SchedAdmit injection point (armed with an unreachable Nth so it counts
// passages without firing) proves no admission attempt happened, and the pool
// stats prove no admission slot or memory reservation was held.
func TestParseErrorsRejectBeforeAdmission(t *testing.T) {
	srv := testServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faultinject.Arm(faultinject.SchedAdmit, faultinject.Fault{Nth: 1 << 40})
	defer faultinject.Reset()
	admitCalls := faultinject.Calls(faultinject.SchedAdmit)
	admitted := srv.SchedStats().Admitted

	// Parse error: position points at the token where FROM was expected.
	resp, body := postQuery(t, ts, `{"sql":"select l_orderkey frm lineitem"}`)
	er := decodeError(t, body)
	if resp.StatusCode != http.StatusBadRequest || er.Kind != "parse_error" {
		t.Fatalf("want 400 parse_error, got %d %s", resp.StatusCode, body)
	}
	if er.Location == nil || er.Location.Line != 1 || er.Location.Col != 23 {
		t.Fatalf("bad location: %s", body)
	}

	// Bind error: well-formed text, unknown column.
	resp, body = postQuery(t, ts, `{"sql":"select nope from lineitem"}`)
	er = decodeError(t, body)
	if resp.StatusCode != http.StatusBadRequest || er.Kind != "bind_error" {
		t.Fatalf("want 400 bind_error, got %d %s", resp.StatusCode, body)
	}
	if er.Location == nil || er.Location.Line != 1 || er.Location.Col != 8 {
		t.Fatalf("bad location: %s", body)
	}

	// Wrong parameter count on raw SQL, same guarantee.
	resp, body = postQuery(t, ts, `{"sql":"select count(*) as n from lineitem where l_quantity < ?","params":[1,2]}`)
	if er = decodeError(t, body); resp.StatusCode != http.StatusBadRequest || er.Kind != "bad_params" {
		t.Fatalf("want 400 bad_params, got %d %s", resp.StatusCode, body)
	}

	if got := faultinject.Calls(faultinject.SchedAdmit); got != admitCalls {
		t.Fatalf("rejected statements reached the scheduler: %d admission passages", got-admitCalls)
	}
	st := srv.SchedStats()
	if st.Admitted != admitted || st.MemReserved != 0 {
		t.Fatalf("rejected statements held scheduler state: %+v", st)
	}
}

// TestRowCapBoundary: rows_truncated flips exactly at the cap — false when
// max_rows equals the result cardinality, true one below it.
func TestRowCapBoundary(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts, `{"query":"q1","backend":"vectorized"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	full := decodeQuery(t, body)
	if full.TotalRows < 2 || full.RowsTruncated || full.TotalRows != full.Rows {
		t.Fatalf("baseline run unusable: %+v", full)
	}

	resp, body = postQuery(t, ts, fmt.Sprintf(`{"query":"q1","backend":"vectorized","max_rows":%d}`, full.TotalRows))
	atCap := decodeQuery(t, body)
	if resp.StatusCode != http.StatusOK || atCap.RowsTruncated || atCap.Truncated ||
		len(atCap.Data) != full.TotalRows || atCap.TotalRows != full.TotalRows {
		t.Fatalf("cap == cardinality must not truncate: %d %+v", resp.StatusCode, atCap)
	}

	resp, body = postQuery(t, ts, fmt.Sprintf(`{"query":"q1","backend":"vectorized","max_rows":%d}`, full.TotalRows-1))
	below := decodeQuery(t, body)
	if resp.StatusCode != http.StatusOK || !below.RowsTruncated || !below.Truncated ||
		len(below.Data) != full.TotalRows-1 || below.TotalRows != full.TotalRows {
		t.Fatalf("cap == cardinality-1 must truncate: %d %+v", resp.StatusCode, below)
	}
}

// TestMemoryBudgetIs413: a query that exceeds its own memory budget is a
// client-sized request, not a server fault — 413 memory_budget, not 500.
func TestMemoryBudgetIs413(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts, `{"query":"q1","backend":"vectorized","memory_budget":1}`)
	er := decodeError(t, body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || er.Kind != "memory_budget" {
		t.Fatalf("want 413 memory_budget, got %d %s", resp.StatusCode, body)
	}
}

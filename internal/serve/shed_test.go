package serve

// Load-shedding and graceful-drain tests: an overloaded server returns 429 +
// Retry-After (never 500), /healthz degrades to 503 while shedding, Close
// rejects new queries with 503 "draining" and force-cancels in-flight ones as
// 504 at the drain deadline — the full overload contract of DESIGN.md §11.

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"inkfuse/internal/faultinject"
	"inkfuse/internal/sched"
)

// newShedServer builds a small private server; shed tests cannot share the
// package's common instance because they need their own admission config.
func newShedServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.SF = 0.005
	cfg.SlowQuery = time.Hour
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	return New(cfg)
}

// waitSched polls the server's scheduler until cond holds.
func waitSched(t *testing.T, srv *Server, cond func(sched.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(srv.SchedStats()) {
		if time.Now().After(deadline) {
			t.Fatalf("scheduler never reached expected state: %+v", srv.SchedStats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOverloadShedsWith429AndHealthDegrades(t *testing.T) {
	defer faultinject.Reset()
	srv := newShedServer(t, Config{MaxConcurrent: 1, QueueDepth: -1})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Slow morsels keep the first query holding the only admission slot
	// while the second arrives.
	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Delay: 50 * time.Millisecond})
	firstDone := make(chan int, 1)
	go func() {
		resp, _ := postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
		firstDone <- resp.StatusCode
	}()
	waitSched(t, srv, func(s sched.Stats) bool { return s.Running == 1 })

	// No queue: the second query is shed immediately with 429 + Retry-After.
	resp, body := postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
	if resp.StatusCode != 429 {
		t.Fatalf("overloaded query status = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After header")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != "shed" {
		t.Fatalf("shed response kind = %q (err %v), want \"shed\"", er.Kind, err)
	}

	// Health reports shedding at 503 while the slot is held and the (empty)
	// queue is full.
	hresp, hbody := get(t, ts, "/healthz")
	if hresp.StatusCode != 503 || !strings.Contains(string(hbody), `"status": "shedding"`) {
		t.Fatalf("healthz under overload = %d %s, want 503 shedding", hresp.StatusCode, hbody)
	}

	// The held query itself completes fine once its morsels finish.
	faultinject.Reset()
	if code := <-firstDone; code != 200 {
		t.Fatalf("held query status = %d, want 200", code)
	}
	waitSched(t, srv, func(s sched.Stats) bool { return s.Running == 0 })
	if hresp, hbody = get(t, ts, "/healthz"); hresp.StatusCode != 200 {
		t.Fatalf("healthz after load = %d %s, want 200", hresp.StatusCode, hbody)
	}

	// The observability surfaces report the shed: /queries scheduler section
	// and the expvar/metrics counters.
	qresp, qbody := get(t, ts, "/queries")
	if qresp.StatusCode != 200 {
		t.Fatalf("/queries status = %d", qresp.StatusCode)
	}
	var ql struct {
		Scheduler struct {
			MaxConcurrent int   `json:"max_concurrent"`
			Shed          int64 `json:"shed"`
		} `json:"scheduler"`
	}
	if err := json.Unmarshal(qbody, &ql); err != nil {
		t.Fatal(err)
	}
	if ql.Scheduler.MaxConcurrent != 1 || ql.Scheduler.Shed != 1 {
		t.Fatalf("/queries scheduler = %+v, want max_concurrent 1, shed 1", ql.Scheduler)
	}
	mresp, mbody := get(t, ts, "/metrics")
	if mresp.StatusCode != 200 || !strings.Contains(string(mbody), "inkfuse_sched_shed") {
		t.Fatalf("/metrics missing sched counters: %d", mresp.StatusCode)
	}
}

func TestDrainRejectsNewAndCancelsInFlight(t *testing.T) {
	defer faultinject.Reset()
	srv := newShedServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Delay: 50 * time.Millisecond})
	type result struct {
		code int
		body []byte
	}
	inflight := make(chan result, 1)
	go func() {
		resp, body := postQuery(t, ts, `{"query":"q1","backend":"vectorized"}`)
		inflight <- result{resp.StatusCode, body}
	}()
	waitSched(t, srv, func(s sched.Stats) bool { return s.Running == 1 })

	// Drain with an already-expired deadline: the in-flight query is
	// force-canceled and its request ends as 504, never 500.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cs := srv.Close(ctx)
	if cs.Canceled != 1 {
		t.Fatalf("CloseStats = %+v, want 1 canceled", cs)
	}
	r := <-inflight
	if r.code != 504 {
		t.Fatalf("drained in-flight query status = %d, want 504: %s", r.code, r.body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(r.body, &er); err != nil || er.Kind != "canceled" {
		t.Fatalf("drained query kind = %q (err %v), want \"canceled\"", er.Kind, err)
	}

	// After Close: new queries get 503 "draining", health reports draining.
	resp, body := postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
	if resp.StatusCode != 503 {
		t.Fatalf("post-drain query status = %d, want 503: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != "draining" {
		t.Fatalf("post-drain kind = %q (err %v), want \"draining\"", er.Kind, err)
	}
	hresp, hbody := get(t, ts, "/healthz")
	if hresp.StatusCode != 503 || !strings.Contains(string(hbody), `"status": "draining"`) {
		t.Fatalf("healthz after drain = %d %s, want 503 draining", hresp.StatusCode, hbody)
	}
}

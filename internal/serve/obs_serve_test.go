package serve

// Observability-surface tests: the flight recorder endpoint, flight context
// on error responses, W3C traceparent ingestion and span export, the
// canonical query log (with fingerprint and plan-cache outcome), and the
// per-query admission detail on /queries.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"inkfuse/internal/faultinject"
	"inkfuse/internal/sched"
)

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		in          string
		trace, span string
	}{
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7"},
		{" 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00 ", "4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7"},
		{"", "", ""},
		{"garbage", "", ""},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", "", ""},          // missing flags
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", "", ""},       // zero trace id
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", "", ""},       // zero span id
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", "", ""},       // uppercase forbidden
		{"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7xx-01", "", ""},       // wrong lengths
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", "", ""}, // trailing part
		{"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "", ""},       // non-hex version
	}
	for _, c := range cases {
		gotT, gotS := parseTraceparent(c.in)
		if gotT != c.trace || gotS != c.span {
			t.Errorf("parseTraceparent(%q) = (%q, %q), want (%q, %q)", c.in, gotT, gotS, c.trace, c.span)
		}
	}
}

func TestFlightEndpointRecordsQueries(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.QueryID == 0 {
		t.Fatal("response missing engine query id")
	}

	fresp, fbody := get(t, ts, "/debug/flight")
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight status %d", fresp.StatusCode)
	}
	dump := string(fbody)
	if !strings.Contains(dump, "flight recorder:") {
		t.Fatalf("dump missing header:\n%s", dump)
	}
	for _, kind := range []string{"query_start", "admitted", "morsel_batch", "query_done"} {
		if !strings.Contains(dump, kind) {
			t.Fatalf("dump missing %q events:\n%s", kind, dump)
		}
	}

	// Per-query filtering returns only this query's (and engine-wide) events.
	fresp, fbody = get(t, ts, "/debug/flight?q="+jsonNumber(qr.QueryID))
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight?q status %d", fresp.StatusCode)
	}
	if !strings.Contains(string(fbody), "query_done") {
		t.Fatalf("filtered dump missing this query's completion:\n%s", fbody)
	}
}

func jsonNumber(v uint64) string {
	raw, _ := json.Marshal(v)
	return string(raw)
}

func TestErrorResponseCarriesFlightContext(t *testing.T) {
	defer faultinject.Reset()
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Err: faultinject.ErrInjected})
	resp, body := postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.QueryID == 0 {
		t.Fatalf("error response missing query id: %s", body)
	}
	if len(er.Flight) == 0 {
		t.Fatalf("error response missing flight context: %s", body)
	}
	joined := strings.Join(er.Flight, "\n")
	for _, kind := range []string{"query_start", "query_error"} {
		if !strings.Contains(joined, kind) {
			t.Fatalf("flight context missing %q:\n%s", kind, joined)
		}
	}
}

func TestShedResponseCarriesFlightContext(t *testing.T) {
	defer faultinject.Reset()
	srv := newShedServer(t, Config{MaxConcurrent: 1, QueueDepth: -1})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Delay: 50 * time.Millisecond})
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
	}()
	waitSched(t, srv, func(s sched.Stats) bool { return s.Running == 1 })

	resp, body := postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
	<-firstDone
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "shed" || len(er.Flight) == 0 {
		t.Fatalf("shed response missing flight context: %s", body)
	}
	if !strings.Contains(strings.Join(er.Flight, "\n"), "shed") {
		t.Fatalf("flight context missing the shed event: %v", er.Flight)
	}
}

func TestSpanExportInlineAndSink(t *testing.T) {
	var sink bytes.Buffer
	srv := newShedServer(t, Config{SpanSink: &syncWriter{w: &sink}})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, err := http.NewRequest("POST", ts.URL+"/query",
		strings.NewReader(`{"query":"q6","backend":"vectorized","spans":true}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id not echoed: %q", qr.TraceID)
	}
	if len(qr.Spans) == 0 {
		t.Fatal("spans requested but not returned inline")
	}
	// writeJSON re-indents the embedded document, so match values, not
	// compact key:value pairs.
	s := string(qr.Spans)
	if !strings.Contains(s, `"resourceSpans"`) ||
		!strings.Contains(s, `"4bf92f3577b34da6a3ce929d0e0e4736"`) ||
		!strings.Contains(s, `"00f067aa0ba902b7"`) {
		t.Fatalf("inline spans did not join the client trace: %s", s)
	}

	// The sink got the same document, one JSON line per query.
	line := strings.TrimSpace(sink.String())
	if line == "" {
		t.Fatal("span sink empty")
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &doc); err != nil {
		t.Fatalf("span sink line is not JSON: %v", err)
	}
	if _, ok := doc["resourceSpans"]; !ok {
		t.Fatalf("span sink line missing resourceSpans: %s", line)
	}
}

// syncWriter guards a bytes.Buffer the test reads back (the server also
// serializes sink writes; this covers the test's own read).
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestCanonicalQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{mu: &mu, w: &buf}, nil))
	srv := New(Config{SF: 0.005, Logger: logger, SlowQuery: time.Nanosecond})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts, `{"sql":"select count(*) as n from lineitem where l_quantity < 24"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	var event map[string]any
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %v (%q)", err, line)
		}
		if m["msg"] == "query" {
			event = m
			break
		}
	}
	if event == nil {
		t.Fatalf("no canonical query event in log:\n%s", out)
	}
	// The wide event carries identity, routing and the slow-query verdict —
	// including fingerprint and plan_cache, which the old slow log dropped.
	for _, k := range []string{"id", "query", "source", "backend", "outcome", "wall", "queue_wait", "rows", "tuples", "fingerprint", "plan_cache", "slow"} {
		if _, ok := event[k]; !ok {
			t.Fatalf("canonical event missing %q: %v", k, event)
		}
	}
	if event["source"] != "sql" || event["outcome"] != "ok" || event["level"] != "WARN" {
		t.Fatalf("event source/outcome/level = %v/%v/%v", event["source"], event["outcome"], event["level"])
	}
	if event["plan_cache"] != "miss" && event["plan_cache"] != "hit" {
		t.Fatalf("plan_cache = %v", event["plan_cache"])
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestQueriesEndpointShowsActiveQueries(t *testing.T) {
	defer faultinject.Reset()
	srv := newShedServer(t, Config{MaxConcurrent: 1})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Delay: 50 * time.Millisecond})
	done := make(chan struct{})
	go func() {
		defer close(done)
		postQuery(t, ts, `{"query":"q6","backend":"vectorized"}`)
	}()
	go func() {
		postQuery(t, ts, `{"query":"q1","backend":"vectorized"}`)
	}()
	waitSched(t, srv, func(s sched.Stats) bool { return s.Running == 1 && s.Queued == 1 })

	_, body := get(t, ts, "/queries")
	var ql struct {
		Active []struct {
			ID          uint64  `json:"id"`
			Query       string  `json:"query"`
			Backend     string  `json:"backend"`
			State       string  `json:"state"`
			QueueWaitMS float64 `json:"queue_wait_ms"`
		} `json:"active"`
	}
	if err := json.Unmarshal(body, &ql); err != nil {
		t.Fatal(err)
	}
	faultinject.Reset()
	<-done

	states := map[string]int{}
	for _, a := range ql.Active {
		states[a.State]++
		if a.ID == 0 || a.Query == "" || a.Backend == "" {
			t.Fatalf("active entry missing identity: %+v", a)
		}
	}
	if states["running"] != 1 || states["queued"] != 1 {
		t.Fatalf("active states = %v, want 1 running + 1 queued (%s)", states, body)
	}
	for _, a := range ql.Active {
		if a.State == "queued" && a.QueueWaitMS <= 0 {
			t.Fatalf("queued entry has no queue wait so far: %+v", a)
		}
	}
}

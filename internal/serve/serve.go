// Package serve implements inkserve, the long-running HTTP engine server:
// JSON queries over a resident TPC-H catalog executed through
// exec.ExecuteContext with per-request timeout, memory budget and backend
// selection; Prometheus text exposition on /metrics; health and liveness on
// /healthz; and the Go profiling endpoints under /debug/pprof.
//
// The server is a thin stateless shell around the engine: every request is
// one query, isolated by the executor's cancellation/panic/budget machinery,
// so a failing request returns a structured error while the process and
// concurrent requests keep serving.
//
// Observability: every query completion emits one canonical wide event
// (obs.QueryEvent) through log/slog, tail-sampled so errors, shed, slow and
// degraded queries always log while plain successes log at
// Config.LogSampleRate. The engine flight recorder is exposed at
// GET /debug/flight, and any query ending in error carries its recent flight
// events in the error response. Requests may join a distributed trace via the
// W3C traceparent header; traced executions export OTLP-shaped JSON spans to
// Config.SpanSink and, on request, inline in the response.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inkfuse/internal/algebra"
	"inkfuse/internal/core"
	"inkfuse/internal/exec"
	"inkfuse/internal/faultinject"
	"inkfuse/internal/flight"
	"inkfuse/internal/obs"
	"inkfuse/internal/plancache"
	"inkfuse/internal/sched"
	"inkfuse/internal/sql"
	"inkfuse/internal/storage"
	"inkfuse/internal/tpch"
	"inkfuse/internal/types"
)

// Config configures an inkserve instance.
type Config struct {
	// SF / Seed parameterize the resident TPC-H catalog (SF 0.1 ≈ 600k
	// lineitem rows). SF <= 0 defaults to 0.1.
	SF   float64
	Seed uint64
	// DefaultBackend serves requests that do not name one ("" = hybrid).
	DefaultBackend string
	// DefaultTimeout bounds requests that do not set timeout_ms (0 = none
	// beyond the client connection's lifetime).
	DefaultTimeout time.Duration
	// SlowQuery is the slow-query log threshold; queries at or above it log
	// at Warn instead of Info. 0 disables the distinction.
	SlowQuery time.Duration
	// MaxRows caps the result rows inlined into a response (and is itself the
	// cap for per-request max_rows). <= 0 defaults to 100.
	MaxRows int
	// EngineWorkers sizes the engine-wide scheduler pool all requests share
	// (0 = sched.DefaultWorkers()). Per-request workers stay the query's
	// parallelism; the pool bounds total execution concurrency.
	EngineWorkers int
	// MaxConcurrent caps concurrently executing queries; excess requests wait
	// in the bounded admission queue and are shed with 429 once it fills.
	// 0 = unlimited (no admission control).
	MaxConcurrent int
	// QueueDepth bounds the admission queue (0 = sched.DefaultQueueDepth,
	// negative = no queue: shed immediately at capacity).
	QueueDepth int
	// MemLimit caps the sum of admitted queries' memory budgets
	// (0 = unlimited).
	MemLimit int64
	// PlanCacheEntries bounds distinct query shapes in the plan/artifact
	// cache (0 = 64; negative disables caching entirely).
	PlanCacheEntries int
	// PlanCacheBytes bounds the cache's summed artifact cost. 0 derives the
	// bound from MemLimit (MemLimit/8, so cached artifacts never crowd out
	// query memory reservations) or falls back to the plancache default.
	PlanCacheBytes int64
	// MaxPrepared caps registered prepared statements (0 = 4096).
	MaxPrepared int
	// Logger receives the query log; nil uses slog.Default().
	Logger *slog.Logger
	// LogSampleRate tail-samples the canonical query log: errors, shed, slow
	// and degraded queries always log; plain successes log at this fraction.
	// 0 keeps everything (sampling off); negative drops all plain successes.
	LogSampleRate float64
	// SpanSink receives one OTLP JSON span document (one line) per traced
	// query. Setting it enables execution tracing on every query.
	SpanSink io.Writer
}

// Server is one inkserve instance: a resident catalog, the engine-wide
// scheduler pool every request executes through, and the HTTP handlers.
type Server struct {
	cfg     Config
	cat     *storage.Catalog
	pool    *sched.Pool
	cache   *plancache.Cache // nil when disabled
	log     *slog.Logger
	sampler obs.TailSampler
	spanMu  sync.Mutex // serializes SpanSink writes

	prepMu   sync.Mutex
	prepared map[string]*sql.Statement
	prepSeq  atomic.Int64

	start    time.Time
	seq      atomic.Int64 // request ids for the query log
	served   atomic.Int64 // completed /query requests
	inflight atomic.Int64
}

// New builds a server, generating the resident TPC-H catalog.
func New(cfg Config) *Server {
	if cfg.SF <= 0 {
		cfg.SF = 0.1
	}
	if cfg.DefaultBackend == "" {
		cfg.DefaultBackend = "hybrid"
	}
	if cfg.MaxRows <= 0 {
		cfg.MaxRows = 100
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	if cfg.MaxPrepared <= 0 {
		cfg.MaxPrepared = 4096
	}
	pool := sched.NewPool(sched.Config{
		Workers:       cfg.EngineWorkers,
		MaxConcurrent: cfg.MaxConcurrent,
		QueueDepth:    cfg.QueueDepth,
		MemLimit:      cfg.MemLimit,
	})
	var cache *plancache.Cache
	if cfg.PlanCacheEntries >= 0 {
		bytes := cfg.PlanCacheBytes
		if bytes == 0 && cfg.MemLimit > 0 {
			bytes = cfg.MemLimit / 8
		}
		cache = plancache.New(plancache.Config{MaxEntries: cfg.PlanCacheEntries, MaxBytes: bytes})
	}
	sampler := obs.TailSampler{SuccessRate: cfg.LogSampleRate}
	if cfg.LogSampleRate == 0 {
		sampler.SuccessRate = 1
	}
	return &Server{
		cfg: cfg, cat: tpch.Generate(cfg.SF, cfg.Seed), pool: pool, cache: cache,
		prepared: make(map[string]*sql.Statement), log: log, sampler: sampler,
		start: time.Now(),
	}
}

// Close drains the server's scheduler: admissions stop (new queries get 503
// "draining"), in-flight queries run until ctx expires, and stragglers are
// then canceled (their requests end with 504). Returns how the drain
// resolved; call once, at shutdown, alongside http.Server.Shutdown.
func (s *Server) Close(ctx context.Context) sched.CloseStats {
	return s.pool.Close(ctx)
}

// SchedStats snapshots the server's scheduler pool (health and tests).
func (s *Server) SchedStats() sched.Stats {
	return s.pool.Stats()
}

// Handler returns the server's route table. Everything is mounted on a fresh
// mux (nothing leaks onto http.DefaultServeMux), including the pprof and
// expvar endpoints a production deployment scrapes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /prepare", s.handlePrepare)
	mux.HandleFunc("DELETE /prepare/{handle}", s.handleClosePrepared)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /queries", s.handleQueries)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// QueryRequest is the JSON body of POST /query. Exactly one of Query, SQL,
// Prepared selects what runs.
type QueryRequest struct {
	// Query names one of the served TPC-H queries (see GET /queries).
	Query string `json:"query,omitempty"`
	// SQL is a SELECT statement compiled by the text frontend. Literals are
	// auto-parameterized: repeated shapes share a plan-cache entry.
	SQL string `json:"sql,omitempty"`
	// Prepared executes a statement registered via POST /prepare.
	Prepared string `json:"prepared,omitempty"`
	// Params fills the statement's ? placeholders, in text order. Numbers
	// bind to the column kind the planner inferred; dates are "YYYY-MM-DD"
	// strings.
	Params []any `json:"params,omitempty"`
	// Backend selects the execution backend ("vectorized", "compiling",
	// "rof", "hybrid"); empty uses the server default.
	Backend string `json:"backend,omitempty"`
	// TimeoutMS bounds this query's execution; 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MemoryBudget caps the query's runtime-state bytes (0 = unlimited).
	MemoryBudget int64 `json:"memory_budget,omitempty"`
	// Workers overrides the worker count (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Explain returns the EXPLAIN ANALYZE rendering (with the per-suboperator
	// profile) alongside the result.
	Explain bool `json:"explain,omitempty"`
	// Profile enables the sampled suboperator profiler and attaches the trace
	// dump even without Explain.
	Profile bool `json:"profile,omitempty"`
	// MaxRows caps the rows inlined into the response (bounded by the server
	// cap; 0 = server cap).
	MaxRows int `json:"max_rows,omitempty"`
	// Spans enables execution tracing and returns the query's OTLP-shaped
	// span document inline in the response.
	Spans bool `json:"spans,omitempty"`
}

// QueryResponse is the JSON body of a successful POST /query.
type QueryResponse struct {
	ID         int64    `json:"id"`
	Query      string   `json:"query"`
	Backend    string   `json:"backend"`
	Rows       int      `json:"rows"`
	WallMS     float64  `json:"wall_ms"`
	RowsPerSec float64  `json:"rows_per_sec,omitempty"` // source tuples/sec
	Columns    []string `json:"columns,omitempty"`
	Data       [][]any  `json:"data,omitempty"`
	// TotalRows is the full result cardinality; Data holds min(TotalRows,
	// max_rows) rows and RowsTruncated says whether the cap cut anything.
	// Truncated is the legacy alias of RowsTruncated.
	TotalRows     int      `json:"total_rows"`
	RowsTruncated bool     `json:"rows_truncated"`
	Truncated     bool     `json:"truncated,omitempty"`
	Warnings      []string `json:"warnings,omitempty"`
	Explain       string   `json:"explain,omitempty"`
	Trace         string   `json:"trace,omitempty"`
	// Fingerprint is the parameter-invariant plan-cache key (SQL path only);
	// PlanCache reports whether this execution reused a cached plan ("hit",
	// "miss", or "off" when caching is disabled).
	Fingerprint string `json:"fingerprint,omitempty"`
	PlanCache   string `json:"plan_cache,omitempty"`
	// QueryID is the engine-wide query id — the correlation key for the
	// flight recorder, the canonical query log, and exported spans.
	QueryID     uint64  `json:"query_id,omitempty"`
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	// TraceID echoes the trace the query joined (from the traceparent header,
	// or derived from the query id when spans were requested without one).
	TraceID string `json:"trace_id,omitempty"`
	// Spans is the OTLP-shaped JSON span document, present when the request
	// set spans=true.
	Spans json.RawMessage `json:"spans,omitempty"`
}

// ErrorResponse is the JSON body of a failed request. Kind classifies the
// failure ("bad_request", "unknown_query", "parse_error", "bind_error",
// "bad_params", "unknown_prepared", "canceled", "deadline", "memory_budget",
// "panic", "internal"); QueryError locates engine failures and Location
// points parse/bind errors into the SQL text.
type ErrorResponse struct {
	Error      string            `json:"error"`
	Kind       string            `json:"kind"`
	Location   *sql.Position     `json:"location,omitempty"`
	QueryError *QueryErrorDetail `json:"query_error,omitempty"`
	// QueryID and Flight attach engine context to execution failures: the
	// query's recent flight-recorder events (admission, compiles, morsel
	// batches, memory) leading up to the error, rendered one per line.
	QueryID uint64   `json:"query_id,omitempty"`
	Flight  []string `json:"flight,omitempty"`
}

// QueryErrorDetail is the serialized form of an exec.QueryError: where inside
// the engine the query failed.
type QueryErrorDetail struct {
	Query    string `json:"query"`
	Pipeline string `json:"pipeline,omitempty"`
	Backend  string `json:"backend"`
	Worker   int    `json:"worker"`
	Morsel   int    `json:"morsel"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := s.seq.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer s.served.Add(1)
	// Serve-layer panic isolation: the engine already converts query panics
	// into *QueryError, so anything reaching here is a bug in the handler
	// itself (or an injected ServeExecute/ServeRespond fault) — fail the
	// request, keep the server.
	defer func() {
		if rec := recover(); rec != nil {
			s.log.Error("request panic recovered", "id", id, "panic", fmt.Sprint(rec))
			writeJSON(w, http.StatusInternalServerError,
				ErrorResponse{Error: fmt.Sprintf("internal error: %v", rec), Kind: "internal"})
		}
	}()

	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.failRequest(w, id, http.StatusBadRequest, "bad_request", fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := faultinject.Inject(faultinject.ServeParse); err != nil {
		s.failRequest(w, id, http.StatusBadRequest, "bad_request", err)
		return
	}

	backendName := req.Backend
	if backendName == "" {
		backendName = s.cfg.DefaultBackend
	}
	backend, err := exec.ParseBackend(backendName)
	if err != nil {
		s.failRequest(w, id, http.StatusBadRequest, "bad_request", err)
		return
	}
	nSources := 0
	for _, src := range []string{req.Query, req.SQL, req.Prepared} {
		if src != "" {
			nSources++
		}
	}
	if nSources != 1 {
		s.failRequest(w, id, http.StatusBadRequest, "bad_request",
			errors.New("exactly one of query, sql, prepared must be set"))
		return
	}
	source := "sql"
	switch {
	case req.Query != "":
		source = "plan"
	case req.Prepared != "":
		source = "prepared"
	}

	// Resolve the request to an executable plan. All parse, bind, and
	// parameter failures reject here, before the query touches the scheduler:
	// a malformed request must never hold an admission slot or a memory
	// reservation (admission happens inside exec.ExecuteContext below).
	var (
		label       string // query name for logs and the response
		plan        *core.Plan
		prep        *plancache.Prepared // SQL path only
		fingerprint string
		cacheState  string
	)
	if req.Query != "" {
		label = req.Query
		node, err := tpch.Build(s.cat, req.Query)
		if err != nil {
			s.failRequest(w, id, http.StatusNotFound, "unknown_query", err)
			return
		}
		if plan, err = algebra.Lower(node, req.Query); err != nil {
			s.failRequest(w, id, http.StatusInternalServerError, "internal", err)
			return
		}
	} else {
		var stmt *sql.Statement
		if req.Prepared != "" {
			if stmt = s.lookupPrepared(req.Prepared); stmt == nil {
				s.failRequest(w, id, http.StatusNotFound, "unknown_prepared",
					fmt.Errorf("unknown prepared statement %q", req.Prepared))
				return
			}
		} else {
			var err error
			if stmt, err = sql.Compile(s.cat, req.SQL); err != nil {
				s.failSQL(w, id, err)
				return
			}
		}
		if len(req.Params) != stmt.NumParams() {
			s.failRequest(w, id, http.StatusBadRequest, "bad_params",
				fmt.Errorf("statement takes %d parameters, got %d", stmt.NumParams(), len(req.Params)))
			return
		}
		label = stmt.Name
		fingerprint = stmt.Fingerprint.Hex()
		prep, cacheState = s.acquirePlan(stmt)
		if prep == nil {
			lowered, params, err := algebra.LowerWithParams(stmt.Root, stmt.Name)
			if err != nil {
				s.failRequest(w, id, http.StatusInternalServerError, "internal", err)
				return
			}
			if err := core.VerifyPlan(lowered); err != nil {
				s.failRequest(w, id, http.StatusInternalServerError, "internal", err)
				return
			}
			prep = plancache.NewPrepared(stmt.Fingerprint, lowered, params)
		}
		if err := stmt.BindArgs(prep.Params(), req.Params); err != nil {
			if s.cache != nil {
				s.cache.Put(prep)
			}
			s.failRequest(w, id, http.StatusBadRequest, "bad_params", err)
			return
		}
		plan = prep.Plan()
		// Return the leased instance — with whatever artifacts this
		// execution deposits — once the request is done with it.
		defer func() {
			if s.cache != nil {
				s.cache.Put(prep)
			}
		}()
	}

	// Engine-wide query id: allocated here so the flight recorder, canonical
	// log, error responses and spans all correlate even when execution never
	// produces a Result (shed, panic before the first morsel).
	qid := exec.NextQueryID()
	traceID, parentSpan := parseTraceparent(r.Header.Get("traceparent"))
	opts := exec.Options{
		Backend:      backend,
		Workers:      req.Workers,
		MemoryBudget: req.MemoryBudget,
		Profile:      req.Profile,
		Trace:        req.Profile || req.Spans || s.cfg.SpanSink != nil,
		Pool:         s.pool,
		Artifacts:    prep.Artifacts(), // nil-safe: nil prep on the canned path
		QueryID:      qid,
		TraceID:      traceID,
		ParentSpanID: parentSpan,
		Fingerprint:  fingerprint,
	}
	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	if err := faultinject.Inject(faultinject.ServeExecute); err != nil {
		s.failRequest(w, id, http.StatusInternalServerError, "internal", err)
		return
	}
	var (
		res     *exec.Result
		explain string
	)
	if req.Explain {
		explain, res, err = exec.ExplainAnalyze(ctx, plan, opts)
	} else {
		res, err = exec.ExecuteContext(ctx, plan, opts)
	}

	wall := time.Duration(0)
	if res != nil {
		wall = res.Wall
	}
	if err != nil {
		status, kind := classify(err)
		s.logEvent(s.queryEvent(qid, label, source, fingerprint, cacheState,
			backendName, traceID, kind, err, res, prep))
		s.exportSpans(res) // a failed query still exports its partial trace
		if kind == "shed" {
			// Load shedding is transient back-pressure, not failure: tell
			// well-behaved clients when to retry.
			w.Header().Set("Retry-After", "1")
		}
		// Attach the flight-recorder context: the query's own lifecycle
		// events plus engine-wide ones (plan cache, drain) leading up to the
		// failure, so a shed or timed-out query is diagnosable from its
		// error response alone.
		resp := ErrorResponse{Error: err.Error(), Kind: kind, QueryID: qid, Flight: flightLines(qid)}
		var qe *exec.QueryError
		if errors.As(err, &qe) {
			resp.QueryError = &QueryErrorDetail{
				Query: qe.Query, Pipeline: qe.Pipeline, Backend: qe.Backend.String(),
				Worker: qe.Worker, Morsel: qe.Morsel,
			}
		}
		writeJSON(w, status, resp)
		return
	}

	maxRows := req.MaxRows
	if maxRows <= 0 || maxRows > s.cfg.MaxRows {
		maxRows = s.cfg.MaxRows
	}
	resp := QueryResponse{
		ID: id, Query: label, Backend: backendName,
		Rows: res.Rows(), WallMS: float64(wall) / float64(time.Millisecond),
		Columns: res.Cols, Explain: explain,
		TotalRows: res.Rows(), Fingerprint: fingerprint, PlanCache: cacheState,
		QueryID:     qid,
		QueueWaitMS: float64(res.QueueWait) / float64(time.Millisecond),
		TraceID:     traceID,
	}
	if secs := wall.Seconds(); secs > 0 {
		resp.RowsPerSec = float64(res.Stats.Tuples) / secs
	}
	for _, warn := range res.Warnings {
		resp.Warnings = append(resp.Warnings, warn.Error())
	}
	if req.Profile && res.Trace != nil {
		resp.Trace = res.Trace.Dump()
	}
	if res.Chunk != nil {
		n := res.Rows()
		if n > maxRows {
			n = maxRows
			resp.RowsTruncated = true
			resp.Truncated = true
		}
		resp.Data = make([][]any, n)
		for i := 0; i < n; i++ {
			resp.Data[i] = renderRow(res.Chunk, i)
		}
	}
	if raw := s.exportSpans(res); raw != nil && req.Spans {
		resp.Spans = raw
	}
	s.logEvent(s.queryEvent(qid, label, source, fingerprint, cacheState,
		backendName, traceID, "ok", nil, res, prep))
	if err := faultinject.Inject(faultinject.ServeRespond); err != nil {
		s.failRequest(w, id, http.StatusInternalServerError, "internal", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// acquirePlan leases a cached instance for the statement's fingerprint.
// Returns (nil, "miss") when the caller must lower a fresh plan, and
// (nil, "off") when caching is disabled.
func (s *Server) acquirePlan(stmt *sql.Statement) (*plancache.Prepared, string) {
	if s.cache == nil {
		return nil, "off"
	}
	if prep := s.cache.Acquire(stmt.Fingerprint); prep != nil {
		return prep, "hit"
	}
	return nil, "miss"
}

// failSQL writes a parse or bind failure with its source location. Anything
// else coming out of sql.Compile is an internal error.
func (s *Server) failSQL(w http.ResponseWriter, id int64, err error) {
	kind := "internal"
	status := http.StatusInternalServerError
	var pe *sql.ParseError
	var be *sql.BindError
	switch {
	case errors.As(err, &pe):
		kind, status = "parse_error", http.StatusBadRequest
	case errors.As(err, &be):
		kind, status = "bind_error", http.StatusBadRequest
	}
	s.log.Info("request rejected", "id", id, "kind", kind, "err", err.Error())
	resp := ErrorResponse{Error: err.Error(), Kind: kind}
	if pos, ok := sql.ErrorPosition(err); ok {
		resp.Location = &pos
	}
	writeJSON(w, status, resp)
}

func (s *Server) lookupPrepared(handle string) *sql.Statement {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	return s.prepared[handle]
}

// PrepareRequest is the JSON body of POST /prepare.
type PrepareRequest struct {
	SQL string `json:"sql"`
}

// PrepareResponse describes a registered prepared statement.
type PrepareResponse struct {
	Handle      string   `json:"handle"`
	Params      int      `json:"params"`
	Columns     []string `json:"columns,omitempty"`
	Fingerprint string   `json:"fingerprint"`
}

// handlePrepare compiles a statement once and registers it under a handle;
// later POST /query {"prepared": handle} calls skip parsing and binding, and
// the fingerprint-keyed plan cache skips lowering and compilation.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	id := s.seq.Add(1)
	var req PrepareRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.failRequest(w, id, http.StatusBadRequest, "bad_request", fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.SQL == "" {
		s.failRequest(w, id, http.StatusBadRequest, "bad_request", errors.New("sql must be set"))
		return
	}
	stmt, err := sql.Compile(s.cat, req.SQL)
	if err != nil {
		s.failSQL(w, id, err)
		return
	}
	s.prepMu.Lock()
	if len(s.prepared) >= s.cfg.MaxPrepared {
		s.prepMu.Unlock()
		s.failRequest(w, id, http.StatusInsufficientStorage, "prepared_limit",
			fmt.Errorf("prepared statement limit (%d) reached; close unused handles", s.cfg.MaxPrepared))
		return
	}
	handle := fmt.Sprintf("p%d", s.prepSeq.Add(1))
	s.prepared[handle] = stmt
	s.prepMu.Unlock()
	s.log.Info("statement prepared", "id", id, "handle", handle, "name", stmt.Name,
		"fingerprint", stmt.Fingerprint.Hex(), "params", stmt.NumParams())
	writeJSON(w, http.StatusOK, PrepareResponse{
		Handle: handle, Params: stmt.NumParams(), Columns: stmt.Columns,
		Fingerprint: stmt.Fingerprint.Hex(),
	})
}

// handleClosePrepared drops a handle. Cached plans for its fingerprint stay in
// the plan cache (other handles or raw SQL of the same shape still hit them).
func (s *Server) handleClosePrepared(w http.ResponseWriter, r *http.Request) {
	handle := r.PathValue("handle")
	s.prepMu.Lock()
	_, ok := s.prepared[handle]
	delete(s.prepared, handle)
	s.prepMu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error: fmt.Sprintf("unknown prepared statement %q", handle), Kind: "unknown_prepared",
		})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// renderRow converts one result row to JSON scalars, rendering Date columns
// in calendar form.
func renderRow(c *storage.Chunk, i int) []any {
	row := c.Row(i)
	for j, col := range c.Cols {
		if col.Kind == types.Date {
			row[j] = types.DateString(col.I32[i])
		}
	}
	return row
}

// classify maps an engine error onto an HTTP status and error kind. Scheduler
// rejections come first: a shed or draining query never ran, and neither is a
// server fault — the load-shedding contract is that overload produces 429/503,
// never 500.
func classify(err error) (int, string) {
	switch {
	case errors.Is(err, sched.ErrQueueFull):
		return http.StatusTooManyRequests, "shed"
	case errors.Is(err, sched.ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, sched.ErrOverCapacity):
		return http.StatusRequestEntityTooLarge, "over_capacity"
	case errors.Is(err, exec.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, exec.ErrCanceled):
		return http.StatusGatewayTimeout, "canceled"
	case errors.Is(err, exec.ErrMemoryBudget):
		// A budget overrun means this query asked for more memory than its
		// own cap allows — a client-sized request, not a server fault.
		return http.StatusRequestEntityTooLarge, "memory_budget"
	case errors.Is(err, exec.ErrPanic):
		return http.StatusInternalServerError, "panic"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// failRequest logs and writes a pre-execution failure.
func (s *Server) failRequest(w http.ResponseWriter, id int64, status int, kind string, err error) {
	s.log.Info("request rejected", "id", id, "kind", kind, "err", err.Error())
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: kind})
}

// queryEvent assembles the canonical wide event for one query completion.
// res and prep may be nil (shed queries, canned-plan path).
func (s *Server) queryEvent(qid uint64, query, source, fingerprint, cacheState,
	backend, traceID, outcome string, err error, res *exec.Result, prep *plancache.Prepared) *obs.QueryEvent {
	e := &obs.QueryEvent{
		ID: qid, Query: query, Source: source, Fingerprint: fingerprint,
		TraceID: traceID, Backend: backend, PlanCache: cacheState, Outcome: outcome,
	}
	if err != nil {
		e.Error = err.Error()
	}
	if res != nil {
		e.Rows = res.Rows()
		e.Tuples = res.Stats.Tuples
		e.Wall = res.Wall
		e.QueueWait = res.QueueWait
		e.CompileTime = res.Stats.CompileTime
		e.CompileWait = res.Stats.CompileWait
		e.HTLocalHits = res.Stats.HTLocalHits
		e.HTSpills = res.Stats.HTSpills
		e.HTBloomSkips = res.Stats.HTBloomSkips
		e.PartRoutedRows = res.Stats.PartRoutedRows
		e.PartMaxPartRows = res.Stats.PartMaxPartRows
		e.MorselsCompiled = res.Stats.MorselsCompiled
		e.MorselsVectorized = res.Stats.MorselsVectorized
		e.Degraded = len(res.Warnings) > 0 || res.Stats.CompileErrors > 0
		e.Slow = s.cfg.SlowQuery > 0 && res.Wall >= s.cfg.SlowQuery
	}
	if prep != nil {
		arts := prep.Artifacts()
		e.Compiles = arts.Compiles()
		e.ArtifactsReused = int64(arts.FusedPipelines())
		e.ArtifactBytes = arts.CostBytes()
	}
	return e
}

// logEvent emits the canonical event through the tail sampler.
func (s *Server) logEvent(e *obs.QueryEvent) {
	if s.sampler.Keep(e) {
		e.Emit(s.log)
	}
}

// exportSpans renders the execution trace as an OTLP JSON document, writes it
// to the configured span sink (one document per line), and returns it for
// inline use. Nil when the query was not traced.
func (s *Server) exportSpans(res *exec.Result) []byte {
	if res == nil || res.Trace == nil {
		return nil
	}
	raw, err := res.Trace.Spans()
	if err != nil {
		return nil
	}
	if s.cfg.SpanSink != nil {
		s.spanMu.Lock()
		_, _ = s.cfg.SpanSink.Write(raw)
		_, _ = io.WriteString(s.cfg.SpanSink, "\n")
		s.spanMu.Unlock()
	}
	return raw
}

// flightLines renders the flight recorder's recent events for one query
// (its own lifecycle plus engine-wide events like plan-cache and drain).
func flightLines(qid uint64) []string {
	evs := flight.Default.Recent(16, qid)
	if len(evs) == 0 {
		return nil
	}
	lines := make([]string, len(evs))
	for i := range evs {
		lines[i] = evs[i].String()
	}
	return lines
}

// parseTraceparent extracts the trace id and parent span id from a W3C
// traceparent header ("00-<32 hex>-<16 hex>-<2 hex>"). Malformed or all-zero
// values are ignored — a bad header must never fail the query.
func parseTraceparent(h string) (traceID, spanID string) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", ""
	}
	allZero := func(s string) bool { return strings.Trim(s, "0") == "" }
	for _, p := range parts[:3] {
		if !isLowerHex(p) {
			return "", ""
		}
	}
	if allZero(parts[1]) || allZero(parts[2]) {
		return "", ""
	}
	return parts[1], parts[2]
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleFlight serves the engine flight recorder: the full chronological dump
// by default, or the last ?n= events of query ?q= when filtering.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if qs := r.URL.Query().Get("q"); qs != "" {
		qid, err := strconv.ParseUint(qs, 10, 64)
		if err != nil {
			http.Error(w, "q must be a query id", http.StatusBadRequest)
			return
		}
		n := 64
		if ns := r.URL.Query().Get("n"); ns != "" {
			if v, err := strconv.Atoi(ns); err == nil && v > 0 {
				n = v
			}
		}
		for _, ev := range flight.Default.Recent(n, qid) {
			fmt.Fprintln(w, ev.String())
		}
		return
	}
	flight.Default.Dump(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, obs.Default.PrometheusText())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Health degrades with the scheduler: "draining" once shutdown started,
	// "shedding" while the admission queue is full (the next query would get
	// 429) — both 503, so load balancers stop routing here before requests
	// start failing.
	ps := s.pool.Stats()
	status, code := "ok", http.StatusOK
	switch {
	case ps.Draining:
		status, code = "draining", http.StatusServiceUnavailable
	case ps.MaxConcurrent > 0 && ps.Running >= ps.MaxConcurrent && ps.Queued >= ps.QueueDepth:
		status, code = "shedding", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"uptime_s": time.Since(s.start).Seconds(),
		"sf":       s.cfg.SF,
		"served":   s.served.Load(),
		"inflight": s.inflight.Load(),
		"running":  ps.Running,
		"queued":   ps.Queued,
		"shed":     ps.Shed,
	})
}

func (s *Server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	ps := s.pool.Stats()
	planCache := map[string]any{"enabled": false}
	if s.cache != nil {
		cs := s.cache.Stats()
		planCache = map[string]any{
			"enabled":   true,
			"entries":   cs.Entries,
			"bytes":     cs.Bytes,
			"hits":      cs.Hits,
			"misses":    cs.Misses,
			"evictions": cs.Evictions,
		}
	}
	s.prepMu.Lock()
	nPrepared := len(s.prepared)
	s.prepMu.Unlock()
	// Per-query admission detail: running queries with their final queue
	// wait, queued queries with their wait so far.
	active := []map[string]any{}
	for _, qi := range s.pool.QueryInfos() {
		entry := map[string]any{
			"id":            qi.ID,
			"query":         qi.Name,
			"backend":       qi.Backend,
			"state":         qi.State,
			"queue_wait_ms": float64(qi.QueueWait) / float64(time.Millisecond),
		}
		if qi.Fingerprint != "" {
			entry["fingerprint"] = qi.Fingerprint
		}
		active = append(active, entry)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"active":          active,
		"queries":         tpch.Queries,
		"sql":             "POST /query {\"sql\": \"select ...\"} or POST /prepare then {\"prepared\": handle, \"params\": [...]}",
		"backends":        []string{"vectorized", "compiling", "rof", "hybrid"},
		"default_backend": s.cfg.DefaultBackend,
		"max_rows":        s.cfg.MaxRows,
		"plan_cache":      planCache,
		"prepared":        nPrepared,
		"scheduler": map[string]any{
			"workers":        ps.Workers,
			"max_concurrent": ps.MaxConcurrent,
			"queue_depth":    ps.QueueDepth,
			"running":        ps.Running,
			"queued":         ps.Queued,
			"admitted":       ps.Admitted,
			"shed":           ps.Shed,
			"queue_timeouts": ps.QueueTimeouts,
			"draining":       ps.Draining,
		},
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

package tpch

import (
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/core"
)

// TestPlansVerify lowers every TPC-H query and runs the structural IR
// verifier over the suboperator plan. A lowering change that breaks an IU
// def-use chain or misplaces a pipeline breaker fails here before any
// backend executes the plan.
func TestPlansVerify(t *testing.T) {
	for _, q := range append(append([]string{}, Queries...), ExtendedQueries...) {
		t.Run(q, func(t *testing.T) {
			node, err := Build(testCat, q)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := algebra.Lower(node, q)
			if err != nil {
				t.Fatalf("lower: %v", err)
			}
			if err := core.VerifyPlan(plan); err != nil {
				t.Fatalf("VerifyPlan: %v", err)
			}
		})
	}
}

package tpch

// SQL holds the eight paper queries as SQL text. Each text binds — through
// internal/sql — to the same plan shape as the hand-built tree in queries.go:
// the differential suite asserts byte-identical results across all backends.
// Join order is written explicitly (build side left for inner joins, outer
// side left for LEFT OUTER JOIN) because the frontend plans syntactically.
var SQL = map[string]string{
	"q1": `
select l_returnflag, l_linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= date '1998-09-02'
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus`,

	"q3": `
select l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) as revenue,
       o_orderdate, o_shippriority
from customer
     join orders on c_custkey = o_custkey
     join lineitem on o_orderkey = l_orderkey
where c_mktsegment = 'BUILDING'
  and o_orderdate < date '1995-03-15'
  and l_shipdate > date '1995-03-15'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, o_orderdate
limit 10`,

	"q4": `
select o_orderpriority, count(*) as order_count
from orders
where o_orderdate >= date '1993-07-01'
  and o_orderdate < date '1993-10-01'
  and exists (
    select l_orderkey from lineitem
    where l_orderkey = o_orderkey and l_commitdate < l_receiptdate)
group by o_orderpriority
order by o_orderpriority`,

	"q5": `
select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
from supplier join (
       region
       join nation on r_regionkey = n_regionkey
       join customer on n_nationkey = c_nationkey
       join orders on c_custkey = o_custkey
       join lineitem on o_orderkey = l_orderkey
     ) on s_suppkey = l_suppkey and s_nationkey = c_nationkey
where r_name = 'ASIA'
  and o_orderdate >= date '1994-01-01'
  and o_orderdate < date '1995-01-01'
group by n_name
order by revenue desc`,

	"q6": `
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01'
  and l_shipdate < date '1995-01-01'
  and l_discount >= 0.05 and l_discount <= 0.07
  and l_quantity < 24`,

	"q13": `
select c_count, count(*) as custdist
from (
  select c_custkey, count(o_orderkey) as c_count
  from customer left outer join orders
       on c_custkey = o_custkey and o_comment not like '%special%requests%'
  group by c_custkey
) as pc
group by c_count
order by custdist desc, c_count desc`,

	"q14": `
select 100 * sum(case when p_type like 'PROMO%'
                      then l_extendedprice * (1 - l_discount)
                      else 0 end)
           / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
from part join lineitem on p_partkey = l_partkey
where l_shipdate >= date '1995-09-01'
  and l_shipdate < date '1995-10-01'`,

	"q19": `
select sum(l_extendedprice * (1 - l_discount)) as revenue
from part join lineitem on p_partkey = l_partkey
where l_shipinstruct = 'DELIVER IN PERSON'
  and l_shipmode in ('AIR', 'AIR REG')
  and ((p_brand = 'Brand#12'
        and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        and l_quantity >= 1 and l_quantity <= 11
        and p_size >= 1 and p_size <= 5)
    or (p_brand = 'Brand#23'
        and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        and l_quantity >= 10 and l_quantity <= 20
        and p_size >= 1 and p_size <= 10)
    or (p_brand = 'Brand#34'
        and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        and l_quantity >= 20 and l_quantity <= 30
        and p_size >= 1 and p_size <= 15))`,
}

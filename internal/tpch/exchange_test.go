package tpch

import (
	"errors"
	"sort"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/exec"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// TestExchangeDifferential runs every TPC-H plan on every backend with the
// local hash-partitioned exchange on (DESIGN.md §15) and asserts the results
// are byte-identical to the exchange-off lowering. It also asserts the
// partitioned discipline held: the single-writer table parts never spill.
func TestExchangeDifferential(t *testing.T) {
	for _, q := range append(append([]string{}, Queries...), ExtendedQueries...) {
		t.Run(q, func(t *testing.T) {
			node, err := Build(testCat, q)
			if err != nil {
				t.Fatal(err)
			}
			_, ordered := node.(*algebra.OrderBy)
			for _, backend := range []exec.Backend{
				exec.BackendVectorized, exec.BackendCompiling, exec.BackendROF, exec.BackendHybrid,
			} {
				lat := exec.LatencyNone
				offPlan, err := algebra.Lower(node, q)
				if err != nil {
					t.Fatalf("lower: %v", err)
				}
				offRes, err := exec.Execute(offPlan, exec.Options{Backend: backend, Workers: 4, Latency: &lat})
				if err != nil {
					t.Fatalf("%v off: %v", backend, err)
				}
				onPlan, err := algebra.LowerOpts(node, q, algebra.LowerOptions{Exchange: true, Partitions: 4})
				if err != nil {
					t.Fatalf("lower exchange: %v", err)
				}
				lat2 := exec.LatencyNone
				onRes, err := exec.Execute(onPlan, exec.Options{Backend: backend, Workers: 4, Latency: &lat2})
				if err != nil {
					t.Fatalf("%v on: %v", backend, err)
				}
				want, got := rowsOf(offRes.Chunk), rowsOf(onRes.Chunk)
				if !ordered {
					sort.Strings(want)
					sort.Strings(got)
				}
				if len(got) != len(want) {
					t.Fatalf("%v: exchange run produced %d rows, want %d", backend, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%v: row %d differs with exchange on:\n got  %s\n want %s", backend, i, got[i], want[i])
						break
					}
				}
				if onRes.Stats.HTSpills != 0 {
					t.Errorf("%v: partitioned build spilled %d times; partitions must be single-writer", backend, onRes.Stats.HTSpills)
				}
				hasEx := false
				for _, pipe := range onPlan.Pipelines {
					if len(pipe.SealExchanges) > 0 {
						hasEx = true
					}
				}
				if hasEx && onRes.Stats.PartRoutedRows == 0 {
					t.Errorf("%v: plan has exchanges but routed no rows", backend)
				}
				if !hasEx {
					t.Errorf("%s lowered without any exchange despite Exchange option", q)
				}
			}
		})
	}
}

// TestExchangeSkewSingleKey sends every row to one partition (constant group
// key) — the worst-case skew. The exchange must stay correct: one partition
// holds everything, the rest are empty, and nothing spills.
func TestExchangeSkewSingleKey(t *testing.T) {
	tbl := storage.NewTable("skewed", types.Schema{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Float64},
	})
	const rows = 20000
	for i := 0; i < rows; i++ {
		tbl.AppendRow(int64(7), float64(i))
	}
	node := algebra.NewGroupBy(algebra.NewScan(tbl, "k", "v"),
		[]string{"k"}, algebra.Sum("v", "s"), algebra.Count("c"))
	for _, backend := range []exec.Backend{exec.BackendVectorized, exec.BackendHybrid} {
		plan, err := algebra.LowerOpts(node, "skew", algebra.LowerOptions{Exchange: true, Partitions: 8})
		if err != nil {
			t.Fatal(err)
		}
		lat := exec.LatencyNone
		res, err := exec.Execute(plan, exec.Options{Backend: backend, Workers: 4, Latency: &lat})
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if res.Rows() != 1 {
			t.Fatalf("%v: got %d groups, want 1", backend, res.Rows())
		}
		got := rowsOf(res.Chunk)[0]
		want := "[000007 1.9999e+08 020000]"
		if got != want {
			t.Fatalf("%v: got %s, want %s", backend, got, want)
		}
		s := &res.Stats
		if s.PartRoutedRows != rows {
			t.Fatalf("%v: routed %d rows, want %d", backend, s.PartRoutedRows, rows)
		}
		if s.PartMaxPartRows != rows {
			t.Fatalf("%v: max partition %d rows, want all %d in one (total skew)", backend, s.PartMaxPartRows, rows)
		}
		if s.HTSpills != 0 {
			t.Fatalf("%v: skewed partition spilled %d times", backend, s.HTSpills)
		}
	}
}

// TestExchangeSkewBoundedMemory proves the exchange's partition buffers are
// budget-accounted: a skewed high-cardinality build against a tiny budget
// fails with the typed budget error instead of OOM-ing the process.
func TestExchangeSkewBoundedMemory(t *testing.T) {
	tbl := storage.NewTable("wide", types.Schema{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Float64},
	})
	for i := 0; i < 50000; i++ {
		tbl.AppendRow(int64(i), 1.0)
	}
	node := algebra.NewGroupBy(algebra.NewScan(tbl, "k", "v"), []string{"k"}, algebra.Sum("v", "s"))
	plan, err := algebra.LowerOpts(node, "bigagg_ex", algebra.LowerOptions{Exchange: true, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	lat := exec.LatencyNone
	_, err = exec.Execute(plan, exec.Options{Backend: exec.BackendVectorized, Workers: 4, Latency: &lat, MemoryBudget: 32 << 10})
	if !errors.Is(err, exec.ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
}

package tpch

// Concurrent-query correctness: all supported TPC-H plans running at once
// through one engine-wide scheduler pool must produce results identical to
// running them sequentially. Ordered queries compare byte-for-byte (the
// deterministic tie-break guarantees a stable order); unordered ones compare
// as sorted row sets, exactly like the Volcano oracle tests.

import (
	"context"
	"sort"
	"strings"
	"sync"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/exec"
	"inkfuse/internal/sched"
)

// renderResult renders a result chunk for comparison: in row order for
// ordered queries, sorted otherwise.
func renderResult(t *testing.T, q string, rows []string, ordered bool) string {
	t.Helper()
	if len(rows) == 0 {
		t.Fatalf("%s produced no rows", q)
	}
	if !ordered {
		sort.Strings(rows)
	}
	return strings.Join(rows, "\n")
}

func runThroughPool(t *testing.T, q string, pool *sched.Pool) string {
	t.Helper()
	node, err := Build(testCat, q)
	if err != nil {
		t.Fatal(err)
	}
	// Lower a fresh plan per run: plans carry per-execution runtime state.
	plan, err := algebra.Lower(node, q)
	if err != nil {
		t.Fatal(err)
	}
	lat := exec.LatencyNone
	res, err := exec.Execute(plan, exec.Options{
		Backend: exec.BackendVectorized, Workers: 4, MorselSize: 256, Latency: &lat, Pool: pool,
	})
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	_, ordered := node.(*algebra.OrderBy)
	return renderResult(t, q, rowsOf(res.Chunk), ordered)
}

func TestConcurrentQueriesMatchSequential(t *testing.T) {
	pool := sched.NewPool(sched.Config{Workers: 4})
	defer pool.Close(context.Background())
	queries := append(append([]string{}, Queries...), ExtendedQueries...)

	want := make(map[string]string, len(queries))
	for _, q := range queries {
		want[q] = runThroughPool(t, q, pool)
	}

	// All plans at once through the shared pool, several rounds to vary the
	// interleavings.
	for round := 0; round < 3; round++ {
		got := make([]string, len(queries))
		var wg sync.WaitGroup
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				got[i] = runThroughPool(t, q, pool)
			}(i, q)
		}
		wg.Wait()
		for i, q := range queries {
			if got[i] != want[q] {
				t.Errorf("round %d: %s diverged under concurrency:\nsequential:\n%.400s\nconcurrent:\n%.400s",
					round, q, want[q], got[i])
			}
		}
	}
}

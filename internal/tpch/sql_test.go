package tpch

import (
	"fmt"
	"sort"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/exec"
	"inkfuse/internal/sql"
)

// exactRows renders a result chunk at full precision; the differential suite
// demands byte identity, not approximate equality.
func exactRows(res *exec.Result) []string {
	out := make([]string, res.Chunk.Rows())
	for i := range out {
		out[i] = fmt.Sprintf("%v", res.Chunk.Row(i))
	}
	return out
}

// TestSQLDifferential lowers each paper query from SQL text and asserts the
// results are byte-identical to the hand-built plan on every backend. The
// frontend may over-declare join payloads and synthesize different IU names,
// but after lowering both plans must compute the same values.
func TestSQLDifferential(t *testing.T) {
	for _, q := range Queries {
		t.Run(q, func(t *testing.T) {
			text, ok := SQL[q]
			if !ok {
				t.Fatalf("no SQL text for %s", q)
			}
			hand, err := Build(testCat, q)
			if err != nil {
				t.Fatal(err)
			}
			stmt, err := sql.Compile(testCat, text)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if stmt.NumParams() != 0 {
				t.Fatalf("canonical text should have no placeholders, got %d", stmt.NumParams())
			}
			_, ordered := hand.(*algebra.OrderBy)
			for _, backend := range []exec.Backend{
				exec.BackendVectorized, exec.BackendCompiling, exec.BackendROF, exec.BackendHybrid,
			} {
				handPlan, err := algebra.Lower(hand, q)
				if err != nil {
					t.Fatalf("lower hand: %v", err)
				}
				sqlPlan, params, err := algebra.LowerWithParams(stmt.Root, stmt.Name)
				if err != nil {
					t.Fatalf("lower sql: %v", err)
				}
				if err := stmt.BindArgs(params, nil); err != nil {
					t.Fatalf("bind args: %v", err)
				}
				lat := exec.LatencyNone
				wantRes, err := exec.Execute(handPlan, exec.Options{Backend: backend, Workers: 2, Latency: &lat})
				if err != nil {
					t.Fatalf("%v hand: %v", backend, err)
				}
				lat2 := exec.LatencyNone
				gotRes, err := exec.Execute(sqlPlan, exec.Options{Backend: backend, Workers: 2, Latency: &lat2})
				if err != nil {
					t.Fatalf("%v sql: %v", backend, err)
				}
				want, got := exactRows(wantRes), exactRows(gotRes)
				if !ordered {
					sort.Strings(want)
					sort.Strings(got)
				}
				if len(got) != len(want) {
					t.Fatalf("%v: got %d rows, want %d", backend, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v: row %d differs:\n sql  %s\n hand %s", backend, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestSQLFingerprintInvariance: same query shape with different literals must
// share a fingerprint (the plan-cache key), while a different shape must not.
func TestSQLFingerprintInvariance(t *testing.T) {
	a, err := sql.Compile(testCat, `select sum(l_extendedprice) as s from lineitem where l_quantity < 24`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sql.Compile(testCat, `select sum(l_extendedprice) as s from lineitem where l_quantity < 17`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("literal change altered fingerprint: %s vs %s", a.Fingerprint.Hex(), b.Fingerprint.Hex())
	}
	c, err := sql.Compile(testCat, `select sum(l_extendedprice) as s from lineitem where l_quantity > 24`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == c.Fingerprint {
		t.Fatal("operator change did not alter fingerprint")
	}
	d, err := sql.Compile(testCat, `select sum(l_extendedprice) as s from lineitem where l_quantity < ?`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != d.Fingerprint {
		t.Fatal("placeholder and literal forms should share a fingerprint")
	}
}

// TestSQLPlaceholderExecution proves a ?-parameterized statement executes
// with values patched in at bind time and produces the same result as the
// inlined-literal text.
func TestSQLPlaceholderExecution(t *testing.T) {
	inline, err := sql.Compile(testCat,
		`select sum(l_extendedprice * l_discount) as revenue from lineitem
		 where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'
		   and l_discount >= 0.05 and l_discount <= 0.07 and l_quantity < 24`)
	if err != nil {
		t.Fatal(err)
	}
	param, err := sql.Compile(testCat,
		`select sum(l_extendedprice * l_discount) as revenue from lineitem
		 where l_shipdate >= ? and l_shipdate < ? and l_discount >= ? and l_discount <= ? and l_quantity < ?`)
	if err != nil {
		t.Fatal(err)
	}
	if inline.Fingerprint != param.Fingerprint {
		t.Fatal("parameterized text should share the inline fingerprint")
	}
	if param.NumParams() != 5 {
		t.Fatalf("want 5 params, got %d", param.NumParams())
	}
	run := func(s *sql.Statement, vals []any) []string {
		plan, params, err := algebra.LowerWithParams(s.Root, s.Name)
		if err != nil {
			t.Fatalf("lower: %v", err)
		}
		if err := s.BindArgs(params, vals); err != nil {
			t.Fatalf("bind: %v", err)
		}
		lat := exec.LatencyNone
		res, err := exec.Execute(plan, exec.Options{Backend: exec.BackendVectorized, Workers: 2, Latency: &lat})
		if err != nil {
			t.Fatal(err)
		}
		return exactRows(res)
	}
	want := run(inline, nil)
	got := run(param, []any{"1994-01-01", "1995-01-01", 0.05, 0.07, 24.0})
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("parameterized run differs:\n got  %v\n want %v", got, want)
	}
}

package tpch

import (
	"inkfuse/internal/algebra"
	"inkfuse/internal/ir"
	"inkfuse/internal/storage"
)

// ExtendedQueries go beyond the paper's eight (an engine-coverage extension,
// not part of the reproduced figures): Q12 is faithful; Q10 is simplified to
// the generated columns (no c_name/c_acctbal/c_address/c_phone — the
// grouping collapses to (c_custkey, n_name), which preserves the plan shape:
// three joins into a high-cardinality aggregation with a top-k).
var ExtendedQueries = []string{"q10", "q12"}

// Q12: join with two CASE-driven conditional sums.
//
//	SELECT l_shipmode,
//	       sum(case when o_orderpriority in ('1-URGENT','2-HIGH') then 1 else 0),
//	       sum(case when o_orderpriority not in (...) then 1 else 0)
//	FROM orders JOIN lineitem ON o_orderkey = l_orderkey
//	WHERE l_shipmode IN ('MAIL','SHIP') AND l_commitdate < l_receiptdate
//	  AND l_shipdate < l_commitdate AND l_receiptdate >= date '1994-01-01'
//	  AND l_receiptdate < date '1995-01-01'
//	GROUP BY l_shipmode ORDER BY l_shipmode
func Q12(cat *storage.Catalog) algebra.Node {
	li := algebra.NewFilter(
		algebra.NewScan(cat.MustGet("lineitem"), "l_orderkey", "l_shipmode",
			"l_commitdate", "l_receiptdate", "l_shipdate"),
		algebra.And(
			algebra.In(algebra.Col("l_shipmode"), "MAIL", "SHIP"),
			algebra.Lt(algebra.Col("l_commitdate"), algebra.Col("l_receiptdate")),
			algebra.Lt(algebra.Col("l_shipdate"), algebra.Col("l_commitdate")),
			algebra.Ge(algebra.Col("l_receiptdate"), algebra.DateLit("1994-01-01")),
			algebra.Lt(algebra.Col("l_receiptdate"), algebra.DateLit("1995-01-01"))))
	joined := &algebra.HashJoin{
		Build:     algebra.NewScan(cat.MustGet("orders"), "o_orderkey", "o_orderpriority"),
		Probe:     li,
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildCols: []string{"o_orderpriority"},
		Mode:      ir.InnerJoin,
	}
	mapped := algebra.NewMap(joined,
		algebra.NamedExpr{As: "is_high", E: algebra.In(algebra.Col("o_orderpriority"), "1-URGENT", "2-HIGH")},
		algebra.NamedExpr{As: "high", E: algebra.Case(algebra.Col("is_high"), algebra.I64(1), algebra.I64(0))},
		algebra.NamedExpr{As: "low", E: algebra.Case(algebra.Col("is_high"), algebra.I64(0), algebra.I64(1))},
	)
	g := algebra.NewGroupBy(mapped, []string{"l_shipmode"},
		algebra.Sum("high", "high_line_count"), algebra.Sum("low", "low_line_count"))
	return algebra.NewOrderBy(g, []string{"l_shipmode"}, nil, 0)
}

// Q10: returned-item reporting (simplified grouping, see ExtendedQueries).
func Q10(cat *storage.Catalog) algebra.Node {
	customer := &algebra.HashJoin{
		Build:     algebra.NewScan(cat.MustGet("nation"), "n_nationkey", "n_name"),
		Probe:     algebra.NewScan(cat.MustGet("customer"), "c_custkey", "c_nationkey"),
		BuildKeys: []string{"n_nationkey"}, ProbeKeys: []string{"c_nationkey"},
		BuildCols: []string{"n_name"},
		Mode:      ir.InnerJoin,
	}
	orders := &algebra.HashJoin{
		Build: customer,
		Probe: algebra.NewFilter(
			algebra.NewScan(cat.MustGet("orders"), "o_orderkey", "o_custkey", "o_orderdate"),
			algebra.And(
				algebra.Ge(algebra.Col("o_orderdate"), algebra.DateLit("1993-10-01")),
				algebra.Lt(algebra.Col("o_orderdate"), algebra.DateLit("1994-01-01")))),
		BuildKeys: []string{"c_custkey"}, ProbeKeys: []string{"o_custkey"},
		BuildCols: []string{"n_name"},
		Mode:      ir.InnerJoin,
	}
	lineitem := &algebra.HashJoin{
		Build: orders,
		Probe: algebra.NewFilter(
			algebra.NewScan(cat.MustGet("lineitem"), "l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"),
			algebra.Eq(algebra.Col("l_returnflag"), algebra.Str("R"))),
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildCols: []string{"o_custkey", "n_name"},
		Mode:      ir.InnerJoin,
	}
	mapped := algebra.NewMap(lineitem, algebra.NamedExpr{As: "rev", E: algebra.Mul(
		algebra.Col("l_extendedprice"), algebra.Sub(algebra.F64(1), algebra.Col("l_discount")))})
	g := algebra.NewGroupBy(mapped, []string{"o_custkey", "n_name"}, algebra.Sum("rev", "revenue"))
	return algebra.NewOrderBy(g, []string{"revenue"}, []bool{true}, 20)
}

package tpch

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/exec"
)

// TestGoldenResults pins every query's result at SF 0.002 / seed 42 against
// a checked-in golden file. This is the long-term regression net: any change
// to the generator, the lowering, the suboperators, the VM, or the hash
// tables that alters query output fails here with a precise diff. Regenerate
// deliberately with `go run ./internal/tpch/testdata/gen`.
func TestGoldenResults(t *testing.T) {
	golden, err := loadGolden("testdata/golden_sf0002.txt")
	if err != nil {
		t.Fatal(err)
	}
	cat := Generate(0.002, 42)
	qs := append(append([]string{}, Queries...), ExtendedQueries...)
	for _, q := range qs {
		want, ok := golden[q]
		if !ok {
			t.Fatalf("golden file is missing %s — regenerate it", q)
		}
		node, err := Build(cat, q)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := algebra.Lower(node, q)
		if err != nil {
			t.Fatal(err)
		}
		lat := exec.LatencyNone
		res, err := exec.Execute(plan, exec.Options{Backend: exec.BackendHybrid, Workers: 2, Latency: &lat})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got := make([]string, res.Rows())
		for i := range got {
			got[i] = fmt.Sprintf("%.6v", res.Chunk.Row(i))
		}
		if _, ordered := node.(*algebra.OrderBy); !ordered {
			sort.Strings(got)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, golden has %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s row %d:\n got  %s\n want %s", q, i, got[i], want[i])
				break
			}
		}
	}
}

func loadGolden(path string) (map[string][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]string)
	var cur string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "#") || line == "":
		case strings.HasPrefix(line, "== "):
			cur = strings.Fields(line)[1]
			out[cur] = []string{}
		default:
			out[cur] = append(out[cur], line)
		}
	}
	return out, sc.Err()
}

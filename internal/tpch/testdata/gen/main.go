package main

import (
	"fmt"
	"os"
	"sort"

	"inkfuse/internal/algebra"
	"inkfuse/internal/tpch"
	"inkfuse/internal/volcano"
)

func main() {
	cat := tpch.Generate(0.002, 42)
	f, _ := os.Create("internal/tpch/testdata/golden_sf0002.txt")
	defer f.Close()
	fmt.Fprintln(f, "# Golden results: TPC-H-style queries at SF 0.002, seed 42, Volcano oracle.")
	fmt.Fprintln(f, "# Regenerate: go run ./internal/tpch/testdata/gen (see golden_test.go).")
	qs := append(append([]string{}, tpch.Queries...), tpch.ExtendedQueries...)
	for _, q := range qs {
		node, err := tpch.Build(cat, q)
		if err != nil {
			panic(err)
		}
		out, err := volcano.Run(node)
		if err != nil {
			panic(err)
		}
		rows := make([]string, out.Rows())
		for i := range rows {
			rows[i] = fmt.Sprintf("%.6v", out.Row(i))
		}
		if _, ordered := node.(*algebra.OrderBy); !ordered {
			sort.Strings(rows)
		}
		fmt.Fprintf(f, "== %s (%d rows)\n", q, len(rows))
		for _, r := range rows {
			fmt.Fprintln(f, r)
		}
	}
}

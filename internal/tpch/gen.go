// Package tpch provides a from-scratch, deterministic TPC-H-style data
// generator and the hand-built physical plans for the eight queries the
// paper evaluates (Q1, Q3, Q4, Q5, Q6, Q13, Q14, Q19 — chosen to cover all
// TPC-H choke points, paper §VII).
//
// The generator reproduces the value domains and distributions the eight
// queries are sensitive to: date ranges and offsets, return-flag/line-status
// rules, price formulas, priorities, segments, brands/types/containers, and
// order comments with occasional "special ... requests" fragments. Row
// counts scale linearly with the scale factor exactly as in dbgen
// (SF 1 ≈ 6M lineitem rows).
package tpch

import (
	"fmt"

	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// rng is a splitmix64 PRNG: deterministic across platforms.
type rng struct{ s uint64 }

func newRNG(seed uint64, stream string) *rng {
	h := seed
	for _, c := range stream {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return &rng{s: h}
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt returns a uniform int in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// f64 returns a uniform float in [0, 1).
func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

// Value domains (TPC-H spec §4.2.2-4.2.3, trimmed to what the queries read).
var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = []struct {
		name   string
		region int32
	}{
		{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
		{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
		{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
		{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
		{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
		{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
		{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

	containerSyl1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containerSyl2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

	commentWords = []string{
		"carefully", "final", "deposits", "accounts", "pending", "furiously",
		"ironic", "instructions", "theodolites", "platelets", "quickly",
		"blithely", "bold", "silent", "express", "regular", "even", "packages",
		"sleep", "across", "foxes", "asymptotes", "courts", "dependencies",
	}
)

// Generator dates (spec: orders span 1992-01-01 .. 1998-08-02).
var (
	startDate = types.MkDate(1992, 1, 1)
	endDate   = types.MkDate(1998, 8, 2)
	cutoff    = types.MkDate(1995, 6, 17) // returnflag/linestatus pivot
)

// Sizes at scale factor 1.
const (
	sfSupplier = 10_000
	sfCustomer = 150_000
	sfOrders   = 1_500_000
	sfPart     = 200_000
)

// Generate builds all seven tables the queries need at the given scale
// factor. The same (sf, seed) always produces identical data.
func Generate(sf float64, seed uint64) *storage.Catalog {
	cat := storage.NewCatalog()
	cat.Add(genRegion())
	cat.Add(genNation())
	cat.Add(genSupplier(scale(sfSupplier, sf), seed))
	cat.Add(genCustomer(scale(sfCustomer, sf), seed))
	part := genPart(scale(sfPart, sf), seed)
	cat.Add(part)
	orders, lineitem := genOrdersAndLineitem(scale(sfOrders, sf), scale(sfCustomer, sf), part.Rows(), scale(sfSupplier, sf), seed)
	cat.Add(orders)
	cat.Add(lineitem)
	return cat
}

func scale(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

func genRegion() *storage.Table {
	t := storage.NewTable("region", types.Schema{
		{Name: "r_regionkey", Kind: types.Int32},
		{Name: "r_name", Kind: types.String},
	})
	for i, name := range regions {
		t.AppendRow(int32(i), name)
	}
	return t
}

func genNation() *storage.Table {
	t := storage.NewTable("nation", types.Schema{
		{Name: "n_nationkey", Kind: types.Int32},
		{Name: "n_name", Kind: types.String},
		{Name: "n_regionkey", Kind: types.Int32},
	})
	for i, n := range nations {
		t.AppendRow(int32(i), n.name, n.region)
	}
	return t
}

func genSupplier(n int, seed uint64) *storage.Table {
	t := storage.NewTable("supplier", types.Schema{
		{Name: "s_suppkey", Kind: types.Int32},
		{Name: "s_nationkey", Kind: types.Int32},
	})
	r := newRNG(seed, "supplier")
	t.SetRows(n)
	key := t.Col("s_suppkey").I32
	nat := t.Col("s_nationkey").I32
	for i := 0; i < n; i++ {
		key[i] = int32(i + 1)
		nat[i] = int32(r.intn(len(nations)))
	}
	return t
}

func genCustomer(n int, seed uint64) *storage.Table {
	t := storage.NewTable("customer", types.Schema{
		{Name: "c_custkey", Kind: types.Int32},
		{Name: "c_nationkey", Kind: types.Int32},
		{Name: "c_mktsegment", Kind: types.String},
	})
	r := newRNG(seed, "customer")
	t.SetRows(n)
	key := t.Col("c_custkey").I32
	nat := t.Col("c_nationkey").I32
	seg := t.Col("c_mktsegment").Str
	for i := 0; i < n; i++ {
		key[i] = int32(i + 1)
		nat[i] = int32(r.intn(len(nations)))
		seg[i] = segments[r.intn(len(segments))]
	}
	return t
}

// retailPrice follows the spec formula (in dollars).
func retailPrice(partkey int32) float64 {
	pk := int(partkey)
	return float64(90000+((pk/10)%20001)+100*(pk%1000)) / 100
}

func genPart(n int, seed uint64) *storage.Table {
	t := storage.NewTable("part", types.Schema{
		{Name: "p_partkey", Kind: types.Int32},
		{Name: "p_brand", Kind: types.String},
		{Name: "p_type", Kind: types.String},
		{Name: "p_size", Kind: types.Int32},
		{Name: "p_container", Kind: types.String},
	})
	r := newRNG(seed, "part")
	t.SetRows(n)
	key := t.Col("p_partkey").I32
	brand := t.Col("p_brand").Str
	ptype := t.Col("p_type").Str
	size := t.Col("p_size").I32
	cont := t.Col("p_container").Str
	for i := 0; i < n; i++ {
		key[i] = int32(i + 1)
		brand[i] = fmt.Sprintf("Brand#%d%d", r.rangeInt(1, 5), r.rangeInt(1, 5))
		ptype[i] = typeSyl1[r.intn(6)] + " " + typeSyl2[r.intn(5)] + " " + typeSyl3[r.intn(5)]
		size[i] = int32(r.rangeInt(1, 50))
		cont[i] = containerSyl1[r.intn(5)] + " " + containerSyl2[r.intn(8)]
	}
	return t
}

// comment builds an order comment; ~1.2% contain the Q13 "special ...
// requests" fragment, mirroring dbgen's share of excluded orders.
func comment(r *rng) string {
	w := func() string { return commentWords[r.intn(len(commentWords))] }
	s := w() + " " + w() + " " + w() + " " + w()
	if r.intn(83) == 0 {
		s = w() + " special " + w() + " requests " + w()
	}
	return s
}

func genOrdersAndLineitem(nOrders, nCust, nPart, nSupp int, seed uint64) (*storage.Table, *storage.Table) {
	orders := storage.NewTable("orders", types.Schema{
		{Name: "o_orderkey", Kind: types.Int64},
		{Name: "o_custkey", Kind: types.Int32},
		{Name: "o_orderdate", Kind: types.Date},
		{Name: "o_orderpriority", Kind: types.String},
		{Name: "o_shippriority", Kind: types.Int32},
		{Name: "o_comment", Kind: types.String},
	})
	lineitem := storage.NewTable("lineitem", types.Schema{
		{Name: "l_orderkey", Kind: types.Int64},
		{Name: "l_partkey", Kind: types.Int32},
		{Name: "l_suppkey", Kind: types.Int32},
		{Name: "l_quantity", Kind: types.Float64},
		{Name: "l_extendedprice", Kind: types.Float64},
		{Name: "l_discount", Kind: types.Float64},
		{Name: "l_tax", Kind: types.Float64},
		{Name: "l_returnflag", Kind: types.String},
		{Name: "l_linestatus", Kind: types.String},
		{Name: "l_shipdate", Kind: types.Date},
		{Name: "l_commitdate", Kind: types.Date},
		{Name: "l_receiptdate", Kind: types.Date},
		{Name: "l_shipmode", Kind: types.String},
		{Name: "l_shipinstruct", Kind: types.String},
	})
	r := newRNG(seed, "orders")
	orders.SetRows(nOrders)
	oKey := orders.Col("o_orderkey").I64
	oCust := orders.Col("o_custkey").I32
	oDate := orders.Col("o_orderdate").I32
	oPrio := orders.Col("o_orderpriority").Str
	oShip := orders.Col("o_shippriority").I32
	oComm := orders.Col("o_comment").Str

	// Lineitem columns are appended (1-7 lines per order).
	lKey := lineitem.Col("l_orderkey")
	lPart := lineitem.Col("l_partkey")
	lSupp := lineitem.Col("l_suppkey")
	lQty := lineitem.Col("l_quantity")
	lPrice := lineitem.Col("l_extendedprice")
	lDisc := lineitem.Col("l_discount")
	lTax := lineitem.Col("l_tax")
	lRet := lineitem.Col("l_returnflag")
	lStat := lineitem.Col("l_linestatus")
	lShip := lineitem.Col("l_shipdate")
	lComm := lineitem.Col("l_commitdate")
	lRecv := lineitem.Col("l_receiptdate")
	lMode := lineitem.Col("l_shipmode")
	lInstr := lineitem.Col("l_shipinstruct")

	dateSpan := int(endDate - startDate)
	nLines := 0
	for i := 0; i < nOrders; i++ {
		oKey[i] = int64(i + 1)
		// As in dbgen, a third of customers place no orders: Q13's
		// outer-join distribution has a large zero bucket.
		ck := r.rangeInt(1, nCust)
		if nCust >= 3 {
			for ck%3 == 0 {
				ck = r.rangeInt(1, nCust)
			}
		}
		oCust[i] = int32(ck)
		od := startDate + int32(r.intn(dateSpan-121))
		oDate[i] = od
		oPrio[i] = priorities[r.intn(len(priorities))]
		oShip[i] = 0
		oComm[i] = comment(r)

		lines := r.rangeInt(1, 7)
		for ln := 0; ln < lines; ln++ {
			nLines++
			pk := int32(r.rangeInt(1, nPart))
			qty := float64(r.rangeInt(1, 50))
			ship := od + int32(r.rangeInt(1, 121))
			commit := od + int32(r.rangeInt(30, 90))
			recv := ship + int32(r.rangeInt(1, 30))
			rf := "N"
			if recv <= cutoff {
				if r.intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "F"
			if ship > cutoff {
				ls = "O"
			}
			appendI64(lKey, int64(i+1))
			appendI32(lPart, pk)
			appendI32(lSupp, int32(r.rangeInt(1, nSupp)))
			appendF64(lQty, qty)
			appendF64(lPrice, qty*retailPrice(pk))
			appendF64(lDisc, float64(r.rangeInt(0, 10))/100)
			appendF64(lTax, float64(r.rangeInt(0, 8))/100)
			appendStr(lRet, rf)
			appendStr(lStat, ls)
			appendI32(lShip, ship)
			appendI32(lComm, commit)
			appendI32(lRecv, recv)
			appendStr(lMode, shipmodes[r.intn(len(shipmodes))])
			appendStr(lInstr, instructs[r.intn(len(instructs))])
		}
	}
	lineitem.SetRows(nLines)
	return orders, lineitem
}

func appendI32(v *storage.Vector, x int32)   { v.I32 = append(v.I32, x) }
func appendI64(v *storage.Vector, x int64)   { v.I64 = append(v.I64, x) }
func appendF64(v *storage.Vector, x float64) { v.F64 = append(v.F64, x) }
func appendStr(v *storage.Vector, x string)  { v.Str = append(v.Str, x) }

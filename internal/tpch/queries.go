package tpch

import (
	"fmt"

	"inkfuse/internal/algebra"
	"inkfuse/internal/ir"
	"inkfuse/internal/storage"
)

// Queries lists the supported TPC-H queries in the paper's order.
var Queries = []string{"q1", "q3", "q4", "q5", "q6", "q13", "q14", "q19"}

// Build returns the physical plan for the named query over the catalog. The
// plans mirror the ones the paper uses (Umbra-style optimized join orders,
// hand-built as in InkFuse, which has no SQL frontend).
func Build(cat *storage.Catalog, name string) (algebra.Node, error) {
	switch name {
	case "q1":
		return Q1(cat), nil
	case "q3":
		return Q3(cat), nil
	case "q4":
		return Q4(cat), nil
	case "q5":
		return Q5(cat), nil
	case "q6":
		return Q6(cat), nil
	case "q13":
		return Q13(cat), nil
	case "q14":
		return Q14(cat), nil
	case "q19":
		return Q19(cat), nil
	case "q10":
		return Q10(cat), nil
	case "q12":
		return Q12(cat), nil
	default:
		return nil, fmt.Errorf("tpch: unknown query %q", name)
	}
}

// Q1: low-cardinality aggregation over almost all of lineitem.
//
//	SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice),
//	       sum(l_extendedprice*(1-l_discount)),
//	       sum(l_extendedprice*(1-l_discount)*(1+l_tax)),
//	       avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)
//	FROM lineitem WHERE l_shipdate <= date '1998-09-02'
//	GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus
func Q1(cat *storage.Catalog) algebra.Node {
	li := cat.MustGet("lineitem")
	scan := algebra.NewScan(li, "l_returnflag", "l_linestatus", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_shipdate")
	filtered := algebra.NewFilter(scan,
		algebra.Le(algebra.Col("l_shipdate"), algebra.DateLit("1998-09-02")))
	mapped := algebra.NewMap(filtered,
		algebra.NamedExpr{As: "disc_price", E: algebra.Mul(algebra.Col("l_extendedprice"),
			algebra.Sub(algebra.F64(1), algebra.Col("l_discount")))},
		algebra.NamedExpr{As: "charge", E: algebra.Mul(algebra.Col("disc_price"),
			algebra.Add(algebra.F64(1), algebra.Col("l_tax")))},
	)
	g := algebra.NewGroupBy(mapped, []string{"l_returnflag", "l_linestatus"},
		algebra.Sum("l_quantity", "sum_qty"),
		algebra.Sum("l_extendedprice", "sum_base_price"),
		algebra.Sum("disc_price", "sum_disc_price"),
		algebra.Sum("charge", "sum_charge"),
		algebra.Avg("l_quantity", "avg_qty"),
		algebra.Avg("l_extendedprice", "avg_price"),
		algebra.Avg("l_discount", "avg_disc"),
		algebra.Count("count_order"),
	)
	return algebra.NewOrderBy(g, []string{"l_returnflag", "l_linestatus"}, nil, 0)
}

// Q3: two joins with a >20x build/probe size difference, top-10 result.
func Q3(cat *storage.Catalog) algebra.Node {
	cust := algebra.NewFilter(
		algebra.NewScan(cat.MustGet("customer"), "c_custkey", "c_mktsegment"),
		algebra.Eq(algebra.Col("c_mktsegment"), algebra.Str("BUILDING")))
	ord := algebra.NewFilter(
		algebra.NewScan(cat.MustGet("orders"), "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"),
		algebra.Lt(algebra.Col("o_orderdate"), algebra.DateLit("1995-03-15")))
	custOrders := &algebra.HashJoin{
		Build: cust, Probe: ord,
		BuildKeys: []string{"c_custkey"}, ProbeKeys: []string{"o_custkey"},
		Mode: ir.InnerJoin,
	}
	li := algebra.NewFilter(
		algebra.NewScan(cat.MustGet("lineitem"), "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"),
		algebra.Gt(algebra.Col("l_shipdate"), algebra.DateLit("1995-03-15")))
	joined := &algebra.HashJoin{
		Build: custOrders, Probe: li,
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildCols: []string{"o_orderdate", "o_shippriority"},
		Mode:      ir.InnerJoin,
	}
	mapped := algebra.NewMap(joined, algebra.NamedExpr{As: "rev", E: algebra.Mul(
		algebra.Col("l_extendedprice"), algebra.Sub(algebra.F64(1), algebra.Col("l_discount")))})
	g := algebra.NewGroupBy(mapped, []string{"l_orderkey", "o_orderdate", "o_shippriority"},
		algebra.Sum("rev", "revenue"))
	proj := algebra.NewProject(g, "l_orderkey", "revenue", "o_orderdate", "o_shippriority")
	return algebra.NewOrderBy(proj, []string{"revenue", "o_orderdate"}, []bool{true, false}, 10)
}

// Q4: semi join (EXISTS) between orders and late lineitems.
func Q4(cat *storage.Catalog) algebra.Node {
	late := algebra.NewFilter(
		algebra.NewScan(cat.MustGet("lineitem"), "l_orderkey", "l_commitdate", "l_receiptdate"),
		algebra.Lt(algebra.Col("l_commitdate"), algebra.Col("l_receiptdate")))
	ord := algebra.NewFilter(
		algebra.NewScan(cat.MustGet("orders"), "o_orderkey", "o_orderdate", "o_orderpriority"),
		algebra.And(
			algebra.Ge(algebra.Col("o_orderdate"), algebra.DateLit("1993-07-01")),
			algebra.Lt(algebra.Col("o_orderdate"), algebra.DateLit("1993-10-01"))))
	semi := &algebra.HashJoin{
		Build: late, Probe: ord,
		BuildKeys: []string{"l_orderkey"}, ProbeKeys: []string{"o_orderkey"},
		Mode: ir.SemiJoin,
	}
	g := algebra.NewGroupBy(semi, []string{"o_orderpriority"}, algebra.Count("order_count"))
	return algebra.NewOrderBy(g, []string{"o_orderpriority"}, nil, 0)
}

// Q5: five-way join tree with a compound-key supplier join.
func Q5(cat *storage.Catalog) algebra.Node {
	region := algebra.NewFilter(
		algebra.NewScan(cat.MustGet("region"), "r_regionkey", "r_name"),
		algebra.Eq(algebra.Col("r_name"), algebra.Str("ASIA")))
	nation := &algebra.HashJoin{
		Build:     region,
		Probe:     algebra.NewScan(cat.MustGet("nation"), "n_nationkey", "n_name", "n_regionkey"),
		BuildKeys: []string{"r_regionkey"}, ProbeKeys: []string{"n_regionkey"},
		Mode: ir.InnerJoin,
	}
	customer := &algebra.HashJoin{
		Build:     nation,
		Probe:     algebra.NewScan(cat.MustGet("customer"), "c_custkey", "c_nationkey"),
		BuildKeys: []string{"n_nationkey"}, ProbeKeys: []string{"c_nationkey"},
		BuildCols: []string{"n_name"},
		Mode:      ir.InnerJoin,
	}
	orders := &algebra.HashJoin{
		Build: customer,
		Probe: algebra.NewFilter(
			algebra.NewScan(cat.MustGet("orders"), "o_orderkey", "o_custkey", "o_orderdate"),
			algebra.And(
				algebra.Ge(algebra.Col("o_orderdate"), algebra.DateLit("1994-01-01")),
				algebra.Lt(algebra.Col("o_orderdate"), algebra.DateLit("1995-01-01")))),
		BuildKeys: []string{"c_custkey"}, ProbeKeys: []string{"o_custkey"},
		BuildCols: []string{"n_name", "c_nationkey"},
		Mode:      ir.InnerJoin,
	}
	lineitem := &algebra.HashJoin{
		Build:     orders,
		Probe:     algebra.NewScan(cat.MustGet("lineitem"), "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"),
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildCols: []string{"n_name", "c_nationkey"},
		Mode:      ir.InnerJoin,
	}
	// Compound-key join: s_suppkey = l_suppkey AND s_nationkey = c_nationkey.
	supplier := &algebra.HashJoin{
		Build:     algebra.NewScan(cat.MustGet("supplier"), "s_suppkey", "s_nationkey"),
		Probe:     lineitem,
		BuildKeys: []string{"s_suppkey", "s_nationkey"},
		ProbeKeys: []string{"l_suppkey", "c_nationkey"},
		Mode:      ir.InnerJoin,
	}
	mapped := algebra.NewMap(supplier, algebra.NamedExpr{As: "rev", E: algebra.Mul(
		algebra.Col("l_extendedprice"), algebra.Sub(algebra.F64(1), algebra.Col("l_discount")))})
	g := algebra.NewGroupBy(mapped, []string{"n_name"}, algebra.Sum("rev", "revenue"))
	return algebra.NewOrderBy(g, []string{"revenue"}, []bool{true}, 0)
}

// Q6: selective multi-predicate filter into a keyless aggregation.
func Q6(cat *storage.Catalog) algebra.Node {
	scan := algebra.NewScan(cat.MustGet("lineitem"),
		"l_quantity", "l_extendedprice", "l_discount", "l_shipdate")
	filtered := algebra.NewFilter(scan, algebra.And(
		algebra.Ge(algebra.Col("l_shipdate"), algebra.DateLit("1994-01-01")),
		algebra.Lt(algebra.Col("l_shipdate"), algebra.DateLit("1995-01-01")),
		algebra.Ge(algebra.Col("l_discount"), algebra.F64(0.05)),
		algebra.Le(algebra.Col("l_discount"), algebra.F64(0.07)),
		algebra.Lt(algebra.Col("l_quantity"), algebra.F64(24))))
	mapped := algebra.NewMap(filtered, algebra.NamedExpr{As: "rev",
		E: algebra.Mul(algebra.Col("l_extendedprice"), algebra.Col("l_discount"))})
	return algebra.NewGroupBy(mapped, nil, algebra.Sum("rev", "revenue"))
}

// Q13: outer join with many unmatched tuples, then a second aggregation.
func Q13(cat *storage.Catalog) algebra.Node {
	ord := algebra.NewFilter(
		algebra.NewScan(cat.MustGet("orders"), "o_custkey", "o_comment"),
		algebra.NotLike(algebra.Col("o_comment"), "%special%requests%"))
	outer := &algebra.HashJoin{
		Build:     ord,
		Probe:     algebra.NewScan(cat.MustGet("customer"), "c_custkey"),
		BuildKeys: []string{"o_custkey"}, ProbeKeys: []string{"c_custkey"},
		Mode:      ir.LeftOuterJoin,
		MatchedAs: "has_order",
	}
	perCust := algebra.NewGroupBy(outer, []string{"c_custkey"},
		algebra.CountIf("has_order", "c_count"))
	dist := algebra.NewGroupBy(perCust, []string{"c_count"}, algebra.Count("custdist"))
	return algebra.NewOrderBy(dist, []string{"custdist", "c_count"}, []bool{true, true}, 0)
}

// Q14: join with a CASE expression feeding two keyless sums.
func Q14(cat *storage.Catalog) algebra.Node {
	li := algebra.NewFilter(
		algebra.NewScan(cat.MustGet("lineitem"), "l_partkey", "l_extendedprice", "l_discount", "l_shipdate"),
		algebra.And(
			algebra.Ge(algebra.Col("l_shipdate"), algebra.DateLit("1995-09-01")),
			algebra.Lt(algebra.Col("l_shipdate"), algebra.DateLit("1995-10-01"))))
	joined := &algebra.HashJoin{
		Build:     algebra.NewScan(cat.MustGet("part"), "p_partkey", "p_type"),
		Probe:     li,
		BuildKeys: []string{"p_partkey"}, ProbeKeys: []string{"l_partkey"},
		BuildCols: []string{"p_type"},
		Mode:      ir.InnerJoin,
	}
	mapped := algebra.NewMap(joined,
		algebra.NamedExpr{As: "rev", E: algebra.Mul(algebra.Col("l_extendedprice"),
			algebra.Sub(algebra.F64(1), algebra.Col("l_discount")))},
		algebra.NamedExpr{As: "promo_rev", E: algebra.Case(
			algebra.Like(algebra.Col("p_type"), "PROMO%"),
			algebra.Col("rev"), algebra.F64(0))},
	)
	g := algebra.NewGroupBy(mapped, nil,
		algebra.Sum("promo_rev", "sum_promo"), algebra.Sum("rev", "sum_rev"))
	final := algebra.NewMap(g, algebra.NamedExpr{As: "promo_revenue",
		E: algebra.Div(algebra.Mul(algebra.F64(100), algebra.Col("sum_promo")), algebra.Col("sum_rev"))})
	return algebra.NewProject(final, "promo_revenue")
}

// Q19: disjunction of three conjunctive clauses over both join sides.
func Q19(cat *storage.Catalog) algebra.Node {
	li := algebra.NewFilter(
		algebra.NewScan(cat.MustGet("lineitem"), "l_partkey", "l_quantity",
			"l_extendedprice", "l_discount", "l_shipmode", "l_shipinstruct"),
		algebra.And(
			algebra.Eq(algebra.Col("l_shipinstruct"), algebra.Str("DELIVER IN PERSON")),
			algebra.In(algebra.Col("l_shipmode"), "AIR", "AIR REG")))
	joined := &algebra.HashJoin{
		Build:     algebra.NewScan(cat.MustGet("part"), "p_partkey", "p_brand", "p_size", "p_container"),
		Probe:     li,
		BuildKeys: []string{"p_partkey"}, ProbeKeys: []string{"l_partkey"},
		BuildCols: []string{"p_brand", "p_size", "p_container"},
		Mode:      ir.InnerJoin,
	}
	clause := func(brand string, containers []string, qlo, qhi float64, smax int32) algebra.Expr {
		return algebra.And(
			algebra.Eq(algebra.Col("p_brand"), algebra.Str(brand)),
			algebra.In(algebra.Col("p_container"), containers...),
			algebra.Ge(algebra.Col("l_quantity"), algebra.F64(qlo)),
			algebra.Le(algebra.Col("l_quantity"), algebra.F64(qhi)),
			algebra.Ge(algebra.Col("p_size"), algebra.I32(1)),
			algebra.Le(algebra.Col("p_size"), algebra.I32(smax)))
	}
	filtered := algebra.NewFilter(joined, algebra.Or(
		clause("Brand#12", []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5),
		clause("Brand#23", []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10),
		clause("Brand#34", []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15)))
	mapped := algebra.NewMap(filtered, algebra.NamedExpr{As: "rev", E: algebra.Mul(
		algebra.Col("l_extendedprice"), algebra.Sub(algebra.F64(1), algebra.Col("l_discount")))})
	return algebra.NewGroupBy(mapped, nil, algebra.Sum("rev", "revenue"))
}

package tpch

import (
	"strings"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/types"
	"inkfuse/internal/volcano"
)

// volcanoRun evaluates a plan on the oracle and returns its row count.
func volcanoRun(node algebra.Node) (int, error) {
	out, err := volcano.Run(node)
	if err != nil {
		return 0, err
	}
	return out.Rows(), nil
}

// The generator must reproduce the distributions the eight queries are
// sensitive to; these tests pin them.

func TestLineitemDateRules(t *testing.T) {
	li := testCat.MustGet("lineitem")
	ship := li.Col("l_shipdate").I32
	commit := li.Col("l_commitdate").I32
	recv := li.Col("l_receiptdate").I32
	rf := li.Col("l_returnflag").Str
	ls := li.Col("l_linestatus").Str
	ord := testCat.MustGet("orders")
	odate := map[int64]int32{}
	for i := 0; i < ord.Rows(); i++ {
		odate[ord.Col("o_orderkey").I64[i]] = ord.Col("o_orderdate").I32[i]
	}
	lkey := li.Col("l_orderkey").I64
	pivot := types.MkDate(1995, 6, 17)
	for i := 0; i < li.Rows(); i++ {
		od := odate[lkey[i]]
		if ship[i] <= od || ship[i] > od+121 {
			t.Fatalf("row %d: shipdate offset out of range", i)
		}
		if commit[i] < od+30 || commit[i] > od+90 {
			t.Fatalf("row %d: commitdate offset out of range", i)
		}
		if recv[i] <= ship[i] || recv[i] > ship[i]+30 {
			t.Fatalf("row %d: receiptdate before shipdate", i)
		}
		// Return flag rule (spec 4.2.3): R/A before the pivot, N after.
		if recv[i] <= pivot && rf[i] == "N" {
			t.Fatalf("row %d: N before pivot", i)
		}
		if recv[i] > pivot && rf[i] != "N" {
			t.Fatalf("row %d: %s after pivot", i, rf[i])
		}
		if (ship[i] > pivot) != (ls[i] == "O") {
			t.Fatalf("row %d: linestatus rule broken", i)
		}
	}
}

func TestLineitemValueDomains(t *testing.T) {
	li := testCat.MustGet("lineitem")
	for i := 0; i < li.Rows(); i++ {
		q := li.Col("l_quantity").F64[i]
		d := li.Col("l_discount").F64[i]
		tax := li.Col("l_tax").F64[i]
		if q < 1 || q > 50 {
			t.Fatalf("quantity %v", q)
		}
		if d < 0 || d > 0.10 {
			t.Fatalf("discount %v", d)
		}
		if tax < 0 || tax > 0.08 {
			t.Fatalf("tax %v", tax)
		}
		if li.Col("l_extendedprice").F64[i] <= 0 {
			t.Fatal("non-positive price")
		}
	}
}

func TestQ6SelectivityBand(t *testing.T) {
	// Q6's predicate selects roughly 1/7 (date) * ~3/11 (discount) * ~1/2
	// (quantity) ≈ 2% of lineitem.
	li := testCat.MustGet("lineitem")
	lo, hi := types.MkDate(1994, 1, 1), types.MkDate(1995, 1, 1)
	n := 0
	for i := 0; i < li.Rows(); i++ {
		d := li.Col("l_shipdate").I32[i]
		disc := li.Col("l_discount").F64[i]
		q := li.Col("l_quantity").F64[i]
		if d >= lo && d < hi && disc >= 0.05 && disc <= 0.07 && q < 24 {
			n++
		}
	}
	sel := float64(n) / float64(li.Rows())
	if sel < 0.005 || sel > 0.05 {
		t.Fatalf("q6 selectivity %.4f out of band", sel)
	}
}

func TestCommentSpecialRequestsShare(t *testing.T) {
	ord := testCat.MustGet("orders")
	n := 0
	for _, c := range ord.Col("o_comment").Str {
		if strings.Contains(c, "special") && strings.Contains(c[strings.Index(c, "special"):], "requests") {
			n++
		}
	}
	share := float64(n) / float64(ord.Rows())
	// dbgen excludes ~1.2% of orders in Q13.
	if share < 0.002 || share > 0.05 {
		t.Fatalf("special-requests share %.4f out of band", share)
	}
}

func TestCustomerOrderDistribution(t *testing.T) {
	// A third of customers place no orders (Q13's large zero bucket).
	ord := testCat.MustGet("orders")
	cust := testCat.MustGet("customer")
	has := map[int32]bool{}
	for _, ck := range ord.Col("o_custkey").I32 {
		if ck%3 == 0 {
			t.Fatalf("custkey %d should never order", ck)
		}
		has[ck] = true
	}
	zero := 0
	for _, ck := range cust.Col("c_custkey").I32 {
		if !has[ck] {
			zero++
		}
	}
	share := float64(zero) / float64(cust.Rows())
	if share < 0.25 || share > 0.6 {
		t.Fatalf("zero-order customer share %.3f", share)
	}
}

func TestPartDomains(t *testing.T) {
	part := testCat.MustGet("part")
	brands := map[string]bool{}
	containers := map[string]bool{}
	for i := 0; i < part.Rows(); i++ {
		b := part.Col("p_brand").Str[i]
		if !strings.HasPrefix(b, "Brand#") || len(b) != 8 {
			t.Fatalf("brand %q", b)
		}
		brands[b] = true
		containers[part.Col("p_container").Str[i]] = true
		sz := part.Col("p_size").I32[i]
		if sz < 1 || sz > 50 {
			t.Fatalf("size %d", sz)
		}
		ty := part.Col("p_type").Str[i]
		if len(strings.Fields(ty)) != 3 {
			t.Fatalf("type %q", ty)
		}
	}
	if len(brands) != 25 {
		t.Fatalf("brands = %d, want 25", len(brands))
	}
	// Q19 needs its specific containers to exist.
	for _, c := range []string{"SM CASE", "MED BAG", "LG BOX"} {
		if !containers[c] {
			t.Fatalf("container %q never generated", c)
		}
	}
}

func TestRetailPriceFormula(t *testing.T) {
	if retailPrice(1) <= 0 || retailPrice(200000) <= 0 {
		t.Fatal("retail price non-positive")
	}
	if retailPrice(1) == retailPrice(11) && retailPrice(1) == retailPrice(21) {
		t.Fatal("price formula constant")
	}
}

func TestQueriesProduceSaneRowCounts(t *testing.T) {
	// Shape checks at test SF: Q1 has at most 4 flag/status groups, Q4 at
	// most 5 priorities, Q5 at most 5 ASIA nations, Q6/Q14/Q19 one row.
	counts := map[string][2]int{
		"q1": {3, 4}, "q4": {4, 5}, "q5": {1, 5},
		"q6": {1, 1}, "q14": {1, 1}, "q19": {1, 1},
	}
	for q, band := range counts {
		node, err := Build(testCat, q)
		if err != nil {
			t.Fatal(err)
		}
		out, err := volcanoRun(node)
		if err != nil {
			t.Fatal(err)
		}
		if out < band[0] || out > band[1] {
			t.Fatalf("%s: %d rows, want %d..%d", q, out, band[0], band[1])
		}
	}
}

func TestBuildUnknownQuery(t *testing.T) {
	if _, err := Build(testCat, "q99"); err == nil {
		t.Fatal("expected unknown-query error")
	}
}

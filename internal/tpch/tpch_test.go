package tpch

import (
	"fmt"
	"sort"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/exec"
	"inkfuse/internal/storage"
	"inkfuse/internal/volcano"
)

var testCat = Generate(0.002, 42)

func rowsOf(c *storage.Chunk) []string {
	out := make([]string, c.Rows())
	for i := range out {
		out[i] = fmt.Sprintf("%.6v", c.Row(i))
	}
	return out
}

// TestQueriesAgainstOracle runs every query on every backend and compares
// with the Volcano oracle. Ordered queries compare row-by-row; unordered
// ones as multisets.
func TestQueriesAgainstOracle(t *testing.T) {
	for _, q := range append(append([]string{}, Queries...), ExtendedQueries...) {
		t.Run(q, func(t *testing.T) {
			node, err := Build(testCat, q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := volcano.Run(node)
			if err != nil {
				t.Fatalf("volcano: %v", err)
			}
			_, ordered := node.(*algebra.OrderBy)
			wantRows := rowsOf(want)
			if !ordered {
				sort.Strings(wantRows)
			}
			if len(wantRows) == 0 {
				t.Fatalf("oracle produced no rows — test data too small to exercise %s", q)
			}
			for _, backend := range []exec.Backend{
				exec.BackendVectorized, exec.BackendCompiling, exec.BackendROF, exec.BackendHybrid,
			} {
				plan, err := algebra.Lower(node, q)
				if err != nil {
					t.Fatalf("lower: %v", err)
				}
				lat := exec.LatencyNone
				res, err := exec.Execute(plan, exec.Options{Backend: backend, Workers: 2, Latency: &lat})
				if err != nil {
					t.Fatalf("%v: %v", backend, err)
				}
				gotRows := rowsOf(res.Chunk)
				if !ordered {
					sort.Strings(gotRows)
				}
				if len(gotRows) != len(wantRows) {
					t.Fatalf("%v: got %d rows, want %d", backend, len(gotRows), len(wantRows))
				}
				for i := range gotRows {
					if gotRows[i] != wantRows[i] {
						t.Errorf("%v: row %d:\n got  %s\n want %s", backend, i, gotRows[i], wantRows[i])
						break
					}
				}
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Generate(0.001, 7)
	b := Generate(0.001, 7)
	for _, name := range []string{"lineitem", "orders", "customer", "part"} {
		ta, tb := a.MustGet(name), b.MustGet(name)
		if ta.Rows() != tb.Rows() {
			t.Fatalf("%s: row counts differ", name)
		}
		for i := 0; i < min(ta.Rows(), 100); i++ {
			ra := fmt.Sprintf("%v", rowOf(ta, i))
			rb := fmt.Sprintf("%v", rowOf(tb, i))
			if ra != rb {
				t.Fatalf("%s row %d differs: %s vs %s", name, i, ra, rb)
			}
		}
	}
}

func rowOf(t *storage.Table, i int) []any {
	out := make([]any, len(t.Cols))
	for j, c := range t.Cols {
		out[j] = c.Value(i)
	}
	return out
}

func TestGeneratorScaling(t *testing.T) {
	small := Generate(0.001, 1)
	big := Generate(0.004, 1)
	s := small.MustGet("orders").Rows()
	b := big.MustGet("orders").Rows()
	if b < 3*s || b > 5*s {
		t.Fatalf("orders scaling off: %d vs %d", s, b)
	}
	li := big.MustGet("lineitem").Rows()
	ord := big.MustGet("orders").Rows()
	if li < 3*ord || li > 5*ord {
		t.Fatalf("lineitem per order out of range: %d lineitems for %d orders", li, ord)
	}
}

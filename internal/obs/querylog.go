// Canonical query log: one structured wide event per query completion, the
// single source of truth for "what did this query do" in logs. Serve and
// inkbench both emit it through log/slog, so a slow, failed, shed or degraded
// query carries the same fields everywhere: identity (engine query id,
// fingerprint, source), routing (backend, plan-cache outcome, degradations),
// scheduling (admission queue wait), compilation (compiles run vs artifacts
// reused, cached bytes), execution counters (rows, tuples, hash-table
// behaviour), and the duration breakdown.
//
// Tail-based sampling: the interesting tail — errors, shed admissions, slow
// queries, degraded pipelines — is always kept; plain successes are sampled
// probabilistically (deterministic in the query id, so a fleet of servers
// keeps a consistent subset and reruns are reproducible).

package obs

import (
	"context"
	"log/slog"
	"time"
)

// QueryEvent is the canonical wide event of one query completion.
type QueryEvent struct {
	// Identity.
	ID          uint64 // engine-wide query id (flight-recorder / span key)
	Query       string // plan name, e.g. "q6"
	Source      string // "plan" (named query), "sql" (text), "prepared" (handle)
	Fingerprint string // parameter-invariant plan fingerprint ("" for named plans)
	TraceID     string // W3C trace id when the client sent traceparent

	// Routing.
	Backend   string // backend that executed the query
	PlanCache string // "hit", "miss", or "off"
	Degraded  bool   // a hybrid pipeline permanently fell back to vectorized

	// Outcome. Outcome is "ok" for successes, otherwise the error kind the
	// serving layer classified ("shed", "deadline", "canceled", "panic", ...).
	Outcome string
	Error   string // terminal error message ("" on success)
	Slow    bool   // wall exceeded the slow-query threshold

	// Volume.
	Rows   int   // result rows
	Tuples int64 // source tuples processed

	// Duration breakdown.
	Wall        time.Duration // end-to-end, admission included
	QueueWait   time.Duration // admission-queue wait inside Wall
	CompileTime time.Duration // total compile time charged to this execution
	CompileWait time.Duration // dead wait on foreground compilation

	// Compilation amortization (plan/artifact cache).
	Compiles        int64 // compile jobs this execution ran
	ArtifactsReused int64 // fused pipelines served from cached artifacts
	ArtifactBytes   int64 // cached artifact bytes leased with the plan

	// Hash-table counters.
	HTLocalHits  int64
	HTSpills     int64
	HTBloomSkips int64

	// Exchange routing (DESIGN.md §15): rows hash-routed through local
	// exchanges and the largest single partition (the skew signal).
	PartRoutedRows  int64
	PartMaxPartRows int64

	// Morsel routing (hybrid: how incremental fusion split the work).
	MorselsCompiled   int64
	MorselsVectorized int64
}

// Interesting reports whether the event is in the always-keep tail: any
// non-ok outcome, an explicit error, a shed/degraded/slow query.
func (e *QueryEvent) Interesting() bool {
	return e.Outcome != "ok" || e.Error != "" || e.Degraded || e.Slow
}

// attrs renders the event as slog attributes. Zero-valued optional fields
// (fingerprint, trace id, compile times on pure-vectorized runs) are elided
// so the line stays readable in text handlers.
func (e *QueryEvent) attrs() []slog.Attr {
	out := make([]slog.Attr, 0, 24)
	out = append(out,
		slog.Uint64("id", e.ID),
		slog.String("query", e.Query),
		slog.String("source", e.Source),
		slog.String("backend", e.Backend),
		slog.String("outcome", e.Outcome),
		slog.Duration("wall", e.Wall),
		slog.Duration("queue_wait", e.QueueWait),
		slog.Int("rows", e.Rows),
		slog.Int64("tuples", e.Tuples),
	)
	if e.Fingerprint != "" {
		out = append(out, slog.String("fingerprint", e.Fingerprint))
	}
	if e.PlanCache != "" {
		out = append(out, slog.String("plan_cache", e.PlanCache))
	}
	if e.TraceID != "" {
		out = append(out, slog.String("trace_id", e.TraceID))
	}
	if e.Error != "" {
		out = append(out, slog.String("err", e.Error))
	}
	if e.Slow {
		out = append(out, slog.Bool("slow", true))
	}
	if e.Degraded {
		out = append(out, slog.Bool("degraded", true))
	}
	if e.CompileTime > 0 || e.CompileWait > 0 || e.Compiles > 0 {
		out = append(out,
			slog.Duration("compile_time", e.CompileTime),
			slog.Duration("compile_wait", e.CompileWait),
			slog.Int64("compiles", e.Compiles),
		)
	}
	if e.ArtifactsReused > 0 || e.ArtifactBytes > 0 {
		out = append(out,
			slog.Int64("artifacts_reused", e.ArtifactsReused),
			slog.Int64("artifact_bytes", e.ArtifactBytes),
		)
	}
	if e.HTLocalHits > 0 || e.HTSpills > 0 || e.HTBloomSkips > 0 {
		out = append(out,
			slog.Int64("ht_local_hits", e.HTLocalHits),
			slog.Int64("ht_spills", e.HTSpills),
			slog.Int64("ht_bloom_skips", e.HTBloomSkips),
		)
	}
	if e.PartRoutedRows > 0 {
		out = append(out,
			slog.Int64("part_routed_rows", e.PartRoutedRows),
			slog.Int64("part_max_part_rows", e.PartMaxPartRows),
		)
	}
	if e.MorselsCompiled > 0 || e.MorselsVectorized > 0 {
		out = append(out,
			slog.Int64("morsels_jit", e.MorselsCompiled),
			slog.Int64("morsels_vec", e.MorselsVectorized),
		)
	}
	return out
}

// Emit writes the canonical event to the logger at a level matching its
// severity: Error for failed queries, Warn for slow/degraded ones, Info
// otherwise. The message is always "query" so downstream filters key on the
// attributes, not the text.
func (e *QueryEvent) Emit(logger *slog.Logger) {
	if logger == nil {
		return
	}
	level := slog.LevelInfo
	switch {
	case e.Outcome != "ok" || e.Error != "":
		level = slog.LevelError
	case e.Slow || e.Degraded:
		level = slog.LevelWarn
	}
	logger.LogAttrs(context.Background(), level, "query", e.attrs()...)
}

// TailSampler decides which canonical query events are logged. The tail —
// every event whose Interesting() is true — is always kept; plain successes
// are kept with probability SuccessRate, decided deterministically from the
// query id (splitmix64), so the kept subset is stable across reruns and
// consistent between a server's log and its span file.
type TailSampler struct {
	// SuccessRate is the fraction of non-interesting (plain success) events
	// kept: 1 keeps everything, 0 drops every plain success, 0.01 keeps ~1%.
	SuccessRate float64
}

// Keep reports whether the event should be emitted.
func (s TailSampler) Keep(e *QueryEvent) bool {
	if e.Interesting() {
		return true
	}
	switch {
	case s.SuccessRate >= 1:
		return true
	case s.SuccessRate <= 0:
		return false
	}
	// splitmix64 finalizer: uniform in [0, 2^53) after the shift.
	x := e.ID + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < s.SuccessRate
}

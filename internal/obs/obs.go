// Package obs is the serving-grade observability layer on top of
// internal/metrics: lock-free fixed-bucket histograms for latency and
// throughput distributions, grouped into label families (one child per
// execution backend), with p50/p90/p99 summaries and a Prometheus
// text-exposition renderer that folds in the flat engine counters.
//
// The recording discipline matches the rest of the engine's observability
// stack: histograms are fed at morsel granularity or coarser (never per row
// or per chunk), and an observation is two atomic adds plus a binary search
// over ~25 bucket bounds — no locks, no allocations, safe for every worker
// concurrently.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inkfuse/internal/metrics"
)

// LatencyBounds are the default histogram bounds for durations, in seconds:
// a 1-2-5 series from 1µs to 100s. Morsels land in the µs-ms decades,
// queries in the ms-s decades; one layout serves both so summaries are
// comparable.
var LatencyBounds = decades(1e-6, 1e2)

// ThroughputBounds are the default bounds for rates (rows/sec): a 1-2-5
// series from 1K/s to 10G/s.
var ThroughputBounds = decades(1e3, 1e10)

// decades builds a 1-2-5 series covering [lo, hi].
func decades(lo, hi float64) []float64 {
	var out []float64
	for d := lo; d <= hi*1.0001; d *= 10 {
		for _, m := range []float64{1, 2, 5} {
			if v := d * m; v <= hi*1.0001 {
				out = append(out, v)
			}
		}
	}
	return out
}

// atomicFloat is a float64 accumulated with CAS (for histogram sums).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram. Buckets hold the count of
// observations v <= bound[i] (non-cumulative internally; rendered
// cumulatively, Prometheus-style, with a +Inf overflow bucket). All methods
// are safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
	count  atomic.Int64
}

// NewHistogram creates a histogram over the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket holding the target rank. Values in the +Inf bucket clamp
// to the highest bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c < rank || c == 0 {
			cum += c
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(rank-cum)/c
	}
	return h.bounds[len(h.bounds)-1]
}

// Summary is the compact quantile view of a histogram.
type Summary struct {
	Count         int64
	Sum           float64
	P50, P90, P99 float64
}

// Summarize estimates the standard serving quantiles.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(), Sum: h.Sum(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
}

// Family is one named histogram metric with a single label dimension
// (default "backend"); children are created on first use and live forever,
// matching the bounded label cardinality.
type Family struct {
	Name  string
	Help  string
	Label string // label name, e.g. "backend" or "outcome"

	bounds []float64
	mu     sync.RWMutex
	kids   map[string]*Histogram
}

// NewFamily creates an empty histogram family labeled by "backend".
func NewFamily(name, help string, bounds []float64) *Family {
	return NewLabeledFamily(name, help, "backend", bounds)
}

// NewLabeledFamily creates an empty histogram family with an explicit label
// dimension name.
func NewLabeledFamily(name, help, label string, bounds []float64) *Family {
	return &Family{Name: name, Help: help, Label: label, bounds: bounds, kids: map[string]*Histogram{}}
}

// With returns the child histogram for a label value, creating it on first
// use. Callers on hot paths resolve the child once (per query or pipeline)
// and then observe through the returned pointer.
func (f *Family) With(label string) *Histogram {
	f.mu.RLock()
	h := f.kids[label]
	f.mu.RUnlock()
	if h != nil {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if h = f.kids[label]; h == nil {
		h = NewHistogram(f.bounds)
		f.kids[label] = h
	}
	return h
}

// labels returns the child label values, sorted for deterministic rendering.
func (f *Family) labels() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.kids))
	for l := range f.kids {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Registry groups the engine's histogram families. The exported distributions
// are labeled by backend only: per-pipeline and per-suboperator breakdowns
// have unbounded name cardinality and live in the per-query trace /
// EXPLAIN ANALYZE instead (DESIGN.md §9).
type Registry struct {
	// QueryLatency is end-to-end query wall time, per backend.
	QueryLatency *Family
	// MorselLatency is per-morsel execution time (the scheduler's unit of
	// work), per backend. Fed once per morsel.
	MorselLatency *Family
	// QueryRows is per-query source-tuple throughput (rows/sec), per backend.
	QueryRows *Family
	// QueueWait is the time a query spent in the scheduler's admission queue,
	// labeled by outcome ("admitted", "shed", "timeout", "draining"). Fed by
	// internal/sched once per admission attempt.
	QueueWait *Family
}

// NewRegistry creates an empty histogram registry.
func NewRegistry() *Registry {
	return &Registry{
		QueryLatency:  NewFamily("inkfuse_query_seconds", "End-to-end query latency by backend.", LatencyBounds),
		MorselLatency: NewFamily("inkfuse_morsel_seconds", "Per-morsel execution latency by backend.", LatencyBounds),
		QueryRows:     NewFamily("inkfuse_query_rows_per_second", "Per-query source-row throughput by backend.", ThroughputBounds),
		QueueWait:     NewLabeledFamily("inkfuse_queue_wait_seconds", "Admission-queue wait by outcome.", "outcome", LatencyBounds),
	}
}

// Default is the process-wide histogram registry, fed by internal/exec from
// the same end-of-query hook as the flat metrics counters (plus one
// per-morsel latency observation from the scheduler).
var Default = NewRegistry()

// ObserveQuery folds one finished query into the registry: wall-time latency
// and source-row throughput. Called once per query, success or failure.
func (r *Registry) ObserveQuery(backend string, wall time.Duration, tuples int64) {
	r.QueryLatency.With(backend).ObserveDuration(wall)
	if s := wall.Seconds(); s > 0 && tuples > 0 {
		r.QueryRows.With(backend).Observe(float64(tuples) / s)
	}
}

// gauges names the flat counters that are point-in-time values rather than
// monotonic counters, for exposition typing.
var gauges = map[string]bool{
	"inkfuse_mem_peak_bytes": true,
	"inkfuse_sched_running":  true,
	"inkfuse_sched_queued":   true,
}

// PrometheusText renders the whole observability surface in Prometheus text
// exposition format: the flat engine counters of internal/metrics followed by
// this registry's histograms (cumulative buckets, sum, count).
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(metrics.Default.Dump()), "\n") {
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		kind := "counter"
		if gauges[name] {
			kind = "gauge"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n%s\n", name, kind, line)
	}
	for _, f := range []*Family{r.QueryLatency, r.MorselLatency, r.QueryRows, r.QueueWait} {
		writeFamily(&b, f)
	}
	return b.String()
}

func writeFamily(b *strings.Builder, f *Family) {
	labels := f.labels()
	if len(labels) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", f.Name, f.Help, f.Name)
	for _, l := range labels {
		h := f.With(l)
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket{%s=%q,le=%q} %d\n", f.Name, f.Label, l, formatBound(bound), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", f.Name, f.Label, l, cum)
		fmt.Fprintf(b, "%s_sum{%s=%q} %g\n", f.Name, f.Label, l, h.Sum())
		fmt.Fprintf(b, "%s_count{%s=%q} %d\n", f.Name, f.Label, l, h.Count())
	}
}

// formatBound renders a bucket bound without float noise ("0.001", "50000").
func formatBound(v float64) string {
	return fmt.Sprintf("%g", v)
}

// SummaryText renders the families' quantile summaries as human-readable
// lines — the compact view for logs and CLIs.
func (r *Registry) SummaryText() string {
	var b strings.Builder
	for _, f := range []*Family{r.QueryLatency, r.MorselLatency, r.QueryRows, r.QueueWait} {
		for _, l := range f.labels() {
			s := f.With(l).Summarize()
			fmt.Fprintf(&b, "%s{%s=%q} count=%d p50=%g p90=%g p99=%g\n",
				f.Name, f.Label, l, s.Count, s.P50, s.P90, s.P99)
		}
	}
	return b.String()
}

package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestQueryEventEmitLevelsAndFields(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))

	ok := &QueryEvent{
		ID: 7, Query: "q6", Source: "sql", Backend: "hybrid", Outcome: "ok",
		Fingerprint: "abc123", PlanCache: "hit", Rows: 1, Tuples: 60000,
		Wall: 12 * time.Millisecond, QueueWait: 1 * time.Millisecond,
	}
	ok.Emit(logger)
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("canonical event is not one JSON line: %v (%q)", err, buf.String())
	}
	if line["level"] != "INFO" || line["msg"] != "query" {
		t.Fatalf("success event level/msg = %v/%v", line["level"], line["msg"])
	}
	for _, k := range []string{"id", "query", "source", "backend", "outcome", "wall", "queue_wait", "rows", "tuples", "fingerprint", "plan_cache"} {
		if _, present := line[k]; !present {
			t.Fatalf("canonical event missing %q: %v", k, line)
		}
	}

	buf.Reset()
	slow := &QueryEvent{ID: 8, Query: "q1", Source: "plan", Backend: "vectorized", Outcome: "ok", Slow: true}
	slow.Emit(logger)
	if !strings.Contains(buf.String(), `"level":"WARN"`) || !strings.Contains(buf.String(), `"slow":true`) {
		t.Fatalf("slow event not warned: %s", buf.String())
	}

	buf.Reset()
	failed := &QueryEvent{ID: 9, Query: "q9", Source: "plan", Backend: "hybrid", Outcome: "shed", Error: "queue full"}
	failed.Emit(logger)
	if !strings.Contains(buf.String(), `"level":"ERROR"`) {
		t.Fatalf("failed event not logged at error: %s", buf.String())
	}
}

// TestTailSamplerChaos drives a randomized mix of outcomes through the
// sampler and proves the acceptance property: 100% of error/shed/degraded
// (and slow) events are kept, while plain successes are kept at roughly the
// configured rate.
func TestTailSamplerChaos(t *testing.T) {
	s := TailSampler{SuccessRate: 0.1}
	rng := rand.New(rand.NewSource(1))
	outcomes := []string{"ok", "shed", "deadline", "internal", "panic", "memory_budget"}

	var tail, tailKept, okTotal, okKept int
	for i := 0; i < 50_000; i++ {
		e := &QueryEvent{ID: uint64(i), Query: "q", Backend: "hybrid"}
		e.Outcome = outcomes[rng.Intn(len(outcomes))]
		if e.Outcome != "ok" {
			e.Error = "boom"
		} else {
			// Successes can still be tail-worthy: slow or degraded.
			e.Slow = rng.Intn(20) == 0
			e.Degraded = rng.Intn(20) == 0
		}
		interesting := e.Interesting()
		kept := s.Keep(e)
		if interesting {
			tail++
			if kept {
				tailKept++
			}
		} else {
			okTotal++
			if kept {
				okKept++
			}
		}
	}
	if tail == 0 || okTotal == 0 {
		t.Fatal("chaos mix degenerate")
	}
	if tailKept != tail {
		t.Fatalf("tail retention %d/%d — sampler dropped interesting events", tailKept, tail)
	}
	rate := float64(okKept) / float64(okTotal)
	if rate < 0.05 || rate > 0.2 {
		t.Fatalf("success sampling rate %.3f far from configured 0.1", rate)
	}
}

func TestTailSamplerDeterministic(t *testing.T) {
	s := TailSampler{SuccessRate: 0.5}
	for id := uint64(0); id < 1000; id++ {
		e := &QueryEvent{ID: id, Outcome: "ok"}
		if s.Keep(e) != s.Keep(e) {
			t.Fatalf("sampling of id %d is not deterministic", id)
		}
	}
}

func TestTailSamplerEdgeRates(t *testing.T) {
	all := TailSampler{SuccessRate: 1}
	none := TailSampler{SuccessRate: 0}
	e := &QueryEvent{ID: 3, Outcome: "ok"}
	if !all.Keep(e) {
		t.Fatal("rate 1 must keep every success")
	}
	if none.Keep(e) {
		t.Fatal("rate 0 must drop plain successes")
	}
	err := &QueryEvent{ID: 3, Outcome: "deadline", Error: "x"}
	if !none.Keep(err) {
		t.Fatal("rate 0 must still keep the tail")
	}
}

package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDecadesLayout(t *testing.T) {
	b := decades(1e-3, 1e0)
	want := []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1}
	if len(b) != len(want) {
		t.Fatalf("bounds %v, want %v", b, want)
	}
	for i := range b {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bound %d = %g, want %g", i, b[i], want[i])
		}
	}
	for i := 1; i < len(LatencyBounds); i++ {
		if LatencyBounds[i] <= LatencyBounds[i-1] {
			t.Fatalf("LatencyBounds not ascending at %d: %v", i, LatencyBounds)
		}
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	for _, v := range []float64{0.5, 1, 1.5, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 113.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// Bucket layout: le=1 gets {0.5, 1}, le=2 gets {1.5}, le=5 gets {3},
	// le=10 gets {7}, +Inf gets {100}.
	for i, want := range []int64{2, 1, 1, 1, 1} {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if q := h.Quantile(0.99); q != 10 {
		t.Fatalf("p99 = %g, want clamp to highest bound 10", q)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 2 {
		t.Fatalf("p50 = %g, want within (0, 2]", q)
	}
	if (Summary{}) == h.Summarize() {
		t.Fatal("summary empty")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(LatencyBounds)
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram must read as zeros")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBounds)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Duration(w*i%1_000_000) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var sum int64
	for i := range h.counts {
		sum += h.counts[i].Load()
	}
	if sum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*per)
	}
}

// TestFamilyConcurrentMerge races writers across family children (including
// racing child creation for the same label) against readers rendering the
// registry; afterwards the merged counts must be exact. Run under -race this
// also proves exposition never reads torn histogram state.
func TestFamilyConcurrentMerge(t *testing.T) {
	r := NewRegistry()
	backends := []string{"vectorized", "compiling", "rof", "hybrid"}
	const workers, per = 8, 2000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if out := r.PrometheusText(); !strings.Contains(out, "# TYPE inkfuse_query_seconds histogram") {
					t.Error("exposition lost its TYPE header mid-write")
					return
				}
				_ = r.SummaryText()
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				b := backends[(w+i)%len(backends)]
				r.QueryLatency.With(b).ObserveDuration(time.Duration(i%1000+1) * time.Microsecond)
				r.MorselLatency.With(b).ObserveDuration(time.Duration(i%100+1) * time.Microsecond)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	var total int64
	for _, b := range backends {
		total += r.QueryLatency.With(b).Count()
	}
	if total != workers*per {
		t.Fatalf("merged query count = %d, want %d", total, workers*per)
	}
	// The final exposition must agree with the merged counts.
	out := r.PrometheusText()
	for _, b := range backends {
		want := `inkfuse_query_seconds_count{backend="` + b + `"} ` + strconv.FormatInt(r.QueryLatency.With(b).Count(), 10)
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFamilyChildrenAndRegistry(t *testing.T) {
	r := NewRegistry()
	r.ObserveQuery("hybrid", 20*time.Millisecond, 1_000_000)
	r.ObserveQuery("hybrid", 40*time.Millisecond, 2_000_000)
	r.ObserveQuery("vectorized", 5*time.Millisecond, 500_000)
	r.MorselLatency.With("hybrid").ObserveDuration(300 * time.Microsecond)

	if got := r.QueryLatency.With("hybrid").Count(); got != 2 {
		t.Fatalf("hybrid query count = %d", got)
	}
	if got := r.QueryRows.With("vectorized").Count(); got != 1 {
		t.Fatalf("vectorized throughput count = %d", got)
	}
	// Zero-wall / zero-tuple queries must not feed a nonsense rate.
	r.ObserveQuery("rof", 10*time.Millisecond, 0)
	if got := r.QueryRows.With("rof").Count(); got != 0 {
		t.Fatalf("zero-tuple query fed the throughput histogram: %d", got)
	}
	if !strings.Contains(r.SummaryText(), `inkfuse_query_seconds{backend="hybrid"} count=2`) {
		t.Fatalf("summary text:\n%s", r.SummaryText())
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.ObserveQuery("hybrid", 3*time.Millisecond, 100_000)
	out := r.PrometheusText()
	for _, want := range []string{
		"# TYPE inkfuse_queries_started counter",
		"# TYPE inkfuse_mem_peak_bytes gauge",
		"# TYPE inkfuse_query_seconds histogram",
		`inkfuse_query_seconds_bucket{backend="hybrid",le="0.005"} 1`,
		`inkfuse_query_seconds_bucket{backend="hybrid",le="+Inf"} 1`,
		`inkfuse_query_seconds_count{backend="hybrid"} 1`,
		`inkfuse_query_rows_per_second_count{backend="hybrid"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: each le count >= the previous.
	r2 := NewRegistry()
	for i := 1; i <= 50; i++ {
		r2.QueryLatency.With("rof").Observe(float64(i) * 1e-4)
	}
	var prev int64 = -1
	for _, line := range strings.Split(r2.PrometheusText(), "\n") {
		if !strings.HasPrefix(line, `inkfuse_query_seconds_bucket{backend="rof"`) {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("buckets not cumulative: %q after %d", line, prev)
		}
		prev = n
	}
	if prev != 50 {
		t.Fatalf("final cumulative bucket = %d, want 50", prev)
	}
}

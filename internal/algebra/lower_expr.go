package algebra

import (
	"fmt"

	"inkfuse/internal/core"
	"inkfuse/internal/rt"
	"inkfuse/internal/types"
)

// lowerExpr lowers a scalar expression into expression suboperators,
// returning the IU holding its value.
func (l *lowerer) lowerExpr(e Expr) (*core.IU, error) {
	switch x := e.(type) {
	case ColRef:
		iu, ok := l.cols[x.Name]
		if !ok {
			return nil, fmt.Errorf("algebra: column %q not bound in pipeline", x.Name)
		}
		return iu, nil

	case Const:
		return nil, fmt.Errorf("algebra: bare constant expression (fold it into its consumer)")

	case Bin:
		lo, err := l.lowerOperand(x.L)
		if err != nil {
			return nil, err
		}
		ro, err := l.lowerOperand(x.R)
		if err != nil {
			return nil, err
		}
		if lo.IU == nil && ro.IU == nil {
			return nil, fmt.Errorf("algebra: arithmetic over two constants")
		}
		if lo.Kind() != ro.Kind() {
			return nil, fmt.Errorf("algebra: arithmetic kind mismatch %v vs %v", lo.Kind(), ro.Kind())
		}
		out := core.NewIU(lo.Kind(), "e_"+x.Op.String())
		l.add(&core.Arith{Op: x.Op, L: lo, R: ro, Out: out})
		return out, nil

	case CmpE:
		lo, err := l.lowerOperand(x.L)
		if err != nil {
			return nil, err
		}
		ro, err := l.lowerOperand(x.R)
		if err != nil {
			return nil, err
		}
		if lo.IU == nil && ro.IU == nil {
			return nil, fmt.Errorf("algebra: comparison over two constants")
		}
		if lo.Kind() != ro.Kind() {
			return nil, fmt.Errorf("algebra: comparison kind mismatch %v vs %v", lo.Kind(), ro.Kind())
		}
		out := core.NewIU(types.Bool, "c_"+x.Op.String())
		l.add(&core.Cmp{Op: x.Op, L: lo, R: ro, Out: out})
		return out, nil

	case LogicE:
		li, err := l.lowerExpr(x.L)
		if err != nil {
			return nil, err
		}
		ri, err := l.lowerExpr(x.R)
		if err != nil {
			return nil, err
		}
		out := core.NewIU(types.Bool, "b_"+x.Op.String())
		l.add(&core.Logic{Op: x.Op, L: li, R: ri, Out: out})
		return out, nil

	case NotE:
		in, err := l.lowerExpr(x.E)
		if err != nil {
			return nil, err
		}
		out := core.NewIU(types.Bool, "b_not")
		l.add(&core.Not{In: in, Out: out})
		return out, nil

	case LikeE:
		in, err := l.lowerExpr(x.E)
		if err != nil {
			return nil, err
		}
		st := &rt.LikeState{M: rt.NewLikeMatcher(x.Pattern)}
		l.params.addLike(x.Ref, st)
		out := core.NewIU(types.Bool, "b_like")
		l.add(&core.Like{In: in, State: st, Negate: x.Negate, Out: out})
		return out, nil

	case InListE:
		in, err := l.lowerExpr(x.E)
		if err != nil {
			return nil, err
		}
		st := rt.NewInList(x.Members...)
		l.params.addInList(x.Ref, st)
		out := core.NewIU(types.Bool, "b_in")
		l.add(&core.InList{In: in, State: st, Out: out})
		return out, nil

	case CaseE:
		cond, err := l.lowerExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		t, err := l.lowerOperand(x.Then)
		if err != nil {
			return nil, err
		}
		e2, err := l.lowerOperand(x.Else)
		if err != nil {
			return nil, err
		}
		if t.Kind() != e2.Kind() {
			return nil, fmt.Errorf("algebra: CASE arm kinds %v vs %v", t.Kind(), e2.Kind())
		}
		out := core.NewIU(t.Kind(), "e_case")
		l.add(&core.Case{Cond: cond, Then: t, Else: e2, Out: out})
		return out, nil

	case CastE:
		in, err := l.lowerExpr(x.E)
		if err != nil {
			return nil, err
		}
		out := core.NewIU(x.To, "e_cast")
		l.add(&core.Cast{In: in, Out: out})
		return out, nil

	default:
		return nil, fmt.Errorf("algebra: cannot lower expression %T", e)
	}
}

// lowerOperand lowers an expression to an operand, keeping literals as
// runtime constants (paper §IV-C).
func (l *lowerer) lowerOperand(e Expr) (core.Operand, error) {
	if c, ok := e.(Const); ok {
		return core.ConstOf(l.constState(c)), nil
	}
	iu, err := l.lowerExpr(e)
	if err != nil {
		return core.Operand{}, err
	}
	return core.Col(iu), nil
}

func (l *lowerer) constState(c Const) *rt.ConstState {
	st := &rt.ConstState{Kind: c.K, B: c.B, I32: c.I32, I64: c.I64, F64: c.F64, Str: c.Str}
	l.params.addConst(c.Ref, st)
	return st
}

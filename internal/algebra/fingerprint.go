package algebra

import (
	"fmt"
	"math"

	"inkfuse/internal/core"
)

// Fingerprint digests a relational tree into the canonical, parameter-
// invariant cache key: Ref-tagged literals (Const.Ref, LikeE.Ref,
// InListE.Ref) hash as typed placeholders with their values masked out, so
// the same query shape with different parameter bindings maps to the same
// fingerprint — the plancache contract. Untagged literals hash by value:
// they are baked into the plan, and two plans differing in them must not
// share artifacts.
func Fingerprint(root Node) (core.Fingerprint, error) {
	h := core.NewHasher()
	if err := hashNode(h, root); err != nil {
		return core.Fingerprint{}, err
	}
	return h.Sum(), nil
}

func hashNode(h *core.Hasher, n Node) error {
	switch x := n.(type) {
	case *Scan:
		h.Str("scan")
		h.Str(x.Table.Name)
		for _, c := range x.Cols {
			h.Str(c)
		}
	case *Filter:
		h.Str("filter")
		if err := hashExpr(h, x.Pred); err != nil {
			return err
		}
		return hashNode(h, x.In)
	case *Map:
		h.Str("map")
		for _, ne := range x.Exprs {
			h.Str(ne.As)
			if err := hashExpr(h, ne.E); err != nil {
				return err
			}
		}
		return hashNode(h, x.In)
	case *Project:
		h.Str("project")
		for _, c := range x.Cols {
			h.Str(c)
		}
		return hashNode(h, x.In)
	case *GroupBy:
		h.Str("group")
		for _, k := range x.Keys {
			h.Str(k)
		}
		for _, a := range x.Aggs {
			h.Int(int(a.Fn))
			h.Str(a.Col)
			h.Str(a.As)
		}
		for _, k := range x.NoCase {
			h.Str(k)
		}
		return hashNode(h, x.In)
	case *HashJoin:
		h.Str("join")
		h.Int(int(x.Mode))
		for _, k := range x.BuildKeys {
			h.Str(k)
		}
		for _, k := range x.ProbeKeys {
			h.Str(k)
		}
		for _, c := range x.BuildCols {
			h.Str(c)
		}
		h.Str(x.MatchedAs)
		if err := hashNode(h, x.Build); err != nil {
			return err
		}
		return hashNode(h, x.Probe)
	case *OrderBy:
		h.Str("order")
		for i, k := range x.Keys {
			h.Str(k)
			h.Bool(i < len(x.Desc) && x.Desc[i])
		}
		h.Int(x.Limit)
		return hashNode(h, x.In)
	default:
		return fmt.Errorf("algebra: cannot fingerprint node %T", n)
	}
	return nil
}

func hashExpr(h *core.Hasher, e Expr) error {
	switch x := e.(type) {
	case ColRef:
		h.Str("col")
		h.Str(x.Name)
	case Const:
		h.Int(int(x.K))
		if x.Ref > 0 {
			// Typed placeholder: the value is a parameter, not part of the
			// shape. The ref itself is positional and deterministic per shape.
			h.Str("param")
			h.Int(x.Ref)
			return nil
		}
		h.Str("const")
		h.Bool(x.B)
		h.Int(int(x.I32))
		h.Int(int(x.I64))
		h.Int(int(uint32(math.Float64bits(x.F64) >> 32)))
		h.Int(int(uint32(math.Float64bits(x.F64))))
		h.Str(x.Str)
	case Bin:
		h.Str("bin")
		h.Int(int(x.Op))
		if err := hashExpr(h, x.L); err != nil {
			return err
		}
		return hashExpr(h, x.R)
	case CmpE:
		h.Str("cmp")
		h.Int(int(x.Op))
		if err := hashExpr(h, x.L); err != nil {
			return err
		}
		return hashExpr(h, x.R)
	case LogicE:
		h.Str("logic")
		h.Int(int(x.Op))
		if err := hashExpr(h, x.L); err != nil {
			return err
		}
		return hashExpr(h, x.R)
	case NotE:
		h.Str("not")
		return hashExpr(h, x.E)
	case LikeE:
		h.Str("like")
		h.Bool(x.Negate)
		if x.Ref > 0 {
			h.Str("param")
			h.Int(x.Ref)
		} else {
			h.Str(x.Pattern)
		}
		return hashExpr(h, x.E)
	case InListE:
		h.Str("in")
		if x.Ref > 0 {
			h.Str("param")
			h.Int(x.Ref)
		} else {
			h.Int(len(x.Members))
			for _, m := range x.Members {
				h.Str(m)
			}
		}
		return hashExpr(h, x.E)
	case CaseE:
		h.Str("case")
		if err := hashExpr(h, x.Cond); err != nil {
			return err
		}
		if err := hashExpr(h, x.Then); err != nil {
			return err
		}
		return hashExpr(h, x.Else)
	case CastE:
		h.Str("cast")
		h.Int(int(x.To))
		return hashExpr(h, x.E)
	default:
		return fmt.Errorf("algebra: cannot fingerprint expression %T", e)
	}
	return nil
}

// Package algebra provides the relational-algebra plan layer: typed
// expressions, relational operators, and their lowering into suboperator
// DAGs (paper Fig 7, step 3). Physical plans are built by hand against this
// API or bound from SQL text by internal/sql.
package algebra

import (
	"fmt"

	"inkfuse/internal/ir"
	"inkfuse/internal/types"
)

// Expr is a scalar expression over named columns. The same tree is consumed
// by the suboperator lowering and by the Volcano reference engine, which
// evaluates it row-at-a-time.
type Expr interface {
	// Kind type-checks the expression against a schema.
	Kind(s types.Schema) (types.Kind, error)
	// Columns appends the referenced column names to dst.
	Columns(dst []string) []string
}

// ColRef references a column by name.
type ColRef struct{ Name string }

// Col is shorthand for ColRef.
func Col(name string) ColRef { return ColRef{Name: name} }

// Kind implements Expr.
func (c ColRef) Kind(s types.Schema) (types.Kind, error) {
	i := s.IndexOf(c.Name)
	if i < 0 {
		return types.Invalid, fmt.Errorf("algebra: unknown column %q", c.Name)
	}
	return s[i].Kind, nil
}

// Columns implements Expr.
func (c ColRef) Columns(dst []string) []string { return append(dst, c.Name) }

// Const is a literal constant. A non-zero Ref marks it as a bound parameter:
// LowerWithParams records the runtime ConstState it lowers into under that
// ref, and Fingerprint hashes only its kind, so plans that differ solely in
// Ref'd literal values share a fingerprint and can share cached artifacts.
type Const struct {
	K   types.Kind
	B   bool
	I32 int32
	I64 int64
	F64 float64
	Str string
	Ref int
}

// Kind implements Expr.
func (c Const) Kind(types.Schema) (types.Kind, error) { return c.K, nil }

// Columns implements Expr.
func (c Const) Columns(dst []string) []string { return dst }

// I64 builds an int64 literal.
func I64(v int64) Const { return Const{K: types.Int64, I64: v} }

// I32 builds an int32 literal.
func I32(v int32) Const { return Const{K: types.Int32, I32: v} }

// F64 builds a float64 literal.
func F64(v float64) Const { return Const{K: types.Float64, F64: v} }

// Str builds a string literal.
func Str(v string) Const { return Const{K: types.String, Str: v} }

// DateLit builds a date literal from YYYY-MM-DD.
func DateLit(s string) Const { return Const{K: types.Date, I32: types.MustParseDate(s)} }

// Bin is binary arithmetic.
type Bin struct {
	Op   ir.BinOp
	L, R Expr
}

// Add/Sub/Mul/Div are Bin constructors.
func Add(l, r Expr) Bin { return Bin{Op: ir.Add, L: l, R: r} }
func Sub(l, r Expr) Bin { return Bin{Op: ir.Sub, L: l, R: r} }
func Mul(l, r Expr) Bin { return Bin{Op: ir.Mul, L: l, R: r} }
func Div(l, r Expr) Bin { return Bin{Op: ir.Div, L: l, R: r} }

// Kind implements Expr.
func (b Bin) Kind(s types.Schema) (types.Kind, error) {
	lk, err := b.L.Kind(s)
	if err != nil {
		return types.Invalid, err
	}
	rk, err := b.R.Kind(s)
	if err != nil {
		return types.Invalid, err
	}
	if lk != rk {
		return types.Invalid, fmt.Errorf("algebra: arithmetic kind mismatch %v vs %v", lk, rk)
	}
	if !lk.Numeric() {
		return types.Invalid, fmt.Errorf("algebra: arithmetic on %v", lk)
	}
	return lk, nil
}

// Columns implements Expr.
func (b Bin) Columns(dst []string) []string { return b.R.Columns(b.L.Columns(dst)) }

// CmpE is a comparison.
type CmpE struct {
	Op   ir.CmpOp
	L, R Expr
}

// Comparison constructors.
func Lt(l, r Expr) CmpE { return CmpE{Op: ir.Lt, L: l, R: r} }
func Le(l, r Expr) CmpE { return CmpE{Op: ir.Le, L: l, R: r} }
func Eq(l, r Expr) CmpE { return CmpE{Op: ir.Eq, L: l, R: r} }
func Ne(l, r Expr) CmpE { return CmpE{Op: ir.Ne, L: l, R: r} }
func Ge(l, r Expr) CmpE { return CmpE{Op: ir.Ge, L: l, R: r} }
func Gt(l, r Expr) CmpE { return CmpE{Op: ir.Gt, L: l, R: r} }

// Between is sugar for l <= e AND e <= r.
func Between(e Expr, lo, hi Expr) Expr { return And(Ge(e, lo), Le(e, hi)) }

// Kind implements Expr.
func (c CmpE) Kind(s types.Schema) (types.Kind, error) {
	lk, err := c.L.Kind(s)
	if err != nil {
		return types.Invalid, err
	}
	rk, err := c.R.Kind(s)
	if err != nil {
		return types.Invalid, err
	}
	if lk != rk {
		return types.Invalid, fmt.Errorf("algebra: comparison kind mismatch %v vs %v", lk, rk)
	}
	if !lk.Comparable() {
		return types.Invalid, fmt.Errorf("algebra: comparison on %v", lk)
	}
	return types.Bool, nil
}

// Columns implements Expr.
func (c CmpE) Columns(dst []string) []string { return c.R.Columns(c.L.Columns(dst)) }

// LogicE is AND/OR.
type LogicE struct {
	Op   ir.LogicOp
	L, R Expr
}

// And builds a conjunction over all arguments.
func And(es ...Expr) Expr { return fold(ir.And, es) }

// Or builds a disjunction over all arguments.
func Or(es ...Expr) Expr { return fold(ir.Or, es) }

func fold(op ir.LogicOp, es []Expr) Expr {
	if len(es) == 0 {
		panic("algebra: empty logic expression")
	}
	e := es[0]
	for _, r := range es[1:] {
		e = LogicE{Op: op, L: e, R: r}
	}
	return e
}

// Kind implements Expr.
func (l LogicE) Kind(s types.Schema) (types.Kind, error) {
	for _, e := range []Expr{l.L, l.R} {
		k, err := e.Kind(s)
		if err != nil {
			return types.Invalid, err
		}
		if k != types.Bool {
			return types.Invalid, fmt.Errorf("algebra: logic over %v", k)
		}
	}
	return types.Bool, nil
}

// Columns implements Expr.
func (l LogicE) Columns(dst []string) []string { return l.R.Columns(l.L.Columns(dst)) }

// NotE is boolean negation.
type NotE struct{ E Expr }

// Not negates.
func Not(e Expr) NotE { return NotE{E: e} }

// Kind implements Expr.
func (n NotE) Kind(s types.Schema) (types.Kind, error) {
	k, err := n.E.Kind(s)
	if err != nil {
		return types.Invalid, err
	}
	if k != types.Bool {
		return types.Invalid, fmt.Errorf("algebra: NOT over %v", k)
	}
	return types.Bool, nil
}

// Columns implements Expr.
func (n NotE) Columns(dst []string) []string { return n.E.Columns(dst) }

// LikeE is LIKE / NOT LIKE with a constant pattern. A non-zero Ref marks the
// pattern as a bound parameter (see Const.Ref).
type LikeE struct {
	E       Expr
	Pattern string
	Negate  bool
	Ref     int
}

// Like and NotLike build pattern predicates.
func Like(e Expr, pattern string) LikeE    { return LikeE{E: e, Pattern: pattern} }
func NotLike(e Expr, pattern string) LikeE { return LikeE{E: e, Pattern: pattern, Negate: true} }

// Kind implements Expr.
func (l LikeE) Kind(s types.Schema) (types.Kind, error) {
	k, err := l.E.Kind(s)
	if err != nil {
		return types.Invalid, err
	}
	if k != types.String {
		return types.Invalid, fmt.Errorf("algebra: LIKE over %v", k)
	}
	return types.Bool, nil
}

// Columns implements Expr.
func (l LikeE) Columns(dst []string) []string { return l.E.Columns(dst) }

// InListE is string set membership. A non-zero Ref marks the member list as a
// bound parameter (see Const.Ref).
type InListE struct {
	E       Expr
	Members []string
	Ref     int
}

// In builds an IN (...) predicate.
func In(e Expr, members ...string) InListE { return InListE{E: e, Members: members} }

// Kind implements Expr.
func (l InListE) Kind(s types.Schema) (types.Kind, error) {
	k, err := l.E.Kind(s)
	if err != nil {
		return types.Invalid, err
	}
	if k != types.String {
		return types.Invalid, fmt.Errorf("algebra: IN over %v", k)
	}
	return types.Bool, nil
}

// Columns implements Expr.
func (l InListE) Columns(dst []string) []string { return l.E.Columns(dst) }

// CaseE is CASE WHEN cond THEN a ELSE b END.
type CaseE struct {
	Cond, Then, Else Expr
}

// Case builds a two-armed case expression.
func Case(cond, then, els Expr) CaseE { return CaseE{Cond: cond, Then: then, Else: els} }

// Kind implements Expr.
func (c CaseE) Kind(s types.Schema) (types.Kind, error) {
	ck, err := c.Cond.Kind(s)
	if err != nil {
		return types.Invalid, err
	}
	if ck != types.Bool {
		return types.Invalid, fmt.Errorf("algebra: CASE condition is %v", ck)
	}
	tk, err := c.Then.Kind(s)
	if err != nil {
		return types.Invalid, err
	}
	ek, err := c.Else.Kind(s)
	if err != nil {
		return types.Invalid, err
	}
	if tk != ek {
		return types.Invalid, fmt.Errorf("algebra: CASE arm kinds %v vs %v", tk, ek)
	}
	return tk, nil
}

// Columns implements Expr.
func (c CaseE) Columns(dst []string) []string {
	return c.Else.Columns(c.Then.Columns(c.Cond.Columns(dst)))
}

// CastE converts numeric kinds.
type CastE struct {
	To types.Kind
	E  Expr
}

// Cast builds a conversion.
func Cast(to types.Kind, e Expr) CastE { return CastE{To: to, E: e} }

// Kind implements Expr.
func (c CastE) Kind(s types.Schema) (types.Kind, error) {
	if _, err := c.E.Kind(s); err != nil {
		return types.Invalid, err
	}
	return c.To, nil
}

// Columns implements Expr.
func (c CastE) Columns(dst []string) []string { return c.E.Columns(dst) }

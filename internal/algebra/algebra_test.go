package algebra

import (
	"testing"

	"inkfuse/internal/core"
	"inkfuse/internal/ir"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

func testTable() *storage.Table {
	t := storage.NewTable("t", types.Schema{
		{Name: "a", Kind: types.Int64},
		{Name: "b", Kind: types.Float64},
		{Name: "s", Kind: types.String},
		{Name: "d", Kind: types.Date},
	})
	t.AppendRow(int64(1), 2.0, "x", types.MkDate(1995, 1, 1))
	return t
}

func TestScanSchema(t *testing.T) {
	tbl := testTable()
	s, err := NewScan(tbl, "b", "a").Schema()
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[0].Name != "b" || s[1].Kind != types.Int64 {
		t.Fatalf("schema: %+v", s)
	}
	if _, err := NewScan(tbl, "missing").Schema(); err == nil {
		t.Fatal("expected missing-column error")
	}
	full, _ := NewScan(tbl).Schema()
	if len(full) != 4 {
		t.Fatal("empty column list should mean all columns")
	}
}

func TestFilterSchemaValidation(t *testing.T) {
	tbl := testTable()
	if _, err := NewFilter(NewScan(tbl, "a"), Col("a")).Schema(); err == nil {
		t.Fatal("non-bool predicate must fail")
	}
	if _, err := NewFilter(NewScan(tbl, "a"), Gt(Col("a"), I64(0))).Schema(); err != nil {
		t.Fatal(err)
	}
	// Kind mismatch inside the predicate.
	if _, err := NewFilter(NewScan(tbl, "a", "b"), Gt(Col("a"), Col("b"))).Schema(); err == nil {
		t.Fatal("cross-kind comparison must fail")
	}
}

func TestMapSchemaChained(t *testing.T) {
	tbl := testTable()
	m := NewMap(NewScan(tbl, "b"),
		NamedExpr{As: "c", E: Mul(Col("b"), F64(2))},
		NamedExpr{As: "e", E: Add(Col("c"), Col("b"))}, // references earlier expr
	)
	s, err := m.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if s.IndexOf("e") < 0 {
		t.Fatal("chained map column missing")
	}
}

func TestGroupBySchemaAndValidation(t *testing.T) {
	tbl := testTable()
	g := NewGroupBy(NewScan(tbl, "s", "b"), []string{"s"},
		Sum("b", "total"), Count("n"), Avg("b", "avg"))
	s, err := g.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 4 || s[1].Kind != types.Float64 || s[2].Kind != types.Int64 {
		t.Fatalf("schema: %+v", s)
	}
	if _, err := NewGroupBy(NewScan(tbl, "s"), nil, Sum("s", "x")).Schema(); err == nil {
		t.Fatal("SUM over string must fail")
	}
	if _, err := NewGroupBy(NewScan(tbl, "b"), nil, Avg("b", "x")).Schema(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinSchemaValidation(t *testing.T) {
	tbl := testTable()
	dim := storage.NewTable("dim", types.Schema{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.String},
	})
	ok := &HashJoin{
		Build: NewScan(dim, "k", "v"), Probe: NewScan(tbl, "a", "b"),
		BuildKeys: []string{"k"}, ProbeKeys: []string{"a"},
		BuildCols: []string{"v"}, Mode: ir.InnerJoin,
	}
	s, err := ok.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if s.IndexOf("v") < 0 || s.IndexOf("b") < 0 {
		t.Fatalf("join schema: %+v", s)
	}
	bad := &HashJoin{
		Build: NewScan(dim, "k"), Probe: NewScan(tbl, "b"),
		BuildKeys: []string{"k"}, ProbeKeys: []string{"b"}, // i64 vs f64
		Mode: ir.InnerJoin,
	}
	if _, err := bad.Schema(); err == nil {
		t.Fatal("key kind mismatch must fail")
	}
	semiWithCols := &HashJoin{
		Build: NewScan(dim, "k", "v"), Probe: NewScan(tbl, "a"),
		BuildKeys: []string{"k"}, ProbeKeys: []string{"a"},
		BuildCols: []string{"v"}, Mode: ir.SemiJoin,
	}
	s2, err := semiWithCols.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if s2.IndexOf("v") >= 0 {
		t.Fatal("semi join must not expose build columns")
	}
}

func TestLowerPrunesUnusedColumns(t *testing.T) {
	tbl := testTable()
	// Only "a" is required; the scan must not read b/s/d.
	node := NewProject(NewScan(tbl, "a", "b", "s", "d"), "a")
	plan, err := Lower(node, "prune")
	if err != nil {
		t.Fatal(err)
	}
	scan := plan.Pipelines[0].Source.(*core.TableScan)
	if len(scan.Cols) != 1 {
		t.Fatalf("scan reads %d columns, want 1", len(scan.Cols))
	}
}

func TestLowerMapDropsUnusedExprs(t *testing.T) {
	tbl := testTable()
	node := NewProject(NewMap(NewScan(tbl, "a", "b"),
		NamedExpr{As: "used", E: Mul(Col("b"), F64(2))},
		NamedExpr{As: "unused", E: Add(Col("a"), I64(1))},
	), "used")
	plan, err := Lower(node, "dropexpr")
	if err != nil {
		t.Fatal(err)
	}
	// The unused expression must not appear: no i64 arithmetic suboperator.
	for _, op := range plan.Pipelines[0].Ops {
		if a, ok := op.(*core.Arith); ok && a.Out.K == types.Int64 {
			t.Fatal("unused map expression was lowered")
		}
	}
	// And its input column must not be scanned.
	scan := plan.Pipelines[0].Source.(*core.TableScan)
	if len(scan.Cols) != 1 {
		t.Fatalf("scan reads %d columns, want 1 (b only)", len(scan.Cols))
	}
}

func TestLowerFilterEmitsCopyPerColumn(t *testing.T) {
	tbl := testTable()
	node := NewProject(NewFilter(NewScan(tbl, "a", "b", "s"),
		Gt(Col("a"), I64(0))), "a", "b", "s")
	plan, err := Lower(node, "fcopy")
	if err != nil {
		t.Fatal(err)
	}
	scopes, copies := 0, 0
	for _, op := range plan.Pipelines[0].Ops {
		switch op.(type) {
		case *core.FilterScope:
			scopes++
		case *core.FilterCopy:
			copies++
		}
	}
	// n+1 suboperators for an n-column filter (paper Fig 4).
	if scopes != 1 || copies != 3 {
		t.Fatalf("scopes=%d copies=%d, want 1 and 3", scopes, copies)
	}
}

func TestLowerGroupByPipelineSplit(t *testing.T) {
	tbl := testTable()
	node := NewGroupBy(NewScan(tbl, "s", "b"), []string{"s"}, Sum("b", "x"))
	plan, err := Lower(node, "split")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pipelines) != 2 {
		t.Fatalf("pipelines = %d, want 2 (build + read)", len(plan.Pipelines))
	}
	if plan.Pipelines[0].Result != nil {
		t.Fatal("aggregation build pipeline must be a pure sink")
	}
	if len(plan.Pipelines[0].MergeAggs) != 1 {
		t.Fatal("missing aggregation finalizer")
	}
	if _, ok := plan.Pipelines[1].Source.(*core.AggRead); !ok {
		t.Fatal("read pipeline must scan the aggregate table")
	}
}

func TestLowerJoinPipelineOrder(t *testing.T) {
	tbl := testTable()
	dim := storage.NewTable("dim", types.Schema{{Name: "k", Kind: types.Int64}})
	dim.AppendRow(int64(1))
	join := &HashJoin{
		Build: NewScan(dim, "k"), Probe: NewScan(tbl, "a", "b"),
		BuildKeys: []string{"k"}, ProbeKeys: []string{"a"}, Mode: ir.InnerJoin,
	}
	plan, err := Lower(NewProject(join, "b"), "joinorder")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pipelines) != 2 {
		t.Fatalf("pipelines = %d", len(plan.Pipelines))
	}
	if len(plan.Pipelines[0].SealJoins) != 1 {
		t.Fatal("build pipeline must seal its join table")
	}
	if plan.Pipelines[1].Result == nil {
		t.Fatal("probe pipeline must produce the result")
	}
}

func TestLowerOrderByMapping(t *testing.T) {
	tbl := testTable()
	g := NewGroupBy(NewScan(tbl, "s", "b"), []string{"s"}, Sum("b", "x"))
	plan, err := Lower(NewOrderBy(g, []string{"x"}, []bool{true}, 5), "ob")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Sort == nil || plan.Sort.Limit != 5 || plan.Sort.Keys[0] != 1 || !plan.Sort.Desc[0] {
		t.Fatalf("sort spec: %+v", plan.Sort)
	}
	if _, err := Lower(NewOrderBy(g, []string{"nope"}, nil, 0), "bad"); err == nil {
		t.Fatal("unknown order key must fail")
	}
}

func TestLowerErrors(t *testing.T) {
	tbl := testTable()
	// Bare constant expression.
	bad := NewMap(NewScan(tbl, "a"), NamedExpr{As: "c", E: I64(1)})
	if _, err := Lower(NewProject(bad, "c"), "bare"); err == nil {
		t.Fatal("bare constant should fail to lower")
	}
	// Nested OrderBy.
	nested := NewFilter(NewOrderBy(NewScan(tbl, "a"), []string{"a"}, nil, 0), Gt(Col("a"), I64(0)))
	if _, err := Lower(nested, "nested"); err == nil {
		t.Fatal("nested ORDER BY should fail")
	}
}

func TestExprColumnsCollection(t *testing.T) {
	e := And(
		Gt(Col("a"), I64(1)),
		Like(Col("s"), "x%"),
		Case(Lt(Col("d"), DateLit("1996-01-01")), Col("b"), F64(0)),
	)
	cols := map[string]bool{}
	for _, c := range e.Columns(nil) {
		cols[c] = true
	}
	for _, want := range []string{"a", "s", "d", "b"} {
		if !cols[want] {
			t.Errorf("missing column %q", want)
		}
	}
}

func TestBetweenSugar(t *testing.T) {
	s := types.Schema{{Name: "x", Kind: types.Float64}}
	e := Between(Col("x"), F64(1), F64(2))
	k, err := e.Kind(s)
	if err != nil || k != types.Bool {
		t.Fatalf("between kind: %v %v", k, err)
	}
}

package algebra

import (
	"fmt"

	"inkfuse/internal/core"
	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/types"
)

func (l *lowerer) lowerJoin(n *HashJoin, required []string) error {
	buildSchema, err := n.Build.Schema()
	if err != nil {
		return err
	}
	probeSchema, err := n.Probe.Schema()
	if err != nil {
		return err
	}
	reqSet := toSet(required)
	probeKeySet := toSet(n.ProbeKeys)
	buildKeySet := toSet(n.BuildKeys)

	// Build-side columns carried through the hash table.
	var carry []string
	for _, c := range n.BuildCols {
		if reqSet[c] {
			carry = append(carry, c)
		}
	}

	// --- Build pipeline: pack key + payload, insert (paper §IV-E).
	lb := &lowerer{plan: l.plan, params: l.params, opts: l.opts}
	breq := dedupe(append(append([]string{}, n.BuildKeys...), carry...))
	if err := lb.lower(n.Build, breq); err != nil {
		return err
	}
	bFields := make([]rt.Field, 0, len(n.BuildKeys)+len(carry))
	for _, k := range n.BuildKeys {
		i := buildSchema.IndexOf(k)
		bFields = append(bFields, rt.Field{Kind: buildSchema[i].Kind, Key: true})
	}
	for _, c := range carry {
		i := buildSchema.IndexOf(c)
		bFields = append(bFields, rt.Field{Kind: buildSchema[i].Kind})
	}
	bLayout := rt.NewLayout(bFields)
	bRL := &rt.RowLayoutState{KeyFixed: bLayout.KeyFixedWidth, PayloadFixed: bLayout.PayloadFixedWidth}
	jt := &rt.JoinTableState{Table: rt.NewJoinTable(16)}
	ex := lb.exchange()
	if ex != nil {
		jt = &rt.JoinTableState{Partitions: ex.Partitions, Parted: rt.NewPartitionedJoinTable(ex.Partitions)}
	}

	anchor, err := lb.anyBound(n.BuildKeys)
	if err != nil {
		return err
	}
	row := core.NewIU(types.Ptr, "build_row")
	lb.add(&core.MakeRow{Anchor: anchor, Layout: bRL, Out: row})
	keyLayoutView := &rt.Layout{ // key-field view for packKey
		FixedOff:      bLayout.FixedOff[:len(n.BuildKeys)],
		VarIdx:        bLayout.VarIdx[:len(n.BuildKeys)],
		KeyFixedWidth: bLayout.KeyFixedWidth,
	}
	row, err = lb.packKey(row, bRL, keyLayoutView, n.BuildKeys)
	if err != nil {
		return err
	}
	row, err = lb.packPayload(row, bRL, bLayout, len(n.BuildKeys), carry)
	if err != nil {
		return err
	}
	if ex == nil {
		lb.add(&core.JoinInsert{Row: row, State: jt})
		lb.pipe.SealJoins = append(lb.pipe.SealJoins, jt)
		l.plan.Pipelines = append(l.plan.Pipelines, lb.pipe)
	} else {
		// Exchanged build (DESIGN.md §15): the build row is hash-routed into
		// per-partition buffers, and a second pipeline inserts each partition
		// into its private single-writer table part — no shard locks, no
		// cross-worker contention.
		lb.add(&core.Partition{Row: row, State: ex})
		lb.pipe.SealExchanges = append(lb.pipe.SealExchanges, ex)
		l.plan.Pipelines = append(l.plan.Pipelines, lb.pipe)
		bRow := core.NewIU(types.Ptr, "exj_row")
		lb.newPipe(&core.ExchangeRead{State: ex, Out: bRow})
		lb.add(&core.JoinInsert{Row: bRow, State: jt})
		lb.pipe.SealJoins = append(lb.pipe.SealJoins, jt)
		l.plan.Pipelines = append(l.plan.Pipelines, lb.pipe)
	}

	// --- Probe side: continues the current pipeline.
	var probeCarry []string
	for _, c := range required {
		if probeSchema.IndexOf(c) >= 0 && !probeKeySet[c] {
			probeCarry = append(probeCarry, c)
		}
	}
	preq := dedupe(append(append([]string{}, n.ProbeKeys...), probeCarry...))
	if err := l.lower(n.Probe, preq); err != nil {
		return err
	}
	pFields := make([]rt.Field, 0, len(n.ProbeKeys)+len(probeCarry))
	for _, k := range n.ProbeKeys {
		i := probeSchema.IndexOf(k)
		pFields = append(pFields, rt.Field{Kind: probeSchema[i].Kind, Key: true})
	}
	for _, c := range probeCarry {
		i := probeSchema.IndexOf(c)
		pFields = append(pFields, rt.Field{Kind: probeSchema[i].Kind})
	}
	pLayout := rt.NewLayout(pFields)
	pRL := &rt.RowLayoutState{KeyFixed: pLayout.KeyFixedWidth, PayloadFixed: pLayout.PayloadFixedWidth}

	panchor, err := l.anyBound(n.ProbeKeys)
	if err != nil {
		return err
	}
	prow := core.NewIU(types.Ptr, "probe_row")
	l.add(&core.MakeRow{Anchor: panchor, Layout: pRL, Out: prow})
	pKeyView := &rt.Layout{
		FixedOff:      pLayout.FixedOff[:len(n.ProbeKeys)],
		VarIdx:        pLayout.VarIdx[:len(n.ProbeKeys)],
		KeyFixedWidth: pLayout.KeyFixedWidth,
	}
	prow, err = l.packKey(prow, pRL, pKeyView, n.ProbeKeys)
	if err != nil {
		return err
	}
	prow, err = l.packPayload(prow, pRL, pLayout, len(n.ProbeKeys), probeCarry)
	if err != nil {
		return err
	}

	probe := &core.JoinProbe{
		Row:        prow,
		State:      jt,
		Mode:       n.Mode,
		BuildOut:   core.NewIU(types.Ptr, "jbuild"),
		ProbeOut:   core.NewIU(types.Ptr, "jprobe"),
		MatchedOut: core.NewIU(types.Bool, "jmatched"),
	}
	l.add(probe)

	// --- Unpack the required columns from the two packed rows.
	newCols := make(map[string]*core.IU)
	for _, c := range dedupe(required) {
		switch {
		case n.Mode == ir.LeftOuterJoin && c == n.MatchedAs:
			newCols[c] = probe.MatchedOut
		case probeSchema.IndexOf(c) >= 0:
			iu, err := l.unpackJoinCol(probe.ProbeOut, probeSchema, pLayout, n.ProbeKeys, probeCarry, c)
			if err != nil {
				return err
			}
			newCols[c] = iu
		case buildSchema.IndexOf(c) >= 0 && (n.Mode == ir.InnerJoin || n.Mode == ir.LeftOuterJoin):
			if !buildKeySet[c] && !contains(carry, c) {
				return fmt.Errorf("algebra: build column %q not carried through join", c)
			}
			iu, err := l.unpackJoinCol(probe.BuildOut, buildSchema, bLayout, n.BuildKeys, carry, c)
			if err != nil {
				return err
			}
			newCols[c] = iu
		default:
			return fmt.Errorf("algebra: join cannot provide column %q", c)
		}
	}
	l.cols = newCols
	return nil
}

// packPayload emits payload packing for the carried columns; fields[keyCount:]
// describe them in layout.
func (l *lowerer) packPayload(row *core.IU, rl *rt.RowLayoutState, layout *rt.Layout, keyCount int, carry []string) (*core.IU, error) {
	for j, c := range carry {
		fi := keyCount + j
		if layout.FixedOff[fi] < 0 {
			continue
		}
		val, ok := l.cols[c]
		if !ok {
			return nil, fmt.Errorf("algebra: payload column %q not bound", c)
		}
		out := core.NewIU(types.Ptr, row.Name)
		l.add(&core.PackFixed{Row: row, Val: val, Region: ir.PayloadRegion,
			Off: &rt.OffsetState{Off: layout.FixedOff[fi], Layout: rl}, Out: out})
		row = out
	}
	for j, c := range carry {
		fi := keyCount + j
		if layout.VarIdx[fi] < 0 {
			continue
		}
		val, ok := l.cols[c]
		if !ok {
			return nil, fmt.Errorf("algebra: payload column %q not bound", c)
		}
		out := core.NewIU(types.Ptr, row.Name)
		l.add(&core.PackStr{Row: row, Val: val, Region: ir.PayloadRegion,
			Off: &rt.OffsetState{Layout: rl}, Out: out})
		row = out
	}
	return row, nil
}

// unpackJoinCol recovers one column from a packed row after a probe.
func (l *lowerer) unpackJoinCol(row *core.IU, schema types.Schema, layout *rt.Layout,
	keys, carry []string, name string) (*core.IU, error) {
	k := schema[schema.IndexOf(name)].Kind
	for i, kn := range keys {
		if kn == name {
			return l.unpackField(row, ir.KeyRegion, k, layout.FixedOff[i],
				layout.KeyFixedWidth, layout.VarIdx[i], name)
		}
	}
	for j, cn := range carry {
		if cn == name {
			fi := len(keys) + j
			return l.unpackField(row, ir.PayloadRegion, k, layout.FixedOff[fi],
				layout.PayloadFixedWidth, layout.VarIdx[fi], name)
		}
	}
	return nil, fmt.Errorf("algebra: column %q not packed in join row", name)
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

package algebra

import (
	"fmt"

	"inkfuse/internal/ir"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// Node is a relational operator in a physical plan.
type Node interface {
	// Schema returns the operator's output columns.
	Schema() (types.Schema, error)
}

// Scan reads columns of a base table.
type Scan struct {
	Table *storage.Table
	Cols  []string // subset of the table schema; empty = all columns
}

// NewScan builds a scan over the listed columns.
func NewScan(t *storage.Table, cols ...string) *Scan { return &Scan{Table: t, Cols: cols} }

// Schema implements Node.
func (s *Scan) Schema() (types.Schema, error) {
	if len(s.Cols) == 0 {
		return s.Table.Schema, nil
	}
	out := make(types.Schema, 0, len(s.Cols))
	for _, c := range s.Cols {
		i := s.Table.Schema.IndexOf(c)
		if i < 0 {
			return nil, fmt.Errorf("algebra: table %s has no column %q", s.Table.Name, c)
		}
		out = append(out, s.Table.Schema[i])
	}
	return out, nil
}

// Filter keeps rows satisfying Pred.
type Filter struct {
	In   Node
	Pred Expr
}

// NewFilter builds a filter.
func NewFilter(in Node, pred Expr) *Filter { return &Filter{In: in, Pred: pred} }

// Schema implements Node.
func (f *Filter) Schema() (types.Schema, error) {
	s, err := f.In.Schema()
	if err != nil {
		return nil, err
	}
	if k, err := f.Pred.Kind(s); err != nil {
		return nil, err
	} else if k != types.Bool {
		return nil, fmt.Errorf("algebra: filter predicate is %v", k)
	}
	return s, nil
}

// NamedExpr is a computed column.
type NamedExpr struct {
	As string
	E  Expr
}

// Map extends the input with computed columns (existing columns pass
// through).
type Map struct {
	In    Node
	Exprs []NamedExpr
}

// NewMap builds a projection extension.
func NewMap(in Node, exprs ...NamedExpr) *Map { return &Map{In: in, Exprs: exprs} }

// Schema implements Node.
func (m *Map) Schema() (types.Schema, error) {
	s, err := m.In.Schema()
	if err != nil {
		return nil, err
	}
	out := append(types.Schema{}, s...)
	for _, ne := range m.Exprs {
		k, err := ne.E.Kind(out)
		if err != nil {
			return nil, fmt.Errorf("algebra: map %q: %w", ne.As, err)
		}
		out = append(out, types.ColumnDesc{Name: ne.As, Kind: k})
	}
	return out, nil
}

// HashJoin joins Build (left) against Probe (right) on equality of the key
// column lists. Modes follow ir.JoinMode; for LeftOuterJoin, Probe is the
// outer side and MatchedAs (if set) exposes the match marker as a bool
// column for counting aggregates over the outer join (Q13).
type HashJoin struct {
	Build, Probe         Node
	BuildKeys, ProbeKeys []string
	// BuildCols lists build-side columns carried to the output (keys are
	// carried automatically when referenced downstream).
	BuildCols []string
	Mode      ir.JoinMode
	MatchedAs string
}

// Schema implements Node: probe columns, then carried build columns, then
// the match marker.
func (j *HashJoin) Schema() (types.Schema, error) {
	ps, err := j.Probe.Schema()
	if err != nil {
		return nil, err
	}
	bs, err := j.Build.Schema()
	if err != nil {
		return nil, err
	}
	if len(j.BuildKeys) != len(j.ProbeKeys) || len(j.BuildKeys) == 0 {
		return nil, fmt.Errorf("algebra: join key arity %d vs %d", len(j.BuildKeys), len(j.ProbeKeys))
	}
	for i := range j.BuildKeys {
		bi := bs.IndexOf(j.BuildKeys[i])
		pi := ps.IndexOf(j.ProbeKeys[i])
		if bi < 0 || pi < 0 {
			return nil, fmt.Errorf("algebra: join key %q/%q missing", j.BuildKeys[i], j.ProbeKeys[i])
		}
		if bs[bi].Kind != ps[pi].Kind {
			return nil, fmt.Errorf("algebra: join key kind mismatch %v vs %v", bs[bi].Kind, ps[pi].Kind)
		}
	}
	out := append(types.Schema{}, ps...)
	if j.Mode == ir.InnerJoin || j.Mode == ir.LeftOuterJoin {
		for _, c := range j.BuildCols {
			i := bs.IndexOf(c)
			if i < 0 {
				return nil, fmt.Errorf("algebra: join build column %q missing", c)
			}
			if out.IndexOf(c) >= 0 {
				return nil, fmt.Errorf("algebra: join output column %q ambiguous", c)
			}
			out = append(out, bs[i])
		}
	}
	if j.Mode == ir.LeftOuterJoin && j.MatchedAs != "" {
		out = append(out, types.ColumnDesc{Name: j.MatchedAs, Kind: types.Bool})
	}
	return out, nil
}

// AggFn is a logical aggregate function.
type AggFn int

const (
	// AggSum sums an int64 or float64 column.
	AggSum AggFn = iota
	// AggCount counts rows (no argument).
	AggCount
	// AggCountIf counts rows where a bool column is true (COUNT over the
	// non-null side of an outer join).
	AggCountIf
	// AggMin / AggMax track extrema of float64 or int32 columns.
	AggMin
	AggMax
	// AggAvg is SUM/COUNT of a float64 column.
	AggAvg
)

func (f AggFn) String() string {
	return [...]string{"sum", "count", "count_if", "min", "max", "avg"}[f]
}

// AggSpec is one aggregate in a GroupBy.
type AggSpec struct {
	Fn  AggFn
	Col string // empty for AggCount
	As  string
}

// Sum/Count/CountIf/Min/Max/Avg are AggSpec constructors.
func Sum(col, as string) AggSpec     { return AggSpec{Fn: AggSum, Col: col, As: as} }
func Count(as string) AggSpec        { return AggSpec{Fn: AggCount, As: as} }
func CountIf(col, as string) AggSpec { return AggSpec{Fn: AggCountIf, Col: col, As: as} }
func MinOf(col, as string) AggSpec   { return AggSpec{Fn: AggMin, Col: col, As: as} }
func MaxOf(col, as string) AggSpec   { return AggSpec{Fn: AggMax, Col: col, As: as} }
func Avg(col, as string) AggSpec     { return AggSpec{Fn: AggAvg, Col: col, As: as} }

// GroupBy aggregates by the key columns (keyless = static aggregation).
// Keys listed in NoCase group case-insensitively: comparison happens on the
// lowercase equivalence-class representative while the displayed value is an
// original from the group (paper §IV-D collations).
type GroupBy struct {
	In     Node
	Keys   []string
	Aggs   []AggSpec
	NoCase []string
}

// NewGroupBy builds an aggregation.
func NewGroupBy(in Node, keys []string, aggs ...AggSpec) *GroupBy {
	return &GroupBy{In: in, Keys: keys, Aggs: aggs}
}

// Schema implements Node: keys then aggregates. A GroupBy with keys and no
// aggregates is DISTINCT.
func (g *GroupBy) Schema() (types.Schema, error) {
	s, err := g.In.Schema()
	if err != nil {
		return nil, err
	}
	if len(g.Keys) == 0 && len(g.Aggs) == 0 {
		return nil, fmt.Errorf("algebra: aggregation needs keys or aggregates")
	}
	for _, k := range g.NoCase {
		i := s.IndexOf(k)
		if i < 0 || s[i].Kind != types.String {
			return nil, fmt.Errorf("algebra: case-insensitive key %q must be a string key", k)
		}
		found := false
		for _, key := range g.Keys {
			found = found || key == k
		}
		if !found {
			return nil, fmt.Errorf("algebra: case-insensitive column %q is not a group key", k)
		}
	}
	var out types.Schema
	for _, k := range g.Keys {
		i := s.IndexOf(k)
		if i < 0 {
			return nil, fmt.Errorf("algebra: group key %q missing", k)
		}
		out = append(out, s[i])
	}
	for _, a := range g.Aggs {
		k, err := aggResultKind(a, s)
		if err != nil {
			return nil, err
		}
		out = append(out, types.ColumnDesc{Name: a.As, Kind: k})
	}
	return out, nil
}

func aggResultKind(a AggSpec, s types.Schema) (types.Kind, error) {
	var ck types.Kind
	if a.Col != "" {
		i := s.IndexOf(a.Col)
		if i < 0 {
			return types.Invalid, fmt.Errorf("algebra: aggregate column %q missing", a.Col)
		}
		ck = s[i].Kind
	}
	switch a.Fn {
	case AggSum:
		if ck != types.Int64 && ck != types.Float64 {
			return types.Invalid, fmt.Errorf("algebra: SUM over %v", ck)
		}
		return ck, nil
	case AggCount:
		return types.Int64, nil
	case AggCountIf:
		if ck != types.Bool {
			return types.Invalid, fmt.Errorf("algebra: COUNT-IF over %v", ck)
		}
		return types.Int64, nil
	case AggMin, AggMax:
		if ck != types.Float64 && ck != types.Int32 && ck != types.Date {
			return types.Invalid, fmt.Errorf("algebra: MIN/MAX over %v", ck)
		}
		return ck, nil
	case AggAvg:
		if ck != types.Float64 {
			return types.Invalid, fmt.Errorf("algebra: AVG over %v", ck)
		}
		return types.Float64, nil
	default:
		return types.Invalid, fmt.Errorf("algebra: unknown aggregate %v", a.Fn)
	}
}

// Project selects and orders output columns.
type Project struct {
	In   Node
	Cols []string
}

// NewProject builds a projection.
func NewProject(in Node, cols ...string) *Project { return &Project{In: in, Cols: cols} }

// Schema implements Node.
func (p *Project) Schema() (types.Schema, error) {
	s, err := p.In.Schema()
	if err != nil {
		return nil, err
	}
	out := make(types.Schema, 0, len(p.Cols))
	for _, c := range p.Cols {
		i := s.IndexOf(c)
		if i < 0 {
			return nil, fmt.Errorf("algebra: projected column %q missing", c)
		}
		out = append(out, s[i])
	}
	return out, nil
}

// OrderBy sorts (and limits) the final result. It must be the plan root.
type OrderBy struct {
	In    Node
	Keys  []string
	Desc  []bool
	Limit int
}

// NewOrderBy builds the ordering node.
func NewOrderBy(in Node, keys []string, desc []bool, limit int) *OrderBy {
	return &OrderBy{In: in, Keys: keys, Desc: desc, Limit: limit}
}

// Schema implements Node.
func (o *OrderBy) Schema() (types.Schema, error) { return o.In.Schema() }

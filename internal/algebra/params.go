package algebra

import (
	"fmt"

	"inkfuse/internal/rt"
	"inkfuse/internal/types"
)

// Params maps parameter refs (Const.Ref / LikeE.Ref / InListE.Ref) to the
// runtime state objects the lowering created for them. Runtime constants are
// read at execution time (paper §IV-C), so rewriting these states
// re-parameterizes an already-lowered — and already-compiled — plan without
// touching the suboperator DAG or its artifacts.
//
// One ref can map to several states: the lowering may duplicate a literal
// (e.g. a predicate pushed below both sides of an operator), and every copy
// must be patched together.
type Params struct {
	consts  map[int][]*rt.ConstState
	likes   map[int][]*rt.LikeState
	inlists map[int][]*rt.InListState
}

func newParams() *Params {
	return &Params{
		consts:  make(map[int][]*rt.ConstState),
		likes:   make(map[int][]*rt.LikeState),
		inlists: make(map[int][]*rt.InListState),
	}
}

func (p *Params) addConst(ref int, st *rt.ConstState) {
	if p != nil && ref > 0 {
		p.consts[ref] = append(p.consts[ref], st)
	}
}

func (p *Params) addLike(ref int, st *rt.LikeState) {
	if p != nil && ref > 0 {
		p.likes[ref] = append(p.likes[ref], st)
	}
}

func (p *Params) addInList(ref int, st *rt.InListState) {
	if p != nil && ref > 0 {
		p.inlists[ref] = append(p.inlists[ref], st)
	}
}

// SetConst rebinds a scalar parameter. The value's kind must match the kind
// the plan was lowered with — the compiled artifacts bake in the typed
// primitive, only the value is free.
func (p *Params) SetConst(ref int, c Const) error {
	states, ok := p.consts[ref]
	if !ok {
		return fmt.Errorf("algebra: no scalar parameter with ref %d", ref)
	}
	for _, st := range states {
		if st.Kind != c.K {
			return fmt.Errorf("algebra: parameter %d is %v, got %v", ref, st.Kind, c.K)
		}
		st.B, st.I32, st.I64, st.F64, st.Str = c.B, c.I32, c.I64, c.F64, c.Str
	}
	return nil
}

// SetLike rebinds a LIKE pattern parameter, recompiling its matcher.
func (p *Params) SetLike(ref int, pattern string) error {
	states, ok := p.likes[ref]
	if !ok {
		return fmt.Errorf("algebra: no LIKE parameter with ref %d", ref)
	}
	m := rt.NewLikeMatcher(pattern)
	for _, st := range states {
		st.M = m
	}
	return nil
}

// SetInList rebinds an IN (...) member-list parameter.
func (p *Params) SetInList(ref int, members []string) error {
	states, ok := p.inlists[ref]
	if !ok {
		return fmt.Errorf("algebra: no IN-list parameter with ref %d", ref)
	}
	set := make(map[string]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	for _, st := range states {
		st.Set = set
	}
	return nil
}

// HasRef reports whether the lowering registered any state under ref. A ref
// can be absent when the expression holding it was pruned as unreferenced, in
// which case there is nothing to patch.
func (p *Params) HasRef(ref int) bool {
	_, c := p.consts[ref]
	_, l := p.likes[ref]
	_, i := p.inlists[ref]
	return c || l || i
}

// ConstKind reports the lowered kind of a scalar parameter ref.
func (p *Params) ConstKind(ref int) (types.Kind, bool) {
	states, ok := p.consts[ref]
	if !ok || len(states) == 0 {
		return types.Invalid, false
	}
	return states[0].Kind, true
}

package algebra

import (
	"fmt"
	"runtime"

	"inkfuse/internal/core"
	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/types"
)

// LowerOptions configures how the algebra tree is lowered into suboperators.
type LowerOptions struct {
	// Exchange routes every aggregation and join build through a local
	// hash-partitioned exchange (DESIGN.md §15): the feeding pipeline ends in
	// a Partition suboperator, and the build runs one morsel per partition
	// against a private single-writer table part — lock-free, spill-free.
	Exchange bool
	// Partitions is the exchange fan-out, rounded up to a power of two ≤
	// rt.MaxPartitions. 0 = GOMAXPROCS (one partition per worker).
	Partitions int
}

// Lower turns a relational plan into the suboperator plan executed by the
// engine (paper Fig 7, step 2 → 3): one pass over the algebra tree that
// breaks every operator into enumerable suboperators, allocates runtime
// state (hash tables, layouts, constants), and splits the tree into
// pipelines.
func Lower(root Node, name string) (*core.Plan, error) {
	plan, _, err := LowerWithParams(root, name)
	return plan, err
}

// LowerOpts is Lower with explicit LowerOptions.
func LowerOpts(root Node, name string, opts LowerOptions) (*core.Plan, error) {
	plan, _, err := LowerWithParamsOpts(root, name, opts)
	return plan, err
}

// LowerWithParams lowers like Lower and additionally collects the runtime
// constant states created for Ref-tagged literals (Const.Ref, LikeE.Ref,
// InListE.Ref) into a Params map, so callers can rebind parameter values on
// the lowered plan without re-lowering (the plancache reuse path).
func LowerWithParams(root Node, name string) (*core.Plan, *Params, error) {
	return LowerWithParamsOpts(root, name, LowerOptions{})
}

// LowerWithParamsOpts is LowerWithParams with explicit LowerOptions.
func LowerWithParamsOpts(root Node, name string, opts LowerOptions) (*core.Plan, *Params, error) {
	plan := &core.Plan{Name: name}

	node := root
	var order *OrderBy
	if ob, ok := node.(*OrderBy); ok {
		order = ob
		node = ob.In
	}
	finalSchema, err := node.Schema()
	if err != nil {
		return nil, nil, err
	}
	required := make([]string, len(finalSchema))
	for i, c := range finalSchema {
		required[i] = c.Name
	}

	params := newParams()
	l := &lowerer{plan: plan, params: params, opts: opts}
	if err := l.lower(node, required); err != nil {
		return nil, nil, err
	}
	for _, c := range finalSchema {
		iu, ok := l.cols[c.Name]
		if !ok {
			return nil, nil, fmt.Errorf("algebra: result column %q not produced", c.Name)
		}
		l.pipe.Result = append(l.pipe.Result, iu)
		plan.ColNames = append(plan.ColNames, c.Name)
	}
	plan.Pipelines = append(plan.Pipelines, l.pipe)

	if order != nil {
		spec := &core.SortSpec{Limit: order.Limit}
		for i, k := range order.Keys {
			idx := finalSchema.IndexOf(k)
			if idx < 0 {
				return nil, nil, fmt.Errorf("algebra: order key %q not in result", k)
			}
			spec.Keys = append(spec.Keys, idx)
			desc := false
			if i < len(order.Desc) {
				desc = order.Desc[i]
			}
			spec.Desc = append(spec.Desc, desc)
		}
		plan.Sort = spec
	}
	return plan, params, nil
}

type lowerer struct {
	plan   *core.Plan
	pipe   *core.Pipeline
	cols   map[string]*core.IU
	npipe  int
	params *Params
	opts   LowerOptions
}

// partitions resolves the exchange fan-out (power of two ≤ MaxPartitions).
func (l *lowerer) partitions() int {
	p := l.opts.Partitions
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return rt.NormalizePartitions(p)
}

// exchange allocates the shared routing state for one partitioned build, or
// nil when exchanges are off.
func (l *lowerer) exchange() *rt.ExchangeState {
	if !l.opts.Exchange {
		return nil
	}
	return &rt.ExchangeState{Partitions: l.partitions()}
}

func (l *lowerer) newPipe(src core.Source) {
	l.npipe = len(l.plan.Pipelines)
	l.pipe = &core.Pipeline{Name: fmt.Sprintf("p%d", l.npipe), Source: src}
	l.cols = make(map[string]*core.IU)
}

func (l *lowerer) add(op core.SubOp) { l.pipe.Ops = append(l.pipe.Ops, op) }

// anyBound returns some currently bound IU (cardinality anchor).
func (l *lowerer) anyBound(prefer []string) (*core.IU, error) {
	for _, n := range prefer {
		if iu, ok := l.cols[n]; ok {
			return iu, nil
		}
	}
	for _, iu := range l.cols {
		return iu, nil
	}
	return nil, fmt.Errorf("algebra: no bound columns for anchor")
}

func (l *lowerer) lower(node Node, required []string) error {
	switch n := node.(type) {
	case *Scan:
		return l.lowerScan(n, required)
	case *Filter:
		return l.lowerFilter(n, required)
	case *Map:
		return l.lowerMap(n, required)
	case *Project:
		return l.lower(n.In, required)
	case *GroupBy:
		return l.lowerGroupBy(n, required)
	case *HashJoin:
		return l.lowerJoin(n, required)
	case *OrderBy:
		return fmt.Errorf("algebra: ORDER BY must be the plan root")
	default:
		return fmt.Errorf("algebra: cannot lower %T", node)
	}
}

func (l *lowerer) lowerScan(n *Scan, required []string) error {
	schema, err := n.Schema()
	if err != nil {
		return err
	}
	cols := dedupe(required)
	if len(cols) == 0 {
		// Always scan at least one column to carry cardinality.
		cols = []string{schema[0].Name}
	}
	src := &core.TableScan{Table: n.Table}
	l.newPipe(src)
	for _, c := range cols {
		i := n.Table.Schema.IndexOf(c)
		if i < 0 {
			return fmt.Errorf("algebra: table %s has no column %q", n.Table.Name, c)
		}
		if schema.IndexOf(c) < 0 {
			return fmt.Errorf("algebra: column %q not in scan list of %s", c, n.Table.Name)
		}
		iu := core.NewIU(n.Table.Schema[i].Kind, c)
		src.Cols = append(src.Cols, i)
		src.IUs = append(src.IUs, iu)
		l.cols[c] = iu
	}
	return nil
}

func (l *lowerer) lowerFilter(n *Filter, required []string) error {
	inReq := dedupe(append(n.Pred.Columns(nil), required...))
	if err := l.lower(n.In, inReq); err != nil {
		return err
	}
	cond, err := l.lowerExpr(n.Pred)
	if err != nil {
		return err
	}
	scope := &core.FilterScope{Cond: cond}
	l.add(scope)
	// One copy suboperator per surviving column (paper Fig 4).
	newCols := make(map[string]*core.IU, len(required))
	for _, c := range dedupe(required) {
		src, ok := l.cols[c]
		if !ok {
			return fmt.Errorf("algebra: filter carries unknown column %q", c)
		}
		dst := core.NewIU(src.K, c)
		l.add(&core.FilterCopy{Cond: cond, Src: src, Dst: dst})
		newCols[c] = dst
	}
	l.cols = newCols
	return nil
}

func (l *lowerer) lowerMap(n *Map, required []string) error {
	defined := make(map[string]bool)
	for _, ne := range n.Exprs {
		defined[ne.As] = true
	}
	// An expression is needed if its name is required, or if a later needed
	// expression references it (map expressions may build on one another).
	neededName := make(map[string]bool)
	for _, c := range required {
		if defined[c] {
			neededName[c] = true
		}
	}
	for i := len(n.Exprs) - 1; i >= 0; i-- {
		ne := n.Exprs[i]
		if !neededName[ne.As] {
			continue
		}
		for _, c := range ne.E.Columns(nil) {
			if defined[c] {
				neededName[c] = true
			}
		}
	}
	var needed []NamedExpr
	for _, ne := range n.Exprs {
		if neededName[ne.As] {
			needed = append(needed, ne)
		}
	}
	var inReq []string
	for _, c := range required {
		if !defined[c] {
			inReq = append(inReq, c)
		}
	}
	for _, ne := range needed {
		for _, c := range ne.E.Columns(nil) {
			if !defined[c] {
				inReq = append(inReq, c)
			}
		}
	}
	if err := l.lower(n.In, dedupe(inReq)); err != nil {
		return err
	}
	for _, ne := range needed {
		iu, err := l.lowerExpr(ne.E)
		if err != nil {
			return fmt.Errorf("algebra: map %q: %w", ne.As, err)
		}
		// Rebind under the computed name.
		renamed := *iu
		renamed.Name = ne.As
		l.cols[ne.As] = &renamed
	}
	return nil
}

// aggSlot records where one ir-level aggregate lives in the payload.
type aggSlot struct {
	fn  ir.AggFunc
	off int
	col string // input column; "" for count
}

func (l *lowerer) lowerGroupBy(n *GroupBy, required []string) error {
	inSchema, err := n.In.Schema()
	if err != nil {
		return err
	}
	var inReq []string
	inReq = append(inReq, n.Keys...)
	for _, a := range n.Aggs {
		if a.Col != "" {
			inReq = append(inReq, a.Col)
		}
	}
	if len(inReq) == 0 {
		// Pure COUNT(*): no column is read, but the pipeline still needs one
		// bound column to carry cardinality (the MakeRow anchor).
		inReq = []string{inSchema[0].Name}
	}
	if err := l.lower(n.In, dedupe(inReq)); err != nil {
		return err
	}

	// Key layout.
	keyFields := make([]rt.Field, len(n.Keys))
	for i, k := range n.Keys {
		ki := inSchema.IndexOf(k)
		if ki < 0 {
			return fmt.Errorf("algebra: group key %q missing", k)
		}
		keyFields[i] = rt.Field{Kind: inSchema[ki].Kind, Key: true}
	}
	keyLayout := rt.NewLayout(keyFields)

	// Aggregate slots: map logical aggregates onto ir-level update functions.
	var slots []aggSlot
	resultSlots := make(map[string][]int)     // agg name -> slot indexes (avg has 2)
	resultKind := make(map[string]types.Kind) // agg name -> declared result kind
	for _, a := range n.Aggs {
		k, err := aggResultKind(a, inSchema)
		if err != nil {
			return err
		}
		resultKind[a.As] = k
	}
	off := 0
	addSlot := func(fn ir.AggFunc, col string) int {
		slots = append(slots, aggSlot{fn: fn, off: off, col: col})
		off += 8 // all slots padded to 8 bytes
		return len(slots) - 1
	}
	for _, a := range n.Aggs {
		var ck types.Kind
		if a.Col != "" {
			ci := inSchema.IndexOf(a.Col)
			if ci < 0 {
				return fmt.Errorf("algebra: aggregate column %q missing", a.Col)
			}
			ck = inSchema[ci].Kind
		}
		switch a.Fn {
		case AggSum:
			fn := ir.AggSumF64
			if ck == types.Int64 {
				fn = ir.AggSumI64
			}
			resultSlots[a.As] = []int{addSlot(fn, a.Col)}
		case AggCount:
			resultSlots[a.As] = []int{addSlot(ir.AggCount, "")}
		case AggCountIf:
			resultSlots[a.As] = []int{addSlot(ir.AggCountIf, a.Col)}
		case AggMin:
			fn := ir.AggMinF64
			if ck == types.Int32 || ck == types.Date {
				fn = ir.AggMinI32
			}
			resultSlots[a.As] = []int{addSlot(fn, a.Col)}
		case AggMax:
			fn := ir.AggMaxF64
			if ck == types.Int32 || ck == types.Date {
				fn = ir.AggMaxI32
			}
			resultSlots[a.As] = []int{addSlot(fn, a.Col)}
		case AggAvg:
			resultSlots[a.As] = []int{addSlot(ir.AggSumF64, a.Col), addSlot(ir.AggCount, "")}
		default:
			return fmt.Errorf("algebra: unknown aggregate %v", a.Fn)
		}
	}

	// Payload template and merge spec.
	init := make([]byte, off)
	var merges []rt.AggMerge
	for _, s := range slots {
		s.fn.InitSlot(init[s.off : s.off+8])
		merges = append(merges, rt.AggMerge{Op: mergeOp(s.fn), Off: s.off})
	}
	st := &rt.AggTableState{Init: init, Shards: 16, Merge: merges}
	ex := l.exchange()
	if ex != nil {
		st.Partitions = ex.Partitions
		st.Parted = rt.NewPartitionedAggTable(init, ex.Partitions)
	}

	// Build-side suboperators: pack the compound key, look up the group,
	// update every aggregate (paper Fig 6). A single fixed-width key skips
	// packing and probes with the raw column (paper §IV-D fast path).
	// Case-insensitive keys pack their lowercase representative and preserve
	// an original in the group payload (paper §IV-D collations).
	noCase := toSet(n.NoCase)
	group := core.NewIU(types.Ptr, "agg_group")
	exPayFixed := 0
	if ex == nil && len(n.Keys) == 1 && keyFields[0].Kind.Fixed() {
		key, ok := l.cols[n.Keys[0]]
		if !ok {
			return fmt.Errorf("algebra: key column %q not bound", n.Keys[0])
		}
		l.add(&core.AggLookupFixed{Key: key, State: st, Out: group})
	} else {
		// With an exchange the probe row doubles as the routed row: the
		// distinct aggregate inputs ride in its fixed payload so the build
		// pipeline, reading the exchange partition-by-partition, can unpack
		// them without revisiting the scan (DESIGN.md §15).
		var exCols []string
		if ex != nil {
			seen := map[string]bool{}
			for _, s := range slots {
				if s.col != "" && !seen[s.col] {
					seen[s.col] = true
					exCols = append(exCols, s.col)
				}
			}
		}
		fields := append([]rt.Field{}, keyFields...)
		exKinds := make([]types.Kind, len(exCols))
		for j, c := range exCols {
			val, ok := l.cols[c]
			if !ok {
				return fmt.Errorf("algebra: aggregate column %q not bound", c)
			}
			if !val.K.Fixed() {
				return fmt.Errorf("algebra: aggregate input %q is not fixed-width", c)
			}
			exKinds[j] = val.K
			fields = append(fields, rt.Field{Kind: val.K})
		}
		rowLayout := rt.NewLayout(fields)
		exPayFixed = rowLayout.PayloadFixedWidth
		layout := &rt.RowLayoutState{KeyFixed: rowLayout.KeyFixedWidth, PayloadFixed: rowLayout.PayloadFixedWidth}
		anchor, err := l.anyBound(inReq)
		if err != nil {
			return err
		}
		keyVals := make([]*core.IU, len(n.Keys))
		for i, k := range n.Keys {
			val, ok := l.cols[k]
			if !ok {
				return fmt.Errorf("algebra: key column %q not bound", k)
			}
			if noCase[k] {
				norm := core.NewIU(types.String, k+"_norm")
				l.add(&core.ToLower{In: val, Out: norm})
				val = norm
			}
			keyVals[i] = val
		}
		row := core.NewIU(types.Ptr, "agg_key")
		l.add(&core.MakeRow{Anchor: anchor, Layout: layout, Out: row})
		row, err = l.packKeyIUs(row, layout, rowLayout, keyVals)
		if err != nil {
			return err
		}
		row, err = l.packPayload(row, layout, rowLayout, len(n.Keys), exCols)
		if err != nil {
			return err
		}
		// Preserve the original strings of collated keys in the probe row's
		// payload: AggLookup seeds new groups with it.
		for _, k := range n.Keys {
			if !noCase[k] {
				continue
			}
			out := core.NewIU(types.Ptr, row.Name)
			l.add(&core.PackStr{Row: row, Val: l.cols[k], Region: ir.PayloadRegion,
				Off: &rt.OffsetState{Layout: layout}, Out: out})
			row = out
		}
		if ex == nil {
			l.add(&core.AggLookup{Row: row, State: st, Out: group})
		} else {
			// The routing pipeline ends at the Partition sink; a fresh build
			// pipeline consumes the exchange one partition per morsel, so each
			// table part has exactly one writer.
			l.add(&core.Partition{Row: row, State: ex})
			l.pipe.SealExchanges = append(l.pipe.SealExchanges, ex)
			l.plan.Pipelines = append(l.plan.Pipelines, l.pipe)
			exRow := core.NewIU(types.Ptr, "exg_row")
			l.newPipe(&core.ExchangeRead{State: ex, Out: exRow})
			for j, c := range exCols {
				iu, err := l.unpackField(exRow, ir.PayloadRegion, exKinds[j],
					rowLayout.FixedOff[len(n.Keys)+j], rowLayout.PayloadFixedWidth, -1, c)
				if err != nil {
					return err
				}
				l.cols[c] = iu
			}
			l.add(&core.AggLookup{Row: exRow, State: st, Out: group})
		}
	}
	for _, s := range slots {
		u := &core.AggUpdate{Group: group, Fn: s.fn, Off: &rt.OffsetState{Off: s.off}}
		if s.col != "" {
			u.Val = l.cols[s.col]
		}
		l.add(u)
	}
	l.pipe.MergeAggs = append(l.pipe.MergeAggs, &core.AggFinalize{State: st, Keyless: len(n.Keys) == 0})
	l.plan.Pipelines = append(l.plan.Pipelines, l.pipe)

	// Reading pipeline: scan the groups, unpack keys and aggregates.
	rowIU := core.NewIU(types.Ptr, "agg_row")
	l.newPipe(&core.AggRead{State: st, Out: rowIU})
	reqSet := toSet(required)
	collatedIdx := 0
	collatedSlot := make(map[string]int)
	for _, k := range n.Keys {
		if noCase[k] {
			collatedSlot[k] = collatedIdx
			collatedIdx++
		}
	}
	for i, k := range n.Keys {
		if !reqSet[k] {
			continue
		}
		var iu *core.IU
		var err error
		if noCase[k] {
			// The displayed value is the preserved original from the group
			// payload, after the fixed aggregate slots (and, when the build was
			// exchanged, after the routed row's fixed aggregate inputs, which
			// the lookup seed carried into the group payload).
			iu, err = l.unpackField(rowIU, ir.PayloadRegion, types.String, -1,
				len(init)+exPayFixed, collatedSlot[k], k)
		} else {
			iu, err = l.unpackField(rowIU, ir.KeyRegion, keyFields[i].Kind, keyLayout.FixedOff[i],
				keyLayout.KeyFixedWidth, keyLayout.VarIdx[i], k)
		}
		if err != nil {
			return err
		}
		l.cols[k] = iu
	}
	for _, a := range n.Aggs {
		if !reqSet[a.As] {
			continue
		}
		si := resultSlots[a.As]
		switch a.Fn {
		case AggAvg:
			sum, err := l.unpackField(rowIU, ir.PayloadRegion, types.Float64, slots[si[0]].off, 0, -1, a.As+"_sum")
			if err != nil {
				return err
			}
			cnt, err := l.unpackField(rowIU, ir.PayloadRegion, types.Int64, slots[si[1]].off, 0, -1, a.As+"_cnt")
			if err != nil {
				return err
			}
			cntF := core.NewIU(types.Float64, a.As+"_cntf")
			l.add(&core.Cast{In: cnt, Out: cntF})
			avg := core.NewIU(types.Float64, a.As)
			l.add(&core.Arith{Op: ir.Div, L: core.Col(sum), R: core.Col(cntF), Out: avg})
			l.cols[a.As] = avg
		default:
			// Unpack with the declared result kind (Date aggregates share
			// the Int32 slot representation).
			iu, err := l.unpackField(rowIU, ir.PayloadRegion, resultKind[a.As], slots[si[0]].off, 0, -1, a.As)
			if err != nil {
				return err
			}
			l.cols[a.As] = iu
		}
	}
	return nil
}

func mergeOp(fn ir.AggFunc) rt.MergeOp {
	switch fn {
	case ir.AggSumF64:
		return rt.MergeSumF64
	case ir.AggMinF64:
		return rt.MergeMinF64
	case ir.AggMaxF64:
		return rt.MergeMaxF64
	case ir.AggMinI32:
		return rt.MergeMinI32
	case ir.AggMaxI32:
		return rt.MergeMaxI32
	default:
		return rt.MergeSumI64
	}
}

// packKey emits the key-packing chain for the named columns into row.
func (l *lowerer) packKey(row *core.IU, layout *rt.RowLayoutState, keyLayout *rt.Layout, keys []string) (*core.IU, error) {
	vals := make([]*core.IU, len(keys))
	for i, k := range keys {
		val, ok := l.cols[k]
		if !ok {
			return nil, fmt.Errorf("algebra: key column %q not bound", k)
		}
		vals[i] = val
	}
	return l.packKeyIUs(row, layout, keyLayout, vals)
}

// packKeyIUs is packKey over already-resolved key values (collated keys pack
// a normalized IU rather than the named column, paper §IV-D).
func (l *lowerer) packKeyIUs(row *core.IU, layout *rt.RowLayoutState, keyLayout *rt.Layout, vals []*core.IU) (*core.IU, error) {
	// Fixed fields first (they write into the pre-sized key area), then
	// variable-size fields, then the seal.
	for i, val := range vals {
		if keyLayout.FixedOff[i] < 0 {
			continue
		}
		out := core.NewIU(types.Ptr, row.Name)
		l.add(&core.PackFixed{Row: row, Val: val, Region: ir.KeyRegion,
			Off: &rt.OffsetState{Off: keyLayout.FixedOff[i], Layout: layout}, Out: out})
		row = out
	}
	for i, val := range vals {
		if keyLayout.VarIdx[i] < 0 {
			continue
		}
		out := core.NewIU(types.Ptr, row.Name)
		l.add(&core.PackStr{Row: row, Val: val, Region: ir.KeyRegion,
			Off: &rt.OffsetState{Layout: layout}, Out: out})
		row = out
	}
	sealed := core.NewIU(types.Ptr, row.Name)
	l.add(&core.SealKey{Row: row, Layout: layout, Out: sealed})
	return sealed, nil
}

// unpackField emits the unpack suboperator for one packed-row field.
func (l *lowerer) unpackField(row *core.IU, region ir.Region, k types.Kind,
	fixedOff, fixedWidth, varIdx int, name string) (*core.IU, error) {
	out := core.NewIU(k, name)
	if k == types.String {
		l.add(&core.UnpackStr{Row: row, Region: region,
			Slot: &rt.VarSlotState{FixedWidth: fixedWidth, VarIdx: varIdx}, Out: out})
	} else {
		l.add(&core.UnpackFixed{Row: row, Region: region,
			Off: &rt.OffsetState{Off: fixedOff}, Out: out})
	}
	return out, nil
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func toSet(in []string) map[string]bool {
	m := make(map[string]bool, len(in))
	for _, s := range in {
		m[s] = true
	}
	return m
}

package plancache_test

import (
	"fmt"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/exec"
	"inkfuse/internal/plancache"
	"inkfuse/internal/sql"
	"inkfuse/internal/tpch"
)

var cat = tpch.Generate(0.002, 11)

func mustPrepare(t *testing.T, text string) (*sql.Statement, *plancache.Prepared) {
	t.Helper()
	stmt, err := sql.Compile(cat, text)
	if err != nil {
		t.Fatal(err)
	}
	plan, params, err := algebra.LowerWithParams(stmt.Root, stmt.Name)
	if err != nil {
		t.Fatal(err)
	}
	return stmt, plancache.NewPrepared(stmt.Fingerprint, plan, params)
}

func runOn(t *testing.T, stmt *sql.Statement, prep *plancache.Prepared, backend exec.Backend) []string {
	t.Helper()
	if err := stmt.BindArgs(prep.Params(), nil); err != nil {
		t.Fatal(err)
	}
	lat := exec.LatencyNone
	res, err := exec.Execute(prep.Plan(), exec.Options{
		Backend: backend, Workers: 2, Latency: &lat, Artifacts: prep.Artifacts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, res.Chunk.Rows())
	for i := range rows {
		rows[i] = fmt.Sprintf("%v", res.Chunk.Row(i))
	}
	return rows
}

// TestAcquirePutLifecycle covers the lease protocol: miss on empty, hit after
// Put, exclusive lease (second Acquire misses while leased), miss counters.
func TestAcquirePutLifecycle(t *testing.T) {
	c := plancache.New(plancache.Config{})
	stmt, prep := mustPrepare(t, `select count(*) as n from lineitem`)
	fp := stmt.Fingerprint

	if got := c.Acquire(fp); got != nil {
		t.Fatal("acquire on empty cache should miss")
	}
	runOn(t, stmt, prep, exec.BackendVectorized)
	c.Put(prep)

	leased := c.Acquire(fp)
	if leased == nil {
		t.Fatal("acquire after Put should hit")
	}
	if c.Acquire(fp) != nil {
		t.Fatal("instance is leased; a concurrent acquire must miss")
	}
	// A leased instance stays executable after the state reset in Put.
	runOn(t, stmt, leased, exec.BackendVectorized)
	c.Put(leased)

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

// TestLRUEviction fills a 2-entry cache with 3 query shapes and checks the
// least-recently-used one is dropped, with straggler Puts discarded.
func TestLRUEviction(t *testing.T) {
	c := plancache.New(plancache.Config{MaxEntries: 2})
	texts := []string{
		`select count(*) as n from lineitem`,
		`select count(*) as n from orders`,
		`select count(*) as n from customer`,
	}
	var stmts []*sql.Statement
	var preps []*plancache.Prepared
	for _, text := range texts {
		stmt, prep := mustPrepare(t, text)
		stmts = append(stmts, stmt)
		runOn(t, stmt, prep, exec.BackendVectorized)
		c.Put(prep)
		preps = append(preps, prep)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("want 2 entries / 1 eviction, got %+v", st)
	}
	if c.Acquire(stmts[0].Fingerprint) != nil {
		t.Fatal("oldest entry should have been evicted")
	}
	if got := c.Acquire(stmts[2].Fingerprint); got == nil {
		t.Fatal("newest entry should be cached")
	}
	// Re-inserting an instance of the evicted shape re-creates the entry.
	c.Put(preps[0])
	if c.Acquire(stmts[0].Fingerprint) == nil {
		t.Fatal("re-inserted shape should hit again")
	}
}

// TestArtifactReuseOnHit is the PR's acceptance criterion: after a cold run
// of one query shape lands its compiled artifacts, executing the same shape
// with different literals hits the cache, performs zero new compilations, and
// produces bytes identical to a cold run of the new literals.
func TestArtifactReuseOnHit(t *testing.T) {
	const shapeA = `select l_returnflag, sum(l_extendedprice) as s from lineitem where l_quantity < 30 group by l_returnflag order by l_returnflag`
	const shapeB = `select l_returnflag, sum(l_extendedprice) as s from lineitem where l_quantity < 11 group by l_returnflag order by l_returnflag`

	c := plancache.New(plancache.Config{})
	stmtA, prep := mustPrepare(t, shapeA)
	stmtB, err := sql.Compile(cat, shapeB)
	if err != nil {
		t.Fatal(err)
	}
	if stmtA.Fingerprint != stmtB.Fingerprint {
		t.Fatal("shapes must share a fingerprint")
	}

	// Cold: run on the hybrid backend until every pipeline's fused artifact
	// has landed (background compiles race the execution, so retry).
	if c.Acquire(stmtA.Fingerprint) != nil {
		t.Fatal("cold acquire must miss")
	}
	runOn(t, stmtA, prep, exec.BackendHybrid)
	for i := 0; prep.Artifacts().FusedPipelines() < len(prep.Plan().Pipelines); i++ {
		if i >= 50 {
			t.Fatalf("artifacts never landed: %d/%d pipelines fused",
				prep.Artifacts().FusedPipelines(), len(prep.Plan().Pipelines))
		}
		c.Put(prep)
		if prep = c.Acquire(stmtA.Fingerprint); prep == nil {
			t.Fatal("warm acquire must hit")
		}
		runOn(t, stmtA, prep, exec.BackendHybrid)
	}
	c.Put(prep)

	// Reference: a cold, uncached run of shape B's literals.
	_, coldB := mustPrepare(t, shapeB)
	wantB := runOn(t, stmtB, coldB, exec.BackendHybrid)

	// Hit: same shape, B's literals, reusing A's instance and artifacts.
	hitsBefore := c.Stats().Hits
	leased := c.Acquire(stmtB.Fingerprint)
	if leased == nil {
		t.Fatal("hot acquire must hit")
	}
	compilesBefore := leased.Artifacts().Compiles()
	gotB := runOn(t, stmtB, leased, exec.BackendHybrid)
	if got := leased.Artifacts().Compiles(); got != compilesBefore {
		t.Fatalf("cache hit recompiled: %d compiles before, %d after", compilesBefore, got)
	}
	if c.Stats().Hits != hitsBefore+1 {
		t.Fatalf("hit counter did not increment: %d -> %d", hitsBefore, c.Stats().Hits)
	}
	if fmt.Sprint(gotB) != fmt.Sprint(wantB) {
		t.Fatalf("hit result differs from cold run:\n hit  %v\n cold %v", gotB, wantB)
	}
	c.Put(leased)
}

// Package plancache caches lowered plans and their compiled pipeline
// artifacts across requests, keyed by the canonical parameter-invariant
// algebra fingerprint (algebra.Fingerprint): the second execution of a query
// shape — same structure, different literals — skips parsing-to-plan work and
// runs straight on the artifacts the first execution's background compiles
// landed (the amortization the paper's incremental-fusion design needs at
// serving scale).
//
// A cached instance is the triple (lowered plan, parameter map, artifact
// set). Plans embed per-run mutable state (join tables sealed per execution,
// merged aggregate results) and artifacts close over exactly those state
// objects, so instances are leased exclusively: Acquire pops an idle
// instance, the caller patches parameters and executes, Put resets the run
// state and returns it. Concurrent requests for the same fingerprint beyond
// the pooled instances fall back to a fresh build and count as misses.
package plancache

import (
	"container/list"
	"sync"

	"inkfuse/internal/algebra"
	"inkfuse/internal/core"
	"inkfuse/internal/exec"
	"inkfuse/internal/flight"
	"inkfuse/internal/metrics"
)

// Prepared is one exclusively-leased executable instance: a lowered plan, the
// parameter states to patch literals into it, and the compiled artifacts of
// earlier executions.
type Prepared struct {
	fp     core.Fingerprint
	plan   *core.Plan
	params *algebra.Params
	arts   *exec.ArtifactSet
	cost   int64
}

// NewPrepared wraps a freshly built plan for insertion into a cache.
func NewPrepared(fp core.Fingerprint, plan *core.Plan, params *algebra.Params) *Prepared {
	return &Prepared{fp: fp, plan: plan, params: params, arts: exec.NewArtifactSet()}
}

// Fingerprint returns the instance's cache key.
func (p *Prepared) Fingerprint() core.Fingerprint { return p.fp }

// Plan returns the lowered plan. Valid only while the instance is leased.
func (p *Prepared) Plan() *core.Plan { return p.plan }

// Params returns the parameter map for rebinding literals.
func (p *Prepared) Params() *algebra.Params { return p.params }

// Artifacts returns the artifact set to pass as exec.Options.Artifacts.
// Nil-safe, like the set itself: a nil Prepared yields a nil set, which the
// executor treats as "no landed artifacts".
func (p *Prepared) Artifacts() *exec.ArtifactSet {
	if p == nil {
		return nil
	}
	return p.arts
}

// Config bounds a Cache.
type Config struct {
	// MaxEntries bounds distinct fingerprints (LRU evicted). <= 0 means 64.
	MaxEntries int
	// MaxBytes bounds the summed artifact cost estimate across all cached
	// instances; entries are LRU-evicted past it. Servers size this from the
	// engine memory limit so the cache never crowds out query memory
	// reservations. <= 0 means 64 MiB.
	MaxBytes int64
	// MaxInstances bounds pooled instances per fingerprint (concurrent
	// same-shape executions beyond it build fresh and are dropped on Put).
	// <= 0 means 4.
	MaxInstances int
}

// Stats is a point-in-time cache snapshot.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

type entry struct {
	fp      core.Fingerprint
	idle    []*Prepared
	lruElem *list.Element
	evicted bool
}

// Cache is a bounded LRU over query-shape fingerprints. Safe for concurrent
// use.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	entries map[core.Fingerprint]*entry
	lru     *list.List // front = most recently used; values are *entry
	bytes   int64

	hits, misses, evictions int64
}

// New builds an empty cache.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 64
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.MaxInstances <= 0 {
		cfg.MaxInstances = 4
	}
	return &Cache{cfg: cfg, entries: make(map[core.Fingerprint]*entry), lru: list.New()}
}

// Acquire leases an idle instance for the fingerprint, or returns nil on a
// miss (no entry, or every pooled instance is busy). The caller of a miss
// builds fresh and hands the instance to Put when done.
func (c *Cache) Acquire(fp core.Fingerprint) *Prepared {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[fp]
	if e == nil || len(e.idle) == 0 {
		c.misses++
		metrics.Default.PlanCacheMiss()
		flight.Default.RecordStr(flight.KindPlanCacheMiss, 0, fp.Hex(), 0, 0)
		return nil
	}
	p := e.idle[len(e.idle)-1]
	e.idle = e.idle[:len(e.idle)-1]
	c.bytes -= p.cost
	c.lru.MoveToFront(e.lruElem)
	c.hits++
	metrics.Default.PlanCacheHit()
	flight.Default.RecordStr(flight.KindPlanCacheHit, 0, fp.Hex(), p.cost, 0)
	return p
}

// Put returns an instance to the cache — both releasing a leased hit and
// inserting a fresh miss build go through here. The instance's run state is
// reset, its cost re-estimated (background compiles may have landed new
// artifacts), and it is pooled unless its entry was evicted meanwhile or the
// per-entry pool is full. Must only be called once no execution references
// the instance.
func (c *Cache) Put(p *Prepared) {
	core.ResetPlanState(p.plan)
	p.cost = p.arts.CostBytes()

	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[p.fp]
	if e == nil {
		e = &entry{fp: p.fp}
		e.lruElem = c.lru.PushFront(e)
		c.entries[p.fp] = e
	} else if e.evicted || len(e.idle) >= c.cfg.MaxInstances {
		return
	}
	e.idle = append(e.idle, p)
	c.bytes += p.cost
	c.lru.MoveToFront(e.lruElem)
	c.evict()
}

// evict drops least-recently-used entries until the bounds hold. Leased
// instances are untracked while out; an evicted entry's stragglers are
// dropped at Put via the evicted flag.
func (c *Cache) evict() {
	for (len(c.entries) > c.cfg.MaxEntries || c.bytes > c.cfg.MaxBytes) && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*entry)
		var freed int64
		for _, p := range e.idle {
			c.bytes -= p.cost
			freed += p.cost
		}
		flight.Default.RecordStr(flight.KindPlanCacheEvict, 0, e.fp.Hex(), freed, 0)
		e.idle = nil
		e.evicted = true
		c.lru.Remove(back)
		delete(c.entries, e.fp)
		c.evictions++
		metrics.Default.PlanCacheEvicted(1)
	}
}

// Stats snapshots the cache.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.entries), Bytes: c.bytes,
	}
}

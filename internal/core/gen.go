package core

import (
	"fmt"

	"inkfuse/internal/ir"
)

// SubOp is one suboperator. Suboperators implement the same produce/consume
// style code generation found in traditional operator-fusing engines
// (paper §V-A), but at a much finer granularity — and every implementation
// satisfies the enumeration invariant: PrimitiveID identifies the
// instantiation within a finite, enumerable set.
type SubOp interface {
	// PrimitiveID names this suboperator's instantiation in the enumerable
	// primitive set, e.g. "expr_add_f64_cc". Two suboperators with the same
	// PrimitiveID generate identical code (paper §IV-A).
	PrimitiveID() string
	// Inputs lists consumed IUs in canonical order (the order the generated
	// primitive expects its input columns in).
	Inputs() []*IU
	// Outputs lists produced IUs in canonical order (the order the generated
	// primitive emits its output columns in).
	Outputs() []*IU
	// States lists the runtime state objects, in the order the generated
	// code references them (paper Fig 8). Nil entries are allowed on
	// prototype instances used for enumeration.
	States() []any
	// Consume generates this suboperator's code into g. Input IUs must
	// already be bound.
	Consume(g *Gen) error
}

// Gen is the code generation context of the compilation stack: it assembles
// the ir.Func for one step. The same Gen drives both uses of the stack —
// fusing a whole pipeline for the JIT backend, and wrapping a single
// suboperator between buffer source and sink to generate a vectorized
// primitive.
type Gen struct {
	fn     *ir.Func
	vars   map[int]ir.Var // IU ID -> bound variable
	nextID int
	states []any
	blocks []*[]ir.Stmt
	scopes []openScope
}

type openScope struct {
	filter *ir.FilterStmt
	probe  *ir.ProbeStmt
	parent int // index into blocks of the enclosing block
}

// NewGen creates a generation context for a step with the given name.
func NewGen(name string) *Gen {
	g := &Gen{fn: &ir.Func{Name: name}, vars: make(map[int]ir.Var)}
	g.blocks = []*[]ir.Stmt{&g.fn.Body}
	return g
}

// BindInput declares iu as a source-provided input of the step.
func (g *Gen) BindInput(iu *IU) {
	v := g.Def(iu)
	g.fn.Ins = append(g.fn.Ins, v)
}

// Def binds a fresh variable for an IU this suboperator defines.
func (g *Gen) Def(iu *IU) ir.Var {
	if _, ok := g.vars[iu.ID]; ok {
		panic(fmt.Sprintf("core: IU %s defined twice", iu))
	}
	g.nextID++
	v := ir.Var{ID: g.nextID, K: iu.K, Name: iu.Name}
	g.vars[iu.ID] = v
	return v
}

// Var returns the variable bound to an IU.
func (g *Gen) Var(iu *IU) (ir.Var, error) {
	v, ok := g.vars[iu.ID]
	if !ok {
		return ir.Var{}, fmt.Errorf("core: IU %s consumed before being produced", iu)
	}
	return v, nil
}

// AddState registers a runtime state object and returns its index in the
// step's state array.
func (g *Gen) AddState(obj any) int {
	g.states = append(g.states, obj)
	return len(g.states) - 1
}

// Append adds a statement to the current (innermost) block.
func (g *Gen) Append(s ir.Stmt) {
	blk := g.blocks[len(g.blocks)-1]
	*blk = append(*blk, s)
}

// OpenFilter pushes a filtered scope; subsequent statements generate inside
// it until the step is finished (scopes close at the end of the step — the
// pipelines of the supported plans nest scopes monotonically).
func (g *Gen) OpenFilter(f *ir.FilterStmt) {
	g.scopes = append(g.scopes, openScope{filter: f, parent: len(g.blocks) - 1})
	g.blocks = append(g.blocks, &f.Body)
}

// CurrentFilter returns the innermost open filter scope (for filter-copy
// suboperators attaching their copies), or nil.
func (g *Gen) CurrentFilter() *ir.FilterStmt {
	if len(g.scopes) == 0 {
		return nil
	}
	return g.scopes[len(g.scopes)-1].filter
}

// OpenProbe pushes a join-probe scope.
func (g *Gen) OpenProbe(p *ir.ProbeStmt) {
	g.scopes = append(g.scopes, openScope{probe: p, parent: len(g.blocks) - 1})
	g.blocks = append(g.blocks, &p.Body)
}

// Finish emits the step's sink (the listed IUs as output columns; nil for
// pure sinks like hash-table builds), closes all open scopes, and returns
// the completed function plus its runtime state array.
func (g *Gen) Finish(emit []*IU) (*ir.Func, []any, error) {
	if len(emit) > 0 {
		cols := make([]ir.Var, len(emit))
		for i, iu := range emit {
			v, err := g.Var(iu)
			if err != nil {
				return nil, nil, err
			}
			cols[i] = v
			g.fn.OutKinds = append(g.fn.OutKinds, iu.K)
		}
		g.Append(ir.EmitStmt{Cols: cols})
	}
	// Close scopes innermost-first: append each scope statement (whose body
	// is now complete) into its parent block.
	for i := len(g.scopes) - 1; i >= 0; i-- {
		sc := g.scopes[i]
		parent := g.blocks[sc.parent]
		if sc.filter != nil {
			*parent = append(*parent, *sc.filter)
		} else {
			*parent = append(*parent, *sc.probe)
		}
	}
	g.scopes = nil
	g.blocks = g.blocks[:1]
	g.fn.NumStates = len(g.states)
	return g.fn, g.states, nil
}

// GenStep runs the full compilation stack for one step: binds the source
// IUs, consumes each suboperator in order, and finishes with the sink.
// This single function is used for operator-fusing JIT compilation (ops =
// the whole pipeline) and for generating vectorized primitives (ops = one
// suboperator wrapped by the caller) — the paper's central engineering
// claim, §V-A: one compilation stack.
func GenStep(name string, sourceIUs []*IU, ops []SubOp, emit []*IU) (*ir.Func, []any, error) {
	g := NewGen(name)
	for _, iu := range sourceIUs {
		g.BindInput(iu)
	}
	for _, op := range ops {
		if err := op.Consume(g); err != nil {
			return nil, nil, fmt.Errorf("core: %s: %w", op.PrimitiveID(), err)
		}
	}
	return g.Finish(emit)
}

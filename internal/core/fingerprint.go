package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"

	"inkfuse/internal/rt"
)

// Fingerprint is a canonical 128-bit digest of a query shape. Two plans with
// the same fingerprint have identical suboperator structure — same primitive
// IDs, same dataflow, same state shapes — and differ at most in the values of
// parameterized runtime constants, so they can share compiled artifacts
// (the plancache contract).
type Fingerprint [16]byte

// Hex renders the fingerprint as 32 lowercase hex digits.
func (f Fingerprint) Hex() string { return hex.EncodeToString(f[:]) }

// String implements fmt.Stringer.
func (f Fingerprint) String() string { return f.Hex() }

// Hasher accumulates a canonical encoding into a Fingerprint. Both the
// algebra-tree fingerprint (the plancache key) and FingerprintPlan build on
// it; the encoding tags every field so adjacent writes cannot collide.
type Hasher struct {
	h   hash.Hash
	buf [10]byte
}

// NewHasher creates an empty Hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

// Str writes a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.Int(len(s))
	h.h.Write([]byte(s))
}

// Int writes a varint.
func (h *Hasher) Int(v int) {
	n := binary.PutVarint(h.buf[:], int64(v))
	h.h.Write(h.buf[:n])
}

// Bool writes one byte.
func (h *Hasher) Bool(b bool) {
	if b {
		h.Int(1)
	} else {
		h.Int(0)
	}
}

// Sum finalizes the digest (truncated to 128 bits).
func (h *Hasher) Sum() Fingerprint {
	var f Fingerprint
	copy(f[:], h.h.Sum(nil))
	return f
}

// planHasher numbers IUs and stateful objects densely in first-seen order so
// the encoding is independent of the process-global IU ID counter and of
// pointer values.
type planHasher struct {
	*Hasher
	ius    map[*IU]int
	states map[any]int
}

func (h *planHasher) iu(iu *IU) {
	if iu == nil {
		h.Int(-1)
		return
	}
	id, ok := h.ius[iu]
	if !ok {
		id = len(h.ius)
		h.ius[iu] = id
	}
	h.Int(id)
	h.Int(int(iu.K))
}

// ident densely numbers a shared state object (join/agg tables appear in
// several pipelines; the fingerprint must record which ops share which).
func (h *planHasher) ident(st any) int {
	id, ok := h.states[st]
	if !ok {
		id = len(h.states)
		h.states[st] = id
	}
	return id
}

func (h *planHasher) state(st any) error {
	switch s := st.(type) {
	case nil:
		h.Str("nil")
	case *rt.ConstState:
		// Values are deliberately excluded: a parameter-invariant shape hash.
		h.Str("const")
		h.Int(int(s.Kind))
	case *rt.LikeState:
		h.Str("like")
	case *rt.InListState:
		h.Str("inlist")
	case *rt.OffsetState:
		h.Str("off")
		h.Int(s.Off)
		if s.Layout != nil {
			h.Int(h.ident(s.Layout))
		} else {
			h.Int(-1)
		}
	case *rt.RowLayoutState:
		h.Str("layout")
		h.Int(h.ident(s))
		h.Int(s.KeyFixed)
		h.Int(s.PayloadFixed)
	case *rt.VarSlotState:
		h.Str("slot")
		h.Int(s.FixedWidth)
		h.Int(s.VarIdx)
	case *rt.AggTableState:
		h.Str("agg")
		h.Int(h.ident(s))
		h.Int(len(s.Init))
		h.Int(s.Shards)
		h.Int(s.Partitions)
		for _, m := range s.Merge {
			h.Int(int(m.Op))
			h.Int(m.Off)
		}
	case *rt.JoinTableState:
		h.Str("join")
		h.Int(h.ident(s))
		h.Int(s.Partitions)
	case *rt.ExchangeState:
		h.Str("exchange")
		h.Int(h.ident(s))
		h.Int(s.Partitions)
	default:
		return fmt.Errorf("core: cannot fingerprint state %T", st)
	}
	return nil
}

// FingerprintPlan digests a lowered plan's shape: primitive IDs, dataflow
// over densely renumbered IUs, and state shapes with runtime-constant values
// masked out. Plans lowered from the same parameterized query shape — same
// structure, different literal bindings — hash identically. The plan name is
// excluded.
func FingerprintPlan(p *Plan) (Fingerprint, error) {
	h := &planHasher{Hasher: NewHasher(), ius: make(map[*IU]int), states: make(map[any]int)}
	for _, pipe := range p.Pipelines {
		h.Str("pipeline")
		switch src := pipe.Source.(type) {
		case *TableScan:
			h.Str("tscan")
			h.Str(src.Table.Name)
			for i, c := range src.Cols {
				h.Int(c)
				h.iu(src.IUs[i])
			}
		case *AggRead:
			h.Str("aggread")
			if err := h.state(src.State); err != nil {
				return Fingerprint{}, err
			}
			h.iu(src.Out)
		case *ExchangeRead:
			h.Str("exchangeread")
			if err := h.state(src.State); err != nil {
				return Fingerprint{}, err
			}
			h.iu(src.Out)
		default:
			return Fingerprint{}, fmt.Errorf("core: cannot fingerprint source %T", pipe.Source)
		}
		for _, op := range pipe.Ops {
			h.Str(fmt.Sprintf("%T", op))
			h.Str(op.PrimitiveID())
			for _, iu := range op.Inputs() {
				h.iu(iu)
			}
			for _, iu := range op.Outputs() {
				h.iu(iu)
			}
			for _, st := range op.States() {
				if err := h.state(st); err != nil {
					return Fingerprint{}, err
				}
			}
		}
		h.Str("result")
		for _, iu := range pipe.Result {
			h.iu(iu)
		}
		h.Str("seal")
		for _, jt := range pipe.SealJoins {
			if err := h.state(jt); err != nil {
				return Fingerprint{}, err
			}
		}
		h.Str("merge")
		for _, fin := range pipe.MergeAggs {
			if err := h.state(fin.State); err != nil {
				return Fingerprint{}, err
			}
			h.Bool(fin.Keyless)
		}
		h.Str("xseal")
		for _, ex := range pipe.SealExchanges {
			if err := h.state(ex); err != nil {
				return Fingerprint{}, err
			}
		}
	}
	h.Str("cols")
	for _, c := range p.ColNames {
		h.Str(c)
	}
	if p.Sort != nil {
		h.Str("sort")
		for i, k := range p.Sort.Keys {
			h.Int(k)
			h.Bool(p.Sort.Desc[i])
		}
		h.Int(p.Sort.Limit)
	}
	return h.Sum(), nil
}

// ResetPlanState clears the per-execution mutable state baked into a lowered
// plan — sealed join tables, merged aggregate results, cardinality hints — so
// the plan (and any compiled artifacts referencing these state objects) can
// run again. Safe only once no execution references the plan.
func ResetPlanState(p *Plan) {
	seen := make(map[any]bool)
	resetOne := func(st any) {
		if st == nil || seen[st] {
			return
		}
		seen[st] = true
		switch s := st.(type) {
		case *rt.JoinTableState:
			s.Reset()
		case *rt.AggTableState:
			s.Reset()
		case *rt.ExchangeState:
			s.Reset()
		}
	}
	for _, pipe := range p.Pipelines {
		switch src := pipe.Source.(type) {
		case *AggRead:
			resetOne(src.State)
		case *ExchangeRead:
			resetOne(src.State)
		}
		for _, op := range pipe.Ops {
			for _, st := range op.States() {
				resetOne(st)
			}
		}
		for _, jt := range pipe.SealJoins {
			resetOne(jt)
		}
		for _, fin := range pipe.MergeAggs {
			resetOne(fin.State)
		}
		for _, ex := range pipe.SealExchanges {
			resetOne(ex)
		}
	}
}

// Package core implements the paper's primary contribution: the suboperator
// layer of Incremental Fusion (paper §IV). Relational operators are lowered
// into DAGs of fine-grained suboperators, each of which satisfies the
// *enumeration invariant* — its parameter space is finite — so the engine can
// enumerate every instantiation, wrap it between a tuple-buffer source and
// sink, and generate a complete vectorized interpreter ahead of time with the
// same compilation stack it uses for operator-fusing JIT compilation.
package core

import (
	"fmt"
	"sync/atomic"

	"inkfuse/internal/types"
)

// IU is an "information unit" (InkFuse terminology): a typed value flowing
// through a pipeline. In fused code an IU becomes a loop-local variable; in
// the vectorized interpreter it becomes a tuple-buffer column.
type IU struct {
	ID   int
	K    types.Kind
	Name string
}

var iuCounter atomic.Int64

// NewIU creates a fresh IU with a unique identity.
func NewIU(k types.Kind, name string) *IU {
	return &IU{ID: int(iuCounter.Add(1)), K: k, Name: name}
}

func (iu *IU) String() string {
	return fmt.Sprintf("%s#%d:%v", iu.Name, iu.ID, iu.K)
}

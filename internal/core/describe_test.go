package core

import (
	"strings"
	"testing"

	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

func TestDescribe(t *testing.T) {
	tbl := storage.NewTable("t", types.Schema{{Name: "a", Kind: types.Int64}})
	a := NewIU(types.Int64, "a")
	cond := NewIU(types.Bool, "cond")
	inner := NewIU(types.Int64, "a2")
	jt := &rt.JoinTableState{Table: rt.NewJoinTable(2)}
	agg := &rt.AggTableState{}
	p := &Plan{
		Name: "demo",
		Pipelines: []*Pipeline{
			{
				Name:   "p0",
				Source: &TableScan{Table: tbl, Cols: []int{0}, IUs: []*IU{a}},
				Ops: []SubOp{
					&Cmp{Op: ir.Gt, L: Col(a), R: ConstOf(rt.ConstI64(1)), Out: cond},
					&FilterScope{Cond: cond},
					&FilterCopy{Cond: cond, Src: a, Dst: inner},
					&JoinInsert{Row: NewIU(types.Ptr, "r"), State: jt},
				},
				SealJoins: []*rt.JoinTableState{jt},
			},
			{
				Name:      "p1",
				Source:    &AggRead{State: agg, Out: NewIU(types.Ptr, "g")},
				Result:    []*IU{inner},
				MergeAggs: []*AggFinalize{{State: agg}},
			},
		},
		Sort: &SortSpec{Keys: []int{0}, Desc: []bool{true}, Limit: 3},
	}
	s := p.Describe()
	for _, want := range []string{
		"plan demo: 2 pipeline(s)",
		"source: scan t(a)",
		"cmp_gt_i64_ck",
		"(fused into copies)",
		"filtercopy_i64",
		"join hash table build",
		"aggregate groups",
		"sink: result(a2)",
		"order by [0] desc=[true] limit=3",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("describe missing %q:\n%s", want, s)
		}
	}
}

func TestPlanFinalKinds(t *testing.T) {
	p := &Plan{Name: "empty"}
	if _, err := p.FinalKinds(); err == nil {
		t.Fatal("empty plan must error")
	}
	p.Pipelines = []*Pipeline{{Name: "sink"}}
	if _, err := p.FinalKinds(); err == nil {
		t.Fatal("sink-final plan must error")
	}
	out := NewIU(types.Float64, "x")
	p.Pipelines = append(p.Pipelines, &Pipeline{Name: "res", Result: []*IU{out}})
	ks, err := p.FinalKinds()
	if err != nil || len(ks) != 1 || ks[0] != types.Float64 {
		t.Fatalf("final kinds: %v %v", ks, err)
	}
}

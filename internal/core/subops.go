package core

import (
	"fmt"

	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/types"
)

// Operand is one expression input: a column IU or a runtime constant. The
// constant variants of the expression suboperators are what let the engine
// run queries with arbitrary literals while keeping the primitive set finite
// (paper §IV-C).
type Operand struct {
	IU    *IU
	Const *rt.ConstState
}

// Col makes a column operand.
func Col(iu *IU) Operand { return Operand{IU: iu} }

// ConstOf makes a constant operand.
func ConstOf(c *rt.ConstState) Operand { return Operand{Const: c} }

// Kind returns the operand's value kind.
func (o Operand) Kind() types.Kind {
	if o.IU != nil {
		return o.IU.K
	}
	return o.Const.Kind
}

func (o Operand) sideTag() string {
	if o.IU != nil {
		return "c"
	}
	return "k"
}

// expr lowers the operand to an IR expression inside g.
func (o Operand) expr(g *Gen) (ir.Expr, error) {
	if o.IU != nil {
		v, err := g.Var(o.IU)
		if err != nil {
			return nil, err
		}
		return ir.Ref(v), nil
	}
	return ir.ConstRef{StateID: g.AddState(o.Const), K: o.Const.Kind}, nil
}

func (o Operand) inputs() []*IU {
	if o.IU != nil {
		return []*IU{o.IU}
	}
	return nil
}

func (o Operand) states() []any {
	if o.Const != nil {
		return []any{o.Const}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Expression suboperators (paper §III, §IV-C)

// ScanCol materializes a source column — the table-scan primitive that reads
// base-table (or hash-table snapshot) data into the first tuple buffer
// (paper Fig 3, step 1). Fused pipelines skip it: source IUs bind directly.
type ScanCol struct {
	Src, Dst *IU
}

// PrimitiveID implements SubOp.
func (s *ScanCol) PrimitiveID() string { return "tscan_" + s.Src.K.String() }

// Inputs implements SubOp.
func (s *ScanCol) Inputs() []*IU { return []*IU{s.Src} }

// Outputs implements SubOp.
func (s *ScanCol) Outputs() []*IU { return []*IU{s.Dst} }

// States implements SubOp.
func (s *ScanCol) States() []any { return nil }

// Consume implements SubOp.
func (s *ScanCol) Consume(g *Gen) error {
	v, err := g.Var(s.Src)
	if err != nil {
		return err
	}
	g.Append(ir.Assign{Dst: g.Def(s.Dst), E: ir.Ref(v)})
	return nil
}

// Arith computes a binary arithmetic expression.
type Arith struct {
	Op   ir.BinOp
	L, R Operand
	Out  *IU
}

// PrimitiveID implements SubOp.
func (a *Arith) PrimitiveID() string {
	return fmt.Sprintf("expr_%v_%v_%s%s", a.Op, a.Out.K, a.L.sideTag(), a.R.sideTag())
}

// Inputs implements SubOp.
func (a *Arith) Inputs() []*IU { return append(a.L.inputs(), a.R.inputs()...) }

// Outputs implements SubOp.
func (a *Arith) Outputs() []*IU { return []*IU{a.Out} }

// States implements SubOp.
func (a *Arith) States() []any { return append(a.L.states(), a.R.states()...) }

// Consume implements SubOp.
func (a *Arith) Consume(g *Gen) error {
	l, err := a.L.expr(g)
	if err != nil {
		return err
	}
	r, err := a.R.expr(g)
	if err != nil {
		return err
	}
	g.Append(ir.Assign{Dst: g.Def(a.Out), E: ir.BinExpr{Op: a.Op, L: l, R: r}})
	return nil
}

// Cmp computes a comparison, producing a bool IU.
type Cmp struct {
	Op   ir.CmpOp
	L, R Operand
	Out  *IU
}

// PrimitiveID implements SubOp.
func (c *Cmp) PrimitiveID() string {
	return fmt.Sprintf("cmp_%v_%v_%s%s", c.Op, c.L.Kind(), c.L.sideTag(), c.R.sideTag())
}

// Inputs implements SubOp.
func (c *Cmp) Inputs() []*IU { return append(c.L.inputs(), c.R.inputs()...) }

// Outputs implements SubOp.
func (c *Cmp) Outputs() []*IU { return []*IU{c.Out} }

// States implements SubOp.
func (c *Cmp) States() []any { return append(c.L.states(), c.R.states()...) }

// Consume implements SubOp.
func (c *Cmp) Consume(g *Gen) error {
	l, err := c.L.expr(g)
	if err != nil {
		return err
	}
	r, err := c.R.expr(g)
	if err != nil {
		return err
	}
	g.Append(ir.Assign{Dst: g.Def(c.Out), E: ir.CmpExpr{Op: c.Op, L: l, R: r}})
	return nil
}

// Logic combines two bool IUs with AND/OR.
type Logic struct {
	Op   ir.LogicOp
	L, R *IU
	Out  *IU
}

// PrimitiveID implements SubOp.
func (l *Logic) PrimitiveID() string { return fmt.Sprintf("logic_%v", l.Op) }

// Inputs implements SubOp.
func (l *Logic) Inputs() []*IU { return []*IU{l.L, l.R} }

// Outputs implements SubOp.
func (l *Logic) Outputs() []*IU { return []*IU{l.Out} }

// States implements SubOp.
func (l *Logic) States() []any { return nil }

// Consume implements SubOp.
func (l *Logic) Consume(g *Gen) error {
	lv, err := g.Var(l.L)
	if err != nil {
		return err
	}
	rv, err := g.Var(l.R)
	if err != nil {
		return err
	}
	g.Append(ir.Assign{Dst: g.Def(l.Out), E: ir.LogicExpr{Op: l.Op, L: ir.Ref(lv), R: ir.Ref(rv)}})
	return nil
}

// Not negates a bool IU.
type Not struct {
	In, Out *IU
}

// PrimitiveID implements SubOp.
func (n *Not) PrimitiveID() string { return "not" }

// Inputs implements SubOp.
func (n *Not) Inputs() []*IU { return []*IU{n.In} }

// Outputs implements SubOp.
func (n *Not) Outputs() []*IU { return []*IU{n.Out} }

// States implements SubOp.
func (n *Not) States() []any { return nil }

// Consume implements SubOp.
func (n *Not) Consume(g *Gen) error {
	v, err := g.Var(n.In)
	if err != nil {
		return err
	}
	g.Append(ir.Assign{Dst: g.Def(n.Out), E: ir.NotExpr{E: ir.Ref(v)}})
	return nil
}

// Cast converts between numeric kinds.
type Cast struct {
	In, Out *IU
}

// PrimitiveID implements SubOp.
func (c *Cast) PrimitiveID() string { return fmt.Sprintf("cast_%v_%v", c.In.K, c.Out.K) }

// Inputs implements SubOp.
func (c *Cast) Inputs() []*IU { return []*IU{c.In} }

// Outputs implements SubOp.
func (c *Cast) Outputs() []*IU { return []*IU{c.Out} }

// States implements SubOp.
func (c *Cast) States() []any { return nil }

// Consume implements SubOp.
func (c *Cast) Consume(g *Gen) error {
	v, err := g.Var(c.In)
	if err != nil {
		return err
	}
	g.Append(ir.Assign{Dst: g.Def(c.Out), E: ir.CastExpr{To: c.Out.K, E: ir.Ref(v)}})
	return nil
}

// Like evaluates a LIKE / NOT LIKE pattern against a string IU.
type Like struct {
	In     *IU
	State  *rt.LikeState
	Negate bool
	Out    *IU
}

// PrimitiveID implements SubOp.
func (l *Like) PrimitiveID() string {
	if l.Negate {
		return "notlike"
	}
	return "like"
}

// Inputs implements SubOp.
func (l *Like) Inputs() []*IU { return []*IU{l.In} }

// Outputs implements SubOp.
func (l *Like) Outputs() []*IU { return []*IU{l.Out} }

// States implements SubOp.
func (l *Like) States() []any { return []any{l.State} }

// Consume implements SubOp.
func (l *Like) Consume(g *Gen) error {
	v, err := g.Var(l.In)
	if err != nil {
		return err
	}
	id := g.AddState(l.State)
	g.Append(ir.Assign{Dst: g.Def(l.Out), E: ir.LikeExpr{S: ir.Ref(v), StateID: id, Negate: l.Negate}})
	return nil
}

// InList tests string membership in a constant set (IN (...) predicates).
type InList struct {
	In    *IU
	State *rt.InListState
	Out   *IU
}

// PrimitiveID implements SubOp.
func (l *InList) PrimitiveID() string { return "inlist" }

// Inputs implements SubOp.
func (l *InList) Inputs() []*IU { return []*IU{l.In} }

// Outputs implements SubOp.
func (l *InList) Outputs() []*IU { return []*IU{l.Out} }

// States implements SubOp.
func (l *InList) States() []any { return []any{l.State} }

// Consume implements SubOp.
func (l *InList) Consume(g *Gen) error {
	v, err := g.Var(l.In)
	if err != nil {
		return err
	}
	id := g.AddState(l.State)
	g.Append(ir.Assign{Dst: g.Def(l.Out), E: ir.InListExpr{S: ir.Ref(v), StateID: id}})
	return nil
}

// ToLower maps a string to its lowercase equivalence-class representative —
// the normalization step of case-insensitive collations (paper §IV-D).
type ToLower struct {
	In, Out *IU
}

// PrimitiveID implements SubOp.
func (l *ToLower) PrimitiveID() string { return "strlower" }

// Inputs implements SubOp.
func (l *ToLower) Inputs() []*IU { return []*IU{l.In} }

// Outputs implements SubOp.
func (l *ToLower) Outputs() []*IU { return []*IU{l.Out} }

// States implements SubOp.
func (l *ToLower) States() []any { return nil }

// Consume implements SubOp.
func (l *ToLower) Consume(g *Gen) error {
	v, err := g.Var(l.In)
	if err != nil {
		return err
	}
	g.Append(ir.Assign{Dst: g.Def(l.Out), E: ir.StrLower{E: ir.Ref(v)}})
	return nil
}

// Case is a two-armed CASE WHEN expression.
type Case struct {
	Cond       *IU
	Then, Else Operand
	Out        *IU
}

// PrimitiveID implements SubOp.
func (c *Case) PrimitiveID() string {
	return fmt.Sprintf("case_%v_%s%s", c.Out.K, c.Then.sideTag(), c.Else.sideTag())
}

// Inputs implements SubOp.
func (c *Case) Inputs() []*IU {
	in := []*IU{c.Cond}
	in = append(in, c.Then.inputs()...)
	return append(in, c.Else.inputs()...)
}

// Outputs implements SubOp.
func (c *Case) Outputs() []*IU { return []*IU{c.Out} }

// States implements SubOp.
func (c *Case) States() []any { return append(c.Then.states(), c.Else.states()...) }

// Consume implements SubOp.
func (c *Case) Consume(g *Gen) error {
	cv, err := g.Var(c.Cond)
	if err != nil {
		return err
	}
	t, err := c.Then.expr(g)
	if err != nil {
		return err
	}
	e, err := c.Else.expr(g)
	if err != nil {
		return err
	}
	g.Append(ir.Assign{Dst: g.Def(c.Out), E: ir.CondExpr{Cond: ir.Ref(cv), Then: t, Else: e}})
	return nil
}

package core

import (
	"fmt"

	"inkfuse/internal/rt"
	"inkfuse/internal/types"
)

// VerifyPlan structurally checks a lowered plan's suboperator DAG before
// execution: every IU is defined before use and has a single producer,
// edge kinds are consistent, packed-row IUs are Ptr-typed, and the
// pipeline-breaker placement is sound (a join table is probed only after the
// pipeline that seals it; an aggregate is read only after the pipeline that
// merges it). Plan-construction tests call it directly, and
// exec.Options.VerifyIR runs it before every query.
//
// The per-backend IR (ir.Func) has its own verifier, ir.Verify; VerifyPlan
// checks the layer above — the suboperator graph all four backends consume.
func VerifyPlan(p *Plan) error {
	if p == nil {
		return fmt.Errorf("core: verify: nil plan")
	}
	if len(p.Pipelines) == 0 {
		return fmt.Errorf("core: verify %s: plan has no pipelines", p.Name)
	}

	v := &planVerifier{
		plan:       p,
		sealedAt:   map[*rt.JoinTableState]int{},
		mergedAt:   map[*rt.AggTableState]int{},
		routedAt:   map[*rt.ExchangeState]int{},
		pipeOfName: map[string]int{},
	}
	for i, pipe := range p.Pipelines {
		if err := v.pipeline(i, pipe); err != nil {
			return fmt.Errorf("core: verify %s/%s: %w", p.Name, pipe.Name, err)
		}
	}
	if err := v.final(); err != nil {
		return fmt.Errorf("core: verify %s: %w", p.Name, err)
	}
	return nil
}

type planVerifier struct {
	plan *Plan
	// sealedAt / mergedAt / routedAt record the pipeline index that seals a
	// join table / merges an aggregation / routes an exchange — the pipeline
	// breakers of the plan.
	sealedAt   map[*rt.JoinTableState]int
	mergedAt   map[*rt.AggTableState]int
	routedAt   map[*rt.ExchangeState]int
	pipeOfName map[string]int
}

func (v *planVerifier) pipeline(idx int, pipe *Pipeline) error {
	if pipe == nil {
		return fmt.Errorf("nil pipeline")
	}
	if prev, dup := v.pipeOfName[pipe.Name]; dup {
		return fmt.Errorf("duplicate pipeline name (also pipeline %d)", prev)
	}
	v.pipeOfName[pipe.Name] = idx

	// IU identity is the ID, not the pointer: lowering renames values across
	// projections by aliasing a fresh *IU onto an existing ID, and both the
	// fused-code generator and the VM key their bindings on it.
	defined := map[int]*IU{}
	use := func(iu *IU) error {
		prev, ok := defined[iu.ID]
		if !ok {
			return fmt.Errorf("input %s used before any producer defines it", iu)
		}
		if prev.K != iu.K {
			return fmt.Errorf("aliases %s and %s of IU %d disagree on kind", prev, iu, iu.ID)
		}
		return nil
	}
	if pipe.Source == nil {
		return fmt.Errorf("pipeline has no source")
	}
	// exSrc is set when this pipeline reads a sealed exchange: every table it
	// builds must then agree with the exchange's partition count (the routing
	// bits and the partitioned tables' dispatch must address the same parts).
	var exSrc *rt.ExchangeState
	switch s := pipe.Source.(type) {
	case *TableScan:
		if len(s.Cols) != len(s.IUs) {
			return fmt.Errorf("table scan binds %d columns to %d IUs", len(s.Cols), len(s.IUs))
		}
	case *AggRead:
		if s.Out == nil || s.Out.K != types.Ptr {
			return fmt.Errorf("aggregate read must produce a Ptr row IU")
		}
		at, ok := v.mergedAt[s.State]
		if !ok {
			return fmt.Errorf("reads an aggregate no earlier pipeline merges")
		}
		if at >= idx {
			return fmt.Errorf("reads an aggregate merged by pipeline %d, which does not run earlier", at)
		}
	case *ExchangeRead:
		if s.Out == nil || s.Out.K != types.Ptr {
			return fmt.Errorf("exchange read must produce a Ptr row IU")
		}
		at, ok := v.routedAt[s.State]
		if !ok {
			return fmt.Errorf("reads an exchange no earlier pipeline routes")
		}
		if at >= idx {
			return fmt.Errorf("reads an exchange routed by pipeline %d, which does not run earlier", at)
		}
		exSrc = s.State
	}
	for _, iu := range pipe.Source.SourceIUs() {
		if iu == nil {
			return fmt.Errorf("nil source IU")
		}
		if _, dup := defined[iu.ID]; dup {
			return fmt.Errorf("source IU %s bound twice", iu)
		}
		defined[iu.ID] = iu
	}

	built := map[*rt.JoinTableState]bool{}
	fedAggs := map[*rt.AggTableState]bool{}
	routed := map[*rt.ExchangeState]bool{}
	for oi, op := range pipe.Ops {
		if op == nil {
			return fmt.Errorf("op %d is nil", oi)
		}
		for _, in := range op.Inputs() {
			if in == nil {
				return fmt.Errorf("op %d (%T): nil input IU", oi, op)
			}
			if err := use(in); err != nil {
				return fmt.Errorf("op %d (%T): %w", oi, op, err)
			}
		}
		if err := opEdges(op); err != nil {
			return fmt.Errorf("op %d: %w", oi, err)
		}
		switch op := op.(type) {
		case *JoinInsert:
			built[op.State] = true
			if err := partitionAgreement(exSrc, op.State.Partitions, "join build"); err != nil {
				return fmt.Errorf("op %d (%T): %w", oi, op, err)
			}
		case *Prefetch:
			if err := v.probeOrder(idx, op.State); err != nil {
				return fmt.Errorf("op %d (%T): %w", oi, op, err)
			}
		case *JoinProbe:
			if err := v.probeOrder(idx, op.State); err != nil {
				return fmt.Errorf("op %d (%T): %w", oi, op, err)
			}
		case *AggLookup:
			fedAggs[op.State] = true
			if err := partitionAgreement(exSrc, op.State.Partitions, "aggregate build"); err != nil {
				return fmt.Errorf("op %d (%T): %w", oi, op, err)
			}
		case *AggLookupFixed:
			fedAggs[op.State] = true
			if op.State.Partitions > 0 {
				return fmt.Errorf("op %d (%T): fixed-key aggregate lookup cannot feed a partitioned table (no packed row to route)", oi, op)
			}
		case *Partition:
			if oi != len(pipe.Ops)-1 {
				return fmt.Errorf("op %d (%T): partition must be the final suboperator of its pipeline", oi, op)
			}
			routed[op.State] = true
		}
		for _, out := range op.Outputs() {
			if out == nil {
				return fmt.Errorf("op %d (%T): nil output IU", oi, op)
			}
			if _, dup := defined[out.ID]; dup {
				return fmt.Errorf("op %d (%T): IU %s has multiple producers", oi, op, out)
			}
			defined[out.ID] = out
		}
	}

	// Pipeline breakers: seals and merges belong to the pipeline that builds
	// the state, exactly once plan-wide.
	for _, js := range pipe.SealJoins {
		if !built[js] {
			return fmt.Errorf("seals a join table no JoinInsert in this pipeline builds")
		}
		if at, dup := v.sealedAt[js]; dup {
			return fmt.Errorf("join table already sealed by pipeline %d", at)
		}
		v.sealedAt[js] = idx
	}
	for js := range built {
		if _, ok := v.sealedAt[js]; !ok {
			return fmt.Errorf("builds a join table this pipeline never seals")
		}
	}
	for _, fin := range pipe.MergeAggs {
		if fin == nil || fin.State == nil {
			return fmt.Errorf("nil aggregate finalize")
		}
		if !fedAggs[fin.State] && !fin.Keyless {
			return fmt.Errorf("merges an aggregate no lookup in this pipeline feeds")
		}
		if at, dup := v.mergedAt[fin.State]; dup {
			return fmt.Errorf("aggregate already merged by pipeline %d", at)
		}
		v.mergedAt[fin.State] = idx
	}
	for st := range fedAggs {
		if _, ok := v.mergedAt[st]; !ok {
			return fmt.Errorf("feeds an aggregate this pipeline never merges")
		}
	}
	for _, ex := range pipe.SealExchanges {
		if ex == nil {
			return fmt.Errorf("nil exchange seal")
		}
		if !routed[ex] {
			return fmt.Errorf("seals an exchange no Partition in this pipeline routes")
		}
		if ex.Partitions < 1 {
			return fmt.Errorf("exchange declares %d partitions; need at least 1", ex.Partitions)
		}
		if at, dup := v.routedAt[ex]; dup {
			return fmt.Errorf("exchange already routed by pipeline %d", at)
		}
		v.routedAt[ex] = idx
	}
	for ex := range routed {
		if _, ok := v.routedAt[ex]; !ok {
			return fmt.Errorf("routes an exchange this pipeline never seals")
		}
	}

	// Sinks: a pipeline either materializes its Result IUs or exists for its
	// side effects (hash-table builds).
	if pipe.Result == nil {
		if len(pipe.SealJoins)+len(pipe.MergeAggs)+len(pipe.SealExchanges) == 0 {
			return fmt.Errorf("sink pipeline has neither result IUs nor table side effects")
		}
	} else {
		for _, iu := range pipe.Result {
			if iu == nil {
				return fmt.Errorf("nil result IU")
			}
			if err := use(iu); err != nil {
				if _, ok := defined[iu.ID]; !ok {
					return fmt.Errorf("result IU %s is never materialized", iu)
				}
				return err
			}
		}
	}
	return nil
}

// partitionAgreement checks a table build against its pipeline's source: a
// partitioned table must be fed from an exchange read of the same partition
// count (the routing bits address exactly the table's parts), and a pipeline
// that reads an exchange must build into partitioned tables — otherwise the
// single-writer-per-partition discipline the exchange establishes is lost.
func partitionAgreement(ex *rt.ExchangeState, stateParts int, role string) error {
	if ex == nil {
		if stateParts > 0 {
			return fmt.Errorf("%s declares %d partitions but its pipeline source is not an exchange read", role, stateParts)
		}
		return nil
	}
	if stateParts <= 0 {
		return fmt.Errorf("%s is unpartitioned but its pipeline reads a %d-partition exchange", role, ex.Partitions)
	}
	if rt.NormalizePartitions(stateParts) != rt.NormalizePartitions(ex.Partitions) {
		return fmt.Errorf("%s partition count %d disagrees with the exchange's %d", role, stateParts, ex.Partitions)
	}
	return nil
}

// probeOrder checks a probe/prefetch reads a table sealed by a strictly
// earlier pipeline — the pipeline-breaker placement rule.
func (v *planVerifier) probeOrder(idx int, st *rt.JoinTableState) error {
	at, ok := v.sealedAt[st]
	if !ok {
		return fmt.Errorf("probes a join table no earlier pipeline seals")
	}
	if at >= idx {
		return fmt.Errorf("probes a join table sealed in the same pipeline (missing pipeline breaker)")
	}
	return nil
}

// opEdges checks the kind consistency the suboperator's primitive assumes.
func opEdges(op SubOp) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("(%T): %w", op, fmt.Errorf(format, args...))
	}
	wantBool := func(role string, iu *IU) error {
		if iu != nil && iu.K != types.Bool {
			return bad("%s %s must be Bool, got %v", role, iu, iu.K)
		}
		return nil
	}
	wantPtr := func(role string, iu *IU) error {
		if iu != nil && iu.K != types.Ptr {
			return bad("%s %s must be a Ptr packed row, got %v", role, iu, iu.K)
		}
		return nil
	}
	switch op := op.(type) {
	case *ScanCol:
		if op.Src.K != op.Dst.K {
			return bad("scan copies %v into %v", op.Src.K, op.Dst.K)
		}
	case *FilterScope:
		return wantBool("filter condition", op.Cond)
	case *FilterCopy:
		if err := wantBool("filter condition", op.Cond); err != nil {
			return err
		}
		if op.Src.K != op.Dst.K {
			return bad("filter copies %v into %v", op.Src.K, op.Dst.K)
		}
	case *Cmp:
		if op.L.Kind() != op.R.Kind() {
			return bad("comparison of %v against %v", op.L.Kind(), op.R.Kind())
		}
		return wantBool("comparison output", op.Out)
	case *Logic:
		for _, iu := range []*IU{op.L, op.R, op.Out} {
			if err := wantBool("logic operand", iu); err != nil {
				return err
			}
		}
	case *Not:
		if err := wantBool("not input", op.In); err != nil {
			return err
		}
		return wantBool("not output", op.Out)
	case *Arith:
		if op.L.Kind() != op.R.Kind() {
			return bad("arithmetic over %v and %v", op.L.Kind(), op.R.Kind())
		}
	case *MakeRow:
		return wantPtr("row output", op.Out)
	case *PackFixed:
		if err := wantPtr("row input", op.Row); err != nil {
			return err
		}
		return wantPtr("row output", op.Out)
	case *PackStr:
		if err := wantPtr("row input", op.Row); err != nil {
			return err
		}
		return wantPtr("row output", op.Out)
	case *SealKey:
		if err := wantPtr("row input", op.Row); err != nil {
			return err
		}
		return wantPtr("row output", op.Out)
	case *AggLookup:
		if err := wantPtr("key row", op.Row); err != nil {
			return err
		}
		return wantPtr("group row", op.Out)
	case *AggLookupFixed:
		return wantPtr("group row", op.Out)
	case *AggUpdate:
		return wantPtr("group row", op.Group)
	case *JoinInsert:
		return wantPtr("build row", op.Row)
	case *Partition:
		return wantPtr("routed row", op.Row)
	case *Prefetch:
		return wantPtr("probe row", op.Row)
	case *JoinProbe:
		if err := wantPtr("probe row", op.Row); err != nil {
			return err
		}
		if err := wantPtr("build match row", op.BuildOut); err != nil {
			return err
		}
		if err := wantPtr("probe match row", op.ProbeOut); err != nil {
			return err
		}
		return wantBool("matched marker", op.MatchedOut)
	case *UnpackFixed:
		return wantPtr("row input", op.Row)
	case *UnpackStr:
		return wantPtr("row input", op.Row)
	}
	return nil
}

// final checks the plan-level sink: result schema and ordering.
func (v *planVerifier) final() error {
	kinds, err := v.plan.FinalKinds()
	if err != nil {
		return err
	}
	if len(v.plan.ColNames) != 0 && len(v.plan.ColNames) != len(kinds) {
		return fmt.Errorf("%d column names for %d result columns", len(v.plan.ColNames), len(kinds))
	}
	if s := v.plan.Sort; s != nil {
		if len(s.Desc) != 0 && len(s.Desc) != len(s.Keys) {
			return fmt.Errorf("sort has %d keys but %d desc flags", len(s.Keys), len(s.Desc))
		}
		for _, k := range s.Keys {
			if k < 0 || k >= len(kinds) {
				return fmt.Errorf("sort key %d outside the %d result columns", k, len(kinds))
			}
		}
	}
	return nil
}

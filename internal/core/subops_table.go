package core

import (
	"fmt"

	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
)

// Suboperators that interact with the runtime system: filters (paper §IV-B),
// packed-row building and hash tables (paper §IV-D), and joins (paper §IV-E).

// FilterScope generates the branch on a boolean column (the first of the
// n+1 suboperators a relational filter breaks into, paper Fig 4). It has no
// parameters — filtering is always on a bool column — and no primitive of
// its own: the per-type FilterCopy primitives embed the branch.
//
//inklint:allow enumerate — FilterScope has no standalone primitive; the branch is fused into every FilterCopy instantiation
type FilterScope struct {
	Cond *IU
}

// PrimitiveID implements SubOp; the scope is fused into the copy primitives.
func (f *FilterScope) PrimitiveID() string { return "" }

// Inputs implements SubOp.
func (f *FilterScope) Inputs() []*IU { return []*IU{f.Cond} }

// Outputs implements SubOp.
func (f *FilterScope) Outputs() []*IU { return nil }

// States implements SubOp.
func (f *FilterScope) States() []any { return nil }

// Consume implements SubOp.
func (f *FilterScope) Consume(g *Gen) error {
	v, err := g.Var(f.Cond)
	if err != nil {
		return err
	}
	g.OpenFilter(&ir.FilterStmt{Cond: v})
	return nil
}

// FilterCopy carries one column into the filtered scope — dense-chunk
// compaction in the vectorized interpreter, a free register rebind in fused
// code (paper Fig 4: one copy suboperator per filtered column).
type FilterCopy struct {
	Cond     *IU // the scope's condition (input dependency on the branch)
	Src, Dst *IU
}

// PrimitiveID implements SubOp.
func (f *FilterCopy) PrimitiveID() string { return "filtercopy_" + f.Src.K.String() }

// Inputs implements SubOp.
func (f *FilterCopy) Inputs() []*IU { return []*IU{f.Cond, f.Src} }

// Outputs implements SubOp.
func (f *FilterCopy) Outputs() []*IU { return []*IU{f.Dst} }

// States implements SubOp.
func (f *FilterCopy) States() []any { return nil }

// Consume implements SubOp.
func (f *FilterCopy) Consume(g *Gen) error {
	fs := g.CurrentFilter()
	if fs == nil {
		return fmt.Errorf("filter copy outside a filter scope")
	}
	src, err := g.Var(f.Src)
	if err != nil {
		return err
	}
	fs.Copies = append(fs.Copies, ir.Copy{Dst: g.Def(f.Dst), Src: src})
	return nil
}

// MakeRow allocates the packed row each tuple's key (and payload) is built
// into. Anchor ties the suboperator to its scope's cardinality.
type MakeRow struct {
	Anchor *IU
	Layout *rt.RowLayoutState
	Out    *IU
}

// PrimitiveID implements SubOp.
func (m *MakeRow) PrimitiveID() string { return "makerow" }

// Inputs implements SubOp.
func (m *MakeRow) Inputs() []*IU { return []*IU{m.Anchor} }

// Outputs implements SubOp.
func (m *MakeRow) Outputs() []*IU { return []*IU{m.Out} }

// States implements SubOp.
func (m *MakeRow) States() []any { return []any{m.Layout} }

// Consume implements SubOp.
func (m *MakeRow) Consume(g *Gen) error {
	if _, err := g.Var(m.Anchor); err != nil {
		return err
	}
	g.Append(ir.MakeRow{Dst: g.Def(m.Out), StateID: g.AddState(m.Layout)})
	return nil
}

// PackFixed writes a fixed-width IU into a packed row at a runtime-resolved
// offset (paper Fig 6: key packing with offsets in suboperator state).
type PackFixed struct {
	Row    *IU
	Val    *IU
	Region ir.Region
	Off    *rt.OffsetState
	Out    *IU // refreshed row handle
}

// PrimitiveID implements SubOp.
func (p *PackFixed) PrimitiveID() string {
	return fmt.Sprintf("pack_%v_%v", p.Region, p.Val.K)
}

// Inputs implements SubOp.
func (p *PackFixed) Inputs() []*IU { return []*IU{p.Row, p.Val} }

// Outputs implements SubOp.
func (p *PackFixed) Outputs() []*IU { return []*IU{p.Out} }

// States implements SubOp.
func (p *PackFixed) States() []any { return []any{p.Off} }

// Consume implements SubOp.
func (p *PackFixed) Consume(g *Gen) error {
	row, err := g.Var(p.Row)
	if err != nil {
		return err
	}
	val, err := g.Var(p.Val)
	if err != nil {
		return err
	}
	g.Append(ir.PackFixed{
		Dst: g.Def(p.Out), Row: row, Region: p.Region,
		StateID: g.AddState(p.Off), Val: ir.Ref(val),
	})
	return nil
}

// PackStr appends a string IU to a packed row region, length-prefixed.
type PackStr struct {
	Row    *IU
	Val    *IU
	Region ir.Region
	Off    *rt.OffsetState // carries the owning layout
	Out    *IU
}

// PrimitiveID implements SubOp.
func (p *PackStr) PrimitiveID() string { return fmt.Sprintf("packstr_%v", p.Region) }

// Inputs implements SubOp.
func (p *PackStr) Inputs() []*IU { return []*IU{p.Row, p.Val} }

// Outputs implements SubOp.
func (p *PackStr) Outputs() []*IU { return []*IU{p.Out} }

// States implements SubOp.
func (p *PackStr) States() []any { return []any{p.Off} }

// Consume implements SubOp.
func (p *PackStr) Consume(g *Gen) error {
	row, err := g.Var(p.Row)
	if err != nil {
		return err
	}
	val, err := g.Var(p.Val)
	if err != nil {
		return err
	}
	g.Append(ir.PackStr{
		Dst: g.Def(p.Out), Row: row, Region: p.Region,
		StateID: g.AddState(p.Off), Val: ir.Ref(val),
	})
	return nil
}

// SealKey freezes a packed row's key blob and reserves its payload region.
type SealKey struct {
	Row    *IU
	Layout *rt.RowLayoutState
	Out    *IU
}

// PrimitiveID implements SubOp.
func (s *SealKey) PrimitiveID() string { return "sealkey" }

// Inputs implements SubOp.
func (s *SealKey) Inputs() []*IU { return []*IU{s.Row} }

// Outputs implements SubOp.
func (s *SealKey) Outputs() []*IU { return []*IU{s.Out} }

// States implements SubOp.
func (s *SealKey) States() []any { return []any{s.Layout} }

// Consume implements SubOp.
func (s *SealKey) Consume(g *Gen) error {
	row, err := g.Var(s.Row)
	if err != nil {
		return err
	}
	g.Append(ir.SealKey{Dst: g.Def(s.Out), Row: row, StateID: g.AddState(s.Layout)})
	return nil
}

// AggLookup finds-or-creates the aggregation group for a packed key. The
// hash table resolves collisions internally, so the suboperator — and the
// code it generates — is identical for the fused and vectorized backends
// (paper §IV-D).
type AggLookup struct {
	Row   *IU
	State *rt.AggTableState
	Out   *IU
}

// PrimitiveID implements SubOp.
func (a *AggLookup) PrimitiveID() string { return "agglookup" }

// Inputs implements SubOp.
func (a *AggLookup) Inputs() []*IU { return []*IU{a.Row} }

// Outputs implements SubOp.
func (a *AggLookup) Outputs() []*IU { return []*IU{a.Out} }

// States implements SubOp.
func (a *AggLookup) States() []any { return []any{a.State} }

// Consume implements SubOp.
func (a *AggLookup) Consume(g *Gen) error {
	row, err := g.Var(a.Row)
	if err != nil {
		return err
	}
	g.Append(ir.AggLookup{Dst: g.Def(a.Out), Row: row, StateID: g.AddState(a.State)})
	return nil
}

// AggLookupFixed is the single-column key fast path of the aggregation
// (paper §IV-D): when the grouping key is one fixed-width column, no packing
// happens — the raw column value probes the table directly.
type AggLookupFixed struct {
	Key   *IU
	State *rt.AggTableState
	Out   *IU
}

// PrimitiveID implements SubOp.
func (a *AggLookupFixed) PrimitiveID() string { return "agglookupfixed_" + a.Key.K.String() }

// Inputs implements SubOp.
func (a *AggLookupFixed) Inputs() []*IU { return []*IU{a.Key} }

// Outputs implements SubOp.
func (a *AggLookupFixed) Outputs() []*IU { return []*IU{a.Out} }

// States implements SubOp.
func (a *AggLookupFixed) States() []any { return []any{a.State} }

// Consume implements SubOp.
func (a *AggLookupFixed) Consume(g *Gen) error {
	key, err := g.Var(a.Key)
	if err != nil {
		return err
	}
	g.Append(ir.AggLookupFixed{Dst: g.Def(a.Out), Key: key, StateID: g.AddState(a.State)})
	return nil
}

// AggUpdate folds one value into one aggregate slot of the group row.
type AggUpdate struct {
	Group *IU
	Fn    ir.AggFunc
	Off   *rt.OffsetState
	Val   *IU // nil for AggCount
}

// PrimitiveID implements SubOp.
func (a *AggUpdate) PrimitiveID() string { return fmt.Sprintf("aggupdate_%v", a.Fn) }

// Inputs implements SubOp.
func (a *AggUpdate) Inputs() []*IU {
	if a.Val == nil {
		return []*IU{a.Group}
	}
	return []*IU{a.Group, a.Val}
}

// Outputs implements SubOp.
func (a *AggUpdate) Outputs() []*IU { return nil }

// States implements SubOp.
func (a *AggUpdate) States() []any { return []any{a.Off} }

// Consume implements SubOp.
func (a *AggUpdate) Consume(g *Gen) error {
	grp, err := g.Var(a.Group)
	if err != nil {
		return err
	}
	var val ir.Expr
	if a.Val != nil {
		v, err := g.Var(a.Val)
		if err != nil {
			return err
		}
		val = ir.Ref(v)
	}
	g.Append(ir.AggUpdate{Group: grp, Fn: a.Fn, StateID: g.AddState(a.Off), Val: val})
	return nil
}

// JoinInsert inserts a packed build row into a join hash table.
type JoinInsert struct {
	Row   *IU
	State *rt.JoinTableState
}

// PrimitiveID implements SubOp.
func (j *JoinInsert) PrimitiveID() string { return "joininsert" }

// Inputs implements SubOp.
func (j *JoinInsert) Inputs() []*IU { return []*IU{j.Row} }

// Outputs implements SubOp.
func (j *JoinInsert) Outputs() []*IU { return nil }

// States implements SubOp.
func (j *JoinInsert) States() []any { return []any{j.State} }

// Consume implements SubOp.
func (j *JoinInsert) Consume(g *Gen) error {
	row, err := g.Var(j.Row)
	if err != nil {
		return err
	}
	g.Append(ir.JoinInsert{Row: row, StateID: g.AddState(j.State)})
	return nil
}

// Partition is the local hash-partitioned exchange sink (DESIGN.md §15): at a
// pipeline break it hash-routes each packed row into one of the exchange's
// per-partition tuple buffers. The downstream pipeline reads the partitions
// back through an ExchangeRead source, one morsel per partition, giving every
// partitioned hash table a single sequential writer. Because it consumes an
// abstract packed row it respects the enumeration invariant.
type Partition struct {
	Row   *IU
	State *rt.ExchangeState
}

// PrimitiveID implements SubOp.
func (p *Partition) PrimitiveID() string { return "partition" }

// Inputs implements SubOp.
func (p *Partition) Inputs() []*IU { return []*IU{p.Row} }

// Outputs implements SubOp.
func (p *Partition) Outputs() []*IU { return nil }

// States implements SubOp.
func (p *Partition) States() []any { return []any{p.State} }

// Consume implements SubOp.
func (p *Partition) Consume(g *Gen) error {
	row, err := g.Var(p.Row)
	if err != nil {
		return err
	}
	g.Append(ir.Partition{Row: row, StateID: g.AddState(p.State)})
	return nil
}

// Prefetch touches hash-table buckets for a staged chunk of probe keys — the
// dedicated ROF prefetch step (paper §VII, ROF backend).
type Prefetch struct {
	Row   *IU
	State *rt.JoinTableState
}

// PrimitiveID implements SubOp.
func (p *Prefetch) PrimitiveID() string { return "prefetch" }

// Inputs implements SubOp.
func (p *Prefetch) Inputs() []*IU { return []*IU{p.Row} }

// Outputs implements SubOp.
func (p *Prefetch) Outputs() []*IU { return nil }

// States implements SubOp.
func (p *Prefetch) States() []any { return []any{p.State} }

// Consume implements SubOp.
func (p *Prefetch) Consume(g *Gen) error {
	row, err := g.Var(p.Row)
	if err != nil {
		return err
	}
	g.Append(ir.Prefetch{Row: row, StateID: g.AddState(p.State)})
	return nil
}

// JoinProbe probes a join hash table with the key of a packed probe row and
// opens a per-match scope. It returns two values in row layout — the matched
// build row and the probe row — from which downstream unpack suboperators
// recover columns (paper §IV-E). Because it operates on abstract packed rows
// it respects the enumeration invariant.
type JoinProbe struct {
	Row        *IU
	State      *rt.JoinTableState
	Mode       ir.JoinMode
	BuildOut   *IU // Inner/LeftOuter
	ProbeOut   *IU
	MatchedOut *IU // LeftOuter only
}

// PrimitiveID implements SubOp.
func (j *JoinProbe) PrimitiveID() string { return fmt.Sprintf("joinprobe_%v", j.Mode) }

// Inputs implements SubOp.
func (j *JoinProbe) Inputs() []*IU { return []*IU{j.Row} }

// Outputs implements SubOp.
func (j *JoinProbe) Outputs() []*IU {
	switch j.Mode {
	case ir.SemiJoin, ir.AntiJoin:
		return []*IU{j.ProbeOut}
	case ir.LeftOuterJoin:
		return []*IU{j.BuildOut, j.ProbeOut, j.MatchedOut}
	default:
		return []*IU{j.BuildOut, j.ProbeOut}
	}
}

// States implements SubOp.
func (j *JoinProbe) States() []any { return []any{j.State} }

// Consume implements SubOp.
func (j *JoinProbe) Consume(g *Gen) error {
	row, err := g.Var(j.Row)
	if err != nil {
		return err
	}
	p := &ir.ProbeStmt{
		StateID:  g.AddState(j.State),
		Mode:     j.Mode,
		ProbeRow: row,
		Probe:    g.Def(j.ProbeOut),
	}
	if j.Mode == ir.InnerJoin || j.Mode == ir.LeftOuterJoin {
		p.Build = g.Def(j.BuildOut)
	}
	if j.Mode == ir.LeftOuterJoin {
		p.Matched = g.Def(j.MatchedOut)
	}
	g.OpenProbe(p)
	return nil
}

// UnpackFixed reads a fixed-width column back out of a packed row.
type UnpackFixed struct {
	Row    *IU
	Region ir.Region
	Off    *rt.OffsetState
	Out    *IU
}

// PrimitiveID implements SubOp.
func (u *UnpackFixed) PrimitiveID() string {
	return fmt.Sprintf("unpack_%v_%v", u.Region, u.Out.K)
}

// Inputs implements SubOp.
func (u *UnpackFixed) Inputs() []*IU { return []*IU{u.Row} }

// Outputs implements SubOp.
func (u *UnpackFixed) Outputs() []*IU { return []*IU{u.Out} }

// States implements SubOp.
func (u *UnpackFixed) States() []any { return []any{u.Off} }

// Consume implements SubOp.
func (u *UnpackFixed) Consume(g *Gen) error {
	row, err := g.Var(u.Row)
	if err != nil {
		return err
	}
	g.Append(ir.Assign{Dst: g.Def(u.Out), E: ir.UnpackFixed{
		Row: ir.Ref(row), Region: u.Region, StateID: g.AddState(u.Off), K: u.Out.K,
	}})
	return nil
}

// UnpackStr reads a variable-size column back out of a packed row.
type UnpackStr struct {
	Row    *IU
	Region ir.Region
	Slot   *rt.VarSlotState
	Out    *IU
}

// PrimitiveID implements SubOp.
func (u *UnpackStr) PrimitiveID() string { return fmt.Sprintf("unpackstr_%v", u.Region) }

// Inputs implements SubOp.
func (u *UnpackStr) Inputs() []*IU { return []*IU{u.Row} }

// Outputs implements SubOp.
func (u *UnpackStr) Outputs() []*IU { return []*IU{u.Out} }

// States implements SubOp.
func (u *UnpackStr) States() []any { return []any{u.Slot} }

// Consume implements SubOp.
func (u *UnpackStr) Consume(g *Gen) error {
	row, err := g.Var(u.Row)
	if err != nil {
		return err
	}
	g.Append(ir.Assign{Dst: g.Def(u.Out), E: ir.UnpackStr{
		Row: ir.Ref(row), Region: u.Region, StateID: g.AddState(u.Slot),
	}})
	return nil
}

package core

import (
	"fmt"

	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/types"
)

// BuildPrimitive wraps a single suboperator between a tuple-buffer source and
// sink and runs it through the regular compilation stack, yielding the
// suboperator's vectorized primitive (paper §III, step (2)-(3)). The
// vectorized interpreter is generated this way for every enumerated
// suboperator at engine startup.
func BuildPrimitive(op SubOp) (*ir.Func, error) {
	id := op.PrimitiveID()
	if id == "" {
		return nil, fmt.Errorf("core: suboperator has no primitive form")
	}
	g := NewGen("prim_" + id)
	for _, iu := range op.Inputs() {
		g.BindInput(iu)
	}
	// The filter-copy primitive embeds its branch: the scope suboperator has
	// no primitive of its own (paper §IV-B).
	if fc, ok := op.(*FilterCopy); ok {
		scope := &FilterScope{Cond: fc.Cond}
		if err := scope.Consume(g); err != nil {
			return nil, err
		}
	}
	if err := op.Consume(g); err != nil {
		return nil, fmt.Errorf("core: primitive %s: %w", id, err)
	}
	f, _, err := g.Finish(op.Outputs())
	return f, err
}

// Enumerate returns one prototype instance of every possible suboperator
// instantiation — the concrete witness of the enumeration invariant
// (paper §IV-A). The engine generates the complete vectorized interpreter by
// building a primitive for each returned suboperator.
//
//inklint:enumerate core.SubOp
func Enumerate() []SubOp {
	var out []SubOp

	iu := func(k types.Kind) *IU { return NewIU(k, "p") }
	dummyConst := func(k types.Kind) *rt.ConstState { return &rt.ConstState{Kind: k} }

	// Source materialization: one scan primitive per kind, plus the packed
	// group rows of aggregate scans.
	scanKinds := append([]types.Kind{}, types.ScalarKinds...)
	scanKinds = append(scanKinds, types.Ptr)
	for _, k := range scanKinds {
		out = append(out, &ScanCol{Src: iu(k), Dst: iu(k)})
	}

	// Arithmetic: op x kind x operand sides (column/column, column/constant,
	// constant/column).
	arithKinds := []types.Kind{types.Int32, types.Int64, types.Float64}
	for _, op := range []ir.BinOp{ir.Add, ir.Sub, ir.Mul, ir.Div} {
		for _, k := range arithKinds {
			out = append(out,
				&Arith{Op: op, L: Col(iu(k)), R: Col(iu(k)), Out: iu(k)},
				&Arith{Op: op, L: Col(iu(k)), R: ConstOf(dummyConst(k)), Out: iu(k)},
				&Arith{Op: op, L: ConstOf(dummyConst(k)), R: Col(iu(k)), Out: iu(k)},
			)
		}
	}

	// Comparisons.
	cmpKinds := []types.Kind{types.Int32, types.Int64, types.Float64, types.Date, types.String}
	for op := ir.Lt; op <= ir.Gt; op++ {
		for _, k := range cmpKinds {
			out = append(out,
				&Cmp{Op: op, L: Col(iu(k)), R: Col(iu(k)), Out: iu(types.Bool)},
				&Cmp{Op: op, L: Col(iu(k)), R: ConstOf(dummyConst(k)), Out: iu(types.Bool)},
				&Cmp{Op: op, L: ConstOf(dummyConst(k)), R: Col(iu(k)), Out: iu(types.Bool)},
			)
		}
	}

	// Boolean connectives.
	out = append(out,
		&Logic{Op: ir.And, L: iu(types.Bool), R: iu(types.Bool), Out: iu(types.Bool)},
		&Logic{Op: ir.Or, L: iu(types.Bool), R: iu(types.Bool), Out: iu(types.Bool)},
		&Not{In: iu(types.Bool), Out: iu(types.Bool)},
	)

	// Casts.
	for _, c := range [][2]types.Kind{
		{types.Int32, types.Int64},
		{types.Int32, types.Float64},
		{types.Int64, types.Float64},
		{types.Int64, types.Int32},
	} {
		out = append(out, &Cast{In: iu(c[0]), Out: iu(c[1])})
	}

	// String predicates and normalization.
	out = append(out,
		&Like{In: iu(types.String), State: &rt.LikeState{M: rt.NewLikeMatcher("%")}, Out: iu(types.Bool)},
		&Like{In: iu(types.String), State: &rt.LikeState{M: rt.NewLikeMatcher("%")}, Negate: true, Out: iu(types.Bool)},
		&InList{In: iu(types.String), State: rt.NewInList(), Out: iu(types.Bool)},
		&ToLower{In: iu(types.String), Out: iu(types.String)},
	)

	// CASE WHEN: kind x then/else operand sides. Fresh IUs per prototype:
	// a prototype's inputs must be distinct.
	for _, k := range types.ScalarKinds {
		side := func(isCol bool) Operand {
			if isCol {
				return Col(iu(k))
			}
			return ConstOf(dummyConst(k))
		}
		for _, tCol := range []bool{true, false} {
			for _, eCol := range []bool{true, false} {
				out = append(out, &Case{Cond: iu(types.Bool), Then: side(tCol), Else: side(eCol), Out: iu(k)})
			}
		}
	}

	// Filter copies: one per copied kind (paper Fig 4).
	fcKinds := append([]types.Kind{}, types.ScalarKinds...)
	fcKinds = append(fcKinds, types.Ptr)
	for _, k := range fcKinds {
		out = append(out, &FilterCopy{Cond: iu(types.Bool), Src: iu(k), Dst: iu(k)})
	}

	// Packed-row building.
	layout := &rt.RowLayoutState{}
	out = append(out,
		&MakeRow{Anchor: iu(types.Int64), Layout: layout, Out: iu(types.Ptr)},
		&SealKey{Row: iu(types.Ptr), Layout: layout, Out: iu(types.Ptr)},
	)
	for _, region := range []ir.Region{ir.KeyRegion, ir.PayloadRegion} {
		for _, k := range types.FixedKinds {
			out = append(out, &PackFixed{Row: iu(types.Ptr), Val: iu(k), Region: region,
				Off: &rt.OffsetState{Layout: layout}, Out: iu(types.Ptr)})
		}
		out = append(out, &PackStr{Row: iu(types.Ptr), Val: iu(types.String), Region: region,
			Off: &rt.OffsetState{Layout: layout}, Out: iu(types.Ptr)})
	}

	// Aggregation, including the single-column key fast path.
	out = append(out, &AggLookup{Row: iu(types.Ptr), State: &rt.AggTableState{}, Out: iu(types.Ptr)})
	for _, k := range types.FixedKinds {
		out = append(out, &AggLookupFixed{Key: iu(k), State: &rt.AggTableState{}, Out: iu(types.Ptr)})
	}
	for fn := ir.AggSumI64; fn <= ir.AggMaxI32; fn++ {
		u := &AggUpdate{Group: iu(types.Ptr), Fn: fn, Off: &rt.OffsetState{}}
		if vk := fn.ValueKind(); vk != types.Invalid {
			u.Val = iu(vk)
		}
		out = append(out, u)
	}

	// Exchange routing (local hash-partitioned exchange, DESIGN.md §15).
	out = append(out, &Partition{Row: iu(types.Ptr), State: &rt.ExchangeState{}})

	// Joins.
	jt := &rt.JoinTableState{}
	out = append(out,
		&JoinInsert{Row: iu(types.Ptr), State: jt},
		&Prefetch{Row: iu(types.Ptr), State: jt},
	)
	for _, mode := range []ir.JoinMode{ir.InnerJoin, ir.SemiJoin, ir.LeftOuterJoin, ir.AntiJoin} {
		out = append(out, &JoinProbe{
			Row: iu(types.Ptr), State: jt, Mode: mode,
			BuildOut: iu(types.Ptr), ProbeOut: iu(types.Ptr), MatchedOut: iu(types.Bool),
		})
	}

	// Unpacking.
	for _, region := range []ir.Region{ir.KeyRegion, ir.PayloadRegion} {
		for _, k := range types.FixedKinds {
			out = append(out, &UnpackFixed{Row: iu(types.Ptr), Region: region,
				Off: &rt.OffsetState{}, Out: iu(k)})
		}
		out = append(out, &UnpackStr{Row: iu(types.Ptr), Region: region,
			Slot: &rt.VarSlotState{}, Out: iu(types.String)})
	}

	return out
}

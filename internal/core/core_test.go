package core

import (
	"strings"
	"testing"

	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/types"
)

// TestEnumerationBuildsEveryPrimitive is the enumeration invariant made
// executable: every enumerated suboperator instantiation must yield a
// primitive through the regular compilation stack (paper §IV-A).
func TestEnumerationBuildsEveryPrimitive(t *testing.T) {
	ops := Enumerate()
	if len(ops) < 150 {
		t.Fatalf("suspiciously small enumeration: %d", len(ops))
	}
	seen := map[string]bool{}
	for _, op := range ops {
		id := op.PrimitiveID()
		if id == "" {
			t.Fatalf("enumerated suboperator %T has no primitive ID", op)
		}
		if seen[id] {
			t.Fatalf("duplicate primitive ID %q", id)
		}
		seen[id] = true
		f, err := BuildPrimitive(op)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		// The primitive's state array must line up with the suboperator's
		// state list: that alignment is what lets the interpreter inject
		// per-query state into shared pre-compiled code (paper Fig 8).
		if f.NumStates != len(op.States()) {
			t.Fatalf("%s: %d states generated, suboperator lists %d", id, f.NumStates, len(op.States()))
		}
		if len(f.Ins) != len(op.Inputs()) {
			t.Fatalf("%s: %d inputs generated, suboperator lists %d", id, len(f.Ins), len(op.Inputs()))
		}
	}
}

func TestEnumerationCoversExpectedFamilies(t *testing.T) {
	fams := map[string]bool{}
	for _, op := range Enumerate() {
		id := op.PrimitiveID()
		fam := id
		if i := strings.IndexByte(id, '_'); i > 0 {
			fam = id[:i]
		}
		fams[fam] = true
	}
	for _, want := range []string{
		"tscan", "expr", "cmp", "logic", "not", "cast", "like", "notlike",
		"inlist", "case", "filtercopy", "makerow", "sealkey", "pack",
		"packstr", "agglookup", "aggupdate", "joininsert", "joinprobe",
		"prefetch", "unpack", "unpackstr",
	} {
		if !fams[want] {
			t.Errorf("enumeration missing family %q", want)
		}
	}
}

func TestGenStepFusesScopes(t *testing.T) {
	// scan(a) -> a > const -> filter -> emit. The filter scope must nest the
	// emit inside the generated if.
	a := NewIU(types.Int64, "a")
	cond := NewIU(types.Bool, "cond")
	inner := NewIU(types.Int64, "a2")
	ops := []SubOp{
		&Cmp{Op: ir.Gt, L: Col(a), R: ConstOf(rt.ConstI64(5)), Out: cond},
		&FilterScope{Cond: cond},
		&FilterCopy{Cond: cond, Src: a, Dst: inner},
	}
	f, states, err := GenStep("t", []*IU{a}, ops, []*IU{inner})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 {
		t.Fatalf("states = %d", len(states))
	}
	if len(f.Body) != 2 { // assign + filter
		t.Fatalf("body stmts = %d", len(f.Body))
	}
	fs, ok := f.Body[1].(ir.FilterStmt)
	if !ok {
		t.Fatalf("second stmt is %T", f.Body[1])
	}
	if len(fs.Copies) != 1 || len(fs.Body) != 1 {
		t.Fatalf("filter structure: %d copies, %d body", len(fs.Copies), len(fs.Body))
	}
	if _, ok := fs.Body[0].(ir.EmitStmt); !ok {
		t.Fatal("emit not nested inside the filter scope")
	}
}

func TestGenStepNestedScopes(t *testing.T) {
	// Two chained filters must nest, and close in LIFO order on Finish.
	a := NewIU(types.Int64, "a")
	c1 := NewIU(types.Bool, "c1")
	a1 := NewIU(types.Int64, "a1")
	c2 := NewIU(types.Bool, "c2")
	a2 := NewIU(types.Int64, "a2")
	ops := []SubOp{
		&Cmp{Op: ir.Gt, L: Col(a), R: ConstOf(rt.ConstI64(1)), Out: c1},
		&FilterScope{Cond: c1},
		&FilterCopy{Cond: c1, Src: a, Dst: a1},
		&Cmp{Op: ir.Lt, L: Col(a1), R: ConstOf(rt.ConstI64(10)), Out: c2},
		&FilterScope{Cond: c2},
		&FilterCopy{Cond: c2, Src: a1, Dst: a2},
	}
	f, _, err := GenStep("nested", []*IU{a}, ops, []*IU{a2})
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := f.Body[len(f.Body)-1].(ir.FilterStmt)
	if !ok {
		t.Fatalf("no outer filter, got %T", f.Body[len(f.Body)-1])
	}
	foundInner := false
	for _, s := range outer.Body {
		if _, ok := s.(ir.FilterStmt); ok {
			foundInner = true
		}
	}
	if !foundInner {
		t.Fatal("inner filter not nested in outer")
	}
}

func TestConsumeBeforeProduceFails(t *testing.T) {
	a := NewIU(types.Int64, "a")
	b := NewIU(types.Int64, "b") // never produced
	out := NewIU(types.Int64, "out")
	ops := []SubOp{&Arith{Op: ir.Add, L: Col(a), R: Col(b), Out: out}}
	if _, _, err := GenStep("bad", []*IU{a}, ops, []*IU{out}); err == nil {
		t.Fatal("expected consume-before-produce error")
	}
}

func TestFilterCopyOutsideScopeFails(t *testing.T) {
	a := NewIU(types.Int64, "a")
	cond := NewIU(types.Bool, "c")
	dst := NewIU(types.Int64, "d")
	ops := []SubOp{
		&Cmp{Op: ir.Gt, L: Col(a), R: ConstOf(rt.ConstI64(5)), Out: cond},
		&FilterCopy{Cond: cond, Src: a, Dst: dst}, // no FilterScope
	}
	if _, _, err := GenStep("bad", []*IU{a}, ops, []*IU{dst}); err == nil {
		t.Fatal("expected scope error")
	}
}

func TestStateOrderMatchesStatesList(t *testing.T) {
	// For an op with two constants, the generated ConstRefs must index the
	// state array in the same order as States() lists them.
	c1, c2 := rt.ConstF64(1), rt.ConstF64(2)
	op := &Case{
		Cond: NewIU(types.Bool, "c"),
		Then: ConstOf(c1), Else: ConstOf(c2),
		Out: NewIU(types.Float64, "o"),
	}
	f, err := BuildPrimitive(op)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumStates != 2 {
		t.Fatalf("states = %d", f.NumStates)
	}
	sts := op.States()
	if sts[0] != c1 || sts[1] != c2 {
		t.Fatal("States() order wrong")
	}
	asgn := f.Body[0].(ir.Assign)
	cond := asgn.E.(ir.CondExpr)
	if cond.Then.(ir.ConstRef).StateID != 0 || cond.Else.(ir.ConstRef).StateID != 1 {
		t.Fatal("generated state indexes do not match States() order")
	}
}

func TestPrimitiveIDsEncodeParameters(t *testing.T) {
	a := NewIU(types.Float64, "a")
	o := NewIU(types.Float64, "o")
	cc := &Arith{Op: ir.Add, L: Col(a), R: Col(NewIU(types.Float64, "b")), Out: o}
	ck := &Arith{Op: ir.Add, L: Col(a), R: ConstOf(rt.ConstF64(1)), Out: o}
	if cc.PrimitiveID() == ck.PrimitiveID() {
		t.Fatal("const side not encoded in primitive ID")
	}
	if cc.PrimitiveID() != "expr_add_f64_cc" || ck.PrimitiveID() != "expr_add_f64_ck" {
		t.Fatalf("unexpected IDs: %s %s", cc.PrimitiveID(), ck.PrimitiveID())
	}
}

func TestPipelineGenFused(t *testing.T) {
	// A sink pipeline (no result) generates no emit.
	a := NewIU(types.Int64, "a")
	row0 := NewIU(types.Ptr, "r0")
	row1 := NewIU(types.Ptr, "r1")
	row2 := NewIU(types.Ptr, "r2")
	layout := &rt.RowLayoutState{KeyFixed: 8}
	jt := &rt.JoinTableState{Table: rt.NewJoinTable(2)}
	pipe := &Pipeline{
		Name:   "build",
		Source: &TableScan{IUs: []*IU{a}},
		Ops: []SubOp{
			&MakeRow{Anchor: a, Layout: layout, Out: row0},
			&PackFixed{Row: row0, Val: a, Region: ir.KeyRegion, Off: &rt.OffsetState{Layout: layout}, Out: row1},
			&SealKey{Row: row1, Layout: layout, Out: row2},
			&JoinInsert{Row: row2, State: jt},
		},
	}
	f, states, err := pipe.GenFused()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.OutKinds) != 0 {
		t.Fatal("sink pipeline should not emit")
	}
	if len(states) != 4 {
		t.Fatalf("states = %d", len(states))
	}
	c := ir.EmitC(f)
	if !strings.Contains(c, "ink_join_insert") {
		t.Fatalf("missing insert in:\n%s", c)
	}
}

func TestIUIdentity(t *testing.T) {
	a := NewIU(types.Int64, "x")
	b := NewIU(types.Int64, "x")
	if a.ID == b.ID {
		t.Fatal("IU IDs must be unique")
	}
	if a.String() == "" || a.K != types.Int64 {
		t.Fatal("IU fields")
	}
}

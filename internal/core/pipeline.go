package core

import (
	"fmt"

	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// Source is a pipeline's data origin. The execution backends bind its IUs to
// input vectors: fused programs read them directly; the vectorized
// interpreter materializes them through tscan primitives into the first
// tuple buffer (paper Fig 3).
type Source interface {
	SourceIUs() []*IU
	sourceMarker()
}

// TableScan reads columns of a base table, morsel by morsel.
type TableScan struct {
	Table *storage.Table
	Cols  []int // column indexes into the table
	IUs   []*IU // parallel to Cols
}

// SourceIUs implements Source.
func (t *TableScan) SourceIUs() []*IU { return t.IUs }

func (*TableScan) sourceMarker() {}

// AggRead scans the groups of a completed aggregation: its IU is the packed
// group row from which key-unpack and aggregate-read suboperators recover
// columns.
type AggRead struct {
	State *rt.AggTableState
	Out   *IU // Ptr
}

// SourceIUs implements Source.
func (a *AggRead) SourceIUs() []*IU { return []*IU{a.Out} }

func (*AggRead) sourceMarker() {}

// ExchangeRead scans the sealed per-partition row buffers of a local
// hash-partitioned exchange (DESIGN.md §15): one morsel per partition, so the
// downstream build touches each partitioned table part from exactly one
// worker. Its IU is the packed row the routing pipeline materialized.
type ExchangeRead struct {
	State *rt.ExchangeState
	Out   *IU // Ptr
}

// SourceIUs implements Source.
func (e *ExchangeRead) SourceIUs() []*IU { return []*IU{e.Out} }

func (*ExchangeRead) sourceMarker() {}

// AggFinalize tells the scheduler to merge per-worker pre-aggregation tables
// into the global table when the pipeline completes. Keyless aggregations
// (no GROUP BY) guarantee one group even on empty input.
type AggFinalize struct {
	State   *rt.AggTableState
	Keyless bool
}

// Pipeline is one executable pipeline: a source, a linear sequence of
// suboperators (scopes nest monotonically), and a sink — either Result IUs
// (materialize output columns) or side effects (hash-table builds).
type Pipeline struct {
	Name   string
	Source Source
	Ops    []SubOp
	Result []*IU // nil => pure sink pipeline

	// SealJoins lists join tables this pipeline builds; the scheduler seals
	// them when the pipeline completes.
	SealJoins []*rt.JoinTableState
	// MergeAggs lists aggregations this pipeline feeds.
	MergeAggs []*AggFinalize
	// SealExchanges lists the exchanges this pipeline routes into; the
	// scheduler seals their per-partition buffers when the pipeline completes.
	SealExchanges []*rt.ExchangeState
}

// ResultKinds returns the kinds of the result columns.
func (p *Pipeline) ResultKinds() []types.Kind {
	ks := make([]types.Kind, len(p.Result))
	for i, iu := range p.Result {
		ks[i] = iu.K
	}
	return ks
}

// GenFused runs the compilation stack over the whole pipeline, producing the
// single fused function of a traditional compiling engine (paper Fig 3
// left). The returned state array is shared with every other backend.
func (p *Pipeline) GenFused() (*ir.Func, []any, error) {
	return GenStep("pipeline_"+p.Name, p.Source.SourceIUs(), p.Ops, p.Result)
}

// SortSpec orders the final result (ORDER BY ... LIMIT ...). The supported
// plans all sort the final, already-aggregated result, so ordering is a
// post-processing step on the result buffer rather than a pipeline source.
type SortSpec struct {
	// Keys are result column indexes; Desc is parallel.
	Keys  []int
	Desc  []bool
	Limit int // 0 = no limit
}

// Plan is a fully lowered query: pipelines in execution order plus the
// result schema and optional ordering.
type Plan struct {
	Name      string
	Pipelines []*Pipeline
	ColNames  []string
	Sort      *SortSpec
}

// FinalKinds returns the result column kinds of the plan's last pipeline.
func (p *Plan) FinalKinds() ([]types.Kind, error) {
	if len(p.Pipelines) == 0 {
		return nil, fmt.Errorf("core: plan %s has no pipelines", p.Name)
	}
	last := p.Pipelines[len(p.Pipelines)-1]
	if last.Result == nil {
		return nil, fmt.Errorf("core: plan %s: final pipeline has no result", p.Name)
	}
	return last.ResultKinds(), nil
}

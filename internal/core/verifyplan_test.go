package core

import (
	"strings"
	"testing"

	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// miniAggPlan builds a small valid two-pipeline plan: scan → filter →
// keyed aggregation build, then an aggregate read materializing one column.
func miniAggPlan() *Plan {
	tbl := storage.NewTable("t", types.Schema{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Float64},
	})
	k := NewIU(types.Int64, "k")
	v := NewIU(types.Float64, "v")
	cond := NewIU(types.Bool, "cond")
	kf := NewIU(types.Int64, "k")
	vf := NewIU(types.Float64, "v")
	key0 := NewIU(types.Ptr, "key")
	key1 := NewIU(types.Ptr, "key")
	key2 := NewIU(types.Ptr, "key")
	group := NewIU(types.Ptr, "group")
	agg := &rt.AggTableState{}
	layout := &rt.RowLayoutState{}
	row := NewIU(types.Ptr, "row")
	sum := NewIU(types.Float64, "sum")
	return &Plan{
		Name: "mini",
		Pipelines: []*Pipeline{
			{
				Name:   "build",
				Source: &TableScan{Table: tbl, Cols: []int{0, 1}, IUs: []*IU{k, v}},
				Ops: []SubOp{
					&Cmp{Op: ir.Gt, L: Col(k), R: ConstOf(rt.ConstI64(0)), Out: cond},
					&FilterScope{Cond: cond},
					&FilterCopy{Cond: cond, Src: k, Dst: kf},
					&FilterCopy{Cond: cond, Src: v, Dst: vf},
					&MakeRow{Anchor: kf, Layout: layout, Out: key0},
					&PackFixed{Row: key0, Val: kf, Off: &rt.OffsetState{}, Out: key1},
					&SealKey{Row: key1, Layout: layout, Out: key2},
					&AggLookup{Row: key2, State: agg, Out: group},
					&AggUpdate{Group: group, Fn: ir.AggSumF64, Off: &rt.OffsetState{}, Val: vf},
				},
				MergeAggs: []*AggFinalize{{State: agg}},
			},
			{
				Name:   "read",
				Source: &AggRead{State: agg, Out: row},
				Ops: []SubOp{
					&UnpackFixed{Row: row, Off: &rt.OffsetState{}, Out: sum},
				},
				Result: []*IU{sum},
			},
		},
		ColNames: []string{"sum"},
		Sort:     &SortSpec{Keys: []int{0}},
	}
}

func TestVerifyPlanValid(t *testing.T) {
	if err := VerifyPlan(miniAggPlan()); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// miniExchangePlan builds a valid three-pipeline exchanged aggregation: scan →
// pack → Partition route, exchange read → partitioned build, aggregate read.
func miniExchangePlan() *Plan {
	tbl := storage.NewTable("t", types.Schema{
		{Name: "k", Kind: types.Int64},
	})
	k := NewIU(types.Int64, "k")
	key0 := NewIU(types.Ptr, "key")
	key1 := NewIU(types.Ptr, "key")
	key2 := NewIU(types.Ptr, "key")
	exRow := NewIU(types.Ptr, "ex_row")
	group := NewIU(types.Ptr, "group")
	ex := &rt.ExchangeState{Partitions: 8}
	agg := &rt.AggTableState{Partitions: 8}
	layout := &rt.RowLayoutState{}
	row := NewIU(types.Ptr, "row")
	cnt := NewIU(types.Int64, "cnt")
	return &Plan{
		Name: "miniex",
		Pipelines: []*Pipeline{
			{
				Name:   "route",
				Source: &TableScan{Table: tbl, Cols: []int{0}, IUs: []*IU{k}},
				Ops: []SubOp{
					&MakeRow{Anchor: k, Layout: layout, Out: key0},
					&PackFixed{Row: key0, Val: k, Off: &rt.OffsetState{}, Out: key1},
					&SealKey{Row: key1, Layout: layout, Out: key2},
					&Partition{Row: key2, State: ex},
				},
				SealExchanges: []*rt.ExchangeState{ex},
			},
			{
				Name:   "build",
				Source: &ExchangeRead{State: ex, Out: exRow},
				Ops: []SubOp{
					&AggLookup{Row: exRow, State: agg, Out: group},
					&AggUpdate{Group: group, Fn: ir.AggCount, Off: &rt.OffsetState{}},
				},
				MergeAggs: []*AggFinalize{{State: agg}},
			},
			{
				Name:   "read",
				Source: &AggRead{State: agg, Out: row},
				Ops: []SubOp{
					&UnpackFixed{Row: row, Off: &rt.OffsetState{}, Out: cnt},
				},
				Result: []*IU{cnt},
			},
		},
		ColNames: []string{"cnt"},
	}
}

func TestVerifyPlanExchange(t *testing.T) {
	if err := VerifyPlan(miniExchangePlan()); err != nil {
		t.Fatalf("valid exchanged plan rejected: %v", err)
	}
	mutateEx := func(t *testing.T, want string, f func(p *Plan)) {
		t.Helper()
		p := miniExchangePlan()
		f(p)
		err := VerifyPlan(p)
		if err == nil {
			t.Fatalf("mutated plan (want %q) verified clean", want)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	t.Run("agg partition mismatch", func(t *testing.T) {
		mutateEx(t, "disagrees with the exchange's 8", func(p *Plan) {
			p.Pipelines[1].Ops[0].(*AggLookup).State.Partitions = 4
			p.Pipelines[1].MergeAggs[0].State.Partitions = 4
		})
	})
	t.Run("join partition mismatch", func(t *testing.T) {
		mutateEx(t, "disagrees with the exchange's 8", func(p *Plan) {
			build := p.Pipelines[1]
			exRow := build.Source.(*ExchangeRead).Out
			jt := &rt.JoinTableState{Partitions: 4}
			build.Ops = []SubOp{&JoinInsert{Row: exRow, State: jt}}
			build.MergeAggs = nil
			build.SealJoins = []*rt.JoinTableState{jt}
		})
	})
}

// mutate applies f to a fresh mini plan and asserts VerifyPlan rejects it
// with an error mentioning want.
func mutate(t *testing.T, want string, f func(p *Plan)) {
	t.Helper()
	p := miniAggPlan()
	f(p)
	err := VerifyPlan(p)
	if err == nil {
		t.Fatalf("mutated plan (want %q) verified clean", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestVerifyPlanRejects(t *testing.T) {
	t.Run("undefined input", func(t *testing.T) {
		mutate(t, "used before any producer", func(p *Plan) {
			stray := NewIU(types.Float64, "stray")
			ops := p.Pipelines[0].Ops
			ops[len(ops)-1].(*AggUpdate).Val = stray
		})
	})
	t.Run("multiple producers", func(t *testing.T) {
		mutate(t, "multiple producers", func(p *Plan) {
			build := p.Pipelines[0]
			cmp := build.Ops[0].(*Cmp)
			dup := &Cmp{Op: ir.Lt, L: cmp.L, R: cmp.R, Out: cmp.Out}
			build.Ops = append(build.Ops, dup)
		})
	})
	t.Run("alias kind mismatch", func(t *testing.T) {
		mutate(t, "disagree on kind", func(p *Plan) {
			up := p.Pipelines[1].Ops[0].(*UnpackFixed)
			alias := &IU{ID: up.Out.ID, K: types.Int64, Name: "sum"}
			p.Pipelines[1].Result = []*IU{alias}
		})
	})
	t.Run("filter kind mismatch", func(t *testing.T) {
		mutate(t, "filter copies", func(p *Plan) {
			fc := p.Pipelines[0].Ops[3].(*FilterCopy)
			fc.Dst = &IU{ID: fc.Dst.ID, K: types.Int32, Name: fc.Dst.Name}
		})
	})
	t.Run("non-bool condition", func(t *testing.T) {
		mutate(t, "must be Bool", func(p *Plan) {
			k := p.Pipelines[0].Source.SourceIUs()[0]
			p.Pipelines[0].Ops[1].(*FilterScope).Cond = k
		})
	})
	t.Run("non-ptr key row", func(t *testing.T) {
		mutate(t, "must be a Ptr packed row", func(p *Plan) {
			mr := p.Pipelines[0].Ops[4].(*MakeRow)
			mr.Out = &IU{ID: mr.Out.ID, K: types.Int64, Name: "key"}
			// Keep downstream consistent so only the edge check fires.
			p.Pipelines[0].Ops[5].(*PackFixed).Row = mr.Out
		})
	})
	t.Run("probe before seal", func(t *testing.T) {
		mutate(t, "no earlier pipeline seals", func(p *Plan) {
			build := p.Pipelines[0]
			key := build.Ops[6].(*SealKey).Out
			build.Ops = append(build.Ops, &Prefetch{Row: key, State: &rt.JoinTableState{}})
		})
	})
	t.Run("build without seal", func(t *testing.T) {
		mutate(t, "never seals", func(p *Plan) {
			build := p.Pipelines[0]
			key := build.Ops[6].(*SealKey).Out
			build.Ops = append(build.Ops, &JoinInsert{Row: key, State: &rt.JoinTableState{}})
		})
	})
	t.Run("seal without build", func(t *testing.T) {
		mutate(t, "no JoinInsert in this pipeline builds", func(p *Plan) {
			p.Pipelines[0].SealJoins = []*rt.JoinTableState{{}}
		})
	})
	t.Run("aggread before merge", func(t *testing.T) {
		mutate(t, "no earlier pipeline merges", func(p *Plan) {
			p.Pipelines[0].MergeAggs = nil
			// The build pipeline now feeds an unmerged aggregate too; swap the
			// lookup out so only the AggRead violation remains.
			p.Pipelines[0].Ops = p.Pipelines[0].Ops[:7]
			p.Pipelines[0].SealJoins = nil
			jt := &rt.JoinTableState{}
			key := p.Pipelines[0].Ops[6].(*SealKey).Out
			p.Pipelines[0].Ops = append(p.Pipelines[0].Ops, &JoinInsert{Row: key, State: jt})
			p.Pipelines[0].SealJoins = []*rt.JoinTableState{jt}
		})
	})
	t.Run("double merge", func(t *testing.T) {
		mutate(t, "already merged", func(p *Plan) {
			st := p.Pipelines[0].MergeAggs[0].State
			p.Pipelines[1].MergeAggs = []*AggFinalize{{State: st, Keyless: true}}
		})
	})
	t.Run("sink without side effects", func(t *testing.T) {
		mutate(t, "neither result IUs nor table side effects", func(p *Plan) {
			p.Pipelines[0].MergeAggs = nil
			p.Pipelines[0].Ops = p.Pipelines[0].Ops[:7] // drop lookup + update
			// Pipeline 1 still reads the now-unmerged aggregate, but the sink
			// violation in pipeline 0 is reported first.
		})
	})
	t.Run("unmaterialized result", func(t *testing.T) {
		mutate(t, "never materialized", func(p *Plan) {
			p.Pipelines[1].Result = []*IU{NewIU(types.Float64, "ghost")}
		})
	})
	t.Run("sort key out of range", func(t *testing.T) {
		mutate(t, "outside", func(p *Plan) {
			p.Sort = &SortSpec{Keys: []int{4}}
		})
	})
	t.Run("colname arity", func(t *testing.T) {
		mutate(t, "column names", func(p *Plan) {
			p.ColNames = []string{"a", "b"}
		})
	})
	t.Run("no pipelines", func(t *testing.T) {
		mutate(t, "no pipelines", func(p *Plan) {
			p.Pipelines = nil
		})
	})
}

package core

import (
	"fmt"
	"strings"
)

// Describe renders the suboperator plan in the style of the paper's Fig 7:
// one block per pipeline showing the source, the suboperator DAG in
// execution order (with the primitive each would resolve to in the
// vectorized backend), and the sink.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s: %d pipeline(s)\n", p.Name, len(p.Pipelines))
	for _, pipe := range p.Pipelines {
		b.WriteString(pipe.Describe())
	}
	if p.Sort != nil {
		fmt.Fprintf(&b, "post: order by %v desc=%v limit=%d\n", p.Sort.Keys, p.Sort.Desc, p.Sort.Limit)
	}
	return b.String()
}

// Describe renders one pipeline's block of the Fig 7 rendering; shared by
// Plan.Describe and the EXPLAIN ANALYZE renderer, which interleaves measured
// execution numbers between the blocks.
func (pipe *Pipeline) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline %s:\n", pipe.Name)
	switch s := pipe.Source.(type) {
	case *TableScan:
		cols := make([]string, len(s.IUs))
		for i, iu := range s.IUs {
			cols[i] = iu.Name
		}
		fmt.Fprintf(&b, "  source: scan %s(%s)\n", s.Table.Name, strings.Join(cols, ", "))
	case *AggRead:
		fmt.Fprintf(&b, "  source: aggregate groups -> %s\n", s.Out)
	default:
		fmt.Fprintf(&b, "  source: %T\n", s)
	}
	for _, op := range pipe.Ops {
		id := op.PrimitiveID()
		if id == "" {
			id = "(fused into copies)"
		}
		var outs []string
		for _, iu := range op.Outputs() {
			outs = append(outs, iu.String())
		}
		arrow := ""
		if len(outs) > 0 {
			arrow = " -> " + strings.Join(outs, ", ")
		}
		fmt.Fprintf(&b, "  %-28s%s\n", id, arrow)
	}
	switch {
	case pipe.Result != nil:
		var outs []string
		for _, iu := range pipe.Result {
			outs = append(outs, iu.Name)
		}
		fmt.Fprintf(&b, "  sink: result(%s)\n", strings.Join(outs, ", "))
	case len(pipe.SealJoins) > 0:
		fmt.Fprintf(&b, "  sink: join hash table build (seal on completion)\n")
	case len(pipe.MergeAggs) > 0:
		fmt.Fprintf(&b, "  sink: aggregation build (merge per-worker tables on completion)\n")
	default:
		fmt.Fprintf(&b, "  sink: none\n")
	}
	return b.String()
}

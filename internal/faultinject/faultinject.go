// Package faultinject provides deterministic fault-injection points for the
// engine's robustness layer. Production code calls the hook functions at
// well-known points; tests arm those points with a Fault describing when the
// fault fires (every call, the Nth call, or with a seeded probability) and
// what it does (panic, return an error, inject latency).
//
// Everything is off by default: with no armed points the hooks are a single
// atomic load, so the injection points can stay in hot paths permanently.
package faultinject

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error produced by an armed error point whose
// Fault does not carry an explicit Err.
var ErrInjected = errors.New("faultinject: injected failure")

// Engine injection points. Each constant names one hook call site; tests arm
// them via Arm and the site fires through Inject or Delay.
const (
	// ExecMorsel fires inside the worker morsel loop, before the morsel is
	// handed to the backend (panic-capable; armed Err values are panicked).
	ExecMorsel = "exec/morsel"
	// ExecFinalize fires at pipeline finalization (seal + merge), on the
	// scheduler goroutine (panic-capable).
	ExecFinalize = "exec/finalize"
	// ExecCompile fires in the foreground compilation step used by the
	// compiling and ROF backends (error point).
	ExecCompile = "exec/compile"
	// ExecCompileDelay adds latency to the foreground compile step,
	// on top of the configured LatencyModel (delay point).
	ExecCompileDelay = "exec/compile-delay"
	// ExecHybridCompile fires in the hybrid backend's background compilation
	// job (error point: a fired fault fails the job permanently).
	ExecHybridCompile = "exec/hybrid-compile"
	// ExecHybridCompileDelay adds latency to the background compile job's
	// interruptible latency wait (delay point).
	ExecHybridCompileDelay = "exec/hybrid-compile-delay"
	// ServeParse fires in the inkserve request path after the request body is
	// decoded (error point: a fired fault fails the request as a bad request).
	ServeParse = "serve/parse"
	// ServeExecute fires just before inkserve hands the query to the engine
	// (panic-capable; exercises the handler's isolation).
	ServeExecute = "serve/execute"
	// ServeRespond fires before the response body is written (panic-capable).
	ServeRespond = "serve/respond"
	// SchedAdmit fires at the top of Pool.Admit (error point: a fired fault
	// fails the admission before the query enters the queue).
	SchedAdmit = "sched/admit"
	// SchedDispatch fires in a pool worker just before it runs a task
	// (panic-capable: panics are recovered into a typed task failure that
	// fails only that query).
	SchedDispatch = "sched/dispatch"
	// SchedDrain fires at the start of Pool.Close (error point: a fired fault
	// skips the graceful wait and exercises the force-cancellation path).
	SchedDrain = "sched/drain"
)

// Fault describes when an armed point fires and what it injects.
type Fault struct {
	// Nth fires the fault only on the Nth passage through the point
	// (1-based). 0 means every passage.
	Nth int64
	// Prob, when > 0, fires the fault with this probability per passage
	// (seeded by Seed for reproducibility) instead of the Nth rule.
	Prob float64
	// Seed seeds the per-point RNG used by Prob.
	Seed int64
	// Panic, when non-nil, is passed to panic() when the fault fires.
	Panic any
	// Err is returned by Inject when the fault fires and Panic is nil.
	// nil defaults to ErrInjected at error points.
	Err error
	// Delay is injected latency: Inject sleeps it inline before applying
	// Panic/Err; Delay-only faults (no Panic, no Err) just slow the point.
	// The Delay hook instead returns it to the caller for interruptible
	// waits.
	Delay time.Duration
}

type armed struct {
	f     Fault
	calls atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand
}

// fires decides whether this passage through the point triggers the fault.
func (a *armed) fires() bool {
	n := a.calls.Add(1)
	if a.f.Prob > 0 {
		a.rngMu.Lock()
		defer a.rngMu.Unlock()
		return a.rng.Float64() < a.f.Prob
	}
	if a.f.Nth > 0 {
		return n == a.f.Nth
	}
	return true
}

var (
	armedCount atomic.Int32
	mu         sync.RWMutex
	points     = map[string]*armed{}
)

// Arm activates a fault at a point, replacing any previous fault there.
func Arm(point string, f Fault) {
	a := &armed{f: f}
	if f.Prob > 0 {
		a.rng = rand.New(rand.NewSource(f.Seed))
	}
	mu.Lock()
	if _, ok := points[point]; !ok {
		armedCount.Add(1)
	}
	points[point] = a
	mu.Unlock()
}

// Disarm deactivates a point; unknown points are a no-op.
func Disarm(point string) {
	mu.Lock()
	if _, ok := points[point]; ok {
		delete(points, point)
		armedCount.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every point.
func Reset() {
	mu.Lock()
	points = map[string]*armed{}
	armedCount.Store(0)
	mu.Unlock()
}

// Calls reports how many times an armed point has been passed (0 if the
// point is not armed). Useful for asserting a hook site is actually wired.
func Calls(point string) int64 {
	mu.RLock()
	a := points[point]
	mu.RUnlock()
	if a == nil {
		return 0
	}
	return a.calls.Load()
}

func lookup(point string) *armed {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.RLock()
	a := points[point]
	mu.RUnlock()
	return a
}

// Inject evaluates a point inline: it returns nil when the point is unarmed
// or the fault does not fire this passage; otherwise it sleeps Fault.Delay,
// then panics with Fault.Panic if set, and otherwise returns Fault.Err
// (ErrInjected if nil). Delay-only faults sleep and return nil.
func Inject(point string) error {
	a := lookup(point)
	if a == nil || !a.fires() {
		return nil
	}
	if a.f.Delay > 0 {
		time.Sleep(a.f.Delay)
	}
	if a.f.Panic != nil {
		panic(a.f.Panic)
	}
	if a.f.Err != nil {
		return a.f.Err
	}
	if a.f.Delay > 0 {
		return nil // delay-only fault
	}
	return ErrInjected
}

// Delay evaluates a delay point: it returns the armed Fault.Delay when the
// fault fires, without sleeping, so callers can wait interruptibly (e.g.
// alongside a cancellation channel). Returns 0 when unarmed or not firing.
func Delay(point string) time.Duration {
	a := lookup(point)
	if a == nil || !a.fires() {
		return 0
	}
	return a.f.Delay
}

package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestUnarmedIsNoop(t *testing.T) {
	Reset()
	if err := Inject("nope"); err != nil {
		t.Fatalf("unarmed Inject: %v", err)
	}
	if d := Delay("nope"); d != 0 {
		t.Fatalf("unarmed Delay: %v", d)
	}
}

func TestNthCall(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", Fault{Nth: 3})
	for i := 1; i <= 5; i++ {
		err := Inject("p")
		if i == 3 && !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: want ErrInjected, got %v", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("call %d: want nil, got %v", i, err)
		}
	}
	if c := Calls("p"); c != 5 {
		t.Fatalf("calls: got %d want 5", c)
	}
}

func TestEveryCallCustomErr(t *testing.T) {
	Reset()
	defer Reset()
	sentinel := errors.New("boom")
	Arm("p", Fault{Err: sentinel})
	for i := 0; i < 3; i++ {
		if err := Inject("p"); !errors.Is(err, sentinel) {
			t.Fatalf("want sentinel, got %v", err)
		}
	}
}

func TestPanicFault(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", Fault{Panic: "kaboom"})
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recover: got %v", r)
		}
	}()
	Inject("p")
	t.Fatal("Inject did not panic")
}

func TestDelayOnlyFault(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", Fault{Delay: time.Millisecond})
	start := time.Now()
	if err := Inject("p"); err != nil {
		t.Fatalf("delay-only fault returned %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay not applied")
	}
	if d := Delay("p"); d != time.Millisecond {
		t.Fatalf("Delay: got %v", d)
	}
}

func TestProbDeterministicBySeed(t *testing.T) {
	Reset()
	defer Reset()
	run := func() []bool {
		Arm("p", Fault{Prob: 0.5, Seed: 7})
		out := make([]bool, 32)
		for i := range out {
			out[i] = Inject("p") != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverge at %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times", fired, len(a))
	}
}

func TestDisarm(t *testing.T) {
	Reset()
	Arm("p", Fault{})
	Disarm("p")
	if err := Inject("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

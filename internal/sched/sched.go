// Package sched is the engine-wide morsel scheduler: one shared worker pool
// that every query dispatches morsel tasks into, replacing per-query goroutine
// spawning. N concurrent queries no longer oversubscribe the CPU — the pool
// runs a fixed number of workers and interleaves queries at morsel
// granularity.
//
// On top of the pool sit the serving-robustness layers:
//
//   - Admission control: a query enters the pool through Admit, which gates on
//     a max-concurrent-queries limit and an engine-wide memory reservation
//     (the query's Options.MemoryBudget counted against Config.MemLimit).
//   - Bounded admission queue: queries that do not fit wait FIFO in a bounded
//     queue; a full queue sheds the query immediately with ErrQueueFull, and a
//     query whose context expires while queued returns the context error
//     without ever running.
//   - Fair sharing: pool workers pick tasks round-robin across the admitted
//     queries, and each query caps its in-flight morsels at its requested
//     parallelism, so a long scan cannot starve a short query by more than
//     that cap.
//   - Graceful drain: Close stops admissions, waits for in-flight queries up
//     to the context deadline, then cancels the stragglers.
//
// Per-query per-worker state (vector scratch, profilers, thread-local
// pre-aggregation) is keyed by a query-local slot in [0, parallelism): the
// scheduler guarantees at most one task per (query, slot) at any time, so a
// slot's state is never touched concurrently even though different pool
// workers may serve it over the query's lifetime.
package sched

// sched is an error boundary: admission and dispatch failures must surface as
// the typed sentinels below (or wrap them via %w) so exec and serve classify
// overload precisely. Enforced by the typederr analyzer (cmd/inklint).
//
//inklint:errorboundary

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"inkfuse/internal/faultinject"
	"inkfuse/internal/flight"
	"inkfuse/internal/metrics"
	"inkfuse/internal/obs"
)

// Typed scheduler failures. Callers classify with errors.Is.
var (
	// ErrQueueFull reports that the admission queue was full and the query was
	// shed. Serving layers map this to 429 + Retry-After.
	ErrQueueFull = errors.New("sched: admission queue full, query shed")
	// ErrDraining reports that the pool has stopped admitting queries (Close
	// was called). Serving layers map this to 503.
	ErrDraining = errors.New("sched: scheduler draining, admissions closed")
	// ErrOverCapacity reports a memory reservation larger than the engine
	// limit: the query could never be admitted, so it fails immediately
	// instead of queueing forever.
	ErrOverCapacity = errors.New("sched: query memory budget exceeds engine limit")
	// ErrQueryCanceled reports that the drain deadline expired and the pool
	// canceled this in-flight query.
	ErrQueryCanceled = errors.New("sched: query canceled by scheduler drain")
	// ErrTaskPanic reports a panic that escaped a task function (the executor
	// isolates query panics itself, so this guards scheduler-level faults and
	// wrapper bugs).
	ErrTaskPanic = errors.New("sched: task panicked")
)

// Config configures a Pool.
type Config struct {
	// Workers is the number of pool worker goroutines — the engine's total
	// execution parallelism across all queries. <= 0 defaults to
	// max(2, GOMAXPROCS).
	Workers int
	// MaxConcurrent caps the number of admitted (running) queries.
	// <= 0 = unlimited (no admission control; the queue is never used).
	MaxConcurrent int
	// QueueDepth bounds the admission queue holding queries that wait for a
	// slot. 0 = DefaultQueueDepth; negative = no queue (shed immediately when
	// the pool is at MaxConcurrent).
	QueueDepth int
	// MemLimit caps the sum of admitted queries' memory reservations (each
	// query reserves its Options.MemoryBudget). 0 = unlimited. Queries with a
	// zero budget reserve nothing.
	MemLimit int64
}

// DefaultQueueDepth is the admission queue bound when Config.QueueDepth is 0.
const DefaultQueueDepth = 64

// DefaultWorkers is the pool size when Config.Workers is unset: GOMAXPROCS,
// floored at 2 so single-CPU hosts still interleave concurrent queries.
func DefaultWorkers() int {
	return max(2, runtime.GOMAXPROCS(0))
}

// CloseStats reports how a Close resolved the queries it found running.
type CloseStats struct {
	// Drained queries completed within the drain deadline.
	Drained int
	// Canceled queries were still running at the deadline and were canceled.
	Canceled int
	// Shed admissions were waiting in the queue when Close arrived; they
	// failed with ErrDraining.
	Shed int
}

// Stats is a point-in-time view of the pool, for health endpoints.
type Stats struct {
	Workers       int   // pool size
	MaxConcurrent int   // admitted-query cap (0 = unlimited)
	QueueDepth    int   // admission queue bound
	Running       int   // admitted queries
	Queued        int   // admissions waiting
	MemReserved   int64 // sum of admitted memory reservations
	MemLimit      int64
	Admitted      int64 // total admissions
	Shed          int64 // total queue-full rejections
	QueueTimeouts int64 // admissions abandoned by context while queued
	DrainCanceled int64 // queries canceled by drain deadlines
	Draining      bool  // admissions closed
}

// Pool is the engine-wide worker pool plus its admission machinery.
type Pool struct {
	workers       int
	maxConcurrent int
	queueDepth    int
	memLimit      int64

	mu       sync.Mutex
	taskCond *sync.Cond // task availability, waited on by pool workers
	idleCond *sync.Cond // active-set emptiness, waited on by Close
	active   []*Query   // admitted queries, round-robin order
	rr       int
	memUsed  int64
	queue    []*waiter
	closed   bool // admissions closed
	stopped  bool // workers told to exit
	wg       sync.WaitGroup

	admitted      atomic.Int64
	shed          atomic.Int64
	queueTimeouts atomic.Int64
	drainCanceled atomic.Int64
}

// NewPool builds the pool and starts its workers.
func NewPool(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers()
	}
	qd := cfg.QueueDepth
	switch {
	case qd == 0:
		qd = DefaultQueueDepth
	case qd < 0:
		qd = 0
	}
	p := &Pool{
		workers:       cfg.Workers,
		maxConcurrent: cfg.MaxConcurrent,
		queueDepth:    qd,
		memLimit:      cfg.MemLimit,
	}
	p.taskCond = sync.NewCond(&p.mu)
	p.idleCond = sync.NewCond(&p.mu)
	for w := 0; w < p.workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Stats snapshots the pool.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	s := Stats{
		Workers:       p.workers,
		MaxConcurrent: p.maxConcurrent,
		QueueDepth:    p.queueDepth,
		Running:       len(p.active),
		Queued:        len(p.queue),
		MemReserved:   p.memUsed,
		MemLimit:      p.memLimit,
		Draining:      p.closed,
	}
	p.mu.Unlock()
	s.Admitted = p.admitted.Load()
	s.Shed = p.shed.Load()
	s.QueueTimeouts = p.queueTimeouts.Load()
	s.DrainCanceled = p.drainCanceled.Load()
	return s
}

// Draining reports whether admissions are closed.
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// ---------------------------------------------------------------------------
// Admission

// Query is one admitted query's handle: a slot-capped task dispatcher plus
// the admission it must Release.
type Query struct {
	pool *Pool
	name string
	mem  int64
	cap  int

	info     AdmitInfo
	admitted time.Time     // when the admission was granted
	waited   time.Duration // time spent in the admission queue

	// slots is the free-slot stack; len(slots) == cap - in-flight tasks.
	slots    []int
	set      *taskSet
	canceled error // set by drain force-cancel; sticky
	released bool
}

type waiter struct {
	info  AdmitInfo
	enq   time.Time // when the waiter entered the queue
	q     *Query    // set under the pool lock when admitted
	err   error     // set under the pool lock when rejected
	ready chan struct{}
}

// AdmitInfo describes one admission request. Name, Mem and Parallelism drive
// admission itself; ID, Backend and Fingerprint are observability passthrough:
// they key flight-recorder events and surface in QueryInfos so operators can
// see what is occupying (or saturating) the pool.
type AdmitInfo struct {
	// ID is the engine-wide query id (0 = unassigned; flight events then
	// attach to no particular query).
	ID uint64
	// Name labels the query in errors, stats and flight events.
	Name string
	// Backend is the execution backend the query will run on.
	Backend string
	// Fingerprint is the plan-cache fingerprint, when the query came through
	// the SQL frontend.
	Fingerprint string
	// Mem is the memory reservation against Config.MemLimit (0 = none).
	Mem int64
	// Parallelism is the in-flight morsel cap (<= 0 = pool size).
	Parallelism int
}

// QueryInfo is one row of Pool.QueryInfos: an admitted or queued query with
// enough identity for an operator to see what is saturating admission.
type QueryInfo struct {
	ID          uint64
	Name        string
	Backend     string
	Fingerprint string
	Mem         int64
	Parallelism int
	// State is "running" for admitted queries, "queued" for waiters.
	State string
	// QueueWait is the time spent in the admission queue: final for running
	// queries, elapsed-so-far for queued ones.
	QueueWait time.Duration
}

// QueryInfos snapshots the admitted and queued queries, running first (in
// admission order), then waiters in FIFO order.
func (p *Pool) QueryInfos() []QueryInfo {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]QueryInfo, 0, len(p.active)+len(p.queue))
	for _, q := range p.active {
		out = append(out, QueryInfo{
			ID: q.info.ID, Name: q.info.Name, Backend: q.info.Backend,
			Fingerprint: q.info.Fingerprint, Mem: q.mem, Parallelism: q.cap,
			State: "running", QueueWait: q.waited,
		})
	}
	for _, w := range p.queue {
		out = append(out, QueryInfo{
			ID: w.info.ID, Name: w.info.Name, Backend: w.info.Backend,
			Fingerprint: w.info.Fingerprint, Mem: w.info.Mem, Parallelism: w.info.Parallelism,
			State: "queued", QueueWait: now.Sub(w.enq),
		})
	}
	return out
}

// Admit enters one query into the pool, waiting in the bounded admission
// queue if the pool is at capacity. parallelism is the query's in-flight
// morsel cap and slot count (<= 0 defaults to the pool size); mem is its
// memory reservation against Config.MemLimit (0 reserves nothing). The caller
// must Release the returned Query exactly once, after its last Run.
//
// Typed failures: ErrQueueFull (queue full — shed), ErrDraining (admissions
// closed), ErrOverCapacity (reservation can never fit), or the context error
// when ctx expires while queued — in that case the query never ran.
func (p *Pool) Admit(ctx context.Context, name string, mem int64, parallelism int) (*Query, error) {
	return p.AdmitWith(ctx, AdmitInfo{Name: name, Mem: mem, Parallelism: parallelism})
}

// AdmitWith is Admit with full identity: the extra AdmitInfo fields flow into
// flight-recorder events and QueryInfos but do not change admission policy.
func (p *Pool) AdmitWith(ctx context.Context, info AdmitInfo) (*Query, error) {
	if err := faultinject.Inject(faultinject.SchedAdmit); err != nil {
		return nil, fmt.Errorf("sched: admit %s: %w", info.Name, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if info.Parallelism <= 0 {
		info.Parallelism = p.workers
	}
	start := time.Now()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		observeQueueWait("draining", 0)
		return nil, ErrDraining
	}
	if p.memLimit > 0 && info.Mem > p.memLimit {
		p.mu.Unlock()
		flight.Default.RecordStr(flight.KindShed, info.ID, info.Name, info.Mem, p.memLimit)
		return nil, fmt.Errorf("%w: budget %d > limit %d", ErrOverCapacity, info.Mem, p.memLimit)
	}
	if p.fitsLocked(info.Mem) {
		q := p.admitLocked(info, 0)
		p.mu.Unlock()
		observeQueueWait("admitted", 0)
		return q, nil
	}
	if len(p.queue) >= p.queueDepth {
		p.mu.Unlock()
		p.shed.Add(1)
		metrics.Default.SchedShed()
		observeQueueWait("shed", 0)
		flight.Default.RecordStr(flight.KindShed, info.ID, info.Name, int64(p.queueDepth), 0)
		return nil, ErrQueueFull
	}
	w := &waiter{info: info, enq: start, ready: make(chan struct{})}
	p.queue = append(p.queue, w)
	depth := len(p.queue)
	metrics.Default.SchedQueued(1)
	p.mu.Unlock()
	flight.Default.RecordStr(flight.KindQueued, info.ID, info.Name, int64(depth), 0)

	select {
	case <-w.ready:
		if w.err != nil {
			observeQueueWait("draining", time.Since(start))
			return nil, w.err
		}
		observeQueueWait("admitted", time.Since(start))
		return w.q, nil
	case <-ctx.Done():
		p.mu.Lock()
		if w.q != nil {
			// Admitted concurrently with the context expiring: give the slot
			// back; the query still reports the context error and never runs.
			p.releaseLocked(w.q)
			p.mu.Unlock()
		} else if w.err != nil {
			p.mu.Unlock()
			observeQueueWait("draining", time.Since(start))
			return nil, w.err
		} else {
			p.removeWaiterLocked(w)
			p.mu.Unlock()
		}
		p.queueTimeouts.Add(1)
		metrics.Default.SchedQueueTimeout()
		waited := time.Since(start)
		observeQueueWait("timeout", waited)
		flight.Default.RecordStr(flight.KindQueueTimeout, info.ID, info.Name, int64(waited), 0)
		return nil, ctx.Err()
	}
}

func observeQueueWait(outcome string, d time.Duration) {
	obs.Default.QueueWait.With(outcome).ObserveDuration(d)
}

// fitsLocked reports whether one more query with this reservation fits now.
func (p *Pool) fitsLocked(mem int64) bool {
	if p.maxConcurrent > 0 && len(p.active) >= p.maxConcurrent {
		return false
	}
	if p.memLimit > 0 && mem > 0 && p.memUsed+mem > p.memLimit {
		return false
	}
	return true
}

func (p *Pool) admitLocked(info AdmitInfo, waited time.Duration) *Query {
	q := &Query{
		pool: p, name: info.Name, mem: info.Mem, cap: info.Parallelism,
		info: info, admitted: time.Now(), waited: waited,
	}
	q.slots = make([]int, q.cap)
	for i := range q.slots {
		q.slots[i] = q.cap - 1 - i // pop order 0, 1, 2, ...
	}
	p.active = append(p.active, q)
	p.memUsed += q.mem
	p.admitted.Add(1)
	metrics.Default.SchedAdmitted()
	flight.Default.RecordStr(flight.KindAdmit, info.ID, info.Name, int64(waited), 0)
	if q.mem > 0 {
		flight.Default.RecordStr(flight.KindMemReserve, info.ID, info.Name, q.mem, p.memUsed)
	}
	return q
}

func (p *Pool) removeWaiterLocked(w *waiter) {
	for i, o := range p.queue {
		if o == w {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			metrics.Default.SchedQueued(-1)
			return
		}
	}
}

// releaseLocked frees a query's admission and promotes queued waiters that
// now fit. Promotion is strictly FIFO: a large reservation at the head blocks
// smaller ones behind it, keeping admission order predictable.
func (p *Pool) releaseLocked(q *Query) {
	if q.released {
		return
	}
	q.released = true
	for i, o := range p.active {
		if o == q {
			p.active = append(p.active[:i], p.active[i+1:]...)
			break
		}
	}
	if len(p.active) > 0 {
		p.rr %= len(p.active)
	} else {
		p.rr = 0
	}
	p.memUsed -= q.mem
	metrics.Default.SchedReleased()
	if q.mem > 0 {
		flight.Default.RecordStr(flight.KindMemRelease, q.info.ID, q.name, -q.mem, p.memUsed)
	}
	for len(p.queue) > 0 && p.fitsLocked(p.queue[0].info.Mem) {
		w := p.queue[0]
		p.queue = p.queue[1:]
		metrics.Default.SchedQueued(-1)
		w.q = p.admitLocked(w.info, time.Since(w.enq))
		close(w.ready)
	}
	if len(p.active) == 0 {
		p.idleCond.Broadcast()
	}
}

// QueueWait reports how long this query waited in the admission queue before
// being admitted (zero when it was admitted immediately).
func (q *Query) QueueWait() time.Duration { return q.waited }

// Release frees the query's admission (idempotent). Any still-running task
// set is stopped first; Release does not wait for in-flight tasks — callers
// reach it only after their last Run returned.
func (q *Query) Release() {
	p := q.pool
	p.mu.Lock()
	if q.set != nil {
		q.set.stopped = true
		p.finishLocked(q.set)
	}
	p.releaseLocked(q)
	p.mu.Unlock()
	p.taskCond.Broadcast()
}

// ---------------------------------------------------------------------------
// Dispatch

// TaskFunc runs one task. slot is the query-local worker slot in
// [0, parallelism) — stable state keyed by it is never touched concurrently;
// idx is the task index in [0, n). Returning a non-nil error stops the set:
// no further tasks are issued and Run returns the first error.
type TaskFunc func(slot, idx int) error

// taskSet is one Run call: n tasks dispatched through the pool.
type taskSet struct {
	q        *Query
	n        int
	next     int // next index to issue
	running  int // issued and not yet finished
	fn       TaskFunc
	err      error
	stopped  bool
	finished bool
	done     chan struct{}
}

// Run dispatches n tasks into the pool and blocks until they finish, the
// first task error, or ctx expires (in-flight tasks always complete before
// Run returns, so slot state is quiescent afterwards). A query runs one set
// at a time — pipelines are sequential. Returns the first task error, the
// drain-cancellation error, or ctx.Err().
func (q *Query) Run(ctx context.Context, n int, fn TaskFunc) error {
	p := q.pool
	p.mu.Lock()
	if q.canceled != nil {
		p.mu.Unlock()
		return q.canceled
	}
	if q.released {
		p.mu.Unlock()
		panic("sched: Run after Release")
	}
	if q.set != nil {
		p.mu.Unlock()
		panic("sched: concurrent Run calls on one Query")
	}
	if n <= 0 {
		p.mu.Unlock()
		return nil
	}
	s := &taskSet{q: q, n: n, fn: fn, done: make(chan struct{})}
	q.set = s
	p.mu.Unlock()
	p.taskCond.Broadcast()

	completed := false
	select {
	case <-s.done:
		completed = true
	case <-ctx.Done():
		p.mu.Lock()
		s.stopped = true
		p.finishLocked(s)
		p.mu.Unlock()
		p.taskCond.Broadcast()
		<-s.done
	}
	// done is closed: no task is running and no field of s is being written.
	if s.err != nil {
		return s.err
	}
	if !completed && s.next < s.n {
		return ctx.Err()
	}
	return nil
}

// finishLocked completes a set once nothing more will run for it.
func (p *Pool) finishLocked(s *taskSet) {
	if !s.finished && s.running == 0 && (s.stopped || s.next >= s.n) {
		s.finished = true
		if s.q.set == s {
			s.q.set = nil
		}
		close(s.done)
	}
}

// take blocks until a task is available (round-robin across queries, slot cap
// per query) or the pool is stopped.
func (p *Pool) take() (*taskSet, int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.stopped {
			return nil, 0, 0
		}
		if n := len(p.active); n > 0 {
			for k := 0; k < n; k++ {
				q := p.active[(p.rr+k)%n]
				s := q.set
				if s == nil || s.stopped || s.next >= s.n || len(q.slots) == 0 {
					continue
				}
				idx := s.next
				s.next++
				slot := q.slots[len(q.slots)-1]
				q.slots = q.slots[:len(q.slots)-1]
				s.running++
				p.rr = (p.rr + k + 1) % n
				return s, slot, idx
			}
		}
		p.taskCond.Wait()
	}
}

func (p *Pool) worker(id int) {
	defer p.wg.Done()
	labels := pprof.Labels("sched-worker", strconv.Itoa(id))
	pprof.Do(context.Background(), labels, func(context.Context) {
		for {
			s, slot, idx := p.take()
			if s == nil {
				return
			}
			err := runTask(s, slot, idx)
			p.mu.Lock()
			s.running--
			s.q.slots = append(s.q.slots, slot)
			if err != nil && s.err == nil {
				s.err = err
				s.stopped = true
			}
			p.finishLocked(s)
			p.mu.Unlock()
			p.taskCond.Broadcast()
		}
	})
}

// runTask executes one task with scheduler-level panic isolation. The
// executor already converts query panics into typed *QueryError values; this
// recover guards the dispatch path itself (and the sched/dispatch fault
// point) so a scheduler fault fails one query, never the pool.
func runTask(s *taskSet, slot, idx int) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%w: %v", ErrTaskPanic, rec)
		}
	}()
	if err := faultinject.Inject(faultinject.SchedDispatch); err != nil {
		return fmt.Errorf("sched: dispatch %s: %w", s.q.name, err)
	}
	return s.fn(slot, idx)
}

// ---------------------------------------------------------------------------
// Drain

// Close shuts the pool down gracefully: admissions stop immediately (queued
// waiters fail with ErrDraining), in-flight queries drain until ctx expires,
// stragglers are then canceled (their Run calls return ErrQueryCanceled), and
// the workers exit once every query has released. Close blocks until the pool
// is fully quiescent and is safe to call once; the sched/drain fault point
// can skip the graceful wait to exercise the cancellation path.
func (p *Pool) Close(ctx context.Context) CloseStats {
	var cs CloseStats
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return cs
	}
	p.closed = true
	cs.Shed = len(p.queue)
	for _, w := range p.queue {
		w.err = ErrDraining
		close(w.ready)
		metrics.Default.SchedQueued(-1)
	}
	p.queue = nil
	atCloseActive := len(p.active)
	p.mu.Unlock()
	flight.Default.Record(flight.KindDrainBegin, 0, flight.NoLabel, int64(atCloseActive), int64(cs.Shed))

	if err := faultinject.Inject(faultinject.SchedDrain); err != nil {
		// An armed drain fault skips the graceful wait: cancel immediately.
		expired, cancel := context.WithCancel(context.Background())
		cancel()
		ctx = expired
	}

	done := make(chan struct{})
	go func() {
		p.mu.Lock()
		for len(p.active) > 0 {
			p.idleCond.Wait()
		}
		p.mu.Unlock()
		close(done)
	}()

	select {
	case <-done:
	case <-ctx.Done():
		p.mu.Lock()
		cs.Canceled = len(p.active)
		for _, q := range p.active {
			q.canceled = ErrQueryCanceled
			if q.set != nil {
				q.set.stopped = true
				if q.set.err == nil {
					q.set.err = ErrQueryCanceled
				}
				p.finishLocked(q.set)
			}
		}
		p.mu.Unlock()
		p.taskCond.Broadcast()
		p.drainCanceled.Add(int64(cs.Canceled))
		metrics.Default.SchedDrainCanceled(int64(cs.Canceled))
		flight.Default.Record(flight.KindDrainCancel, 0, flight.NoLabel, int64(cs.Canceled), 0)
		// Canceled queries still unwind through their owners' Release calls.
		<-done
	}
	cs.Drained = atCloseActive - cs.Canceled
	flight.Default.Record(flight.KindDrainEnd, 0, flight.NoLabel, int64(cs.Drained), int64(cs.Canceled))

	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.taskCond.Broadcast()
	p.wg.Wait()
	return cs
}

// ---------------------------------------------------------------------------
// Shared default pool

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide default pool: DefaultWorkers() workers and
// unlimited admission, so standalone callers (tests, CLIs, library embedders)
// get engine-wide scheduling without configuring anything. Servers that want
// admission control build their own Pool and pass it per query.
func Shared() *Pool {
	sharedOnce.Do(func() {
		sharedPool = NewPool(Config{Workers: DefaultWorkers()})
	})
	return sharedPool
}

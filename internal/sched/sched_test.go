package sched

// Scheduler contract tests: slot exclusivity and in-flight caps, round-robin
// fairness, admission control (concurrency cap, memory reservations, bounded
// queue, queued-context expiry), graceful drain vs force-cancel, and a chaos
// test that injects admission/dispatch/drain faults under concurrency and
// asserts every query ends in exactly one of {success, typed error} with no
// goroutine leaks.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"inkfuse/internal/faultinject"
)

// waitGoroutines waits for the goroutine count to drop back to at most want,
// tolerating the runtime's background goroutines settling.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunDispatchesAllTasksWithSlotExclusivity(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(Config{Workers: 4})
	q, err := p.Admit(context.Background(), "q", 0, 3)
	if err != nil {
		t.Fatal(err)
	}

	const n = 200
	var ran [n]atomic.Int32
	var inFlight, maxInFlight atomic.Int32
	slotBusy := make([]atomic.Bool, 3)
	err = q.Run(context.Background(), n, func(slot, idx int) error {
		if slot < 0 || slot >= 3 {
			t.Errorf("slot %d out of range", slot)
		}
		if !slotBusy[slot].CompareAndSwap(false, true) {
			t.Errorf("slot %d used concurrently", slot)
		}
		cur := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		ran[idx].Add(1)
		inFlight.Add(-1)
		slotBusy[slot].Store(false)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, got)
		}
	}
	if m := maxInFlight.Load(); m > 3 {
		t.Fatalf("in-flight tasks peaked at %d, want <= parallelism 3", m)
	}
	q.Release()
	p.Close(context.Background())
	waitGoroutines(t, base)
}

func TestRunStopsOnFirstTaskError(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close(context.Background())
	q, err := p.Admit(context.Background(), "q", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Release()

	boom := errors.New("boom")
	var issued atomic.Int32
	err = q.Run(context.Background(), 1000, func(slot, idx int) error {
		issued.Add(1)
		if idx == 3 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if n := issued.Load(); n >= 1000 {
		t.Fatalf("all %d tasks issued despite early error", n)
	}
}

func TestFairnessShortQueryNotStarved(t *testing.T) {
	// One worker, two queries: a long scan (many slow tasks) and a short
	// query admitted after it. Round-robin must interleave the short query's
	// single task long before the scan finishes.
	p := NewPool(Config{Workers: 1})
	defer p.Close(context.Background())

	long, err := p.Admit(context.Background(), "long", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer long.Release()
	short, err := p.Admit(context.Background(), "short", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer short.Release()

	const longTasks = 50
	var longDone atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		long.Run(context.Background(), longTasks, func(slot, idx int) error {
			time.Sleep(2 * time.Millisecond)
			longDone.Add(1)
			return nil
		})
	}()

	// Let the long query occupy the worker first.
	for longDone.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	var progressAtShort int32
	err = short.Run(context.Background(), 1, func(slot, idx int) error {
		progressAtShort = longDone.Load()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The short query's task must run within a couple of round-robin turns,
	// not after the whole scan: the scan's in-flight cap (1) bounds the wait.
	if progressAtShort > longTasks/2 {
		t.Fatalf("short query starved: ran after %d/%d long tasks", progressAtShort, longTasks)
	}
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	p := NewPool(Config{Workers: 1, MaxConcurrent: 1, QueueDepth: 1})
	defer p.Close(context.Background())

	q1, err := p.Admit(context.Background(), "q1", 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	// q2 queues; q3 finds the queue full and is shed.
	var wg sync.WaitGroup
	wg.Add(1)
	admitted := make(chan error, 1)
	go func() {
		defer wg.Done()
		q2, err := p.Admit(context.Background(), "q2", 0, 1)
		admitted <- err
		if err == nil {
			q2.Release()
		}
	}()
	waitStats(t, p, func(s Stats) bool { return s.Queued == 1 })

	if _, err := p.Admit(context.Background(), "q3", 0, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("q3 error = %v, want ErrQueueFull", err)
	}
	if s := p.Stats(); s.Shed != 1 {
		t.Fatalf("Stats.Shed = %d, want 1", s.Shed)
	}

	q1.Release()
	wg.Wait()
	if err := <-admitted; err != nil {
		t.Fatalf("queued q2 failed: %v", err)
	}
}

func TestQueuedContextExpiryNeverRuns(t *testing.T) {
	p := NewPool(Config{Workers: 1, MaxConcurrent: 1})
	defer p.Close(context.Background())

	q1, err := p.Admit(context.Background(), "q1", 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Admit(ctx, "q2", 0, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued admit error = %v, want DeadlineExceeded", err)
	}
	s := p.Stats()
	if s.QueueTimeouts != 1 {
		t.Fatalf("Stats.QueueTimeouts = %d, want 1", s.QueueTimeouts)
	}
	if s.Queued != 0 {
		t.Fatalf("abandoned waiter still queued: %+v", s)
	}

	// The abandoned slot is reusable.
	q1.Release()
	q3, err := p.Admit(context.Background(), "q3", 0, 1)
	if err != nil {
		t.Fatalf("admit after timeout: %v", err)
	}
	q3.Release()
}

func TestMemoryReservations(t *testing.T) {
	p := NewPool(Config{Workers: 1, MemLimit: 100})
	defer p.Close(context.Background())

	if _, err := p.Admit(context.Background(), "huge", 200, 1); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("over-limit admit error = %v, want ErrOverCapacity", err)
	}

	q1, err := p.Admit(context.Background(), "q1", 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	// q2's reservation does not fit next to q1: it queues until q1 releases.
	done := make(chan error, 1)
	go func() {
		q2, err := p.Admit(context.Background(), "q2", 60, 1)
		if err == nil {
			q2.Release()
		}
		done <- err
	}()
	waitStats(t, p, func(s Stats) bool { return s.Queued == 1 })
	if s := p.Stats(); s.MemReserved != 60 {
		t.Fatalf("MemReserved = %d, want 60", s.MemReserved)
	}
	q1.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued q2 failed: %v", err)
	}
	if s := p.Stats(); s.MemReserved != 0 {
		t.Fatalf("MemReserved = %d after releases, want 0", s.MemReserved)
	}
}

func TestCloseDrainsThenRejects(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(Config{Workers: 2, MaxConcurrent: 2, QueueDepth: 4})
	q, err := p.Admit(context.Background(), "q", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A queued waiter present at Close fails with ErrDraining.
	qHold, err := p.Admit(context.Background(), "hold", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = qHold
	var wg sync.WaitGroup
	wg.Add(1)
	queuedErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := p.Admit(context.Background(), "queued", 0, 1)
		queuedErr <- err
	}()
	waitStats(t, p, func(s Stats) bool { return s.Queued == 1 })

	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := q.Run(context.Background(), 20, func(slot, idx int) error {
			time.Sleep(time.Millisecond)
			return nil
		}); err != nil {
			t.Errorf("drained Run failed: %v", err)
		}
		q.Release()
		qHold.Release()
	}()

	time.Sleep(5 * time.Millisecond) // let the Run start
	cs := p.Close(context.Background())
	wg.Wait()
	if cs.Drained != 2 || cs.Canceled != 0 || cs.Shed != 1 {
		t.Fatalf("CloseStats = %+v, want 2 drained, 0 canceled, 1 shed", cs)
	}
	if err := <-queuedErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter error = %v, want ErrDraining", err)
	}
	if _, err := p.Admit(context.Background(), "late", 0, 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close admit error = %v, want ErrDraining", err)
	}
	waitGoroutines(t, base)
}

func TestCloseDeadlineForceCancels(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(Config{Workers: 1})
	q, err := p.Admit(context.Background(), "q", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() {
		runErr <- q.Run(context.Background(), 10_000, func(slot, idx int) error {
			time.Sleep(time.Millisecond)
			return nil
		})
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	closeDone := make(chan CloseStats, 1)
	go func() { closeDone <- p.Close(ctx) }()

	err = <-runErr
	if !errors.Is(err, ErrQueryCanceled) {
		t.Fatalf("force-canceled Run error = %v, want ErrQueryCanceled", err)
	}
	q.Release()
	cs := <-closeDone
	if cs.Canceled != 1 || cs.Drained != 0 {
		t.Fatalf("CloseStats = %+v, want 1 canceled", cs)
	}
	if s := p.Stats(); s.DrainCanceled != 1 {
		t.Fatalf("Stats.DrainCanceled = %d, want 1", s.DrainCanceled)
	}
	waitGoroutines(t, base)
}

func TestRunCtxCancelStopsIssuing(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close(context.Background())
	q, err := p.Admit(context.Background(), "q", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Release()

	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int32
	go func() {
		for n.Load() < 3 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	err = q.Run(ctx, 100_000, func(slot, idx int) error {
		n.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Run error = %v, want context.Canceled", err)
	}
	// In-flight tasks completed before Run returned: the count is stable now.
	settled := n.Load()
	time.Sleep(10 * time.Millisecond)
	if got := n.Load(); got != settled {
		t.Fatalf("tasks still running after Run returned: %d -> %d", settled, got)
	}
}

// TestChaosConcurrentQueriesWithFaults is the scheduler half of the chaos
// satellite: 8 concurrent queries run through a small pool while the
// sched/admit and sched/dispatch fault points fire probabilistically. Every
// query must end in exactly one of {success, typed error} — no hangs, no
// double results — and the pool must wind down without leaking goroutines.
func TestChaosConcurrentQueriesWithFaults(t *testing.T) {
	defer faultinject.Reset()
	base := runtime.NumGoroutine()
	faultinject.Arm(faultinject.SchedAdmit, faultinject.Fault{Prob: 0.2, Seed: 7})
	faultinject.Arm(faultinject.SchedDispatch, faultinject.Fault{Prob: 0.05, Seed: 11, Panic: "injected dispatch panic"})

	p := NewPool(Config{Workers: 2, MaxConcurrent: 4, QueueDepth: 2})
	const queries = 8
	type outcome struct {
		ok  bool
		err error
	}
	results := make(chan outcome, queries)
	for i := 0; i < queries; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			q, err := p.Admit(ctx, "chaos", 0, 2)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			err = q.Run(ctx, 20, func(slot, idx int) error {
				time.Sleep(200 * time.Microsecond)
				return nil
			})
			q.Release()
			results <- outcome{ok: err == nil, err: err}
		}()
	}
	var succeeded, failed int
	for i := 0; i < queries; i++ {
		select {
		case o := <-results:
			switch {
			case o.ok && o.err == nil:
				succeeded++
			case !o.ok && o.err != nil:
				// Every failure must be typed: an injected fault, a shed, or a
				// dispatch panic — never an untyped surprise.
				if !errors.Is(o.err, faultinject.ErrInjected) &&
					!errors.Is(o.err, ErrQueueFull) &&
					!errors.Is(o.err, ErrTaskPanic) &&
					!errors.Is(o.err, context.DeadlineExceeded) {
					t.Errorf("untyped chaos failure: %v", o.err)
				}
				failed++
			default:
				t.Errorf("query ended in impossible state: %+v", o)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("chaos query hung: %d/%d reported", i, queries)
		}
	}
	if succeeded+failed != queries {
		t.Fatalf("outcomes = %d success + %d failure, want %d total", succeeded, failed, queries)
	}
	faultinject.Reset()
	p.Close(context.Background())
	waitGoroutines(t, base)
}

// waitStats polls the pool until cond holds (with a deadline), for asserting
// asynchronous admission-state transitions.
func waitStats(t *testing.T, p *Pool, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(p.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("pool never reached expected state: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// Package types defines the value types and schemas shared by every layer of
// the engine: storage, the suboperator IR, the closure VM, and the generated
// vectorized primitives.
//
// The type set is deliberately finite — the enumeration invariant of
// Incremental Fusion (paper §IV-A) requires that suboperator parameter
// spaces, of which types are the most common, can be exhaustively enumerated.
package types

import (
	"fmt"
	"time"
)

// Kind identifies a physical value type. Parameterized SQL types (decimals,
// chars) map onto these storage types, which keeps the primitive count small
// (paper §IV-B).
type Kind uint8

const (
	// Invalid is the zero Kind; no column or IR value may carry it.
	Invalid Kind = iota
	// Bool is a boolean column (filter conditions, match markers).
	Bool
	// Int32 is a 32-bit signed integer (also the storage type for Date).
	Int32
	// Int64 is a 64-bit signed integer (keys, counts).
	Int64
	// Float64 is a double; TPC-H decimals are computed in Float64.
	Float64
	// Date is a day count since 1970-01-01, stored as int32.
	Date
	// String is a variable-length byte string.
	String
	// Ptr is a reference to a packed row in runtime-managed memory
	// (hash-table entries, packed keys). Only exists inside pipelines.
	Ptr
)

// NumKinds is the number of valid kinds; used by enumeration loops.
const NumKinds = 8

// ScalarKinds lists the kinds user data can have (everything except Invalid
// and Ptr). Enumeration of expression primitives ranges over these.
var ScalarKinds = []Kind{Bool, Int32, Int64, Float64, Date, String}

// FixedKinds lists the fixed-width kinds usable in packed row layouts
// without length prefixes.
var FixedKinds = []Kind{Bool, Int32, Int64, Float64, Date}

func (k Kind) String() string {
	switch k {
	case Bool:
		return "bool"
	case Int32:
		return "i32"
	case Int64:
		return "i64"
	case Float64:
		return "f64"
	case Date:
		return "date"
	case String:
		return "str"
	case Ptr:
		return "ptr"
	default:
		return "invalid"
	}
}

// CName returns the C type name used by the C source emitter.
func (k Kind) CName() string {
	switch k {
	case Bool:
		return "bool"
	case Int32:
		return "int32_t"
	case Int64:
		return "int64_t"
	case Float64:
		return "double"
	case Date:
		return "int32_t"
	case String:
		return "ink_str_t"
	case Ptr:
		return "char*"
	default:
		return "void"
	}
}

// GoName returns the Go type name used by the Go source emitter.
func (k Kind) GoName() string {
	switch k {
	case Bool:
		return "bool"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case Date:
		return "int32"
	case String:
		return "string"
	case Ptr:
		return "[]byte"
	default:
		return "void"
	}
}

// Width returns the byte width of the kind inside a packed row layout.
// Strings are variable-size and report -1; the row layout gives them
// length-prefixed slots (see rt.RowLayout).
//
//inkfuse:hotpath
func (k Kind) Width() int {
	switch k {
	case Bool:
		return 1
	case Int32, Date:
		return 4
	case Int64, Float64:
		return 8
	case String:
		return -1
	default:
		return 0
	}
}

// Fixed reports whether the kind has a fixed byte width.
func (k Kind) Fixed() bool { return k.Width() > 0 }

// Numeric reports whether arithmetic is defined on the kind.
func (k Kind) Numeric() bool {
	return k == Int32 || k == Int64 || k == Float64
}

// Comparable reports whether ordering comparisons are defined on the kind.
func (k Kind) Comparable() bool {
	switch k {
	case Int32, Int64, Float64, Date, String:
		return true
	}
	return false
}

// ColumnDesc describes one column of a schema.
type ColumnDesc struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns.
type Schema []ColumnDesc

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndexOf is IndexOf that panics on a missing column; plan-building
// helper where a miss is a programming error.
func (s Schema) MustIndexOf(name string) int {
	i := s.IndexOf(name)
	if i < 0 {
		panic(fmt.Sprintf("types: schema has no column %q", name))
	}
	return i
}

// Kinds returns the kinds of all columns in order.
func (s Schema) Kinds() []Kind {
	ks := make([]Kind, len(s))
	for i, c := range s {
		ks[i] = c.Kind
	}
	return ks
}

// epoch is the zero point of the Date kind.
var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// MkDate converts a calendar date into the Date day-count representation.
func MkDate(year, month, day int) int32 {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return int32(t.Sub(epoch).Hours() / 24)
}

// DateString renders a Date day count as YYYY-MM-DD.
func DateString(d int32) string {
	t := epoch.AddDate(0, 0, int(d))
	return t.Format("2006-01-02")
}

// ParseDate parses YYYY-MM-DD into the Date representation.
func ParseDate(s string) (int32, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("types: bad date %q: %w", s, err)
	}
	return int32(t.Sub(epoch).Hours() / 24), nil
}

// MustParseDate is ParseDate that panics; used in hand-built plans where the
// literal is a compile-time constant.
func MustParseDate(s string) int32 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

package types

import (
	"testing"
	"testing/quick"
)

func TestKindWidths(t *testing.T) {
	cases := map[Kind]int{
		Bool: 1, Int32: 4, Date: 4, Int64: 8, Float64: 8, String: -1,
	}
	for k, w := range cases {
		if k.Width() != w {
			t.Errorf("%v width = %d, want %d", k, k.Width(), w)
		}
	}
	if String.Fixed() || !Int64.Fixed() {
		t.Fatal("Fixed() wrong")
	}
}

func TestKindPredicates(t *testing.T) {
	if !Int64.Numeric() || !Float64.Numeric() || Date.Numeric() || String.Numeric() {
		t.Fatal("Numeric() wrong")
	}
	for _, k := range []Kind{Int32, Int64, Float64, Date, String} {
		if !k.Comparable() {
			t.Errorf("%v should be comparable", k)
		}
	}
	if Bool.Comparable() || Ptr.Comparable() {
		t.Fatal("bool/ptr should not be comparable")
	}
}

func TestKindNames(t *testing.T) {
	if Int64.String() != "i64" || Date.CName() != "int32_t" || Float64.GoName() != "float64" {
		t.Fatal("kind names wrong")
	}
	if Invalid.String() != "invalid" {
		t.Fatal("invalid name")
	}
}

func TestSchemaIndexOf(t *testing.T) {
	s := Schema{{Name: "a", Kind: Int64}, {Name: "b", Kind: String}}
	if s.IndexOf("a") != 0 || s.IndexOf("b") != 1 || s.IndexOf("c") != -1 {
		t.Fatal("IndexOf wrong")
	}
	if s.MustIndexOf("b") != 1 {
		t.Fatal("MustIndexOf wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndexOf should panic on miss")
		}
	}()
	s.MustIndexOf("zzz")
}

func TestSchemaKinds(t *testing.T) {
	s := Schema{{Name: "a", Kind: Int64}, {Name: "b", Kind: String}}
	ks := s.Kinds()
	if len(ks) != 2 || ks[0] != Int64 || ks[1] != String {
		t.Fatal("Kinds wrong")
	}
}

func TestDates(t *testing.T) {
	if MkDate(1970, 1, 1) != 0 {
		t.Fatal("epoch wrong")
	}
	if MkDate(1970, 1, 2) != 1 {
		t.Fatal("day count wrong")
	}
	d := MkDate(1998, 9, 2)
	if DateString(d) != "1998-09-02" {
		t.Fatalf("DateString = %s", DateString(d))
	}
	p, err := ParseDate("1998-09-02")
	if err != nil || p != d {
		t.Fatalf("ParseDate: %v %v", p, err)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Fatal("ParseDate should reject garbage")
	}
	if MustParseDate("1995-06-17") != MkDate(1995, 6, 17) {
		t.Fatal("MustParseDate wrong")
	}
}

func TestDateRoundtripProperty(t *testing.T) {
	f := func(n uint16) bool {
		d := int32(n) // 0 .. ~179 years after epoch
		p, err := ParseDate(DateString(d))
		return err == nil && p == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDateOrderingMatchesCalendar(t *testing.T) {
	a := MkDate(1994, 12, 31)
	b := MkDate(1995, 1, 1)
	if !(a < b) {
		t.Fatal("date ordering broken")
	}
}

package ir

import (
	"fmt"

	"inkfuse/internal/types"
)

// Verify checks structural invariants of a generated function: every
// variable is defined exactly once and before use, operand kinds line up,
// and state references stay within the state array. The compilation stack
// runs it on every generated step in tests and on demand.
func Verify(f *Func) error {
	v := &verifier{defined: map[int]types.Kind{}, numStates: f.NumStates}
	for _, in := range f.Ins {
		if err := v.define(in); err != nil {
			return fmt.Errorf("ir: %s: %w", f.Name, err)
		}
	}
	if err := v.stmts(f.Body); err != nil {
		return fmt.Errorf("ir: %s: %w", f.Name, err)
	}
	return nil
}

type verifier struct {
	defined   map[int]types.Kind
	numStates int
}

func (v *verifier) define(x Var) error {
	if !x.Valid() {
		return fmt.Errorf("definition of invalid var %s", x)
	}
	if _, ok := v.defined[x.ID]; ok {
		return fmt.Errorf("var %s defined twice", x)
	}
	v.defined[x.ID] = x.K
	return nil
}

func (v *verifier) use(x Var, want types.Kind) error {
	k, ok := v.defined[x.ID]
	if !ok {
		return fmt.Errorf("use of undefined var %s", x)
	}
	if k != x.K {
		return fmt.Errorf("var %s used with kind %v, defined as %v", x, x.K, k)
	}
	if want != types.Invalid && k != want {
		return fmt.Errorf("var %s has kind %v, context needs %v", x, k, want)
	}
	return nil
}

func (v *verifier) state(id int) error {
	if id < 0 || id >= v.numStates {
		return fmt.Errorf("state index %d outside [0,%d)", id, v.numStates)
	}
	return nil
}

func (v *verifier) stmts(list []Stmt) error {
	for _, s := range list {
		if err := v.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

// stmt structurally checks one IR statement.
//
//inklint:dispatch ir.Stmt
func (v *verifier) stmt(s Stmt) error {
	switch s := s.(type) {
	case Assign:
		if err := v.expr(s.E); err != nil {
			return err
		}
		if s.Dst.K != s.E.Kind() {
			return fmt.Errorf("assign of %v expr into %v var %s", s.E.Kind(), s.Dst.K, s.Dst)
		}
		return v.define(s.Dst)
	case Copy:
		if err := v.use(s.Src, s.Dst.K); err != nil {
			return err
		}
		return v.define(s.Dst)
	case FilterStmt:
		if err := v.use(s.Cond, types.Bool); err != nil {
			return err
		}
		for _, c := range s.Copies {
			if err := v.use(c.Src, c.Dst.K); err != nil {
				return err
			}
			if err := v.define(c.Dst); err != nil {
				return err
			}
		}
		return v.stmts(s.Body)
	case MakeRow:
		if err := v.state(s.StateID); err != nil {
			return err
		}
		return v.define(s.Dst)
	case PackFixed:
		if err := v.use(s.Row, types.Ptr); err != nil {
			return err
		}
		if err := v.expr(s.Val); err != nil {
			return err
		}
		if !s.Val.Kind().Fixed() {
			return fmt.Errorf("pack-fixed of variable-size kind %v", s.Val.Kind())
		}
		if err := v.state(s.StateID); err != nil {
			return err
		}
		return v.define(s.Dst)
	case PackStr:
		if err := v.use(s.Row, types.Ptr); err != nil {
			return err
		}
		if err := v.expr(s.Val); err != nil {
			return err
		}
		if s.Val.Kind() != types.String {
			return fmt.Errorf("pack-str of %v", s.Val.Kind())
		}
		if err := v.state(s.StateID); err != nil {
			return err
		}
		return v.define(s.Dst)
	case SealKey:
		if err := v.use(s.Row, types.Ptr); err != nil {
			return err
		}
		if err := v.state(s.StateID); err != nil {
			return err
		}
		return v.define(s.Dst)
	case AggLookup:
		if err := v.use(s.Row, types.Ptr); err != nil {
			return err
		}
		if err := v.state(s.StateID); err != nil {
			return err
		}
		return v.define(s.Dst)
	case AggLookupFixed:
		if err := v.use(s.Key, types.Invalid); err != nil {
			return err
		}
		if !s.Key.K.Fixed() {
			return fmt.Errorf("direct lookup on variable-size key %s", s.Key)
		}
		if err := v.state(s.StateID); err != nil {
			return err
		}
		return v.define(s.Dst)
	case AggUpdate:
		if err := v.use(s.Group, types.Ptr); err != nil {
			return err
		}
		if s.Val != nil {
			if err := v.expr(s.Val); err != nil {
				return err
			}
			want := s.Fn.ValueKind()
			got := s.Val.Kind()
			// Date shares Int32's slot representation.
			if want != types.Invalid && got != want && !(want == types.Int32 && got == types.Date) {
				return fmt.Errorf("aggregate %v fed %v", s.Fn, got)
			}
		} else if s.Fn.ValueKind() != types.Invalid {
			return fmt.Errorf("aggregate %v missing its argument", s.Fn)
		}
		return v.state(s.StateID)
	case JoinInsert:
		if err := v.use(s.Row, types.Ptr); err != nil {
			return err
		}
		return v.state(s.StateID)
	case Partition:
		if err := v.use(s.Row, types.Ptr); err != nil {
			return err
		}
		return v.state(s.StateID)
	case Prefetch:
		if err := v.use(s.Row, types.Ptr); err != nil {
			return err
		}
		return v.state(s.StateID)
	case ProbeStmt:
		if err := v.use(s.ProbeRow, types.Ptr); err != nil {
			return err
		}
		if err := v.state(s.StateID); err != nil {
			return err
		}
		if err := v.define(s.Probe); err != nil {
			return err
		}
		if s.Mode == InnerJoin || s.Mode == LeftOuterJoin {
			if err := v.define(s.Build); err != nil {
				return err
			}
		}
		if s.Mode == LeftOuterJoin {
			if err := v.define(s.Matched); err != nil {
				return err
			}
		}
		return v.stmts(s.Body)
	case EmitStmt:
		for _, c := range s.Cols {
			if err := v.use(c, types.Invalid); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

// expr structurally checks one IR expression.
//
//inklint:dispatch ir.Expr
func (v *verifier) expr(e Expr) error {
	switch e := e.(type) {
	case VarRef:
		return v.use(e.V, types.Invalid)
	case ConstRef:
		return v.state(e.StateID)
	case BinExpr:
		if err := v.expr(e.L); err != nil {
			return err
		}
		if err := v.expr(e.R); err != nil {
			return err
		}
		if e.L.Kind() != e.R.Kind() || !e.L.Kind().Numeric() {
			return fmt.Errorf("arithmetic over %v and %v", e.L.Kind(), e.R.Kind())
		}
		return nil
	case CmpExpr:
		if err := v.expr(e.L); err != nil {
			return err
		}
		if err := v.expr(e.R); err != nil {
			return err
		}
		if e.L.Kind() != e.R.Kind() {
			return fmt.Errorf("comparison over %v and %v", e.L.Kind(), e.R.Kind())
		}
		return nil
	case LogicExpr:
		for _, sub := range []Expr{e.L, e.R} {
			if err := v.expr(sub); err != nil {
				return err
			}
			if sub.Kind() != types.Bool {
				return fmt.Errorf("logic over %v", sub.Kind())
			}
		}
		return nil
	case NotExpr:
		if err := v.expr(e.E); err != nil {
			return err
		}
		if e.E.Kind() != types.Bool {
			return fmt.Errorf("NOT over %v", e.E.Kind())
		}
		return nil
	case CastExpr:
		return v.expr(e.E)
	case LikeExpr:
		if err := v.expr(e.S); err != nil {
			return err
		}
		if e.S.Kind() != types.String {
			return fmt.Errorf("LIKE over %v", e.S.Kind())
		}
		return v.state(e.StateID)
	case InListExpr:
		if err := v.expr(e.S); err != nil {
			return err
		}
		return v.state(e.StateID)
	case StrLower:
		if err := v.expr(e.E); err != nil {
			return err
		}
		if e.E.Kind() != types.String {
			return fmt.Errorf("lower() over %v", e.E.Kind())
		}
		return nil
	case CondExpr:
		if err := v.expr(e.Cond); err != nil {
			return err
		}
		if e.Cond.Kind() != types.Bool {
			return fmt.Errorf("CASE condition is %v", e.Cond.Kind())
		}
		if err := v.expr(e.Then); err != nil {
			return err
		}
		if err := v.expr(e.Else); err != nil {
			return err
		}
		if e.Then.Kind() != e.Else.Kind() {
			return fmt.Errorf("CASE arms %v vs %v", e.Then.Kind(), e.Else.Kind())
		}
		return nil
	case UnpackFixed:
		if err := v.expr(e.Row); err != nil {
			return err
		}
		return v.state(e.StateID)
	case UnpackStr:
		if err := v.expr(e.Row); err != nil {
			return err
		}
		return v.state(e.StateID)
	default:
		return fmt.Errorf("unknown expression %T", e)
	}
}

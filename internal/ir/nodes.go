package ir

import (
	"encoding/binary"
	"math"

	"inkfuse/internal/types"
)

var (
	posInf = math.Inf(1)
	negInf = math.Inf(-1)
)

func putF64Raw(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }
func putI32Raw(b []byte, v int32)   { binary.LittleEndian.PutUint32(b, uint32(v)) }

// Expr is a side-effect-free typed expression.
type Expr interface {
	Kind() types.Kind
	exprNode()
}

// VarRef reads a variable.
type VarRef struct{ V Var }

// Kind implements Expr.
func (e VarRef) Kind() types.Kind { return e.V.K }
func (VarRef) exprNode()          {}

// Ref is shorthand for VarRef{v}.
func Ref(v Var) VarRef { return VarRef{V: v} }

// ConstRef reads a query constant from runtime state (paper Fig 5): the
// generated code is constant-free so the primitive stays enumerable.
type ConstRef struct {
	StateID int
	K       types.Kind
}

// Kind implements Expr.
func (e ConstRef) Kind() types.Kind { return e.K }
func (ConstRef) exprNode()          {}

// BinExpr is arithmetic on two operands of the same numeric kind.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

// Kind implements Expr.
func (e BinExpr) Kind() types.Kind { return e.L.Kind() }
func (BinExpr) exprNode()          {}

// CmpExpr compares two operands of the same kind; result is Bool.
type CmpExpr struct {
	Op   CmpOp
	L, R Expr
}

// Kind implements Expr.
func (CmpExpr) Kind() types.Kind { return types.Bool }
func (CmpExpr) exprNode()        {}

// LogicExpr is a boolean connective.
type LogicExpr struct {
	Op   LogicOp
	L, R Expr
}

// Kind implements Expr.
func (LogicExpr) Kind() types.Kind { return types.Bool }
func (LogicExpr) exprNode()        {}

// NotExpr is boolean negation.
type NotExpr struct{ E Expr }

// Kind implements Expr.
func (NotExpr) Kind() types.Kind { return types.Bool }
func (NotExpr) exprNode()        {}

// CastExpr converts between numeric kinds.
type CastExpr struct {
	To types.Kind
	E  Expr
}

// Kind implements Expr.
func (e CastExpr) Kind() types.Kind { return e.To }
func (CastExpr) exprNode()          {}

// LikeExpr evaluates a LIKE pattern; the compiled matcher lives in runtime
// state (rt.LikeState).
type LikeExpr struct {
	S       Expr
	StateID int
	Negate  bool
}

// Kind implements Expr.
func (LikeExpr) Kind() types.Kind { return types.Bool }
func (LikeExpr) exprNode()        {}

// InListExpr tests string membership in a runtime-state set (rt.InListState).
type InListExpr struct {
	S       Expr
	StateID int
}

// Kind implements Expr.
func (InListExpr) Kind() types.Kind { return types.Bool }
func (InListExpr) exprNode()        {}

// StrLower normalizes a string to lowercase — the equivalence-class mapping
// of case-insensitive collations (paper §IV-D: "every key is turned to
// lowercase; the normalized representation is only used for key
// comparison").
type StrLower struct{ E Expr }

// Kind implements Expr.
func (StrLower) Kind() types.Kind { return types.String }
func (StrLower) exprNode()        {}

// CondExpr is a ternary (SQL CASE WHEN).
type CondExpr struct {
	Cond, Then, Else Expr
}

// Kind implements Expr.
func (e CondExpr) Kind() types.Kind { return e.Then.Kind() }
func (CondExpr) exprNode()          {}

// UnpackFixed reads a fixed-width field from a packed row at a runtime-state
// offset (rt.OffsetState).
type UnpackFixed struct {
	Row     Expr // Ptr
	Region  Region
	StateID int
	K       types.Kind
}

// Kind implements Expr.
func (e UnpackFixed) Kind() types.Kind { return e.K }
func (UnpackFixed) exprNode()          {}

// UnpackStr reads a variable-size field from a packed row; the slot position
// is resolved through rt.VarSlotState.
type UnpackStr struct {
	Row     Expr // Ptr
	Region  Region
	StateID int
}

// Kind implements Expr.
func (UnpackStr) Kind() types.Kind { return types.String }
func (UnpackStr) exprNode()        {}

// Stmt is one statement in a step body.
type Stmt interface{ stmtNode() }

// Assign evaluates E into a fresh variable.
type Assign struct {
	Dst Var
	E   Expr
}

func (Assign) stmtNode() {}

// Copy rebinds a variable into the current scope. In emitted C this is a
// plain assignment (free: the value stays in a register); in the VM it is the
// dense-compaction gather of the filter-copy suboperator (paper Fig 4).
type Copy struct{ Dst, Src Var }

func (Copy) stmtNode() {}

// FilterStmt opens a filtered scope: Body executes only for rows where Cond
// holds; Copies carry the surviving columns into the scope.
type FilterStmt struct {
	Cond   Var // Bool
	Copies []Copy
	Body   []Stmt
}

func (FilterStmt) stmtNode() {}

// MakeRow allocates a reusable packed row per tuple (key + payload building,
// paper §IV-D/E). State is an rt.RowLayoutState.
type MakeRow struct {
	Dst     Var // Ptr
	StateID int
}

func (MakeRow) stmtNode() {}

// PackFixed writes a fixed-width value into a packed row at a runtime-state
// offset (rt.OffsetState). Produces Dst, the refreshed row handle.
type PackFixed struct {
	Dst     Var // Ptr
	Row     Var // Ptr
	Region  Region
	StateID int
	Val     Expr
}

func (PackFixed) stmtNode() {}

// PackStr appends a variable-size value to a packed row region. State is the
// rt.OffsetState of the owning layout (for scratch identity).
type PackStr struct {
	Dst     Var // Ptr
	Row     Var // Ptr
	Region  Region
	StateID int
	Val     Expr
}

func (PackStr) stmtNode() {}

// SealKey finalizes the key blob of a packed row and reserves the payload
// region. State is the rt.RowLayoutState.
type SealKey struct {
	Dst     Var // Ptr
	Row     Var // Ptr
	StateID int
}

func (SealKey) stmtNode() {}

// AggLookup finds-or-creates the group row for a packed key. Collision
// resolution happens inside the hash table (paper §IV-D); the returned
// pointer addresses the correctly resolved group. State is rt.AggTableState.
type AggLookup struct {
	Dst     Var // Ptr: the group row
	Row     Var // Ptr: packed key row
	StateID int
}

func (AggLookup) stmtNode() {}

// AggLookupFixed is the single-column key fast path (paper §IV-D: "if we
// only aggregate by a single column, the engine performs no packing but just
// uses the raw column directly"): the fixed-width key value is encoded
// in-place, skipping the packed-row scratch entirely.
type AggLookupFixed struct {
	Dst     Var // Ptr: the group row
	Key     Var // fixed-width key column
	StateID int // rt.AggTableState
}

func (AggLookupFixed) stmtNode() {}

// AggUpdate folds a value into an aggregate slot of a group row. The slot
// offset is a runtime parameter (rt.OffsetState).
type AggUpdate struct {
	Group   Var // Ptr
	Fn      AggFunc
	StateID int
	Val     Expr // absent (nil) for AggCount
}

func (AggUpdate) stmtNode() {}

// JoinInsert inserts a packed row into a join hash table (build side).
// State is rt.JoinTableState.
type JoinInsert struct {
	Row     Var // Ptr
	StateID int
}

func (JoinInsert) stmtNode() {}

// Partition hash-routes a packed row into the per-partition tuple buffer its
// key hash selects (the local exchange at a pipeline break, DESIGN.md §15).
// State is rt.ExchangeState; the routing bits are disjoint from all table
// addressing, so downstream bloom/tag behaviour is unaffected.
type Partition struct {
	Row     Var // Ptr
	StateID int
}

func (Partition) stmtNode() {}

// ProbeStmt probes a join hash table with the key of ProbeRow and opens a
// scope per emitted row. Build is bound to the matching build row
// (Inner/LeftOuter); Probe rebinds the probe row inside the scope; Matched
// is bound for LeftOuterJoin. State is rt.JoinTableState.
type ProbeStmt struct {
	StateID  int
	Mode     JoinMode
	ProbeRow Var // Ptr, in the enclosing scope
	Build    Var // Ptr; invalid for SemiJoin
	Probe    Var // Ptr, scope-local rebind of ProbeRow
	Matched  Var // Bool; valid only for LeftOuterJoin
	Body     []Stmt
}

func (ProbeStmt) stmtNode() {}

// Prefetch touches the hash-table bucket of a packed probe key without
// resolving matches — the dedicated prefetching step of the ROF backend
// (paper §VII): issued over a whole staged chunk it produces many
// independent loads ahead of the tuple-at-a-time probe.
type Prefetch struct {
	Row     Var // Ptr: packed probe row
	StateID int // rt.JoinTableState
}

func (Prefetch) stmtNode() {}

// EmitStmt appends the listed variables as one output row (the tuple-buffer
// sink / result sink).
type EmitStmt struct {
	Cols []Var
}

func (EmitStmt) stmtNode() {}

// Func is the generated code for one step: a loop over the source rows
// (bound to Ins) executing Body per row.
type Func struct {
	Name      string
	Ins       []Var // scope-0 variables bound to the input vectors
	Body      []Stmt
	OutKinds  []types.Kind // kinds emitted by EmitStmt (nil for pure sinks)
	NumStates int          // size of the runtime state array
}

package ir

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"inkfuse/internal/types"
)

// GetF64Test reads a little-endian float64 (local helper; the real readers
// live in internal/rt, which ir must not import).
func GetF64Test(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func sampleFunc() *Func {
	a := Var{ID: 1, K: types.Int64, Name: "a"}
	b := Var{ID: 2, K: types.Int64, Name: "b"}
	sum := Var{ID: 3, K: types.Int64, Name: "sum"}
	cond := Var{ID: 4, K: types.Bool, Name: "cond"}
	inner := Var{ID: 5, K: types.Int64, Name: "inner"}
	return &Func{
		Name: "sample",
		Ins:  []Var{a, b},
		Body: []Stmt{
			Assign{Dst: sum, E: BinExpr{Op: Add, L: Ref(a), R: Ref(b)}},
			Assign{Dst: cond, E: CmpExpr{Op: Gt, L: Ref(sum), R: ConstRef{StateID: 0, K: types.Int64}}},
			FilterStmt{Cond: cond, Copies: []Copy{{Dst: inner, Src: sum}},
				Body: []Stmt{EmitStmt{Cols: []Var{inner}}}},
		},
		OutKinds:  []types.Kind{types.Int64},
		NumStates: 1,
	}
}

func TestEmitCStructure(t *testing.T) {
	c := EmitC(sampleFunc())
	for _, want := range []string{
		"void sample(",
		"for (int64_t i = 0; i < n; ++i)",
		"(a_1 + b_2)",
		"((ink_const_t*)state[0])->i64",
		"if (cond_",
		"out->rows++;",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("EmitC missing %q in:\n%s", want, c)
		}
	}
	// Balanced braces.
	if strings.Count(c, "{") != strings.Count(c, "}") {
		t.Fatalf("unbalanced braces:\n%s", c)
	}
}

func TestEmitCProbeModes(t *testing.T) {
	row := Var{ID: 1, K: types.Ptr, Name: "row"}
	build := Var{ID: 2, K: types.Ptr, Name: "b"}
	probe := Var{ID: 3, K: types.Ptr, Name: "p"}
	matched := Var{ID: 4, K: types.Bool, Name: "m"}
	for _, mode := range []JoinMode{InnerJoin, SemiJoin, LeftOuterJoin} {
		f := &Func{Name: "probe", Ins: []Var{row}, Body: []Stmt{
			ProbeStmt{StateID: 0, Mode: mode, ProbeRow: row, Build: build, Probe: probe, Matched: matched,
				Body: []Stmt{EmitStmt{Cols: []Var{probe}}}},
		}}
		c := EmitC(f)
		if strings.Count(c, "{") != strings.Count(c, "}") {
			t.Fatalf("%v: unbalanced braces:\n%s", mode, c)
		}
		switch mode {
		case SemiJoin:
			if !strings.Contains(c, "ink_join_exists") {
				t.Fatalf("semi emit:\n%s", c)
			}
		case LeftOuterJoin:
			if !strings.Contains(c, "unmatched probe tuple") {
				t.Fatalf("outer emit:\n%s", c)
			}
		default:
			if !strings.Contains(c, "ink_match_next") {
				t.Fatalf("inner emit:\n%s", c)
			}
		}
	}
}

func TestEmitCAggAndPack(t *testing.T) {
	k := Var{ID: 1, K: types.Int64, Name: "k"}
	v := Var{ID: 2, K: types.Float64, Name: "v"}
	r0 := Var{ID: 3, K: types.Ptr, Name: "r0"}
	r1 := Var{ID: 4, K: types.Ptr, Name: "r1"}
	r2 := Var{ID: 5, K: types.Ptr, Name: "r2"}
	g := Var{ID: 6, K: types.Ptr, Name: "g"}
	f := &Func{Name: "agg", Ins: []Var{k, v}, Body: []Stmt{
		MakeRow{Dst: r0, StateID: 0},
		PackFixed{Dst: r1, Row: r0, Region: KeyRegion, StateID: 1, Val: Ref(k)},
		SealKey{Dst: r2, Row: r1, StateID: 0},
		AggLookup{Dst: g, Row: r2, StateID: 2},
		AggUpdate{Group: g, Fn: AggSumF64, StateID: 3, Val: Ref(v)},
		AggUpdate{Group: g, Fn: AggCount, StateID: 4},
		AggUpdate{Group: g, Fn: AggMinF64, StateID: 5, Val: Ref(v)},
	}, NumStates: 6}
	c := EmitC(f)
	for _, want := range []string{"ink_make_row", "ink_seal_key", "ink_agg_find_or_create", "+= v_2", "+= 1", "ink_min_f64"} {
		if !strings.Contains(c, want) {
			t.Errorf("missing %q in:\n%s", want, c)
		}
	}
}

func TestSizeMonotonic(t *testing.T) {
	small := &Func{Name: "s", Body: []Stmt{}}
	if Size(sampleFunc()) <= Size(small) {
		t.Fatal("size not monotonic with content")
	}
}

func TestSizeCoversAllNodes(t *testing.T) {
	row := Var{ID: 1, K: types.Ptr}
	exprs := []Expr{
		Ref(row), ConstRef{K: types.Int64},
		BinExpr{Op: Mul, L: ConstRef{K: types.Float64}, R: ConstRef{K: types.Float64}},
		CmpExpr{Op: Eq, L: ConstRef{K: types.Int64}, R: ConstRef{K: types.Int64}},
		LogicExpr{Op: Or, L: ConstRef{K: types.Bool}, R: ConstRef{K: types.Bool}},
		NotExpr{E: ConstRef{K: types.Bool}},
		CastExpr{To: types.Int64, E: ConstRef{K: types.Int32}},
		LikeExpr{S: ConstRef{K: types.String}},
		InListExpr{S: ConstRef{K: types.String}},
		CondExpr{Cond: ConstRef{K: types.Bool}, Then: ConstRef{K: types.Int64}, Else: ConstRef{K: types.Int64}},
		UnpackFixed{Row: Ref(row), K: types.Int64},
		UnpackStr{Row: Ref(row)},
	}
	for _, e := range exprs {
		if sizeExpr(e) < 1 {
			t.Errorf("expr %T has zero size", e)
		}
	}
	stmts := []Stmt{
		Assign{Dst: row, E: Ref(row)},
		Copy{Dst: row, Src: row},
		FilterStmt{}, MakeRow{}, PackFixed{Val: Ref(row)}, PackStr{Val: Ref(row)},
		SealKey{}, AggLookup{}, AggUpdate{}, JoinInsert{}, Prefetch{}, ProbeStmt{}, EmitStmt{},
	}
	for _, s := range stmts {
		if sizeStmt(s) < 1 {
			t.Errorf("stmt %T has zero size", s)
		}
	}
}

func TestAggFuncMetadata(t *testing.T) {
	if AggSumF64.ValueKind() != types.Float64 || AggCount.ValueKind() != types.Invalid {
		t.Fatal("value kinds wrong")
	}
	if AggMinI32.SlotWidth() != 4 || AggSumI64.SlotWidth() != 8 {
		t.Fatal("slot widths wrong")
	}
	slot := make([]byte, 8)
	AggMinF64.InitSlot(slot)
	if GetF64Test(slot) <= 1e308 {
		t.Fatal("min init should be +Inf")
	}
	AggSumF64.InitSlot(slot)
	if GetF64Test(slot) != 0 {
		t.Fatal("sum init should be 0")
	}
}

func TestOpStrings(t *testing.T) {
	if Add.CSym() != "+" || Ne.CSym() != "!=" || And.CSym() != "&&" {
		t.Fatal("C symbols wrong")
	}
	if Mul.String() != "mul" || Ge.String() != "ge" || Or.String() != "or" {
		t.Fatal("op names wrong")
	}
	if InnerJoin.String() != "inner" || LeftOuterJoin.String() != "leftouter" {
		t.Fatal("mode names wrong")
	}
	if KeyRegion.String() != "key" || PayloadRegion.String() != "payload" {
		t.Fatal("region names wrong")
	}
}

func TestVarValidity(t *testing.T) {
	var v Var
	if v.Valid() {
		t.Fatal("zero var should be invalid")
	}
	if (Var{ID: 1, K: types.Int64}).Valid() == false {
		t.Fatal("bound var should be valid")
	}
	if (Var{ID: 2, K: types.Bool, Name: "x"}).String() != "x_2" {
		t.Fatal("var string")
	}
	if (Var{ID: 3, K: types.Bool}).String() != "v3" {
		t.Fatal("anon var string")
	}
}

// Package ir defines the structured imperative intermediate representation
// that the suboperator compilation stack generates (paper §V-A: "the
// compilation stack of an Incremental Fusion engine turns a DAG of
// suboperators into executable code").
//
// One IR, several consumers:
//   - internal/vm compiles it into an executable closure program (the
//     stand-in for InkFuse's clang-compiled C, see DESIGN.md §2);
//   - EmitC renders it as the C source InkFuse would generate (Figs 3/5/6);
//   - EmitGo renders it as Go source (used by cmd/primgen).
//
// A Func is the code for one *step*: a loop over source rows whose body is a
// statement list. Nested scopes (filter, join probe) model cardinality
// changes; all vectors stay dense (paper §IV-B).
package ir

import (
	"fmt"

	"inkfuse/internal/types"
)

// Var is a typed value flowing through the step — an "IU" (information unit)
// materialized as a loop-local variable in emitted C and as a dense batch
// register in the VM.
type Var struct {
	ID   int
	K    types.Kind
	Name string
}

// Valid reports whether the var has been bound.
func (v Var) Valid() bool { return v.K != types.Invalid }

func (v Var) String() string {
	if v.Name != "" {
		return fmt.Sprintf("%s_%d", v.Name, v.ID)
	}
	return fmt.Sprintf("v%d", v.ID)
}

// BinOp is an arithmetic operator.
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div
)

func (o BinOp) String() string { return [...]string{"add", "sub", "mul", "div"}[o] }

// CSym returns the C operator token.
func (o BinOp) CSym() string { return [...]string{"+", "-", "*", "/"}[o] }

// CmpOp is a comparison operator.
type CmpOp uint8

const (
	Lt CmpOp = iota
	Le
	Eq
	Ne
	Ge
	Gt
)

func (o CmpOp) String() string { return [...]string{"lt", "le", "eq", "ne", "ge", "gt"}[o] }

// CSym returns the C operator token.
func (o CmpOp) CSym() string { return [...]string{"<", "<=", "==", "!=", ">=", ">"}[o] }

// LogicOp is a boolean connective.
type LogicOp uint8

const (
	And LogicOp = iota
	Or
)

func (o LogicOp) String() string { return [...]string{"and", "or"}[o] }

// CSym returns the C operator token.
func (o LogicOp) CSym() string { return [...]string{"&&", "||"}[o] }

// AggFunc identifies an aggregate-update function. The (function, type)
// combinations are finite, so aggregate-update suboperators satisfy the
// enumeration invariant (paper §IV-D).
type AggFunc uint8

const (
	AggSumI64 AggFunc = iota
	AggSumF64
	AggCount   // unconditional row count
	AggCountIf // counts rows whose bool argument is true (outer-join counting)
	AggMinF64
	AggMaxF64
	AggMinI32
	AggMaxI32
)

func (f AggFunc) String() string {
	return [...]string{"sum_i64", "sum_f64", "count", "count_if", "min_f64", "max_f64", "min_i32", "max_i32"}[f]
}

// ValueKind returns the kind of the aggregate's input argument.
func (f AggFunc) ValueKind() types.Kind {
	switch f {
	case AggSumI64:
		return types.Int64
	case AggSumF64, AggMinF64, AggMaxF64:
		return types.Float64
	case AggCountIf:
		return types.Bool
	case AggMinI32, AggMaxI32:
		return types.Int32
	default:
		return types.Invalid // AggCount takes no argument
	}
}

// SlotWidth returns the byte width of the aggregate's state slot.
func (f AggFunc) SlotWidth() int {
	switch f {
	case AggMinI32, AggMaxI32:
		return 4
	default:
		return 8
	}
}

// InitSlot writes the aggregate's initial state into slot.
func (f AggFunc) InitSlot(slot []byte) {
	switch f {
	case AggMinF64:
		putF64Raw(slot, posInf)
	case AggMaxF64:
		putF64Raw(slot, negInf)
	case AggMinI32:
		putI32Raw(slot, 1<<31-1)
	case AggMaxI32:
		putI32Raw(slot, -(1 << 31))
	default:
		for i := range slot {
			slot[i] = 0
		}
	}
}

// Region distinguishes the key blob from the payload of a packed row.
type Region uint8

const (
	// KeyRegion addresses the hashed/compared key blob of a packed row.
	KeyRegion Region = iota
	// PayloadRegion addresses the payload that follows the key blob.
	PayloadRegion
)

func (r Region) String() string { return [...]string{"key", "payload"}[r] }

// JoinMode selects join probe semantics.
type JoinMode uint8

const (
	// InnerJoin emits one row per (probe row, matching build row) pair.
	InnerJoin JoinMode = iota
	// SemiJoin emits each probe row at most once, if any build row matches.
	SemiJoin
	// LeftOuterJoin emits match pairs plus unmatched probe rows with a
	// false match marker (Q13-style outer joins, paper §VII "unmarked
	// tuples").
	LeftOuterJoin
	// AntiJoin emits each probe row exactly when no build row matches
	// (NOT EXISTS).
	AntiJoin
)

func (m JoinMode) String() string {
	return [...]string{"inner", "semi", "leftouter", "anti"}[m]
}

package ir

// Size returns the number of IR nodes in a function. The execution layer's
// compile-latency model scales with it, mirroring how C/LLVM compilation
// time grows with the amount of generated code.
func Size(f *Func) int {
	n := 1 + len(f.Ins)
	n += sizeStmts(f.Body)
	return n
}

func sizeStmts(list []Stmt) int {
	n := 0
	for _, s := range list {
		n += sizeStmt(s)
	}
	return n
}

// sizeStmt weighs one IR statement for the compile-latency model.
//
//inklint:dispatch ir.Stmt
func sizeStmt(s Stmt) int {
	switch s := s.(type) {
	case Assign:
		return 1 + sizeExpr(s.E)
	case Copy:
		return 1
	case FilterStmt:
		return 1 + len(s.Copies) + sizeStmts(s.Body)
	case MakeRow:
		return 1
	case PackFixed:
		return 1 + sizeExpr(s.Val)
	case PackStr:
		return 1 + sizeExpr(s.Val)
	case SealKey:
		return 1
	case AggLookup:
		return 2
	case AggLookupFixed:
		return 2
	case AggUpdate:
		n := 2
		if s.Val != nil {
			n += sizeExpr(s.Val)
		}
		return n
	case JoinInsert:
		return 2
	case Partition:
		return 2
	case Prefetch:
		return 1
	case ProbeStmt:
		return 3 + sizeStmts(s.Body)
	case EmitStmt:
		return 1 + len(s.Cols)
	default:
		return 1
	}
}

// sizeExpr weighs one IR expression for the compile-latency model.
//
//inklint:dispatch ir.Expr
func sizeExpr(e Expr) int {
	switch e := e.(type) {
	case VarRef, ConstRef:
		return 1
	case BinExpr:
		return 1 + sizeExpr(e.L) + sizeExpr(e.R)
	case CmpExpr:
		return 1 + sizeExpr(e.L) + sizeExpr(e.R)
	case LogicExpr:
		return 1 + sizeExpr(e.L) + sizeExpr(e.R)
	case NotExpr:
		return 1 + sizeExpr(e.E)
	case CastExpr:
		return 1 + sizeExpr(e.E)
	case LikeExpr:
		return 1 + sizeExpr(e.S)
	case InListExpr:
		return 1 + sizeExpr(e.S)
	case StrLower:
		return 1 + sizeExpr(e.E)
	case CondExpr:
		return 1 + sizeExpr(e.Cond) + sizeExpr(e.Then) + sizeExpr(e.Else)
	case UnpackFixed:
		return 1 + sizeExpr(e.Row)
	case UnpackStr:
		return 1 + sizeExpr(e.Row)
	default:
		return 1
	}
}

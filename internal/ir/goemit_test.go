package ir

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestEmitGoParses(t *testing.T) {
	src := EmitGoPrelude() + "\n" + EmitGo(sampleFunc())
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated Go does not parse: %v\n%s", err, src)
	}
}

func TestEmitGoStructure(t *testing.T) {
	g := EmitGo(sampleFunc())
	for _, want := range []string{
		"func sample(in []*Vec, out *Chunk, state []any, n int)",
		"in[0].I64[i]",
		"rtConstI64(state[0])",
		"if cond_",
		"emit(out, ",
	} {
		if !strings.Contains(g, want) {
			t.Errorf("EmitGo missing %q in:\n%s", want, g)
		}
	}
}

func TestVerifyAcceptsSample(t *testing.T) {
	if err := Verify(sampleFunc()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsBadFuncs(t *testing.T) {
	a := Var{ID: 1, K: 3 /* Int64 */, Name: "a"}
	cases := map[string]*Func{
		"undefined var": {Body: []Stmt{EmitStmt{Cols: []Var{a}}}},
		"double define": {Ins: []Var{a}, Body: []Stmt{
			Assign{Dst: a, E: Ref(a)},
		}},
		"state out of range": {Ins: []Var{a}, Body: []Stmt{
			Assign{Dst: Var{ID: 2, K: a.K}, E: BinExpr{Op: Add, L: Ref(a), R: ConstRef{StateID: 3, K: a.K}}},
		}},
		"kind mismatch assign": {Ins: []Var{a}, Body: []Stmt{
			Assign{Dst: Var{ID: 2, K: 1 /* Bool */}, E: Ref(a)},
		}},
	}
	for name, f := range cases {
		if err := Verify(f); err == nil {
			t.Errorf("%s: Verify accepted a bad function", name)
		}
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, positioned for file:line reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	// Category groups findings for waiver matching (e.g. "alloc", "call",
	// "map", "box", "error", "dispatch", "enumerate", "lockscope").
	Category string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s(%s): %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Category, d.Message)
}

// Analyzer is one invariant checker over a loaded Program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's run over a program.
type Pass struct {
	Prog     *Program
	Analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a finding at pos under the given waiver category.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers runs each analyzer, drops findings covered by an
// //inklint:allow waiver on the same or preceding line, and returns the rest
// sorted by position.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Prog: prog, Analyzer: a}
		a.Run(pass)
		for _, d := range pass.diags {
			if prog.notes.waived(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// The annotation vocabulary. Directives must start the comment line exactly;
// see DESIGN.md §12.
const (
	dirHotpath       = "//inkfuse:hotpath"
	dirAllow         = "//inklint:allow"
	dirDispatch      = "//inklint:dispatch"
	dirEnumerate     = "//inklint:enumerate"
	dirErrorBoundary = "//inklint:errorboundary"
	dirLockScope     = "//inklint:lockscope"
)

// ifaceNote records a dispatch/enumerate obligation: the annotated function
// must cover every implementor of the named interface.
type ifaceNote struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	// Iface is the annotation argument, "pkgbase.Name" (e.g. "ir.Stmt").
	Iface string
}

type waiver struct {
	Category string
	Reason   string
	Pos      token.Position
}

// annotations is the scanned directive index for a program.
type annotations struct {
	prog *Program
	// hot holds the *types.Func of every //inkfuse:hotpath function.
	hot map[types.Object]bool
	// hotDecls lists the annotated declarations per package for iteration.
	hotDecls map[*Package][]*ast.FuncDecl

	dispatch  []ifaceNote
	enumerate []ifaceNote

	// pkgDirectives holds file-level package markers ("errorboundary",
	// "lockscope") per package.
	pkgDirectives map[*Package]map[string]bool

	// waivers maps filename → line → waiver.
	waivers map[string]map[int]*waiver

	errs []string
}

func scanAnnotations(prog *Program) *annotations {
	n := &annotations{
		prog:          prog,
		hot:           map[types.Object]bool{},
		hotDecls:      map[*Package][]*ast.FuncDecl{},
		pkgDirectives: map[*Package]map[string]bool{},
		waivers:       map[string]map[int]*waiver{},
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					n.scanComment(pkg, c)
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					n.scanFuncDirective(pkg, fd, c)
				}
			}
		}
	}
	return n
}

func (n *annotations) scanComment(pkg *Package, c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	switch {
	case text == dirErrorBoundary:
		n.markPkg(pkg, "errorboundary")
	case text == dirLockScope:
		n.markPkg(pkg, "lockscope")
	case strings.HasPrefix(text, dirAllow):
		pos := n.prog.Fset.Position(c.Pos())
		rest := strings.TrimSpace(strings.TrimPrefix(text, dirAllow))
		category, reason, _ := strings.Cut(rest, " ")
		reason = strings.TrimSpace(strings.TrimLeft(strings.TrimSpace(reason), "—-"))
		if category == "" || reason == "" {
			n.errs = append(n.errs, fmt.Sprintf(
				"%s:%d: malformed %s: want %q", pos.Filename, pos.Line, dirAllow,
				dirAllow+" <category> — <reason>"))
			return
		}
		if n.waivers[pos.Filename] == nil {
			n.waivers[pos.Filename] = map[int]*waiver{}
		}
		n.waivers[pos.Filename][pos.Line] = &waiver{Category: category, Reason: reason, Pos: pos}
	}
}

func (n *annotations) scanFuncDirective(pkg *Package, fd *ast.FuncDecl, c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	switch {
	case text == dirHotpath:
		if obj := pkg.Info.Defs[fd.Name]; obj != nil {
			n.hot[obj] = true
		}
		n.hotDecls[pkg] = append(n.hotDecls[pkg], fd)
	case strings.HasPrefix(text, dirDispatch+" "):
		n.dispatch = append(n.dispatch, ifaceNote{
			Pkg: pkg, Decl: fd, Iface: strings.TrimSpace(strings.TrimPrefix(text, dirDispatch)),
		})
	case strings.HasPrefix(text, dirEnumerate+" "):
		n.enumerate = append(n.enumerate, ifaceNote{
			Pkg: pkg, Decl: fd, Iface: strings.TrimSpace(strings.TrimPrefix(text, dirEnumerate)),
		})
	}
}

func (n *annotations) markPkg(pkg *Package, directive string) {
	if n.pkgDirectives[pkg] == nil {
		n.pkgDirectives[pkg] = map[string]bool{}
	}
	n.pkgDirectives[pkg][directive] = true
}

func (n *annotations) validate() error {
	if len(n.errs) == 0 {
		return nil
	}
	return fmt.Errorf("lint: %s", strings.Join(n.errs, "\n"))
}

// waived reports whether an //inklint:allow with the diagnostic's category
// sits on the same line or the line above it (doc-comment position).
func (n *annotations) waived(d Diagnostic) bool {
	lines := n.waivers[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if w := lines[line]; w != nil && (w.Category == d.Category || w.Category == "all") {
			return true
		}
	}
	return false
}

// IsHot reports whether obj is an //inkfuse:hotpath-annotated function.
func (p *Program) IsHot(obj types.Object) bool { return p.notes.hot[obj] }

// HotDecls returns the hotpath-annotated declarations of pkg.
func (p *Program) HotDecls(pkg *Package) []*ast.FuncDecl { return p.notes.hotDecls[pkg] }

// HasDirective reports whether any file of pkg carries the given package
// directive ("errorboundary", "lockscope").
func (p *Program) HasDirective(pkg *Package, directive string) bool {
	return p.notes.pkgDirectives[pkg][directive]
}

// resolveIface resolves an annotation argument "pkgbase.Name" against the
// loaded packages: the package whose import-path basename matches, looked up
// by name. Returns nil if unresolved.
func (p *Program) resolveIface(arg string) (*types.Interface, *types.TypeName) {
	base, name, ok := strings.Cut(arg, ".")
	if !ok {
		return nil, nil
	}
	for _, pkg := range p.Packages {
		if pathBase(pkg.Path) != base {
			continue
		}
		obj, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			return iface, obj
		}
	}
	return nil, nil
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

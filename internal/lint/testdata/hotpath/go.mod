module hotfix

go 1.21

// Package kernel is the hotpath analyzer fixture: each function exhibits one
// diagnostic category, with clean variants alongside.
package kernel

import (
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

type state struct {
	buf  []byte
	keys map[int64]int
}

// cold is deliberately not annotated; hot code may not call it.
func cold(n int64) int64 { return n + 1 }

//inkfuse:hotpath
func hot(n int64) int64 { return n * 3 }

//inkfuse:hotpath
func allocs(s *state, n int) {
	s.buf = make([]byte, n)        // want "make allocates"
	s.buf = append(s.buf, byte(n)) // want "append may grow"
	_ = &state{}                   // want "escapes to the heap"
	_ = []int{n}                   // want "slice literal allocates"
}

//inkfuse:hotpath
func strings(a, b string) string {
	c := a + b            // want "string concatenation allocates"
	raw := []byte(c)      // want "string conversion allocates"
	return string(raw[0]) // ok: single-byte conversion of a byte value
}

//inkfuse:hotpath
func maps(s *state, k int64) int {
	s.keys[k] = 1    // want "runtime map access"
	return s.keys[k] // want "runtime map access"
}

//inkfuse:hotpath
func boxes(n int64) any {
	var v any = n // want "boxing int64 into"
	return v
}

//inkfuse:hotpath
func calls(n int64) int64 {
	n = cold(n)                       // want "not //inkfuse:hotpath"
	_ = strconv.Itoa(int(n))          // want "outside the hot-path stdlib allowlist"
	return int64(bits.OnesCount64(0)) // ok: math/bits is allowlisted
}

//inkfuse:hotpath
func closures() func() {
	return func() {} // want "function literal allocates a closure"
}

//inkfuse:hotpath
func waived(n int) []byte {
	return make([]byte, n) //inklint:allow alloc — fixture: waiver suppresses the finding
}

// recorder models the flight-recorder pattern: an annotated Record built on
// the allowlisted sync/atomic + time packages is callable from hot code, while
// the lock-taking label interner must stay on cold paths.
type recorder struct {
	seq   atomic.Int64
	epoch time.Time
}

// intern is deliberately cold: label interning takes a lock.
func (r *recorder) intern(s string) int64 { return int64(len(s)) }

//inkfuse:hotpath
func (r *recorder) record(v int64) {
	r.seq.Add(v)            // ok: sync/atomic is allowlisted
	_ = time.Since(r.epoch) // ok: time is allowlisted
}

//inkfuse:hotpath
func recordSites(r *recorder, label string) {
	r.record(1)         // ok: hot → hot module call
	_ = r.intern(label) // want "not //inkfuse:hotpath"
}

//inkfuse:hotpath
func clean(s *state, n int64) int64 {
	var acc int64
	for _, b := range s.buf {
		acc += int64(b) * n
	}
	if acc < 0 {
		panic(cold(acc)) // ok: panic arguments are cold
	}
	return acc + hot(n)
}

// Package guard is the lockscope fixture: shard-style critical sections that
// span fault points, channel operations, and callbacks.
//
//inklint:lockscope
package guard

import (
	"sync"

	"lockfix/faultinject"
)

type shard struct {
	mu   sync.Mutex
	n    int
	wake chan int
}

func (s *shard) faulty() {
	s.mu.Lock()
	faultinject.Delay("guard/faulty") // want "faultinject.Delay while holding s.mu"
	s.n++
	s.mu.Unlock()
	faultinject.Delay("guard/after") // ok: lock released
}

func (s *shard) chatty() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wake <- s.n // want "channel send while holding s.mu"
	go s.faulty() // want "goroutine spawn while holding s.mu"
}

func (s *shard) callback(f func()) {
	s.mu.Lock()
	f() // want "indirect call through a function value while holding s.mu"
	s.mu.Unlock()
	f() // ok: lock released
}

func (s *shard) clean() int {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	return n
}

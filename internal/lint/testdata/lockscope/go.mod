module lockfix

go 1.21

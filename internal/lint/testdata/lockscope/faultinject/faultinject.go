// Package faultinject is the fixture stand-in for the engine's fault
// injection registry.
package faultinject

// Delay blocks at a named fault point when a fault is armed.
func Delay(name string) {}

module backendfix

go 1.21

// Package ir is the backendcomplete fixture: a mini statement interface with
// four implementors.
package ir

// Stmt is the dispatch interface; every backend must handle all of it.
type Stmt interface{ stmt() }

type Assign struct{ Dst, Src int }

func (Assign) stmt() {}

type Loop struct{ Body []Stmt }

func (Loop) stmt() {}

type Ret struct{}

func (Ret) stmt() {}

// Halt is handled by neither backend function below.
type Halt struct{} // want "Halt"

func (Halt) stmt() {}

// Package emit is the backendcomplete fixture backend: its dispatch switch
// and enumeration both miss ir.Halt.
package emit

import "backendfix/ir"

// emit lowers one statement.
//
//inklint:dispatch ir.Stmt
func emit(s ir.Stmt) int {
	switch s := s.(type) { // want "Halt"
	case *ir.Assign:
		return s.Dst
	case ir.Loop:
		return len(s.Body)
	case ir.Ret:
		return 0
	default:
		return -1
	}
}

// allStmts enumerates one instance of every statement, for the
// generate-everything interpreter build.
//
//inklint:enumerate ir.Stmt
func allStmts() []ir.Stmt {
	return []ir.Stmt{
		ir.Assign{},
		ir.Loop{},
		ir.Ret{},
	}
}

var _ = emit
var _ = allStmts

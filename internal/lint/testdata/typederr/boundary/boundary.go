// Package boundary is the typederr fixture: an error-boundary package whose
// error values must be typed sentinels wrapped with %w.
//
//inklint:errorboundary
package boundary

import (
	"errors"
	"fmt"
)

// ErrBad is a well-named package sentinel.
var ErrBad = errors.New("boundary: bad input")

// brokenPipe violates the sentinel naming convention.
var brokenPipe = errors.New("boundary: broken pipe") // want "sentinel"

func typed(n int) error {
	return fmt.Errorf("%w: value %d", ErrBad, n) // ok: wraps a sentinel
}

func untypedNew() error {
	return errors.New("boundary: ad-hoc failure") // want "errors.New"
}

func untypedErrorf(n int) error {
	return fmt.Errorf("boundary: ad-hoc failure %d", n) // want "%w"
}

func dynamicFormat(f string) error {
	return fmt.Errorf(f, 1) // want "non-constant format"
}

var _ = typed
var _ = untypedNew
var _ = untypedErrorf
var _ = dynamicFormat

module errfix

go 1.21

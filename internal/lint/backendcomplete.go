package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// BackendCompleteAnalyzer mechanizes the enumeration invariant (paper §III):
// every suboperator / IR node must be handled by every backend.
//
// Two obligations, declared as function annotations:
//
//	//inklint:dispatch pkg.Iface   — the function must contain a type switch
//	   over pkg.Iface whose cases cover every concrete implementor of the
//	   interface in the module (T or *T both count).
//	//inklint:enumerate pkg.Iface  — the function must construct (via a
//	   composite literal) every concrete implementor, so prototype
//	   enumeration cannot silently skip a suboperator.
//
// A type exempt from an enumerate obligation (e.g. a suboperator that is
// always fused away and has no standalone primitive) carries
// //inklint:allow enumerate — <reason> on its declaration; the missing-type
// diagnostic is reported at the type declaration so the waiver attaches
// there. Dispatch misses are reported at the type switch itself.
var BackendCompleteAnalyzer = &Analyzer{
	Name: "backendcomplete",
	Doc:  "verifies annotated dispatch switches and enumerations cover every implementor",
	Run:  runBackendComplete,
}

func runBackendComplete(pass *Pass) {
	for _, note := range pass.Prog.notes.dispatch {
		if !note.Pkg.Target {
			continue
		}
		checkDispatch(pass, note)
	}
	for _, note := range pass.Prog.notes.enumerate {
		if !note.Pkg.Target {
			continue
		}
		checkEnumerate(pass, note)
	}
}

// implementors returns every concrete named type in the program that
// implements iface (directly or via pointer receiver), sorted by name.
func implementors(prog *Program, iface *types.Interface) []*types.TypeName {
	var out []*types.TypeName
	for _, pkg := range prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t.Underlying()) {
				continue
			}
			if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
				out = append(out, tn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

func checkDispatch(pass *Pass, note ifaceNote) {
	iface, ifaceObj := pass.Prog.resolveIface(note.Iface)
	if iface == nil {
		pass.Reportf(note.Decl.Pos(), "dispatch", "cannot resolve interface %q in loaded packages", note.Iface)
		return
	}
	impls := implementors(pass.Prog, iface)

	covered := map[types.Object]bool{}
	var switchPos ast.Node
	ast.Inspect(note.Decl, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		// Only switches whose tag has the annotated interface type count.
		var tag ast.Expr
		switch assign := ts.Assign.(type) {
		case *ast.AssignStmt:
			tag = assign.Rhs[0]
		case *ast.ExprStmt:
			tag = assign.X
		}
		ta, ok := ast.Unparen(tag).(*ast.TypeAssertExpr)
		if !ok {
			return true
		}
		tagType := note.Pkg.Info.TypeOf(ta.X)
		if tagType == nil || !types.Identical(tagType.Underlying(), iface) {
			return true
		}
		if switchPos == nil {
			switchPos = ts
		}
		for _, clause := range ts.Body.List {
			cc := clause.(*ast.CaseClause)
			for _, expr := range cc.List {
				t := note.Pkg.Info.TypeOf(expr)
				if t == nil {
					continue
				}
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					covered[named.Obj()] = true
				}
			}
		}
		return true
	})

	if switchPos == nil {
		pass.Reportf(note.Decl.Pos(), "dispatch",
			"%s is annotated //inklint:dispatch %s but contains no type switch over it",
			note.Decl.Name.Name, note.Iface)
		return
	}
	for _, tn := range impls {
		if covered[tn] || tn == ifaceObj {
			continue
		}
		pass.Reportf(switchPos.Pos(), "dispatch",
			"type switch in %s does not handle %s.%s (implements %s)",
			note.Decl.Name.Name, pathBase(tn.Pkg().Path()), tn.Name(), note.Iface)
	}
}

func checkEnumerate(pass *Pass, note ifaceNote) {
	iface, ifaceObj := pass.Prog.resolveIface(note.Iface)
	if iface == nil {
		pass.Reportf(note.Decl.Pos(), "enumerate", "cannot resolve interface %q in loaded packages", note.Iface)
		return
	}
	impls := implementors(pass.Prog, iface)

	constructed := map[types.Object]bool{}
	ast.Inspect(note.Decl, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := note.Pkg.Info.TypeOf(cl)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			constructed[named.Obj()] = true
		}
		return true
	})

	for _, tn := range impls {
		if constructed[tn] || tn == ifaceObj {
			continue
		}
		// Report at the type declaration so an //inklint:allow enumerate
		// waiver can sit on the type it exempts.
		pass.Reportf(tn.Pos(), "enumerate",
			"%s implements %s but is never constructed in %s (//inklint:enumerate)",
			tn.Name(), note.Iface, note.Decl.Name.Name)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathAnalyzer checks //inkfuse:hotpath functions for heap allocations and
// for calls that leave the annotated hot-path set.
//
// Flagged, by category:
//   - alloc: &T{} literals, slice/map composite literals, make/new, append
//     (may grow), string concatenation and string<->[]byte conversions,
//     function literals (closure capture)
//   - map: map reads/writes/iteration/delete (runtime map ops hash + may
//     grow; hot loops use rt's flat tables instead)
//   - box: converting a concrete value to an interface (boxing allocates)
//   - call: calls to module functions not annotated //inkfuse:hotpath, to
//     stdlib packages outside a small allowlist, dynamic interface calls,
//     indirect calls through function values, and goroutine spawns
//
// Arguments of panic(...) are exempt: a panicking hot loop is already off the
// fast path. Findings are waived line-by-line with
// //inklint:allow <category> — <reason>.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "reports heap allocations and escapes from //inkfuse:hotpath functions",
	Run:  runHotpath,
}

// hotStdlib are the stdlib packages hot code may call freely: alloc-free by
// construction (or intrinsic) and latency-bounded. bytes and encoding/binary
// qualify because the packed-row kernels are built on bytes.Equal and
// binary.LittleEndian loads/stores, all of which compile to branch-free
// intrinsics. sync/atomic and time additionally carry the flight recorder's
// hot-path contract: flight.Record (annotated //inkfuse:hotpath) is built on
// exactly these two packages, so recorder call sites inside hot loops pass
// without waivers — while the lock-taking flight.Intern stays cold and is
// flagged if a hot function reaches it.
var hotStdlib = map[string]bool{
	"bytes":           true,
	"encoding/binary": true,
	"math":            true,
	"math/bits":       true,
	"sync":            true,
	"sync/atomic":     true,
	"time":            true,
	"unsafe":          true,
}

func runHotpath(pass *Pass) {
	for _, pkg := range pass.Prog.Packages {
		if !pkg.Target {
			continue
		}
		for _, fd := range pass.Prog.HotDecls(pkg) {
			if fd.Body == nil {
				continue
			}
			hc := &hotChecker{pass: pass, pkg: pkg, decl: fd}
			hc.walk(fd.Body)
		}
	}
}

type hotChecker struct {
	pass *Pass
	pkg  *Package
	decl *ast.FuncDecl
	// addrTaken marks composite literals already reported via &T{}.
	addrTaken map[*ast.CompositeLit]bool
}

func (hc *hotChecker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			hc.report(n.Pos(), "alloc", "function literal allocates a closure")
			return false // creation is the finding; the body runs via dynamic dispatch
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					if hc.addrTaken == nil {
						hc.addrTaken = map[*ast.CompositeLit]bool{}
					}
					hc.addrTaken[cl] = true
					hc.report(n.Pos(), "alloc", "&%s{} literal escapes to the heap", typeName(hc.typeOf(cl)))
				}
			}
		case *ast.CompositeLit:
			if hc.addrTaken[n] {
				return true
			}
			switch hc.typeOf(n).Underlying().(type) {
			case *types.Slice:
				hc.report(n.Pos(), "alloc", "slice literal allocates")
			case *types.Map:
				hc.report(n.Pos(), "alloc", "map literal allocates")
			}
		case *ast.CallExpr:
			return hc.call(n)
		case *ast.IndexExpr:
			if _, ok := hc.typeOf(n.X).Underlying().(*types.Map); ok {
				hc.report(n.Pos(), "map", "runtime map access in hot path")
			}
		case *ast.RangeStmt:
			if _, ok := hc.typeOf(n.X).Underlying().(*types.Map); ok {
				hc.report(n.Pos(), "map", "runtime map iteration in hot path")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if b, ok := hc.typeOf(n).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					hc.report(n.Pos(), "alloc", "string concatenation allocates")
				}
			}
		case *ast.GoStmt:
			hc.report(n.Pos(), "call", "goroutine spawn in hot path")
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					hc.boxCheck(rhs, hc.typeOf(n.Lhs[i]))
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				dst := hc.typeOf(n.Type)
				for _, v := range n.Values {
					hc.boxCheck(v, dst)
				}
			}
		case *ast.ReturnStmt:
			sig, ok := hc.typeOf(hc.decl.Name).(*types.Signature)
			if ok && sig.Results().Len() == len(n.Results) {
				for i, r := range n.Results {
					hc.boxCheck(r, sig.Results().At(i).Type())
				}
			}
		}
		return true
	})
}

// call classifies a call expression; it returns false to skip the subtree
// (panic arguments are cold by definition).
func (hc *hotChecker) call(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	// Unwrap generic instantiation: f[T](...)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if _, ok := hc.typeOf(ix.X).(*types.Signature); ok {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}

	// Type conversions: only string<->[]byte/[]rune copy.
	if tv, ok := hc.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && conversionAllocates(hc.typeOf(call.Args[0]), tv.Type) {
			hc.report(call.Pos(), "alloc", "string conversion allocates")
		}
		return true
	}

	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := hc.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				hc.report(call.Pos(), "alloc", "%s allocates", b.Name())
			case "append":
				hc.report(call.Pos(), "alloc", "append may grow its backing array")
			case "delete":
				hc.report(call.Pos(), "map", "runtime map delete in hot path")
			case "panic":
				return false // panicking is already off the fast path
			}
			return true
		}
	}

	hc.boxCheckArgs(call)

	obj := calleeObject(hc.pkg.Info, fun)
	fn, ok := obj.(*types.Func)
	if !ok {
		hc.report(call.Pos(), "call", "indirect call through function value")
		return true
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		hc.report(call.Pos(), "call", "dynamic interface call to %s", fn.Name())
		return true
	}
	fpkg := fn.Pkg()
	if fpkg == nil || fpkg.Path() == "unsafe" {
		return true
	}
	path := fpkg.Path()
	if path == hc.pass.Prog.Module || strings.HasPrefix(path, hc.pass.Prog.Module+"/") {
		if !hc.pass.Prog.IsHot(origin(fn)) {
			hc.report(call.Pos(), "call", "calls %s.%s, which is not //inkfuse:hotpath", pathBase(path), fn.Name())
		}
		return true
	}
	if !hotStdlib[path] {
		hc.report(call.Pos(), "call", "calls %s.%s outside the hot-path stdlib allowlist", path, fn.Name())
	}
	return true
}

// boxCheckArgs checks each argument against its parameter type, including the
// variadic tail.
func (hc *hotChecker) boxCheckArgs(call *ast.CallExpr) {
	sig, ok := hc.typeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			dst = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				dst = s.Elem()
			}
		case params.Len() > 0:
			dst = params.At(params.Len() - 1).Type()
		}
		if dst != nil {
			hc.boxCheck(arg, dst)
		}
	}
}

// boxCheck reports when assigning src to a dst interface boxes a concrete
// value (which allocates unless the value is pointer-shaped).
func (hc *hotChecker) boxCheck(src ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	if _, isTP := dst.(*types.TypeParam); isTP {
		return
	}
	st := hc.typeOf(src)
	if st == nil || types.IsInterface(st.Underlying()) {
		return
	}
	if b, ok := st.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch st.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: fits in the interface word
	}
	hc.report(src.Pos(), "box", "boxing %s into %s allocates", typeName(st), typeName(dst))
}

func (hc *hotChecker) typeOf(e ast.Expr) types.Type {
	if t := hc.pkg.Info.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func (hc *hotChecker) report(pos token.Pos, category, format string, args ...any) {
	hc.pass.Reportf(pos, category, format, args...)
}

// calleeObject resolves the object a call expression's fun refers to.
func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch f := fun.(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			return sel.Obj()
		}
		return info.Uses[f.Sel]
	}
	return nil
}

// origin maps an instantiated generic function back to its declaration.
func origin(fn *types.Func) types.Object { return fn.Origin() }

func conversionAllocates(src, dst types.Type) bool {
	return (isString(src) && isByteOrRuneSlice(dst)) || (isByteOrRuneSlice(src) && isString(dst))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

func typeName(t types.Type) string {
	if t == nil {
		return "?"
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

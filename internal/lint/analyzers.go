package lint

// Analyzers returns the full inklint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotpathAnalyzer,
		BackendCompleteAnalyzer,
		TypedErrAnalyzer,
		LockScopeAnalyzer,
	}
}

// ByName returns the named analyzers, or nil if any name is unknown.
func ByName(names []string) []*Analyzer {
	all := Analyzers()
	var out []*Analyzer
	for _, name := range names {
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
			}
		}
		if !found {
			return nil
		}
	}
	return out
}

package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDispatchDifferential deletes the ir.Copy case from the VM compiler's
// statement dispatch in an overlay (the file on disk is untouched) and
// asserts backendcomplete reports exactly that gap. This is the end-to-end
// guarantee the analyzer exists for: adding an IR node and forgetting one
// backend is caught mechanically.
func TestDispatchDifferential(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	stmtPath := filepath.Join(root, "internal", "vm", "stmt.go")
	src, err := os.ReadFile(stmtPath)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the `case ir.Copy:` block: from its case keyword to the next case.
	text := string(src)
	start := strings.Index(text, "\tcase ir.Copy:")
	if start < 0 {
		t.Fatal("internal/vm/stmt.go has no `case ir.Copy:` block to delete")
	}
	next := strings.Index(text[start+1:], "\tcase ")
	if next < 0 {
		t.Fatal("no case after ir.Copy")
	}
	mutated := text[:start] + text[start+1+next:]

	load := func(overlay map[string][]byte) []Diagnostic {
		t.Helper()
		prog, err := Load(LoadConfig{
			Dir:      root,
			Patterns: []string{"./internal/vm", "./internal/ir"},
			Overlay:  overlay,
		})
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		return RunAnalyzers(prog, []*Analyzer{BackendCompleteAnalyzer})
	}

	// The pristine tree is clean on these packages.
	if diags := load(nil); len(diags) > 0 {
		t.Fatalf("pristine vm/ir not clean: %v", diags)
	}

	diags := load(map[string][]byte{stmtPath: []byte(mutated)})
	if len(diags) == 0 {
		t.Fatal("deleting the ir.Copy dispatch case produced no diagnostic")
	}
	found := false
	for _, d := range diags {
		if !strings.HasSuffix(d.Pos.Filename, "stmt.go") || d.Pos.Line == 0 {
			t.Errorf("diagnostic lacks a stmt.go file:line position: %+v", d)
		}
		if strings.Contains(d.Message, "ir.Copy") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no diagnostic names the deleted ir.Copy case: %v", diags)
	}
}

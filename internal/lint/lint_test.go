package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRx extracts the quoted substrings of a `// want "..." "..."` comment.
var wantRx = regexp.MustCompile(`// want((?: "[^"]*")+)`)

// expectations scans a fixture module for // want comments and returns them
// keyed by "relpath:line".
func expectations(t *testing.T, dir string) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRx.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", rel, i+1)
			for _, q := range regexp.MustCompile(`"[^"]*"`).FindAllString(m[1], -1) {
				out[key] = append(out[key], strings.Trim(q, `"`))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// checkFixture loads one testdata module, runs every analyzer, and compares
// the diagnostics against the fixture's // want comments: each diagnostic
// must be expected at its line, and each expectation must fire.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(LoadConfig{Dir: dir})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := RunAnalyzers(prog, Analyzers())

	want := expectations(t, dir)
	matched := map[string]int{}
	for _, d := range diags {
		rel, err := filepath.Rel(dir, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		key := fmt.Sprintf("%s:%d", rel, d.Pos.Line)
		hit := false
		for _, substr := range want[key] {
			if strings.Contains(d.Message, substr) {
				hit = true
				matched[key]++
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic at %s: %s(%s): %s", key, d.Analyzer, d.Category, d.Message)
		}
	}
	for key, substrs := range want {
		if matched[key] < len(substrs) {
			t.Errorf("expected diagnostics at %s (%q) did not all fire (%d/%d)",
				key, substrs, matched[key], len(substrs))
		}
	}
}

func TestFixtureHotpath(t *testing.T)   { checkFixture(t, "hotpath") }
func TestFixtureBackend(t *testing.T)   { checkFixture(t, "backend") }
func TestFixtureTypedErr(t *testing.T)  { checkFixture(t, "typederr") }
func TestFixtureLockScope(t *testing.T) { checkFixture(t, "lockscope") }

package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// TypedErrAnalyzer enforces the error contract of the serving boundary: in
// packages marked //inklint:errorboundary (exec, serve, sched), every
// constructed error must be classifiable by errors.Is — a package-level
// sentinel (var ErrX = errors.New), a typed error struct, or an error that
// wraps one via %w. Otherwise serve's status mapping silently falls through
// to 500/internal.
//
// Flagged, all under category "error":
//   - errors.New inside a function body (un-matchable: allocates a fresh
//     identity per call)
//   - fmt.Errorf whose format string contains no %w verb
//   - fmt.Errorf with a non-constant format string (unverifiable)
//   - package-level errors.New sentinels not named Err*/err* (undiscoverable)
var TypedErrAnalyzer = &Analyzer{
	Name: "typederr",
	Doc:  "errors crossing the exec/serve/sched boundary must be typed or wrap a sentinel",
	Run:  runTypedErr,
}

func runTypedErr(pass *Pass) {
	for _, pkg := range pass.Prog.Packages {
		if !pkg.Target || !pass.Prog.HasDirective(pkg, "errorboundary") {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body != nil {
						checkErrBody(pass, pkg, d.Body)
					}
				case *ast.GenDecl:
					if d.Tok == token.VAR {
						checkSentinelNames(pass, pkg, d)
					}
				}
			}
		}
	}
}

func checkErrBody(pass *Pass, pkg *Package, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch callPath(pkg, call) {
		case "errors.New":
			pass.Reportf(call.Pos(), "error",
				"errors.New inside a function creates an unclassifiable error; use a package-level sentinel or wrap one with %%w")
		case "fmt.Errorf":
			checkErrorf(pass, call)
		}
		return true
	})
}

func checkErrorf(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		pass.Reportf(call.Pos(), "error",
			"fmt.Errorf with a non-constant format string cannot be verified to wrap a sentinel")
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !strings.Contains(format, "%w") {
		pass.Reportf(call.Pos(), "error",
			"fmt.Errorf without %%w constructs an untyped error; wrap a sentinel so errors.Is can classify it")
	}
}

// checkSentinelNames enforces Err*/err* naming for package-level errors.New /
// fmt.Errorf values so boundary sentinels stay discoverable.
func checkSentinelNames(pass *Pass, pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, v := range vs.Values {
			call, ok := ast.Unparen(v).(*ast.CallExpr)
			if !ok || i >= len(vs.Names) {
				continue
			}
			p := callPath(pkg, call)
			if p != "errors.New" && p != "fmt.Errorf" {
				continue
			}
			name := vs.Names[i].Name
			if !strings.HasPrefix(name, "Err") && !strings.HasPrefix(name, "err") {
				pass.Reportf(vs.Names[i].Pos(), "error",
					"package-level error %s should be named Err* (or err*) to read as a sentinel", name)
			}
		}
	}
}

// callPath returns "pkgbase.Func" for a direct qualified call, or "".
func callPath(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := calleeObject(pkg.Info, sel)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return pathBase(obj.Pkg().Path()) + "." + obj.Name()
}

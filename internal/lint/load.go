// Package lint is a self-contained static-analysis framework for the inkfuse
// engine, in the spirit of golang.org/x/tools/go/analysis but built only on
// the standard library (go/ast, go/parser, go/types, go/importer) so the
// repository stays dependency-free.
//
// It loads the module with full type information, scans the annotation
// vocabulary (//inkfuse:hotpath, //inklint:allow, //inklint:dispatch,
// //inklint:enumerate, //inklint:errorboundary, //inklint:lockscope) and runs
// a suite of Analyzers that mechanize the engine's invariants. See DESIGN.md
// §12 for the invariant catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is any directory inside the module; Load walks up to the nearest
	// go.mod to find the module root.
	Dir string
	// Patterns selects the target packages analyzers report on, as
	// module-relative directory patterns: "./..." (everything, the default),
	// "./internal/vm/..." (subtree), or "./internal/vm" (single package).
	// Dependencies of targets are always loaded for type information but are
	// not themselves analyzed unless matched by a pattern.
	Patterns []string
	// Overlay maps absolute file paths to replacement contents, letting tests
	// typecheck a scratch copy of a file (e.g. a dispatch switch with a case
	// deleted) without touching the tree.
	Overlay map[string][]byte
}

// Package is one type-checked package of the module.
type Package struct {
	// Path is the import path, Dir the absolute directory.
	Path string
	Dir  string
	// Files are the parsed syntax trees in filename order; Filenames holds
	// the matching absolute paths.
	Files     []*ast.File
	Filenames []string
	Types     *types.Package
	Info      *types.Info
	// Target reports whether the package matched LoadConfig.Patterns (and so
	// should be analyzed, not just loaded for type information).
	Target bool
}

// Program is a loaded module: every requested package plus its module-internal
// dependencies, type-checked against a shared FileSet.
type Program struct {
	Fset *token.FileSet

	// Module is the module path from go.mod; Root is its absolute directory.
	Module string
	Root   string
	// Packages in deterministic (import-path) order.
	Packages []*Package

	byPath map[string]*Package
	notes  *annotations
}

// ByPath returns the loaded package with the given import path, or nil.
func (p *Program) ByPath(path string) *Package { return p.byPath[path] }

// Load parses and type-checks the module containing cfg.Dir.
func Load(cfg LoadConfig) (*Program, error) {
	root, module, err := findModule(cfg.Dir)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:   token.NewFileSet(),
		Module: module,
		Root:   root,
		byPath: map[string]*Package{},
	}

	dirs, err := packageDirs(root, module)
	if err != nil {
		return nil, err
	}
	targets, err := matchPatterns(root, module, dirs, cfg.Patterns)
	if err != nil {
		return nil, err
	}

	// Parse targets, then pull in module-internal imports transitively.
	queue := append([]string(nil), targets...)
	parsed := map[string]*Package{}
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if _, ok := parsed[path]; ok {
			continue
		}
		dir, ok := dirs[path]
		if !ok {
			return nil, fmt.Errorf("lint: import %q not found in module %s", path, module)
		}
		pkg, err := parsePackage(prog.Fset, path, dir, cfg.Overlay)
		if err != nil {
			return nil, err
		}
		parsed[path] = pkg
		for _, imp := range moduleImports(module, pkg.Files) {
			queue = append(queue, imp)
		}
	}
	for _, t := range targets {
		parsed[t].Target = true
	}

	order, err := topoSort(module, parsed)
	if err != nil {
		return nil, err
	}

	imp := &chainImporter{
		prog:   prog,
		stdlib: importer.ForCompiler(prog.Fset, "source", nil),
	}
	for _, pkg := range order {
		if err := typecheckPackage(prog.Fset, pkg, imp); err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[pkg.Path] = pkg
	}
	prog.notes = scanAnnotations(prog)
	if err := prog.notes.validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// findModule walks up from dir to the nearest go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// packageDirs maps each import path in the module to its directory. A
// directory is a package if it holds at least one non-test .go file. testdata
// and hidden directories are skipped, as are nested modules.
func packageDirs(root, module string) (map[string]string, error) {
	dirs := map[string]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs[path] = path
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for dir := range dirs {
		rel, _ := filepath.Rel(root, dir)
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		out[path] = dir
	}
	return out, nil
}

// matchPatterns resolves LoadConfig.Patterns against the discovered package
// dirs, returning the target import paths in sorted order.
func matchPatterns(root, module string, dirs map[string]string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	match := func(path string) bool {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, module), "/")
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			pat = strings.TrimPrefix(strings.TrimPrefix(pat, module), "/")
			if pat == "..." {
				return true
			}
			if sub, ok := strings.CutSuffix(pat, "/..."); ok {
				if rel == sub || strings.HasPrefix(rel, sub+"/") {
					return true
				}
				continue
			}
			if rel == pat {
				return true
			}
		}
		return false
	}
	var targets []string
	for path := range dirs {
		if match(path) {
			targets = append(targets, path)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: patterns %v matched no packages", patterns)
	}
	sort.Strings(targets)
	return targets, nil
}

// parsePackage parses the non-test .go files of one directory, honouring the
// overlay. All files must declare the same package name.
func parsePackage(fset *token.FileSet, path, dir string, overlay map[string][]byte) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		filename := filepath.Join(dir, e.Name())
		var src any
		if overlay != nil {
			if data, ok := overlay[filename]; ok {
				src = data
			}
		}
		f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filename, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, filename)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return pkg, nil
}

// moduleImports returns the module-internal import paths of the files.
func moduleImports(module string, files []*ast.File) []string {
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == module || strings.HasPrefix(p, module+"/") {
				out = append(out, p)
			}
		}
	}
	return out
}

// topoSort orders packages so dependencies are type-checked before dependents.
func topoSort(module string, pkgs map[string]*Package) ([]*Package, error) {
	var order []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		pkg := pkgs[path]
		deps := moduleImports(module, pkg.Files)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := pkgs[d]; !ok {
				return fmt.Errorf("lint: %s imports %s which was not loaded", path, d)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, pkg)
		return nil
	}
	var paths []string
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// chainImporter resolves module-internal imports from already-checked packages
// and everything else (the standard library) through the source importer.
type chainImporter struct {
	prog   *Program
	stdlib types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.prog.byPath[path]; ok {
		return pkg.Types, nil
	}
	return c.stdlib.Import(path)
}

func typecheckPackage(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		if len(msgs) > 8 {
			msgs = append(msgs[:8], fmt.Sprintf("... and %d more", len(msgs)-8))
		}
		return fmt.Errorf("lint: typecheck %s:\n\t%s", pkg.Path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return fmt.Errorf("lint: typecheck %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	return nil
}

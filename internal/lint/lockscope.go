package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// LockScopeAnalyzer checks, in packages marked //inklint:lockscope (the rt
// shard tables), that a sync.Mutex/RWMutex critical section never spans:
//
//   - a faultinject call (an injected delay or error while holding a shard
//     lock stalls every worker hashing into that shard)
//   - a channel operation (send/receive/select/range) — the classic
//     lock-ordering deadlock shape with the scheduler
//   - a goroutine spawn or an indirect call through a function value
//     (callbacks can re-enter the table and self-deadlock)
//
// The critical section is approximated lexically: from the Lock()/RLock()
// statement to the matching Unlock()/RUnlock() in the same statement list,
// or — for defer Unlock and unpaired locks — to the end of the enclosing
// list. Findings are waived with //inklint:allow lockscope — <reason>.
var LockScopeAnalyzer = &Analyzer{
	Name: "lockscope",
	Doc:  "shard-lock critical sections must not span fault points, channel ops, or callbacks",
	Run:  runLockScope,
}

func runLockScope(pass *Pass) {
	for _, pkg := range pass.Prog.Packages {
		if !pkg.Target || !pass.Prog.HasDirective(pkg, "lockscope") {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var list []ast.Stmt
				switch n := n.(type) {
				case *ast.BlockStmt:
					list = n.List
				case *ast.CaseClause:
					list = n.Body
				case *ast.CommClause:
					list = n.Body
				default:
					return true
				}
				scanLockRegions(pass, pkg, list)
				return true
			})
		}
	}
}

func scanLockRegions(pass *Pass, pkg *Package, list []ast.Stmt) {
	for i, stmt := range list {
		recv, isLock := lockCall(pkg, stmt)
		if !isLock {
			continue
		}
		// Find the matching unlock in this list; defer pins the region to the
		// end of the list (the lock is held for the rest of the function).
		end := len(list)
		for j := i + 1; j < len(list); j++ {
			if u, isUnlock := unlockCall(pkg, list[j]); isUnlock && u == recv {
				if _, isDefer := list[j].(*ast.DeferStmt); !isDefer {
					end = j
				}
				break
			}
		}
		for j := i + 1; j < end; j++ {
			// Skip the defer unlock statement itself.
			if u, isUnlock := unlockCall(pkg, list[j]); isUnlock && u == recv {
				continue
			}
			checkLockedStmt(pass, pkg, list[j], recv)
		}
	}
}

// checkLockedStmt flags forbidden operations inside a critical section.
// Function-literal bodies are skipped: defining a closure under a lock is
// fine, invoking one is flagged at the call.
func checkLockedStmt(pass *Pass, pkg *Package, stmt ast.Stmt, recv string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "lockscope", "channel send while holding %s", recv)
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "lockscope", "select while holding %s", recv)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "lockscope", "goroutine spawn while holding %s", recv)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "lockscope", "channel receive while holding %s", recv)
			}
		case *ast.RangeStmt:
			if _, ok := pkg.Info.TypeOf(n.X).Underlying().(*types.Chan); ok {
				pass.Reportf(n.Pos(), "lockscope", "range over channel while holding %s", recv)
			}
		case *ast.CallExpr:
			checkLockedCall(pass, pkg, n, recv)
		}
		return true
	})
}

func checkLockedCall(pass *Pass, pkg *Package, call *ast.CallExpr, recv string) {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if _, ok := pkg.Info.TypeOf(ix.X).(*types.Signature); ok {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	obj := calleeObject(pkg.Info, fun)
	switch obj := obj.(type) {
	case *types.Builtin, *types.Nil:
		return
	case *types.Func:
		if p := obj.Pkg(); p != nil && pathBase(p.Path()) == "faultinject" {
			pass.Reportf(call.Pos(), "lockscope",
				"faultinject.%s while holding %s: an injected fault would stall the shard", obj.Name(), recv)
		}
		return
	default:
		pass.Reportf(call.Pos(), "lockscope",
			"indirect call through a function value while holding %s", recv)
	}
}

// lockCall reports whether stmt is a sync mutex Lock/RLock call, returning
// the rendered receiver expression ("s.mu").
func lockCall(pkg *Package, stmt ast.Stmt) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	return mutexCall(pkg, es.X, "Lock", "RLock")
}

// unlockCall matches both `x.Unlock()` and `defer x.Unlock()`.
func unlockCall(pkg *Package, stmt ast.Stmt) (string, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return mutexCall(pkg, s.X, "Unlock", "RUnlock")
	case *ast.DeferStmt:
		return mutexCall(pkg, s.Call, "Unlock", "RUnlock")
	}
	return "", false
}

func mutexCall(pkg *Package, expr ast.Expr, names ...string) (string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := calleeObject(pkg.Info, sel).(*types.Func)
	if !ok {
		return "", false
	}
	match := false
	for _, name := range names {
		if fn.Name() == name {
			match = true
		}
	}
	if !match || !isSyncMutex(fn) {
		return "", false
	}
	return exprString(sel.X), true
}

func isSyncMutex(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}

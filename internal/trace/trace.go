// Package trace records opt-in per-query execution traces: per pipeline the
// morsel count, per-worker busy time and tuple counts, the hybrid backend's
// routing decisions (which morsels ran on compiled code vs the vectorized
// interpreter, the EWMA throughput series, when the background artifact
// landed), compile timing, and finalization time.
//
// The recording discipline keeps tracing out of the per-row hot path: every
// write happens at morsel granularity or coarser, each worker writes only its
// own pre-allocated Worker entry (no locks, no atomics), and with tracing off
// the scheduler skips all of it behind a single nil check per morsel.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// MaxEWMASamples caps the per-worker EWMA throughput series so long queries
// cannot grow a trace without bound; samples beyond the cap are counted in
// Worker.EWMADropped instead of stored.
const MaxEWMASamples = 512

// Query is the execution trace of one query.
type Query struct {
	Query   string
	Backend string
	Workers int
	// ID is the engine-wide query id the execution ran under — the join key
	// against flight-recorder events and scheduler QueryInfos.
	ID uint64
	// TraceID / ParentSpanID carry W3C trace-context correlation from the
	// client (serve parses the traceparent header). Empty when the query was
	// not externally correlated; span export then derives a deterministic
	// trace id from ID.
	TraceID      string
	ParentSpanID string
	// QueueWait is the admission-queue wait preceding execution; span export
	// renders it so queueing is visible in the query span.
	QueueWait time.Duration
	// Begin anchors the trace on the wall clock; per-pipeline offsets (e.g.
	// ArtifactReady) are relative to it.
	Begin time.Time
	// Wall is the end-to-end time, set when the query completes or fails.
	Wall time.Duration
	// Err is the terminal failure message ("" on success). A failed or
	// canceled query still carries the pipelines that ran as a partial trace.
	Err       string
	Pipelines []*Pipeline
}

// Pipeline is the trace of one pipeline's execution.
type Pipeline struct {
	Name string
	// Rows is the pipeline's source cardinality; Morsels the number of
	// morsels scheduled over it. On cancellation workers stop early, so the
	// per-worker morsel counts may sum to less than Morsels.
	Rows    int
	Morsels int
	// Start is the pipeline's begin offset from Query.Begin, so span export
	// can place pipelines on the query timeline.
	Start time.Duration
	// Workers is indexed by worker ID; each worker writes only its own entry.
	Workers []Worker
	// Wall spans runner construction (including any foreground compile wait)
	// through finalization; Finalize is the seal/merge tail alone.
	Wall     time.Duration
	Finalize time.Duration
	// Compile accounting, from the pipeline's runner: total compile time,
	// dead wait (foreground backends), and failed compile jobs.
	CompileTime   time.Duration
	CompileWait   time.Duration
	CompileErrors int64
	// Degraded marks a hybrid pipeline whose background compile failed
	// permanently: it was served by the vectorized interpreter alone.
	Degraded bool
	// ArtifactReady is the offset from Query.Begin at which the hybrid
	// background artifact became available (0 = never landed).
	ArtifactReady time.Duration
	// SubOps is the sampled per-suboperator profile, merged across workers in
	// pipeline order; present only when the suboperator profiler ran (backends
	// serving through the vectorized interpreter with profiling enabled).
	SubOps []SubOpProf
	// ProfileEvery / ProfiledChunks describe the sample behind SubOps: one in
	// every ProfileEvery chunks was timed, ProfiledChunks in total.
	ProfileEvery   int
	ProfiledChunks int64
	// PartRows holds the per-partition routed-row counts of the exchanges this
	// pipeline sealed (concatenated in exchange order) — the skew surface of
	// the local hash-partitioned exchange (DESIGN.md §15). Empty unless the
	// plan was lowered with Exchange on and this pipeline routes.
	PartRows []int64
}

// SubOpProf is one suboperator's share of a pipeline's sampled profile: the
// primitive identity plus the calls, input tuples and nanoseconds attributed
// to it over the timed chunks.
type SubOpProf struct {
	ID     string
	Calls  int64
	Tuples int64
	Nanos  int64
}

// NanosPerTuple is the attributed cost per input tuple (0 when no tuples).
func (s SubOpProf) NanosPerTuple() float64 {
	if s.Tuples == 0 {
		return 0
	}
	return float64(s.Nanos) / float64(s.Tuples)
}

// Worker is one worker's share of a pipeline.
type Worker struct {
	// Busy is the time spent running morsels (excludes scheduling gaps).
	Busy    time.Duration
	Morsels int
	Tuples  int64
	// JIT / Vectorized split the worker's morsels by serving backend, as
	// routed by the hybrid policy (for the compiling and ROF backends every
	// morsel is JIT; the pure vectorized backend reports neither).
	JIT        int
	Vectorized int
	// Hash-table kernel counters: aggregation lookups absorbed by the
	// worker's thread-local pre-aggregation table, local group rows spilled
	// into the shard table at morsel boundaries, and join probes answered by
	// the build-side bloom/tag filter without touching bucket memory.
	LocalHits  int64
	Spills     int64
	BloomSkips int64
	// Routed counts rows this worker hash-routed through local exchanges.
	Routed int64
	// EWMA is the hybrid routing-decision series (capped at MaxEWMASamples).
	EWMA        []EWMASample
	EWMADropped int
}

// EWMASample is one measured morsel of the hybrid backend's throughput
// estimator: which backend served it and both EWMA estimates after the
// update (tuples/second).
type EWMASample struct {
	Morsel   int // worker-local morsel ordinal
	JIT      bool
	Tuples   int
	Duration time.Duration
	VecTput  float64
	JITTput  float64
}

// AddEWMA appends a sample, honouring the series cap.
//
//inkfuse:hotpath
func (w *Worker) AddEWMA(s EWMASample) {
	if len(w.EWMA) >= MaxEWMASamples {
		w.EWMADropped++
		return
	}
	w.EWMA = append(w.EWMA, s) //inklint:allow alloc — bounded by MaxEWMASamples and only when tracing is on
}

// NewQuery starts a query trace.
func NewQuery(query, backend string, workers int, begin time.Time) *Query {
	return &Query{Query: query, Backend: backend, Workers: workers, Begin: begin}
}

// StartPipeline appends a pipeline trace with one pre-allocated Worker entry
// per worker, so the morsel loop records without allocating or locking.
func (q *Query) StartPipeline(name string, rows, morsels int) *Pipeline {
	p := &Pipeline{Name: name, Rows: rows, Morsels: morsels, Workers: make([]Worker, q.Workers)}
	q.Pipelines = append(q.Pipelines, p)
	return p
}

// Busy sums worker busy time across the pipeline.
func (p *Pipeline) Busy() time.Duration {
	var d time.Duration
	for i := range p.Workers {
		d += p.Workers[i].Busy
	}
	return d
}

// MorselsRun sums the morsels the workers actually ran (≤ Morsels scheduled
// when the query failed or was canceled mid-pipeline).
func (p *Pipeline) MorselsRun() int {
	n := 0
	for i := range p.Workers {
		n += p.Workers[i].Morsels
	}
	return n
}

// Tuples sums source tuples processed by the pipeline.
func (p *Pipeline) Tuples() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].Tuples
	}
	return n
}

// RoutedJIT / RoutedVectorized sum the pipeline's routing decisions.
func (p *Pipeline) RoutedJIT() int {
	n := 0
	for i := range p.Workers {
		n += p.Workers[i].JIT
	}
	return n
}

// RoutedVectorized sums the morsels served by the vectorized interpreter.
func (p *Pipeline) RoutedVectorized() int {
	n := 0
	for i := range p.Workers {
		n += p.Workers[i].Vectorized
	}
	return n
}

// LocalHits sums aggregation lookups absorbed by thread-local tables.
func (p *Pipeline) LocalHits() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].LocalHits
	}
	return n
}

// Spills sums local pre-aggregation rows merged into the shard tables.
func (p *Pipeline) Spills() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].Spills
	}
	return n
}

// BloomSkips sums join probes the build-side bloom filter answered.
func (p *Pipeline) BloomSkips() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].BloomSkips
	}
	return n
}

// Routed sums rows hash-routed through local exchanges by this pipeline.
func (p *Pipeline) Routed() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].Routed
	}
	return n
}

// MaxPartRows returns the largest sealed partition's routed-row count (the
// skew signal; 0 when the pipeline routed no exchange).
func (p *Pipeline) MaxPartRows() int64 {
	var m int64
	for _, n := range p.PartRows {
		m = max(m, n)
	}
	return m
}

// Query-level totals (across pipelines).

// Tuples sums source tuples across the query.
func (q *Query) Tuples() int64 {
	var n int64
	for _, p := range q.Pipelines {
		n += p.Tuples()
	}
	return n
}

// MorselsRun sums executed morsels across the query.
func (q *Query) MorselsRun() int {
	n := 0
	for _, p := range q.Pipelines {
		n += p.MorselsRun()
	}
	return n
}

// RoutedJIT sums morsels served by compiled code across the query.
func (q *Query) RoutedJIT() int {
	n := 0
	for _, p := range q.Pipelines {
		n += p.RoutedJIT()
	}
	return n
}

// RoutedVectorized sums morsels served by the interpreter across the query.
func (q *Query) RoutedVectorized() int {
	n := 0
	for _, p := range q.Pipelines {
		n += p.RoutedVectorized()
	}
	return n
}

// Dump renders the full trace, one block per pipeline with per-worker lines
// and the (truncated) EWMA series — the -trace output of cmd/inkbench.
func (q *Query) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: backend=%s workers=%d wall=%v", q.Query, q.Backend, q.Workers, q.Wall.Round(time.Microsecond))
	if q.Err != "" {
		fmt.Fprintf(&b, " err=%q", q.Err)
	}
	b.WriteByte('\n')
	for _, p := range q.Pipelines {
		fmt.Fprintf(&b, "pipeline %s: %d rows, %d/%d morsels run, wall=%v busy=%v finalize=%v\n",
			p.Name, p.Rows, p.MorselsRun(), p.Morsels,
			p.Wall.Round(time.Microsecond), p.Busy().Round(time.Microsecond), p.Finalize.Round(time.Microsecond))
		if p.CompileTime > 0 || p.CompileWait > 0 || p.CompileErrors > 0 {
			fmt.Fprintf(&b, "  compile: time=%v wait=%v errors=%d",
				p.CompileTime.Round(time.Microsecond), p.CompileWait.Round(time.Microsecond), p.CompileErrors)
			if p.ArtifactReady > 0 {
				fmt.Fprintf(&b, " artifact-ready=+%v", p.ArtifactReady.Round(time.Microsecond))
			}
			if p.Degraded {
				b.WriteString(" DEGRADED")
			}
			b.WriteByte('\n')
		}
		if lh, sp, bs := p.LocalHits(), p.Spills(), p.BloomSkips(); lh+sp+bs > 0 {
			fmt.Fprintf(&b, "  tables: local_hits=%d spills=%d bloom_skips=%d\n", lh, sp, bs)
		}
		if rt := p.Routed(); rt > 0 || len(p.PartRows) > 0 {
			fmt.Fprintf(&b, "  exchange: routed=%d partitions=%d max_part=%d\n", rt, len(p.PartRows), p.MaxPartRows())
		}
		if len(p.SubOps) > 0 {
			var total int64
			for _, s := range p.SubOps {
				total += s.Nanos
			}
			fmt.Fprintf(&b, "  subops: sampled 1/%d chunks (%d profiled)\n", p.ProfileEvery, p.ProfiledChunks)
			for _, s := range p.SubOps {
				share := 0.0
				if total > 0 {
					share = 100 * float64(s.Nanos) / float64(total)
				}
				fmt.Fprintf(&b, "    %-44s %5.1f%% %10v  calls=%-6d tuples=%-9d ns/tuple=%.1f\n",
					s.ID, share, time.Duration(s.Nanos).Round(time.Microsecond), s.Calls, s.Tuples, s.NanosPerTuple())
			}
		}
		for w := range p.Workers {
			ws := &p.Workers[w]
			if ws.Morsels == 0 {
				continue
			}
			fmt.Fprintf(&b, "  w%d: %d morsels, %d tuples, busy=%v", w, ws.Morsels, ws.Tuples, ws.Busy.Round(time.Microsecond))
			if ws.JIT+ws.Vectorized > 0 {
				fmt.Fprintf(&b, ", routed %d jit / %d vectorized", ws.JIT, ws.Vectorized)
			}
			b.WriteByte('\n')
			for _, s := range ws.EWMA {
				fmt.Fprintf(&b, "    m%-4d %-4s %7d tuples in %-10v ewma jit=%s vec=%s\n",
					s.Morsel, backendTag(s.JIT), s.Tuples, s.Duration.Round(100*time.Nanosecond),
					FormatTput(s.JITTput), FormatTput(s.VecTput))
			}
			if ws.EWMADropped > 0 {
				fmt.Fprintf(&b, "    ... %d further samples dropped (cap %d)\n", ws.EWMADropped, MaxEWMASamples)
			}
		}
	}
	return b.String()
}

func backendTag(jit bool) string {
	if jit {
		return "jit"
	}
	return "vec"
}

// FinalEWMA returns the mean of the workers' last EWMA estimates for the JIT
// and vectorized paths (0 when a path was never measured).
func (p *Pipeline) FinalEWMA() (jit, vec float64) {
	var jSum, vSum float64
	var jN, vN int
	for i := range p.Workers {
		ew := p.Workers[i].EWMA
		for k := len(ew) - 1; k >= 0; k-- {
			if ew[k].JITTput > 0 {
				jSum += ew[k].JITTput
				jN++
				break
			}
		}
		for k := len(ew) - 1; k >= 0; k-- {
			if ew[k].VecTput > 0 {
				vSum += ew[k].VecTput
				vN++
				break
			}
		}
	}
	if jN > 0 {
		jit = jSum / float64(jN)
	}
	if vN > 0 {
		vec = vSum / float64(vN)
	}
	return jit, vec
}

// BusyQuantiles reports min/median/max worker busy time over workers that ran
// at least one morsel; ok is false when no worker ran.
func (p *Pipeline) BusyQuantiles() (lo, med, hi time.Duration, ok bool) {
	var ds []time.Duration
	for i := range p.Workers {
		if p.Workers[i].Morsels > 0 {
			ds = append(ds, p.Workers[i].Busy)
		}
	}
	if len(ds) == 0 {
		return 0, 0, 0, false
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return ds[0], ds[len(ds)/2], ds[len(ds)-1], true
}

// FormatTput renders a tuples/second rate compactly (e.g. "45.6M/s").
func FormatTput(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.1fG/s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f/s", v)
	}
}

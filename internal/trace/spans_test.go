package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildTestTrace assembles a two-pipeline hybrid-ish trace with queue wait,
// compile accounting and an error-free outcome.
func buildTestTrace() *Query {
	begin := time.Unix(1700000000, 0)
	q := NewQuery("q6", "hybrid", 4, begin)
	q.ID = 42
	q.QueueWait = 3 * time.Millisecond
	q.Wall = 120 * time.Millisecond

	p1 := q.StartPipeline("p1", 60000, 4)
	p1.Start = 5 * time.Millisecond
	p1.Wall = 70 * time.Millisecond
	p1.Finalize = 2 * time.Millisecond
	p1.CompileTime = 30 * time.Millisecond
	p1.ArtifactReady = 40 * time.Millisecond
	p1.Workers[0].Morsels = 4
	p1.Workers[0].Tuples = 60000
	p1.Workers[0].JIT = 2
	p1.Workers[0].Vectorized = 2

	p2 := q.StartPipeline("p2", 100, 1)
	p2.Start = 80 * time.Millisecond
	p2.Wall = 30 * time.Millisecond
	p2.Degraded = true
	p2.CompileErrors = 1
	p2.CompileTime = 1 * time.Millisecond
	return q
}

func TestSpansShape(t *testing.T) {
	q := buildTestTrace()
	raw, err := q.Spans()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
					Start        string `json:"startTimeUnixNano"`
					End          string `json:"endTimeUnixNano"`
					Status       struct {
						Code    int    `json:"code"`
						Message string `json:"message"`
					} `json:"status"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("unexpected nesting: %s", raw)
	}
	if got := doc.ResourceSpans[0].Resource.Attributes[0].Value.StringValue; got != "inkfuse" {
		t.Fatalf("service.name = %q", got)
	}
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	// query + queue + 2 pipelines + 2 compiles + 1 finalize
	if len(spans) != 7 {
		t.Fatalf("got %d spans, want 7: %s", len(spans), raw)
	}

	byName := map[string]int{}
	for i, s := range spans {
		byName[s.Name] = i
		if len(s.TraceID) != 32 {
			t.Fatalf("span %q trace id %q not 32 hex chars", s.Name, s.TraceID)
		}
		if len(s.SpanID) != 16 {
			t.Fatalf("span %q span id %q not 16 hex chars", s.Name, s.SpanID)
		}
		if s.Start == "" || s.End == "" || s.Start > s.End && len(s.Start) == len(s.End) {
			t.Fatalf("span %q has bad time range [%s, %s]", s.Name, s.Start, s.End)
		}
	}
	root := spans[byName["query q6"]]
	if root.ParentSpanID != "" {
		t.Fatalf("root span has parent %q", root.ParentSpanID)
	}
	for _, name := range []string{"admission queue", "pipeline p1", "pipeline p2"} {
		i, ok := byName[name]
		if !ok {
			t.Fatalf("span %q missing", name)
		}
		if spans[i].ParentSpanID != root.SpanID {
			t.Fatalf("span %q parent = %q, want root %q", name, spans[i].ParentSpanID, root.SpanID)
		}
	}
	if i, ok := byName["compile p1"]; !ok {
		t.Fatal("compile span missing")
	} else if spans[i].ParentSpanID != spans[byName["pipeline p1"]].SpanID {
		t.Fatal("compile p1 not parented to its pipeline")
	}
	if i := byName["compile p2"]; spans[i].Status.Code != 2 {
		t.Fatalf("degraded pipeline's compile span status = %d, want 2 (error)", spans[i].Status.Code)
	}
}

func TestSpansDeterministic(t *testing.T) {
	a, err := buildTestTrace().Spans()
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildTestTrace().Spans()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("span export is not deterministic across renders of the same trace")
	}
}

func TestSpansTraceCorrelation(t *testing.T) {
	q := buildTestTrace()
	q.TraceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	q.ParentSpanID = "00f067aa0ba902b7"
	raw, err := q.Spans()
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.Contains(s, `"traceId":"4bf92f3577b34da6a3ce929d0e0e4736"`) {
		t.Fatalf("client trace id not honoured: %s", s)
	}
	if !strings.Contains(s, `"parentSpanId":"00f067aa0ba902b7"`) {
		t.Fatalf("client parent span id not attached to the root: %s", s)
	}
}

func TestSpansErrorStatus(t *testing.T) {
	q := buildTestTrace()
	q.Err = "exec: boom"
	raw, err := q.Spans()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"message":"exec: boom"`) {
		t.Fatalf("query error not carried in root span status: %s", raw)
	}
}

// Span export: renders a trace.Query as OTLP-shaped JSON (the
// resourceSpans/scopeSpans/spans nesting of the OpenTelemetry protocol's JSON
// encoding), so the engine's existing execution traces become consumable by
// standard tracing tools without an OTel SDK dependency. One query renders as
//
//	query span
//	├─ queue-wait span (when the admission queue held the query)
//	└─ per-pipeline spans
//	   ├─ compile span (foreground wait or background land)
//	   └─ finalize span
//
// Trace correlation: when Query.TraceID carries a W3C trace id (serve parses
// the traceparent header), spans join the caller's trace under
// Query.ParentSpanID; otherwise a deterministic trace id is derived from the
// engine query id, so repeated exports of one query are stable.
package trace

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"time"
)

// Span ids are derived, not random: FNV-1a over the query id and a span path
// makes exports deterministic and repeatable (same trace → same ids), which
// tests and diffing rely on.
func spanID(qid uint64, path string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", qid, path)
	var b [8]byte
	v := h.Sum64()
	for i := range b {
		b[i] = byte(v >> (56 - 8*i))
	}
	return hex.EncodeToString(b[:])
}

// derivedTraceID builds a stable 16-byte trace id from the query id when no
// client traceparent was supplied.
func derivedTraceID(qid uint64) string {
	h := fnv.New128a()
	fmt.Fprintf(h, "inkfuse-query-%d", qid)
	return hex.EncodeToString(h.Sum(nil))
}

// otlpAttr is one OTLP key-value attribute. Only the value shapes the engine
// emits are modeled (string and int; OTLP encodes ints as decimal strings).
type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    string `json:"intValue,omitempty"`
	BoolValue   *bool  `json:"boolValue,omitempty"`
}

func strAttr(k, v string) otlpAttr {
	return otlpAttr{Key: k, Value: otlpValue{StringValue: v}}
}

func intAttr(k string, v int64) otlpAttr {
	return otlpAttr{Key: k, Value: otlpValue{IntValue: strconv.FormatInt(v, 10)}}
}

func boolAttr(k string, v bool) otlpAttr {
	return otlpAttr{Key: k, Value: otlpValue{BoolValue: &v}}
}

// otlpSpan is one span in OTLP JSON shape: hex ids, nanosecond epoch
// timestamps as decimal strings.
type otlpSpan struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind"` // 1 = SPAN_KIND_INTERNAL
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []otlpAttr `json:"attributes,omitempty"`
	Status            otlpStatus `json:"status"`
}

// otlpStatus carries the span outcome (code 2 = STATUS_CODE_ERROR).
type otlpStatus struct {
	Code    int    `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpAttr `json:"attributes"`
}

// otlpExport is the top-level OTLP JSON document (one per exported query).
type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

func nanos(t time.Time) string {
	return strconv.FormatInt(t.UnixNano(), 10)
}

// Spans renders the query trace as one OTLP-shaped JSON document:
// query → (queue-wait, pipelines → (compile, finalize)). Returns the
// marshaled document; rendering never fails on a well-formed trace, so the
// error only reports JSON encoding problems.
func (q *Query) Spans() ([]byte, error) {
	traceID := q.TraceID
	if traceID == "" {
		traceID = derivedTraceID(q.ID)
	}
	begin := q.Begin
	end := begin.Add(q.Wall)
	qsID := spanID(q.ID, "query")

	root := otlpSpan{
		TraceID:           traceID,
		SpanID:            qsID,
		ParentSpanID:      q.ParentSpanID,
		Name:              "query " + q.Query,
		Kind:              1,
		StartTimeUnixNano: nanos(begin),
		EndTimeUnixNano:   nanos(end),
		Attributes: []otlpAttr{
			strAttr("inkfuse.query", q.Query),
			strAttr("inkfuse.backend", q.Backend),
			intAttr("inkfuse.query_id", int64(q.ID)),
			intAttr("inkfuse.workers", int64(q.Workers)),
		},
	}
	if q.Err != "" {
		root.Status = otlpStatus{Code: 2, Message: q.Err}
	}
	spans := []otlpSpan{root}

	if q.QueueWait > 0 {
		// The admission wait precedes Begin's pipeline work but is inside the
		// query wall; render it as the leading child.
		spans = append(spans, otlpSpan{
			TraceID: traceID, SpanID: spanID(q.ID, "queue"), ParentSpanID: qsID,
			Name: "admission queue", Kind: 1,
			StartTimeUnixNano: nanos(begin),
			EndTimeUnixNano:   nanos(begin.Add(q.QueueWait)),
			Attributes:        []otlpAttr{intAttr("inkfuse.queue_wait_ns", int64(q.QueueWait))},
		})
	}

	for i, p := range q.Pipelines {
		pPath := "pipeline/" + strconv.Itoa(i)
		pID := spanID(q.ID, pPath)
		pStart := begin.Add(p.Start)
		pEnd := pStart.Add(p.Wall)
		ps := otlpSpan{
			TraceID: traceID, SpanID: pID, ParentSpanID: qsID,
			Name: "pipeline " + p.Name, Kind: 1,
			StartTimeUnixNano: nanos(pStart),
			EndTimeUnixNano:   nanos(pEnd),
			Attributes: []otlpAttr{
				intAttr("inkfuse.rows", int64(p.Rows)),
				intAttr("inkfuse.morsels", int64(p.Morsels)),
				intAttr("inkfuse.morsels_run", int64(p.MorselsRun())),
				intAttr("inkfuse.tuples", p.Tuples()),
				intAttr("inkfuse.routed_jit", int64(p.RoutedJIT())),
				intAttr("inkfuse.routed_vectorized", int64(p.RoutedVectorized())),
				boolAttr("inkfuse.degraded", p.Degraded),
			},
		}
		spans = append(spans, ps)

		if p.CompileTime > 0 || p.CompileWait > 0 || p.CompileErrors > 0 {
			// Foreground backends: the compile wait leads the pipeline.
			// Hybrid: the artifact landed ArtifactReady after query begin,
			// having compiled for CompileTime in the background.
			cStart := pStart
			cEnd := cStart.Add(max(p.CompileTime, p.CompileWait))
			if p.ArtifactReady > 0 {
				cEnd = begin.Add(p.ArtifactReady)
				cStart = cEnd.Add(-p.CompileTime)
			}
			cs := otlpSpan{
				TraceID: traceID, SpanID: spanID(q.ID, pPath+"/compile"), ParentSpanID: pID,
				Name: "compile " + p.Name, Kind: 1,
				StartTimeUnixNano: nanos(cStart),
				EndTimeUnixNano:   nanos(cEnd),
				Attributes: []otlpAttr{
					intAttr("inkfuse.compile_ns", int64(p.CompileTime)),
					intAttr("inkfuse.compile_wait_ns", int64(p.CompileWait)),
					intAttr("inkfuse.compile_errors", p.CompileErrors),
				},
			}
			if p.Degraded {
				cs.Status = otlpStatus{Code: 2, Message: "background compile failed; pipeline degraded to vectorized"}
			}
			spans = append(spans, cs)
		}

		if p.Finalize > 0 {
			spans = append(spans, otlpSpan{
				TraceID: traceID, SpanID: spanID(q.ID, pPath+"/finalize"), ParentSpanID: pID,
				Name: "finalize " + p.Name, Kind: 1,
				StartTimeUnixNano: nanos(pEnd.Add(-p.Finalize)),
				EndTimeUnixNano:   nanos(pEnd),
			})
		}
	}

	doc := otlpExport{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpAttr{
			strAttr("service.name", "inkfuse"),
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "inkfuse/trace"},
			Spans: spans,
		}},
	}}}
	return json.Marshal(doc)
}

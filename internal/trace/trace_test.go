package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTotalsAndQuantiles(t *testing.T) {
	q := NewQuery("q", "hybrid", 3, time.Now())
	p := q.StartPipeline("p0", 1000, 10)
	if len(p.Workers) != 3 {
		t.Fatalf("workers: got %d, want 3", len(p.Workers))
	}
	p.Workers[0] = Worker{Busy: 2 * time.Millisecond, Morsels: 4, Tuples: 400, JIT: 3, Vectorized: 1}
	p.Workers[1] = Worker{Busy: 1 * time.Millisecond, Morsels: 3, Tuples: 300, JIT: 1, Vectorized: 2}
	p.Workers[2] = Worker{Busy: 3 * time.Millisecond, Morsels: 3, Tuples: 300, JIT: 2, Vectorized: 1}

	if got := p.MorselsRun(); got != 10 {
		t.Errorf("MorselsRun: got %d, want 10", got)
	}
	if got := p.Tuples(); got != 1000 {
		t.Errorf("Tuples: got %d, want 1000", got)
	}
	if p.RoutedJIT() != 6 || p.RoutedVectorized() != 4 {
		t.Errorf("routing: got %d/%d, want 6/4", p.RoutedJIT(), p.RoutedVectorized())
	}
	if q.Tuples() != 1000 || q.MorselsRun() != 10 || q.RoutedJIT() != 6 || q.RoutedVectorized() != 4 {
		t.Errorf("query totals wrong: %d %d %d %d", q.Tuples(), q.MorselsRun(), q.RoutedJIT(), q.RoutedVectorized())
	}
	lo, med, hi, ok := p.BusyQuantiles()
	if !ok || lo != time.Millisecond || med != 2*time.Millisecond || hi != 3*time.Millisecond {
		t.Errorf("quantiles: got %v %v %v %v", lo, med, hi, ok)
	}
}

func TestEWMACapAndFinal(t *testing.T) {
	q := NewQuery("q", "hybrid", 1, time.Now())
	p := q.StartPipeline("p0", 0, 0)
	w := &p.Workers[0]
	for i := 0; i < MaxEWMASamples+7; i++ {
		w.AddEWMA(EWMASample{Morsel: i, JIT: i%2 == 0, JITTput: 100, VecTput: 50})
	}
	if len(w.EWMA) != MaxEWMASamples {
		t.Fatalf("series length: got %d, want %d", len(w.EWMA), MaxEWMASamples)
	}
	if w.EWMADropped != 7 {
		t.Fatalf("dropped: got %d, want 7", w.EWMADropped)
	}
	jit, vec := p.FinalEWMA()
	if jit != 100 || vec != 50 {
		t.Fatalf("final ewma: got %v/%v, want 100/50", jit, vec)
	}
}

func TestDumpPartialTrace(t *testing.T) {
	q := NewQuery("canceled", "vectorized", 2, time.Now())
	p := q.StartPipeline("p0", 500, 8)
	p.Workers[0] = Worker{Busy: time.Millisecond, Morsels: 2, Tuples: 128}
	q.Err = "canceled"
	q.Wall = 5 * time.Millisecond
	out := q.Dump()
	for _, want := range []string{"trace canceled", `err="canceled"`, "2/8 morsels run", "w0: 2 morsels"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// The idle worker prints no line.
	if strings.Contains(out, "w1:") {
		t.Errorf("idle worker should be omitted:\n%s", out)
	}
}

func TestFormatTput(t *testing.T) {
	cases := map[float64]string{0: "-", 12: "12/s", 4500: "4.5K/s", 4.56e7: "45.6M/s", 2e9: "2.0G/s"}
	for v, want := range cases {
		if got := FormatTput(v); got != want {
			t.Errorf("FormatTput(%v) = %q, want %q", v, got, want)
		}
	}
}

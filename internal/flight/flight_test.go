package flight

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWraparoundBounded: a ring written far past its capacity keeps only the
// newest events, in global sequence order, with nothing torn or duplicated.
func TestWraparoundBounded(t *testing.T) {
	r := New(1, 64)
	l := r.Intern("wrap")
	const n = 1000
	for i := 1; i <= n; i++ {
		r.Record(KindQueryDone, uint64(i), l, int64(i), int64(-i))
	}
	evs := r.Snapshot()
	if len(evs) == 0 || len(evs) > 64 {
		t.Fatalf("snapshot has %d events, want (0, 64]", len(evs))
	}
	for i, ev := range evs {
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Fatalf("sequence not strictly increasing at %d: %d then %d", i, evs[i-1].Seq, ev.Seq)
		}
		if ev.A != int64(ev.Query) || ev.B != -int64(ev.Query) {
			t.Fatalf("torn event: %+v", ev)
		}
		if ev.Label != "wrap" || ev.Kind != KindQueryDone {
			t.Fatalf("corrupt event: %+v", ev)
		}
	}
	if last := evs[len(evs)-1].Seq; last != n {
		t.Fatalf("newest seq = %d, want %d", last, n)
	}
	if r.Dropped() != 0 {
		t.Fatalf("single-writer wraparound dropped %d events", r.Dropped())
	}
}

// TestConcurrentWritersSnapshotsWellFormed hammers a tiny ring from many
// writers while snapshotting concurrently: every returned event must be
// internally consistent (A/B invariant intact, kind valid, label resolved) —
// the never-torn guarantee — and the snapshot itself always well-formed.
// Run under -race this also proves every slot access is properly atomic.
func TestConcurrentWritersSnapshotsWellFormed(t *testing.T) {
	r := New(2, 64) // tiny: force constant wraparound under contention
	labels := []Label{r.Intern("w0"), r.Intern("w1"), r.Intern("w2"), r.Intern("w3")}
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i)
				// Invariant: B == v*3 + int64(kind). Kind cycles.
				k := KindQueryStart + Kind(i%3)
				r.Record(k, uint64(w+1), labels[w%len(labels)], v, v*3+int64(k))
			}
		}(w)
	}

	var snaps sync.WaitGroup
	for s := 0; s < 4; s++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ev := range r.Snapshot() {
					if ev.Kind == 0 || ev.Kind >= kindMax {
						t.Errorf("invalid kind in snapshot: %+v", ev)
						return
					}
					if ev.B != ev.A*3+int64(ev.Kind) {
						t.Errorf("torn event: %+v", ev)
						return
					}
					if !strings.HasPrefix(ev.Label, "w") {
						t.Errorf("label not resolved: %+v", ev)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	snaps.Wait()

	// After quiescence, exactly ring-capacity events survive and they are the
	// newest ones claimed.
	evs := r.Snapshot()
	total := int64(writers * perWriter)
	if got := int64(len(evs)) + r.Dropped(); got > total {
		t.Fatalf("snapshot(%d) + dropped(%d) exceed writes(%d)", len(evs), r.Dropped(), total)
	}
	seen := map[uint64]bool{}
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestRecentFiltersByQuery(t *testing.T) {
	r := New(2, 128)
	for i := 0; i < 10; i++ {
		r.RecordStr(KindMorselBatch, 7, "mine", int64(i), 0)
		r.RecordStr(KindMorselBatch, 8, "other", int64(i), 0)
	}
	r.RecordStr(KindDrainBegin, 0, "", 2, 0) // engine-lifecycle: always relevant
	got := r.Recent(6, 7)
	if len(got) != 6 {
		t.Fatalf("Recent returned %d events, want 6", len(got))
	}
	for _, ev := range got {
		if ev.Query != 7 && ev.Query != 0 {
			t.Fatalf("Recent(7) leaked query %d: %+v", ev.Query, ev)
		}
	}
	if last := got[len(got)-1]; last.Kind != KindDrainBegin {
		t.Fatalf("newest relevant event = %+v, want the drain marker", last)
	}
}

func TestInternBoundedByOverflowLabel(t *testing.T) {
	r := New(1, 64)
	var overflowed bool
	for i := 0; i < maxLabels+16; i++ {
		l := r.Intern(strings.Repeat("x", 1+i%7) + string(rune('a'+i%26)) + time.Duration(i).String())
		if l == Label(1) {
			overflowed = true
		}
	}
	if !overflowed {
		t.Fatal("interning never hit the overflow label despite exceeding the cap")
	}
	if got := r.labelString(Label(1)); got != "…" {
		t.Fatalf("overflow label = %q", got)
	}
}

// TestRecordNoAllocs pins the recorder's hot-path contract: recording with a
// pre-interned label performs zero heap allocations.
func TestRecordNoAllocs(t *testing.T) {
	r := New(4, 256)
	l := r.Intern("alloc-test")
	allocs := testing.AllocsPerRun(500, func() {
		r.Record(KindMorselBatch, 42, l, 16, 1<<20)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", allocs)
	}
}

func TestDumpRendersEvents(t *testing.T) {
	r := New(1, 64)
	r.RecordStr(KindAdmit, 3, "q6", int64(1500*time.Microsecond), 0)
	var b strings.Builder
	r.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "flight recorder: 1 events") {
		t.Fatalf("dump header missing: %q", out)
	}
	if !strings.Contains(out, "admitted") || !strings.Contains(out, "q=3") || !strings.Contains(out, "q6") {
		t.Fatalf("dump line incomplete: %q", out)
	}
}

// Package flight is the engine's always-on flight recorder: a bounded,
// lock-free, sharded ring buffer of coarse lifecycle events (admission
// accept/queue/shed, morsel dispatch batches, compile start/land/fail,
// plan-cache hit/miss/evict, memory reservation/release, hybrid degradation,
// drain phases). It answers "what was the engine doing in the seconds before
// this query failed/shed/degraded" without logs, sampling infrastructure, or
// per-row cost.
//
// The recording discipline matches the rest of the observability stack
// (DESIGN.md §8): events are emitted at query/pipeline/compile granularity —
// never per row or per chunk — and Record itself is allocation-free and
// wait-free for writers. Every slot field is an atomic, claimed with a
// single CAS and published under a double sequence word, so concurrent
// snapshots observe each event either completely or not at all (never torn),
// and the race detector sees only atomic accesses. A writer that loses the
// claim CAS (possible only when a snapshot-visible slot is being overwritten
// after a full ring wrap) drops its event and counts it, rather than spin.
//
// Memory is strictly bounded: shards * slots fixed-size records plus a
// capped label-interning table. The process-wide Default recorder is what
// the engine records into; servers expose its Snapshot at /debug/flight and
// attach Recent events to failing queries.
package flight

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a flight event.
type Kind uint8

// Event kinds, grouped by the subsystem that records them.
const (
	// KindQueryStart / KindQueryDone / KindQueryError bracket one query's
	// life inside the executor. Done carries A = wall nanos, B = result rows;
	// Error carries A = wall nanos.
	KindQueryStart Kind = 1 + iota
	KindQueryDone
	KindQueryError

	// Admission (internal/sched). KindQueued marks entry into the bounded
	// admission queue (A = queue length after enqueue); KindAdmit an accepted
	// admission (A = queue-wait nanos); KindShed a queue-full rejection;
	// KindQueueTimeout a queued admission abandoned by its context
	// (A = queued nanos); KindMemReserve / KindMemRelease the engine-wide
	// memory reservation ledger (A = delta bytes, B = total reserved after).
	KindQueued
	KindAdmit
	KindShed
	KindQueueTimeout
	KindMemReserve
	KindMemRelease

	// KindMorselBatch is one pipeline's morsel dispatch into the scheduler:
	// A = morsels scheduled, B = source rows. Recorded once per pipeline,
	// never per morsel.
	KindMorselBatch

	// Compilation. Start marks a compile job beginning (foreground or hybrid
	// background); Land a deposited artifact (A = compile nanos); Fail a
	// permanently failed job. KindFirstJIT is the hybrid router serving its
	// first compiled morsel on a worker (A = worker slot) — the observable
	// moment incremental fusion switches backends mid-query.
	KindCompileStart
	KindCompileLand
	KindCompileFail
	KindFirstJIT

	// KindDegraded marks a hybrid pipeline that permanently fell back to the
	// vectorized interpreter after its background compile failed.
	KindDegraded

	// Plan cache (internal/plancache). Hit/Miss label the fingerprint;
	// Evict carries A = evicted entry's cached bytes.
	KindPlanCacheHit
	KindPlanCacheMiss
	KindPlanCacheEvict

	// Drain (sched.Close). Begin carries A = active queries, B = shed
	// waiters; Cancel A = force-canceled queries; End A = drained queries.
	KindDrainBegin
	KindDrainCancel
	KindDrainEnd

	kindMax // sentinel for validity checks
)

var kindNames = [...]string{
	KindQueryStart:     "query_start",
	KindQueryDone:      "query_done",
	KindQueryError:     "query_error",
	KindQueued:         "admission_queued",
	KindAdmit:          "admitted",
	KindShed:           "shed",
	KindQueueTimeout:   "queue_timeout",
	KindMemReserve:     "mem_reserve",
	KindMemRelease:     "mem_release",
	KindMorselBatch:    "morsel_batch",
	KindCompileStart:   "compile_start",
	KindCompileLand:    "compile_land",
	KindCompileFail:    "compile_fail",
	KindFirstJIT:       "first_jit_morsel",
	KindDegraded:       "degraded",
	KindPlanCacheHit:   "plancache_hit",
	KindPlanCacheMiss:  "plancache_miss",
	KindPlanCacheEvict: "plancache_evict",
	KindDrainBegin:     "drain_begin",
	KindDrainCancel:    "drain_cancel",
	KindDrainEnd:       "drain_end",
}

func (k Kind) String() string {
	if k == 0 || k >= kindMax {
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// Label is an interned event label (query name, pipeline name, fingerprint
// prefix). Hot call sites intern once at setup and pass the Label so Record
// stays map-free; cold sites use RecordStr.
type Label uint32

// NoLabel is the zero label (rendered as "-").
const NoLabel Label = 0

// Event is one decoded flight-recorder event, as returned by Snapshot.
type Event struct {
	// Seq is the event's global sequence number: the total order events were
	// claimed in, across all shards.
	Seq uint64
	// TS is the coarse monotonic timestamp: elapsed time since the
	// recorder's epoch (Recorder.Epoch anchors it on the wall clock).
	TS time.Duration
	// Kind classifies the event; Query is the engine-wide query id it
	// belongs to (0 = engine-lifecycle event not tied to one query).
	Kind  Kind
	Query uint64
	// Label is the resolved interned label ("" when none).
	Label string
	// A and B are kind-specific arguments (see the Kind constants).
	A, B int64
}

// String renders one event as a compact single line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "+%-12s %-16s", e.TS.Round(10*time.Microsecond), e.Kind)
	if e.Query != 0 {
		fmt.Fprintf(&b, " q=%d", e.Query)
	}
	if e.Label != "" {
		fmt.Fprintf(&b, " %s", e.Label)
	}
	switch e.Kind {
	case KindQueryDone:
		fmt.Fprintf(&b, " wall=%v rows=%d", time.Duration(e.A).Round(time.Microsecond), e.B)
	case KindQueryError:
		fmt.Fprintf(&b, " wall=%v", time.Duration(e.A).Round(time.Microsecond))
	case KindAdmit, KindQueueTimeout:
		fmt.Fprintf(&b, " waited=%v", time.Duration(e.A).Round(time.Microsecond))
	case KindCompileLand:
		fmt.Fprintf(&b, " compile=%v", time.Duration(e.A).Round(time.Microsecond))
	case KindMemReserve, KindMemRelease:
		fmt.Fprintf(&b, " delta=%d reserved=%d", e.A, e.B)
	case KindMorselBatch:
		fmt.Fprintf(&b, " morsels=%d rows=%d", e.A, e.B)
	default:
		if e.A != 0 || e.B != 0 {
			fmt.Fprintf(&b, " a=%d b=%d", e.A, e.B)
		}
	}
	return b.String()
}

// slot is one ring entry. All fields are atomics so concurrent writers and
// snapshot readers never race: a writer claims the slot with busy, stores
// seq1, the payload, then seq2; a reader accepts a slot only when the seq
// words agree (see Snapshot).
type slot struct {
	busy atomic.Uint32
	seq1 atomic.Uint64
	seq2 atomic.Uint64
	ts   atomic.Int64
	meta atomic.Uint64 // kind<<32 | label
	qid  atomic.Uint64
	a    atomic.Int64
	b    atomic.Int64
}

type shard struct {
	head  atomic.Uint64
	slots []slot
	mask  uint64
}

// Recorder is a bounded flight recorder. The zero value is not usable; build
// with New or use Default.
type Recorder struct {
	epoch  time.Time
	shards []shard
	smask  uint64
	seq    atomic.Uint64
	drops  atomic.Int64

	labelMu  sync.RWMutex
	labelIdx map[string]Label
	labels   []string // labels[Label] — labels[0] is ""
}

// DefaultShards and DefaultSlots size Default: 8 shards × 1024 events
// ≈ 0.5 MiB of fixed memory, several minutes of engine history under load.
const (
	DefaultShards = 8
	DefaultSlots  = 1024
	// maxLabels caps the interning table; past it every new label collapses
	// onto the overflow label so cardinality attacks (e.g. unbounded SQL
	// fingerprints) cannot grow memory.
	maxLabels = 4096
)

// Default is the process-wide recorder every engine layer records into.
var Default = New(DefaultShards, DefaultSlots)

// New builds a recorder with the given shard count and per-shard slot count
// (both rounded up to powers of two, floored at 1 and 64).
func New(shards, slotsPerShard int) *Recorder {
	shards = ceilPow2(max(shards, 1))
	slotsPerShard = ceilPow2(max(slotsPerShard, 64))
	r := &Recorder{
		epoch:    time.Now(),
		shards:   make([]shard, shards),
		smask:    uint64(shards - 1),
		labelIdx: make(map[string]Label),
		labels:   []string{""},
	}
	for i := range r.shards {
		r.shards[i].slots = make([]slot, slotsPerShard)
		r.shards[i].mask = uint64(slotsPerShard - 1)
	}
	// Reserve the overflow label at index 1 so interning can fall back to it.
	r.Intern("…")
	return r
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Epoch is the wall-clock anchor of event timestamps.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// Dropped reports events lost to slot-claim contention (writers never spin).
func (r *Recorder) Dropped() int64 { return r.drops.Load() }

// Intern resolves a label string to its stable Label, creating it on first
// use. The table is capped: past maxLabels every unknown string maps to the
// overflow label. Not for per-morsel paths — intern at query/pipeline setup.
func (r *Recorder) Intern(s string) Label {
	if s == "" {
		return NoLabel
	}
	r.labelMu.RLock()
	l, ok := r.labelIdx[s]
	r.labelMu.RUnlock()
	if ok {
		return l
	}
	r.labelMu.Lock()
	defer r.labelMu.Unlock()
	if l, ok = r.labelIdx[s]; ok {
		return l
	}
	if len(r.labels) >= maxLabels {
		return Label(1) // overflow
	}
	l = Label(len(r.labels))
	r.labels = append(r.labels, s)
	r.labelIdx[s] = l
	return l
}

// labelString resolves a Label back to its string.
func (r *Recorder) labelString(l Label) string {
	r.labelMu.RLock()
	defer r.labelMu.RUnlock()
	if int(l) < len(r.labels) {
		return r.labels[l]
	}
	return "?"
}

// Record appends one event. Wait-free and allocation-free: one global
// sequence fetch-add, one shard head fetch-add, one slot CAS claim, seven
// atomic stores. Safe from any goroutine, including the morsel hot path —
// but call it at morsel-batch granularity or coarser, never per row/chunk.
//
//inkfuse:hotpath
func (r *Recorder) Record(k Kind, query uint64, label Label, a, b int64) {
	seq := r.seq.Add(1)
	sh := &r.shards[(query^seq>>12)&r.smask]
	i := sh.head.Add(1) - 1
	s := &sh.slots[i&sh.mask]
	// The claim fails only when a writer lapped the ring onto a slot still
	// being written (or snapshotted mid-write) — drop rather than spin so
	// the hot path never blocks.
	if !s.busy.CompareAndSwap(0, 1) {
		r.drops.Add(1)
		return
	}
	s.seq1.Store(seq)
	s.ts.Store(int64(time.Since(r.epoch)))
	s.meta.Store(uint64(k)<<32 | uint64(label))
	s.qid.Store(query)
	s.a.Store(a)
	s.b.Store(b)
	s.seq2.Store(seq)
	s.busy.Store(0)
}

// RecordStr is the convenience form for cold call sites: interns the label
// and records. Never call from a hot path (interning takes a lock).
func (r *Recorder) RecordStr(k Kind, query uint64, label string, a, b int64) {
	r.Record(k, query, r.Intern(label), a, b)
}

// Snapshot returns every completely-published event, oldest first (global
// sequence order). Reads are non-blocking: a slot mid-write is skipped this
// pass (its event appears in the next snapshot), so the result is always
// well-formed even while every shard is being written concurrently.
func (r *Recorder) Snapshot() []Event {
	var out []Event
	for si := range r.shards {
		sh := &r.shards[si]
		for i := range sh.slots {
			s := &sh.slots[i]
			// Read seq2 first and seq1 last: the writer stores them in the
			// opposite order around the payload, so equality means one
			// writer's stores fully bracket our loads (the slot CAS claim
			// guarantees writers are mutually exclusive per slot).
			q2 := s.seq2.Load()
			if q2 == 0 {
				continue // never written
			}
			ev := Event{
				Seq:   q2,
				TS:    time.Duration(s.ts.Load()),
				Query: s.qid.Load(),
				A:     s.a.Load(),
				B:     s.b.Load(),
			}
			meta := s.meta.Load()
			if s.seq1.Load() != q2 {
				continue // torn: a writer is mid-overwrite, skip
			}
			ev.Kind = Kind(meta >> 32)
			ev.Label = r.labelString(Label(meta & 0xffffffff))
			if ev.Kind == 0 || ev.Kind >= kindMax {
				continue
			}
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Recent returns the newest n events relevant to the given query: its own
// events plus engine-lifecycle events (query 0 — drain phases, evictions,
// memory ledger), oldest first. query 0 returns the newest n of everything.
func (r *Recorder) Recent(n int, query uint64) []Event {
	all := r.Snapshot()
	var sel []Event
	for _, ev := range all {
		if query == 0 || ev.Query == query || ev.Query == 0 {
			sel = append(sel, ev)
		}
	}
	if n > 0 && len(sel) > n {
		sel = sel[len(sel)-n:]
	}
	return sel
}

// Dump writes the full snapshot as text, one event per line — the SIGQUIT
// rendering.
func (r *Recorder) Dump(w io.Writer) {
	evs := r.Snapshot()
	fmt.Fprintf(w, "flight recorder: %d events, epoch %s, %d dropped\n",
		len(evs), r.epoch.Format(time.RFC3339Nano), r.Dropped())
	for _, ev := range evs {
		fmt.Fprintf(w, "  %s\n", ev)
	}
}

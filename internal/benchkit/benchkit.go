// Package benchkit is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§VII): Fig 9 (relative backend
// throughput), Table I (low-level counters for Q1/Q4), Fig 10 (cross-system
// latency across scale factors with compile-wait accounting), and the
// ablation studies listed in DESIGN.md. It is shared by cmd/inkbench and the
// root bench_test.go.
package benchkit

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"inkfuse/internal/algebra"
	"inkfuse/internal/core"
	"inkfuse/internal/exec"
	"inkfuse/internal/stats"
	"inkfuse/internal/storage"
	"inkfuse/internal/tpch"
	"inkfuse/internal/volcano"
)

// Config parameterizes an experiment run.
type Config struct {
	SF      float64 // scale factor (SF 1 ≈ 6M lineitem rows)
	Seed    uint64
	Workers int
	Runs    int // timing repetitions; the median is reported
	Queries []string
	// Timeout bounds each query execution (0 = none); expired queries fail
	// with exec.ErrDeadlineExceeded.
	Timeout time.Duration
	// MemBudget caps each query's runtime-state bytes (0 = unlimited).
	MemBudget int64
	// Exchange lowers plans with the local hash-partitioned exchange
	// (DESIGN.md §15): partitioned, single-writer aggregation and join builds.
	Exchange bool
	// Partitions is the exchange fan-out (0 = one per worker).
	Partitions int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.SF == 0 {
		c.SF = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if len(c.Queries) == 0 {
		c.Queries = tpch.Queries
	}
	return c
}

// Cell is one measurement.
type Cell struct {
	Query, System string
	Wall          time.Duration
	CompileWait   time.Duration
	Rows          int
	Stats         stats.Counters
	// Degraded marks a run that completed with warnings or compile errors
	// (e.g. a hybrid background compile failed and the pipeline was served
	// vectorized-only): the number is not a faithful measurement of the
	// configured system. Degraded cells are flagged in every rendering so
	// they cannot silently corrupt the Fig 9/10 shapes.
	Degraded bool
}

// System is a named execution configuration.
type System struct {
	Name    string
	Backend exec.Backend
	Latency exec.LatencyModel
	Volcano bool // tuple-at-a-time baseline instead of the engine
}

// Paper-aligned system lineups (stand-ins documented in DESIGN.md §2).
var (
	// Fig9Systems are the InkFuse execution backends compared in Fig 9.
	Fig9Systems = []System{
		{Name: "vectorized", Backend: exec.BackendVectorized},
		{Name: "compiling", Backend: exec.BackendCompiling, Latency: exec.LatencyC},
		{Name: "rof", Backend: exec.BackendROF, Latency: exec.LatencyC},
		{Name: "hybrid", Backend: exec.BackendHybrid, Latency: exec.LatencyC},
	}
	// Fig10Systems are the cross-system comparison of Fig 10.
	Fig10Systems = []System{
		{Name: "volcano", Volcano: true},
		{Name: "duckdb-class(vec)", Backend: exec.BackendVectorized},
		{Name: "umbra-llvm-like", Backend: exec.BackendCompiling, Latency: exec.LatencyLLVM},
		{Name: "umbra-hybrid-like", Backend: exec.BackendHybrid, Latency: exec.LatencyFastPath},
		{Name: "inkfuse-compiling", Backend: exec.BackendCompiling, Latency: exec.LatencyC},
		{Name: "inkfuse-rof", Backend: exec.BackendROF, Latency: exec.LatencyC},
		{Name: "inkfuse-hybrid", Backend: exec.BackendHybrid, Latency: exec.LatencyC},
	}
)

// RunOnce executes one query on one system against a prepared catalog,
// lowering the plan fresh (cold compile, as each query enters the system
// anew in the paper's setup). Config.Timeout and Config.MemBudget bound the
// run; Workers, Timeout and MemBudget are the only Config fields used.
func RunOnce(cat *storage.Catalog, query string, sys System, cfg Config) (Cell, error) {
	node, err := tpch.Build(cat, query)
	if err != nil {
		return Cell{}, err
	}
	if sys.Volcano {
		start := time.Now()
		out, err := volcano.Run(node)
		if err != nil {
			return Cell{}, err
		}
		return Cell{Query: query, System: sys.Name, Wall: time.Since(start), Rows: out.Rows()}, nil
	}
	plan, err := lowerCfg(node, query, cfg)
	if err != nil {
		return Cell{}, err
	}
	ctx := context.Background()
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	lat := sys.Latency
	res, err := exec.ExecuteContext(ctx, plan, exec.Options{
		Backend:      sys.Backend,
		Workers:      cfg.Workers,
		Latency:      &lat,
		MemoryBudget: cfg.MemBudget,
	})
	if err != nil {
		return Cell{}, err
	}
	// A degraded run (background compile failed, pipeline served by the
	// interpreter) must not masquerade as a normal measurement: surface the
	// warnings immediately and flag the cell.
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "benchkit: %s/%s: warning: %v\n", query, sys.Name, w)
	}
	return Cell{
		Query: query, System: sys.Name,
		Wall: res.Wall, CompileWait: res.Stats.CompileWait,
		Rows: res.Rows(), Stats: res.Stats,
		Degraded: len(res.Warnings) > 0 || res.Stats.CompileErrors > 0,
	}, nil
}

// lowerCfg lowers one query honouring the Config's exchange axis: with
// Exchange on and no explicit fan-out, one partition per worker.
func lowerCfg(node algebra.Node, name string, cfg Config) (*core.Plan, error) {
	lopts := algebra.LowerOptions{Exchange: cfg.Exchange, Partitions: cfg.Partitions}
	if lopts.Exchange && lopts.Partitions == 0 {
		lopts.Partitions = cfg.Workers
	}
	return algebra.LowerOpts(node, name, lopts)
}

// Measure repeats RunOnce and returns the cell with the median wall time.
// One untimed warmup run absorbs first-touch effects (heap growth, primitive
// cache instantiation) that would otherwise be charged to whichever system
// happens to run first. The median cell carries the Degraded flag if ANY
// timed repetition degraded — a partially degraded series is not a faithful
// measurement even when the median run happened to be clean.
func Measure(cat *storage.Catalog, query string, sys System, cfg Config) (Cell, error) {
	if _, err := RunOnce(cat, query, sys, cfg); err != nil {
		return Cell{}, err
	}
	cells := make([]Cell, 0, cfg.Runs)
	degraded := false
	for i := 0; i < cfg.Runs; i++ {
		c, err := RunOnce(cat, query, sys, cfg)
		if err != nil {
			return Cell{}, err
		}
		degraded = degraded || c.Degraded
		cells = append(cells, c)
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].Wall < cells[b].Wall })
	med := cells[len(cells)/2]
	med.Degraded = degraded
	return med, nil
}

// Fig9 measures the relative throughput of the InkFuse backends against the
// vectorized backend (paper Fig 9). Compile wait is subtracted before
// forming the ratio: the paper runs at SF 100 where compilation is fully
// amortized, which small local scale factors would otherwise distort.
func Fig9(cfg Config) (map[string]map[string]float64, []Cell, error) {
	cfg = cfg.WithDefaults()
	cat := tpch.Generate(cfg.SF, cfg.Seed)
	rel := make(map[string]map[string]float64)
	var cells []Cell
	for _, q := range cfg.Queries {
		rel[q] = make(map[string]float64)
		var vec time.Duration
		for _, sys := range Fig9Systems {
			c, err := Measure(cat, q, sys, cfg)
			if err != nil {
				return nil, nil, fmt.Errorf("fig9 %s/%s: %w", q, sys.Name, err)
			}
			cells = append(cells, c)
			execTime := c.Wall - c.CompileWait
			if execTime <= 0 {
				execTime = c.Wall
			}
			if sys.Name == "vectorized" {
				vec = execTime
			}
			rel[q][sys.Name] = float64(vec) / float64(execTime)
		}
	}
	return rel, cells, nil
}

// Table1 gathers the low-level counter proxies for Q1 (compute-bound) and
// Q4 (probe-bound) on the vectorized and compiling backends (paper Table I).
func Table1(cfg Config) ([]Cell, error) {
	cfg = cfg.WithDefaults()
	cfg.Queries = []string{"q1", "q4"}
	cat := tpch.Generate(cfg.SF, cfg.Seed)
	var out []Cell
	for _, q := range cfg.Queries {
		for _, sys := range []System{
			{Name: "vectorized", Backend: exec.BackendVectorized},
			{Name: "compiling", Backend: exec.BackendCompiling, Latency: exec.LatencyC},
		} {
			c, err := Measure(cat, q, sys, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
	}
	return out, nil
}

// Fig10 measures end-to-end latency (with compile wait) across scale
// factors for the cross-system lineup (paper Fig 10).
func Fig10(cfg Config, sfs []float64) ([]Cell, error) {
	cfg = cfg.WithDefaults()
	var out []Cell
	for _, sf := range sfs {
		cat := tpch.Generate(sf, cfg.Seed)
		for _, q := range cfg.Queries {
			for _, sys := range Fig10Systems {
				c, err := Measure(cat, q, sys, cfg)
				if err != nil {
					return nil, fmt.Errorf("fig10 sf=%g %s/%s: %w", sf, q, sys.Name, err)
				}
				c.System = fmt.Sprintf("sf%g/%s", sf, c.System)
				out = append(out, c)
			}
		}
	}
	return out, nil
}

// JSONCell is the machine-readable form of one measurement: the committed
// benchmark artifacts (BENCH_*.json) and CI trend tooling consume it.
type JSONCell struct {
	Query         string  `json:"query"`
	Backend       string  `json:"backend"`
	WallMS        float64 `json:"wall_ms"`
	CompileWaitMS float64 `json:"compile_wait_ms,omitempty"`
	Rows          int     `json:"rows"`
	// RowsPerSec is source-tuple throughput (tuples entering pipelines per
	// second of wall time) — the same rate the /metrics histograms track.
	RowsPerSec float64 `json:"rows_per_sec"`
	Degraded   bool    `json:"degraded,omitempty"`
	// Exchange marks cells measured with the hash-partitioned exchange
	// lowering (DESIGN.md §15) — the on/off axis of the committed artifacts.
	Exchange bool `json:"exchange,omitempty"`
	// Hash-table behaviour counters: trend tooling watches these alongside
	// wall time (e.g. spills must stay 0 on partitioned paths).
	HTLocalHits  int64 `json:"ht_local_hits,omitempty"`
	HTSpills     int64 `json:"ht_spills,omitempty"`
	HTBloomSkips int64 `json:"ht_bloom_skips,omitempty"`
	// Exchange routing counters: total routed rows and the largest single
	// partition (the skew signal).
	PartRoutedRows  int64 `json:"part_routed_rows,omitempty"`
	PartMaxPartRows int64 `json:"part_max_part_rows,omitempty"`
}

// JSONReport is a full benchmark grid with its configuration.
type JSONReport struct {
	SF      float64    `json:"sf"`
	Workers int        `json:"workers"`
	Runs    int        `json:"runs"`
	Cells   []JSONCell `json:"cells"`
	// Concurrency is the optional throughput-and-tail-latency-under-load
	// series (inkbench -concurrency N); older readers ignore the field.
	Concurrency []ConcCell `json:"concurrency,omitempty"`
}

// JSONBench measures every configured query on every system and returns the
// machine-readable report (median of Config.Runs per cell, like the tables).
func JSONBench(cfg Config, systems []System) (*JSONReport, error) {
	cfg = cfg.WithDefaults()
	cat := tpch.Generate(cfg.SF, cfg.Seed)
	rep := &JSONReport{SF: cfg.SF, Workers: cfg.Workers, Runs: cfg.Runs}
	for _, q := range cfg.Queries {
		for _, sys := range systems {
			c, err := Measure(cat, q, sys, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s: %w", q, sys.Name, err)
			}
			jc := JSONCell{
				Query: c.Query, Backend: c.System,
				WallMS:        float64(c.Wall) / float64(time.Millisecond),
				CompileWaitMS: float64(c.CompileWait) / float64(time.Millisecond),
				Rows:          c.Rows, Degraded: c.Degraded,
				Exchange:        cfg.Exchange,
				HTLocalHits:     c.Stats.HTLocalHits,
				HTSpills:        c.Stats.HTSpills,
				HTBloomSkips:    c.Stats.HTBloomSkips,
				PartRoutedRows:  c.Stats.PartRoutedRows,
				PartMaxPartRows: c.Stats.PartMaxPartRows,
			}
			if secs := c.Wall.Seconds(); secs > 0 {
				jc.RowsPerSec = float64(c.Stats.Tuples) / secs
			}
			rep.Cells = append(rep.Cells, jc)
		}
	}
	return rep, nil
}

// Write renders the report as indented JSON.
func (r *JSONReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DegradedCells indexes the degraded measurements by query and system, for
// renderings (like the Fig 9 ratio table) that no longer carry the cells.
func DegradedCells(cells []Cell) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, c := range cells {
		if !c.Degraded {
			continue
		}
		if out[c.Query] == nil {
			out[c.Query] = map[string]bool{}
		}
		out[c.Query][c.System] = true
	}
	return out
}

// degradedFootnote explains the '*' marker once per table.
const degradedFootnote = "* degraded: a background compile failed during measurement (served vectorized-only); not a faithful measurement of this system"

// PrintFig9 renders Fig 9 as a relative-throughput table. degraded (from
// DegradedCells; nil allowed) marks cells measured under a failed background
// compile with '*'.
func PrintFig9(w io.Writer, rel map[string]map[string]float64, queries []string, degraded map[string]map[string]bool) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\tvectorized\tcompiling\trof\thybrid")
	anyDegraded := false
	for _, q := range queries {
		r := rel[q]
		fmt.Fprintf(tw, "%s", q)
		for _, sys := range []string{"vectorized", "compiling", "rof", "hybrid"} {
			mark := ""
			if degraded[q][sys] {
				mark = "*"
				anyDegraded = true
			}
			fmt.Fprintf(tw, "\t%.2fx%s", r[sys], mark)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	if anyDegraded {
		fmt.Fprintln(w, degradedFootnote)
	}
}

// PrintCells renders measurement cells with compile-wait accounting (the
// dashed bar areas of Fig 10). Degraded cells are marked with '*'.
func PrintCells(w io.Writer, cells []Cell) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\tsystem\twall\tcompile-wait\trows")
	anyDegraded := false
	for _, c := range cells {
		mark := ""
		if c.Degraded {
			mark = "*"
			anyDegraded = true
		}
		fmt.Fprintf(tw, "%s\t%s%s\t%v\t%v\t%d\n",
			c.Query, c.System, mark, c.Wall.Round(10*time.Microsecond),
			c.CompileWait.Round(10*time.Microsecond), c.Rows)
	}
	tw.Flush()
	if anyDegraded {
		fmt.Fprintln(w, degradedFootnote)
	}
}

// PrintTable1 renders the Table I counter proxies per tuple. exec-time is
// wall minus compile wait, the paper's steady-state execution cost. Degraded
// cells are marked with '*'.
func PrintTable1(w io.Writer, cells []Cell) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\tbackend\texec-time\tcompile-wait\tvm-ops/tuple\tbuffer-bytes/tuple\tht-probes/tuple\tprimitive-calls\tfused-calls")
	anyDegraded := false
	for _, c := range cells {
		s := c.Stats
		mark := ""
		if c.Degraded {
			mark = "*"
			anyDegraded = true
		}
		fmt.Fprintf(tw, "%s\t%s%s\t%v\t%v\t%s\t%s\t%s\t%d\t%d\n",
			c.Query, c.System, mark, (c.Wall - c.CompileWait).Round(10*time.Microsecond),
			c.CompileWait.Round(10*time.Microsecond),
			s.PerTuple(s.VMOps), s.PerTuple(s.MaterializedBytes), s.PerTuple(s.HTProbes),
			s.PrimitiveCalls, s.FusedCalls)
	}
	tw.Flush()
	if anyDegraded {
		fmt.Fprintln(w, degradedFootnote)
	}
}

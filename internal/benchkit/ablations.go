package benchkit

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"inkfuse/internal/algebra"
	"inkfuse/internal/exec"
	"inkfuse/internal/storage"
	"inkfuse/internal/tpch"
	"inkfuse/internal/types"
)

// Ablation studies for the design choices DESIGN.md §4 calls out.

// AblationRow is one ablation measurement.
type AblationRow struct {
	Label string
	Wall  time.Duration
	Extra string
}

// AblationChunkSize sweeps the tuple-buffer size of the vectorized
// interpreter (the staging-buffer-fits-in-cache argument of ROF/§III).
func AblationChunkSize(cfg Config, query string, sizes []int) ([]AblationRow, error) {
	cfg = cfg.WithDefaults()
	cat := tpch.Generate(cfg.SF, cfg.Seed)
	var out []AblationRow
	for _, cs := range sizes {
		node, err := tpch.Build(cat, query)
		if err != nil {
			return nil, err
		}
		best := time.Duration(0)
		for i := 0; i < cfg.Runs; i++ {
			plan, err := algebra.Lower(node, query)
			if err != nil {
				return nil, err
			}
			lat := exec.LatencyNone
			res, err := exec.Execute(plan, exec.Options{
				Backend: exec.BackendVectorized, Workers: cfg.Workers,
				ChunkSize: cs, Latency: &lat,
			})
			if err != nil {
				return nil, err
			}
			if best == 0 || res.Wall < best {
				best = res.Wall
			}
		}
		out = append(out, AblationRow{Label: fmt.Sprintf("chunk=%d", cs), Wall: best})
	}
	return out, nil
}

// AblationHybridExploration sweeps the hybrid backend's exploration period
// (the paper fixes 5%/5%/90%; this quantifies that choice).
func AblationHybridExploration(cfg Config, query string, periods []int) ([]AblationRow, error) {
	cfg = cfg.WithDefaults()
	cat := tpch.Generate(cfg.SF, cfg.Seed)
	defer func(old int) { exec.HybridExploreEvery = old }(exec.HybridExploreEvery)
	var out []AblationRow
	for _, p := range periods {
		exec.HybridExploreEvery = p
		sys := System{Name: "hybrid", Backend: exec.BackendHybrid, Latency: exec.LatencyC}
		c, err := Measure(cat, query, sys, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Label: fmt.Sprintf("explore-every=%d", p),
			Wall:  c.Wall,
			Extra: fmt.Sprintf("morsels jit=%d vec=%d", c.Stats.MorselsCompiled, c.Stats.MorselsVectorized),
		})
	}
	return out, nil
}

// AblationKeyPacking compares aggregation key shapes: a single fixed-width
// key (the §IV-D fast path), a compound fixed-width key, and variable-size
// string keys — the cost of the packed row layout in isolation. All three
// shapes group the same synthetic data into the same 512 groups, so only
// the packing work differs.
func AblationKeyPacking(cfg Config) ([]AblationRow, error) {
	cfg = cfg.WithDefaults()
	rows := int(cfg.SF * float64(6_000_000))
	if rows < 10_000 {
		rows = 10_000
	}
	tbl := storage.NewTable("pack", types.Schema{
		{Name: "k1", Kind: types.Int64},
		{Name: "k2", Kind: types.Int64},
		{Name: "ks", Kind: types.String},
		{Name: "v", Kind: types.Float64},
	})
	labels := make([]string, 512)
	for i := range labels {
		labels[i] = fmt.Sprintf("group-%03d", i)
	}
	tbl.SetRows(rows)
	for i := 0; i < rows; i++ {
		g := i % 512
		tbl.Col("k1").I64[i] = int64(g)
		tbl.Col("k2").I64[i] = int64(g * 7)
		tbl.Col("ks").Str[i] = labels[g]
		tbl.Col("v").F64[i] = float64(i % 100)
	}
	shapes := []struct {
		label string
		keys  []string
	}{
		{"single-int-key(fastpath)", []string{"k1"}},
		{"compound-int-key", []string{"k1", "k2"}},
		{"string-key", []string{"ks"}},
	}
	var out []AblationRow
	for _, sh := range shapes {
		cols := append(append([]string{}, sh.keys...), "v")
		node := algebra.NewGroupBy(algebra.NewScan(tbl, cols...), sh.keys,
			algebra.Sum("v", "s"))
		best := Cell{}
		for i := 0; i < cfg.Runs; i++ {
			plan, err := algebra.Lower(node, "pack_"+sh.label)
			if err != nil {
				return nil, err
			}
			lat := exec.LatencyNone
			res, err := exec.Execute(plan, exec.Options{
				Backend: exec.BackendCompiling, Workers: cfg.Workers, Latency: &lat,
			})
			if err != nil {
				return nil, err
			}
			if best.Wall == 0 || res.Wall < best.Wall {
				best = Cell{Wall: res.Wall, Stats: res.Stats}
			}
		}
		out = append(out, AblationRow{
			Label: sh.label,
			Wall:  best.Wall,
			Extra: fmt.Sprintf("vm-ops/tuple=%s", best.Stats.PerTuple(best.Stats.VMOps)),
		})
	}
	return out, nil
}

// AblationROFSplit contrasts split granularities on a probe-heavy query:
// no splits (compiling), splits before probes (ROF), splits after every
// suboperator (vectorized) — the pipeline-slicing spectrum of §III.
func AblationROFSplit(cfg Config, query string) ([]AblationRow, error) {
	cfg = cfg.WithDefaults()
	cat := tpch.Generate(cfg.SF, cfg.Seed)
	var out []AblationRow
	for _, sys := range []System{
		{Name: "no-splits(compiling)", Backend: exec.BackendCompiling, Latency: exec.LatencyNone},
		{Name: "split-at-probes(rof)", Backend: exec.BackendROF, Latency: exec.LatencyNone},
		{Name: "split-everywhere(vectorized)", Backend: exec.BackendVectorized},
	} {
		c, err := Measure(cat, query, sys, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{Label: sys.Name, Wall: c.Wall,
			Extra: fmt.Sprintf("buffer-bytes/tuple=%s", c.Stats.PerTuple(c.Stats.MaterializedBytes))})
	}
	return out, nil
}

// AblationMorselSize sweeps the morsel granularity of the hybrid backend's
// adaptive decisions.
func AblationMorselSize(cfg Config, query string, sizes []int) ([]AblationRow, error) {
	cfg = cfg.WithDefaults()
	cat := tpch.Generate(cfg.SF, cfg.Seed)
	var out []AblationRow
	for _, ms := range sizes {
		node, err := tpch.Build(cat, query)
		if err != nil {
			return nil, err
		}
		best := time.Duration(0)
		for i := 0; i < cfg.Runs; i++ {
			plan, err := algebra.Lower(node, query)
			if err != nil {
				return nil, err
			}
			lat := exec.LatencyC
			res, err := exec.Execute(plan, exec.Options{
				Backend: exec.BackendHybrid, Workers: cfg.Workers,
				MorselSize: ms, Latency: &lat,
			})
			if err != nil {
				return nil, err
			}
			if best == 0 || res.Wall < best {
				best = res.Wall
			}
		}
		out = append(out, AblationRow{Label: fmt.Sprintf("morsel=%d", ms), Wall: best})
	}
	return out, nil
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, "##", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%v\t%s\n", r.Label, r.Wall.Round(10*time.Microsecond), r.Extra)
	}
	tw.Flush()
}

// catalogRows summarizes generated table sizes (for experiment logs).
func CatalogRows(cat *storage.Catalog) string {
	s := ""
	for _, n := range []string{"lineitem", "orders", "customer", "part", "supplier", "nation", "region"} {
		if t, err := cat.Get(n); err == nil {
			s += fmt.Sprintf("%s=%d ", n, t.Rows())
		}
	}
	return s
}

package benchkit

import (
	"strings"
	"testing"

	"inkfuse/internal/exec"
	"inkfuse/internal/tpch"
)

// Fast harness checks at a tiny scale factor: the experiment machinery must
// run end to end and produce structurally sound output.

var tinyCfg = Config{SF: 0.001, Runs: 1, Queries: []string{"q1", "q6"}}

func TestFig9Harness(t *testing.T) {
	rel, cells, err := Fig9(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(tinyCfg.Queries)*len(Fig9Systems) {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, q := range tinyCfg.Queries {
		if rel[q]["vectorized"] != 1.0 {
			t.Fatalf("%s: vectorized relative = %v, want 1.0", q, rel[q]["vectorized"])
		}
		for _, sys := range Fig9Systems {
			if rel[q][sys.Name] <= 0 {
				t.Fatalf("%s/%s: non-positive relative throughput", q, sys.Name)
			}
		}
	}
	var sb strings.Builder
	PrintFig9(&sb, rel, tinyCfg.Queries, DegradedCells(cells))
	if !strings.Contains(sb.String(), "q6") {
		t.Fatal("fig9 table missing query row")
	}
}

func TestDegradedCellMarking(t *testing.T) {
	cells := []Cell{
		{Query: "q1", System: "hybrid", Degraded: true},
		{Query: "q1", System: "vectorized"},
	}
	deg := DegradedCells(cells)
	if !deg["q1"]["hybrid"] || deg["q1"]["vectorized"] {
		t.Fatalf("DegradedCells wrong: %v", deg)
	}
	var sb strings.Builder
	PrintCells(&sb, cells)
	out := sb.String()
	if !strings.Contains(out, "hybrid*") {
		t.Fatalf("degraded cell not marked:\n%s", out)
	}
	if !strings.Contains(out, "* degraded") {
		t.Fatalf("degraded footnote missing:\n%s", out)
	}
	if strings.Contains(out, "vectorized*") {
		t.Fatalf("clean cell wrongly marked:\n%s", out)
	}

	sb.Reset()
	rel := map[string]map[string]float64{"q1": {"vectorized": 1, "compiling": 1, "rof": 1, "hybrid": 1}}
	PrintFig9(&sb, rel, []string{"q1"}, deg)
	if !strings.Contains(sb.String(), "1.00x*") {
		t.Fatalf("fig9 degraded cell not marked:\n%s", sb.String())
	}
}

func TestTable1Harness(t *testing.T) {
	cells, err := Table1(Config{SF: 0.001, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	// The structural Table I claim: the vectorized backend materializes
	// buffer traffic the fused code avoids.
	for i := 0; i < 4; i += 2 {
		vec, jit := cells[i], cells[i+1]
		if vec.System != "vectorized" || jit.System != "compiling" {
			t.Fatalf("unexpected order: %s/%s", vec.System, jit.System)
		}
		if vec.Stats.MaterializedBytes <= jit.Stats.MaterializedBytes {
			t.Fatalf("%s: vectorized buffer traffic not larger", vec.Query)
		}
	}
	var sb strings.Builder
	PrintTable1(&sb, cells)
	if !strings.Contains(sb.String(), "vm-ops/tuple") {
		t.Fatal("table1 header missing")
	}
}

func TestFig10Harness(t *testing.T) {
	cfg := Config{SF: 0.001, Runs: 1, Queries: []string{"q6"}}
	cells, err := Fig10(cfg, []float64{0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(Fig10Systems) {
		t.Fatalf("cells = %d", len(cells))
	}
	var sawWait bool
	for _, c := range cells {
		if c.Rows == 0 {
			t.Fatalf("%s: empty result", c.System)
		}
		if strings.Contains(c.System, "compiling") && c.CompileWait > 0 {
			sawWait = true
		}
	}
	if !sawWait {
		t.Fatal("no compiling system reported compile wait (the Fig 10 dashed areas)")
	}
	var sb strings.Builder
	PrintCells(&sb, cells)
	if !strings.Contains(sb.String(), "compile-wait") {
		t.Fatal("cells header missing")
	}
}

func TestAblationHarnesses(t *testing.T) {
	cfg := Config{SF: 0.001, Runs: 1}
	if rows, err := AblationChunkSize(cfg, "q6", []int{256, 1024}); err != nil || len(rows) != 2 {
		t.Fatalf("chunk: %v %d", err, len(rows))
	}
	if rows, err := AblationHybridExploration(cfg, "q1", []int{10, 20}); err != nil || len(rows) != 2 {
		t.Fatalf("explore: %v %d", err, len(rows))
	}
	if exec.HybridExploreEvery != 20 {
		t.Fatal("exploration ablation leaked its override")
	}
	if rows, err := AblationKeyPacking(cfg); err != nil || len(rows) != 3 {
		t.Fatalf("pack: %v %d", err, len(rows))
	}
	if rows, err := AblationROFSplit(cfg, "q3"); err != nil || len(rows) != 3 {
		t.Fatalf("rof: %v %d", err, len(rows))
	}
	if rows, err := AblationMorselSize(cfg, "q1", []int{4096}); err != nil || len(rows) != 1 {
		t.Fatalf("morsel: %v %d", err, len(rows))
	}
	var sb strings.Builder
	PrintAblation(&sb, "t", []AblationRow{{Label: "l", Extra: "e"}})
	if !strings.Contains(sb.String(), "## t") {
		t.Fatal("ablation printer")
	}
}

func TestCatalogRows(t *testing.T) {
	cat := tpch.Generate(0.001, 1)
	s := CatalogRows(cat)
	if !strings.Contains(s, "lineitem=") {
		t.Fatalf("catalog summary: %s", s)
	}
}

// Concurrency series: throughput and tail latency of the engine under N
// simultaneous clients driving queries through one admission-controlled
// scheduler pool — the serving-robustness companion to the single-query
// figures. Every successful result is checked against a sequential baseline,
// so the series doubles as a correctness harness for concurrent execution.

package benchkit

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"inkfuse/internal/algebra"
	"inkfuse/internal/exec"
	"inkfuse/internal/sched"
	"inkfuse/internal/storage"
	"inkfuse/internal/tpch"
)

// ConcConfig parameterizes the concurrency series.
type ConcConfig struct {
	// Concurrency is the top client count; the series measures doubling
	// levels 1, 2, 4, ... up to it.
	Concurrency int
	// Requests is the number of queries issued per level (0 = 4 per client,
	// at least 16).
	Requests int
	// MaxConcurrent is the pool's admitted-query cap (0 = half the level,
	// at least 1 — so the top levels genuinely queue and shed).
	MaxConcurrent int
	// QueueDepth bounds the admission queue (0 = sched default; negative =
	// no queue).
	QueueDepth int
	// Backend runs the clients' queries ("" = vectorized: no compile jitter
	// in a latency-distribution measurement).
	Backend string
}

// ConcCell is one concurrency-level measurement.
type ConcCell struct {
	Concurrency   int     `json:"concurrency"`
	MaxConcurrent int     `json:"max_concurrent"`
	Requests      int     `json:"requests"`
	Succeeded     int     `json:"succeeded"`
	Shed          int     `json:"shed"`
	WallMS        float64 `json:"wall_ms"`
	QPS           float64 `json:"qps"` // succeeded queries per second
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	// PeakRunning is the highest sampled count of concurrently admitted
	// queries — must never exceed MaxConcurrent.
	PeakRunning int `json:"peak_running"`
}

// renderChunk renders a result for baseline comparison: row order for
// ordered queries, sorted rows otherwise (worker merge order is
// scheduler-dependent by design). Floats render at 6 significant digits —
// the same tolerance as the TPC-H oracle tests — because parallel float
// aggregation is non-associative and the accumulation order is
// scheduler-dependent too.
func renderChunk(c *storage.Chunk, ordered bool) string {
	rows := make([]string, c.Rows())
	for i := range rows {
		rows[i] = fmt.Sprintf("%.6v", c.Row(i))
	}
	if !ordered {
		sort.Strings(rows)
	}
	return strings.Join(rows, "\n")
}

// ConcurrentBench measures throughput and tail latency at doubling client
// counts up to cc.Concurrency. Each level drives cc.Requests queries
// round-robin over cfg.Queries through a fresh admission-controlled pool;
// shed queries (429-class) are counted, any other failure aborts, and every
// successful result must match the sequential baseline byte for byte.
func ConcurrentBench(cfg Config, cc ConcConfig) ([]ConcCell, error) {
	cfg = cfg.WithDefaults()
	if cc.Concurrency <= 0 {
		cc.Concurrency = 8
	}
	backend := cc.Backend
	if backend == "" {
		backend = "vectorized"
	}
	be, err := exec.ParseBackend(backend)
	if err != nil {
		return nil, err
	}
	cat := tpch.Generate(cfg.SF, cfg.Seed)

	// Sequential baseline, one result per query.
	cases := make([]queryCase, len(cfg.Queries))
	for i, q := range cfg.Queries {
		node, err := tpch.Build(cat, q)
		if err != nil {
			return nil, err
		}
		_, ordered := node.(*algebra.OrderBy)
		cases[i] = queryCase{name: q, node: node, ordered: ordered}
		res, err := runCase(cat, &cases[i], be, cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("baseline %s: %w", q, err)
		}
		cases[i].want = res
	}

	var out []ConcCell
	for _, level := range concLevels(cc.Concurrency) {
		cell, err := runConcLevel(cat, cases, be, cfg, cc, level)
		if err != nil {
			return nil, fmt.Errorf("concurrency %d: %w", level, err)
		}
		out = append(out, cell)
	}
	return out, nil
}

// concLevels doubles from 1 up to and including top.
func concLevels(top int) []int {
	var out []int
	for l := 1; l < top; l *= 2 {
		out = append(out, l)
	}
	return append(out, top)
}

// runCase lowers a fresh plan (plans carry per-execution state) and runs it.
func runCase(cat *storage.Catalog, qc *queryCase, be exec.Backend, cfg Config, pool *sched.Pool) (string, error) {
	plan, err := lowerCfg(qc.node, qc.name, cfg)
	if err != nil {
		return "", err
	}
	lat := exec.LatencyNone
	ctx := context.Background()
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	res, err := exec.ExecuteContext(ctx, plan, exec.Options{
		Backend: be, Workers: cfg.Workers, Latency: &lat,
		MemoryBudget: cfg.MemBudget, Pool: pool,
	})
	if err != nil {
		return "", err
	}
	return renderChunk(res.Chunk, qc.ordered), nil
}

// queryCase is one benchmark query with its sequential-baseline rendering.
type queryCase struct {
	name    string
	node    algebra.Node
	ordered bool
	want    string
}

func runConcLevel(cat *storage.Catalog, cases []queryCase, be exec.Backend, cfg Config, cc ConcConfig, level int) (ConcCell, error) {
	maxConc := cc.MaxConcurrent
	if maxConc <= 0 {
		maxConc = max(1, level/2)
	}
	requests := cc.Requests
	if requests <= 0 {
		requests = max(16, 4*level)
	}
	pool := sched.NewPool(sched.Config{
		MaxConcurrent: maxConc,
		QueueDepth:    cc.QueueDepth,
	})
	defer pool.Close(context.Background())

	// A sampler records the peak number of concurrently admitted queries;
	// the admission cap is also enforced (and tested) inside the scheduler,
	// this validates it end to end.
	samplerStop := make(chan struct{})
	var peak atomic.Int64
	go func() {
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-tick.C:
				if r := int64(pool.Stats().Running); r > peak.Load() {
					peak.Store(r)
				}
			}
		}
	}()

	var (
		next      atomic.Int64
		shed      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		firstErr  error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < level; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				qc := &cases[i%len(cases)]
				t0 := time.Now()
				got, err := runCase(cat, qc, be, cfg, pool)
				d := time.Since(t0)
				if err != nil {
					if errors.Is(err, sched.ErrQueueFull) {
						shed.Add(1)
						continue
					}
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", qc.name, err)
					}
					mu.Unlock()
					return
				}
				if got != qc.want {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: concurrent result diverged from sequential baseline", qc.name)
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(samplerStop)
	if firstErr != nil {
		return ConcCell{}, firstErr
	}
	if int(peak.Load()) > maxConc {
		return ConcCell{}, fmt.Errorf("admission cap violated: %d running, limit %d", peak.Load(), maxConc)
	}

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	cell := ConcCell{
		Concurrency: level, MaxConcurrent: maxConc, Requests: requests,
		Succeeded: len(latencies), Shed: int(shed.Load()),
		WallMS:      float64(wall) / float64(time.Millisecond),
		PeakRunning: int(peak.Load()),
	}
	if secs := wall.Seconds(); secs > 0 {
		cell.QPS = float64(cell.Succeeded) / secs
	}
	if n := len(latencies); n > 0 {
		cell.P50MS = float64(latencies[n/2]) / float64(time.Millisecond)
		cell.P99MS = float64(latencies[min(n-1, n*99/100)]) / float64(time.Millisecond)
	}
	return cell, nil
}

// PrintConcurrency renders the concurrency series as a table.
func PrintConcurrency(w io.Writer, cells []ConcCell) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "clients\tmax-conc\trequests\tok\tshed\tqps\tp50\tp99\tpeak-running")
	for _, c := range cells {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.1f\t%.1fms\t%.1fms\t%d\n",
			c.Concurrency, c.MaxConcurrent, c.Requests, c.Succeeded, c.Shed,
			c.QPS, c.P50MS, c.P99MS, c.PeakRunning)
	}
	tw.Flush()
}

package storage

import (
	"testing"
	"testing/quick"

	"inkfuse/internal/types"
)

func TestVectorResizeKeepsData(t *testing.T) {
	v := NewVector(types.Int64, 3)
	v.I64[0], v.I64[1], v.I64[2] = 1, 2, 3
	v.Resize(2)
	v.Resize(3)
	if v.I64[0] != 1 || v.I64[1] != 2 {
		t.Fatal("resize lost data within capacity")
	}
	v.Resize(100)
	if v.Len() != 100 || v.I64[0] != 1 {
		t.Fatal("grow lost prefix")
	}
}

func TestVectorAllKinds(t *testing.T) {
	for _, k := range []types.Kind{types.Bool, types.Int32, types.Int64, types.Float64, types.Date, types.String, types.Ptr} {
		v := NewVector(k, 4)
		if v.Len() != 4 {
			t.Fatalf("%v len", k)
		}
		s := v.Slice(1, 3)
		if s.Len() != 2 {
			t.Fatalf("%v slice len", k)
		}
	}
}

func TestVectorGather(t *testing.T) {
	v := NewVector(types.String, 5)
	for i := range v.Str {
		v.Str[i] = string(rune('a' + i))
	}
	dst := NewVector(types.String, 0)
	v.Gather(dst, []int32{4, 0, 2})
	if dst.Len() != 3 || dst.Str[0] != "e" || dst.Str[1] != "a" || dst.Str[2] != "c" {
		t.Fatalf("gather wrong: %v", dst.Str)
	}
	// Kind mismatch panics.
	defer func() {
		if recover() == nil {
			t.Fatal("gather kind mismatch should panic")
		}
	}()
	bad := NewVector(types.Int64, 0)
	v.Gather(bad, []int32{0})
}

func TestVectorGatherProperty(t *testing.T) {
	f := func(data []int64, sel []uint8) bool {
		if len(data) == 0 {
			return true
		}
		v := NewVector(types.Int64, len(data))
		copy(v.I64, data)
		idx := make([]int32, len(sel))
		for i, s := range sel {
			idx[i] = int32(int(s) % len(data))
		}
		dst := NewVector(types.Int64, 0)
		v.Gather(dst, idx)
		for i, j := range idx {
			if dst.I64[i] != data[j] {
				return false
			}
		}
		return dst.Len() == len(idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorAppendCopy(t *testing.T) {
	a := NewVector(types.Float64, 3)
	a.F64[0], a.F64[1], a.F64[2] = 1, 2, 3
	b := NewVector(types.Float64, 0)
	b.AppendFrom(a, 1, 3)
	b.AppendFrom(a, 0, 1)
	if b.Len() != 3 || b.F64[0] != 2 || b.F64[2] != 1 {
		t.Fatalf("append wrong: %v", b.F64)
	}
	c := NewVector(types.Float64, 5)
	c.CopyFrom(a, 0, 2)
	if c.Len() != 2 || c.F64[1] != 2 {
		t.Fatal("copy wrong")
	}
}

func TestVectorValueSetValue(t *testing.T) {
	v := NewVector(types.Bool, 2)
	v.SetValue(1, true)
	if v.Value(1) != true || v.Value(0) != false {
		t.Fatal("value roundtrip")
	}
	p := NewVector(types.Ptr, 1)
	p.SetValue(0, []byte{1, 2})
	if len(p.Value(0).([]byte)) != 2 {
		t.Fatal("ptr value roundtrip")
	}
}

func TestChunkAppendRowAndVectors(t *testing.T) {
	c := NewChunk([]types.Kind{types.Int64, types.String})
	c.AppendRow(int64(1), "x")
	c.AppendRow(int64(2), "y")
	if c.Rows() != 2 || c.Row(1)[1] != "y" {
		t.Fatal("chunk rows")
	}
	vs := []*Vector{NewVector(types.Int64, 2), NewVector(types.String, 2)}
	vs[0].I64[0], vs[0].I64[1] = 10, 20
	vs[1].Str[0], vs[1].Str[1] = "a", "b"
	bytes := c.AppendFromVectors(vs, 2)
	if c.Rows() != 4 || c.Row(3)[0] != int64(20) {
		t.Fatal("append vectors")
	}
	if bytes != 2*8+2*16 {
		t.Fatalf("bytes accounting = %d", bytes)
	}
	c.Reset()
	if c.Rows() != 0 || c.Cols[0].Len() != 0 {
		t.Fatal("reset")
	}
}

func TestChunkAppendChunk(t *testing.T) {
	a := NewChunk([]types.Kind{types.Int32})
	a.AppendRow(int32(1))
	b := NewChunk([]types.Kind{types.Int32})
	b.AppendRow(int32(2))
	b.AppendRow(int32(3))
	a.AppendChunk(b)
	if a.Rows() != 3 || a.Row(2)[0] != int32(3) {
		t.Fatal("append chunk")
	}
}

func TestTableAndCatalog(t *testing.T) {
	tbl := NewTable("t", types.Schema{{Name: "a", Kind: types.Int64}})
	tbl.AppendRow(int64(5))
	if tbl.Rows() != 1 || tbl.Col("a").I64[0] != 5 {
		t.Fatal("table basics")
	}
	cat := NewCatalog()
	cat.Add(tbl)
	got, err := cat.Get("t")
	if err != nil || got != tbl {
		t.Fatal("catalog get")
	}
	if _, err := cat.Get("missing"); err == nil {
		t.Fatal("catalog should miss")
	}
	if len(cat.Names()) != 1 {
		t.Fatal("catalog names")
	}
}

func TestMorsels(t *testing.T) {
	ms := Morsels(100, 30)
	if len(ms) != 4 || ms[3].Start != 90 || ms[3].End != 100 || ms[3].Rows() != 10 {
		t.Fatalf("morsels wrong: %+v", ms)
	}
	if len(Morsels(0, 30)) != 0 {
		t.Fatal("empty input should produce no morsels")
	}
	// Default size kicks in for size <= 0.
	ms = Morsels(DefaultMorselRows+1, 0)
	if len(ms) != 2 {
		t.Fatal("default morsel size")
	}
}

func TestMorselsCoverProperty(t *testing.T) {
	f := func(n uint16, size uint8) bool {
		ms := Morsels(int(n), int(size))
		covered := 0
		prevEnd := 0
		for _, m := range ms {
			if m.Start != prevEnd || m.End <= m.Start {
				return false
			}
			covered += m.Rows()
			prevEnd = m.End
		}
		return covered == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

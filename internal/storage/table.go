package storage

import (
	"fmt"
	"sync"

	"inkfuse/internal/types"
)

// Table is an in-memory columnar base table.
type Table struct {
	Name   string
	Schema types.Schema
	Cols   []*Vector
	rows   int
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema types.Schema) *Table {
	t := &Table{Name: name, Schema: schema, Cols: make([]*Vector, len(schema))}
	for i, c := range schema {
		t.Cols[i] = NewVector(c.Kind, 0)
	}
	return t
}

// Rows returns the row count.
func (t *Table) Rows() int { return t.rows }

// SetRows resizes all columns; the generator fills them in place.
func (t *Table) SetRows(n int) {
	for _, c := range t.Cols {
		c.Resize(n)
	}
	t.rows = n
}

// Col returns the column vector with the given name.
func (t *Table) Col(name string) *Vector {
	i := t.Schema.IndexOf(name)
	if i < 0 {
		panic(fmt.Sprintf("storage: table %s has no column %q", t.Name, name))
	}
	return t.Cols[i]
}

// AppendRow appends a row of scalars; test helper.
func (t *Table) AppendRow(vals ...any) {
	if len(vals) != len(t.Cols) {
		panic(fmt.Sprintf("storage: AppendRow arity %d vs %d cols", len(vals), len(t.Cols)))
	}
	n := t.rows
	t.SetRows(n + 1)
	for i, v := range vals {
		t.Cols[i].SetValue(n, v)
	}
}

// Catalog maps table names to tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table; replaces an existing table with the same name.
func (c *Catalog) Add(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = t
}

// Get returns the named table or an error.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return t, nil
}

// MustGet is Get that panics; used by hand-built plans.
func (c *Catalog) MustGet(name string) *Table {
	t, err := c.Get(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Names returns the registered table names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}

// Morsel is a half-open range of base-table rows processed as a unit by one
// worker (morsel-driven parallelism, paper §V-B).
type Morsel struct {
	Start, End int
}

// Rows returns the number of rows in the morsel.
func (m Morsel) Rows() int { return m.End - m.Start }

// DefaultMorselRows is the default morsel size.
const DefaultMorselRows = 16384

// Morsels splits n rows into ranges of at most size rows.
func Morsels(n, size int) []Morsel {
	if size <= 0 {
		size = DefaultMorselRows
	}
	out := make([]Morsel, 0, n/size+1)
	for lo := 0; lo < n; lo += size {
		hi := min(lo+size, n)
		out = append(out, Morsel{Start: lo, End: hi})
	}
	return out
}

package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"inkfuse/internal/types"
)

// ReadCSV loads a table from CSV. The header row must match the schema's
// column names in order; values parse by column kind (dates as YYYY-MM-DD).
// This is the counterpart of `cmd/tpchgen -csv`, so generated data can round
// trip through files.
func ReadCSV(name string, schema types.Schema, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: csv header: %w", err)
	}
	if len(header) != len(schema) {
		return nil, fmt.Errorf("storage: csv has %d columns, schema has %d", len(header), len(schema))
	}
	for i, h := range header {
		if h != schema[i].Name {
			return nil, fmt.Errorf("storage: csv column %d is %q, schema says %q", i, h, schema[i].Name)
		}
	}
	t := NewTable(name, schema)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("storage: csv line %d: %w", line, err)
		}
		line++
		n := t.rows
		t.SetRows(n + 1)
		for i, field := range rec {
			if err := parseInto(t.Cols[i], n, schema[i].Kind, field); err != nil {
				return nil, fmt.Errorf("storage: csv line %d, column %s: %w", line, schema[i].Name, err)
			}
		}
	}
}

func parseInto(col *Vector, row int, kind types.Kind, field string) error {
	switch kind {
	case types.Bool:
		v, err := strconv.ParseBool(field)
		if err != nil {
			return err
		}
		col.B[row] = v
	case types.Int32:
		v, err := strconv.ParseInt(field, 10, 32)
		if err != nil {
			return err
		}
		col.I32[row] = int32(v)
	case types.Date:
		v, err := types.ParseDate(field)
		if err != nil {
			return err
		}
		col.I32[row] = v
	case types.Int64:
		v, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return err
		}
		col.I64[row] = v
	case types.Float64:
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return err
		}
		col.F64[row] = v
	case types.String:
		col.Str[row] = field
	default:
		return fmt.Errorf("unsupported kind %v", kind)
	}
	return nil
}

// WriteCSV writes the table as CSV with a header row, the inverse of
// ReadCSV.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Schema))
	for i, c := range t.Schema {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(t.Cols))
	for r := 0; r < t.Rows(); r++ {
		for i, col := range t.Cols {
			switch col.Kind {
			case types.Date:
				rec[i] = types.DateString(col.I32[r])
			case types.Float64:
				rec[i] = strconv.FormatFloat(col.F64[r], 'g', -1, 64)
			default:
				rec[i] = fmt.Sprintf("%v", col.Value(r))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package storage

import (
	"bytes"
	"strings"
	"testing"

	"inkfuse/internal/types"
)

func TestCSVRoundtrip(t *testing.T) {
	schema := types.Schema{
		{Name: "k", Kind: types.Int64},
		{Name: "f", Kind: types.Float64},
		{Name: "s", Kind: types.String},
		{Name: "d", Kind: types.Date},
		{Name: "b", Kind: types.Bool},
		{Name: "i", Kind: types.Int32},
	}
	src := NewTable("t", schema)
	src.AppendRow(int64(-7), 3.25, "hello, with comma", types.MkDate(1994, 6, 1), true, int32(42))
	src.AppendRow(int64(0), -0.5, `quoted "str"`, types.MkDate(1992, 1, 1), false, int32(-1))

	var buf bytes.Buffer
	if err := WriteCSV(src, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("t2", schema, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 2 {
		t.Fatalf("rows = %d", got.Rows())
	}
	for r := 0; r < 2; r++ {
		for c := range schema {
			if src.Cols[c].Value(r) != got.Cols[c].Value(r) {
				t.Fatalf("row %d col %s: %v vs %v", r, schema[c].Name, src.Cols[c].Value(r), got.Cols[c].Value(r))
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	schema := types.Schema{{Name: "k", Kind: types.Int64}}
	if _, err := ReadCSV("t", schema, strings.NewReader("wrong\n1\n")); err == nil {
		t.Fatal("header mismatch accepted")
	}
	if _, err := ReadCSV("t", schema, strings.NewReader("k\nnot-a-number\n")); err == nil {
		t.Fatal("bad value accepted")
	}
	if _, err := ReadCSV("t", schema, strings.NewReader("k,extra\n")); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	// Empty body is fine.
	tbl, err := ReadCSV("t", schema, strings.NewReader("k\n"))
	if err != nil || tbl.Rows() != 0 {
		t.Fatalf("empty csv: %v rows=%d", err, tbl.Rows())
	}
	// Bad date.
	ds := types.Schema{{Name: "d", Kind: types.Date}}
	if _, err := ReadCSV("t", ds, strings.NewReader("d\n1994-13-99\n")); err == nil {
		t.Fatal("bad date accepted")
	}
}

// Package storage provides the columnar building blocks shared by the whole
// engine: typed vectors, chunks (the tuple buffers of the paper), base
// tables, and morsel ranges for morsel-driven parallelism.
package storage

import (
	"fmt"

	"inkfuse/internal/types"
)

// Vector is a dense, typed column of values. Exactly one of the typed slices
// is in use, selected by Kind. Vectors back both base-table columns and the
// tuple buffers / batch registers that tuples flow through during execution.
//
// The engine follows the dense-chunk model (paper §IV-B): vectors never carry
// selection bitmaps; filters compact instead.
type Vector struct {
	Kind types.Kind

	B   []bool
	I32 []int32
	I64 []int64
	F64 []float64
	Str []string
	Ptr [][]byte
}

// NewVector allocates a vector of the given kind with length n.
func NewVector(kind types.Kind, n int) *Vector {
	v := &Vector{Kind: kind}
	v.Resize(n)
	return v
}

// Len returns the number of values in the vector.
//
//inkfuse:hotpath
func (v *Vector) Len() int {
	switch v.Kind {
	case types.Bool:
		return len(v.B)
	case types.Int32, types.Date:
		return len(v.I32)
	case types.Int64:
		return len(v.I64)
	case types.Float64:
		return len(v.F64)
	case types.String:
		return len(v.Str)
	case types.Ptr:
		return len(v.Ptr)
	default:
		return 0
	}
}

// Resize sets the vector length to n, reusing capacity when possible.
//
//inkfuse:hotpath
func (v *Vector) Resize(n int) {
	switch v.Kind {
	case types.Bool:
		v.B = grow(v.B, n)
	case types.Int32, types.Date:
		v.I32 = grow(v.I32, n)
	case types.Int64:
		v.I64 = grow(v.I64, n)
	case types.Float64:
		v.F64 = grow(v.F64, n)
	case types.String:
		v.Str = grow(v.Str, n)
	case types.Ptr:
		v.Ptr = grow(v.Ptr, n)
	default:
		panic(fmt.Sprintf("storage: resize of invalid vector kind %v", v.Kind))
	}
}

//inkfuse:hotpath
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]T, n, max(n, 2*cap(s))) //inklint:allow alloc — capacity doubling; amortized O(1) per appended row
	copy(ns, s[:cap(s)])
	return ns
}

// Slice returns a view of rows [lo, hi) sharing the backing arrays.
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{Kind: v.Kind}
	switch v.Kind {
	case types.Bool:
		out.B = v.B[lo:hi]
	case types.Int32, types.Date:
		out.I32 = v.I32[lo:hi]
	case types.Int64:
		out.I64 = v.I64[lo:hi]
	case types.Float64:
		out.F64 = v.F64[lo:hi]
	case types.String:
		out.Str = v.Str[lo:hi]
	case types.Ptr:
		out.Ptr = v.Ptr[lo:hi]
	}
	return out
}

// SliceInto points dst at rows [lo, hi) of v, sharing the backing arrays: the
// allocation-free Slice for hot loops that reuse a scratch header. dst must
// not outlive v's backing arrays; only the field selected by Kind is updated.
//
//inkfuse:hotpath
func (v *Vector) SliceInto(dst *Vector, lo, hi int) {
	dst.Kind = v.Kind
	switch v.Kind {
	case types.Bool:
		dst.B = v.B[lo:hi]
	case types.Int32, types.Date:
		dst.I32 = v.I32[lo:hi]
	case types.Int64:
		dst.I64 = v.I64[lo:hi]
	case types.Float64:
		dst.F64 = v.F64[lo:hi]
	case types.String:
		dst.Str = v.Str[lo:hi]
	case types.Ptr:
		dst.Ptr = v.Ptr[lo:hi]
	}
}

// Gather fills dst with v[sel[i]] for every i. dst must have v's kind; it is
// resized to len(sel). This is the compaction/expansion workhorse of the
// dense-chunk execution model.
func (v *Vector) Gather(dst *Vector, sel []int32) {
	if dst.Kind != v.Kind {
		panic(fmt.Sprintf("storage: gather kind mismatch %v vs %v", dst.Kind, v.Kind))
	}
	dst.Resize(len(sel))
	switch v.Kind {
	case types.Bool:
		for i, s := range sel {
			dst.B[i] = v.B[s]
		}
	case types.Int32, types.Date:
		for i, s := range sel {
			dst.I32[i] = v.I32[s]
		}
	case types.Int64:
		for i, s := range sel {
			dst.I64[i] = v.I64[s]
		}
	case types.Float64:
		for i, s := range sel {
			dst.F64[i] = v.F64[s]
		}
	case types.String:
		for i, s := range sel {
			dst.Str[i] = v.Str[s]
		}
	case types.Ptr:
		for i, s := range sel {
			dst.Ptr[i] = v.Ptr[s]
		}
	}
}

// AppendFrom appends rows [lo, hi) of src to v. Kinds must match.
//
//inkfuse:hotpath
func (v *Vector) AppendFrom(src *Vector, lo, hi int) {
	if v.Kind != src.Kind {
		panic(fmt.Sprintf("storage: append kind mismatch %v vs %v", v.Kind, src.Kind))
	}
	switch v.Kind {
	case types.Bool:
		v.B = append(v.B, src.B[lo:hi]...) //inklint:allow alloc — append into reused column; grows to chunk capacity once
	case types.Int32, types.Date:
		v.I32 = append(v.I32, src.I32[lo:hi]...) //inklint:allow alloc — append into reused column; grows to chunk capacity once
	case types.Int64:
		v.I64 = append(v.I64, src.I64[lo:hi]...) //inklint:allow alloc — append into reused column; grows to chunk capacity once
	case types.Float64:
		v.F64 = append(v.F64, src.F64[lo:hi]...) //inklint:allow alloc — append into reused column; grows to chunk capacity once
	case types.String:
		v.Str = append(v.Str, src.Str[lo:hi]...) //inklint:allow alloc — append into reused column; grows to chunk capacity once
	case types.Ptr:
		v.Ptr = append(v.Ptr, src.Ptr[lo:hi]...) //inklint:allow alloc — append into reused column; grows to chunk capacity once
	}
}

// CopyFrom overwrites v with rows [lo, hi) of src.
func (v *Vector) CopyFrom(src *Vector, lo, hi int) {
	v.Resize(0)
	v.AppendFrom(src, lo, hi)
}

// Value returns row i as an any-typed scalar; test and debug helper, never on
// a hot path.
func (v *Vector) Value(i int) any {
	switch v.Kind {
	case types.Bool:
		return v.B[i]
	case types.Int32, types.Date:
		return v.I32[i]
	case types.Int64:
		return v.I64[i]
	case types.Float64:
		return v.F64[i]
	case types.String:
		return v.Str[i]
	case types.Ptr:
		return v.Ptr[i]
	default:
		return nil
	}
}

// SetValue sets row i from an any-typed scalar; test helper.
func (v *Vector) SetValue(i int, val any) {
	switch v.Kind {
	case types.Bool:
		v.B[i] = val.(bool)
	case types.Int32, types.Date:
		v.I32[i] = val.(int32)
	case types.Int64:
		v.I64[i] = val.(int64)
	case types.Float64:
		v.F64[i] = val.(float64)
	case types.String:
		v.Str[i] = val.(string)
	case types.Ptr:
		v.Ptr[i] = val.([]byte)
	default:
		panic("storage: set on invalid vector")
	}
}

// Bytes returns an approximate memory footprint of row i's value; used by
// materialization accounting (Table I proxies).
func (v *Vector) RowBytes(i int) int {
	switch v.Kind {
	case types.Bool:
		return 1
	case types.Int32, types.Date:
		return 4
	case types.Int64, types.Float64:
		return 8
	case types.String:
		return 16 + len(v.Str[i])
	case types.Ptr:
		return 8
	default:
		return 0
	}
}

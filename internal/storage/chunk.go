package storage

import (
	"fmt"

	"inkfuse/internal/types"
)

// DefaultChunkCap is the default tuple-buffer capacity (rows per chunk) used
// by the vectorized interpreter.
const DefaultChunkCap = 1024

// Chunk is a batch of tuples in columnar layout — the "tuple buffer" of the
// paper (§III). Chunks flow between the steps of a pipeline in the vectorized
// interpreter and hold query results.
type Chunk struct {
	Cols []*Vector
	rows int
}

// NewChunk creates a chunk with one empty vector per kind.
func NewChunk(kinds []types.Kind) *Chunk {
	c := &Chunk{Cols: make([]*Vector, len(kinds))}
	for i, k := range kinds {
		c.Cols[i] = NewVector(k, 0)
	}
	return c
}

// Rows returns the number of tuples in the chunk.
//
//inkfuse:hotpath
func (c *Chunk) Rows() int { return c.rows }

// SetRows resizes every column to n tuples.
//
//inkfuse:hotpath
func (c *Chunk) SetRows(n int) {
	for _, col := range c.Cols {
		col.Resize(n)
	}
	c.rows = n
}

// Reset empties the chunk, keeping capacity.
//
//inkfuse:hotpath
func (c *Chunk) Reset() { c.SetRows(0) }

// Kinds returns the column kinds.
func (c *Chunk) Kinds() []types.Kind {
	ks := make([]types.Kind, len(c.Cols))
	for i, col := range c.Cols {
		ks[i] = col.Kind
	}
	return ks
}

// AppendRow appends a row of scalars; test/result helper.
func (c *Chunk) AppendRow(vals ...any) {
	if len(vals) != len(c.Cols) {
		panic(fmt.Sprintf("storage: AppendRow arity %d vs %d cols", len(vals), len(c.Cols)))
	}
	n := c.rows
	c.SetRows(n + 1)
	for i, v := range vals {
		c.Cols[i].SetValue(n, v)
	}
}

// Row returns row i as scalars; test/result helper.
func (c *Chunk) Row(i int) []any {
	out := make([]any, len(c.Cols))
	for j, col := range c.Cols {
		out[j] = col.Value(i)
	}
	return out
}

// AppendFromVectors appends the first n rows of each vector to the matching
// column — the tuple-buffer sink operation used by compiled programs and
// primitives. It returns the (approximate) number of bytes materialized.
//
//inkfuse:hotpath
func (c *Chunk) AppendFromVectors(vs []*Vector, n int) int64 {
	if len(vs) != len(c.Cols) {
		panic("storage: AppendFromVectors column count mismatch")
	}
	var bytes int64
	for i, col := range c.Cols {
		col.AppendFrom(vs[i], 0, n)
		w := col.Kind.Width()
		if w <= 0 {
			// Variable-size columns: string headers / packed-row handles.
			if col.Kind == types.String {
				w = 16
			} else {
				w = 8
			}
		}
		bytes += int64(w) * int64(n)
	}
	c.rows += n
	return bytes
}

// AppendChunk appends all rows of src (column-wise). Schemas must match.
func (c *Chunk) AppendChunk(src *Chunk) {
	if len(src.Cols) != len(c.Cols) {
		panic("storage: AppendChunk column count mismatch")
	}
	for i, col := range c.Cols {
		col.AppendFrom(src.Cols[i], 0, src.rows)
	}
	c.rows += src.rows
}

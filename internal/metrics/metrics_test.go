package metrics

import (
	"errors"
	"expvar"
	"strings"
	"testing"
	"time"

	"inkfuse/internal/stats"
)

func TestRegistryFolding(t *testing.T) {
	r := &Registry{}
	r.QueryStarted()
	r.QueryStarted()
	r.QueryStarted()

	c1 := &stats.Counters{Tuples: 100, EmittedRows: 10, CompileTime: time.Millisecond, MemPeakBytes: 512}
	r.QueryDone(c1, 2*time.Millisecond, nil, false, false)

	c2 := &stats.Counters{Tuples: 50, PanicsRecovered: 1, MemPeakBytes: 256}
	r.QueryDone(c2, time.Millisecond, errors.New("boom"), false, false)

	c3 := &stats.Counters{Tuples: 7, CompileErrors: 1}
	r.QueryDone(c3, time.Millisecond, errors.New("ctx"), true, true)

	s := r.Snapshot()
	if s.QueriesStarted != 3 || s.QueriesSucceeded != 1 || s.QueriesFailed != 1 || s.QueriesCanceled != 1 {
		t.Fatalf("query counts wrong: %+v", s)
	}
	if s.Tuples != 157 || s.EmittedRows != 10 || s.PanicsRecovered != 1 || s.CompileErrors != 1 {
		t.Fatalf("counter folding wrong: %+v", s)
	}
	if s.DegradedQueries != 1 {
		t.Fatalf("degraded count wrong: %+v", s)
	}
	if s.MemPeakBytes != 512 {
		t.Fatalf("mem peak gauge: got %d, want 512", s.MemPeakBytes)
	}
	if s.QueryNanos != int64(4*time.Millisecond) {
		t.Fatalf("query nanos: got %d", s.QueryNanos)
	}
}

func TestQueryDoneNilCounters(t *testing.T) {
	r := &Registry{}
	r.QueryDone(nil, time.Millisecond, errors.New("early"), false, false)
	if s := r.Snapshot(); s.QueriesFailed != 1 || s.Tuples != 0 {
		t.Fatalf("nil counters mishandled: %+v", s)
	}
}

func TestDumpFormat(t *testing.T) {
	r := &Registry{}
	r.QueryStarted()
	r.QueryDone(&stats.Counters{Tuples: 5}, time.Millisecond, nil, false, false)
	out := r.Dump()
	for _, want := range []string{"inkfuse_queries_started 1", "inkfuse_queries_succeeded 1", "inkfuse_tuples 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestExpvarPublished(t *testing.T) {
	if expvar.Get("inkfuse") == nil {
		t.Fatal("default registry not published under expvar key \"inkfuse\"")
	}
}

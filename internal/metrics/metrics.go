// Package metrics is the engine-wide metrics registry: monotonic counters
// over every query the process has executed, fed once at query end from the
// already-merged per-worker stats — no atomics or allocations ever enter the
// per-row or per-morsel hot paths.
//
// The default registry is published through expvar under the key "inkfuse",
// so any HTTP server that mounts expvar.Handler (or the default
// /debug/vars route) exports the engine's counters for scraping; Dump
// renders the same snapshot as text for logs and CLIs.
package metrics

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"inkfuse/internal/stats"
)

// Registry accumulates engine-wide counters. All methods are safe for
// concurrent use; counters are monotonic except MemPeakBytes (a high-water
// gauge).
type Registry struct {
	queriesStarted   atomic.Int64
	queriesSucceeded atomic.Int64
	queriesFailed    atomic.Int64
	queriesCanceled  atomic.Int64

	tuples          atomic.Int64
	emittedRows     atomic.Int64
	panicsRecovered atomic.Int64
	compileErrors   atomic.Int64
	degradedQueries atomic.Int64

	// Hash-table and exchange behaviour, fed from the per-query counters.
	// htSpillsTotal must stay 0 when every build is exchanged (DESIGN.md §15)
	// — scripts/check.sh asserts exactly that after its concurrency smoke.
	htLocalHitsTotal    atomic.Int64
	htSpillsTotal       atomic.Int64
	htBloomSkipsTotal   atomic.Int64
	partRoutedRowsTotal atomic.Int64

	queryNanos   atomic.Int64
	compileNanos atomic.Int64

	memPeakBytes atomic.Int64

	// Scheduler counters, fed by internal/sched: admissions, load shedding,
	// and the point-in-time running/queued gauges every pool mirrors here so
	// /debug/vars and /metrics distinguish "busy" from "overloaded".
	schedAdmitted      atomic.Int64
	schedShed          atomic.Int64
	schedQueueTimeouts atomic.Int64
	schedDrainCanceled atomic.Int64
	schedRunning       atomic.Int64 // gauge: admitted queries now
	schedQueued        atomic.Int64 // gauge: admissions waiting now

	// Plan-cache counters, fed by internal/plancache: fingerprint lookups
	// that reused a cached plan+artifact instance, ones that had to build
	// fresh, and LRU evictions.
	plancacheHits      atomic.Int64
	plancacheMisses    atomic.Int64
	plancacheEvictions atomic.Int64
}

// Default is the process-wide registry the executor feeds; it is exported
// via expvar as "inkfuse".
var Default = &Registry{}

func init() {
	expvar.Publish("inkfuse", expvar.Func(func() any { return Default.Snapshot() }))
}

// QueryStarted records a query entering the engine.
func (r *Registry) QueryStarted() {
	r.queriesStarted.Add(1)
}

// QueryDone folds a finished query into the registry. c carries the query's
// merged counters (may be nil when the query died before executing), wall its
// end-to-end time, err its terminal error (nil on success), and canceled
// whether that error was a context cancellation or deadline. degraded marks
// a successful query that ran with a failed background compile.
func (r *Registry) QueryDone(c *stats.Counters, wall time.Duration, err error, canceled, degraded bool) {
	switch {
	case err == nil:
		r.queriesSucceeded.Add(1)
	case canceled:
		r.queriesCanceled.Add(1)
	default:
		r.queriesFailed.Add(1)
	}
	if degraded {
		r.degradedQueries.Add(1)
	}
	r.queryNanos.Add(int64(wall))
	if c == nil {
		return
	}
	r.tuples.Add(c.Tuples)
	r.emittedRows.Add(c.EmittedRows)
	r.panicsRecovered.Add(c.PanicsRecovered)
	r.compileErrors.Add(c.CompileErrors)
	r.compileNanos.Add(int64(c.CompileTime))
	r.htLocalHitsTotal.Add(c.HTLocalHits)
	r.htSpillsTotal.Add(c.HTSpills)
	r.htBloomSkipsTotal.Add(c.HTBloomSkips)
	r.partRoutedRowsTotal.Add(c.PartRoutedRows)
	// High-water gauge: keep the largest per-query memory peak observed.
	for {
		cur := r.memPeakBytes.Load()
		if c.MemPeakBytes <= cur || r.memPeakBytes.CompareAndSwap(cur, c.MemPeakBytes) {
			break
		}
	}
}

// SchedAdmitted records one query admission into a worker pool.
func (r *Registry) SchedAdmitted() {
	r.schedAdmitted.Add(1)
	r.schedRunning.Add(1)
}

// SchedReleased records one admitted query releasing its slot.
func (r *Registry) SchedReleased() {
	r.schedRunning.Add(-1)
}

// SchedShed records one query shed because the admission queue was full.
func (r *Registry) SchedShed() {
	r.schedShed.Add(1)
}

// SchedQueueTimeout records one queued admission abandoned by its context.
func (r *Registry) SchedQueueTimeout() {
	r.schedQueueTimeouts.Add(1)
}

// SchedDrainCanceled records n queries canceled by a drain deadline.
func (r *Registry) SchedDrainCanceled(n int64) {
	r.schedDrainCanceled.Add(n)
}

// SchedQueued moves the queued-admissions gauge by delta (+1 on enqueue,
// -1 on admit/abandon).
func (r *Registry) SchedQueued(delta int64) {
	r.schedQueued.Add(delta)
}

// PlanCacheHit records one fingerprint lookup served from the cache.
func (r *Registry) PlanCacheHit() {
	r.plancacheHits.Add(1)
}

// PlanCacheMiss records one fingerprint lookup that built a fresh plan.
func (r *Registry) PlanCacheMiss() {
	r.plancacheMisses.Add(1)
}

// PlanCacheEvicted records n cached entries evicted by the LRU bound.
func (r *Registry) PlanCacheEvicted(n int64) {
	r.plancacheEvictions.Add(n)
}

// Snapshot is a point-in-time copy of the registry, in export form. Field
// names double as the exported metric names.
type Snapshot struct {
	QueriesStarted   int64 `json:"queries_started"`
	QueriesSucceeded int64 `json:"queries_succeeded"`
	QueriesFailed    int64 `json:"queries_failed"`
	QueriesCanceled  int64 `json:"queries_canceled"`
	DegradedQueries  int64 `json:"degraded_queries"`
	Tuples           int64 `json:"tuples"`
	EmittedRows      int64 `json:"emitted_rows"`
	PanicsRecovered  int64 `json:"panics_recovered"`
	CompileErrors    int64 `json:"compile_errors"`
	QueryNanos       int64 `json:"query_nanos"`
	CompileNanos     int64 `json:"compile_nanos"`
	MemPeakBytes     int64 `json:"mem_peak_bytes"`

	HTLocalHitsTotal    int64 `json:"ht_local_hits_total"`
	HTSpillsTotal       int64 `json:"ht_spills_total"`
	HTBloomSkipsTotal   int64 `json:"ht_bloom_skips_total"`
	PartRoutedRowsTotal int64 `json:"part_routed_rows_total"`

	SchedAdmitted      int64 `json:"sched_admitted"`
	SchedShed          int64 `json:"sched_shed"`
	SchedQueueTimeouts int64 `json:"sched_queue_timeouts"`
	SchedDrainCanceled int64 `json:"sched_drain_canceled"`
	SchedRunning       int64 `json:"sched_running"`
	SchedQueued        int64 `json:"sched_queued"`

	PlanCacheHits      int64 `json:"plancache_hits"`
	PlanCacheMisses    int64 `json:"plancache_misses"`
	PlanCacheEvictions int64 `json:"plancache_evictions"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	return Snapshot{
		QueriesStarted:   r.queriesStarted.Load(),
		QueriesSucceeded: r.queriesSucceeded.Load(),
		QueriesFailed:    r.queriesFailed.Load(),
		QueriesCanceled:  r.queriesCanceled.Load(),
		DegradedQueries:  r.degradedQueries.Load(),
		Tuples:           r.tuples.Load(),
		EmittedRows:      r.emittedRows.Load(),
		PanicsRecovered:  r.panicsRecovered.Load(),
		CompileErrors:    r.compileErrors.Load(),
		QueryNanos:       r.queryNanos.Load(),
		CompileNanos:     r.compileNanos.Load(),
		MemPeakBytes:     r.memPeakBytes.Load(),

		HTLocalHitsTotal:    r.htLocalHitsTotal.Load(),
		HTSpillsTotal:       r.htSpillsTotal.Load(),
		HTBloomSkipsTotal:   r.htBloomSkipsTotal.Load(),
		PartRoutedRowsTotal: r.partRoutedRowsTotal.Load(),

		SchedAdmitted:      r.schedAdmitted.Load(),
		SchedShed:          r.schedShed.Load(),
		SchedQueueTimeouts: r.schedQueueTimeouts.Load(),
		SchedDrainCanceled: r.schedDrainCanceled.Load(),
		SchedRunning:       r.schedRunning.Load(),
		SchedQueued:        r.schedQueued.Load(),

		PlanCacheHits:      r.plancacheHits.Load(),
		PlanCacheMisses:    r.plancacheMisses.Load(),
		PlanCacheEvictions: r.plancacheEvictions.Load(),
	}
}

// Dump renders the snapshot as sorted "name value" lines — the text export.
func (r *Registry) Dump() string {
	s := r.Snapshot()
	rows := map[string]int64{
		"queries_started":   s.QueriesStarted,
		"queries_succeeded": s.QueriesSucceeded,
		"queries_failed":    s.QueriesFailed,
		"queries_canceled":  s.QueriesCanceled,
		"degraded_queries":  s.DegradedQueries,
		"tuples":            s.Tuples,
		"emitted_rows":      s.EmittedRows,
		"panics_recovered":  s.PanicsRecovered,
		"compile_errors":    s.CompileErrors,
		"query_nanos":       s.QueryNanos,
		"compile_nanos":     s.CompileNanos,
		"mem_peak_bytes":    s.MemPeakBytes,

		"ht_local_hits_total":    s.HTLocalHitsTotal,
		"ht_spills_total":        s.HTSpillsTotal,
		"ht_bloom_skips_total":   s.HTBloomSkipsTotal,
		"part_routed_rows_total": s.PartRoutedRowsTotal,

		"sched_admitted":       s.SchedAdmitted,
		"sched_shed":           s.SchedShed,
		"sched_queue_timeouts": s.SchedQueueTimeouts,
		"sched_drain_canceled": s.SchedDrainCanceled,
		"sched_running":        s.SchedRunning,
		"sched_queued":         s.SchedQueued,

		"plancache_hits":      s.PlanCacheHits,
		"plancache_misses":    s.PlanCacheMisses,
		"plancache_evictions": s.PlanCacheEvictions,
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "inkfuse_%s %d\n", n, rows[n])
	}
	return b.String()
}

package volcano

import (
	"fmt"

	"inkfuse/internal/algebra"
	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/types"
)

// compile turns an expression into a row-at-a-time evaluator closure — the
// classic interpreted-engine expression evaluation the paper contrasts with.
func compile(e algebra.Expr, s types.Schema) (func([]any) any, error) {
	switch x := e.(type) {
	case algebra.ColRef:
		i := s.IndexOf(x.Name)
		if i < 0 {
			return nil, fmt.Errorf("volcano: unknown column %q", x.Name)
		}
		return func(row []any) any { return row[i] }, nil

	case algebra.Const:
		v := constValue(x)
		return func([]any) any { return v }, nil

	case algebra.Bin:
		l, err := compile(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := compile(x.R, s)
		if err != nil {
			return nil, err
		}
		k, err := x.Kind(s)
		if err != nil {
			return nil, err
		}
		op := x.Op
		switch k {
		case types.Int32:
			return func(row []any) any { return binI32(op, l(row).(int32), r(row).(int32)) }, nil
		case types.Int64:
			return func(row []any) any { return binI64(op, l(row).(int64), r(row).(int64)) }, nil
		case types.Float64:
			return func(row []any) any { return binF64(op, l(row).(float64), r(row).(float64)) }, nil
		default:
			return nil, fmt.Errorf("volcano: arithmetic on %v", k)
		}

	case algebra.CmpE:
		l, err := compile(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := compile(x.R, s)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(row []any) any { return cmpVals(op, l(row), r(row)) }, nil

	case algebra.LogicE:
		l, err := compile(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := compile(x.R, s)
		if err != nil {
			return nil, err
		}
		if x.Op == ir.And {
			return func(row []any) any { return l(row).(bool) && r(row).(bool) }, nil
		}
		return func(row []any) any { return l(row).(bool) || r(row).(bool) }, nil

	case algebra.NotE:
		in, err := compile(x.E, s)
		if err != nil {
			return nil, err
		}
		return func(row []any) any { return !in(row).(bool) }, nil

	case algebra.LikeE:
		in, err := compile(x.E, s)
		if err != nil {
			return nil, err
		}
		m := rt.NewLikeMatcher(x.Pattern)
		neg := x.Negate
		return func(row []any) any { return m.Match(in(row).(string)) != neg }, nil

	case algebra.InListE:
		in, err := compile(x.E, s)
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool, len(x.Members))
		for _, mem := range x.Members {
			set[mem] = true
		}
		return func(row []any) any { return set[in(row).(string)] }, nil

	case algebra.CaseE:
		c, err := compile(x.Cond, s)
		if err != nil {
			return nil, err
		}
		t, err := compile(x.Then, s)
		if err != nil {
			return nil, err
		}
		els, err := compile(x.Else, s)
		if err != nil {
			return nil, err
		}
		return func(row []any) any {
			if c(row).(bool) {
				return t(row)
			}
			return els(row)
		}, nil

	case algebra.CastE:
		in, err := compile(x.E, s)
		if err != nil {
			return nil, err
		}
		switch x.To {
		case types.Int64:
			return func(row []any) any { return toI64(in(row)) }, nil
		case types.Float64:
			return func(row []any) any { return toF64(in(row)) }, nil
		case types.Int32:
			return func(row []any) any { return int32(toI64(in(row))) }, nil
		default:
			return nil, fmt.Errorf("volcano: cast to %v", x.To)
		}

	default:
		return nil, fmt.Errorf("volcano: cannot compile %T", e)
	}
}

func constValue(c algebra.Const) any {
	switch c.K {
	case types.Bool:
		return c.B
	case types.Int32, types.Date:
		return c.I32
	case types.Int64:
		return c.I64
	case types.Float64:
		return c.F64
	case types.String:
		return c.Str
	default:
		return nil
	}
}

func binI32(op ir.BinOp, a, b int32) int32 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	default:
		return a / b
	}
}

func binI64(op ir.BinOp, a, b int64) int64 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	default:
		return a / b
	}
}

func binF64(op ir.BinOp, a, b float64) float64 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	default:
		return a / b
	}
}

func cmpVals(op ir.CmpOp, a, b any) bool {
	c := compareAny(a, b)
	switch op {
	case ir.Lt:
		return c < 0
	case ir.Le:
		return c <= 0
	case ir.Eq:
		return c == 0
	case ir.Ne:
		return c != 0
	case ir.Ge:
		return c >= 0
	default:
		return c > 0
	}
}

func toI64(v any) int64 {
	switch x := v.(type) {
	case int32:
		return int64(x)
	case int64:
		return x
	case float64:
		return int64(x)
	default:
		return 0
	}
}

func toF64(v any) float64 {
	switch x := v.(type) {
	case int32:
		return float64(x)
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		return 0
	}
}

package volcano

import (
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/ir"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

func table() *storage.Table {
	t := storage.NewTable("t", types.Schema{
		{Name: "a", Kind: types.Int64},
		{Name: "b", Kind: types.Float64},
		{Name: "s", Kind: types.String},
	})
	t.AppendRow(int64(1), 1.5, "x")
	t.AppendRow(int64(2), 2.5, "y")
	t.AppendRow(int64(3), 3.5, "x")
	return t
}

func TestScanFilterMapProject(t *testing.T) {
	tbl := table()
	node := algebra.NewProject(
		algebra.NewMap(
			algebra.NewFilter(algebra.NewScan(tbl, "a", "b", "s"),
				algebra.Eq(algebra.Col("s"), algebra.Str("x"))),
			algebra.NamedExpr{As: "c", E: algebra.Mul(algebra.Col("b"), algebra.F64(2))},
		), "a", "c")
	out, err := Run(node)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 2 || out.Row(0)[1] != 3.0 || out.Row(1)[0] != int64(3) {
		t.Fatalf("rows: %v %v", out.Row(0), out.Row(1))
	}
}

func TestGroupByAggregates(t *testing.T) {
	tbl := table()
	node := algebra.NewGroupBy(algebra.NewScan(tbl, "s", "b"), []string{"s"},
		algebra.Sum("b", "sum"), algebra.Count("n"),
		algebra.Avg("b", "avg"), algebra.MinOf("b", "min"), algebra.MaxOf("b", "max"))
	out, err := Run(node)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 2 {
		t.Fatalf("groups = %d", out.Rows())
	}
	for i := 0; i < out.Rows(); i++ {
		r := out.Row(i)
		if r[0] == "x" {
			if r[1] != 5.0 || r[2] != int64(2) || r[3] != 2.5 || r[4] != 1.5 || r[5] != 3.5 {
				t.Fatalf("x group: %v", r)
			}
		}
	}
}

func TestKeylessAggOnEmptyInput(t *testing.T) {
	tbl := table()
	node := algebra.NewGroupBy(
		algebra.NewFilter(algebra.NewScan(tbl, "b"), algebra.Gt(algebra.Col("b"), algebra.F64(1e9))),
		nil, algebra.Sum("b", "s"), algebra.Count("n"))
	out, err := Run(node)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 1 || out.Row(0)[0] != 0.0 || out.Row(0)[1] != int64(0) {
		t.Fatalf("keyless empty agg: %v rows=%d", out.Row(0), out.Rows())
	}
}

func TestJoinModes(t *testing.T) {
	tbl := table()
	dim := storage.NewTable("dim", types.Schema{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.String},
	})
	dim.AppendRow(int64(1), "one")
	dim.AppendRow(int64(1), "uno")
	dim.AppendRow(int64(3), "three")

	inner := &algebra.HashJoin{
		Build: algebra.NewScan(dim, "k", "v"), Probe: algebra.NewScan(tbl, "a", "b"),
		BuildKeys: []string{"k"}, ProbeKeys: []string{"a"},
		BuildCols: []string{"v"}, Mode: ir.InnerJoin,
	}
	out, err := Run(inner)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3 { // a=1 matches twice, a=3 once
		t.Fatalf("inner rows = %d", out.Rows())
	}

	semi := &algebra.HashJoin{
		Build: algebra.NewScan(dim, "k"), Probe: algebra.NewScan(tbl, "a"),
		BuildKeys: []string{"k"}, ProbeKeys: []string{"a"}, Mode: ir.SemiJoin,
	}
	out, err = Run(semi)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 2 {
		t.Fatalf("semi rows = %d", out.Rows())
	}

	outer := &algebra.HashJoin{
		Build: algebra.NewScan(dim, "k", "v"), Probe: algebra.NewScan(tbl, "a"),
		BuildKeys: []string{"k"}, ProbeKeys: []string{"a"},
		BuildCols: []string{"v"}, Mode: ir.LeftOuterJoin, MatchedAs: "m",
	}
	out, err = Run(outer)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 4 { // 2 + null + 1
		t.Fatalf("outer rows = %d", out.Rows())
	}
	nulls := 0
	for i := 0; i < out.Rows(); i++ {
		r := out.Row(i)
		if r[2] == false {
			nulls++
			if r[0] != int64(2) || r[1] != "" {
				t.Fatalf("unmatched row: %v", r)
			}
		}
	}
	if nulls != 1 {
		t.Fatalf("nulls = %d", nulls)
	}
}

func TestOrderByLimit(t *testing.T) {
	tbl := table()
	node := algebra.NewOrderBy(algebra.NewScan(tbl, "a", "b"), []string{"b"}, []bool{true}, 2)
	out, err := Run(node)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 2 || out.Row(0)[1] != 3.5 || out.Row(1)[1] != 2.5 {
		t.Fatalf("order by: %v %v", out.Row(0), out.Row(1))
	}
}

func TestExpressionSuite(t *testing.T) {
	tbl := table()
	node := algebra.NewProject(algebra.NewMap(algebra.NewScan(tbl, "a", "b", "s"),
		algebra.NamedExpr{As: "e1", E: algebra.Case(
			algebra.Or(algebra.Eq(algebra.Col("s"), algebra.Str("y")),
				algebra.Gt(algebra.Col("a"), algebra.I64(2))),
			algebra.Col("b"), algebra.F64(-1))},
		algebra.NamedExpr{As: "e2", E: algebra.CastE{To: types.Float64, E: algebra.Col("a")}},
		algebra.NamedExpr{As: "e3", E: algebra.Not(algebra.Like(algebra.Col("s"), "x%"))},
		algebra.NamedExpr{As: "e4", E: algebra.In(algebra.Col("s"), "x", "z")},
	), "e1", "e2", "e3", "e4")
	out, err := Run(node)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: s=x, a=1: e1=-1, e2=1.0, e3=false, e4=true
	r := out.Row(0)
	if r[0] != -1.0 || r[1] != 1.0 || r[2] != false || r[3] != true {
		t.Fatalf("row 0: %v", r)
	}
	// Row 1: s=y: e1=b=2.5, e3=true, e4=false
	r = out.Row(1)
	if r[0] != 2.5 || r[2] != true || r[3] != false {
		t.Fatalf("row 1: %v", r)
	}
}

func TestCompileErrors(t *testing.T) {
	s := types.Schema{{Name: "s", Kind: types.String}}
	if _, err := compile(algebra.Col("missing"), s); err == nil {
		t.Fatal("missing column must fail")
	}
	if _, err := compile(algebra.Bin{Op: ir.Add, L: algebra.Col("s"), R: algebra.Col("s")}, s); err == nil {
		t.Fatal("string arithmetic must fail")
	}
}

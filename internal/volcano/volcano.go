// Package volcano is a classic tuple-at-a-time interpreter over the same
// relational-algebra plans the Incremental Fusion engine executes. It plays
// two roles: the traditional-interpreter baseline in the benchmarks
// (paper §II-A), and an independent correctness oracle for the engine's
// results — it shares no code with the suboperator lowering, the VM, or the
// runtime hash tables.
package volcano

import (
	"fmt"
	"sort"
	"strings"

	"inkfuse/internal/algebra"
	"inkfuse/internal/ir"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// Run evaluates a plan and materializes its result.
func Run(root algebra.Node) (*storage.Chunk, error) {
	rows, schema, err := eval(root)
	if err != nil {
		return nil, err
	}
	out := storage.NewChunk(schema.Kinds())
	for _, r := range rows {
		out.AppendRow(r...)
	}
	return out, nil
}

func eval(node algebra.Node) ([][]any, types.Schema, error) {
	schema, err := node.Schema()
	if err != nil {
		return nil, nil, err
	}
	switch n := node.(type) {
	case *algebra.Scan:
		rows := make([][]any, n.Table.Rows())
		cols := make([]*storage.Vector, len(schema))
		for i, c := range schema {
			cols[i] = n.Table.Col(c.Name)
		}
		for r := range rows {
			row := make([]any, len(cols))
			for i, c := range cols {
				row[i] = c.Value(r)
			}
			rows[r] = row
		}
		return rows, schema, nil

	case *algebra.Filter:
		in, inSchema, err := eval(n.In)
		if err != nil {
			return nil, nil, err
		}
		pred, err := compile(n.Pred, inSchema)
		if err != nil {
			return nil, nil, err
		}
		var out [][]any
		for _, row := range in {
			if pred(row).(bool) {
				out = append(out, row)
			}
		}
		return out, schema, nil

	case *algebra.Map:
		in, inSchema, err := eval(n.In)
		if err != nil {
			return nil, nil, err
		}
		// Expressions may reference columns added by earlier expressions.
		cur := inSchema
		var fns []func([]any) any
		for _, ne := range n.Exprs {
			fn, err := compile(ne.E, cur)
			if err != nil {
				return nil, nil, err
			}
			fns = append(fns, fn)
			k, _ := ne.E.Kind(cur)
			cur = append(cur, types.ColumnDesc{Name: ne.As, Kind: k})
		}
		out := make([][]any, len(in))
		for r, row := range in {
			nrow := append(append([]any{}, row...), make([]any, len(fns))...)
			for i, fn := range fns {
				nrow[len(row)+i] = fn(nrow[:len(row)+i])
			}
			out[r] = nrow
		}
		return out, schema, nil

	case *algebra.Project:
		in, inSchema, err := eval(n.In)
		if err != nil {
			return nil, nil, err
		}
		idx := make([]int, len(n.Cols))
		for i, c := range n.Cols {
			idx[i] = inSchema.MustIndexOf(c)
		}
		out := make([][]any, len(in))
		for r, row := range in {
			nrow := make([]any, len(idx))
			for i, j := range idx {
				nrow[i] = row[j]
			}
			out[r] = nrow
		}
		return out, schema, nil

	case *algebra.HashJoin:
		return evalJoin(n, schema)

	case *algebra.GroupBy:
		return evalGroupBy(n, schema)

	case *algebra.OrderBy:
		in, inSchema, err := eval(n.In)
		if err != nil {
			return nil, nil, err
		}
		idx := make([]int, len(n.Keys))
		for i, k := range n.Keys {
			idx[i] = inSchema.MustIndexOf(k)
		}
		sort.SliceStable(in, func(a, b int) bool {
			for i, ci := range idx {
				c := compareAny(in[a][ci], in[b][ci])
				if c == 0 {
					continue
				}
				if i < len(n.Desc) && n.Desc[i] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if n.Limit > 0 && n.Limit < len(in) {
			in = in[:n.Limit]
		}
		return in, schema, nil

	default:
		return nil, nil, fmt.Errorf("volcano: cannot evaluate %T", node)
	}
}

func evalJoin(n *algebra.HashJoin, schema types.Schema) ([][]any, types.Schema, error) {
	build, bSchema, err := eval(n.Build)
	if err != nil {
		return nil, nil, err
	}
	probe, pSchema, err := eval(n.Probe)
	if err != nil {
		return nil, nil, err
	}
	bKey := make([]int, len(n.BuildKeys))
	for i, k := range n.BuildKeys {
		bKey[i] = bSchema.MustIndexOf(k)
	}
	pKey := make([]int, len(n.ProbeKeys))
	for i, k := range n.ProbeKeys {
		pKey[i] = pSchema.MustIndexOf(k)
	}
	carry := make([]int, len(n.BuildCols))
	for i, c := range n.BuildCols {
		carry[i] = bSchema.MustIndexOf(c)
	}
	ht := make(map[string][][]any, len(build))
	for _, row := range build {
		k := keyOf(row, bKey)
		ht[k] = append(ht[k], row)
	}
	var out [][]any
	for _, prow := range probe {
		k := keyOf(prow, pKey)
		matches := ht[k]
		switch n.Mode {
		case ir.SemiJoin:
			if len(matches) > 0 {
				out = append(out, prow)
			}
		case ir.AntiJoin:
			if len(matches) == 0 {
				out = append(out, prow)
			}
		case ir.InnerJoin:
			for _, brow := range matches {
				nrow := append([]any{}, prow...)
				for _, ci := range carry {
					nrow = append(nrow, brow[ci])
				}
				out = append(out, nrow)
			}
		case ir.LeftOuterJoin:
			if len(matches) == 0 {
				nrow := append([]any{}, prow...)
				for _, ci := range carry {
					nrow = append(nrow, zeroOf(bSchema[ci].Kind))
				}
				if n.MatchedAs != "" {
					nrow = append(nrow, false)
				}
				out = append(out, nrow)
				continue
			}
			for _, brow := range matches {
				nrow := append([]any{}, prow...)
				for _, ci := range carry {
					nrow = append(nrow, brow[ci])
				}
				if n.MatchedAs != "" {
					nrow = append(nrow, true)
				}
				out = append(out, nrow)
			}
		}
	}
	return out, schema, nil
}

type aggAcc struct {
	key   []any
	sumI  []int64
	sumF  []float64
	cnt   []int64
	minF  []float64
	maxF  []float64
	minI  []int32
	maxI  []int32
	seen  []bool
	count int64
}

func evalGroupBy(n *algebra.GroupBy, schema types.Schema) ([][]any, types.Schema, error) {
	in, inSchema, err := eval(n.In)
	if err != nil {
		return nil, nil, err
	}
	keyIdx := make([]int, len(n.Keys))
	noCase := make([]bool, len(n.Keys))
	for i, k := range n.Keys {
		keyIdx[i] = inSchema.MustIndexOf(k)
		for _, nc := range n.NoCase {
			noCase[i] = noCase[i] || nc == k
		}
	}
	aggIdx := make([]int, len(n.Aggs))
	for i, a := range n.Aggs {
		aggIdx[i] = -1
		if a.Col != "" {
			aggIdx[i] = inSchema.MustIndexOf(a.Col)
		}
	}
	na := len(n.Aggs)
	groups := make(map[string]*aggAcc)
	var order []string
	for _, row := range in {
		k := keyOfCollated(row, keyIdx, noCase)
		acc, ok := groups[k]
		if !ok {
			acc = &aggAcc{
				key:  extract(row, keyIdx),
				sumI: make([]int64, na), sumF: make([]float64, na), cnt: make([]int64, na),
				minF: make([]float64, na), maxF: make([]float64, na),
				minI: make([]int32, na), maxI: make([]int32, na), seen: make([]bool, na),
			}
			groups[k] = acc
			order = append(order, k)
		}
		acc.count++
		for i, a := range n.Aggs {
			switch a.Fn {
			case algebra.AggSum, algebra.AggAvg:
				switch v := row[aggIdx[i]].(type) {
				case int64:
					acc.sumI[i] += v
				case float64:
					acc.sumF[i] += v
				}
				acc.cnt[i]++
			case algebra.AggCount:
				acc.cnt[i]++
			case algebra.AggCountIf:
				if row[aggIdx[i]].(bool) {
					acc.cnt[i]++
				}
			case algebra.AggMin, algebra.AggMax:
				switch v := row[aggIdx[i]].(type) {
				case float64:
					if !acc.seen[i] {
						acc.minF[i], acc.maxF[i] = v, v
					} else {
						acc.minF[i] = min(acc.minF[i], v)
						acc.maxF[i] = max(acc.maxF[i], v)
					}
				case int32:
					if !acc.seen[i] {
						acc.minI[i], acc.maxI[i] = v, v
					} else {
						acc.minI[i] = min(acc.minI[i], v)
						acc.maxI[i] = max(acc.maxI[i], v)
					}
				}
				acc.seen[i] = true
			}
		}
	}
	if len(n.Keys) == 0 && len(order) == 0 {
		// Keyless aggregation over empty input still yields one row.
		groups[""] = &aggAcc{
			key:  nil,
			sumI: make([]int64, na), sumF: make([]float64, na), cnt: make([]int64, na),
			minF: make([]float64, na), maxF: make([]float64, na),
			minI: make([]int32, na), maxI: make([]int32, na), seen: make([]bool, na),
		}
		order = append(order, "")
	}
	var out [][]any
	for _, k := range order {
		acc := groups[k]
		row := append([]any{}, acc.key...)
		for i, a := range n.Aggs {
			switch a.Fn {
			case algebra.AggSum:
				if inSchema[aggIdx[i]].Kind == types.Int64 {
					row = append(row, acc.sumI[i])
				} else {
					row = append(row, acc.sumF[i])
				}
			case algebra.AggCount, algebra.AggCountIf:
				row = append(row, acc.cnt[i])
			case algebra.AggAvg:
				row = append(row, acc.sumF[i]/float64(acc.cnt[i]))
			case algebra.AggMin:
				if k := inSchema[aggIdx[i]].Kind; k == types.Int32 || k == types.Date {
					row = append(row, acc.minI[i])
				} else {
					row = append(row, acc.minF[i])
				}
			case algebra.AggMax:
				if k := inSchema[aggIdx[i]].Kind; k == types.Int32 || k == types.Date {
					row = append(row, acc.maxI[i])
				} else {
					row = append(row, acc.maxF[i])
				}
			}
		}
		out = append(out, row)
	}
	return out, schema, nil
}

func extract(row []any, idx []int) []any {
	out := make([]any, len(idx))
	for i, j := range idx {
		out[i] = row[j]
	}
	return out
}

func keyOf(row []any, idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		fmt.Fprintf(&b, "%v\x00", row[i])
	}
	return b.String()
}

// keyOfCollated is keyOf with case-insensitive keys mapped to their
// lowercase equivalence-class representative.
func keyOfCollated(row []any, idx []int, noCase []bool) string {
	var b strings.Builder
	for j, i := range idx {
		v := row[i]
		if noCase[j] {
			v = strings.ToLower(v.(string))
		}
		fmt.Fprintf(&b, "%v\x00", v)
	}
	return b.String()
}

func zeroOf(k types.Kind) any {
	switch k {
	case types.Bool:
		return false
	case types.Int32, types.Date:
		return int32(0)
	case types.Int64:
		return int64(0)
	case types.Float64:
		return float64(0)
	case types.String:
		return ""
	default:
		return nil
	}
}

func compareAny(a, b any) int {
	switch av := a.(type) {
	case int32:
		return cmpOrd(av, b.(int32))
	case int64:
		return cmpOrd(av, b.(int64))
	case float64:
		return cmpOrd(av, b.(float64))
	case string:
		return cmpOrd(av, b.(string))
	case bool:
		bv := b.(bool)
		switch {
		case av == bv:
			return 0
		case bv:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

func cmpOrd[T interface {
	~int32 | ~int64 | ~float64 | ~string
}](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

package sql_test

import (
	"errors"
	"strings"
	"testing"

	"inkfuse/internal/sql"
	"inkfuse/internal/tpch"
)

var testCat = tpch.Generate(0.001, 7)

// validCorpus exercises every grammar production the frontend supports.
var validCorpus = []string{
	`select l_orderkey from lineitem order by l_orderkey`,
	`select l_orderkey, l_quantity from lineitem where l_quantity < 10 order by l_orderkey desc limit 5`,
	`select count(*) as n from lineitem`,
	`select sum(l_quantity) as s, avg(l_discount) as a, min(l_tax) as lo, max(l_tax) as hi from lineitem`,
	`select l_returnflag, count(*) as n from lineitem group by l_returnflag order by l_returnflag asc`,
	`select l_orderkey from lineitem where l_shipdate between date '1994-01-01' and date '1994-12-31' order by l_orderkey`,
	`select l_orderkey from lineitem where l_quantity not between 5 and 45 order by l_orderkey`,
	`select l_orderkey from lineitem where l_shipmode in ('AIR', 'MAIL') order by l_orderkey`,
	`select l_orderkey from lineitem where l_shipmode not in ('AIR') and not l_shipinstruct like 'DELIVER%' order by l_orderkey`,
	`select o_orderkey from orders where o_comment like '%iron%' or o_comment like '%steel%' order by o_orderkey`,
	`select o_orderkey from orders where o_comment not like '%special%' order by o_orderkey`,
	`select c_custkey from customer where c_custkey = ? order by c_custkey`,
	`select l_orderkey from lineitem where l_shipdate >= ? and l_quantity < ? order by l_orderkey`,
	`select o_orderkey from orders where o_comment like ? order by o_orderkey`,
	`select sum(case when l_quantity > 25 then l_extendedprice else 0 end) as big from lineitem`,
	`select o_orderpriority, count(*) as n from orders
	   where exists (select l_orderkey from lineitem where l_orderkey = o_orderkey)
	   group by o_orderpriority order by o_orderpriority`,
	`select o_orderpriority, count(*) as n from orders
	   where not exists (select l_orderkey from lineitem where l_orderkey = o_orderkey and l_quantity > 49)
	   group by o_orderpriority order by o_orderpriority`,
	`select big, count(*) as n from (select o_custkey, sum(o_orderkey) as big from orders group by o_custkey) as t
	   group by big order by n desc, big limit 3`,
	`select c.c_custkey from customer as c where c.c_custkey < 100 order by c_custkey`,
	`select o_custkey, o_orderkey from customer join orders on c_custkey = o_custkey order by o_orderkey`,
	`select c_custkey, o_orderkey from customer left outer join orders on c_custkey = o_custkey order by c_custkey, o_orderkey`,
	`select l_orderkey, o_orderpriority from (orders join lineitem on o_orderkey = l_orderkey) where l_quantity < 2 order by l_orderkey`,
	`-- leading comment
	 select l_orderkey -- trailing comment
	 from lineitem order by l_orderkey;`,
	`select l_orderkey, l_extendedprice * (1 - l_discount) as net from lineitem order by l_orderkey`,
	`select l_orderkey from lineitem where l_quantity <> 7 and l_quantity != 8 order by l_orderkey`,
	`select l_orderkey from lineitem where -5 < l_quantity order by l_orderkey`,
	`select o_comment from orders where o_comment = 'it''s' order by o_comment`,
}

// invalidCorpus pairs malformed inputs with the position and message fragment
// the typed error must carry.
var invalidCorpus = []struct {
	src       string
	line, col int
	frag      string
}{
	{`select`, 1, 7, "unexpected"},
	{`selec l_orderkey from lineitem`, 1, 1, "expected SELECT"},
	{`select * from lineitem`, 1, 8, "count(*)"},
	{`select l_orderkey lineitem`, 1, 27, "expected FROM"},
	{`select l_orderkey from`, 1, 23, "expected table name"},
	{`select l_orderkey from lineitem where`, 1, 38, "unexpected"},
	{`select l_orderkey from lineitem where l_quantity <`, 1, 51, "unexpected"},
	{"select l_orderkey\nfrom lineitem\nwhere l_quantity < $1", 3, 20, "unexpected character"},
	{`select l_orderkey from lineitem where l_comment like 7`, 1, 54, "LIKE pattern"},
	{`select l_orderkey from lineitem where l_quantity in (1, 2)`, 1, 54, "string literals only"},
	{`select l_orderkey from lineitem where l_comment = 'oops`, 1, 51, "unterminated string"},
	{`select l_orderkey from lineitem where l_quantity = 1.2.3`, 1, 52, "malformed number"},
	{`select nvl(l_orderkey, 0) as x from lineitem`, 1, 8, "unknown function"},
	{`select sum(*) as s from lineitem`, 1, 8, "requires count"},
	{`select l_orderkey from lineitem limit 0`, 1, 39, "positive integer"},
	{`select l_orderkey from lineitem limit 2.5`, 1, 39, "expected integer"},
	{`select case when 1 then 2 when 3 then 4 else 5 end as x from lineitem`, 1, 27, "multiple WHEN"},
	{`select case when l_quantity > 1 then 1 end as x from lineitem`, 1, 40, "expected ELSE"},
	{`select l_orderkey from lineitem where not`, 1, 42, "unexpected"},
	{`select l_orderkey from (select l_orderkey from lineitem)`, 1, 57, "derived table alias"},
	{`select l_orderkey from lineitem extra junk here`, 1, 39, "after statement"},
	{`select date from lineitem`, 1, 13, "expected date string"},
}

func TestParserValidCorpus(t *testing.T) {
	for _, src := range validCorpus {
		if _, err := sql.Compile(testCat, src); err != nil {
			t.Errorf("compile failed:\n%s\n%v", src, err)
		}
	}
	for name, src := range tpch.SQL {
		if _, err := sql.Compile(testCat, src); err != nil {
			t.Errorf("tpch %s failed to compile: %v", name, err)
		}
	}
}

func TestParserInvalidCorpus(t *testing.T) {
	for _, tc := range invalidCorpus {
		_, err := sql.Compile(testCat, tc.src)
		if err == nil {
			t.Errorf("no error for:\n%s", tc.src)
			continue
		}
		var pe *sql.ParseError
		if !errors.As(err, &pe) {
			t.Errorf("want *ParseError, got %T (%v) for:\n%s", err, err, tc.src)
			continue
		}
		if pe.Pos.Line != tc.line || pe.Pos.Col != tc.col {
			t.Errorf("want %d:%d, got %d:%d (%v) for:\n%s", tc.line, tc.col, pe.Pos.Line, pe.Pos.Col, err, tc.src)
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("error %q does not mention %q", err.Error(), tc.frag)
		}
	}
}

// bindCorpus pairs well-formed but unbindable inputs with a message fragment;
// these must surface as *BindError, still position-carrying.
var bindCorpus = []struct {
	src, frag string
}{
	{`select x from lineitem`, `unknown column "x"`},
	{`select l_orderkey from nosuch`, `unknown table "nosuch"`},
	{`select l_orderkey from lineitem where l_quantity < 'ten'`, "string literal where"},
	{`select l_orderkey from lineitem where l_shipmode = l_quantity`, "kind mismatch"},
	{`select l_orderkey from lineitem where 1 < 2`, "references no columns"},
	{`select l_orderkey from lineitem limit 5`, "LIMIT requires ORDER BY"},
	{`select l_orderkey from lineitem, orders`, "after statement"}, // comma joins unsupported
	{`select o_custkey from customer join orders on c_custkey < o_custkey`, "column equality"},
	{`select l_quantity from lineitem group by l_returnflag`, "must appear in GROUP BY"},
	{`select sum(sum(l_quantity)) as s from lineitem`, "nested aggregate"},
	{`select sum(l_quantity) as s from lineitem order by l_tax`, "not in the select list"},
	{`select l_orderkey from lineitem where ? = ?`, "references no columns"},
	{`select l_orderkey from lineitem where l_quantity < 1 + 2`, "two literals"},
	{`select c_custkey from customer as c join customer as c on c_custkey = c_custkey`, "duplicate table alias"},
	{`select o_orderkey from orders join orders as o2 on o_orderkey = o_orderkey`, "more than one FROM relation"},
}

func TestBindErrors(t *testing.T) {
	for _, tc := range bindCorpus {
		_, err := sql.Compile(testCat, tc.src)
		if err == nil {
			t.Errorf("no error for:\n%s", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("error %q does not mention %q for:\n%s", err.Error(), tc.frag, tc.src)
		}
		if _, ok := sql.ErrorPosition(err); !ok {
			t.Errorf("error carries no position: %v", err)
		}
	}
}

// FuzzParseSQL asserts the frontend never panics: any input either compiles
// or returns a typed, position-carrying error.
func FuzzParseSQL(f *testing.F) {
	for _, src := range validCorpus {
		f.Add(src)
	}
	for _, tc := range invalidCorpus {
		f.Add(tc.src)
	}
	for _, tc := range bindCorpus {
		f.Add(tc.src)
	}
	for _, src := range tpch.SQL {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := sql.Compile(testCat, src)
		if err != nil {
			if _, ok := sql.ErrorPosition(err); !ok {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			return
		}
		if stmt.Fingerprint.Hex() == "" {
			t.Fatal("compiled statement without fingerprint")
		}
	})
}

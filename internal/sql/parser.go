package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token slice. It carries the
// running placeholder count so ? parameters number positionally.
type parser struct {
	toks    []token
	pos     int
	nparams int
}

// parseStatement parses one SELECT statement (optionally ;-terminated) and
// returns it with the number of ? placeholders seen.
func parseStatement(src string) (*selectStmt, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, 0, err
	}
	if p.cur().kind == tokOp && p.cur().text == ";" {
		p.advance()
	}
	if p.cur().kind != tokEOF {
		return nil, 0, p.errf(p.cur(), "unexpected %s after statement", describe(p.cur()))
	}
	return sel, p.nparams, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return &ParseError{Pos: t.pos(), Msg: fmt.Sprintf(format, args...)}
}

func describe(t token) string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

func (p *parser) acceptKw(kw string) bool {
	if p.cur().isKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf(p.cur(), "expected %s, found %s", kw, describe(p.cur()))
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if p.cur().kind == tokOp && p.cur().text == op {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf(p.cur(), "expected %q, found %s", op, describe(p.cur()))
	}
	return nil
}

// expectIdent consumes a non-keyword identifier.
func (p *parser) expectIdent(what string) (token, error) {
	t := p.cur()
	if t.kind != tokIdent || keywords[strings.ToUpper(t.text)] {
		return t, p.errf(t, "expected %s, found %s", what, describe(t))
	}
	return p.advance(), nil
}

func (p *parser) parseSelect() (*selectStmt, error) {
	start := p.cur()
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &selectStmt{p: start.pos()}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableExpr()
	if err != nil {
		return nil, err
	}
	sel.From = from
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColName()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, *c)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColName()
			if err != nil {
				return nil, err
			}
			k := orderKey{p: c.p, Col: c.Name}
			if p.acceptKw("DESC") {
				k.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, k)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber || t.isFloat {
			return nil, p.errf(t, "expected integer after LIMIT, found %s", describe(t))
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, p.errf(t, "LIMIT must be a positive integer")
		}
		p.advance()
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	start := p.cur()
	e, err := p.parseExpr()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{p: start.pos(), E: e}
	if p.acceptKw("AS") {
		t, err := p.expectIdent("alias")
		if err != nil {
			return selectItem{}, err
		}
		item.Alias = t.text
	} else if t := p.cur(); t.kind == tokIdent && !keywords[strings.ToUpper(t.text)] {
		p.advance()
		item.Alias = t.text
	}
	return item, nil
}

// parseColName parses ident[.ident] as a column reference.
func (p *parser) parseColName() (*colRef, error) {
	t, err := p.expectIdent("column name")
	if err != nil {
		return nil, err
	}
	c := &colRef{p: t.pos(), Name: t.text}
	if p.acceptOp(".") {
		t2, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		c.Table, c.Name = t.text, t2.text
	}
	return c, nil
}

func (p *parser) parseTableExpr() (tableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		start := p.cur()
		outer := false
		switch {
		case p.cur().isKw("JOIN"):
			p.advance()
		case p.cur().isKw("LEFT"):
			p.advance()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			outer = true
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &joinExpr{p: start.pos(), L: left, R: right, Outer: outer, On: on}
	}
}

func (p *parser) parseTablePrimary() (tableRef, error) {
	start := p.cur()
	if p.acceptOp("(") {
		if p.cur().isKw("SELECT") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			p.acceptKw("AS")
			t, err := p.expectIdent("derived table alias")
			if err != nil {
				return nil, err
			}
			return &derivedTable{p: start.pos(), Sel: sel, Alias: t.text}, nil
		}
		inner, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	t, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	bt := &baseTable{p: t.pos(), Name: t.text, Alias: t.text}
	if p.acceptKw("AS") {
		a, err := p.expectIdent("table alias")
		if err != nil {
			return nil, err
		}
		bt.Alias = a.text
	} else if a := p.cur(); a.kind == tokIdent && !keywords[strings.ToUpper(a.text)] {
		p.advance()
		bt.Alias = a.text
	}
	return bt, nil
}

// Expression grammar, loosest to tightest:
// or > and > not > predicate (cmp/between/like/in/exists) > add > mul > unary.

func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().isKw("OR") {
		t := p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &logicExpr{p: t.pos(), Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().isKw("AND") {
		t := p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &logicExpr{p: t.pos(), Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.cur().isKw("NOT") {
		t := p.advance()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		if ex, ok := e.(*existsExpr); ok {
			ex.Negate = true
			return ex, nil
		}
		return &notExpr{p: t.pos(), E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (expr, error) {
	if p.cur().isKw("EXISTS") {
		t := p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &existsExpr{p: t.pos(), Sel: sel}, nil
	}
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind == tokOp {
		switch t.text {
		case "=", "<", "<=", ">", ">=", "<>", "!=":
			p.advance()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			return &cmpExpr{p: t.pos(), Op: op, L: l, R: r}, nil
		}
	}
	negate := false
	notTok := p.cur()
	if p.cur().isKw("NOT") && (p.peek().isKw("LIKE") || p.peek().isKw("BETWEEN") || p.peek().isKw("IN")) {
		p.advance()
		negate = true
	}
	switch {
	case p.cur().isKw("BETWEEN"):
		t := p.advance()
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		var e expr = &betweenExpr{p: t.pos(), E: l, Lo: lo, Hi: hi}
		if negate {
			e = &notExpr{p: notTok.pos(), E: e}
		}
		return e, nil
	case p.cur().isKw("LIKE"):
		t := p.advance()
		pt := p.cur()
		var pattern expr
		switch pt.kind {
		case tokString:
			p.advance()
			pattern = &strLit{p: pt.pos(), Val: pt.text}
		case tokPlaceholder:
			p.advance()
			pattern = &placeholder{p: pt.pos(), N: p.nparams}
			p.nparams++
		default:
			return nil, p.errf(pt, "LIKE pattern must be a string literal or ?, found %s", describe(pt))
		}
		return &likeExpr{p: t.pos(), E: l, Pattern: pattern, Negate: negate}, nil
	case p.cur().isKw("IN"):
		t := p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var members []string
		for {
			mt := p.cur()
			if mt.kind != tokString {
				return nil, p.errf(mt, "IN list supports string literals only, found %s", describe(mt))
			}
			p.advance()
			members = append(members, mt.text)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &inExpr{p: t.pos(), E: l, Members: members, Negate: negate}, nil
	}
	if negate {
		return nil, p.errf(notTok, "unexpected NOT")
	}
	return l, nil
}

func (p *parser) parseAdd() (expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for t := p.cur(); t.kind == tokOp && (t.text == "+" || t.text == "-"); t = p.cur() {
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &binExpr{p: t.pos(), Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for t := p.cur(); t.kind == tokOp && (t.text == "*" || t.text == "/"); t = p.cur() {
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binExpr{p: t.pos(), Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr, error) {
	if t := p.cur(); t.kind == tokOp && t.text == "-" {
		p.advance()
		n := p.cur()
		if n.kind != tokNumber {
			return nil, p.errf(t, "unary minus applies to numeric literals only")
		}
		p.advance()
		return &numLit{p: t.pos(), Text: n.text, IsFloat: n.isFloat, Neg: true}, nil
	}
	return p.parsePrimary()
}

var aggFns = map[string]bool{"sum": true, "count": true, "avg": true, "min": true, "max": true}

func (p *parser) parsePrimary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		return &numLit{p: t.pos(), Text: t.text, IsFloat: t.isFloat}, nil
	case tokString:
		p.advance()
		return &strLit{p: t.pos(), Val: t.text}, nil
	case tokPlaceholder:
		p.advance()
		ph := &placeholder{p: t.pos(), N: p.nparams}
		p.nparams++
		return ph, nil
	case tokOp:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "*" {
			return nil, p.errf(t, "'*' is only supported inside count(*)")
		}
	case tokIdent:
		if t.isKw("DATE") {
			p.advance()
			st := p.cur()
			if st.kind != tokString {
				return nil, p.errf(st, "expected date string after DATE, found %s", describe(st))
			}
			p.advance()
			return &dateLit{p: t.pos(), Val: st.text}, nil
		}
		if t.isKw("CASE") {
			return p.parseCase()
		}
		if keywords[strings.ToUpper(t.text)] {
			return nil, p.errf(t, "unexpected keyword %s", describe(t))
		}
		if p.peek().kind == tokOp && p.peek().text == "(" {
			fn := strings.ToLower(t.text)
			if !aggFns[fn] {
				return nil, p.errf(t, "unknown function %q", t.text)
			}
			p.advance()
			p.advance() // (
			if p.acceptOp("*") {
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				if fn != "count" {
					return nil, p.errf(t, "'*' argument requires count")
				}
				return &callExpr{p: t.pos(), Fn: fn, Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &callExpr{p: t.pos(), Fn: fn, Arg: arg}, nil
		}
		return p.parseColName()
	}
	return nil, p.errf(t, "unexpected %s", describe(t))
}

func (p *parser) parseCase() (expr, error) {
	t := p.advance() // CASE
	if err := p.expectKw("WHEN"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("THEN"); err != nil {
		return nil, err
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().isKw("WHEN") {
		return nil, p.errf(p.cur(), "multiple WHEN arms are not supported")
	}
	if err := p.expectKw("ELSE"); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return &caseExpr{p: t.pos(), Cond: cond, Then: then, Else: els}, nil
}

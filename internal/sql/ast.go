package sql

// The AST mirrors the supported grammar one-to-one; every node keeps the
// position of its first token so bind errors can point into the source.

type expr interface{ pos() Position }

type colRef struct {
	p           Position
	Table, Name string // Table is the optional qualifier
}

type numLit struct {
	p       Position
	Text    string
	IsFloat bool
	Neg     bool
}

type strLit struct {
	p   Position
	Val string
}

// dateLit is DATE 'YYYY-MM-DD'.
type dateLit struct {
	p   Position
	Val string
}

// placeholder is a positional ? parameter; N is its 0-based index in text
// order.
type placeholder struct {
	p Position
	N int
}

type binExpr struct {
	p    Position
	Op   string // + - * /
	L, R expr
}

type cmpExpr struct {
	p    Position
	Op   string // = <> < <= > >=
	L, R expr
}

type logicExpr struct {
	p    Position
	Op   string // AND OR
	L, R expr
}

type notExpr struct {
	p Position
	E expr
}

type betweenExpr struct {
	p         Position
	E, Lo, Hi expr
}

type likeExpr struct {
	p       Position
	E       expr
	Pattern expr // strLit or placeholder
	Negate  bool
}

type inExpr struct {
	p       Position
	E       expr
	Members []string
	Negate  bool
}

type existsExpr struct {
	p      Position
	Sel    *selectStmt
	Negate bool
}

type caseExpr struct {
	p                Position
	Cond, Then, Else expr
}

// callExpr is an aggregate function call (sum/count/avg/min/max).
type callExpr struct {
	p    Position
	Fn   string // lower-cased
	Star bool   // count(*)
	Arg  expr   // nil when Star
}

func (e *colRef) pos() Position      { return e.p }
func (e *numLit) pos() Position      { return e.p }
func (e *strLit) pos() Position      { return e.p }
func (e *dateLit) pos() Position     { return e.p }
func (e *placeholder) pos() Position { return e.p }
func (e *binExpr) pos() Position     { return e.p }
func (e *cmpExpr) pos() Position     { return e.p }
func (e *logicExpr) pos() Position   { return e.p }
func (e *notExpr) pos() Position     { return e.p }
func (e *betweenExpr) pos() Position { return e.p }
func (e *likeExpr) pos() Position    { return e.p }
func (e *inExpr) pos() Position      { return e.p }
func (e *existsExpr) pos() Position  { return e.p }
func (e *caseExpr) pos() Position    { return e.p }
func (e *callExpr) pos() Position    { return e.p }

type tableRef interface{ tpos() Position }

type baseTable struct {
	p           Position
	Name, Alias string
}

type derivedTable struct {
	p     Position
	Sel   *selectStmt
	Alias string
}

type joinExpr struct {
	p     Position
	L, R  tableRef
	Outer bool
	On    expr
}

func (t *baseTable) tpos() Position    { return t.p }
func (t *derivedTable) tpos() Position { return t.p }
func (t *joinExpr) tpos() Position     { return t.p }

type selectItem struct {
	p     Position
	E     expr
	Alias string
}

type orderKey struct {
	p    Position
	Col  string
	Desc bool
}

type selectStmt struct {
	p       Position
	Items   []selectItem
	From    tableRef
	Where   expr // nil when absent
	GroupBy []colRef
	OrderBy []orderKey
	Limit   int // 0 = none
}

package sql

import (
	"fmt"
	"strconv"

	"inkfuse/internal/algebra"
	"inkfuse/internal/ir"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// binder lowers a parsed statement into an algebra tree. Every literal it
// converts is tagged with a parameter ref (Args grows one entry per ref), so
// the resulting tree fingerprints parameter-invariantly and executions patch
// the concrete values in afterwards — the plancache contract.
type binder struct {
	cat        *storage.Catalog
	args       []Arg
	paramKinds []types.Kind // per ? placeholder, filled as they bind
	synthA     int          // pre-aggregate map columns  __a<N>
	synthS     int          // aggregate output columns   __s<N>
	synthM     int          // outer-join match markers   __matched<N>
}

func (b *binder) nextRef(a Arg) int {
	b.args = append(b.args, a)
	return len(b.args)
}

// leafRel is one FROM relation: a base-table scan or a bound derived table,
// accumulating the filter conjuncts pushed down to it.
type leafRel struct {
	alias   string
	node    algebra.Node
	sch     types.Schema
	filters []algebra.Expr
}

// fromNode is the join tree over the leaves. Join nodes get their ON clause
// split into equi-join keys, pushed-down side filters, and residual
// conjuncts during processJoins.
type fromNode struct {
	p    Position
	leaf *leafRel

	l, r         *fromNode
	outer        bool
	on           expr
	lKeys, rKeys []string       // equi-key column pairs, left-side / right-side
	residual     []algebra.Expr // cross-side non-key conjuncts (inner only)
	pending      []algebra.Expr // side-local conjuncts spanning several leaves
}

// exprCtx carries name resolution for expression conversion.
type exprCtx struct {
	sch  types.Schema            // flat schema resolving bare column names
	rels map[string]types.Schema // alias → schema for qualified names
	agg  map[*callExpr]string    // post-aggregate substitution (nil elsewhere)
}

func (b *binder) bindSelect(sel *selectStmt, top bool) (algebra.Node, []string, error) {
	if !top && (len(sel.OrderBy) > 0 || sel.Limit > 0) {
		return nil, nil, &BindError{Pos: sel.p, Msg: "ORDER BY / LIMIT are only supported on the outermost query"}
	}

	tree, leaves, err := b.buildFrom(sel.From)
	if err != nil {
		return nil, nil, err
	}
	rels := make(map[string]types.Schema, len(leaves))
	var flat types.Schema
	seenCol := make(map[string]bool)
	for _, lf := range leaves {
		if _, dup := rels[lf.alias]; dup {
			return nil, nil, &BindError{Pos: sel.p, Msg: fmt.Sprintf("duplicate table alias %q", lf.alias)}
		}
		rels[lf.alias] = lf.sch
		for _, c := range lf.sch {
			if seenCol[c.Name] {
				return nil, nil, &BindError{Pos: sel.p, Msg: fmt.Sprintf("column %q appears in more than one FROM relation", c.Name)}
			}
			seenCol[c.Name] = true
			flat = append(flat, c)
		}
	}
	ctx := &exprCtx{sch: flat, rels: rels}

	if err := b.processJoins(tree, ctx); err != nil {
		return nil, nil, err
	}

	// WHERE: split into conjuncts; each is pushed to the single leaf covering
	// its columns, kept as a residual filter above the join tree, or — for
	// [NOT] EXISTS — turned into a semi/anti join around it.
	var residual []algebra.Expr
	var existsConjs []*existsExpr
	if sel.Where != nil {
		for _, c := range splitAnd(sel.Where) {
			if ex, ok := c.(*existsExpr); ok {
				existsConjs = append(existsConjs, ex)
				continue
			}
			cols := refNames(c, nil)
			if len(cols) == 0 {
				return nil, nil, &BindError{Pos: c.pos(), Msg: "predicate references no columns"}
			}
			conv, err := b.convert(c, ctx)
			if err != nil {
				return nil, nil, err
			}
			if leaf := findLeaf(tree, cols); leaf != nil {
				leaf.filters = append(leaf.filters, conv)
			} else {
				residual = append(residual, conv)
			}
		}
	}

	refs := collectRefs(sel)
	counted := scanCounted(sel.Items)
	root, err := b.realize(tree, refs, counted)
	if err != nil {
		return nil, nil, err
	}
	if len(residual) > 0 {
		root = algebra.NewFilter(root, algebra.And(residual...))
	}
	for _, ex := range existsConjs {
		root, err = b.bindExists(ex, ctx, root)
		if err != nil {
			return nil, nil, err
		}
	}

	root, outNames, err := b.bindItems(sel, root, rels, counted)
	if err != nil {
		return nil, nil, err
	}

	if len(sel.OrderBy) > 0 {
		finalSch, err := root.Schema()
		if err != nil {
			return nil, nil, &BindError{Pos: sel.p, Msg: err.Error()}
		}
		keys := make([]string, len(sel.OrderBy))
		desc := make([]bool, len(sel.OrderBy))
		for i, k := range sel.OrderBy {
			if finalSch.IndexOf(k.Col) < 0 {
				return nil, nil, &BindError{Pos: k.p, Msg: fmt.Sprintf("ORDER BY column %q is not in the select list", k.Col)}
			}
			keys[i] = k.Col
			desc[i] = k.Desc
		}
		root = algebra.NewOrderBy(root, keys, desc, sel.Limit)
	} else {
		if sel.Limit > 0 {
			return nil, nil, &BindError{Pos: sel.p, Msg: "LIMIT requires ORDER BY"}
		}
		if _, err := root.Schema(); err != nil {
			return nil, nil, &BindError{Pos: sel.p, Msg: err.Error()}
		}
	}
	return root, outNames, nil
}

func (b *binder) buildFrom(tr tableRef) (*fromNode, []*leafRel, error) {
	switch x := tr.(type) {
	case *baseTable:
		t, err := b.cat.Get(x.Name)
		if err != nil {
			return nil, nil, &BindError{Pos: x.p, Msg: fmt.Sprintf("unknown table %q", x.Name)}
		}
		leaf := &leafRel{alias: x.Alias, node: algebra.NewScan(t), sch: t.Schema}
		return &fromNode{p: x.p, leaf: leaf}, []*leafRel{leaf}, nil
	case *derivedTable:
		node, _, err := b.bindSelect(x.Sel, false)
		if err != nil {
			return nil, nil, err
		}
		sch, err := node.Schema()
		if err != nil {
			return nil, nil, &BindError{Pos: x.p, Msg: err.Error()}
		}
		leaf := &leafRel{alias: x.Alias, node: node, sch: sch}
		return &fromNode{p: x.p, leaf: leaf}, []*leafRel{leaf}, nil
	case *joinExpr:
		l, ll, err := b.buildFrom(x.L)
		if err != nil {
			return nil, nil, err
		}
		r, rl, err := b.buildFrom(x.R)
		if err != nil {
			return nil, nil, err
		}
		return &fromNode{p: x.p, l: l, r: r, outer: x.Outer, on: x.On}, append(ll, rl...), nil
	}
	return nil, nil, &BindError{Pos: tr.tpos(), Msg: "unsupported FROM clause"}
}

// processJoins splits every join's ON clause: column equalities across the
// two sides become hash-join keys, side-local conjuncts are pushed into that
// side, and anything else stays as a residual filter above the (inner) join.
func (b *binder) processJoins(n *fromNode, ctx *exprCtx) error {
	if n.leaf != nil {
		return nil
	}
	if err := b.processJoins(n.l, ctx); err != nil {
		return err
	}
	if err := b.processJoins(n.r, ctx); err != nil {
		return err
	}
	lSch := concatLeafSchemas(n.l)
	rSch := concatLeafSchemas(n.r)
	for _, c := range splitAnd(n.on) {
		if eq, ok := c.(*cmpExpr); ok && eq.Op == "=" {
			lc, lok := eq.L.(*colRef)
			rc, rok := eq.R.(*colRef)
			if lok && rok {
				if err := b.resolveCol(lc, ctx); err != nil {
					return err
				}
				if err := b.resolveCol(rc, ctx); err != nil {
					return err
				}
				switch {
				case lSch.IndexOf(lc.Name) >= 0 && rSch.IndexOf(rc.Name) >= 0:
					n.lKeys = append(n.lKeys, lc.Name)
					n.rKeys = append(n.rKeys, rc.Name)
					continue
				case lSch.IndexOf(rc.Name) >= 0 && rSch.IndexOf(lc.Name) >= 0:
					n.lKeys = append(n.lKeys, rc.Name)
					n.rKeys = append(n.rKeys, lc.Name)
					continue
				}
				// Both columns on the same side: fall through to pushdown.
			}
		}
		cols := refNames(c, nil)
		conv, err := b.convert(c, ctx)
		if err != nil {
			return err
		}
		switch {
		case allInSchema(lSch, cols):
			if leaf := findLeaf(n.l, cols); leaf != nil {
				leaf.filters = append(leaf.filters, conv)
			} else {
				n.l.pending = append(n.l.pending, conv)
			}
		case allInSchema(rSch, cols):
			if leaf := findLeaf(n.r, cols); leaf != nil {
				leaf.filters = append(leaf.filters, conv)
			} else {
				n.r.pending = append(n.r.pending, conv)
			}
		case n.outer:
			return &BindError{Pos: c.pos(), Msg: "LEFT JOIN conditions must be key equalities or single-side predicates"}
		default:
			n.residual = append(n.residual, conv)
		}
	}
	if len(n.lKeys) == 0 {
		return &BindError{Pos: n.p, Msg: "join requires at least one column equality in ON"}
	}
	return nil
}

// realize turns the processed join tree into algebra nodes, bottom-up. For an
// inner join the left operand is the hash-table build side; for LEFT [OUTER]
// JOIN the left operand is the outer (probe) side and the right is built.
// Build columns are over-declared from the statement-wide referenced-name
// set; lowering prunes them to what operators above actually consume.
func (b *binder) realize(n *fromNode, refs map[string]bool, counted map[string]string) (algebra.Node, error) {
	if n.leaf != nil {
		node := n.leaf.node
		if len(n.leaf.filters) > 0 {
			node = algebra.NewFilter(node, algebra.And(n.leaf.filters...))
		}
		return node, nil
	}
	l, err := b.realize(n.l, refs, counted)
	if err != nil {
		return nil, err
	}
	r, err := b.realize(n.r, refs, counted)
	if err != nil {
		return nil, err
	}
	var build, probe algebra.Node
	var bKeys, pKeys []string
	mode := ir.InnerJoin
	if n.outer {
		mode = ir.LeftOuterJoin
		probe, build = l, r
		pKeys, bKeys = n.lKeys, n.rKeys
	} else {
		build, probe = l, r
		bKeys, pKeys = n.lKeys, n.rKeys
	}
	bSch, err := build.Schema()
	if err != nil {
		return nil, &BindError{Pos: n.p, Msg: err.Error()}
	}
	keySet := make(map[string]bool, len(bKeys))
	for _, k := range bKeys {
		keySet[k] = true
	}
	var buildCols []string
	for _, c := range bSch {
		if refs[c.Name] && !keySet[c.Name] {
			buildCols = append(buildCols, c.Name)
		}
	}
	j := &algebra.HashJoin{
		Build: build, Probe: probe,
		BuildKeys: bKeys, ProbeKeys: pKeys,
		BuildCols: buildCols, Mode: mode,
	}
	if mode == ir.LeftOuterJoin {
		// COUNT over a column supplied by the nullable build side counts
		// matched rows only: expose the join's match marker for it.
		for name, marker := range counted {
			if marker == "" && bSch.IndexOf(name) >= 0 {
				if j.MatchedAs == "" {
					j.MatchedAs = fmt.Sprintf("__matched%d", b.synthM)
					b.synthM++
				}
				counted[name] = j.MatchedAs
			}
		}
	}
	var out algebra.Node = j
	if len(n.residual) > 0 {
		out = algebra.NewFilter(out, algebra.And(n.residual...))
	}
	if len(n.pending) > 0 {
		out = algebra.NewFilter(out, algebra.And(n.pending...))
	}
	if _, err := out.Schema(); err != nil {
		return nil, &BindError{Pos: n.p, Msg: err.Error()}
	}
	return out, nil
}

// bindExists wraps the plan in a semi join (anti join for NOT EXISTS) built
// from the subquery. The subquery must scan a single table; its WHERE splits
// into local filters and the correlated equalities that become join keys.
func (b *binder) bindExists(ex *existsExpr, outer *exprCtx, root algebra.Node) (algebra.Node, error) {
	sub := ex.Sel
	bt, ok := sub.From.(*baseTable)
	if !ok {
		return nil, &BindError{Pos: ex.p, Msg: "EXISTS subquery must select from a single table"}
	}
	if len(sub.GroupBy) > 0 || len(sub.OrderBy) > 0 || sub.Limit > 0 {
		return nil, &BindError{Pos: ex.p, Msg: "EXISTS subquery cannot aggregate, order, or limit"}
	}
	t, err := b.cat.Get(bt.Name)
	if err != nil {
		return nil, &BindError{Pos: bt.p, Msg: fmt.Sprintf("unknown table %q", bt.Name)}
	}
	innerSch := t.Schema
	innerCtx := &exprCtx{sch: innerSch, rels: map[string]types.Schema{bt.Alias: innerSch}}

	var filters []algebra.Expr
	var bKeys, pKeys []string
	if sub.Where != nil {
		for _, c := range splitAnd(sub.Where) {
			if eq, ok := c.(*cmpExpr); ok && eq.Op == "=" {
				lc, lok := eq.L.(*colRef)
				rc, rok := eq.R.(*colRef)
				if lok && rok {
					innerL := innerSch.IndexOf(lc.Name) >= 0
					innerR := innerSch.IndexOf(rc.Name) >= 0
					switch {
					case innerL && !innerR && outer.sch.IndexOf(rc.Name) >= 0:
						bKeys = append(bKeys, lc.Name)
						pKeys = append(pKeys, rc.Name)
						continue
					case innerR && !innerL && outer.sch.IndexOf(lc.Name) >= 0:
						bKeys = append(bKeys, rc.Name)
						pKeys = append(pKeys, lc.Name)
						continue
					}
				}
			}
			cols := refNames(c, nil)
			if !allInSchema(innerSch, cols) {
				return nil, &BindError{Pos: c.pos(), Msg: "correlated predicates must be equalities against one outer column"}
			}
			conv, err := b.convert(c, innerCtx)
			if err != nil {
				return nil, err
			}
			filters = append(filters, conv)
		}
	}
	if len(bKeys) == 0 {
		return nil, &BindError{Pos: ex.p, Msg: "EXISTS subquery requires a correlated column equality"}
	}
	var buildNode algebra.Node = algebra.NewScan(t)
	if len(filters) > 0 {
		buildNode = algebra.NewFilter(buildNode, algebra.And(filters...))
	}
	mode := ir.SemiJoin
	if ex.Negate {
		mode = ir.AntiJoin
	}
	j := &algebra.HashJoin{Build: buildNode, Probe: root, BuildKeys: bKeys, ProbeKeys: pKeys, Mode: mode}
	if _, err := j.Schema(); err != nil {
		return nil, &BindError{Pos: ex.p, Msg: err.Error()}
	}
	return j, nil
}

// bindItems lowers the select list: plain projection when no aggregation is
// involved, otherwise the pre-aggregate Map / GroupBy / post-aggregate Map /
// Project stack.
func (b *binder) bindItems(sel *selectStmt, root algebra.Node, rels map[string]types.Schema, counted map[string]string) (algebra.Node, []string, error) {
	rootSch, err := root.Schema()
	if err != nil {
		return nil, nil, &BindError{Pos: sel.p, Msg: err.Error()}
	}
	ctx := &exprCtx{sch: rootSch, rels: rels}

	itemCalls := make([][]*callExpr, len(sel.Items))
	hasAgg := false
	for i, it := range sel.Items {
		calls, err := collectAggCalls(it.E, nil)
		if err != nil {
			return nil, nil, err
		}
		itemCalls[i] = calls
		hasAgg = hasAgg || len(calls) > 0
	}

	if !hasAgg && len(sel.GroupBy) == 0 {
		var maps []algebra.NamedExpr
		var outNames []string
		for _, it := range sel.Items {
			if cr, ok := it.E.(*colRef); ok && (it.Alias == "" || it.Alias == cr.Name) {
				if err := b.resolveCol(cr, ctx); err != nil {
					return nil, nil, err
				}
				outNames = append(outNames, cr.Name)
				continue
			}
			if it.Alias == "" {
				return nil, nil, &BindError{Pos: it.p, Msg: "select expression requires an AS alias"}
			}
			e, err := b.convert(it.E, ctx)
			if err != nil {
				return nil, nil, err
			}
			maps = append(maps, algebra.NamedExpr{As: it.Alias, E: e})
			outNames = append(outNames, it.Alias)
		}
		if len(maps) > 0 {
			root = algebra.NewMap(root, maps...)
		}
		return algebra.NewProject(root, outNames...), outNames, nil
	}

	groupKeys := make([]string, len(sel.GroupBy))
	keySet := make(map[string]bool, len(sel.GroupBy))
	for i := range sel.GroupBy {
		gk := sel.GroupBy[i]
		if err := b.resolveCol(&gk, ctx); err != nil {
			return nil, nil, err
		}
		groupKeys[i] = gk.Name
		keySet[gk.Name] = true
	}

	var preMaps []algebra.NamedExpr
	var specs []algebra.AggSpec
	aggName := make(map[*callExpr]string)
	var outNames []string
	type postItem struct {
		name string
		e    expr
	}
	var posts []postItem
	for i, it := range sel.Items {
		calls := itemCalls[i]
		if len(calls) == 0 {
			cr, ok := it.E.(*colRef)
			if !ok {
				return nil, nil, &BindError{Pos: it.p, Msg: "non-aggregate select item must be a group key column"}
			}
			if !keySet[cr.Name] {
				return nil, nil, &BindError{Pos: it.p, Msg: fmt.Sprintf("column %q must appear in GROUP BY", cr.Name)}
			}
			if it.Alias != "" && it.Alias != cr.Name {
				return nil, nil, &BindError{Pos: it.p, Msg: "renaming a group key is not supported"}
			}
			outNames = append(outNames, cr.Name)
			continue
		}
		if it.Alias == "" {
			return nil, nil, &BindError{Pos: it.p, Msg: "aggregate select item requires an AS alias"}
		}
		_, whole := it.E.(*callExpr)
		for _, c := range calls {
			an := it.Alias
			if !whole {
				an = fmt.Sprintf("__s%d", b.synthS)
				b.synthS++
			}
			aggName[c] = an
			spec, err := b.aggSpec(c, an, ctx, counted, &preMaps)
			if err != nil {
				return nil, nil, err
			}
			specs = append(specs, spec)
		}
		if !whole {
			posts = append(posts, postItem{name: it.Alias, e: it.E})
		}
		outNames = append(outNames, it.Alias)
	}

	if len(preMaps) > 0 {
		root = algebra.NewMap(root, preMaps...)
	}
	gb := algebra.NewGroupBy(root, groupKeys, specs...)
	root = gb
	if len(posts) > 0 {
		gbSch, err := gb.Schema()
		if err != nil {
			return nil, nil, &BindError{Pos: sel.p, Msg: err.Error()}
		}
		postCtx := &exprCtx{sch: gbSch, agg: aggName}
		var postMaps []algebra.NamedExpr
		for _, pi := range posts {
			e, err := b.convert(pi.e, postCtx)
			if err != nil {
				return nil, nil, err
			}
			postMaps = append(postMaps, algebra.NamedExpr{As: pi.name, E: e})
		}
		root = algebra.NewMap(root, postMaps...)
	}
	return algebra.NewProject(root, outNames...), outNames, nil
}

// aggSpec maps one aggregate call to an AggSpec, synthesizing a pre-aggregate
// map column when the argument is an expression.
func (b *binder) aggSpec(c *callExpr, outName string, ctx *exprCtx, counted map[string]string, preMaps *[]algebra.NamedExpr) (algebra.AggSpec, error) {
	if c.Star {
		return algebra.Count(outName), nil
	}
	col := ""
	if cr, ok := c.Arg.(*colRef); ok {
		if err := b.resolveCol(cr, ctx); err != nil {
			return algebra.AggSpec{}, err
		}
		col = cr.Name
	} else {
		if c.Fn == "count" {
			return algebra.AggSpec{}, &BindError{Pos: c.p, Msg: "count over expressions is not supported (use count(*) or count(column))"}
		}
		name := fmt.Sprintf("__a%d", b.synthA)
		b.synthA++
		e, err := b.convert(c.Arg, ctx)
		if err != nil {
			return algebra.AggSpec{}, err
		}
		*preMaps = append(*preMaps, algebra.NamedExpr{As: name, E: e})
		col = name
	}
	switch c.Fn {
	case "sum":
		return algebra.Sum(col, outName), nil
	case "avg":
		return algebra.Avg(col, outName), nil
	case "min":
		return algebra.MinOf(col, outName), nil
	case "max":
		return algebra.MaxOf(col, outName), nil
	case "count":
		if marker := counted[col]; marker != "" {
			return algebra.CountIf(marker, outName), nil
		}
		return algebra.Count(outName), nil
	}
	return algebra.AggSpec{}, &BindError{Pos: c.p, Msg: fmt.Sprintf("unknown aggregate %q", c.Fn)}
}

// --- expression conversion -------------------------------------------------

func (b *binder) convert(e expr, ctx *exprCtx) (algebra.Expr, error) {
	switch x := e.(type) {
	case *colRef:
		if err := b.resolveCol(x, ctx); err != nil {
			return nil, err
		}
		return algebra.Col(x.Name), nil
	case *numLit, *strLit, *dateLit, *placeholder:
		return nil, &BindError{Pos: e.pos(), Msg: "literal needs a typed context (compare or combine it with a column)"}
	case *binExpr:
		l, r, err := b.pair(x.L, x.R, ctx, "arithmetic", x.p, true)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+":
			return algebra.Add(l, r), nil
		case "-":
			return algebra.Sub(l, r), nil
		case "*":
			return algebra.Mul(l, r), nil
		default:
			return algebra.Div(l, r), nil
		}
	case *cmpExpr:
		l, r, err := b.pair(x.L, x.R, ctx, "comparison", x.p, true)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "=":
			return algebra.Eq(l, r), nil
		case "<>":
			return algebra.Ne(l, r), nil
		case "<":
			return algebra.Lt(l, r), nil
		case "<=":
			return algebra.Le(l, r), nil
		case ">":
			return algebra.Gt(l, r), nil
		default:
			return algebra.Ge(l, r), nil
		}
	case *logicExpr:
		l, err := b.convert(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := b.convert(x.R, ctx)
		if err != nil {
			return nil, err
		}
		if x.Op == "AND" {
			return algebra.And(l, r), nil
		}
		return algebra.Or(l, r), nil
	case *notExpr:
		inner, err := b.convert(x.E, ctx)
		if err != nil {
			return nil, err
		}
		return algebra.Not(inner), nil
	case *betweenExpr:
		ee, err := b.convert(x.E, ctx)
		if err != nil {
			return nil, err
		}
		k, err := b.kindOf(ee, ctx, x.p)
		if err != nil {
			return nil, err
		}
		lo, err := b.operand(x.Lo, ctx, k)
		if err != nil {
			return nil, err
		}
		hi, err := b.operand(x.Hi, ctx, k)
		if err != nil {
			return nil, err
		}
		return algebra.Between(ee, lo, hi), nil
	case *likeExpr:
		ee, err := b.convert(x.E, ctx)
		if err != nil {
			return nil, err
		}
		out := algebra.LikeE{E: ee, Negate: x.Negate}
		switch pt := x.Pattern.(type) {
		case *strLit:
			out.Pattern = pt.Val
			out.Ref = b.nextRef(Arg{Kind: types.String, IsLike: true, Pattern: pt.Val, FromParam: -1})
		case *placeholder:
			if err := b.placeholderKind(pt, types.String); err != nil {
				return nil, err
			}
			out.Ref = b.nextRef(Arg{Kind: types.String, IsLike: true, FromParam: pt.N})
		default:
			return nil, &BindError{Pos: x.p, Msg: "LIKE pattern must be a string literal or ?"}
		}
		return out, nil
	case *inExpr:
		ee, err := b.convert(x.E, ctx)
		if err != nil {
			return nil, err
		}
		ref := b.nextRef(Arg{Kind: types.String, IsList: true, List: x.Members, FromParam: -1})
		var out algebra.Expr = algebra.InListE{E: ee, Members: x.Members, Ref: ref}
		if x.Negate {
			out = algebra.Not(out)
		}
		return out, nil
	case *caseExpr:
		cond, err := b.convert(x.Cond, ctx)
		if err != nil {
			return nil, err
		}
		then, els, err := b.pair(x.Then, x.Else, ctx, "CASE arms", x.p, false)
		if err != nil {
			return nil, err
		}
		return algebra.Case(cond, then, els), nil
	case *existsExpr:
		return nil, &BindError{Pos: x.p, Msg: "EXISTS is only supported as a top-level WHERE conjunct"}
	case *callExpr:
		if ctx.agg != nil {
			if name, ok := ctx.agg[x]; ok {
				return algebra.Col(name), nil
			}
		}
		return nil, &BindError{Pos: x.p, Msg: "aggregate functions are only allowed in the select list"}
	}
	return nil, &BindError{Pos: e.pos(), Msg: "unsupported expression"}
}

// pair converts the operands of a binary construct, coercing an untyped
// literal side to the kind of the typed side. checkKinds additionally
// requires both kinds to agree (comparisons and arithmetic).
func (b *binder) pair(l, r expr, ctx *exprCtx, what string, p Position, checkKinds bool) (algebra.Expr, algebra.Expr, error) {
	lLit, rLit := isLiteral(l), isLiteral(r)
	if lLit && rLit {
		return nil, nil, &BindError{Pos: p, Msg: what + " over two literals is not supported"}
	}
	var le, re algebra.Expr
	var err error
	switch {
	case rLit:
		if le, err = b.convert(l, ctx); err != nil {
			return nil, nil, err
		}
		k, err := b.kindOf(le, ctx, p)
		if err != nil {
			return nil, nil, err
		}
		if re, err = b.literal(r, k); err != nil {
			return nil, nil, err
		}
	case lLit:
		if re, err = b.convert(r, ctx); err != nil {
			return nil, nil, err
		}
		k, err := b.kindOf(re, ctx, p)
		if err != nil {
			return nil, nil, err
		}
		if le, err = b.literal(l, k); err != nil {
			return nil, nil, err
		}
	default:
		if le, err = b.convert(l, ctx); err != nil {
			return nil, nil, err
		}
		if re, err = b.convert(r, ctx); err != nil {
			return nil, nil, err
		}
		if checkKinds {
			lk, err := b.kindOf(le, ctx, p)
			if err != nil {
				return nil, nil, err
			}
			rk, err := b.kindOf(re, ctx, p)
			if err != nil {
				return nil, nil, err
			}
			if lk != rk {
				return nil, nil, &BindError{Pos: p, Msg: fmt.Sprintf("%s kind mismatch: %v vs %v", what, lk, rk)}
			}
		}
	}
	return le, re, nil
}

// operand converts a sub-expression that may be an untyped literal, coercing
// it to want.
func (b *binder) operand(e expr, ctx *exprCtx, want types.Kind) (algebra.Expr, error) {
	if isLiteral(e) {
		return b.literal(e, want)
	}
	return b.convert(e, ctx)
}

func (b *binder) kindOf(e algebra.Expr, ctx *exprCtx, p Position) (types.Kind, error) {
	k, err := e.Kind(ctx.sch)
	if err != nil {
		return types.Invalid, &BindError{Pos: p, Msg: err.Error()}
	}
	return k, nil
}

// literal materializes a literal AST node as a ref-tagged constant of the
// wanted kind and records its Arg.
func (b *binder) literal(e expr, want types.Kind) (algebra.Expr, error) {
	if ph, ok := e.(*placeholder); ok {
		if err := b.placeholderKind(ph, want); err != nil {
			return nil, err
		}
		c := algebra.Const{K: want}
		c.Ref = b.nextRef(Arg{Kind: want, FromParam: ph.N})
		return c, nil
	}
	c, err := constOf(e, want)
	if err != nil {
		return nil, err
	}
	c.Ref = b.nextRef(Arg{Kind: want, Const: c, FromParam: -1})
	return c, nil
}

func (b *binder) placeholderKind(ph *placeholder, want types.Kind) error {
	if ph.N >= len(b.paramKinds) {
		return &BindError{Pos: ph.p, Msg: "placeholder out of range"}
	}
	if k := b.paramKinds[ph.N]; k != types.Invalid && k != want {
		return &BindError{Pos: ph.p, Msg: fmt.Sprintf("parameter %d bound as both %v and %v", ph.N+1, k, want)}
	}
	b.paramKinds[ph.N] = want
	return nil
}

// constOf evaluates a literal node to a constant of the wanted kind (no ref).
func constOf(e expr, want types.Kind) (algebra.Const, error) {
	fail := func(p Position, format string, args ...any) (algebra.Const, error) {
		return algebra.Const{}, &BindError{Pos: p, Msg: fmt.Sprintf(format, args...)}
	}
	switch x := e.(type) {
	case *numLit:
		text := x.Text
		if x.Neg {
			text = "-" + text
		}
		switch want {
		case types.Int32:
			if x.IsFloat {
				return fail(x.p, "non-integer literal %q for an int32 column", text)
			}
			v, err := strconv.ParseInt(text, 10, 32)
			if err != nil {
				return fail(x.p, "bad int32 literal %q", text)
			}
			return algebra.I32(int32(v)), nil
		case types.Int64:
			if x.IsFloat {
				return fail(x.p, "non-integer literal %q for an int64 column", text)
			}
			v, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return fail(x.p, "bad int64 literal %q", text)
			}
			return algebra.I64(v), nil
		case types.Float64:
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return fail(x.p, "bad float literal %q", text)
			}
			return algebra.F64(v), nil
		default:
			return fail(x.p, "numeric literal %q where %v is required", text, want)
		}
	case *strLit:
		switch want {
		case types.String:
			return algebra.Str(x.Val), nil
		case types.Date:
			d, err := types.ParseDate(x.Val)
			if err != nil {
				return fail(x.p, "bad date literal %q (want YYYY-MM-DD)", x.Val)
			}
			return algebra.Const{K: types.Date, I32: d}, nil
		default:
			return fail(x.p, "string literal where %v is required", want)
		}
	case *dateLit:
		if want != types.Date {
			return fail(x.p, "date literal where %v is required", want)
		}
		d, err := types.ParseDate(x.Val)
		if err != nil {
			return fail(x.p, "bad date literal %q (want YYYY-MM-DD)", x.Val)
		}
		return algebra.Const{K: types.Date, I32: d}, nil
	}
	return algebra.Const{}, &BindError{Pos: e.pos(), Msg: "expected a literal"}
}

func (b *binder) resolveCol(c *colRef, ctx *exprCtx) error {
	if c.Table != "" {
		if ctx.rels == nil {
			return &BindError{Pos: c.p, Msg: fmt.Sprintf("qualified column %s.%s is not allowed here", c.Table, c.Name)}
		}
		sch, ok := ctx.rels[c.Table]
		if !ok {
			return &BindError{Pos: c.p, Msg: fmt.Sprintf("unknown table alias %q", c.Table)}
		}
		if sch.IndexOf(c.Name) < 0 {
			return &BindError{Pos: c.p, Msg: fmt.Sprintf("table %q has no column %q", c.Table, c.Name)}
		}
		return nil
	}
	if ctx.sch.IndexOf(c.Name) < 0 {
		return &BindError{Pos: c.p, Msg: fmt.Sprintf("unknown column %q", c.Name)}
	}
	return nil
}

// --- AST helpers -----------------------------------------------------------

func isLiteral(e expr) bool {
	switch e.(type) {
	case *numLit, *strLit, *dateLit, *placeholder:
		return true
	}
	return false
}

func splitAnd(e expr) []expr {
	if l, ok := e.(*logicExpr); ok && l.Op == "AND" {
		return append(splitAnd(l.L), splitAnd(l.R)...)
	}
	return []expr{e}
}

// refNames collects the column names referenced by e, not descending into
// subqueries.
func refNames(e expr, dst []string) []string {
	switch x := e.(type) {
	case *colRef:
		return append(dst, x.Name)
	case *binExpr:
		return refNames(x.R, refNames(x.L, dst))
	case *cmpExpr:
		return refNames(x.R, refNames(x.L, dst))
	case *logicExpr:
		return refNames(x.R, refNames(x.L, dst))
	case *notExpr:
		return refNames(x.E, dst)
	case *betweenExpr:
		return refNames(x.Hi, refNames(x.Lo, refNames(x.E, dst)))
	case *likeExpr:
		return refNames(x.E, dst)
	case *inExpr:
		return refNames(x.E, dst)
	case *caseExpr:
		return refNames(x.Else, refNames(x.Then, refNames(x.Cond, dst)))
	case *callExpr:
		if x.Arg != nil {
			return refNames(x.Arg, dst)
		}
	}
	return dst
}

// collectRefs gathers every column name the statement references anywhere —
// select list, WHERE (including EXISTS subquery predicates, whose correlated
// names must survive as join keys), ON clauses, GROUP BY, ORDER BY. Derived
// tables are bound separately and excluded. The set over-approximates what
// each join must carry; lowering prunes the rest.
func collectRefs(sel *selectStmt) map[string]bool {
	set := make(map[string]bool)
	var walk func(e expr)
	walk = func(e expr) {
		if e == nil {
			return
		}
		if ex, ok := e.(*existsExpr); ok {
			if ex.Sel.Where != nil {
				walk(ex.Sel.Where)
			}
			return
		}
		for _, n := range refNames(e, nil) {
			set[n] = true
		}
		// refNames does not descend into EXISTS; split conjunctions to reach
		// nested ones.
		switch x := e.(type) {
		case *logicExpr:
			walk(x.L)
			walk(x.R)
		case *notExpr:
			walk(x.E)
		}
	}
	var walkT func(t tableRef)
	walkT = func(t tableRef) {
		if j, ok := t.(*joinExpr); ok {
			walkT(j.L)
			walkT(j.R)
			walk(j.On)
		}
	}
	for _, it := range sel.Items {
		walk(it.E)
	}
	walk(sel.Where)
	walkT(sel.From)
	for _, g := range sel.GroupBy {
		set[g.Name] = true
	}
	for _, o := range sel.OrderBy {
		set[o.Col] = true
	}
	return set
}

// scanCounted finds count(column) calls in the select list; realize fills in
// the outer-join match marker for columns served by a nullable build side.
func scanCounted(items []selectItem) map[string]string {
	m := make(map[string]string)
	var walk func(e expr)
	walk = func(e expr) {
		switch x := e.(type) {
		case *callExpr:
			if x.Fn == "count" && !x.Star {
				if cr, ok := x.Arg.(*colRef); ok {
					m[cr.Name] = ""
				}
			}
		case *binExpr:
			walk(x.L)
			walk(x.R)
		case *caseExpr:
			walk(x.Cond)
			walk(x.Then)
			walk(x.Else)
		}
	}
	for _, it := range items {
		walk(it.E)
	}
	return m
}

// collectAggCalls lists the aggregate calls in e, rejecting nesting.
func collectAggCalls(e expr, dst []*callExpr) ([]*callExpr, error) {
	switch x := e.(type) {
	case *callExpr:
		if x.Arg != nil {
			inner, err := collectAggCalls(x.Arg, nil)
			if err != nil {
				return nil, err
			}
			if len(inner) > 0 {
				return nil, &BindError{Pos: x.p, Msg: "nested aggregate functions are not supported"}
			}
		}
		return append(dst, x), nil
	case *binExpr:
		dst, err := collectAggCalls(x.L, dst)
		if err != nil {
			return nil, err
		}
		return collectAggCalls(x.R, dst)
	case *cmpExpr:
		dst, err := collectAggCalls(x.L, dst)
		if err != nil {
			return nil, err
		}
		return collectAggCalls(x.R, dst)
	case *logicExpr:
		dst, err := collectAggCalls(x.L, dst)
		if err != nil {
			return nil, err
		}
		return collectAggCalls(x.R, dst)
	case *notExpr:
		return collectAggCalls(x.E, dst)
	case *betweenExpr:
		dst, err := collectAggCalls(x.E, dst)
		if err != nil {
			return nil, err
		}
		dst, err = collectAggCalls(x.Lo, dst)
		if err != nil {
			return nil, err
		}
		return collectAggCalls(x.Hi, dst)
	case *likeExpr:
		return collectAggCalls(x.E, dst)
	case *inExpr:
		return collectAggCalls(x.E, dst)
	case *caseExpr:
		dst, err := collectAggCalls(x.Cond, dst)
		if err != nil {
			return nil, err
		}
		dst, err = collectAggCalls(x.Then, dst)
		if err != nil {
			return nil, err
		}
		return collectAggCalls(x.Else, dst)
	}
	return dst, nil
}

func findLeaf(t *fromNode, cols []string) *leafRel {
	var leaves []*leafRel
	var collect func(n *fromNode)
	collect = func(n *fromNode) {
		if n.leaf != nil {
			leaves = append(leaves, n.leaf)
			return
		}
		collect(n.l)
		collect(n.r)
	}
	collect(t)
	for _, lf := range leaves {
		if allInSchema(lf.sch, cols) {
			return lf
		}
	}
	return nil
}

func concatLeafSchemas(t *fromNode) types.Schema {
	if t.leaf != nil {
		return t.leaf.sch
	}
	return append(append(types.Schema{}, concatLeafSchemas(t.l)...), concatLeafSchemas(t.r)...)
}

func allInSchema(s types.Schema, cols []string) bool {
	for _, c := range cols {
		if s.IndexOf(c) < 0 {
			return false
		}
	}
	return true
}

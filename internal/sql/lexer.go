package sql

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp
	tokPlaceholder
)

type token struct {
	kind      tokKind
	text      string // idents keep original case; ops hold their symbol
	isFloat   bool   // numbers: contains a decimal point
	line, col int
}

func (t token) pos() Position { return Position{Line: t.line, Col: t.col} }

// keywords are reserved words the parser recognizes; matching is
// case-insensitive. An identifier position never accepts a keyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "LIKE": true, "BETWEEN": true, "EXISTS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"JOIN": true, "LEFT": true, "OUTER": true, "ON": true, "DESC": true,
	"ASC": true, "DATE": true,
}

func (t token) isKw(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// lex tokenizes src, tracking 1-based line/column positions. Strings use
// single quotes with ” as the escape; -- starts a comment to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	adv := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				adv(1)
			}
		case isIdentStart(c):
			l, cl := line, col
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], line: l, col: cl})
			adv(j - i)
		case c >= '0' && c <= '9':
			l, cl := line, col
			j := i
			isFloat := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				if src[j] == '.' {
					if isFloat {
						return nil, &ParseError{Pos: Position{l, cl}, Msg: "malformed number"}
					}
					isFloat = true
				}
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], isFloat: isFloat, line: l, col: cl})
			adv(j - i)
		case c == '\'':
			l, cl := line, col
			var b strings.Builder
			adv(1)
			for {
				if i >= len(src) {
					return nil, &ParseError{Pos: Position{l, cl}, Msg: "unterminated string literal"}
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						b.WriteByte('\'')
						adv(2)
						continue
					}
					adv(1)
					break
				}
				b.WriteByte(src[i])
				adv(1)
			}
			toks = append(toks, token{kind: tokString, text: b.String(), line: l, col: cl})
		case c == '?':
			toks = append(toks, token{kind: tokPlaceholder, text: "?", line: line, col: col})
			adv(1)
		default:
			l, cl := line, col
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{kind: tokOp, text: two, line: l, col: cl})
				adv(2)
				continue
			}
			switch c {
			case '(', ')', ',', '.', '+', '-', '*', '/', '=', '<', '>', ';':
				toks = append(toks, token{kind: tokOp, text: string(c), line: l, col: cl})
				adv(1)
			default:
				return nil, &ParseError{Pos: Position{l, cl}, Msg: fmt.Sprintf("unexpected character %q", string(c))}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, text: "", line: line, col: col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

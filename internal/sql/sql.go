// Package sql is the text frontend: a hand-written lexer and
// recursive-descent parser for the SELECT subset the engine executes, and a
// binder that lowers the AST onto internal/algebra trees.
//
// Every literal in a statement — not just ? placeholders — binds as a
// parameter ref, so the algebra tree fingerprints by shape alone
// (algebra.Fingerprint masks ref-tagged values). Two queries differing only
// in literals share a fingerprint, and therefore share a cached lowered plan
// and its compiled artifacts; BindArgs patches the concrete values into the
// plan's runtime states before each execution.
package sql

import (
	"fmt"
	"math"

	"inkfuse/internal/algebra"
	"inkfuse/internal/core"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// Arg is one parameter slot of a compiled statement, in ref order (ref =
// index+1). Literal args carry their value; placeholder args (FromParam >= 0)
// take it from the execution's parameter list.
type Arg struct {
	Kind      types.Kind
	IsLike    bool
	IsList    bool
	Const     algebra.Const // scalar literals (FromParam < 0, !IsLike, !IsList)
	Pattern   string        // LIKE literal pattern
	List      []string      // IN (...) members
	FromParam int           // 0-based ? index, or -1 for an inline literal
}

// Statement is a compiled SQL text: the bound algebra tree plus everything
// needed to key the plan cache and patch parameters.
type Statement struct {
	SQL         string
	Name        string // stable plan name derived from the fingerprint
	Root        algebra.Node
	Fingerprint core.Fingerprint
	Columns     []string     // output column names in select-list order
	Args        []Arg        // per ref, ref = index+1
	ParamKinds  []types.Kind // per ? placeholder, in text order
}

// NumParams reports how many ? placeholders the statement takes.
func (s *Statement) NumParams() int { return len(s.ParamKinds) }

// Compile parses and binds text against the catalog. Errors are *ParseError
// or *BindError, both carrying a source Position.
func Compile(cat *storage.Catalog, text string) (*Statement, error) {
	sel, nparams, err := parseStatement(text)
	if err != nil {
		return nil, err
	}
	b := &binder{cat: cat, paramKinds: make([]types.Kind, nparams)}
	root, cols, err := b.bindSelect(sel, true)
	if err != nil {
		return nil, err
	}
	for i, k := range b.paramKinds {
		if k == types.Invalid {
			return nil, &BindError{Pos: sel.p, Msg: fmt.Sprintf("parameter %d is never used", i+1)}
		}
	}
	fp, err := algebra.Fingerprint(root)
	if err != nil {
		return nil, &BindError{Pos: sel.p, Msg: err.Error()}
	}
	return &Statement{
		SQL:         text,
		Name:        "sql-" + fp.Hex()[:8],
		Root:        root,
		Fingerprint: fp,
		Columns:     cols,
		Args:        b.args,
		ParamKinds:  b.paramKinds,
	}, nil
}

// BindArgs patches the statement's literal and placeholder values into a
// lowered plan's parameter states. vals must have NumParams entries; each is
// coerced from its JSON-decoded representation to the kind the binder
// assigned. Refs the lowering pruned (the expression holding them was
// unreferenced) are skipped.
func (s *Statement) BindArgs(p *algebra.Params, vals []any) error {
	if len(vals) != len(s.ParamKinds) {
		return fmt.Errorf("sql: statement takes %d parameters, got %d", len(s.ParamKinds), len(vals))
	}
	for i, a := range s.Args {
		ref := i + 1
		if !p.HasRef(ref) {
			continue
		}
		switch {
		case a.IsList:
			if err := p.SetInList(ref, a.List); err != nil {
				return err
			}
		case a.IsLike:
			pattern := a.Pattern
			if a.FromParam >= 0 {
				c, err := CoerceValue(types.String, vals[a.FromParam])
				if err != nil {
					return fmt.Errorf("sql: parameter %d: %w", a.FromParam+1, err)
				}
				pattern = c.Str
			}
			if err := p.SetLike(ref, pattern); err != nil {
				return err
			}
		default:
			c := a.Const
			if a.FromParam >= 0 {
				var err error
				c, err = CoerceValue(a.Kind, vals[a.FromParam])
				if err != nil {
					return fmt.Errorf("sql: parameter %d: %w", a.FromParam+1, err)
				}
			}
			if err := p.SetConst(ref, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// CoerceValue converts a JSON-decoded value (float64, string, bool) to a
// constant of kind k. Dates accept YYYY-MM-DD strings.
func CoerceValue(k types.Kind, v any) (algebra.Const, error) {
	switch k {
	case types.Bool:
		b, ok := v.(bool)
		if !ok {
			return algebra.Const{}, fmt.Errorf("want bool, got %T", v)
		}
		return algebra.Const{K: types.Bool, B: b}, nil
	case types.Int32:
		f, ok := v.(float64)
		if !ok || f != math.Trunc(f) || f < math.MinInt32 || f > math.MaxInt32 {
			return algebra.Const{}, fmt.Errorf("want int32, got %v (%T)", v, v)
		}
		return algebra.I32(int32(f)), nil
	case types.Int64:
		f, ok := v.(float64)
		if !ok || f != math.Trunc(f) {
			return algebra.Const{}, fmt.Errorf("want int64, got %v (%T)", v, v)
		}
		return algebra.I64(int64(f)), nil
	case types.Float64:
		f, ok := v.(float64)
		if !ok {
			return algebra.Const{}, fmt.Errorf("want float64, got %T", v)
		}
		return algebra.F64(f), nil
	case types.String:
		s, ok := v.(string)
		if !ok {
			return algebra.Const{}, fmt.Errorf("want string, got %T", v)
		}
		return algebra.Str(s), nil
	case types.Date:
		s, ok := v.(string)
		if !ok {
			return algebra.Const{}, fmt.Errorf("want date string, got %T", v)
		}
		d, err := types.ParseDate(s)
		if err != nil {
			return algebra.Const{}, fmt.Errorf("bad date %q (want YYYY-MM-DD)", s)
		}
		return algebra.Const{K: types.Date, I32: d}, nil
	}
	return algebra.Const{}, fmt.Errorf("unsupported parameter kind %v", k)
}

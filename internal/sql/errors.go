package sql

import "fmt"

// Position locates an error in the source text (1-based line and column).
type Position struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// ParseError is a lexical or syntactic error with a source position.
type ParseError struct {
	Pos Position
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: parse error at %s: %s", e.Pos, e.Msg)
}

// BindError is a semantic error (unknown table or column, type mismatch,
// unsupported shape) with the source position of the offending construct.
type BindError struct {
	Pos Position
	Msg string
}

func (e *BindError) Error() string {
	return fmt.Sprintf("sql: bind error at %s: %s", e.Pos, e.Msg)
}

// ErrorPosition extracts the source position from a ParseError or BindError.
func ErrorPosition(err error) (Position, bool) {
	switch e := err.(type) {
	case *ParseError:
		return e.Pos, true
	case *BindError:
		return e.Pos, true
	}
	return Position{}, false
}

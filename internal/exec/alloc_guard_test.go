package exec

// Alloc guard for the observability layer: with the flight recorder always
// on, the per-morsel execution path must not allocate. Flight events are
// recorded at query and pipeline granularity (morsel batches, not morsels),
// and the one morsel-granular event (first JIT routing) uses a pre-interned
// label behind a per-worker latch — so growing the data (more morsels, same
// plan) must not grow the allocation count.

import (
	"testing"

	"inkfuse/internal/algebra"
)

// queryAllocs measures the average whole-query allocation count at one data
// size: lowering, execution, result — everything but table generation.
func queryAllocs(t *testing.T, rows int) float64 {
	t.Helper()
	tbl := benchTable(rows)
	node := benchNode(tbl)
	lat := LatencyNone
	opts := Options{Backend: BackendVectorized, Workers: 1, Latency: &lat}
	return testing.AllocsPerRun(5, func() {
		plan, err := algebra.Lower(node, "allocguard")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(plan, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows() != 1 {
			t.Fatalf("rows = %d", res.Rows())
		}
	})
}

func TestMorselLoopZeroAllocsPerChunkWithRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement over 400k rows")
	}
	small, large := 100_000, 400_000
	a := queryAllocs(t, small)
	b := queryAllocs(t, large)
	// The per-query component (plan, scratch, goroutines, flight events) is
	// identical at both sizes; only the chunk count differs. ~1k-row chunks
	// mean ~293 extra chunks at 400k rows, so a per-chunk cost of even one
	// allocation would show up as hundreds of extra allocations.
	extraChunks := float64(large-small) / 1024
	perChunk := (b - a) / extraChunks
	if perChunk > 0.5 {
		t.Fatalf("per-chunk allocations with recorder on = %.3f (total %g -> %g): morsel loop no longer alloc-free", perChunk, a, b)
	}
}

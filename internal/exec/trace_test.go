package exec

// Observability tests: the execution trace must agree exactly with the
// engine's stats counters on every backend (they are recorded independently
// — the trace by per-worker counter deltas at morsel granularity, the stats
// by the runners), and a canceled query must still yield a coherent partial
// trace.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"inkfuse/internal/algebra"
	"inkfuse/internal/faultinject"
)

func TestTraceMatchesStatsAllBackends(t *testing.T) {
	tbl := makeTable()
	for _, backend := range allBackends() {
		t.Run(backend.String(), func(t *testing.T) {
			plan := lowerOrDie(t, groupByNode(tbl), "traceq")
			lat := LatencyNone
			res, err := Execute(plan, Options{
				Backend: backend, Workers: 4, MorselSize: 256, Latency: &lat, Trace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			tr := res.Trace
			if tr == nil {
				t.Fatal("Options.Trace set but Result.Trace is nil")
			}
			if tr.Backend != backend.String() || tr.Workers != 4 {
				t.Fatalf("trace header wrong: %+v", tr)
			}
			if len(tr.Pipelines) != len(plan.Pipelines) {
				t.Fatalf("trace has %d pipelines, plan has %d", len(tr.Pipelines), len(plan.Pipelines))
			}
			// Every scheduled morsel ran, and the trace agrees with itself.
			for _, pt := range tr.Pipelines {
				if pt.MorselsRun() != pt.Morsels {
					t.Fatalf("%s: %d/%d morsels run on a successful query", pt.Name, pt.MorselsRun(), pt.Morsels)
				}
			}
			// The trace's independent accounting equals the stats counters.
			if got, want := tr.Tuples(), res.Stats.Tuples; got != want {
				t.Fatalf("trace tuples %d != stats tuples %d", got, want)
			}
			if got, want := int64(tr.RoutedJIT()), res.Stats.MorselsCompiled; got != want {
				t.Fatalf("trace jit %d != stats MorselsCompiled %d", got, want)
			}
			if got, want := int64(tr.RoutedVectorized()), res.Stats.MorselsVectorized; got != want {
				t.Fatalf("trace vectorized %d != stats MorselsVectorized %d", got, want)
			}
			if got, want := int64(tr.RoutedJIT()+tr.RoutedVectorized()), res.Stats.MorselsCompiled+res.Stats.MorselsVectorized; got != want {
				t.Fatalf("trace routing sum %d != stats routing sum %d", got, want)
			}
			// Workers recorded busy time for the work they did.
			for _, pt := range tr.Pipelines {
				if pt.Morsels > 0 && pt.Busy() <= 0 {
					t.Fatalf("%s: ran %d morsels with zero busy time", pt.Name, pt.Morsels)
				}
				if pt.Wall <= 0 {
					t.Fatalf("%s: no pipeline wall recorded", pt.Name)
				}
			}
		})
	}
}

func TestTraceHybridRoutingSeries(t *testing.T) {
	tbl := makeTable()
	plan := lowerOrDie(t, groupByNode(tbl), "hybridtrace")
	lat := LatencyNone
	res, err := Execute(plan, Options{
		Backend: BackendHybrid, Workers: 2, MorselSize: 128, Latency: &lat, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With zero compile latency the artifact lands almost immediately: the
	// trace must show JIT morsels, EWMA samples, and the artifact timestamp.
	tr := res.Trace
	if tr.RoutedJIT() == 0 {
		t.Fatal("hybrid trace recorded no JIT-routed morsels")
	}
	var samples int
	for _, pt := range tr.Pipelines {
		for w := range pt.Workers {
			samples += len(pt.Workers[w].EWMA)
		}
	}
	if samples == 0 {
		t.Fatal("hybrid trace recorded no EWMA samples")
	}
	var ready bool
	for _, pt := range tr.Pipelines {
		if pt.ArtifactReady > 0 {
			ready = true
		}
	}
	if !ready {
		t.Fatal("no pipeline recorded an artifact-ready time")
	}
}

func TestTraceOffByDefault(t *testing.T) {
	plan := lowerOrDie(t, groupByNode(makeTable()), "notrace")
	lat := LatencyNone
	res, err := Execute(plan, Options{Backend: BackendVectorized, Workers: 2, Latency: &lat})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("tracing must be opt-in")
	}
}

func TestCanceledQueryPartialTrace(t *testing.T) {
	defer faultinject.Reset()
	// Each morsel sleeps 1ms; the context dies after a few of the ~20
	// morsels, so the query is canceled mid-pipeline.
	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Delay: time.Millisecond})
	plan := lowerOrDie(t, groupByNode(makeTable()), "cancq")
	lat := LatencyNone
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	res, err := ExecuteContext(ctx, plan, Options{
		Backend: BackendVectorized, Workers: 2, MorselSize: 256, Latency: &lat, Trace: true,
	})
	if err == nil {
		t.Fatal("query survived its deadline")
	}
	if !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrCanceled) {
		t.Fatalf("unexpected failure kind: %v", err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("failed query dropped its trace")
	}
	if tr.Err == "" || tr.Wall <= 0 {
		t.Fatalf("partial trace not finalized: err=%q wall=%v", tr.Err, tr.Wall)
	}
	// Coherence: what the trace says ran matches the stats counters, and no
	// pipeline claims more morsels than were scheduled.
	for _, pt := range tr.Pipelines {
		if pt.MorselsRun() > pt.Morsels {
			t.Fatalf("%s: %d morsels run out of %d scheduled", pt.Name, pt.MorselsRun(), pt.Morsels)
		}
	}
	if tr.Tuples() != res.Stats.Tuples {
		t.Fatalf("partial trace tuples %d != stats %d", tr.Tuples(), res.Stats.Tuples)
	}
	if int64(tr.RoutedJIT()) != res.Stats.MorselsCompiled || int64(tr.RoutedVectorized()) != res.Stats.MorselsVectorized {
		t.Fatalf("partial trace routing (%d/%d) != stats (%d/%d)",
			tr.RoutedJIT(), tr.RoutedVectorized(), res.Stats.MorselsCompiled, res.Stats.MorselsVectorized)
	}
	// The dump of a partial trace renders without panicking.
	if !strings.Contains(tr.Dump(), "err=") {
		t.Fatal("partial trace dump missing error")
	}
}

func TestExplainAnalyzeAllBackends(t *testing.T) {
	tbl := makeTable()
	for _, backend := range allBackends() {
		t.Run(backend.String(), func(t *testing.T) {
			node := algebra.NewOrderBy(groupByNode(tbl), []string{"sum_b"}, []bool{true}, 0)
			plan := lowerOrDie(t, node, "explainq")
			lat := LatencyNone
			out, res, err := ExplainAnalyze(context.Background(), plan, Options{
				Backend: backend, Workers: 2, MorselSize: 512, Latency: &lat,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Trace == nil {
				t.Fatal("ExplainAnalyze did not enable tracing")
			}
			for _, want := range []string{
				"== explain analyze explainq",
				"backend=" + backend.String(),
				"pipeline ",
				"morsels",
				"== totals: tuples=",
				"post: order by",
			} {
				if !strings.Contains(out, want) {
					t.Errorf("explain output missing %q:\n%s", want, out)
				}
			}
			// Backends that compile report compile time in the annotations.
			if backend == BackendCompiling || backend == BackendROF {
				if !strings.Contains(out, "-- compile:") {
					t.Errorf("compiling backend output missing compile annotation:\n%s", out)
				}
			}
		})
	}
}

func TestExplainAnalyzeDegradedHybrid(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.ExecHybridCompile, faultinject.Fault{Err: errors.New("injected compile failure")})
	// The background compile races the (tiny) query: when the query finishes
	// before the job is scheduled, abandon() cancels it and the run reports
	// no degradation — correctly, since nothing failed. The fault fires on
	// every passage, so retry until the injected failure lands.
	for attempt := 0; attempt < 50; attempt++ {
		plan := lowerOrDie(t, groupByNode(makeTable()), "degradedq")
		lat := LatencyNone
		out, res, err := ExplainAnalyze(context.Background(), plan, Options{
			Backend: BackendHybrid, Workers: 2, Latency: &lat,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Warnings) == 0 {
			continue
		}
		if !strings.Contains(out, "DEGRADED") || !strings.Contains(out, "== warning:") {
			t.Fatalf("explain output hides the degradation:\n%s", out)
		}
		return
	}
	t.Fatal("injected compile failure never surfaced as a degradation warning")
}

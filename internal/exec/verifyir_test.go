package exec

import (
	"errors"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/core"
)

// TestVerifyIRGate checks Options.VerifyIR: a well-formed plan executes
// unchanged, and a structurally broken one fails with ErrInvalidPlan before
// any worker state is built.
func TestVerifyIRGate(t *testing.T) {
	tbl := makeTable()
	node := algebra.NewMap(
		algebra.NewFilter(algebra.NewScan(tbl, "a", "b"), algebra.Lt(algebra.Col("a"), algebra.I64(10))),
		algebra.NamedExpr{As: "a2", E: algebra.Mul(algebra.Col("b"), algebra.F64(2))},
	)
	plan, err := algebra.Lower(node, "verify_ok")
	if err != nil {
		t.Fatal(err)
	}
	lat := LatencyNone
	res, err := Execute(plan, Options{Backend: BackendVectorized, Workers: 2, Latency: &lat, VerifyIR: true})
	if err != nil {
		t.Fatalf("verified plan failed: %v", err)
	}
	if res.Chunk.Rows() == 0 {
		t.Fatal("no rows")
	}

	// Break the def-use chain: the first op now consumes an IU nothing
	// defines. The gate must reject it as ErrInvalidPlan.
	bad, err := algebra.Lower(node, "verify_bad")
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range bad.Pipelines[0].Ops {
		if fc, ok := op.(*core.FilterCopy); ok {
			fc.Src = core.NewIU(fc.Src.K, "ghost")
			break
		}
	}
	_, err = Execute(bad, Options{Backend: BackendVectorized, Workers: 2, Latency: &lat, VerifyIR: true})
	if !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("got %v, want ErrInvalidPlan", err)
	}
}

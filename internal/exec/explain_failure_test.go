package exec

// EXPLAIN ANALYZE must stay useful exactly when it matters most: canceled and
// degraded queries render their partial annotations, and the renderer never
// panics on a nil or truncated trace. Plus the happy-path contract of the
// suboperator profiler section and the histogram feed.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"inkfuse/internal/faultinject"
	"inkfuse/internal/obs"
	"inkfuse/internal/trace"
)

func TestExplainAnalyzeCanceledQuery(t *testing.T) {
	defer faultinject.Reset()
	// Each morsel sleeps 1ms; the deadline fires after a few of them, so the
	// explain runs against a mid-pipeline partial trace.
	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Delay: time.Millisecond})
	plan := lowerOrDie(t, groupByNode(makeTable()), "explaincancel")
	lat := LatencyNone
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	out, res, err := ExplainAnalyze(ctx, plan, Options{
		Backend: BackendVectorized, Workers: 2, MorselSize: 256, Latency: &lat,
	})
	if err == nil {
		t.Fatal("query survived its deadline")
	}
	if !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrCanceled) {
		t.Fatalf("unexpected failure kind: %v", err)
	}
	if res == nil || res.Trace == nil {
		t.Fatal("canceled ExplainAnalyze dropped its partial result/trace")
	}
	for _, want := range []string{"== explain analyze explaincancel", "!! failed:", "morsels", "== totals:"} {
		if !strings.Contains(out, want) {
			t.Errorf("canceled explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainAnalyzeDegradedPartialAnnotations(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.ExecHybridCompile, faultinject.Fault{Err: errors.New("injected compile failure")})
	// Slow the morsels a little: the background compile goroutine must get
	// scheduled (and hit the injected failure) before the pipelines finish,
	// which a microsecond-long query on a single-CPU host cannot guarantee.
	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Delay: 200 * time.Microsecond})
	plan := lowerOrDie(t, groupByNode(makeTable()), "explaindegraded")
	lat := LatencyNone
	out, res, err := ExplainAnalyze(context.Background(), plan, Options{
		Backend: BackendHybrid, Workers: 2, MorselSize: 512, Latency: &lat,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Degraded, but every pipeline still carries its annotations — including
	// the suboperator profile, since the interpreter served the morsels.
	for _, want := range []string{"DEGRADED", "== warning:", "-- subops:", "compile error"} {
		if !strings.Contains(out, want) {
			t.Errorf("degraded explain output missing %q:\n%s", want, out)
		}
	}
	for _, pt := range res.Trace.Pipelines {
		if !pt.Degraded {
			t.Fatalf("pipeline %s not marked degraded", pt.Name)
		}
	}
}

// RenderExplainAnalyze is also reachable with hand-built results (e.g. the
// server rendering a stored trace); nil and truncated traces must render.
func TestRenderExplainAnalyzeNilAndTruncatedTrace(t *testing.T) {
	plan := lowerOrDie(t, groupByNode(makeTable()), "renderq")
	out := RenderExplainAnalyze(plan, &Result{})
	if !strings.Contains(out, "== explain analyze renderq") {
		t.Fatalf("nil-trace render broken:\n%s", out)
	}
	// A trace that stopped before later pipelines: the missing ones must be
	// marked, not invented (and an empty pipeline entry must not panic).
	qt := trace.NewQuery("renderq", "vectorized", 2, time.Time{})
	qt.Err = "boom"
	qt.StartPipeline(plan.Pipelines[0].Name, 0, 0)
	out = RenderExplainAnalyze(plan, &Result{Trace: qt})
	if !strings.Contains(out, "!! failed: boom") {
		t.Fatalf("truncated-trace render missing failure:\n%s", out)
	}
	if len(plan.Pipelines) > 1 && !strings.Contains(out, "-- not executed") {
		t.Fatalf("unreached pipelines not marked:\n%s", out)
	}
}

func TestExplainAnalyzeSubOpProfile(t *testing.T) {
	plan := lowerOrDie(t, groupByNode(makeTable()), "profq")
	lat := LatencyNone
	out, res, err := ExplainAnalyze(context.Background(), plan, Options{
		Backend: BackendVectorized, Workers: 2, MorselSize: 512, ProfileEvery: 1, Latency: &lat,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-- subops: sampled 1/1 chunks") {
		t.Fatalf("explain output missing suboperator section:\n%s", out)
	}
	if !strings.Contains(out, "ns/tuple=") {
		t.Fatalf("suboperator section missing per-tuple cost:\n%s", out)
	}
	pt := res.Trace.Pipelines[0]
	if len(pt.SubOps) == 0 || pt.ProfiledChunks == 0 {
		t.Fatalf("trace carries no suboperator profile: %+v", pt)
	}
	// Attribution covers exactly the sampled chunks: with every=1 each
	// suboperator was called once per chunk on the first pipeline.
	for _, s := range pt.SubOps {
		if s.ID == "" || s.Calls == 0 || s.Tuples == 0 {
			t.Fatalf("empty suboperator sample: %+v", s)
		}
	}
	// The trace dump renders the same section.
	if !strings.Contains(res.Trace.Dump(), "subops: sampled") {
		t.Fatal("trace dump missing suboperator section")
	}
}

// Executing a query advances the process-wide latency histograms — the same
// contract /metrics exposes.
func TestExecFeedsObsHistograms(t *testing.T) {
	backend := BackendVectorized
	qh := obs.Default.QueryLatency.With(backend.String())
	mh := obs.Default.MorselLatency.With(backend.String())
	q0, m0 := qh.Count(), mh.Count()
	plan := lowerOrDie(t, groupByNode(makeTable()), "obsq")
	lat := LatencyNone
	if _, err := Execute(plan, Options{Backend: backend, Workers: 2, MorselSize: 512, Latency: &lat}); err != nil {
		t.Fatal(err)
	}
	if qh.Count() != q0+1 {
		t.Fatalf("query latency histogram advanced by %d, want 1", qh.Count()-q0)
	}
	if mh.Count() <= m0 {
		t.Fatal("morsel latency histogram did not advance")
	}
	if !strings.Contains(obs.Default.PrometheusText(), `inkfuse_query_seconds_bucket{backend="vectorized"`) {
		t.Fatal("exposition missing the query latency histogram")
	}
}

// Package exec implements the query life cycle of the Incremental Fusion
// engine (paper §V): morsel-driven parallel execution of pipeline DAGs
// through interchangeable backends — operator-fusing compilation, the
// generated vectorized interpreter, relaxed operator fusion, and the
// adaptive hybrid backend that switches between them at morsel granularity.
package exec

import (
	"context"
	"fmt"
	"time"

	"inkfuse/internal/core"
	"inkfuse/internal/faultinject"
	"inkfuse/internal/ir"
	"inkfuse/internal/vm"
)

// Backend selects an execution strategy.
type Backend int

const (
	// BackendVectorized interprets suboperator DAGs with the pre-generated
	// primitives. Instantly available: no per-query compilation.
	BackendVectorized Backend = iota
	// BackendCompiling fuses each pipeline into one specialized program and
	// waits for compilation before processing tuples.
	BackendCompiling
	// BackendROF is relaxed operator fusion: pipelines split before every
	// hash-table probe with a dedicated prefetch staging step.
	BackendROF
	// BackendHybrid starts on the vectorized interpreter, compiles in the
	// background, and routes morsels to whichever backend currently has the
	// highest measured tuple throughput (paper §V-B).
	BackendHybrid
)

func (b Backend) String() string {
	switch b {
	case BackendVectorized:
		return "vectorized"
	case BackendCompiling:
		return "compiling"
	case BackendROF:
		return "rof"
	case BackendHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend converts a name to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "vectorized", "interpreted":
		return BackendVectorized, nil
	case "compiling", "jit", "compiled":
		return BackendCompiling, nil
	case "rof":
		return BackendROF, nil
	case "hybrid", "adaptive":
		return BackendHybrid, nil
	}
	return 0, fmt.Errorf("%w %q", ErrUnknownBackend, s)
}

// LatencyModel reproduces the wall-clock cost of turning generated code into
// machine code. InkFuse shells out to clang (tens of milliseconds per
// pipeline); our closure compilation takes microseconds, so the model
// restores the paper's latency structure (DESIGN.md §2). The simulated delay
// scales with the generated code size, as real compiler time does.
type LatencyModel struct {
	Base    time.Duration // fixed process/pipeline overhead
	PerNode time.Duration // per IR node
}

// Delay returns the simulated compile latency for a function.
func (m LatencyModel) Delay(f *ir.Func) time.Duration {
	return m.Base + time.Duration(ir.Size(f))*m.PerNode
}

// Zero reports whether the model simulates no latency.
func (m LatencyModel) Zero() bool { return m.Base == 0 && m.PerNode == 0 }

// Predefined models, calibrated against the paper's reported numbers
// (InkFuse C + clang: ~5-15 ms per pipeline; Umbra LLVM: roughly half;
// Umbra's fast x86 path: well under a millisecond).
var (
	// LatencyC models InkFuse's generate-C-and-run-clang stack.
	LatencyC = LatencyModel{Base: 3 * time.Millisecond, PerNode: 120 * time.Microsecond}
	// LatencyLLVM models a direct-to-LLVM-IR backend (Umbra's LLVM mode).
	LatencyLLVM = LatencyModel{Base: 1500 * time.Microsecond, PerNode: 60 * time.Microsecond}
	// LatencyFastPath models a low-latency direct-assembly fast path
	// (Umbra's x86 backend).
	LatencyFastPath = LatencyModel{Base: 100 * time.Microsecond, PerNode: 4 * time.Microsecond}
	// LatencyNone disables simulation (only the real closure-compile time
	// remains).
	LatencyNone = LatencyModel{}
)

// fusedStep is one compiled step: the executable program plus the runtime
// state array shared with every other backend (paper Fig 8).
type fusedStep struct {
	prog   *vm.Program
	states []any
	fn     *ir.Func
}

// compileStep runs the compilation stack over a suboperator sequence and
// closure-compiles the result, waiting out the simulated machine-code
// latency. The wait is interruptible: a canceled or expired context aborts
// it with the typed cancellation error.
func compileStep(ctx context.Context, name string, source []*core.IU, ops []core.SubOp, emit []*core.IU, lat LatencyModel) (*fusedStep, time.Duration, error) {
	start := time.Now()
	if err := faultinject.Inject(faultinject.ExecCompile); err != nil {
		return nil, 0, fmt.Errorf("compile %s: %w", name, err)
	}
	fn, states, err := core.GenStep(name, source, ops, emit)
	if err != nil {
		return nil, 0, err
	}
	if err := ir.Verify(fn); err != nil {
		return nil, 0, err
	}
	prog, err := vm.Compile(fn)
	if err != nil {
		return nil, 0, err
	}
	if d := lat.Delay(fn) + faultinject.Delay(faultinject.ExecCompileDelay); d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, time.Since(start), ctxCause(ctx.Err())
		}
	}
	return &fusedStep{prog: prog, states: states, fn: fn}, time.Since(start), nil
}

package exec

import (
	"testing"

	"inkfuse/internal/core"
	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/types"
)

// TestSplitSteps checks the ROF staging-point liveness analysis: each step
// must read exactly what earlier steps materialized and materialize exactly
// what later steps (or the result) need.
func TestSplitSteps(t *testing.T) {
	a := core.NewIU(types.Int64, "a")
	b := core.NewIU(types.Float64, "b")
	c1 := core.NewIU(types.Float64, "c1") // a-derived
	c2 := core.NewIU(types.Float64, "c2") // consumed after split
	c3 := core.NewIU(types.Float64, "c3")
	dead := core.NewIU(types.Float64, "dead") // never consumed downstream

	konst := core.ConstOf(rt.ConstF64(2))
	op1 := &core.Arith{Op: ir.Mul, L: core.Col(b), R: konst, Out: c1}
	op2 := &core.Arith{Op: ir.Add, L: core.Col(c1), R: core.Col(b), Out: c2}
	opDead := &core.Arith{Op: ir.Mul, L: core.Col(b), R: core.ConstOf(rt.ConstF64(3)), Out: dead}
	op3 := &core.Arith{Op: ir.Add, L: core.Col(c2), R: core.Col(b), Out: c3}

	ops := []core.SubOp{op1, op2, opDead, op3}
	// Split before op3.
	steps := splitSteps([]*core.IU{a, b}, ops, []*core.IU{c3, a},
		func(i int, op core.SubOp) bool { return op == op3 })
	if len(steps) != 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	// Step 1 must materialize exactly {a, b, c2}: a for the result, b and c2
	// for op3; c1 and dead must not cross the boundary.
	emit := map[string]bool{}
	for _, iu := range steps[0].emit {
		emit[iu.Name] = true
	}
	if !emit["a"] || !emit["b"] || !emit["c2"] || emit["c1"] || emit["dead"] {
		t.Fatalf("step 1 live set wrong: %v", steps[0].emit)
	}
	// Step 2 reads step 1's buffer and emits the result.
	if len(steps[1].source) != len(steps[0].emit) {
		t.Fatal("step 2 source != step 1 emit")
	}
	if len(steps[1].emit) != 2 || steps[1].emit[0] != c3 || steps[1].emit[1] != a {
		t.Fatalf("step 2 emit: %v", steps[1].emit)
	}
}

func TestSplitStepsNoSplits(t *testing.T) {
	a := core.NewIU(types.Int64, "a")
	out := core.NewIU(types.Int64, "o")
	ops := []core.SubOp{&core.Arith{Op: ir.Add, L: core.Col(a), R: core.ConstOf(rt.ConstI64(1)), Out: out}}
	steps := splitSteps([]*core.IU{a}, ops, []*core.IU{out},
		func(int, core.SubOp) bool { return false })
	if len(steps) != 1 || len(steps[0].ops) != 1 {
		t.Fatalf("steps: %+v", steps)
	}
}

func TestSplitStepsEveryOp(t *testing.T) {
	// Splitting before every suboperator = the vectorized interpreter's
	// slicing (paper §III): each step has exactly one suboperator.
	a := core.NewIU(types.Float64, "a")
	x1 := core.NewIU(types.Float64, "x1")
	x2 := core.NewIU(types.Float64, "x2")
	ops := []core.SubOp{
		&core.Arith{Op: ir.Add, L: core.Col(a), R: core.ConstOf(rt.ConstF64(1)), Out: x1},
		&core.Arith{Op: ir.Mul, L: core.Col(x1), R: core.ConstOf(rt.ConstF64(2)), Out: x2},
	}
	steps := splitSteps([]*core.IU{a}, ops, []*core.IU{x2},
		func(int, core.SubOp) bool { return true })
	if len(steps) != 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	for i, st := range steps {
		if len(st.ops) != 1 {
			t.Fatalf("step %d has %d ops", i, len(st.ops))
		}
	}
}

package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/ir"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
	"inkfuse/internal/volcano"
)

// TestRandomPlansDifferential builds random (type-correct) plans over random
// data and checks that every backend agrees with the Volcano oracle — the
// broad-coverage property test of DESIGN.md §6.
func TestRandomPlansDifferential(t *testing.T) {
	iters := 40
	if testing.Short() {
		iters = 8
	}
	for seed := 0; seed < iters; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(seed)))
			node := randomPlan(r)
			want, err := volcano.Run(node)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			wantRows := rowsAsStrings(want)
			sort.Strings(wantRows)
			for _, backend := range allBackends() {
				plan, err := algebra.Lower(node, "random")
				if err != nil {
					t.Fatalf("lower: %v", err)
				}
				lat := LatencyNone
				res, err := Execute(plan, Options{
					Backend: backend, Workers: 1 + r.Intn(3),
					ChunkSize: 1 << (3 + r.Intn(6)), MorselSize: 1 << (6 + r.Intn(6)),
					Latency: &lat,
				})
				if err != nil {
					t.Fatalf("%v: %v", backend, err)
				}
				gotRows := rowsAsStrings(res.Chunk)
				sort.Strings(gotRows)
				if len(gotRows) != len(wantRows) {
					t.Fatalf("%v: %d rows vs oracle %d", backend, len(gotRows), len(wantRows))
				}
				for i := range gotRows {
					if gotRows[i] != wantRows[i] {
						t.Fatalf("%v: row %d\n got  %s\n want %s", backend, i, gotRows[i], wantRows[i])
					}
				}
			}
		})
	}
}

// randomTable builds a table with int64/float64/string/date columns.
func randomTable(r *rand.Rand, name string, rows int) *storage.Table {
	t := storage.NewTable(name, types.Schema{
		{Name: name + "_k", Kind: types.Int64},
		{Name: name + "_f", Kind: types.Float64},
		{Name: name + "_s", Kind: types.String},
		{Name: name + "_d", Kind: types.Date},
	})
	labels := []string{"alpha", "beta", "gamma", "delta", "PROMO X", "PROMO Y"}
	t.SetRows(rows)
	for i := 0; i < rows; i++ {
		t.Col(name + "_k").I64[i] = int64(r.Intn(50))
		// Halves keep float sums exact across summation orders.
		t.Col(name + "_f").F64[i] = float64(r.Intn(100)) / 2
		t.Col(name + "_s").Str[i] = labels[r.Intn(len(labels))]
		t.Col(name + "_d").I32[i] = types.MkDate(1995, 1, 1) + int32(r.Intn(300))
	}
	return t
}

// randomPred builds a random boolean expression over table tbl's columns.
func randomPred(r *rand.Rand, p string) algebra.Expr {
	preds := []func() algebra.Expr{
		func() algebra.Expr {
			return algebra.Gt(algebra.Col(p+"_k"), algebra.I64(int64(r.Intn(40))))
		},
		func() algebra.Expr {
			return algebra.Le(algebra.Col(p+"_f"), algebra.F64(float64(r.Intn(80))))
		},
		func() algebra.Expr {
			return algebra.Eq(algebra.Col(p+"_s"), algebra.Str("beta"))
		},
		func() algebra.Expr {
			return algebra.Like(algebra.Col(p+"_s"), "PROMO%")
		},
		func() algebra.Expr {
			return algebra.In(algebra.Col(p+"_s"), "alpha", "gamma")
		},
		func() algebra.Expr {
			lo := types.MkDate(1995, 1, 1) + int32(r.Intn(100))
			return algebra.Ge(algebra.Col(p+"_d"), algebra.Const{K: types.Date, I32: lo})
		},
	}
	e := preds[r.Intn(len(preds))]()
	if r.Intn(2) == 0 {
		f := preds[r.Intn(len(preds))]()
		if r.Intn(2) == 0 {
			return algebra.And(e, f)
		}
		return algebra.Or(e, f)
	}
	if r.Intn(4) == 0 {
		return algebra.Not(e)
	}
	return e
}

func randomPlan(r *rand.Rand) algebra.Node {
	probe := randomTable(r, "t", 200+r.Intn(2000))
	var node algebra.Node = algebra.NewScan(probe, "t_k", "t_f", "t_s", "t_d")

	// Optional filter(s) on the probe side.
	for i := 0; i < r.Intn(3); i++ {
		node = algebra.NewFilter(node, randomPred(r, "t"))
	}

	// Optional computed columns.
	if r.Intn(2) == 0 {
		node = algebra.NewMap(node,
			algebra.NamedExpr{As: "m1", E: algebra.Mul(algebra.Col("t_f"),
				algebra.Sub(algebra.F64(1), algebra.Col("t_f")))},
			algebra.NamedExpr{As: "m2", E: algebra.Case(
				algebra.Like(algebra.Col("t_s"), "PROMO%"),
				algebra.Col("m1"), algebra.F64(0))},
		)
	} else {
		node = algebra.NewMap(node,
			algebra.NamedExpr{As: "m1", E: algebra.Add(algebra.Col("t_f"), algebra.F64(1))},
			algebra.NamedExpr{As: "m2", E: algebra.Mul(algebra.Col("t_f"), algebra.F64(2))},
		)
	}

	// Optional join against a dimension table.
	mode := []ir.JoinMode{ir.InnerJoin, ir.SemiJoin, ir.LeftOuterJoin, ir.AntiJoin}[r.Intn(4)]
	withJoin := r.Intn(3) > 0
	matched := ""
	if withJoin {
		dim := randomTable(r, "d", 30+r.Intn(100))
		var build algebra.Node = algebra.NewScan(dim, "d_k", "d_f", "d_s", "d_d")
		if r.Intn(2) == 0 {
			build = algebra.NewFilter(build, randomPred(r, "d"))
		}
		j := &algebra.HashJoin{
			Build: build, Probe: node,
			BuildKeys: []string{"d_k"}, ProbeKeys: []string{"t_k"},
			Mode: mode,
		}
		if mode == ir.InnerJoin {
			j.BuildCols = []string{"d_s", "d_f"}
		}
		if mode == ir.LeftOuterJoin {
			j.MatchedAs = "matched"
			matched = "matched"
			if r.Intn(2) == 0 {
				j.BuildCols = []string{"d_f"}
			}
		}
		node = j
	}

	// Aggregate.
	var keys []string
	switch r.Intn(3) {
	case 0: // keyless
	case 1:
		keys = []string{"t_s"}
	default:
		keys = []string{"t_k", "t_s"}
	}
	aggs := []algebra.AggSpec{
		algebra.Sum("m1", "s1"),
		algebra.Count("n"),
	}
	if r.Intn(2) == 0 {
		aggs = append(aggs, algebra.MinOf("t_f", "lo"), algebra.MaxOf("t_f", "hi"))
	}
	if r.Intn(2) == 0 {
		aggs = append(aggs, algebra.Avg("m2", "a2"))
	}
	if matched != "" {
		aggs = append(aggs, algebra.CountIf(matched, "hits"))
	}
	return algebra.NewGroupBy(node, keys, aggs...)
}

package exec

import (
	"sort"

	"inkfuse/internal/core"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// sortChunk orders (and optionally limits) the final result. All supported
// plans sort the final, already-aggregated result set, so ordering is a
// post-processing step on the result buffer.
//
// Rows tied on every sort key fall back to comparing the remaining columns
// in schema order: parallel morsel scheduling makes the pre-sort row order
// vary run to run, and a stable sort alone would leak that nondeterminism
// into the result. Rows identical in every column are interchangeable, so
// the output is deterministic for a given input relation.
func sortChunk(c *storage.Chunk, spec *core.SortSpec) *storage.Chunk {
	n := c.Rows()
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	isKey := make([]bool, len(c.Cols))
	for _, col := range spec.Keys {
		isKey[col] = true
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for ki, col := range spec.Keys {
			cmp := compareAt(c.Cols[col], int(ia), int(ib))
			if cmp == 0 {
				continue
			}
			if spec.Desc[ki] {
				return cmp > 0
			}
			return cmp < 0
		}
		for col, v := range c.Cols {
			if isKey[col] {
				continue
			}
			if cmp := compareAt(v, int(ia), int(ib)); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	if spec.Limit > 0 && spec.Limit < len(idx) {
		idx = idx[:spec.Limit]
	}
	out := storage.NewChunk(c.Kinds())
	out.SetRows(len(idx))
	for i, col := range c.Cols {
		col.Gather(out.Cols[i], idx)
	}
	return out
}

func compareAt(v *storage.Vector, a, b int) int {
	switch v.Kind {
	case types.Bool:
		return boolCmp(v.B[a], v.B[b])
	case types.Int32, types.Date:
		return ordCmp(v.I32[a], v.I32[b])
	case types.Int64:
		return ordCmp(v.I64[a], v.I64[b])
	case types.Float64:
		return ordCmp(v.F64[a], v.F64[b])
	case types.String:
		return ordCmp(v.Str[a], v.Str[b])
	default:
		return 0
	}
}

func ordCmp[T interface {
	~int32 | ~int64 | ~float64 | ~string
}](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func boolCmp(a, b bool) int {
	switch {
	case a == b:
		return 0
	case b:
		return -1
	default:
		return 1
	}
}

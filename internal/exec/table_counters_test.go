package exec

import (
	"context"
	"strings"
	"testing"

	"inkfuse/internal/tpch"
)

// The batched table kernels surface three counters (local pre-aggregation
// hits, flush spills, bloom-filter probe skips). These tests pin the whole
// reporting chain on real queries: Stats, the trace, and EXPLAIN ANALYZE.

func tpchExplain(t *testing.T, query string, backend Backend) (string, *Result) {
	t.Helper()
	cat := tpch.Generate(0.01, 42)
	node, err := tpch.Build(cat, query)
	if err != nil {
		t.Fatal(err)
	}
	plan := lowerOrDie(t, node, query)
	lat := LatencyNone
	out, res, err := ExplainAnalyze(context.Background(), plan, Options{
		Backend: backend, Workers: 2, Latency: &lat,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

func TestAggLocalHitsReported(t *testing.T) {
	for _, backend := range []Backend{BackendVectorized, BackendHybrid} {
		t.Run(backend.String(), func(t *testing.T) {
			out, res := tpchExplain(t, "q1", backend)
			// Q1 groups 60K lineitems into 4 groups: nearly every lookup must
			// be absorbed by the thread-local table.
			if res.Stats.HTLocalHits == 0 {
				t.Fatal("q1 reported no local pre-aggregation hits")
			}
			if res.Stats.HTSpills == 0 {
				t.Fatal("q1 reported no flush spills despite local hits")
			}
			for _, want := range []string{"local_hits=", "== tables:"} {
				if !strings.Contains(out, want) {
					t.Errorf("explain output missing %q:\n%s", want, out)
				}
			}
			if tr := res.Trace; tr.Pipelines[0].LocalHits() == 0 {
				t.Error("trace pipeline 0 lost the local-hit counts")
			}
		})
	}
}

func TestJoinBloomSkipsReported(t *testing.T) {
	for _, backend := range []Backend{BackendVectorized, BackendHybrid} {
		t.Run(backend.String(), func(t *testing.T) {
			out, res := tpchExplain(t, "q3", backend)
			// Q3 probes every lineitem against the date-filtered orders build
			// side; the misses must be rejected by the bloom filter.
			if res.Stats.HTBloomSkips == 0 {
				t.Fatal("q3 reported no bloom-filter skips")
			}
			if !strings.Contains(out, "bloom_skips=") {
				t.Errorf("explain output missing bloom_skips:\n%s", out)
			}
		})
	}
}

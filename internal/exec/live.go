package exec

import "inkfuse/internal/core"

// step is a slice of a pipeline between two materialization points: the ROF
// staging points (paper §III — "both are DAGs of operators, starting with a
// source and ending with a sink; only the scheduler needs to be aware of the
// distinction").
type step struct {
	source []*core.IU
	ops    []core.SubOp
	emit   []*core.IU // live IUs materialized into the staging buffer
}

// splitSteps cuts a pipeline's suboperator list before every index where
// splitBefore returns true and computes, per step, the source IUs it reads
// from the previous staging buffer and the live IUs it must materialize for
// later steps. The final step emits the pipeline result.
func splitSteps(source []*core.IU, ops []core.SubOp, result []*core.IU,
	splitBefore func(i int, op core.SubOp) bool) []step {
	// Cut points.
	cuts := []int{0}
	for i, op := range ops {
		if i > 0 && splitBefore(i, op) {
			cuts = append(cuts, i)
		}
	}
	cuts = append(cuts, len(ops))

	// definedAt[iu] = order of first definition (source first, then op
	// outputs), used to keep staging-buffer column order deterministic.
	order := make(map[int]int)
	byOrder := []*core.IU{}
	note := func(iu *core.IU) {
		if _, ok := order[iu.ID]; !ok {
			order[iu.ID] = len(byOrder)
			byOrder = append(byOrder, iu)
		}
	}
	for _, iu := range source {
		note(iu)
	}
	for _, op := range ops {
		for _, iu := range op.Outputs() {
			note(iu)
		}
	}

	// neededFrom[k] = set of IU IDs consumed at or after ops index k, plus
	// the pipeline result.
	needed := make(map[int]bool)
	for _, iu := range result {
		needed[iu.ID] = true
	}
	neededFrom := make([]map[int]bool, len(ops)+1)
	neededFrom[len(ops)] = cloneSet(needed)
	for i := len(ops) - 1; i >= 0; i-- {
		for _, iu := range ops[i].Inputs() {
			needed[iu.ID] = true
		}
		neededFrom[i] = cloneSet(needed)
	}

	var steps []step
	defined := make(map[int]bool)
	for _, iu := range source {
		defined[iu.ID] = true
	}
	prevEmit := source
	for c := 0; c+1 < len(cuts); c++ {
		lo, hi := cuts[c], cuts[c+1]
		st := step{source: prevEmit, ops: ops[lo:hi]}
		for _, op := range ops[lo:hi] {
			for _, iu := range op.Outputs() {
				defined[iu.ID] = true
			}
		}
		if hi == len(ops) {
			st.emit = result
		} else {
			// Live set at the cut: defined so far and needed later.
			for _, iu := range byOrder {
				if defined[iu.ID] && neededFrom[hi][iu.ID] {
					st.emit = append(st.emit, iu)
				}
			}
		}
		steps = append(steps, st)
		prevEmit = st.emit
	}
	return steps
}

func cloneSet(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

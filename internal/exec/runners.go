package exec

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"inkfuse/internal/core"
	"inkfuse/internal/faultinject"
	"inkfuse/internal/flight"
	"inkfuse/internal/interp"
	"inkfuse/internal/storage"
	"inkfuse/internal/trace"
	"inkfuse/internal/types"
	"inkfuse/internal/vm"
)

// newRunner builds the backend runner for pipeline pi. pt is the pipeline's
// execution trace (nil when tracing is off); only the hybrid runner records
// into it directly, for the routing decisions the scheduler cannot observe.
func newRunner(ctx context.Context, pi int, pipe *core.Pipeline, opts Options, reg *interp.Registry, bg *hybridCompile, pt *trace.Pipeline) (runner, error) {
	switch opts.Backend {
	case BackendVectorized:
		return newVectorizedRunner(pipe, opts, reg)
	case BackendCompiling:
		return newCompilingRunner(ctx, pi, pipe, opts)
	case BackendROF:
		return newROFRunner(ctx, pi, pipe, opts)
	case BackendHybrid:
		return newHybridRunner(pipe, opts, reg, bg, pt)
	default:
		return nil, fmt.Errorf("%w %v", ErrUnknownBackend, opts.Backend)
	}
}

// ---------------------------------------------------------------------------
// Vectorized backend

type vectorizedRunner struct {
	runs      []*interp.Run
	source    []*core.IU
	chunkSize int
	// scratch holds per-worker chunk views ([worker][col]), reused across
	// chunks and morsels so the inner loop allocates nothing: consumers bind
	// the vectors only for the duration of one RunChunk call.
	scratch [][]*storage.Vector
	// profs holds each worker's suboperator profiler (Options.Profile);
	// merged at finish into the pipeline's attribution list.
	profs []*interp.Profile
}

func newVectorizedRunner(pipe *core.Pipeline, opts Options, reg *interp.Registry) (*vectorizedRunner, error) {
	r := &vectorizedRunner{source: pipe.Source.SourceIUs(), chunkSize: opts.ChunkSize}
	for w := 0; w < opts.Workers; w++ {
		run, err := interp.NewRun(reg, r.source, pipe.Ops, pipe.Result)
		if err != nil {
			return nil, err
		}
		if opts.Profile {
			r.profs = append(r.profs, run.EnableProfile(opts.ProfileEvery))
		}
		r.runs = append(r.runs, run)
	}
	r.scratch = newChunkScratch(opts.Workers, len(r.source))
	return r, nil
}

// profileInfo folds the workers' suboperator profiles into a finishInfo.
func (r *vectorizedRunner) profileInfo(fi *finishInfo) {
	if len(r.profs) == 0 {
		return
	}
	fi.subops = interp.MergeProfiles(r.profs)
	fi.profileEvery = r.profs[0].Every
	for _, p := range r.profs {
		fi.profiledChunks += p.Sampled
	}
}

// newChunkScratch pre-allocates the per-worker chunk-view headers the morsel
// loops reslice in place.
func newChunkScratch(workers, cols int) [][]*storage.Vector {
	out := make([][]*storage.Vector, workers)
	for w := range out {
		out[w] = make([]*storage.Vector, cols)
		for i := range out[w] {
			out[w][i] = &storage.Vector{}
		}
	}
	return out
}

//inkfuse:hotpath
func (r *vectorizedRunner) runMorsel(w int, ctx *vm.Ctx, src []*storage.Vector, n int, out *storage.Chunk) {
	run := r.runs[w]
	sub := r.scratch[w]
	for lo := 0; lo < n; lo += r.chunkSize {
		hi := min(lo+r.chunkSize, n)
		for i, v := range src {
			v.SliceInto(sub[i], lo, hi)
		}
		run.RunChunk(ctx, sub, hi-lo, out)
	}
}

func (r *vectorizedRunner) finish() finishInfo {
	var fi finishInfo
	r.profileInfo(&fi)
	return fi
}

// ---------------------------------------------------------------------------
// Compiling backend: fuse the whole pipeline, wait for the code.

type compilingRunner struct {
	art  *fusedStep
	wait time.Duration
}

func newCompilingRunner(ctx context.Context, pi int, pipe *core.Pipeline, opts Options) (*compilingRunner, error) {
	// A cached artifact skips compilation and its dead wait entirely — the
	// plancache reuse path pays no compile latency on a hit.
	if art := opts.Artifacts.loadFused(pi); art != nil {
		return &compilingRunner{art: art}, nil
	}
	flight.Default.RecordStr(flight.KindCompileStart, opts.QueryID, pipe.Name, 0, 0)
	art, dur, err := compileStep(ctx, "pipeline_"+pipe.Name, pipe.Source.SourceIUs(), pipe.Ops, pipe.Result, *opts.Latency)
	if err != nil {
		flight.Default.RecordStr(flight.KindCompileFail, opts.QueryID, pipe.Name, 0, 0)
		return nil, err
	}
	flight.Default.RecordStr(flight.KindCompileLand, opts.QueryID, pipe.Name, int64(dur), 0)
	opts.Artifacts.noteCompile()
	opts.Artifacts.storeFused(pi, art)
	// The compiling backend cannot process tuples until compilation is done:
	// the whole compile time is dead wait (the dashed bars of Fig 10).
	return &compilingRunner{art: art, wait: dur}, nil
}

//inkfuse:hotpath
func (r *compilingRunner) runMorsel(w int, ctx *vm.Ctx, src []*storage.Vector, n int, out *storage.Chunk) {
	r.art.prog.Run(ctx, r.art.states, src, n, out)
	ctx.Counters.FusedCalls++
	ctx.Counters.MorselsCompiled++
}

func (r *compilingRunner) finish() finishInfo {
	return finishInfo{compileTime: r.wait, compileWait: r.wait}
}

// ---------------------------------------------------------------------------
// ROF backend: split before every probe, prefetch the staged chunk.

type rofRunner struct {
	steps     []*fusedStep
	bufs      [][]*storage.Chunk // [worker][step-1]: the staging buffers
	chunkSize int
	wait      time.Duration
	// scratch holds per-worker source chunk views, reused like the
	// vectorized runner's (no allocation in the per-chunk loop).
	scratch [][]*storage.Vector
}

func newROFRunner(ctx context.Context, pi int, pipe *core.Pipeline, opts Options) (*rofRunner, error) {
	// Insert a prefetch suboperator before every probe and split there.
	var ops []core.SubOp
	for _, op := range pipe.Ops {
		if probe, ok := op.(*core.JoinProbe); ok {
			ops = append(ops, &core.Prefetch{Row: probe.Row, State: probe.State})
		}
		ops = append(ops, op)
	}
	// The staging point lies before the prefetch: the prefetch runs as the
	// last operation of the staged step, touching the buckets for the whole
	// chunk before the next step probes them.
	steps := splitSteps(pipe.Source.SourceIUs(), ops, pipe.Result, func(i int, op core.SubOp) bool {
		_, isPrefetch := op.(*core.Prefetch)
		return isPrefetch
	})
	r := &rofRunner{chunkSize: opts.ChunkSize}
	if arts := opts.Artifacts.loadROF(pi); len(arts) == len(steps) {
		// Cached step chain: skip compilation and its dead wait (plancache
		// reuse path; the split is deterministic, so the chain lines up).
		r.steps = arts
	} else {
		var wait time.Duration
		flight.Default.RecordStr(flight.KindCompileStart, opts.QueryID, pipe.Name, int64(len(steps)), 0)
		for si, st := range steps {
			art, dur, err := compileStep(ctx, fmt.Sprintf("rof_%s_s%d", pipe.Name, si), st.source, st.ops, st.emit, *opts.Latency)
			if err != nil {
				flight.Default.RecordStr(flight.KindCompileFail, opts.QueryID, pipe.Name, int64(si), 0)
				return nil, err
			}
			wait += dur
			r.steps = append(r.steps, art)
		}
		r.wait = wait
		flight.Default.RecordStr(flight.KindCompileLand, opts.QueryID, pipe.Name, int64(wait), int64(len(steps)))
		opts.Artifacts.noteCompile()
		opts.Artifacts.storeROF(pi, r.steps)
	}
	r.bufs = make([][]*storage.Chunk, opts.Workers)
	for w := range r.bufs {
		for si := 0; si+1 < len(steps); si++ {
			r.bufs[w] = append(r.bufs[w], storage.NewChunk(iuKinds(steps[si].emit)))
		}
	}
	r.scratch = newChunkScratch(opts.Workers, len(pipe.Source.SourceIUs()))
	return r, nil
}

//inkfuse:hotpath
func (r *rofRunner) runMorsel(w int, ctx *vm.Ctx, src []*storage.Vector, n int, out *storage.Chunk) {
	// Run the steps in lockstep over cache-friendly staged chunks.
	sub := r.scratch[w]
	for lo := 0; lo < n; lo += r.chunkSize {
		hi := min(lo+r.chunkSize, n)
		for i, v := range src {
			v.SliceInto(sub[i], lo, hi)
		}
		cur := sub
		cn := hi - lo
		for si, st := range r.steps {
			last := si == len(r.steps)-1
			var dst *storage.Chunk
			if last {
				dst = out
			} else {
				dst = r.bufs[w][si]
				dst.Reset()
			}
			st.prog.Run(ctx, st.states, cur, cn, dst)
			ctx.Counters.FusedCalls++
			if last {
				break
			}
			cur = dst.Cols
			cn = dst.Rows()
		}
	}
	ctx.Counters.MorselsCompiled++
}

func (r *rofRunner) finish() finishInfo {
	return finishInfo{compileTime: r.wait, compileWait: r.wait}
}

// iuKinds projects the kinds of a staging buffer's columns.
func iuKinds(ius []*core.IU) []types.Kind {
	out := make([]types.Kind, len(ius))
	for i, iu := range ius {
		out[i] = iu.K
	}
	return out
}

// ---------------------------------------------------------------------------
// Hybrid backend (paper §V-B): start vectorized, compile in the background,
// then route 90% of morsels to the backend with the best exponentially
// decaying tuple throughput; 5% each keep exploring either backend.

// hybridCompile is one pipeline's background compilation job. All jobs of a
// query start when the query starts (paper §V-B: "InkFuse uses one thread
// per pipeline for background compilation"), bounded by Options.CompileJobs.
type hybridCompile struct {
	art atomic.Pointer[fusedStep]
	// failed marks the job permanently dead; err (written before the store,
	// read after the load) carries the compile failure. A failed job is never
	// retried — the pipeline degrades to the vectorized interpreter, which is
	// the hybrid design's always-available fallback path.
	failed  atomic.Bool
	err     error
	cancel  chan struct{}
	done    chan struct{}
	compile time.Duration
	// ready is when the artifact landed (written before the art store,
	// read after a successful load — same happens-before as compile).
	ready time.Time
}

// fail records a permanent compile failure on the job.
func (h *hybridCompile) fail(err error) {
	h.err = err
	h.failed.Store(true)
}

// startHybridCompiles launches the background compilation jobs for every
// pipeline of the plan. The returned handles are wired into the hybrid
// runners pipeline by pipeline; abandon cancels whatever has not finished
// when the query completes, as does cancellation of the query context.
func startHybridCompiles(ctx context.Context, qid uint64, pipes []*core.Pipeline, lat LatencyModel, jobs int, arts *ArtifactSet) []*hybridCompile {
	if jobs <= 0 {
		jobs = len(pipes) // paper default: one compilation thread per pipeline
	}
	sem := make(chan struct{}, jobs)
	out := make([]*hybridCompile, len(pipes))
	for i, pipe := range pipes {
		h := &hybridCompile{cancel: make(chan struct{}), done: make(chan struct{})}
		out[i] = h
		if art := arts.loadFused(i); art != nil {
			// Cached artifact from an earlier execution of this plan instance:
			// the job is born complete — workers route to the fused code from
			// the first morsel, no compile latency is charged, and abandon()
			// finds the pre-closed done channel.
			h.art.Store(art)
			close(h.done)
			continue
		}
		go func(pipe *core.Pipeline) {
			defer close(h.done)
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-h.cancel:
				return
			case <-ctx.Done():
				return
			}
			flight.Default.RecordStr(flight.KindCompileStart, qid, pipe.Name, 0, 0)
			start := time.Now()
			if err := faultinject.Inject(faultinject.ExecHybridCompile); err != nil {
				h.fail(err)
				flight.Default.RecordStr(flight.KindCompileFail, qid, pipe.Name, 0, 0)
				return
			}
			fn, states, err := core.GenStep("pipeline_"+pipe.Name, pipe.Source.SourceIUs(), pipe.Ops, pipe.Result)
			if err != nil {
				h.fail(err)
				flight.Default.RecordStr(flight.KindCompileFail, qid, pipe.Name, 0, 0)
				return
			}
			prog, err := vm.Compile(fn)
			if err != nil {
				h.fail(err)
				flight.Default.RecordStr(flight.KindCompileFail, qid, pipe.Name, 0, 0)
				return
			}
			// Interruptible machine-code latency: one timer wake-up (repeated
			// short sleeps starve under a busy single-P scheduler), abandoned
			// if the query finishes first (paper §V-B) or its context dies.
			if d := lat.Delay(fn) + faultinject.Delay(faultinject.ExecHybridCompileDelay); d > 0 {
				timer := time.NewTimer(d)
				defer timer.Stop()
				select {
				case <-timer.C:
				case <-h.cancel:
					return
				case <-ctx.Done():
					return
				}
			}
			h.compile = time.Since(start)
			h.ready = time.Now()
			step := &fusedStep{prog: prog, states: states, fn: fn}
			// Deposit before publishing: the deferred abandon() in
			// ExecuteContext waits on done, so the store is never racing a
			// caller that already released the plan back to the cache.
			arts.noteCompile()
			arts.storeFused(i, step)
			h.art.Store(step)
			flight.Default.RecordStr(flight.KindCompileLand, qid, pipe.Name, int64(h.compile), 0)
		}(pipe)
	}
	return out
}

// abandon cancels the job if it has not completed; safe to call once.
func (h *hybridCompile) abandon() {
	close(h.cancel)
	<-h.done
}

type hybridRunner struct {
	vec *vectorizedRunner

	bg      *hybridCompile
	workers []hybridWorker
	// pt is the pipeline's execution trace (nil when tracing is off): the
	// runner records each measured routing sample into its own worker's
	// entry — per-morsel, lock-free, guarded by one nil check.
	pt *trace.Pipeline
	// qid / flabel key the first-JIT flight event; the label is interned at
	// runner construction so the hot path never touches the intern table.
	qid    uint64
	flabel flight.Label
}

type hybridWorker struct {
	vecTput, jitTput float64
	// vecMeasured / jitMeasured distinguish "never sampled" from a measured
	// throughput (a plain zero would conflate the two and let zero-row
	// morsels poison the EWMA seed).
	vecMeasured, jitMeasured bool
	// jitAnnounced marks that this worker's first compiled morsel was
	// recorded into the flight recorder.
	jitAnnounced bool
	// bgDead caches a permanent background-compile failure so the worker
	// stops polling the dead job's atomics every morsel.
	bgDead  bool
	morsels int
}

const hybridDecay = 0.3 // EWMA weight of the newest morsel

// HybridExploreEvery is the exploration period of the hybrid backend: out of
// every HybridExploreEvery morsels, one is forced onto the JIT code and one
// onto the interpreter to keep the throughput statistics fresh; the paper
// uses 20 (5% + 5% exploration, 90% exploitation, §V-B). Exposed as a
// variable for the exploration-rate ablation.
var HybridExploreEvery = 20

func newHybridRunner(pipe *core.Pipeline, opts Options, reg *interp.Registry, bg *hybridCompile, pt *trace.Pipeline) (*hybridRunner, error) {
	vec, err := newVectorizedRunner(pipe, opts, reg)
	if err != nil {
		return nil, err
	}
	return &hybridRunner{
		vec: vec, bg: bg, workers: make([]hybridWorker, opts.Workers), pt: pt,
		qid: opts.QueryID, flabel: flight.Default.Intern(pipe.Name),
	}, nil
}

//inkfuse:hotpath
func (h *hybridRunner) runMorsel(w int, ctx *vm.Ctx, src []*storage.Vector, n int, out *storage.Chunk) {
	ws := &h.workers[w]
	var art *fusedStep
	if !ws.bgDead {
		if h.bg.failed.Load() {
			// Permanent compile failure: this worker degrades to the
			// vectorized interpreter and stops polling the dead job.
			ws.bgDead = true
		} else {
			art = h.bg.art.Load()
		}
	}
	useJIT := false
	if art != nil {
		switch {
		case !ws.jitMeasured:
			// Freshly ready code: measure it on the next morsel rather than
			// waiting for the exploration slot to come around — on short
			// queries the compiled code would otherwise never be sampled.
			useJIT = true
		case ws.morsels%HybridExploreEvery == 0:
			useJIT = true
		case ws.morsels%HybridExploreEvery == 1:
			useJIT = false
		default:
			useJIT = ws.jitTput > ws.vecTput
		}
		if useJIT && !ws.jitAnnounced {
			// This worker's first compiled morsel: the observable moment
			// incremental fusion switches backends mid-query. Once per worker,
			// through the allocation-free hotpath Record.
			ws.jitAnnounced = true
			flight.Default.Record(flight.KindFirstJIT, h.qid, h.flabel, int64(w), 0)
		}
	}
	ws.morsels++
	start := time.Now()
	if useJIT {
		art.prog.Run(ctx, art.states, src, n, out)
		ctx.Counters.FusedCalls++
		ctx.Counters.MorselsCompiled++
	} else {
		h.vec.runMorsel(w, ctx, src, n, out)
		ctx.Counters.MorselsVectorized++
	}
	dur := time.Since(start)
	el := dur.Seconds()
	// Skip empty morsels: a zero-row sample measures scheduling noise, not
	// tuple throughput, and would skew the EWMA toward zero.
	if n > 0 && el > 0 {
		tput := float64(n) / el
		if useJIT {
			ws.jitTput = ewma(ws.jitTput, tput, ws.jitMeasured)
			ws.jitMeasured = true
		} else {
			ws.vecTput = ewma(ws.vecTput, tput, ws.vecMeasured)
			ws.vecMeasured = true
		}
		if h.pt != nil {
			h.pt.Workers[w].AddEWMA(trace.EWMASample{
				Morsel:   ws.morsels - 1,
				JIT:      useJIT,
				Tuples:   n,
				Duration: dur,
				VecTput:  ws.vecTput,
				JITTput:  ws.jitTput,
			})
		}
	}
}

//inkfuse:hotpath
func ewma(old, sample float64, measured bool) float64 {
	if !measured {
		return sample
	}
	return hybridDecay*sample + (1-hybridDecay)*old
}

func (h *hybridRunner) finish() finishInfo {
	// Query-level cleanup in Execute abandons jobs that never finished; the
	// compile duration is only published (happens-before the art store) once
	// the code is ready. The hybrid backend hides compile latency behind
	// interpretation: no dead wait is charged.
	var fi finishInfo
	switch {
	case h.bg.failed.Load():
		fi = finishInfo{compileErrors: 1, degraded: h.bg.err}
	case h.bg.art.Load() != nil:
		fi = finishInfo{compileTime: h.bg.compile, artifactReady: h.bg.ready}
	}
	// The interpreter half of the hybrid carries the suboperator profile; the
	// fused artifact is opaque to per-suboperator attribution by construction.
	h.vec.profileInfo(&fi)
	return fi
}

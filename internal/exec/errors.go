// The exec package is an error boundary: every error it returns must be a
// typed sentinel, a *QueryError, or wrap one via %w, so the serving layer's
// status classification never falls through to a generic 500. Enforced by
// the typederr analyzer (cmd/inklint).
//
//inklint:errorboundary

package exec

import (
	"context"
	"errors"
	"fmt"

	"inkfuse/internal/rt"
)

// Typed query-failure causes. Callers classify failures with errors.Is: a
// returned error wraps exactly one of these (or none for plain setup
// errors), usually inside a *QueryError carrying the failure location.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = errors.New("inkfuse: query canceled")
	// ErrDeadlineExceeded reports that the query's context deadline passed.
	ErrDeadlineExceeded = errors.New("inkfuse: query deadline exceeded")
	// ErrMemoryBudget reports that the query hit Options.MemoryBudget.
	ErrMemoryBudget = errors.New("inkfuse: query memory budget exceeded")
	// ErrPanic reports a panic recovered inside query execution. The process
	// and other queries are unaffected; the *QueryError carries the stack.
	ErrPanic = errors.New("inkfuse: query panicked")
	// ErrUnknownBackend reports a backend name or value outside the four
	// execution backends. The serving layer classifies it as a client error.
	ErrUnknownBackend = errors.New("inkfuse: unknown backend")
	// ErrInvalidPlan reports a structurally broken plan: an unknown source
	// type, a read of an unbuilt aggregate, or (with Options.VerifyIR) a
	// core.VerifyPlan failure.
	ErrInvalidPlan = errors.New("inkfuse: invalid plan")
)

// QueryError is a query-scoped failure: which query, pipeline, backend,
// worker, and morsel failed, and why. It wraps the typed cause, so
// errors.Is(err, exec.ErrMemoryBudget) etc. see through it.
type QueryError struct {
	Query    string
	Pipeline string
	Backend  Backend
	// Worker and Morsel locate the failure; -1 when it happened outside the
	// morsel loop (e.g. pipeline finalization).
	Worker int
	Morsel int
	// Stack is the goroutine stack of a recovered panic ("" otherwise).
	Stack string
	Err   error
}

func (e *QueryError) Error() string {
	loc := e.Query
	if e.Pipeline != "" {
		loc += "/" + e.Pipeline
	}
	if e.Morsel >= 0 {
		return fmt.Sprintf("exec: query %s (%s backend, worker %d, morsel %d): %v",
			loc, e.Backend, e.Worker, e.Morsel, e.Err)
	}
	return fmt.Sprintf("exec: query %s (%s backend): %v", loc, e.Backend, e.Err)
}

func (e *QueryError) Unwrap() error { return e.Err }

// ctxCause maps a context error onto the engine's typed errors while keeping
// the original context error visible to errors.Is.
func ctxCause(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}

// admissionError maps a scheduler admission failure onto the engine's typed
// errors: context expiry while queued becomes ErrCanceled /
// ErrDeadlineExceeded (the query never ran), scheduler rejections
// (sched.ErrQueueFull, sched.ErrDraining, sched.ErrOverCapacity) pass
// through for the serving layer to classify.
func admissionError(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ctxCause(err)
	}
	return err
}

// panicCause converts a recovered panic value into a typed failure cause.
// Memory-budget panics are expected control flow (rt.MemBudget cannot return
// errors through generated code) and map to ErrMemoryBudget; anything else
// is a genuine bug in query code and maps to ErrPanic.
func panicCause(rec any) error {
	if be, ok := rec.(*rt.BudgetExceeded); ok {
		return fmt.Errorf("%w: %v", ErrMemoryBudget, be)
	}
	if err, ok := rec.(error); ok {
		return fmt.Errorf("%w: %w", ErrPanic, err)
	}
	return fmt.Errorf("%w: %v", ErrPanic, rec)
}

package exec

// Determinism tests for sorted results with tied keys: parallel morsel
// scheduling makes the pre-sort row order vary run to run, so sortChunk must
// break ties deterministically (scripts/check.sh re-runs these under -race).

import (
	"fmt"
	"strings"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

// renderRows renders a result chunk in order for exact comparison.
func renderRows(c *storage.Chunk) string {
	var b strings.Builder
	for i := 0; i < c.Rows(); i++ {
		fmt.Fprintf(&b, "%v\n", c.Row(i))
	}
	return b.String()
}

// runSorted executes the node with many workers and small morsels to
// maximize scheduling nondeterminism, returning the rendered rows.
func runSorted(t *testing.T, node algebra.Node, name string, backend Backend) string {
	t.Helper()
	plan := lowerOrDie(t, node, name)
	lat := LatencyNone
	res, err := Execute(plan, Options{Backend: backend, Workers: 8, MorselSize: 64, Latency: &lat})
	if err != nil {
		t.Fatal(err)
	}
	return renderRows(res.Chunk)
}

func TestDeterminismTiedSortKeys(t *testing.T) {
	// Every row in a key group ties on the sort key "g"; the payload column
	// "v" is distinct per row, so the tie-break must order by it.
	tbl := storage.NewTable("ties", types.Schema{
		{Name: "g", Kind: types.Int64},
		{Name: "v", Kind: types.Int64},
	})
	for i := 0; i < 2000; i++ {
		tbl.AppendRow(int64(i%3), int64(i))
	}
	node := algebra.NewOrderBy(algebra.NewProject(algebra.NewScan(tbl, "g", "v"), "g", "v"),
		[]string{"g"}, []bool{false}, 0)

	want := runSorted(t, node, "ties0", BackendVectorized)
	if want == "" {
		t.Fatal("empty result")
	}
	for run := 1; run < 20; run++ {
		got := runSorted(t, node, fmt.Sprintf("ties%d", run), BackendVectorized)
		if got != want {
			t.Fatalf("run %d ordered tied rows differently:\nfirst:\n%.400s\nrun:\n%.400s", run, want, got)
		}
	}
}

func TestDeterminismTiedAggregateSort(t *testing.T) {
	// Ten groups with identical COUNTs: ordering by the count ties every
	// group, and the merged per-worker aggregation tables arrive in
	// scheduler-dependent order. The group-key column breaks the tie.
	tbl := storage.NewTable("aggties", types.Schema{
		{Name: "s", Kind: types.String},
		{Name: "x", Kind: types.Int64},
	})
	for i := 0; i < 3000; i++ {
		tbl.AppendRow(fmt.Sprintf("g%02d", i%10), int64(i))
	}
	node := algebra.NewOrderBy(
		algebra.NewGroupBy(algebra.NewScan(tbl, "s", "x"), []string{"s"}, algebra.Count("n")),
		[]string{"n"}, []bool{true}, 0)

	for _, backend := range []Backend{BackendVectorized, BackendHybrid} {
		t.Run(backend.String(), func(t *testing.T) {
			want := runSorted(t, node, "aggties0", backend)
			for run := 1; run < 20; run++ {
				got := runSorted(t, node, fmt.Sprintf("aggties%d", run), backend)
				if got != want {
					t.Fatalf("run %d ordered tied groups differently:\nfirst:\n%s\nrun:\n%s", run, want, got)
				}
			}
		})
	}
}

func TestDeterminismTiedSortWithLimit(t *testing.T) {
	// With a LIMIT cutting through a tie group, the selected rows themselves
	// depend on tie order — the tie-break makes the selection stable too.
	tbl := storage.NewTable("limties", types.Schema{
		{Name: "g", Kind: types.Int64},
		{Name: "v", Kind: types.Int64},
	})
	for i := 0; i < 1000; i++ {
		tbl.AppendRow(int64(i%2), int64(i))
	}
	node := algebra.NewOrderBy(algebra.NewProject(algebra.NewScan(tbl, "g", "v"), "g", "v"),
		[]string{"g"}, []bool{false}, 7)
	want := runSorted(t, node, "lim0", BackendVectorized)
	if strings.Count(want, "\n") != 7 {
		t.Fatalf("limit not applied:\n%s", want)
	}
	for run := 1; run < 20; run++ {
		if got := runSorted(t, node, fmt.Sprintf("lim%d", run), BackendVectorized); got != want {
			t.Fatalf("run %d selected different rows under LIMIT:\nfirst:\n%s\nrun:\n%s", run, want, got)
		}
	}
}

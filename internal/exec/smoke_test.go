package exec

import (
	"fmt"
	"sort"
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/ir"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
	"inkfuse/internal/volcano"
)

// makeTable builds a small deterministic test table.
func makeTable() *storage.Table {
	t := storage.NewTable("t", types.Schema{
		{Name: "a", Kind: types.Int64},
		{Name: "b", Kind: types.Float64},
		{Name: "s", Kind: types.String},
		{Name: "d", Kind: types.Date},
	})
	labels := []string{"red", "green", "blue"}
	for i := 0; i < 5000; i++ {
		t.AppendRow(int64(i%97), float64(i%13)+0.5, labels[i%3], types.MkDate(1995, 1, 1+i%28))
	}
	return t
}

// rowsAsStrings renders chunk rows for order-insensitive comparison.
func rowsAsStrings(c *storage.Chunk) []string {
	out := make([]string, c.Rows())
	for i := range out {
		out[i] = fmt.Sprintf("%.6v", c.Row(i))
	}
	return out
}

// checkAgainstVolcano runs the plan on every backend and compares with the
// Volcano oracle.
func checkAgainstVolcano(t *testing.T, node algebra.Node, name string) {
	t.Helper()
	want, err := volcano.Run(node)
	if err != nil {
		t.Fatalf("volcano: %v", err)
	}
	wantRows := rowsAsStrings(want)
	sort.Strings(wantRows)

	for _, backend := range []Backend{BackendVectorized, BackendCompiling, BackendROF, BackendHybrid} {
		plan, err := algebra.Lower(node, name)
		if err != nil {
			t.Fatalf("lower: %v", err)
		}
		lat := LatencyNone
		res, err := Execute(plan, Options{Backend: backend, Workers: 2, Latency: &lat})
		if err != nil {
			t.Fatalf("%v: execute: %v", backend, err)
		}
		gotRows := rowsAsStrings(res.Chunk)
		sort.Strings(gotRows)
		if len(gotRows) != len(wantRows) {
			t.Fatalf("%v: got %d rows, want %d", backend, len(gotRows), len(wantRows))
		}
		for i := range gotRows {
			if gotRows[i] != wantRows[i] {
				t.Fatalf("%v: row %d:\n got  %s\n want %s", backend, i, gotRows[i], wantRows[i])
			}
		}
	}
}

func TestSmokeScanFilterMap(t *testing.T) {
	tbl := makeTable()
	node := algebra.NewMap(
		algebra.NewFilter(algebra.NewScan(tbl, "a", "b"), algebra.Gt(algebra.Col("a"), algebra.I64(50))),
		algebra.NamedExpr{As: "c", E: algebra.Mul(algebra.Col("b"), algebra.F64(2))},
	)
	checkAgainstVolcano(t, algebra.NewProject(node, "a", "c"), "smoke1")
}

func TestSmokeGroupBy(t *testing.T) {
	tbl := makeTable()
	node := algebra.NewGroupBy(
		algebra.NewScan(tbl, "s", "b", "a"),
		[]string{"s"},
		algebra.Sum("b", "sum_b"),
		algebra.Count("n"),
		algebra.Avg("b", "avg_b"),
		algebra.MinOf("b", "min_b"),
		algebra.MaxOf("b", "max_b"),
	)
	checkAgainstVolcano(t, node, "smoke2")
}

func TestSmokeStaticAgg(t *testing.T) {
	tbl := makeTable()
	node := algebra.NewGroupBy(
		algebra.NewFilter(algebra.NewScan(tbl, "b", "d"),
			algebra.Lt(algebra.Col("d"), algebra.DateLit("1995-01-15"))),
		nil,
		algebra.Sum("b", "rev"),
	)
	checkAgainstVolcano(t, node, "smoke3")
}

func TestSmokeJoin(t *testing.T) {
	tbl := makeTable()
	dim := storage.NewTable("dim", types.Schema{
		{Name: "k", Kind: types.Int64},
		{Name: "label", Kind: types.String},
		{Name: "w", Kind: types.Float64},
	})
	for i := 0; i < 40; i++ {
		dim.AppendRow(int64(i), fmt.Sprintf("lab%d", i%7), float64(i)*1.5)
	}
	join := &algebra.HashJoin{
		Build:     algebra.NewScan(dim, "k", "label", "w"),
		Probe:     algebra.NewScan(tbl, "a", "b"),
		BuildKeys: []string{"k"},
		ProbeKeys: []string{"a"},
		BuildCols: []string{"label", "w"},
		Mode:      ir.InnerJoin,
	}
	node := algebra.NewGroupBy(join, []string{"label"},
		algebra.Sum("b", "sum_b"), algebra.Count("n"))
	checkAgainstVolcano(t, node, "smoke4")
}

func TestSmokeSemiAndOuterJoin(t *testing.T) {
	tbl := makeTable()
	dim := storage.NewTable("dim2", types.Schema{
		{Name: "k", Kind: types.Int64},
	})
	for i := 0; i < 30; i += 2 {
		dim.AppendRow(int64(i))
		dim.AppendRow(int64(i)) // duplicate keys on the build side
	}
	semi := &algebra.HashJoin{
		Build:     algebra.NewScan(dim, "k"),
		Probe:     algebra.NewScan(tbl, "a", "b"),
		BuildKeys: []string{"k"},
		ProbeKeys: []string{"a"},
		Mode:      ir.SemiJoin,
	}
	checkAgainstVolcano(t, algebra.NewGroupBy(semi, nil, algebra.Sum("b", "s"), algebra.Count("n")), "semi")

	outer := &algebra.HashJoin{
		Build:     algebra.NewScan(dim, "k"),
		Probe:     algebra.NewScan(tbl, "a"),
		BuildKeys: []string{"k"},
		ProbeKeys: []string{"a"},
		Mode:      ir.LeftOuterJoin,
		MatchedAs: "m",
	}
	node := algebra.NewGroupBy(outer, []string{"a"}, algebra.CountIf("m", "hits"))
	checkAgainstVolcano(t, node, "outer")
}

func TestSmokeOrderBy(t *testing.T) {
	tbl := makeTable()
	g := algebra.NewGroupBy(algebra.NewScan(tbl, "s", "b"), []string{"s"}, algebra.Sum("b", "sum_b"))
	ob := algebra.NewOrderBy(g, []string{"sum_b"}, []bool{true}, 2)

	want, err := volcano.Run(ob)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := algebra.Lower(ob, "orderby")
	if err != nil {
		t.Fatal(err)
	}
	lat := LatencyNone
	res, err := Execute(plan, Options{Backend: BackendVectorized, Latency: &lat})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != want.Rows() {
		t.Fatalf("rows: got %d want %d", res.Rows(), want.Rows())
	}
	for i := 0; i < want.Rows(); i++ {
		g := fmt.Sprintf("%.6v", res.Chunk.Row(i))
		w := fmt.Sprintf("%.6v", want.Row(i))
		if g != w {
			t.Fatalf("row %d: got %s want %s", i, g, w)
		}
	}
}

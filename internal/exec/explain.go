package exec

import (
	"context"
	"fmt"
	"strings"
	"time"

	"inkfuse/internal/core"
	"inkfuse/internal/trace"
)

// ExplainAnalyze executes the plan with tracing enabled and renders the
// suboperator plan annotated with the measured per-pipeline numbers: morsel
// counts, worker busy-time distribution, compile timing, the hybrid
// backend's routing split and EWMA estimates, and finalization time. It
// works for all four backends. On failure the rendering of the partial trace
// is returned alongside the error.
//
// Profiling is enabled too: on backends serving through the vectorized
// interpreter the annotations include a per-suboperator time/tuple breakdown
// from the sampled chunk profiler.
func ExplainAnalyze(ctx context.Context, plan *core.Plan, opts Options) (string, *Result, error) {
	opts.Trace = true
	opts.Profile = true
	res, err := ExecuteContext(ctx, plan, opts)
	if res == nil {
		return "", nil, err
	}
	return RenderExplainAnalyze(plan, res), res, err
}

// RenderExplainAnalyze renders a plan against an executed Result carrying a
// trace (Options.Trace). Pipelines beyond the trace (not reached before a
// failure) render without annotations.
func RenderExplainAnalyze(plan *core.Plan, res *Result) string {
	var b strings.Builder
	qt := res.Trace
	fmt.Fprintf(&b, "== explain analyze %s", plan.Name)
	if qt != nil {
		fmt.Fprintf(&b, ": backend=%s workers=%d", qt.Backend, qt.Workers)
	}
	fmt.Fprintf(&b, " wall=%v rows=%d\n", res.Wall.Round(time.Microsecond), res.Rows())
	if qt != nil && qt.Err != "" {
		fmt.Fprintf(&b, "!! failed: %s\n", qt.Err)
	}
	for i, pipe := range plan.Pipelines {
		b.WriteString(pipe.Describe())
		if qt == nil || i >= len(qt.Pipelines) {
			if qt != nil {
				b.WriteString("  -- not executed\n")
			}
			continue
		}
		writePipelineAnalysis(&b, qt.Pipelines[i], qt.Workers)
	}
	if plan.Sort != nil {
		fmt.Fprintf(&b, "post: order by %v desc=%v limit=%d\n", plan.Sort.Keys, plan.Sort.Desc, plan.Sort.Limit)
	}
	writeQueryFooter(&b, res)
	return b.String()
}

func writePipelineAnalysis(b *strings.Builder, pt *trace.Pipeline, workers int) {
	fmt.Fprintf(b, "  -- %d rows in %d morsels", pt.Rows, pt.Morsels)
	if run := pt.MorselsRun(); run != pt.Morsels {
		fmt.Fprintf(b, " (%d run before the query stopped)", run)
	}
	busy := pt.Busy()
	fmt.Fprintf(b, "; busy %v across %d workers", busy.Round(time.Microsecond), workers)
	if lo, med, hi, ok := pt.BusyQuantiles(); ok {
		fmt.Fprintf(b, " (min %v / med %v / max %v)",
			lo.Round(time.Microsecond), med.Round(time.Microsecond), hi.Round(time.Microsecond))
	}
	b.WriteByte('\n')
	if pt.CompileTime > 0 || pt.CompileWait > 0 || pt.CompileErrors > 0 || pt.Degraded {
		fmt.Fprintf(b, "  -- compile: %v", pt.CompileTime.Round(time.Microsecond))
		if pt.CompileWait > 0 {
			fmt.Fprintf(b, " (dead wait %v)", pt.CompileWait.Round(time.Microsecond))
		}
		if pt.ArtifactReady > 0 {
			fmt.Fprintf(b, ", artifact ready at +%v", pt.ArtifactReady.Round(time.Microsecond))
		}
		if pt.CompileErrors > 0 {
			fmt.Fprintf(b, ", %d compile error(s)", pt.CompileErrors)
		}
		if pt.Degraded {
			b.WriteString(" — DEGRADED to vectorized-only")
		}
		b.WriteByte('\n')
	}
	if len(pt.SubOps) > 0 {
		var total int64
		for _, s := range pt.SubOps {
			total += s.Nanos
		}
		fmt.Fprintf(b, "  -- subops: sampled 1/%d chunks (%d profiled)\n", pt.ProfileEvery, pt.ProfiledChunks)
		for _, s := range pt.SubOps {
			share := 0.0
			if total > 0 {
				share = 100 * float64(s.Nanos) / float64(total)
			}
			fmt.Fprintf(b, "       %-44s %5.1f%% %10v  calls=%-6d tuples=%-9d ns/tuple=%.1f\n",
				s.ID, share, time.Duration(s.Nanos).Round(time.Microsecond), s.Calls, s.Tuples, s.NanosPerTuple())
		}
	}
	if lh, sp, bs := pt.LocalHits(), pt.Spills(), pt.BloomSkips(); lh+sp+bs > 0 {
		fmt.Fprintf(b, "  -- tables: local_hits=%d spills=%d bloom_skips=%d\n", lh, sp, bs)
	}
	if rt := pt.Routed(); rt > 0 || len(pt.PartRows) > 0 {
		fmt.Fprintf(b, "  -- exchange: routed=%d over %d partitions, max partition %d rows",
			rt, len(pt.PartRows), pt.MaxPartRows())
		if rt > 0 && len(pt.PartRows) > 0 {
			// Skew factor: max partition vs the perfectly uniform share.
			uniform := float64(rt) / float64(len(pt.PartRows))
			if uniform > 0 {
				fmt.Fprintf(b, " (skew %.2fx)", float64(pt.MaxPartRows())/uniform)
			}
		}
		b.WriteByte('\n')
	}
	jit, vec := pt.RoutedJIT(), pt.RoutedVectorized()
	if jit+vec > 0 {
		fmt.Fprintf(b, "  -- routing: %d jit / %d vectorized", jit, vec)
		if jit+vec == pt.MorselsRun() && jit+vec > 0 {
			fmt.Fprintf(b, " (%.0f%% jit)", 100*float64(jit)/float64(jit+vec))
		}
		if ej, ev := pt.FinalEWMA(); ej > 0 || ev > 0 {
			fmt.Fprintf(b, "; ewma jit=%s vec=%s", trace.FormatTput(ej), trace.FormatTput(ev))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "  -- finalize %v; pipeline wall %v\n",
		pt.Finalize.Round(time.Microsecond), pt.Wall.Round(time.Microsecond))
}

func writeQueryFooter(b *strings.Builder, res *Result) {
	s := &res.Stats
	fmt.Fprintf(b, "== totals: tuples=%d vm-ops/tuple=%s buffer-bytes/tuple=%s ht-probes/tuple=%s\n",
		s.Tuples, s.PerTuple(s.VMOps), s.PerTuple(s.MaterializedBytes), s.PerTuple(s.HTProbes))
	if s.HTLocalHits+s.HTSpills+s.HTBloomSkips > 0 {
		fmt.Fprintf(b, "== tables: local_hits=%d spills=%d bloom_skips=%d\n",
			s.HTLocalHits, s.HTSpills, s.HTBloomSkips)
	}
	if s.PartRoutedRows > 0 {
		fmt.Fprintf(b, "== exchange: routed=%d max_partition=%d rows\n",
			s.PartRoutedRows, s.PartMaxPartRows)
	}
	fmt.Fprintf(b, "== compile: time=%v wait=%v errors=%d; panics-recovered=%d",
		s.CompileTime.Round(time.Microsecond), s.CompileWait.Round(time.Microsecond),
		s.CompileErrors, s.PanicsRecovered)
	if s.MemPeakBytes > 0 {
		fmt.Fprintf(b, "; mem-peak=%d bytes", s.MemPeakBytes)
	}
	b.WriteByte('\n')
	for _, w := range res.Warnings {
		fmt.Fprintf(b, "== warning: %v\n", w)
	}
}

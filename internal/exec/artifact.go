package exec

import (
	"sync"
	"sync/atomic"

	"inkfuse/internal/ir"
)

// ArtifactSet collects the compiled artifacts of one lowered plan instance so
// repeated executions skip recompilation (and its modeled latency): the
// compiling and hybrid backends share whole-pipeline fused steps, the ROF
// backend keeps its per-split step chains. Artifacts close over the plan's
// runtime state objects, so a set is only valid for executions of the exact
// plan instance it was built from — the plancache leases plan and set
// together and never runs two executions over them concurrently.
//
// All methods are nil-receiver safe: callers without a cache simply leave
// Options.Artifacts nil.
type ArtifactSet struct {
	mu       sync.Mutex
	fused    map[int]*fusedStep   // pipeline index → whole-pipeline artifact
	rof      map[int][]*fusedStep // pipeline index → ROF step chain
	compiles atomic.Int64
}

// NewArtifactSet creates an empty set.
func NewArtifactSet() *ArtifactSet {
	return &ArtifactSet{fused: make(map[int]*fusedStep), rof: make(map[int][]*fusedStep)}
}

// Compiles reports how many compilation runs deposited into the set — the
// "did the second execution recompile?" observable.
func (a *ArtifactSet) Compiles() int64 {
	if a == nil {
		return 0
	}
	return a.compiles.Load()
}

// FusedPipelines reports how many pipelines have a landed whole-pipeline
// artifact.
func (a *ArtifactSet) FusedPipelines() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.fused)
}

// CostBytes estimates the set's memory footprint for cache accounting: the
// IR node count of every stored artifact, scaled by a nominal bytes-per-node.
func (a *ArtifactSet) CostBytes() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	const bytesPerNode = 64
	var nodes int64
	for _, s := range a.fused {
		nodes += int64(ir.Size(s.fn))
	}
	for _, chain := range a.rof {
		for _, s := range chain {
			nodes += int64(ir.Size(s.fn))
		}
	}
	return nodes * bytesPerNode
}

func (a *ArtifactSet) loadFused(pi int) *fusedStep {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fused[pi]
}

func (a *ArtifactSet) storeFused(pi int, s *fusedStep) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.fused[pi] = s
}

func (a *ArtifactSet) loadROF(pi int) []*fusedStep {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rof[pi]
}

func (a *ArtifactSet) storeROF(pi int, steps []*fusedStep) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rof[pi] = steps
}

func (a *ArtifactSet) noteCompile() {
	if a != nil {
		a.compiles.Add(1)
	}
}

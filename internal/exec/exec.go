package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"inkfuse/internal/core"
	"inkfuse/internal/interp"
	"inkfuse/internal/rt"
	"inkfuse/internal/stats"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
	"inkfuse/internal/vm"
)

// Options configures query execution.
type Options struct {
	Backend    Backend
	Workers    int           // default: GOMAXPROCS
	ChunkSize  int           // tuple-buffer rows, default 1024
	MorselSize int           // morsel rows, default 16384
	Latency    *LatencyModel // compile latency model; default LatencyC (nil) — ignored by the vectorized backend
	// CompileJobs bounds the hybrid backend's concurrent background
	// compilations ("compilation overhead can be bounded by limiting the
	// number of concurrent compilation jobs", paper §V-B). 0 = one job per
	// pipeline, the paper's default.
	CompileJobs int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = storage.DefaultChunkCap
	}
	if o.MorselSize <= 0 {
		o.MorselSize = storage.DefaultMorselRows
	}
	if o.Latency == nil {
		l := LatencyC
		o.Latency = &l
	}
	return o
}

// Result is a completed query.
type Result struct {
	Cols  []string
	Chunk *storage.Chunk
	Stats stats.Counters
	// Wall is the end-to-end execution time.
	Wall time.Duration
}

// Rows returns the number of result rows.
func (r *Result) Rows() int { return r.Chunk.Rows() }

// runner executes one pipeline's morsels for one backend.
type runner interface {
	runMorsel(w int, ctx *vm.Ctx, src []*storage.Vector, n int, out *storage.Chunk)
	// finish is called once the pipeline completes (cancels background work)
	// and returns compile statistics to fold into the query stats.
	finish() (compileTime, compileWait time.Duration)
}

// Execute runs a lowered plan and returns its result.
func Execute(plan *core.Plan, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()

	var reg *interp.Registry
	if opts.Backend != BackendCompiling && opts.Backend != BackendROF {
		var err error
		if reg, err = interp.Default(); err != nil {
			return nil, err
		}
	}

	ctxs := make([]*vm.Ctx, opts.Workers)
	for i := range ctxs {
		ctxs[i] = vm.NewCtx()
	}

	var res stats.Counters
	var finalChunks []*storage.Chunk

	// The hybrid backend starts background compilation for every pipeline as
	// soon as the query enters the system (paper §V-B): by the time a later
	// pipeline runs, its fused code is usually already waiting.
	var bgs []*hybridCompile
	if opts.Backend == BackendHybrid {
		bgs = startHybridCompiles(plan.Pipelines, *opts.Latency, opts.CompileJobs)
		defer func() {
			for _, h := range bgs {
				h.abandon()
			}
		}()
	}

	for pi, pipe := range plan.Pipelines {
		binder, err := bindSource(pipe)
		if err != nil {
			return nil, fmt.Errorf("exec: %s/%s: %w", plan.Name, pipe.Name, err)
		}
		var bg *hybridCompile
		if bgs != nil {
			bg = bgs[pi]
		}
		r, err := newRunner(pipe, opts, reg, bg)
		if err != nil {
			return nil, fmt.Errorf("exec: %s/%s: %w", plan.Name, pipe.Name, err)
		}

		var outs []*storage.Chunk
		if pipe.Result != nil {
			outs = make([]*storage.Chunk, opts.Workers)
			for i := range outs {
				outs[i] = storage.NewChunk(pipe.ResultKinds())
			}
		}

		morsels := storage.Morsels(binder.total, opts.MorselSize)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := ctxs[w]
				var out *storage.Chunk
				if outs != nil {
					out = outs[w]
				}
				for {
					i := int(next.Add(1)) - 1
					if i >= len(morsels) {
						return
					}
					src, n := binder.bind(morsels[i])
					r.runMorsel(w, ctx, src, n, out)
					ctx.Counters.Tuples += int64(n)
				}
			}(w)
		}
		wg.Wait()

		ct, cw := r.finish()
		res.CompileTime += ct
		res.CompileWait += cw

		if err := finalizePipeline(pipe, ctxs); err != nil {
			return nil, err
		}
		if pipe.Result != nil {
			finalChunks = outs
		}
	}

	for _, ctx := range ctxs {
		res.Add(&ctx.Counters)
	}

	kinds, err := plan.FinalKinds()
	if err != nil {
		return nil, err
	}
	out := storage.NewChunk(kinds)
	for _, c := range finalChunks {
		out.AppendChunk(c)
	}
	if plan.Sort != nil {
		out = sortChunk(out, plan.Sort)
	}
	return &Result{Cols: plan.ColNames, Chunk: out, Stats: res, Wall: time.Since(start)}, nil
}

// sourceBinder adapts a pipeline source to morsel-range vector bindings.
type sourceBinder struct {
	total int
	bind  func(m storage.Morsel) ([]*storage.Vector, int)
}

func bindSource(pipe *core.Pipeline) (sourceBinder, error) {
	switch s := pipe.Source.(type) {
	case *core.TableScan:
		cols := make([]*storage.Vector, len(s.Cols))
		for i, ci := range s.Cols {
			cols[i] = s.Table.Cols[ci]
		}
		return sourceBinder{
			total: s.Table.Rows(),
			bind: func(m storage.Morsel) ([]*storage.Vector, int) {
				vs := make([]*storage.Vector, len(cols))
				for i, c := range cols {
					vs[i] = c.Slice(m.Start, m.End)
				}
				return vs, m.Rows()
			},
		}, nil
	case *core.AggRead:
		if s.State.Global == nil {
			return sourceBinder{}, fmt.Errorf("aggregate source read before its build pipeline completed")
		}
		snap := s.State.Global.Snapshot()
		return sourceBinder{
			total: len(snap),
			bind: func(m storage.Morsel) ([]*storage.Vector, int) {
				v := &storage.Vector{Kind: types.Ptr, Ptr: snap[m.Start:m.End]}
				return []*storage.Vector{v}, m.Rows()
			},
		}, nil
	default:
		return sourceBinder{}, fmt.Errorf("unknown source %T", pipe.Source)
	}
}

func finalizePipeline(pipe *core.Pipeline, ctxs []*vm.Ctx) error {
	for _, js := range pipe.SealJoins {
		js.Table.Seal()
	}
	if len(pipe.MergeAggs) == 0 {
		return nil
	}
	taken := make([]map[*rt.AggTableState]*rt.AggTable, len(ctxs))
	for i, ctx := range ctxs {
		taken[i] = ctx.TakeAggTables()
	}
	for _, fin := range pipe.MergeAggs {
		var parts []*rt.AggTable
		for _, m := range taken {
			if t, ok := m[fin.State]; ok {
				parts = append(parts, t)
			}
		}
		var global *rt.AggTable
		switch len(parts) {
		case 0:
			global = fin.State.NewInstance()
		case 1:
			global = parts[0]
		default:
			global = fin.State.NewInstance()
			for _, p := range parts {
				fin.State.MergeInto(global, p)
			}
		}
		if fin.Keyless && global.Groups() == 0 {
			// SQL semantics: aggregates without GROUP BY produce one row
			// even on empty input. The forced group reads as zeros (stand-in
			// for SQL NULL; MIN/MAX init sentinels must not leak out).
			row := global.FindOrCreate(nil, rt.Hash64(nil))
			payload := row[rt.RowPayloadOff(row):]
			for i := range payload {
				payload[i] = 0
			}
		}
		fin.State.Global = global
	}
	return nil
}

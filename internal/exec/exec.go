package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"inkfuse/internal/core"
	"inkfuse/internal/faultinject"
	"inkfuse/internal/flight"
	"inkfuse/internal/interp"
	"inkfuse/internal/metrics"
	"inkfuse/internal/obs"
	"inkfuse/internal/rt"
	"inkfuse/internal/sched"
	"inkfuse/internal/stats"
	"inkfuse/internal/storage"
	"inkfuse/internal/trace"
	"inkfuse/internal/types"
	"inkfuse/internal/vm"
)

// Options configures query execution.
type Options struct {
	Backend    Backend
	Workers    int           // default: GOMAXPROCS
	ChunkSize  int           // tuple-buffer rows, default 1024
	MorselSize int           // morsel rows, default 16384
	Latency    *LatencyModel // compile latency model; default LatencyC (nil) — ignored by the vectorized backend
	// CompileJobs bounds the hybrid backend's concurrent background
	// compilations ("compilation overhead can be bounded by limiting the
	// number of concurrent compilation jobs", paper §V-B). 0 = one job per
	// pipeline, the paper's default.
	CompileJobs int
	// MemoryBudget caps the bytes of query-owned runtime state (hash-table
	// arenas and bookkeeping). A query that crosses the cap fails with
	// ErrMemoryBudget instead of pressuring the process. 0 = unlimited.
	MemoryBudget int64
	// Trace enables the per-query execution trace (Result.Trace): per
	// pipeline the morsel counts, per-worker busy time, hybrid routing
	// decisions and EWMA series, compile timing, and finalization time.
	// Off by default; when off the morsel loop skips all trace work behind
	// one nil check per morsel (no per-row cost either way).
	Trace bool
	// Profile enables the sampled per-suboperator profiler on backends that
	// serve morsels through the vectorized interpreter (vectorized, hybrid):
	// one in every ProfileEvery chunks runs through a timed step loop that
	// attributes nanoseconds and input tuples to each suboperator primitive.
	// Results land in the trace (Pipeline.SubOps) and EXPLAIN ANALYZE. Off by
	// default; when off the chunk loop pays a single nil check.
	Profile bool
	// ProfileEvery is the profiler's sampling period in chunks;
	// 0 = interp.DefaultProfileEvery.
	ProfileEvery int
	// Pool is the engine-wide scheduler this query dispatches its morsels
	// into. nil = sched.Shared(), the process-wide default pool with
	// unlimited admission. Servers pass their own admission-controlled pool.
	// Workers stays the query's parallelism: it is the in-flight morsel cap
	// and per-query state fan-out (slot count), independent of the pool size.
	Pool *sched.Pool
	// VerifyIR runs core.VerifyPlan on the plan before execution: IU
	// def-use/single-producer checks, edge kind consistency, and pipeline
	// breaker placement. A rejected plan fails with ErrInvalidPlan before any
	// worker state is built. Off by default (lowering is trusted in
	// production); tests and the serving layer's strict mode turn it on.
	VerifyIR bool
	// Artifacts, when non-nil, caches compiled pipeline artifacts across
	// executions of the same plan instance: the compiling/ROF/hybrid backends
	// consult it before compiling and deposit what they compile. Artifacts
	// close over the plan's runtime state, so the set must only ever be used
	// with the plan it was built from (the plancache enforces this by leasing
	// plan and set together).
	Artifacts *ArtifactSet
	// QueryID is the engine-wide query id keying flight-recorder events and
	// trace/span correlation. 0 = allocate one (NextQueryID); servers assign
	// ids up front so admission failures are already attributable.
	QueryID uint64
	// TraceID and ParentSpanID carry W3C trace-context correlation from the
	// serving layer into the query trace (and from there into exported
	// spans). Empty = uncorrelated; the span renderer then derives a
	// deterministic trace id from QueryID.
	TraceID      string
	ParentSpanID string
	// Fingerprint is the plan-cache fingerprint of SQL-built plans, threaded
	// into scheduler QueryInfos and the canonical query log.
	Fingerprint string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = storage.DefaultChunkCap
	}
	if o.MorselSize <= 0 {
		o.MorselSize = storage.DefaultMorselRows
	}
	if o.Latency == nil {
		l := LatencyC
		o.Latency = &l
	}
	return o
}

// Result is a completed query.
type Result struct {
	Cols  []string
	Chunk *storage.Chunk
	Stats stats.Counters
	// QueryID is the engine-wide id this execution ran under (Options.QueryID
	// or freshly allocated) — the key for flight-recorder correlation.
	QueryID uint64
	// QueueWait is the time spent in the scheduler's admission queue before
	// the query started executing.
	QueueWait time.Duration
	// Wall is the end-to-end execution time.
	Wall time.Duration
	// Warnings reports non-fatal degradations (e.g. a hybrid background
	// compile failed and the pipeline ran vectorized-only).
	Warnings []error
	// Trace is the execution trace, present when Options.Trace was set. A
	// failed or canceled query carries a coherent partial trace of the
	// pipelines that ran.
	Trace *trace.Query
}

// Rows returns the number of result rows.
func (r *Result) Rows() int {
	if r.Chunk == nil {
		return 0
	}
	return r.Chunk.Rows()
}

// runner executes one pipeline's morsels for one backend.
type runner interface {
	runMorsel(w int, ctx *vm.Ctx, src []*storage.Vector, n int, out *storage.Chunk)
	// finish is called once the pipeline completes (cancels background work)
	// and returns compile statistics to fold into the query stats.
	finish() finishInfo
}

// finishInfo is the per-pipeline accounting a runner hands back.
type finishInfo struct {
	compileTime, compileWait time.Duration
	compileErrors            int64
	// degraded is the permanent background-compile failure of a hybrid
	// pipeline (nil otherwise); surfaced as a Result warning.
	degraded error
	// artifactReady is when the hybrid background artifact landed (zero if
	// never); recorded into the pipeline trace.
	artifactReady time.Time
	// subops is the merged per-suboperator profile (Options.Profile, backends
	// serving through the vectorized interpreter), with its sampling period
	// and the total number of chunks timed across workers.
	subops         []interp.SubOpSample
	profileEvery   int
	profiledChunks int64
}

// queryState is the shared lifecycle of one executing query: the first
// failure wins, every later morsel pull observes it and drains cleanly.
type queryState struct {
	ctx  context.Context
	down atomic.Bool

	mu  sync.Mutex
	err error
}

// fail records the query's failure; the first error is kept.
func (q *queryState) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
	q.down.Store(true)
}

// stopped reports whether workers must stop pulling morsels, folding context
// cancellation into the failure state.
func (q *queryState) stopped() bool {
	if q.down.Load() {
		return true
	}
	if err := q.ctx.Err(); err != nil {
		q.fail(ctxCause(err))
		return true
	}
	return false
}

// failure returns the recorded error, if any.
func (q *queryState) failure() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// errQueryStopped is the sentinel a morsel task returns when the query has
// already failed or been canceled: it stops the task set early without
// introducing a new error (the real failure lives in queryState).
var errQueryStopped = errors.New("exec: query stopped")

// queryIDSeq backs NextQueryID.
var queryIDSeq atomic.Uint64

// NextQueryID allocates a fresh engine-wide query id. Serving layers call it
// before admission so a shed or timed-out query already has an id its flight
// events attach to; ExecuteContext allocates one itself when Options.QueryID
// is zero.
func NextQueryID() uint64 { return queryIDSeq.Add(1) }

// Execute runs a lowered plan and returns its result.
func Execute(plan *core.Plan, opts Options) (*Result, error) {
	return ExecuteContext(context.Background(), plan, opts)
}

// ExecuteContext runs a lowered plan under a context. Cancellation and
// deadlines are observed at morsel granularity and inside compilation waits;
// the returned error wraps ErrCanceled / ErrDeadlineExceeded. Panics in
// query code and memory-budget violations fail only this query (typed as
// ErrPanic / ErrMemoryBudget inside a *QueryError): workers drain, the
// process and subsequent queries keep running. On failure the returned
// *Result is non-nil with Stats (no Chunk) for diagnostics.
func ExecuteContext(ctx context.Context, plan *core.Plan, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.VerifyIR {
		if err := core.VerifyPlan(plan); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrInvalidPlan, err)
		}
	}
	start := time.Now()
	qs := &queryState{ctx: ctx}
	metrics.Default.QueryStarted()
	backend := opts.Backend.String()
	// The per-morsel latency histogram child is resolved once per query; the
	// morsel loop observes through the pointer (two atomic adds per morsel).
	morselHist := obs.Default.MorselLatency.With(backend)

	// Every execution runs under an engine-wide query id: the key its flight
	// events, scheduler QueryInfos row, and exported spans share. The query
	// label is interned once here so no later recording site touches the
	// intern table.
	qid := opts.QueryID
	if qid == 0 {
		qid = NextQueryID()
	}
	opts.QueryID = qid // runners key their compile events on it
	qlabel := flight.Default.Intern(plan.Name)
	flight.Default.Record(flight.KindQueryStart, qid, qlabel, int64(opts.Backend), 0)

	// Admission: the query enters the engine-wide scheduler before it builds
	// any state. A rejected query (queue full, draining, over-capacity, or a
	// context that expired while queued) never ran — no worker contexts, no
	// tables, no partial trace.
	pool := opts.Pool
	if pool == nil {
		pool = sched.Shared()
	}
	adm, err := pool.AdmitWith(ctx, sched.AdmitInfo{
		ID: qid, Name: plan.Name, Backend: backend, Fingerprint: opts.Fingerprint,
		Mem: opts.MemoryBudget, Parallelism: opts.Workers,
	})
	if err != nil {
		err = admissionError(err)
		wall := time.Since(start)
		canceled := errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded)
		metrics.Default.QueryDone(nil, wall, err, canceled, false)
		obs.Default.ObserveQuery(backend, wall, 0)
		flight.Default.Record(flight.KindQueryError, qid, qlabel, int64(wall), 0)
		return nil, err
	}
	defer adm.Release()
	queueWait := adm.QueueWait()

	// qt is nil unless tracing was requested; every recording site below is
	// guarded on it at morsel granularity or coarser.
	var qt *trace.Query
	if opts.Trace {
		qt = trace.NewQuery(plan.Name, opts.Backend.String(), opts.Workers, start)
		qt.ID = qid
		qt.TraceID = opts.TraceID
		qt.ParentSpanID = opts.ParentSpanID
		qt.QueueWait = queueWait
	}

	var reg *interp.Registry
	if opts.Backend != BackendCompiling && opts.Backend != BackendROF {
		var err error
		if reg, err = interp.Default(); err != nil {
			wall := time.Since(start)
			metrics.Default.QueryDone(nil, wall, err, false, false)
			obs.Default.ObserveQuery(backend, wall, 0)
			flight.Default.Record(flight.KindQueryError, qid, qlabel, int64(wall), 0)
			return nil, err
		}
	}

	// The memory budget covers every table the query builds: the join tables
	// created at lowering, the workers' pre-aggregation tables (wired through
	// vm.Ctx), and the merged globals built at finalization.
	var budget *rt.MemBudget
	if opts.MemoryBudget > 0 {
		budget = rt.NewMemBudget(opts.MemoryBudget)
		for _, pipe := range plan.Pipelines {
			for _, js := range pipe.SealJoins {
				js.SetBudget(budget)
			}
			for _, fin := range pipe.MergeAggs {
				if fin.State.Parted != nil {
					fin.State.Parted.SetBudget(budget)
				}
			}
			for _, ex := range pipe.SealExchanges {
				ex.SetBudget(budget)
			}
		}
	}

	ctxs := make([]*vm.Ctx, opts.Workers)
	for i := range ctxs {
		ctxs[i] = vm.NewCtx()
		ctxs[i].Budget = budget
	}

	var res stats.Counters
	var finalChunks []*storage.Chunk
	var warnings []error

	// failed builds the diagnostic result returned alongside a query error:
	// stats are merged so recovered-panic and compile-error counts survive,
	// and the partial trace (pipelines that ran) stays attached.
	failed := func(err error) (*Result, error) {
		for _, c := range ctxs {
			res.Add(&c.Counters)
		}
		res.MemPeakBytes = budget.Peak()
		wall := time.Since(start)
		if qt != nil {
			qt.Wall = wall
			qt.Err = err.Error()
		}
		canceled := errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded)
		metrics.Default.QueryDone(&res, wall, err, canceled, false)
		obs.Default.ObserveQuery(backend, wall, res.Tuples)
		flight.Default.Record(flight.KindQueryError, qid, qlabel, int64(wall), 0)
		return &Result{
			Cols: plan.ColNames, Stats: res, QueryID: qid, QueueWait: queueWait,
			Wall: wall, Warnings: warnings, Trace: qt,
		}, err
	}

	// The hybrid backend starts background compilation for every pipeline as
	// soon as the query enters the system (paper §V-B): by the time a later
	// pipeline runs, its fused code is usually already waiting.
	var bgs []*hybridCompile
	if opts.Backend == BackendHybrid {
		bgs = startHybridCompiles(ctx, qid, plan.Pipelines, *opts.Latency, opts.CompileJobs, opts.Artifacts)
		defer func() {
			for _, h := range bgs {
				h.abandon()
			}
		}()
	}

	for pi, pipe := range plan.Pipelines {
		if qs.stopped() {
			return failed(qs.failure())
		}
		pipeStart := time.Now()
		binder, err := bindSource(pipe)
		if err != nil {
			return failed(fmt.Errorf("exec: %s/%s: %w", plan.Name, pipe.Name, err))
		}
		morsels := binder.morsels
		if morsels == nil {
			morsels = storage.Morsels(binder.total, opts.MorselSize)
		}

		// Cardinality hint for this pipeline's aggregations: one worker sees
		// at most a morsel of rows between table growth checks, and never
		// more groups than source rows. The hint pre-sizes shard bucket
		// arrays so the batched kernels don't resize mid-chunk while holding
		// a shard lock. Set before the workers spawn (they read it when
		// lazily creating their instances).
		for _, fin := range pipe.MergeAggs {
			fin.State.SizeHint = min(binder.total, opts.MorselSize)
		}

		// The pipeline trace is started before runner construction so the
		// foreground backends' compile wait falls inside the pipeline wall.
		var pt *trace.Pipeline
		if qt != nil {
			pt = qt.StartPipeline(pipe.Name, binder.total, len(morsels))
			pt.Start = pipeStart.Sub(start)
		}

		var bg *hybridCompile
		if bgs != nil {
			bg = bgs[pi]
		}
		r, err := newRunner(ctx, pi, pipe, opts, reg, bg, pt)
		if err != nil {
			return failed(fmt.Errorf("exec: %s/%s: %w", plan.Name, pipe.Name, err))
		}

		var outs []*storage.Chunk
		if pipe.Result != nil {
			outs = make([]*storage.Chunk, opts.Workers)
			for i := range outs {
				outs[i] = storage.NewChunk(pipe.ResultKinds())
			}
		}

		// One flight event per pipeline dispatch — morsel-batch granularity,
		// never per morsel.
		flight.Default.RecordStr(flight.KindMorselBatch, qid, pipe.Name,
			int64(len(morsels)), int64(binder.total))

		// Morsels dispatch into the shared pool instead of per-query worker
		// goroutines. slot is the query-local worker slot in
		// [0, opts.Workers): the scheduler guarantees at most one in-flight
		// task per slot, so ctxs[slot] / outs[slot] / pt.Workers[slot] keep
		// their single-writer discipline even though different pool workers
		// serve the slot over the pipeline's lifetime.
		runErr := adm.Run(ctx, len(morsels), func(slot, i int) error {
			if qs.stopped() {
				return errQueryStopped
			}
			wctx := ctxs[slot]
			var out *storage.Chunk
			if outs != nil {
				out = outs[slot]
			}
			// Trace recording works by deltas over the slot's own counters,
			// so the runner's per-morsel accounting (tuples, hybrid routing)
			// is captured without touching hot paths. The morsel is always
			// timed: the duration feeds the process-wide latency histogram
			// even when tracing is off.
			var tup0, jit0, vec0, lh0, sp0, bs0, rt0 int64
			if pt != nil {
				tup0 = wctx.Counters.Tuples
				jit0 = wctx.Counters.MorselsCompiled
				vec0 = wctx.Counters.MorselsVectorized
				lh0 = wctx.Counters.HTLocalHits
				sp0 = wctx.Counters.HTSpills
				bs0 = wctx.Counters.HTBloomSkips
				rt0 = wctx.Counters.PartRoutedRows
			}
			t0 := time.Now()
			err := runMorselSafe(plan.Name, pipe.Name, opts.Backend, r, slot, i, wctx, binder, morsels[i], out)
			elapsed := time.Since(t0)
			morselHist.ObserveDuration(elapsed)
			if pt != nil {
				wt := &pt.Workers[slot]
				wt.Busy += elapsed
				wt.Morsels++
				wt.Tuples += wctx.Counters.Tuples - tup0
				wt.JIT += int(wctx.Counters.MorselsCompiled - jit0)
				wt.Vectorized += int(wctx.Counters.MorselsVectorized - vec0)
				wt.LocalHits += wctx.Counters.HTLocalHits - lh0
				wt.Spills += wctx.Counters.HTSpills - sp0
				wt.BloomSkips += wctx.Counters.HTBloomSkips - bs0
				wt.Routed += wctx.Counters.PartRoutedRows - rt0
			}
			if err != nil {
				qs.fail(err)
				return errQueryStopped
			}
			return nil
		})
		if runErr != nil && !errors.Is(runErr, errQueryStopped) {
			switch {
			case errors.Is(runErr, sched.ErrQueryCanceled):
				// Drain force-cancel: the scheduler shut down under this
				// query; report it as a cancellation.
				qs.fail(fmt.Errorf("%w: %w", ErrCanceled, runErr))
			case errors.Is(runErr, context.Canceled), errors.Is(runErr, context.DeadlineExceeded):
				qs.fail(ctxCause(runErr))
			default:
				qs.fail(runErr)
			}
		}

		fi := r.finish()
		res.CompileTime += fi.compileTime
		res.CompileWait += fi.compileWait
		res.CompileErrors += fi.compileErrors
		if fi.degraded != nil {
			warnings = append(warnings, fmt.Errorf(
				"exec: %s/%s: background compile failed, pipeline served by the vectorized interpreter: %w",
				plan.Name, pipe.Name, fi.degraded))
			flight.Default.RecordStr(flight.KindDegraded, qid, pipe.Name, 0, 0)
		}
		if pt != nil {
			pt.CompileTime = fi.compileTime
			pt.CompileWait = fi.compileWait
			pt.CompileErrors = fi.compileErrors
			pt.Degraded = fi.degraded != nil
			if !fi.artifactReady.IsZero() {
				pt.ArtifactReady = fi.artifactReady.Sub(start)
			}
			if len(fi.subops) > 0 {
				pt.ProfileEvery = fi.profileEvery
				pt.ProfiledChunks = fi.profiledChunks
				pt.SubOps = make([]trace.SubOpProf, len(fi.subops))
				for i, s := range fi.subops {
					pt.SubOps[i] = trace.SubOpProf{ID: s.ID, Calls: s.Calls, Tuples: s.Tuples, Nanos: s.Nanos}
				}
			}
		}

		if err := qs.failure(); err != nil {
			if pt != nil {
				pt.Wall = time.Since(pipeStart)
			}
			return failed(err)
		}
		finStart := time.Now()
		if err := finalizeSafe(plan.Name, pipe, opts.Backend, ctxs, budget); err != nil {
			if pt != nil {
				pt.Finalize = time.Since(finStart)
				pt.Wall = time.Since(pipeStart)
			}
			return failed(err)
		}
		if pt != nil {
			pt.Finalize = time.Since(finStart)
			pt.Wall = time.Since(pipeStart)
			// Per-partition routed-row counts of the exchanges this pipeline
			// sealed — the skew surface for EXPLAIN ANALYZE (a uniform exchange
			// shows near-equal counts; an all-one-partition skew shows one hot
			// entry).
			for _, ex := range pipe.SealExchanges {
				pt.PartRows = append(pt.PartRows, ex.PartRows()...)
			}
		}
		if pipe.Result != nil {
			finalChunks = outs
		}
	}

	if qs.stopped() {
		return failed(qs.failure())
	}

	for _, ctx := range ctxs {
		res.Add(&ctx.Counters)
	}
	res.MemPeakBytes = budget.Peak()

	kinds, err := plan.FinalKinds()
	if err != nil {
		wall := time.Since(start)
		metrics.Default.QueryDone(&res, wall, err, false, false)
		obs.Default.ObserveQuery(backend, wall, res.Tuples)
		flight.Default.Record(flight.KindQueryError, qid, qlabel, int64(wall), 0)
		return nil, err
	}
	out := storage.NewChunk(kinds)
	for _, c := range finalChunks {
		out.AppendChunk(c)
	}
	if plan.Sort != nil {
		out = sortChunk(out, plan.Sort)
	}
	wall := time.Since(start)
	if qt != nil {
		qt.Wall = wall
	}
	metrics.Default.QueryDone(&res, wall, nil, false, len(warnings) > 0)
	obs.Default.ObserveQuery(backend, wall, res.Tuples)
	flight.Default.Record(flight.KindQueryDone, qid, qlabel, int64(wall), int64(out.Rows()))
	return &Result{
		Cols: plan.ColNames, Chunk: out, Stats: res, QueryID: qid, QueueWait: queueWait,
		Wall: wall, Warnings: warnings, Trace: qt,
	}, nil
}

// runMorselSafe executes one morsel with panic isolation: a panic anywhere
// below (generated code, primitives, hash tables, the budget) is converted
// into a located *QueryError instead of taking the process down.
func runMorselSafe(query, pipeName string, backend Backend, r runner, w, mi int,
	wctx *vm.Ctx, binder sourceBinder, m storage.Morsel, out *storage.Chunk) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			wctx.Counters.PanicsRecovered++
			qe := &QueryError{
				Query: query, Pipeline: pipeName, Backend: backend,
				Worker: w, Morsel: mi, Err: panicCause(rec),
			}
			if _, budget := rec.(*rt.BudgetExceeded); !budget {
				qe.Stack = string(debug.Stack())
			}
			err = qe
		}
	}()
	if err := faultinject.Inject(faultinject.ExecMorsel); err != nil {
		panic(err)
	}
	src, n := binder.bind(m)
	r.runMorsel(w, wctx, src, n, out)
	// Morsel boundary: spill the worker's thread-local pre-aggregation into
	// its shard table (group rows must not live across morsels). Pipelines
	// without aggregation pay one empty-map check. Inside the recover scope:
	// the merge can hit the memory budget too.
	wctx.FlushLocalAggs()
	wctx.Counters.Tuples += int64(n)
	return nil
}

// finalizeSafe runs pipeline finalization (join sealing, aggregate merging)
// with the same panic isolation as the morsel loop.
func finalizeSafe(query string, pipe *core.Pipeline, backend Backend, ctxs []*vm.Ctx, budget *rt.MemBudget) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			ctxs[0].Counters.PanicsRecovered++
			qe := &QueryError{
				Query: query, Pipeline: pipe.Name, Backend: backend,
				Worker: -1, Morsel: -1, Err: panicCause(rec),
			}
			if _, isBudget := rec.(*rt.BudgetExceeded); !isBudget {
				qe.Stack = string(debug.Stack())
			}
			err = qe
		}
	}()
	if err := faultinject.Inject(faultinject.ExecFinalize); err != nil {
		panic(err)
	}
	return finalizePipeline(pipe, ctxs, budget)
}

// sourceBinder adapts a pipeline source to morsel-range vector bindings.
type sourceBinder struct {
	total int
	// morsels, when non-nil, overrides the uniform morsel split: exchange
	// reads dispatch exactly one morsel per partition (the single-writer
	// discipline of the partitioned tables), with Morsel.Start carrying the
	// partition index.
	morsels []storage.Morsel
	bind    func(m storage.Morsel) ([]*storage.Vector, int)
}

func bindSource(pipe *core.Pipeline) (sourceBinder, error) {
	switch s := pipe.Source.(type) {
	case *core.TableScan:
		cols := make([]*storage.Vector, len(s.Cols))
		for i, ci := range s.Cols {
			cols[i] = s.Table.Cols[ci]
		}
		return sourceBinder{
			total: s.Table.Rows(),
			bind: func(m storage.Morsel) ([]*storage.Vector, int) {
				vs := make([]*storage.Vector, len(cols))
				for i, c := range cols {
					vs[i] = c.Slice(m.Start, m.End)
				}
				return vs, m.Rows()
			},
		}, nil
	case *core.AggRead:
		if !s.State.Ready() {
			return sourceBinder{}, fmt.Errorf("%w: aggregate source read before its build pipeline completed", ErrInvalidPlan)
		}
		snap := s.State.Snapshot()
		return sourceBinder{
			total: len(snap),
			bind: func(m storage.Morsel) ([]*storage.Vector, int) {
				v := &storage.Vector{Kind: types.Ptr, Ptr: snap[m.Start:m.End]}
				return []*storage.Vector{v}, m.Rows()
			},
		}, nil
	case *core.ExchangeRead:
		if !s.State.Sealed() {
			return sourceBinder{}, fmt.Errorf("%w: exchange source read before its routing pipeline completed", ErrInvalidPlan)
		}
		p := rt.NormalizePartitions(s.State.Partitions)
		ms := make([]storage.Morsel, p)
		total := 0
		for pi := 0; pi < p; pi++ {
			total += len(s.State.PartitionRows(pi))
			ms[pi] = storage.Morsel{Start: pi, End: pi + 1}
		}
		return sourceBinder{
			total:   total,
			morsels: ms,
			bind: func(m storage.Morsel) ([]*storage.Vector, int) {
				rows := s.State.PartitionRows(m.Start)
				v := &storage.Vector{Kind: types.Ptr, Ptr: rows}
				return []*storage.Vector{v}, len(rows)
			},
		}, nil
	default:
		return sourceBinder{}, fmt.Errorf("%w: unknown source %T", ErrInvalidPlan, pipe.Source)
	}
}

func finalizePipeline(pipe *core.Pipeline, ctxs []*vm.Ctx, budget *rt.MemBudget) error {
	for _, js := range pipe.SealJoins {
		js.Seal()
	}
	// Seal routed exchanges: concatenate the workers' per-partition buffers and
	// fold the routing/skew counters into the query stats.
	for _, ex := range pipe.SealExchanges {
		ex.Seal()
		c := &ctxs[0].Counters
		c.PartMaxPartRows = max(c.PartMaxPartRows, ex.MaxPartRows())
	}
	if len(pipe.MergeAggs) == 0 {
		return nil
	}
	taken := make([]map[*rt.AggTableState]*rt.AggTable, len(ctxs))
	for i, ctx := range ctxs {
		taken[i] = ctx.TakeAggTables()
	}
	for _, fin := range pipe.MergeAggs {
		if fin.State.Partitions > 0 {
			// Exchange-partitioned build: the workers wrote straight into the
			// shared partitioned table — there is nothing to merge. Only the
			// keyless forced group (SQL: aggregates without GROUP BY produce
			// one row even on empty input) needs the same treatment as below.
			if fin.Keyless && fin.State.Parted.Groups() == 0 {
				row := fin.State.Parted.FindOrCreate(nil, rt.Hash64(nil))
				payload := row[rt.RowPayloadOff(row):]
				for i := range payload {
					payload[i] = 0
				}
			}
			continue
		}
		var parts []*rt.AggTable
		for _, m := range taken {
			if t, ok := m[fin.State]; ok {
				parts = append(parts, t)
			}
		}
		var global *rt.AggTable
		switch len(parts) {
		case 0:
			global = fin.State.NewInstance()
			global.SetBudget(budget)
		case 1:
			global = parts[0]
		default:
			global = fin.State.NewInstance()
			global.SetBudget(budget)
			for _, p := range parts {
				fin.State.MergeInto(global, p)
			}
		}
		if fin.Keyless && global.Groups() == 0 {
			// SQL semantics: aggregates without GROUP BY produce one row
			// even on empty input. The forced group reads as zeros (stand-in
			// for SQL NULL; MIN/MAX init sentinels must not leak out).
			row := global.FindOrCreate(nil, rt.Hash64(nil))
			payload := row[rt.RowPayloadOff(row):]
			for i := range payload {
				payload[i] = 0
			}
		}
		fin.State.Global = global
	}
	return nil
}

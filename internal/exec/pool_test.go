package exec

// Executor/scheduler integration: queries admitted through a shared
// admission-controlled pool, cancellation of queued (never-admitted) queries,
// and the exec half of the chaos satellite — concurrent queries under
// injected scheduler faults must each end in exactly one of {result, typed
// error} with no goroutine leaks.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"inkfuse/internal/faultinject"
	"inkfuse/internal/sched"
)

func TestQueuedQueryCancelsWithoutRunning(t *testing.T) {
	defer faultinject.Reset()
	pool := sched.NewPool(sched.Config{Workers: 1, MaxConcurrent: 1})
	defer pool.Close(context.Background())

	// The admitted query runs slowly enough to hold its slot while the queued
	// one times out behind it.
	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Delay: 2 * time.Millisecond})
	lat := LatencyNone
	longPlan := lowerOrDie(t, groupByNode(makeTable()), "longq")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := Execute(longPlan, Options{
			Backend: BackendVectorized, Workers: 1, MorselSize: 64, Latency: &lat, Pool: pool,
		}); err != nil {
			t.Errorf("long query failed: %v", err)
		}
	}()
	// Wait until the long query holds the pool's single admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for pool.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("long query never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	shortPlan := lowerOrDie(t, groupByNode(makeTable()), "shortq")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := ExecuteContext(ctx, shortPlan, Options{
		Backend: BackendVectorized, Workers: 1, MorselSize: 64, Latency: &lat, Pool: pool,
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued query error = %v, want ErrDeadlineExceeded", err)
	}
	// The query expired while queued: it never ran, so there is no partial
	// result or trace — unlike a mid-flight cancellation.
	if res != nil {
		t.Fatalf("queued query produced a result: %+v", res)
	}
	if s := pool.Stats(); s.QueueTimeouts != 1 {
		t.Fatalf("QueueTimeouts = %d, want 1", s.QueueTimeouts)
	}
	wg.Wait()
}

func TestExecSchedulerShedAndDrainingErrors(t *testing.T) {
	pool := sched.NewPool(sched.Config{Workers: 1, MaxConcurrent: 1, QueueDepth: -1})
	lat := LatencyNone

	// Hold the only slot directly so Execute finds the pool full.
	hold, err := pool.Admit(context.Background(), "hold", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := lowerOrDie(t, groupByNode(makeTable()), "shedq")
	if _, err := Execute(plan, Options{
		Backend: BackendVectorized, Workers: 1, Latency: &lat, Pool: pool,
	}); !errors.Is(err, sched.ErrQueueFull) {
		t.Fatalf("shed query error = %v, want sched.ErrQueueFull", err)
	}
	hold.Release()

	pool.Close(context.Background())
	plan2 := lowerOrDie(t, groupByNode(makeTable()), "drainq")
	if _, err := Execute(plan2, Options{
		Backend: BackendVectorized, Workers: 1, Latency: &lat, Pool: pool,
	}); !errors.Is(err, sched.ErrDraining) {
		t.Fatalf("post-drain query error = %v, want sched.ErrDraining", err)
	}
}

// TestExecChaosConcurrentQueries injects scheduler faults while 8 queries run
// concurrently through one admission-controlled pool: every request must end
// in exactly one of {result, typed error}, and the pool must wind down with
// no goroutine leaks.
func TestExecChaosConcurrentQueries(t *testing.T) {
	defer faultinject.Reset()
	base := runtime.NumGoroutine()
	faultinject.Arm(faultinject.SchedAdmit, faultinject.Fault{Prob: 0.2, Seed: 3})
	faultinject.Arm(faultinject.SchedDispatch, faultinject.Fault{Prob: 0.02, Seed: 5, Panic: "injected dispatch panic"})

	pool := sched.NewPool(sched.Config{Workers: 2, MaxConcurrent: 3, QueueDepth: 2})
	lat := LatencyNone
	const queries = 8
	var results, failures atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plan := lowerOrDie(t, groupByNode(makeTable()), "chaosq")
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			res, err := ExecuteContext(ctx, plan, Options{
				Backend: BackendVectorized, Workers: 2, MorselSize: 256, Latency: &lat, Pool: pool,
			})
			switch {
			case err == nil && res != nil && res.Chunk != nil:
				results.Add(1)
			case err != nil:
				if !errors.Is(err, faultinject.ErrInjected) &&
					!errors.Is(err, sched.ErrQueueFull) &&
					!errors.Is(err, sched.ErrTaskPanic) &&
					!errors.Is(err, ErrDeadlineExceeded) {
					t.Errorf("untyped chaos failure: %v", err)
				}
				failures.Add(1)
			default:
				t.Errorf("query %d ended with neither result nor error", i)
			}
		}(i)
	}
	wg.Wait()
	if got := results.Load() + failures.Load(); got != queries {
		t.Fatalf("%d results + %d failures = %d, want %d", results.Load(), failures.Load(), got, queries)
	}
	faultinject.Reset()
	pool.Close(context.Background())
	waitGoroutines(t, base)
}

// waitGoroutines waits for the goroutine count to settle back to at most
// want, failing with a full stack dump on a leak.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package exec

// Microbenchmarks for the per-morsel hot loops. Run with -benchmem: the
// vectorized and ROF chunk loops themselves must not allocate per chunk (the
// per-worker scratch headers are reused), which removes ~3 allocs per chunk
// (the []*Vector slice plus one header per input column) versus slicing fresh
// vectors each iteration.

import (
	"testing"

	"inkfuse/internal/algebra"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
)

func benchTable(rows int) *storage.Table {
	t := storage.NewTable("bench", types.Schema{
		{Name: "a", Kind: types.Int64},
		{Name: "b", Kind: types.Float64},
	})
	for i := 0; i < rows; i++ {
		t.AppendRow(int64(i%1000), float64(i%13)+0.25)
	}
	return t
}

func benchNode(tbl *storage.Table) algebra.Node {
	return algebra.NewGroupBy(
		algebra.NewFilter(algebra.NewScan(tbl, "a", "b"), algebra.Gt(algebra.Col("a"), algebra.I64(10))),
		nil, algebra.Sum("b", "s"), algebra.Count("n"))
}

func benchmarkBackend(b *testing.B, backend Backend, rows int) {
	benchmarkOpts(b, Options{Backend: backend, Workers: 2}, rows)
}

func benchmarkOpts(b *testing.B, opts Options, rows int) {
	tbl := benchTable(rows)
	node := benchNode(tbl)
	lat := LatencyNone
	opts.Latency = &lat
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := algebra.Lower(node, "bench")
		if err != nil {
			b.Fatal(err)
		}
		res, err := Execute(plan, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows() != 1 {
			b.Fatalf("rows = %d", res.Rows())
		}
	}
}

// Each backend runs at two data sizes so the per-chunk allocation component
// is visible in the delta between them.
func BenchmarkMorselLoopVectorized(b *testing.B) {
	b.Run("rows=100k", func(b *testing.B) { benchmarkBackend(b, BackendVectorized, 100_000) })
	b.Run("rows=400k", func(b *testing.B) { benchmarkBackend(b, BackendVectorized, 400_000) })
}

func BenchmarkMorselLoopROF(b *testing.B) {
	b.Run("rows=100k", func(b *testing.B) { benchmarkBackend(b, BackendROF, 100_000) })
	b.Run("rows=400k", func(b *testing.B) { benchmarkBackend(b, BackendROF, 400_000) })
}

func BenchmarkMorselLoopHybrid(b *testing.B) {
	b.Run("rows=100k", func(b *testing.B) { benchmarkBackend(b, BackendHybrid, 100_000) })
	b.Run("rows=400k", func(b *testing.B) { benchmarkBackend(b, BackendHybrid, 400_000) })
}

// The suboperator-profiler guard: the profiled run must stay within noise of
// the plain vectorized run (compare against BenchmarkMorselLoopVectorized).
// With the default 1/8 sampling only one chunk in eight pays two timestamp
// reads per primitive; the other seven pay one counter increment and modulo,
// and with profiling off (the other benchmarks) the chunk loop pays a single
// nil check. The hard per-chunk-allocation guard is
// interp.TestProfilerOffPathNoAllocs / TestProfilerOnPathNoPerChunkAllocs.
func BenchmarkMorselLoopVectorizedProfiled(b *testing.B) {
	opts := Options{Backend: BackendVectorized, Workers: 2, Profile: true}
	b.Run("rows=100k", func(b *testing.B) { benchmarkOpts(b, opts, 100_000) })
	b.Run("rows=400k", func(b *testing.B) { benchmarkOpts(b, opts, 400_000) })
}

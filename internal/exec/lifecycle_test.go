package exec

// Lifecycle-robustness tests: deterministic fault injection proving that a
// failing query — panic, deadline, cancellation, memory budget, background
// compile failure — is contained to that query while the process and
// subsequent queries keep working.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"inkfuse/internal/algebra"
	"inkfuse/internal/core"
	"inkfuse/internal/faultinject"
	"inkfuse/internal/storage"
	"inkfuse/internal/tpch"
	"inkfuse/internal/types"
)

// groupByNode builds a GROUP BY plan over the shared test table.
func groupByNode(tbl *storage.Table) algebra.Node {
	return algebra.NewGroupBy(algebra.NewScan(tbl, "s", "b"), []string{"s"},
		algebra.Sum("b", "sum_b"), algebra.Count("n"))
}

func lowerOrDie(t *testing.T, node algebra.Node, name string) *core.Plan {
	t.Helper()
	plan, err := algebra.Lower(node, name)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestPanicIsolatedPerQueryAllBackends(t *testing.T) {
	defer faultinject.Reset()
	tbl := makeTable()
	for _, backend := range []Backend{BackendVectorized, BackendCompiling, BackendROF, BackendHybrid} {
		t.Run(backend.String(), func(t *testing.T) {
			faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Panic: "injected primitive panic"})
			lat := LatencyNone
			plan := lowerOrDie(t, groupByNode(tbl), "panicq")
			res, err := Execute(plan, Options{Backend: backend, Workers: 2, Latency: &lat})
			if err == nil {
				t.Fatal("panicking query returned no error")
			}
			var qe *QueryError
			if !errors.As(err, &qe) {
				t.Fatalf("error is %T, want *QueryError: %v", err, err)
			}
			if !errors.Is(err, ErrPanic) {
				t.Fatalf("error does not wrap ErrPanic: %v", err)
			}
			if qe.Backend != backend || qe.Morsel < 0 || qe.Stack == "" {
				t.Fatalf("bad failure location: %+v", qe)
			}
			if res == nil || res.Stats.PanicsRecovered < 1 {
				t.Fatalf("recovery not counted: %+v", res)
			}

			// The process survives: the same query re-runs cleanly once the
			// fault is disarmed.
			faultinject.Reset()
			plan2 := lowerOrDie(t, groupByNode(tbl), "panicq2")
			res2, err := Execute(plan2, Options{Backend: backend, Workers: 2, Latency: &lat})
			if err != nil {
				t.Fatalf("follow-up query failed: %v", err)
			}
			if res2.Rows() == 0 || res2.Stats.PanicsRecovered != 0 {
				t.Fatalf("follow-up query degraded: rows=%d stats=%+v", res2.Rows(), res2.Stats)
			}
		})
	}
}

func TestPanicDoesNotPoisonConcurrentQueries(t *testing.T) {
	defer faultinject.Reset()
	// Nth=4: a few morsels succeed first, then one worker panics while the
	// other queries keep running in the same process.
	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Nth: 4, Panic: "late panic"})
	tbl := makeTable()
	lat := LatencyNone

	type out struct {
		res *Result
		err error
	}
	outs := make(chan out, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			plan, err := algebra.Lower(groupByNode(tbl), fmt.Sprintf("conc%d", i))
			if err != nil {
				outs <- out{nil, err}
				return
			}
			res, err := Execute(plan, Options{Backend: BackendVectorized, Workers: 2, Latency: &lat})
			outs <- out{res, err}
		}(i)
	}
	var failures, successes int
	for i := 0; i < 3; i++ {
		o := <-outs
		if o.err != nil {
			if !errors.Is(o.err, ErrPanic) {
				t.Fatalf("unexpected failure kind: %v", o.err)
			}
			failures++
		} else {
			if o.res.Rows() == 0 {
				t.Fatal("successful query returned no rows")
			}
			successes++
		}
	}
	// Exactly one passage is the 4th: one query dies, the rest complete.
	if failures != 1 || successes != 2 {
		t.Fatalf("failures=%d successes=%d, want 1/2", failures, successes)
	}
}

func TestCancellationStopsQuery(t *testing.T) {
	tbl := makeTable()
	lat := LatencyNone
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first morsel
	plan := lowerOrDie(t, groupByNode(tbl), "cancelq")
	_, err := ExecuteContext(ctx, plan, Options{Backend: BackendVectorized, Workers: 2, Latency: &lat})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context cause lost: %v", err)
	}
}

func TestDeadlineStopsMidScan(t *testing.T) {
	defer faultinject.Reset()
	// Each morsel passage sleeps 5ms, the deadline is 15ms, and the scan has
	// ~79 morsels: the deadline must fire after a handful of morsels and the
	// workers must drain within one morsel batch instead of finishing the
	// scan.
	faultinject.Arm(faultinject.ExecMorsel, faultinject.Fault{Delay: 5 * time.Millisecond})
	tbl := makeTable()
	lat := LatencyNone
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	plan := lowerOrDie(t, groupByNode(tbl), "deadlineq")
	res, err := ExecuteContext(ctx, plan, Options{
		Backend: BackendVectorized, Workers: 2, Latency: &lat, MorselSize: 64,
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if res.Stats.Tuples >= int64(tbl.Rows()) {
		t.Fatalf("deadline did not stop the scan: %d tuples processed", res.Stats.Tuples)
	}
}

func TestDeadlineInterruptsCompileWait(t *testing.T) {
	defer faultinject.Reset()
	// The compiling backend's simulated machine-code latency must observe
	// the context instead of sleeping through it.
	faultinject.Arm(faultinject.ExecCompileDelay, faultinject.Fault{Delay: time.Second})
	tbl := makeTable()
	lat := LatencyNone
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	plan := lowerOrDie(t, groupByNode(tbl), "compilewait")
	start := time.Now()
	_, err := ExecuteContext(ctx, plan, Options{Backend: BackendCompiling, Workers: 2, Latency: &lat})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("compile wait ignored the deadline: took %v", el)
	}
}

func TestForegroundCompileFaultFailsQuery(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.ExecCompile, faultinject.Fault{})
	tbl := makeTable()
	lat := LatencyNone
	for _, backend := range []Backend{BackendCompiling, BackendROF} {
		plan := lowerOrDie(t, groupByNode(tbl), "compilefail")
		_, err := Execute(plan, Options{Backend: backend, Workers: 2, Latency: &lat})
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%v: want injected compile error, got %v", backend, err)
		}
	}
}

func TestMemoryBudgetFailsOversizedGroupBy(t *testing.T) {
	// ~50k distinct keys cannot fit a 32 KiB runtime-state budget: the query
	// must fail with the typed budget error instead of OOM-ing the process.
	tbl := storage.NewTable("wide", types.Schema{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Float64},
	})
	for i := 0; i < 50000; i++ {
		tbl.AppendRow(int64(i), 1.0)
	}
	node := algebra.NewGroupBy(algebra.NewScan(tbl, "k", "v"), []string{"k"}, algebra.Sum("v", "s"))
	lat := LatencyNone
	plan := lowerOrDie(t, node, "bigagg")
	res, err := Execute(plan, Options{Backend: BackendVectorized, Workers: 2, Latency: &lat, MemoryBudget: 32 << 10})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("budget failure not located: %T %v", err, err)
	}
	if res.Stats.MemPeakBytes == 0 {
		t.Fatal("budget accounting reported no peak")
	}

	// Under budget, the same query completes and reports its footprint.
	plan2 := lowerOrDie(t, node, "bigagg2")
	res2, err := Execute(plan2, Options{Backend: BackendVectorized, Workers: 2, Latency: &lat, MemoryBudget: 1 << 30})
	if err != nil {
		t.Fatalf("generous budget still failed: %v", err)
	}
	if res2.Rows() != 50000 || res2.Stats.MemPeakBytes == 0 {
		t.Fatalf("rows=%d peak=%d", res2.Rows(), res2.Stats.MemPeakBytes)
	}
}

func TestMemoryBudgetCoversJoinBuild(t *testing.T) {
	tbl := makeTable()
	big := storage.NewTable("bigdim", types.Schema{
		{Name: "k", Kind: types.Int64},
		{Name: "w", Kind: types.Float64},
	})
	for i := 0; i < 50000; i++ {
		big.AppendRow(int64(i%97), float64(i))
	}
	join := &algebra.HashJoin{
		Build:     algebra.NewScan(big, "k", "w"),
		Probe:     algebra.NewScan(tbl, "a", "b"),
		BuildKeys: []string{"k"},
		ProbeKeys: []string{"a"},
		BuildCols: []string{"w"},
	}
	node := algebra.NewGroupBy(join, nil, algebra.Sum("w", "s"))
	lat := LatencyNone
	plan := lowerOrDie(t, node, "bigjoin")
	_, err := Execute(plan, Options{Backend: BackendVectorized, Workers: 2, Latency: &lat, MemoryBudget: 32 << 10})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
}

func TestHybridDegradesOnBackgroundCompileFailure(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.ExecHybridCompile, faultinject.Fault{})
	tbl := makeTable()
	lat := LatencyNone
	plan := lowerOrDie(t, groupByNode(tbl), "degraded")
	res, err := Execute(plan, Options{Backend: BackendHybrid, Workers: 2, Latency: &lat})
	if err != nil {
		t.Fatalf("degraded hybrid query failed outright: %v", err)
	}
	if res.Stats.CompileErrors == 0 {
		t.Fatalf("compile failures not counted: %+v", res.Stats)
	}
	if res.Stats.MorselsCompiled != 0 {
		t.Fatalf("morsels ran on supposedly failed compiled code: %+v", res.Stats)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("degradation not surfaced in Result.Warnings")
	}

	// Correctness under degradation: same rows as the pure vectorized run.
	faultinject.Reset()
	plan2 := lowerOrDie(t, groupByNode(tbl), "reference")
	ref, err := Execute(plan2, Options{Backend: BackendVectorized, Workers: 2, Latency: &lat})
	if err != nil {
		t.Fatal(err)
	}
	got, want := rowsAsStrings(res.Chunk), rowsAsStrings(ref.Chunk)
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("rows: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestHybridDegradationOnTPCH(t *testing.T) {
	// Acceptance shape: a forced background-compile failure on the hybrid
	// backend still returns correct TPC-H results with CompileErrors > 0.
	defer faultinject.Reset()
	cat := tpch.Generate(0.01, 42)
	node, err := tpch.Build(cat, "q1")
	if err != nil {
		t.Fatal(err)
	}
	lat := LatencyNone
	refPlan := lowerOrDie(t, node, "q1ref")
	ref, err := Execute(refPlan, Options{Backend: BackendVectorized, Workers: 2, Latency: &lat})
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.ExecHybridCompile, faultinject.Fault{})
	node2, _ := tpch.Build(cat, "q1")
	plan := lowerOrDie(t, node2, "q1degraded")
	res, err := Execute(plan, Options{Backend: BackendHybrid, Workers: 2, Latency: &lat})
	if err != nil {
		t.Fatalf("degraded q1 failed: %v", err)
	}
	if res.Stats.CompileErrors == 0 {
		t.Fatal("CompileErrors not recorded")
	}
	got, want := rowsAsStrings(res.Chunk), rowsAsStrings(ref.Chunk)
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("rows: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
}

func TestFinalizeFaultIsIsolated(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.ExecFinalize, faultinject.Fault{Panic: "seal failure"})
	tbl := makeTable()
	lat := LatencyNone
	plan := lowerOrDie(t, groupByNode(tbl), "finalize")
	res, err := Execute(plan, Options{Backend: BackendVectorized, Workers: 2, Latency: &lat})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("want ErrPanic from finalization, got %v", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Morsel != -1 {
		t.Fatalf("finalization failure mislocated: %v", err)
	}
	if res.Stats.PanicsRecovered == 0 {
		t.Fatal("finalization recovery not counted")
	}
}

package exec

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"inkfuse/internal/algebra"
	"inkfuse/internal/core"
	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
	"inkfuse/internal/volcano"
)

func allBackends() []Backend {
	return []Backend{BackendVectorized, BackendCompiling, BackendROF, BackendHybrid}
}

func execPlan(t *testing.T, node algebra.Node, backend Backend, opts Options) *Result {
	t.Helper()
	plan, err := algebra.Lower(node, "edge")
	if err != nil {
		t.Fatal(err)
	}
	if opts.Latency == nil {
		lat := LatencyNone
		opts.Latency = &lat
	}
	opts.Backend = backend
	res, err := Execute(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEmptyTable(t *testing.T) {
	empty := storage.NewTable("e", types.Schema{
		{Name: "a", Kind: types.Int64},
		{Name: "s", Kind: types.String},
	})
	// Scan-filter over empty data.
	node := algebra.NewProject(algebra.NewFilter(
		algebra.NewScan(empty, "a"), algebra.Gt(algebra.Col("a"), algebra.I64(0))), "a")
	for _, b := range allBackends() {
		if res := execPlan(t, node, b, Options{}); res.Rows() != 0 {
			t.Fatalf("%v: %d rows from empty table", b, res.Rows())
		}
	}
	// Keyed aggregation over empty data: zero groups.
	agg := algebra.NewGroupBy(algebra.NewScan(empty, "s", "a"), []string{"s"}, algebra.Count("n"))
	for _, b := range allBackends() {
		if res := execPlan(t, agg, b, Options{}); res.Rows() != 0 {
			t.Fatalf("%v: keyed agg over empty gave %d rows", b, res.Rows())
		}
	}
	// Keyless aggregation over empty data: exactly one row of zeros.
	static := algebra.NewGroupBy(algebra.NewScan(empty, "a"), nil, algebra.Count("n"))
	for _, b := range allBackends() {
		res := execPlan(t, static, b, Options{})
		if res.Rows() != 1 || res.Chunk.Row(0)[0] != int64(0) {
			t.Fatalf("%v: keyless agg over empty: rows=%d", b, res.Rows())
		}
	}
}

func TestSingleRow(t *testing.T) {
	tbl := storage.NewTable("one", types.Schema{{Name: "a", Kind: types.Int64}})
	tbl.AppendRow(int64(41))
	node := algebra.NewProject(algebra.NewMap(algebra.NewScan(tbl, "a"),
		algebra.NamedExpr{As: "b", E: algebra.Add(algebra.Col("a"), algebra.I64(1))}), "b")
	for _, b := range allBackends() {
		res := execPlan(t, node, b, Options{})
		if res.Rows() != 1 || res.Chunk.Row(0)[0] != int64(42) {
			t.Fatalf("%v: got %v", b, res.Chunk.Row(0))
		}
	}
}

func TestAllRowsFiltered(t *testing.T) {
	tbl := makeTable()
	node := algebra.NewProject(algebra.NewFilter(algebra.NewScan(tbl, "a"),
		algebra.Gt(algebra.Col("a"), algebra.I64(1_000_000))), "a")
	for _, b := range allBackends() {
		if res := execPlan(t, node, b, Options{}); res.Rows() != 0 {
			t.Fatalf("%v: %d rows survived an always-false filter", b, res.Rows())
		}
	}
}

func TestExplodingJoinGrowth(t *testing.T) {
	// Build side has 500 duplicates of one key; a small probe explodes to
	// 500x its cardinality, exercising the growing tuple-buffer sink.
	build := storage.NewTable("b", types.Schema{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Int64},
	})
	for i := 0; i < 500; i++ {
		build.AppendRow(int64(7), int64(i))
	}
	probe := storage.NewTable("p", types.Schema{{Name: "k", Kind: types.Int64}})
	for i := 0; i < 10; i++ {
		probe.AppendRow(int64(7))
	}
	join := &algebra.HashJoin{
		Build: algebra.NewScan(build, "k", "v"), Probe: algebra.NewScan(probe, "k"),
		BuildKeys: []string{"k"}, ProbeKeys: []string{"k"},
		BuildCols: []string{"v"}, Mode: ir.InnerJoin,
	}
	node := algebra.NewGroupBy(join, nil, algebra.Count("n"))
	for _, b := range allBackends() {
		res := execPlan(t, node, b, Options{ChunkSize: 16}) // tiny chunks force growth
		if res.Chunk.Row(0)[0] != int64(5000) {
			t.Fatalf("%v: exploded to %v rows, want 5000", b, res.Chunk.Row(0)[0])
		}
	}
}

func TestTinyChunkAndMorselSizes(t *testing.T) {
	tbl := makeTable()
	node := algebra.NewGroupBy(algebra.NewScan(tbl, "s", "b"), []string{"s"},
		algebra.Sum("b", "total"))
	want, err := volcano.Run(node)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range allBackends() {
		for _, size := range []struct{ chunk, morsel int }{{1, 1}, {3, 7}, {1024, 100}} {
			res := execPlan(t, node, b, Options{ChunkSize: size.chunk, MorselSize: size.morsel, Workers: 3})
			if res.Rows() != want.Rows() {
				t.Fatalf("%v chunk=%d morsel=%d: rows %d vs %d", b, size.chunk, size.morsel, res.Rows(), want.Rows())
			}
		}
	}
}

func TestMoreWorkersThanMorsels(t *testing.T) {
	tbl := storage.NewTable("few", types.Schema{{Name: "a", Kind: types.Int64}})
	for i := 0; i < 10; i++ {
		tbl.AppendRow(int64(i))
	}
	node := algebra.NewGroupBy(algebra.NewScan(tbl, "a"), nil, algebra.Sum("a", "s"))
	for _, b := range allBackends() {
		res := execPlan(t, node, b, Options{Workers: 16})
		if res.Chunk.Row(0)[0] != int64(45) {
			t.Fatalf("%v: sum = %v", b, res.Chunk.Row(0)[0])
		}
	}
}

func TestHybridCompilationInterrupted(t *testing.T) {
	// A compile latency far longer than the query: the hybrid backend must
	// finish on the interpreter and cancel the background compile promptly.
	tbl := makeTable()
	node := algebra.NewGroupBy(algebra.NewScan(tbl, "s", "b"), []string{"s"},
		algebra.Sum("b", "total"))
	plan, err := algebra.Lower(node, "interrupt")
	if err != nil {
		t.Fatal(err)
	}
	lat := LatencyModel{Base: 10 * time.Second}
	start := time.Now()
	res, err := Execute(plan, Options{Backend: BackendHybrid, Latency: &lat})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("hybrid blocked on abandoned compile: %v", el)
	}
	if res.Stats.MorselsCompiled != 0 {
		t.Fatal("no morsel should have used never-ready code")
	}
	if res.Rows() != 3 {
		t.Fatalf("rows = %d", res.Rows())
	}
}

func TestCompileWaitAccounting(t *testing.T) {
	tbl := makeTable()
	node := algebra.NewGroupBy(algebra.NewScan(tbl, "s", "b"), []string{"s"}, algebra.Sum("b", "t"))
	plan, err := algebra.Lower(node, "wait")
	if err != nil {
		t.Fatal(err)
	}
	lat := LatencyModel{Base: 30 * time.Millisecond}
	res, err := Execute(plan, Options{Backend: BackendCompiling, Latency: &lat})
	if err != nil {
		t.Fatal(err)
	}
	// Two pipelines, each paying >= 30ms.
	if res.Stats.CompileWait < 60*time.Millisecond {
		t.Fatalf("compile wait %v, want >= 60ms", res.Stats.CompileWait)
	}
	if res.Wall < res.Stats.CompileWait {
		t.Fatal("wall time excludes compile wait")
	}

	// The vectorized backend never waits.
	plan2, _ := algebra.Lower(node, "wait2")
	res2, err := Execute(plan2, Options{Backend: BackendVectorized, Latency: &lat})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.CompileWait != 0 {
		t.Fatal("vectorized backend reported compile wait")
	}
}

func TestHybridRoutesToFasterBackend(t *testing.T) {
	// With zero compile latency and plenty of morsels, the hybrid backend
	// must route morsels to both backends (exploration) once the code is
	// ready. Give the background compiler its own P so the test checks the
	// routing policy rather than single-CPU scheduler luck.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	big := storage.NewTable("big", types.Schema{
		{Name: "s", Kind: types.String},
		{Name: "b", Kind: types.Float64},
	})
	labels := []string{"x", "y", "z"}
	big.SetRows(300_000)
	for i := 0; i < big.Rows(); i++ {
		big.Col("s").Str[i] = labels[i%3]
		big.Col("b").F64[i] = float64(i % 100)
	}
	node := algebra.NewGroupBy(algebra.NewScan(big, "s", "b"), []string{"s"}, algebra.Sum("b", "t"))
	res := execPlan(t, node, BackendHybrid, Options{MorselSize: 512})
	s := res.Stats
	if s.MorselsCompiled == 0 || s.MorselsVectorized == 0 {
		t.Fatalf("hybrid did not explore both: jit=%d vec=%d", s.MorselsCompiled, s.MorselsVectorized)
	}
}

func TestStatsPlausibility(t *testing.T) {
	tbl := makeTable()
	node := algebra.NewGroupBy(algebra.NewFilter(algebra.NewScan(tbl, "a", "b", "s"),
		algebra.Gt(algebra.Col("a"), algebra.I64(50))), []string{"s"}, algebra.Sum("b", "t"))

	vec := execPlan(t, node, BackendVectorized, Options{})
	jit := execPlan(t, node, BackendCompiling, Options{})
	if vec.Stats.PrimitiveCalls == 0 || jit.Stats.PrimitiveCalls != 0 {
		t.Fatalf("primitive call accounting: vec=%d jit=%d", vec.Stats.PrimitiveCalls, jit.Stats.PrimitiveCalls)
	}
	if jit.Stats.FusedCalls == 0 || vec.Stats.FusedCalls != 0 {
		t.Fatalf("fused call accounting: vec=%d jit=%d", vec.Stats.FusedCalls, jit.Stats.FusedCalls)
	}
	// The vectorized interpreter materializes between suboperators: its
	// buffer traffic must exceed the fused program's (Table I's core claim).
	if vec.Stats.MaterializedBytes <= jit.Stats.MaterializedBytes {
		t.Fatalf("materialization: vec=%d jit=%d", vec.Stats.MaterializedBytes, jit.Stats.MaterializedBytes)
	}
	// Both backends see the same tuples: the 5000 scanned rows plus the
	// aggregate groups read by the second pipeline.
	if vec.Stats.Tuples != jit.Stats.Tuples || vec.Stats.Tuples < 5000 {
		t.Fatalf("tuple accounting: vec=%d jit=%d", vec.Stats.Tuples, jit.Stats.Tuples)
	}
}

func TestHybridCompilesAllPipelinesUpFront(t *testing.T) {
	// Paper §V-B: background compilation starts for every pipeline when the
	// query enters the system — a later pipeline's code must become ready
	// without that pipeline having started.
	tbl := makeTable()
	node := algebra.NewGroupBy(algebra.NewScan(tbl, "s", "b"), []string{"s"}, algebra.Sum("b", "t"))
	plan, err := algebra.Lower(node, "upfront")
	if err != nil {
		t.Fatal(err)
	}
	lat := LatencyNone
	bgs := startHybridCompiles(context.Background(), 0, plan.Pipelines, lat, 0, nil)
	defer func() {
		for _, h := range bgs {
			h.abandon()
		}
	}()
	if len(bgs) != 2 {
		t.Fatalf("jobs = %d", len(bgs))
	}
	for i, h := range bgs {
		<-h.done
		if h.art.Load() == nil {
			t.Fatalf("pipeline %d code never became ready", i)
		}
	}

	// And the job cap serializes without deadlocking or losing jobs.
	plan2, _ := algebra.Lower(node, "upfront2")
	bgs2 := startHybridCompiles(context.Background(), 0, plan2.Pipelines, lat, 1, nil)
	for i, h := range bgs2 {
		<-h.done
		if h.art.Load() == nil {
			t.Fatalf("capped pipeline %d code never became ready", i)
		}
	}
	for _, h := range bgs2 {
		h.abandon()
	}
}

func TestCaseInsensitiveGroupBy(t *testing.T) {
	// Paper §IV-D collations: ABCD and abCD group together; the displayed
	// key is an original from the group, not the normalized representative.
	tbl := storage.NewTable("ci", types.Schema{
		{Name: "s", Kind: types.String},
		{Name: "v", Kind: types.Float64},
	})
	variants := []string{"ABCD", "abCD", "abcd", "AbCd"}
	for i := 0; i < 4000; i++ {
		tbl.AppendRow(variants[i%4], 1.0)
	}
	tbl.AppendRow("other", 5.0)
	node := &algebra.GroupBy{
		In:     algebra.NewScan(tbl, "s", "v"),
		Keys:   []string{"s"},
		Aggs:   []algebra.AggSpec{algebra.Sum("v", "total"), algebra.Count("n")},
		NoCase: []string{"s"},
	}
	want, err := volcano.Run(node)
	if err != nil {
		t.Fatal(err)
	}
	if want.Rows() != 2 {
		t.Fatalf("oracle groups = %d, want 2", want.Rows())
	}
	for _, backend := range allBackends() {
		res := execPlan(t, node, backend, Options{Workers: 2})
		if res.Rows() != 2 {
			t.Fatalf("%v: groups = %d, want 2", backend, res.Rows())
		}
		for i := 0; i < res.Rows(); i++ {
			row := res.Chunk.Row(i)
			s := row[0].(string)
			switch strings.ToLower(s) {
			case "abcd":
				// The representative must be one of the originals, never the
				// normalized form unless it occurred in the data.
				if !contains(variants, s) {
					t.Fatalf("%v: representative %q is not an original", backend, s)
				}
				if row[1] != 4000.0 || row[2] != int64(4000) {
					t.Fatalf("%v: abcd group: %v", backend, row)
				}
			case "other":
				if row[1] != 5.0 || row[2] != int64(1) {
					t.Fatalf("%v: other group: %v", backend, row)
				}
			default:
				t.Fatalf("%v: unexpected group %q", backend, s)
			}
		}
	}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func TestAntiJoin(t *testing.T) {
	tbl := makeTable()
	dim := storage.NewTable("dimA", types.Schema{{Name: "k", Kind: types.Int64}})
	for i := 0; i < 30; i += 2 {
		dim.AppendRow(int64(i))
	}
	anti := &algebra.HashJoin{
		Build: algebra.NewScan(dim, "k"), Probe: algebra.NewScan(tbl, "a", "b"),
		BuildKeys: []string{"k"}, ProbeKeys: []string{"a"},
		Mode: ir.AntiJoin,
	}
	node := algebra.NewGroupBy(anti, nil, algebra.Sum("b", "s"), algebra.Count("n"))
	checkAgainstVolcano(t, node, "anti")
}

func TestDistinct(t *testing.T) {
	tbl := makeTable()
	// DISTINCT s, a%... : GroupBy with keys and no aggregates.
	node := algebra.NewGroupBy(algebra.NewScan(tbl, "s", "a"), []string{"s", "a"})
	checkAgainstVolcano(t, node, "distinct")
}

func TestDateMinMaxAggregates(t *testing.T) {
	tbl := makeTable()
	node := algebra.NewGroupBy(algebra.NewScan(tbl, "s", "d"), []string{"s"},
		algebra.MinOf("d", "first"), algebra.MaxOf("d", "last"))
	checkAgainstVolcano(t, node, "dateminmax")
}

func TestParseBackend(t *testing.T) {
	for name, want := range map[string]Backend{
		"vectorized": BackendVectorized, "interpreted": BackendVectorized,
		"compiling": BackendCompiling, "jit": BackendCompiling,
		"rof": BackendROF, "hybrid": BackendHybrid, "adaptive": BackendHybrid,
	} {
		got, err := ParseBackend(name)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseBackend("nonsense"); err == nil {
		t.Fatal("expected error")
	}
	if BackendROF.String() != "rof" || Backend(99).String() == "" {
		t.Fatal("backend names")
	}
}

func TestSourceBindingErrors(t *testing.T) {
	// An aggregate-read pipeline scheduled before its build finalized is a
	// plan bug the scheduler must surface, not a crash.
	agg := &rt.AggTableState{}
	pipe := &core.Pipeline{Name: "bad", Source: &core.AggRead{State: agg, Out: core.NewIU(types.Ptr, "g")}}
	if _, err := bindSource(pipe); err == nil {
		t.Fatal("expected error for unfinalized aggregate source")
	}
}

func TestUnknownBackend(t *testing.T) {
	tbl := makeTable()
	plan, err := algebra.Lower(algebra.NewProject(algebra.NewScan(tbl, "a"), "a"), "x")
	if err != nil {
		t.Fatal(err)
	}
	lat := LatencyNone
	if _, err := Execute(plan, Options{Backend: Backend(42), Latency: &lat}); err == nil {
		t.Fatal("unknown backend must error")
	}
}

func TestLatencyModel(t *testing.T) {
	if !LatencyNone.Zero() || LatencyC.Zero() {
		t.Fatal("Zero() wrong")
	}
	f := &struct{}{}
	_ = f
	small := LatencyModel{Base: time.Millisecond, PerNode: time.Microsecond}
	node := algebra.NewScan(makeTable(), "a")
	plan, _ := algebra.Lower(algebra.NewProject(node, "a"), "lat")
	fn, _, err := plan.Pipelines[0].GenFused()
	if err != nil {
		t.Fatal(err)
	}
	if small.Delay(fn) <= small.Base {
		t.Fatal("delay must scale with code size")
	}
}

func TestResultDeterministicWithSort(t *testing.T) {
	// With an ORDER BY, multi-worker execution must give identical output
	// across runs despite nondeterministic morsel interleaving.
	tbl := makeTable()
	g := algebra.NewGroupBy(algebra.NewScan(tbl, "a", "b"), []string{"a"}, algebra.Sum("b", "t"))
	node := algebra.NewOrderBy(g, []string{"a"}, nil, 0)
	var first []string
	for run := 0; run < 3; run++ {
		res := execPlan(t, node, BackendHybrid, Options{Workers: 4, MorselSize: 64})
		var rows []string
		for i := 0; i < res.Rows(); i++ {
			rows = append(rows, fmt.Sprintf("%v", res.Chunk.Row(i)))
		}
		if first == nil {
			first = rows
			continue
		}
		if len(rows) != len(first) {
			t.Fatal("row count varies across runs")
		}
		for i := range rows {
			if rows[i] != first[i] {
				t.Fatalf("row %d varies across runs", i)
			}
		}
	}
	if !sort.StringsAreSorted(nil) { // keep sort import
		t.Fatal("unreachable")
	}
}

package interp

import (
	"os"
	"testing"
)

// The generated-interpreter artifacts checked into the repository
// (internal/interp/gen/interpreter.go, compiled as part of the build, and
// artifacts/interpreter.c) must stay in sync with what the compilation
// stack currently generates — the drift tests regenerate both and compare
// byte-for-byte. Refresh them with:
//
//	go run ./cmd/primgen -lang go > internal/interp/gen/interpreter.go
//	go run ./cmd/primgen          > artifacts/interpreter.c

func TestGeneratedGoArtifactUpToDate(t *testing.T) {
	reg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	want, err := reg.GenerateSource("go")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("gen/interpreter.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("internal/interp/gen/interpreter.go is stale — regenerate with `go run ./cmd/primgen -lang go > internal/interp/gen/interpreter.go`")
	}
}

func TestGeneratedCArtifactUpToDate(t *testing.T) {
	reg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	want, err := reg.GenerateSource("c")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("../../artifacts/interpreter.c")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("artifacts/interpreter.c is stale — regenerate with `go run ./cmd/primgen > artifacts/interpreter.c`")
	}
}

package interp

// Tests for the sampled per-suboperator profiler: attribution must be exact
// in calls/tuples, sampling must honour the period, merging must preserve
// pipeline order, and — the perf contract — the off-path must not allocate
// or change results.

import (
	"testing"

	"inkfuse/internal/core"
	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
	"inkfuse/internal/vm"
)

// profRun builds a two-suboperator arithmetic Run over float64 columns.
func profRun(t *testing.T) (*Run, []*storage.Vector, *storage.Chunk) {
	t.Helper()
	reg := registry(t)
	a := core.NewIU(types.Float64, "a")
	b := core.NewIU(types.Float64, "b")
	sum := core.NewIU(types.Float64, "sum")
	dbl := core.NewIU(types.Float64, "dbl")
	two := rt.ConstF64(2)
	ops := []core.SubOp{
		&core.Arith{Op: ir.Add, L: core.Col(a), R: core.Col(b), Out: sum},
		&core.Arith{Op: ir.Mul, L: core.Col(sum), R: core.ConstOf(two), Out: dbl},
	}
	run, err := NewRun(reg, []*core.IU{a, b}, ops, []*core.IU{dbl})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	av := storage.NewVector(types.Float64, n)
	bv := storage.NewVector(types.Float64, n)
	for i := 0; i < n; i++ {
		av.F64[i] = float64(i)
		bv.F64[i] = float64(10 * i)
	}
	return run, []*storage.Vector{av, bv}, storage.NewChunk([]types.Kind{types.Float64})
}

func TestProfileAttribution(t *testing.T) {
	run, src, out := profRun(t)
	p := run.EnableProfile(1) // sample every chunk
	ctx := vm.NewCtx()
	const chunks, rows = 5, 64
	for i := 0; i < chunks; i++ {
		out.Reset()
		if n := run.RunChunk(ctx, src, rows, out); n != rows {
			t.Fatalf("chunk %d emitted %d rows", i, n)
		}
	}
	if p.Chunks != chunks || p.Sampled != chunks {
		t.Fatalf("chunks=%d sampled=%d, want %d/%d", p.Chunks, p.Sampled, chunks, chunks)
	}
	samples := p.Samples()
	// 2 scan primitives (a, b) + 2 arithmetic suboperators.
	if len(samples) != 4 {
		t.Fatalf("got %d samples: %+v", len(samples), samples)
	}
	for i, s := range samples {
		if s.ID == "" {
			t.Fatalf("sample %d has no primitive ID", i)
		}
		if s.Calls != chunks || s.Tuples != chunks*rows {
			t.Fatalf("sample %s: calls=%d tuples=%d, want %d/%d", s.ID, s.Calls, s.Tuples, chunks, chunks*rows)
		}
		if s.Nanos < 0 {
			t.Fatalf("sample %s: negative nanos", s.ID)
		}
	}
	// The arithmetic samples carry the suboperator enumeration IDs in
	// pipeline order: two tscans, then add, then mul.
	if samples[2].ID == samples[3].ID {
		t.Fatalf("distinct suboperators share an ID: %q", samples[2].ID)
	}
}

func TestProfileSamplingPeriod(t *testing.T) {
	run, src, out := profRun(t)
	p := run.EnableProfile(4)
	ctx := vm.NewCtx()
	for i := 0; i < 8; i++ {
		out.Reset()
		run.RunChunk(ctx, src, 64, out)
	}
	if p.Chunks != 8 || p.Sampled != 2 {
		t.Fatalf("chunks=%d sampled=%d, want 8/2", p.Chunks, p.Sampled)
	}
	for _, s := range p.Samples() {
		if s.Calls != 2 {
			t.Fatalf("sample %s: calls=%d, want 2 (one per sampled chunk)", s.ID, s.Calls)
		}
	}
	if every := run.EnableProfile(0).Every; every != DefaultProfileEvery {
		t.Fatalf("default sampling period = %d, want %d", every, DefaultProfileEvery)
	}
}

func TestProfiledResultsUnchanged(t *testing.T) {
	plain, src, outPlain := profRun(t)
	profiled, _, outProf := profRun(t)
	profiled.EnableProfile(1)
	ctxA, ctxB := vm.NewCtx(), vm.NewCtx()
	plain.RunChunk(ctxA, src, 64, outPlain)
	profiled.RunChunk(ctxB, src, 64, outProf)
	if outPlain.Rows() != outProf.Rows() {
		t.Fatalf("row mismatch: %d vs %d", outPlain.Rows(), outProf.Rows())
	}
	for i := 0; i < outPlain.Rows(); i++ {
		if outPlain.Cols[0].F64[i] != outProf.Cols[0].F64[i] {
			t.Fatalf("row %d: %v vs %v", i, outPlain.Cols[0].F64[i], outProf.Cols[0].F64[i])
		}
	}
	if ctxA.Counters.PrimitiveCalls != ctxB.Counters.PrimitiveCalls {
		t.Fatalf("counter drift: %d vs %d", ctxA.Counters.PrimitiveCalls, ctxB.Counters.PrimitiveCalls)
	}
}

func TestMergeProfiles(t *testing.T) {
	runA, src, out := profRun(t)
	runB, _, _ := profRun(t)
	pa := runA.EnableProfile(1)
	pb := runB.EnableProfile(1)
	ctx := vm.NewCtx()
	out.Reset()
	runA.RunChunk(ctx, src, 64, out)
	out.Reset()
	runB.RunChunk(ctx, src, 64, out)
	out.Reset()
	runB.RunChunk(ctx, src, 64, out)

	merged := MergeProfiles([]*Profile{pa, nil, pb})
	if len(merged) != 4 {
		t.Fatalf("merged %d samples", len(merged))
	}
	for _, s := range merged {
		if s.Calls != 3 || s.Tuples != 3*64 {
			t.Fatalf("merged sample %s: calls=%d tuples=%d, want 3/%d", s.ID, s.Calls, s.Tuples, 3*64)
		}
	}
	if MergeProfiles(nil) != nil {
		t.Fatal("merging nothing must yield nil")
	}
}

// TestProfilerOffPathNoAllocs is the benchmark guard's alloc half: with the
// profiler off (the default), RunChunk must not allocate per chunk — the
// emit column list is pre-wired and the off-path is one nil check.
func TestProfilerOffPathNoAllocs(t *testing.T) {
	run, src, out := profRun(t)
	ctx := vm.NewCtx()
	// Warm-up: grow the output chunk and fault in the vm frames.
	run.RunChunk(ctx, src, 64, out)
	allocs := testing.AllocsPerRun(200, func() {
		out.Reset()
		run.RunChunk(ctx, src, 64, out)
	})
	if allocs != 0 {
		t.Fatalf("profiler-off RunChunk allocates %.1f per chunk, want 0", allocs)
	}
}

// The profiler-on path may allocate only at enable time, never per chunk.
func TestProfilerOnPathNoPerChunkAllocs(t *testing.T) {
	run, src, out := profRun(t)
	run.EnableProfile(1)
	ctx := vm.NewCtx()
	run.RunChunk(ctx, src, 64, out)
	allocs := testing.AllocsPerRun(200, func() {
		out.Reset()
		run.RunChunk(ctx, src, 64, out)
	})
	if allocs != 0 {
		t.Fatalf("profiled RunChunk allocates %.1f per chunk, want 0", allocs)
	}
}

// Package interp is the generated vectorized interpreter (paper §V-A). At
// engine startup it enumerates every suboperator instantiation, pushes each
// through the regular compilation stack wrapped between a tuple-buffer
// source and sink, and caches the resulting primitive. Interpreting a
// pipeline then means mapping each suboperator to its pre-generated
// primitive and invoking the primitives chunk-at-a-time over tuple buffers.
//
// As in InkFuse, the backend itself is tiny: it resolves suboperators to
// primitives and moves chunks — everything else was generated.
package interp

import (
	"fmt"
	"go/format"
	"sort"
	"strings"
	"sync"
	"time"

	"inkfuse/internal/core"
	"inkfuse/internal/ir"
	"inkfuse/internal/storage"
	"inkfuse/internal/vm"
)

// Registry is the primitive cache: every enumerable suboperator's compiled
// vectorized primitive, generated once at startup and shared by all queries
// and workers.
type Registry struct {
	progs map[string]*vm.Program
	funcs map[string]*ir.Func
}

var (
	defaultRegistry     *Registry
	defaultRegistryOnce sync.Once
	defaultRegistryErr  error
)

// Default returns the process-wide registry, generating it on first use
// ("the primitives are generated ... and loaded once when starting the
// database", paper §V-A).
func Default() (*Registry, error) {
	defaultRegistryOnce.Do(func() {
		defaultRegistry, defaultRegistryErr = NewRegistry()
	})
	return defaultRegistry, defaultRegistryErr
}

// NewRegistry enumerates all suboperators and generates their primitives.
func NewRegistry() (*Registry, error) {
	r := &Registry{
		progs: make(map[string]*vm.Program),
		funcs: make(map[string]*ir.Func),
	}
	for _, op := range core.Enumerate() {
		id := op.PrimitiveID()
		if _, dup := r.progs[id]; dup {
			return nil, fmt.Errorf("interp: duplicate primitive %q in enumeration", id)
		}
		f, err := core.BuildPrimitive(op)
		if err != nil {
			return nil, err
		}
		if err := ir.Verify(f); err != nil {
			return nil, fmt.Errorf("interp: primitive %q fails verification: %w", id, err)
		}
		p, err := vm.Compile(f)
		if err != nil {
			return nil, fmt.Errorf("interp: compiling primitive %q: %w", id, err)
		}
		r.progs[id] = p
		r.funcs[id] = f
	}
	return r, nil
}

// Get returns the primitive for an enumeration ID.
func (r *Registry) Get(id string) (*vm.Program, bool) {
	p, ok := r.progs[id]
	return p, ok
}

// Func returns the primitive's IR (cmd/primgen renders these as C).
func (r *Registry) Func(id string) (*ir.Func, bool) {
	f, ok := r.funcs[id]
	return f, ok
}

// Len returns the number of generated primitives.
func (r *Registry) Len() int { return len(r.progs) }

// IDs returns all primitive IDs (unordered).
func (r *Registry) IDs() []string {
	out := make([]string, 0, len(r.progs))
	for id := range r.progs {
		out = append(out, id)
	}
	return out
}

// GenerateSource renders the complete generated interpreter as source code
// ("c" or "go"); cmd/primgen prints it and the artifact drift tests compare
// it against the checked-in copies. Go output is gofmt-formatted.
func (r *Registry) GenerateSource(lang string) (string, error) {
	ids := r.IDs()
	sort.Strings(ids)
	var b strings.Builder
	if lang == "go" {
		b.WriteString(ir.EmitGoPrelude())
	} else {
		b.WriteString("/* The complete generated vectorized interpreter.\n")
		b.WriteString("   Every function below was produced by wrapping one enumerated\n")
		b.WriteString("   suboperator between a tuple-buffer source and sink and running\n")
		b.WriteString("   the engine's single compilation stack (paper §V-A). */\n")
	}
	for _, id := range ids {
		f := r.funcs[id]
		b.WriteString("\n")
		if lang == "go" {
			b.WriteString(ir.EmitGo(f))
		} else {
			b.WriteString(ir.EmitC(f))
		}
	}
	if lang == "go" {
		src, err := format.Source([]byte(b.String()))
		if err != nil {
			return "", fmt.Errorf("interp: generated Go does not format: %w", err)
		}
		return string(src), nil
	}
	return b.String(), nil
}

// compiledOp is one suboperator resolved to its primitive.
type compiledOp struct {
	id     string // the primitive's enumeration ID (profiler attribution)
	prog   *vm.Program
	states []any
	ins    []*core.IU
	outs   []*core.IU
	sink   bool
}

// SubOpSample is one suboperator's sampled profile attribution: how many
// chunks its primitive ran on, how many input tuples it saw, and the
// nanoseconds spent inside it.
type SubOpSample struct {
	ID     string
	Calls  int64
	Tuples int64
	Nanos  int64
}

// Profile is a per-Run (and therefore per-worker) sampling profiler over the
// suboperator primitives: every Every-th chunk is run through a timed step
// loop that attributes nanoseconds and tuples to each primitive. Between
// samples the interpreter takes its regular untimed path, so the steady-state
// cost of an enabled profiler is one counter increment and modulo per chunk —
// and with profiling off (Run.prof == nil) a single nil check per chunk.
//
// A Profile belongs to one Run: no locks, no atomics. Merge per-worker
// profiles with MergeProfiles.
type Profile struct {
	// Every is the sampling period in chunks (1 = profile every chunk).
	Every int
	// Chunks counts chunks seen; Sampled counts chunks profiled.
	Chunks  int64
	Sampled int64
	samples []SubOpSample // parallel to the Run's scan+ops sequence
}

// tick advances the chunk counter and reports whether to sample this chunk.
//
//inkfuse:hotpath
func (p *Profile) tick() bool {
	p.Chunks++
	if p.Chunks%int64(p.Every) != 0 {
		return false
	}
	p.Sampled++
	return true
}

// Samples returns the per-suboperator attributions in pipeline order
// (including suboperators that were never sampled, with zero counts).
func (p *Profile) Samples() []SubOpSample {
	return append([]SubOpSample{}, p.samples...)
}

// MergeProfiles folds per-worker profiles of the same suboperator sequence
// into one attribution list, preserving pipeline order. Profiles from
// different pipelines must not be mixed; nil entries are skipped.
func MergeProfiles(profs []*Profile) []SubOpSample {
	var out []SubOpSample
	for _, p := range profs {
		if p == nil {
			continue
		}
		if out == nil {
			out = p.Samples()
			continue
		}
		for i := range p.samples {
			if i >= len(out) {
				break
			}
			out[i].Calls += p.samples[i].Calls
			out[i].Tuples += p.samples[i].Tuples
			out[i].Nanos += p.samples[i].Nanos
		}
	}
	return out
}

// Run interprets one step (a suboperator sequence) for a single worker. It
// owns the per-IU tuple-buffer columns, so each worker builds its own Run
// from the shared registry.
type Run struct {
	reg    *Registry
	source []*core.IU
	scan   []compiledOp // tscan primitives materializing the source
	ops    []compiledOp
	emit   []*core.IU

	ws map[int]*storage.Vector // IU ID -> tuple-buffer column

	outChunks []*storage.Chunk // per op, wrapping its outs' vectors
	inVecs    [][]*storage.Vector
	emitVecs  []*storage.Vector // pre-wired emit columns (no per-chunk alloc)
	scanIn    []*storage.Vector // reusable 1-element scan input binding

	// prof is the optional sampling profiler (EnableProfile); nil costs one
	// branch per chunk.
	prof *Profile
}

// EnableProfile attaches a sampling profiler to this Run: every every-th
// chunk is timed per suboperator primitive. Returns the profile for later
// collection. every <= 0 defaults to DefaultProfileEvery.
func (r *Run) EnableProfile(every int) *Profile {
	if every <= 0 {
		every = DefaultProfileEvery
	}
	p := &Profile{Every: every, samples: make([]SubOpSample, len(r.scan)+len(r.ops))}
	for i, co := range r.scan {
		p.samples[i].ID = co.id
	}
	for i, co := range r.ops {
		p.samples[len(r.scan)+i].ID = co.id
	}
	r.prof = p
	return p
}

// DefaultProfileEvery is the default suboperator-profiler sampling period:
// one in every 8 chunks is timed (~12% of chunks carry the timestamp cost,
// attribution stays statistically stable even for short pipelines).
const DefaultProfileEvery = 8

// NewRun prepares a per-worker interpreter for the given suboperator
// sequence. Every suboperator must have a pre-generated primitive — the
// enumeration invariant guarantees it; a miss is reported as an error.
func NewRun(reg *Registry, source []*core.IU, ops []core.SubOp, emit []*core.IU) (*Run, error) {
	r := &Run{reg: reg, source: source, emit: emit, ws: make(map[int]*storage.Vector)}
	for _, iu := range source {
		r.ws[iu.ID] = storage.NewVector(iu.K, 0)
		scan := &core.ScanCol{Src: iu, Dst: iu}
		p, ok := reg.Get(scan.PrimitiveID())
		if !ok {
			return nil, fmt.Errorf("interp: no scan primitive for kind %v", iu.K)
		}
		r.scan = append(r.scan, compiledOp{id: scan.PrimitiveID(), prog: p, ins: []*core.IU{iu}, outs: []*core.IU{iu}})
	}
	for _, op := range ops {
		if _, isScope := op.(*core.FilterScope); isScope {
			// The branch is fused into the filter-copy primitives.
			continue
		}
		id := op.PrimitiveID()
		p, ok := reg.Get(id)
		if !ok {
			return nil, fmt.Errorf("interp: suboperator %q has no pre-generated primitive (enumeration invariant violated)", id)
		}
		co := compiledOp{id: id, prog: p, states: op.States(), ins: op.Inputs(), outs: op.Outputs(), sink: len(op.Outputs()) == 0}
		for _, iu := range co.outs {
			if _, ok := r.ws[iu.ID]; !ok {
				r.ws[iu.ID] = storage.NewVector(iu.K, 0)
			}
		}
		r.ops = append(r.ops, co)
	}
	// Pre-wire input/output vector lists and output chunks.
	all := append(append([]compiledOp{}, r.scan...), r.ops...)
	for i := range all {
		co := &all[i]
		var ins []*storage.Vector
		for _, iu := range co.ins {
			v, ok := r.ws[iu.ID]
			if !ok {
				return nil, fmt.Errorf("interp: %s consumes unmaterialized IU %s", co.prog.Fn.Name, iu)
			}
			ins = append(ins, v)
		}
		r.inVecs = append(r.inVecs, ins)
		var chunk *storage.Chunk
		if !co.sink {
			cols := make([]*storage.Vector, len(co.outs))
			for j, iu := range co.outs {
				cols[j] = r.ws[iu.ID]
			}
			chunk = &storage.Chunk{Cols: cols}
		}
		r.outChunks = append(r.outChunks, chunk)
	}
	r.scan = all[:len(r.scan)]
	r.ops = all[len(r.scan):]
	// Pre-wire the emit column list: the ws vectors are stable pointers, so
	// the per-chunk emit tail reads them without allocating.
	r.emitVecs = make([]*storage.Vector, len(r.emit))
	for i, iu := range r.emit {
		r.emitVecs[i] = r.ws[iu.ID]
	}
	r.scanIn = make([]*storage.Vector, 1)
	return r, nil
}

// RunChunk pushes one source chunk through the step. srcVecs are bound to
// the source IUs (base-table column slices or hash-table row vectors); out
// receives the emitted columns (may be nil for pure sinks). Returns emitted
// rows.
//
//inkfuse:hotpath
func (r *Run) RunChunk(ctx *vm.Ctx, srcVecs []*storage.Vector, n int, out *storage.Chunk) int {
	// The profiler off-path is this single nil check; an enabled profiler
	// adds a counter/modulo between samples.
	if p := r.prof; p != nil && p.tick() {
		r.runStepsProfiled(ctx, srcVecs, n)
	} else {
		r.runSteps(ctx, srcVecs, n)
	}
	if len(r.emit) == 0 || out == nil {
		return 0
	}
	en := 0
	for _, v := range r.emitVecs {
		en = v.Len()
	}
	bytes := out.AppendFromVectors(r.emitVecs, en)
	ctx.Counters.MaterializedBytes += bytes
	ctx.Counters.EmittedRows += int64(en)
	return en
}

// runSteps pushes the chunk through the scan and suboperator primitives —
// the untimed hot path.
//
//inkfuse:hotpath
func (r *Run) runSteps(ctx *vm.Ctx, srcVecs []*storage.Vector, n int) {
	// Materialize the source into the first tuple buffer via the generated
	// scan primitives (paper Fig 3, step 1).
	for i, co := range r.scan {
		r.outChunks[i].Reset()
		r.scanIn[0] = srcVecs[i]
		co.prog.Run(ctx, co.states, r.scanIn, n, r.outChunks[i])
		ctx.Counters.PrimitiveCalls++
	}
	base := len(r.scan)
	for i, co := range r.ops {
		ins := r.inVecs[base+i]
		// The chunk's current cardinality is carried by the primitive's
		// first input column (dense-chunk model).
		cn := n
		if len(ins) > 0 {
			cn = ins[0].Len()
		}
		chunk := r.outChunks[base+i]
		if chunk != nil {
			chunk.Reset()
		}
		co.prog.Run(ctx, co.states, ins, cn, chunk)
		ctx.Counters.PrimitiveCalls++
	}
}

// runStepsProfiled is runSteps with per-primitive timing, attributing
// nanoseconds and input tuples to each suboperator's sample slot.
//
//inkfuse:hotpath
func (r *Run) runStepsProfiled(ctx *vm.Ctx, srcVecs []*storage.Vector, n int) {
	p := r.prof
	for i, co := range r.scan {
		r.outChunks[i].Reset()
		r.scanIn[0] = srcVecs[i]
		t0 := time.Now()
		co.prog.Run(ctx, co.states, r.scanIn, n, r.outChunks[i])
		s := &p.samples[i]
		s.Nanos += time.Since(t0).Nanoseconds()
		s.Calls++
		s.Tuples += int64(n)
		ctx.Counters.PrimitiveCalls++
	}
	base := len(r.scan)
	for i, co := range r.ops {
		ins := r.inVecs[base+i]
		cn := n
		if len(ins) > 0 {
			cn = ins[0].Len()
		}
		chunk := r.outChunks[base+i]
		if chunk != nil {
			chunk.Reset()
		}
		t0 := time.Now()
		co.prog.Run(ctx, co.states, ins, cn, chunk)
		s := &p.samples[base+i]
		s.Nanos += time.Since(t0).Nanoseconds()
		s.Calls++
		s.Tuples += int64(cn)
		ctx.Counters.PrimitiveCalls++
	}
}

// Package interp is the generated vectorized interpreter (paper §V-A). At
// engine startup it enumerates every suboperator instantiation, pushes each
// through the regular compilation stack wrapped between a tuple-buffer
// source and sink, and caches the resulting primitive. Interpreting a
// pipeline then means mapping each suboperator to its pre-generated
// primitive and invoking the primitives chunk-at-a-time over tuple buffers.
//
// As in InkFuse, the backend itself is tiny: it resolves suboperators to
// primitives and moves chunks — everything else was generated.
package interp

import (
	"fmt"
	"go/format"
	"sort"
	"strings"
	"sync"

	"inkfuse/internal/core"
	"inkfuse/internal/ir"
	"inkfuse/internal/storage"
	"inkfuse/internal/vm"
)

// Registry is the primitive cache: every enumerable suboperator's compiled
// vectorized primitive, generated once at startup and shared by all queries
// and workers.
type Registry struct {
	progs map[string]*vm.Program
	funcs map[string]*ir.Func
}

var (
	defaultRegistry     *Registry
	defaultRegistryOnce sync.Once
	defaultRegistryErr  error
)

// Default returns the process-wide registry, generating it on first use
// ("the primitives are generated ... and loaded once when starting the
// database", paper §V-A).
func Default() (*Registry, error) {
	defaultRegistryOnce.Do(func() {
		defaultRegistry, defaultRegistryErr = NewRegistry()
	})
	return defaultRegistry, defaultRegistryErr
}

// NewRegistry enumerates all suboperators and generates their primitives.
func NewRegistry() (*Registry, error) {
	r := &Registry{
		progs: make(map[string]*vm.Program),
		funcs: make(map[string]*ir.Func),
	}
	for _, op := range core.Enumerate() {
		id := op.PrimitiveID()
		if _, dup := r.progs[id]; dup {
			return nil, fmt.Errorf("interp: duplicate primitive %q in enumeration", id)
		}
		f, err := core.BuildPrimitive(op)
		if err != nil {
			return nil, err
		}
		if err := ir.Verify(f); err != nil {
			return nil, fmt.Errorf("interp: primitive %q fails verification: %w", id, err)
		}
		p, err := vm.Compile(f)
		if err != nil {
			return nil, fmt.Errorf("interp: compiling primitive %q: %w", id, err)
		}
		r.progs[id] = p
		r.funcs[id] = f
	}
	return r, nil
}

// Get returns the primitive for an enumeration ID.
func (r *Registry) Get(id string) (*vm.Program, bool) {
	p, ok := r.progs[id]
	return p, ok
}

// Func returns the primitive's IR (cmd/primgen renders these as C).
func (r *Registry) Func(id string) (*ir.Func, bool) {
	f, ok := r.funcs[id]
	return f, ok
}

// Len returns the number of generated primitives.
func (r *Registry) Len() int { return len(r.progs) }

// IDs returns all primitive IDs (unordered).
func (r *Registry) IDs() []string {
	out := make([]string, 0, len(r.progs))
	for id := range r.progs {
		out = append(out, id)
	}
	return out
}

// GenerateSource renders the complete generated interpreter as source code
// ("c" or "go"); cmd/primgen prints it and the artifact drift tests compare
// it against the checked-in copies. Go output is gofmt-formatted.
func (r *Registry) GenerateSource(lang string) (string, error) {
	ids := r.IDs()
	sort.Strings(ids)
	var b strings.Builder
	if lang == "go" {
		b.WriteString(ir.EmitGoPrelude())
	} else {
		b.WriteString("/* The complete generated vectorized interpreter.\n")
		b.WriteString("   Every function below was produced by wrapping one enumerated\n")
		b.WriteString("   suboperator between a tuple-buffer source and sink and running\n")
		b.WriteString("   the engine's single compilation stack (paper §V-A). */\n")
	}
	for _, id := range ids {
		f := r.funcs[id]
		b.WriteString("\n")
		if lang == "go" {
			b.WriteString(ir.EmitGo(f))
		} else {
			b.WriteString(ir.EmitC(f))
		}
	}
	if lang == "go" {
		src, err := format.Source([]byte(b.String()))
		if err != nil {
			return "", fmt.Errorf("interp: generated Go does not format: %w", err)
		}
		return string(src), nil
	}
	return b.String(), nil
}

// compiledOp is one suboperator resolved to its primitive.
type compiledOp struct {
	prog   *vm.Program
	states []any
	ins    []*core.IU
	outs   []*core.IU
	sink   bool
}

// Run interprets one step (a suboperator sequence) for a single worker. It
// owns the per-IU tuple-buffer columns, so each worker builds its own Run
// from the shared registry.
type Run struct {
	reg    *Registry
	source []*core.IU
	scan   []compiledOp // tscan primitives materializing the source
	ops    []compiledOp
	emit   []*core.IU

	ws map[int]*storage.Vector // IU ID -> tuple-buffer column

	outChunks []*storage.Chunk // per op, wrapping its outs' vectors
	inVecs    [][]*storage.Vector
}

// NewRun prepares a per-worker interpreter for the given suboperator
// sequence. Every suboperator must have a pre-generated primitive — the
// enumeration invariant guarantees it; a miss is reported as an error.
func NewRun(reg *Registry, source []*core.IU, ops []core.SubOp, emit []*core.IU) (*Run, error) {
	r := &Run{reg: reg, source: source, emit: emit, ws: make(map[int]*storage.Vector)}
	for _, iu := range source {
		r.ws[iu.ID] = storage.NewVector(iu.K, 0)
		scan := &core.ScanCol{Src: iu, Dst: iu}
		p, ok := reg.Get(scan.PrimitiveID())
		if !ok {
			return nil, fmt.Errorf("interp: no scan primitive for kind %v", iu.K)
		}
		r.scan = append(r.scan, compiledOp{prog: p, ins: []*core.IU{iu}, outs: []*core.IU{iu}})
	}
	for _, op := range ops {
		if _, isScope := op.(*core.FilterScope); isScope {
			// The branch is fused into the filter-copy primitives.
			continue
		}
		id := op.PrimitiveID()
		p, ok := reg.Get(id)
		if !ok {
			return nil, fmt.Errorf("interp: suboperator %q has no pre-generated primitive (enumeration invariant violated)", id)
		}
		co := compiledOp{prog: p, states: op.States(), ins: op.Inputs(), outs: op.Outputs(), sink: len(op.Outputs()) == 0}
		for _, iu := range co.outs {
			if _, ok := r.ws[iu.ID]; !ok {
				r.ws[iu.ID] = storage.NewVector(iu.K, 0)
			}
		}
		r.ops = append(r.ops, co)
	}
	// Pre-wire input/output vector lists and output chunks.
	all := append(append([]compiledOp{}, r.scan...), r.ops...)
	for i := range all {
		co := &all[i]
		var ins []*storage.Vector
		for _, iu := range co.ins {
			v, ok := r.ws[iu.ID]
			if !ok {
				return nil, fmt.Errorf("interp: %s consumes unmaterialized IU %s", co.prog.Fn.Name, iu)
			}
			ins = append(ins, v)
		}
		r.inVecs = append(r.inVecs, ins)
		var chunk *storage.Chunk
		if !co.sink {
			cols := make([]*storage.Vector, len(co.outs))
			for j, iu := range co.outs {
				cols[j] = r.ws[iu.ID]
			}
			chunk = &storage.Chunk{Cols: cols}
		}
		r.outChunks = append(r.outChunks, chunk)
	}
	r.scan = all[:len(r.scan)]
	r.ops = all[len(r.scan):]
	return r, nil
}

// RunChunk pushes one source chunk through the step. srcVecs are bound to
// the source IUs (base-table column slices or hash-table row vectors); out
// receives the emitted columns (may be nil for pure sinks). Returns emitted
// rows.
func (r *Run) RunChunk(ctx *vm.Ctx, srcVecs []*storage.Vector, n int, out *storage.Chunk) int {
	// Materialize the source into the first tuple buffer via the generated
	// scan primitives (paper Fig 3, step 1).
	for i, co := range r.scan {
		r.outChunks[i].Reset()
		co.prog.Run(ctx, co.states, []*storage.Vector{srcVecs[i]}, n, r.outChunks[i])
		ctx.Counters.PrimitiveCalls++
	}
	base := len(r.scan)
	for i, co := range r.ops {
		ins := r.inVecs[base+i]
		// The chunk's current cardinality is carried by the primitive's
		// first input column (dense-chunk model).
		cn := n
		if len(ins) > 0 {
			cn = ins[0].Len()
		}
		chunk := r.outChunks[base+i]
		if chunk != nil {
			chunk.Reset()
		}
		co.prog.Run(ctx, co.states, ins, cn, chunk)
		ctx.Counters.PrimitiveCalls++
	}
	if len(r.emit) == 0 || out == nil {
		return 0
	}
	vs := make([]*storage.Vector, len(r.emit))
	en := 0
	for i, iu := range r.emit {
		vs[i] = r.ws[iu.ID]
		en = vs[i].Len()
	}
	bytes := out.AppendFromVectors(vs, en)
	ctx.Counters.MaterializedBytes += bytes
	ctx.Counters.EmittedRows += int64(en)
	return en
}

package interp

import (
	"strings"
	"testing"

	"inkfuse/internal/core"
	"inkfuse/internal/ir"
	"inkfuse/internal/rt"
	"inkfuse/internal/storage"
	"inkfuse/internal/types"
	"inkfuse/internal/vm"
)

func registry(t *testing.T) *Registry {
	t.Helper()
	reg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRegistryComplete(t *testing.T) {
	reg := registry(t)
	// Every enumerated suboperator must resolve (this is the executable form
	// of "the engine can be sure a suitable primitive was generated ahead of
	// time", paper §V-A).
	for _, op := range core.Enumerate() {
		if _, ok := reg.Get(op.PrimitiveID()); !ok {
			t.Errorf("no primitive for %q", op.PrimitiveID())
		}
		if _, ok := reg.Func(op.PrimitiveID()); !ok {
			t.Errorf("no IR for %q", op.PrimitiveID())
		}
	}
	if reg.Len() < 150 {
		t.Fatalf("registry too small: %d", reg.Len())
	}
	if len(reg.IDs()) != reg.Len() {
		t.Fatal("IDs() inconsistent")
	}
}

func TestRegistryPrimitivesAreC(t *testing.T) {
	reg := registry(t)
	f, ok := reg.Func("expr_add_f64_cc")
	if !ok {
		t.Fatal("missing canonical primitive")
	}
	c := ir.EmitC(f)
	if !strings.Contains(c, "(p_") || !strings.Contains(c, "for (int64_t i") {
		t.Fatalf("unexpected C:\n%s", c)
	}
}

func TestRunSimpleExpression(t *testing.T) {
	reg := registry(t)
	a := core.NewIU(types.Float64, "a")
	b := core.NewIU(types.Float64, "b")
	sum := core.NewIU(types.Float64, "sum")
	dbl := core.NewIU(types.Float64, "dbl")
	two := rt.ConstF64(2)
	ops := []core.SubOp{
		&core.Arith{Op: ir.Add, L: core.Col(a), R: core.Col(b), Out: sum},
		&core.Arith{Op: ir.Mul, L: core.Col(sum), R: core.ConstOf(two), Out: dbl},
	}
	run, err := NewRun(reg, []*core.IU{a, b}, ops, []*core.IU{dbl})
	if err != nil {
		t.Fatal(err)
	}
	av := storage.NewVector(types.Float64, 3)
	bv := storage.NewVector(types.Float64, 3)
	copy(av.F64, []float64{1, 2, 3})
	copy(bv.F64, []float64{10, 20, 30})
	out := storage.NewChunk([]types.Kind{types.Float64})
	ctx := vm.NewCtx()
	n := run.RunChunk(ctx, []*storage.Vector{av, bv}, 3, out)
	if n != 3 || out.Cols[0].F64[0] != 22 || out.Cols[0].F64[2] != 66 {
		t.Fatalf("interp result: n=%d %v", n, out.Cols[0].F64)
	}
	if ctx.Counters.PrimitiveCalls == 0 || ctx.Counters.MaterializedBytes == 0 {
		t.Fatal("interp did not account primitive calls / materialization")
	}
}

func TestRunFilterCardinality(t *testing.T) {
	reg := registry(t)
	a := core.NewIU(types.Int64, "a")
	cond := core.NewIU(types.Bool, "cond")
	inner := core.NewIU(types.Int64, "inner")
	thr := rt.ConstI64(5)
	ops := []core.SubOp{
		&core.Cmp{Op: ir.Gt, L: core.Col(a), R: core.ConstOf(thr), Out: cond},
		&core.FilterScope{Cond: cond},
		&core.FilterCopy{Cond: cond, Src: a, Dst: inner},
	}
	run, err := NewRun(reg, []*core.IU{a}, ops, []*core.IU{inner})
	if err != nil {
		t.Fatal(err)
	}
	av := storage.NewVector(types.Int64, 4)
	copy(av.I64, []int64{3, 7, 5, 9})
	out := storage.NewChunk([]types.Kind{types.Int64})
	n := run.RunChunk(vm.NewCtx(), []*storage.Vector{av}, 4, out)
	if n != 2 || out.Cols[0].I64[0] != 7 || out.Cols[0].I64[1] != 9 {
		t.Fatalf("filter interp: n=%d %v", n, out.Cols[0].I64)
	}
}

func TestRunExplodingJoinGrowsOutput(t *testing.T) {
	// One probe row with many matches: the output chunk must grow past the
	// input cardinality (the exponentially growing sink, paper §IV-E).
	reg := registry(t)
	jt := &rt.JoinTableState{Table: rt.NewJoinTable(2)}
	key := make([]byte, 8)
	rt.PutI64(key, 0, 1)
	for i := 0; i < 1000; i++ {
		payload := make([]byte, 8)
		rt.PutI64(payload, 0, int64(i))
		jt.Table.Insert(key, payload, rt.Hash64(key))
	}
	jt.Table.Seal()

	k := core.NewIU(types.Int64, "k")
	layout := &rt.RowLayoutState{KeyFixed: 8}
	r0 := core.NewIU(types.Ptr, "r0")
	r1 := core.NewIU(types.Ptr, "r1")
	r2 := core.NewIU(types.Ptr, "r2")
	build := core.NewIU(types.Ptr, "build")
	probeOut := core.NewIU(types.Ptr, "probe")
	val := core.NewIU(types.Int64, "val")
	ops := []core.SubOp{
		&core.MakeRow{Anchor: k, Layout: layout, Out: r0},
		&core.PackFixed{Row: r0, Val: k, Region: ir.KeyRegion, Off: &rt.OffsetState{Layout: layout}, Out: r1},
		&core.SealKey{Row: r1, Layout: layout, Out: r2},
		&core.JoinProbe{Row: r2, State: jt, Mode: ir.InnerJoin, BuildOut: build, ProbeOut: probeOut, MatchedOut: core.NewIU(types.Bool, "m")},
		&core.UnpackFixed{Row: build, Region: ir.PayloadRegion, Off: &rt.OffsetState{}, Out: val},
	}
	run, err := NewRun(reg, []*core.IU{k}, ops, []*core.IU{val})
	if err != nil {
		t.Fatal(err)
	}
	kv := storage.NewVector(types.Int64, 2)
	kv.I64[0], kv.I64[1] = 1, 2 // key 2 has no matches
	out := storage.NewChunk([]types.Kind{types.Int64})
	n := run.RunChunk(vm.NewCtx(), []*storage.Vector{kv}, 2, out)
	if n != 1000 {
		t.Fatalf("exploding join produced %d rows, want 1000", n)
	}
	seen := map[int64]bool{}
	for i := 0; i < n; i++ {
		seen[out.Cols[0].I64[i]] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("distinct payloads = %d", len(seen))
	}
}

func TestNewRunRejectsUnknownInputs(t *testing.T) {
	reg := registry(t)
	a := core.NewIU(types.Int64, "a")
	orphan := core.NewIU(types.Int64, "orphan")
	out := core.NewIU(types.Int64, "out")
	ops := []core.SubOp{&core.Arith{Op: ir.Add, L: core.Col(a), R: core.Col(orphan), Out: out}}
	if _, err := NewRun(reg, []*core.IU{a}, ops, []*core.IU{out}); err == nil {
		t.Fatal("expected unmaterialized-IU error")
	}
}

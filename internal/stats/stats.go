// Package stats collects engine-internal execution counters. They stand in
// for the hardware performance counters of the paper's Table I (see
// DESIGN.md §2): VM value operations approximate retired instructions, and
// materialized buffer traffic plus hash-table probe volume approximate the
// memory-system behaviour the paper attributes LLC-miss differences to.
package stats

import (
	"fmt"
	"time"
)

// Counters accumulates per-worker execution statistics. Workers own private
// instances (no atomics on hot paths) that are merged after the query.
type Counters struct {
	// Tuples is the number of tuples entering pipelines (source rows).
	Tuples int64
	// VMOps counts value-level operations executed by compiled programs and
	// primitives (one per row per operator) — the instruction proxy.
	VMOps int64
	// MaterializedBytes counts bytes written into tuple buffers between
	// steps — the vectorized interpreter's extra memory traffic.
	MaterializedBytes int64
	// PrimitiveCalls counts vectorized-primitive invocations.
	PrimitiveCalls int64
	// FusedCalls counts fused-program invocations (one per morsel).
	FusedCalls int64
	// HTProbes / HTMatches count hash-table lookups and produced matches.
	HTProbes  int64
	HTMatches int64
	// HTInserts counts hash-table inserts (join build + new agg groups).
	HTInserts int64
	// HTLocalHits counts aggregation lookups absorbed by a worker's bounded
	// thread-local pre-aggregation table (no shard lock taken).
	HTLocalHits int64
	// HTSpills counts local pre-aggregation group rows merged into the
	// worker's sharded table at morsel boundaries or on overflow.
	HTSpills int64
	// HTBloomSkips counts join probes answered "definitely absent" by the
	// build-side bloom/tag filter without touching bucket memory.
	HTBloomSkips int64
	// PartRoutedRows counts rows hash-routed through local exchanges
	// (DESIGN.md §15); 0 unless a plan was lowered with Exchange on.
	PartRoutedRows int64
	// PartMaxPartRows is the largest single exchange partition's routed-row
	// count across the query — the skew signal (a perfectly uniform exchange
	// has PartRoutedRows / partitions per partition).
	PartMaxPartRows int64
	// EmittedRows counts rows emitted by sinks.
	EmittedRows int64
	// MorselsVectorized / MorselsCompiled count the hybrid backend's routing.
	MorselsVectorized int64
	MorselsCompiled   int64
	// CompileWait is the wall-clock time the query spent with no compiled
	// code available while a backend wanted it (the dashed bars of Fig 10).
	CompileWait time.Duration
	// CompileTime is the total time spent compiling (background or not).
	CompileTime time.Duration
	// CompileErrors counts failed compilation jobs. Background (hybrid)
	// failures degrade the pipeline to the vectorized interpreter instead of
	// failing the query, so a nonzero count with a successful result means
	// the engine ran degraded.
	CompileErrors int64
	// PanicsRecovered counts panics the lifecycle layer caught and converted
	// into per-query errors (one per failed morsel or finalization).
	PanicsRecovered int64
	// MemPeakBytes is the high-water mark of budget-accounted runtime-state
	// bytes (arenas, hash-table bookkeeping); 0 unless a budget was set.
	MemPeakBytes int64
}

// Add merges o into c.
func (c *Counters) Add(o *Counters) {
	c.Tuples += o.Tuples
	c.VMOps += o.VMOps
	c.MaterializedBytes += o.MaterializedBytes
	c.PrimitiveCalls += o.PrimitiveCalls
	c.FusedCalls += o.FusedCalls
	c.HTProbes += o.HTProbes
	c.HTMatches += o.HTMatches
	c.HTInserts += o.HTInserts
	c.HTLocalHits += o.HTLocalHits
	c.HTSpills += o.HTSpills
	c.HTBloomSkips += o.HTBloomSkips
	c.PartRoutedRows += o.PartRoutedRows
	c.PartMaxPartRows = max(c.PartMaxPartRows, o.PartMaxPartRows)
	c.EmittedRows += o.EmittedRows
	c.MorselsVectorized += o.MorselsVectorized
	c.MorselsCompiled += o.MorselsCompiled
	c.CompileWait += o.CompileWait
	c.CompileTime += o.CompileTime
	c.CompileErrors += o.CompileErrors
	c.PanicsRecovered += o.PanicsRecovered
	c.MemPeakBytes = max(c.MemPeakBytes, o.MemPeakBytes)
}

// PerTuple formats a counter normalized by processed tuples.
func (c *Counters) PerTuple(v int64) string {
	if c.Tuples == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", float64(v)/float64(c.Tuples))
}

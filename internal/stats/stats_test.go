package stats

import (
	"testing"
	"time"
)

func TestAddMergesAllFields(t *testing.T) {
	a := Counters{
		Tuples: 1, VMOps: 2, MaterializedBytes: 3, PrimitiveCalls: 4,
		FusedCalls: 5, HTProbes: 6, HTMatches: 7, HTInserts: 8,
		EmittedRows: 9, MorselsVectorized: 10, MorselsCompiled: 11,
		CompileWait: time.Second, CompileTime: 2 * time.Second,
		CompileErrors: 12, PanicsRecovered: 13, MemPeakBytes: 14,
	}
	b := a
	b.MemPeakBytes = 99 // peak merges by max, not sum
	a.Add(&b)
	if a.Tuples != 2 || a.VMOps != 4 || a.MaterializedBytes != 6 ||
		a.PrimitiveCalls != 8 || a.FusedCalls != 10 || a.HTProbes != 12 ||
		a.HTMatches != 14 || a.HTInserts != 16 || a.EmittedRows != 18 ||
		a.MorselsVectorized != 20 || a.MorselsCompiled != 22 ||
		a.CompileWait != 2*time.Second || a.CompileTime != 4*time.Second ||
		a.CompileErrors != 24 || a.PanicsRecovered != 26 || a.MemPeakBytes != 99 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestPerTuple(t *testing.T) {
	c := Counters{Tuples: 4, VMOps: 10}
	if c.PerTuple(c.VMOps) != "2.50" {
		t.Fatalf("per tuple = %s", c.PerTuple(c.VMOps))
	}
	var zero Counters
	if zero.PerTuple(1) != "n/a" {
		t.Fatal("zero tuples should report n/a")
	}
}

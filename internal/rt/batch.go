package rt

import "encoding/binary"

// Chunk-batched hash-table kernels. The scalar entry points (FindOrCreate,
// Insert, Lookup) pay one hash, one shard dispatch and one mutex acquire per
// tuple — interpretation overhead the suboperator design is supposed to
// amortize (paper §IV-D keeps collision handling inside the table exactly so
// primitives can batch around it). The batched entry points take a whole
// chunk of keys, hash it as a vector, group the row indices by shard with a
// counting sort, and then take each shard's lock once per (chunk, shard)
// instead of once per row. Within a shard the rows keep their chunk order, so
// batched and scalar builds produce byte-identical tables (the differential
// fuzz tests in batch_test.go pin this down).

// BatchScratch holds the reusable buffers of one call site's chunk-batched
// table kernels (per-shard segment bounds and the shard-grouped row order).
// It is not safe for concurrent use; each worker owns its own instance and
// reuses it across chunks, so the steady-state kernels allocate nothing.
type BatchScratch struct {
	starts []int32 // per-shard segment starts (prefix sums), len shards+1
	fill   []int32 // per-shard scatter cursors
	order  []int32 // row indices grouped by shard, chunk order within a shard
}

// shardOf mirrors the scalar entry points' shard dispatch: the top hash byte
// selects the shard so the low bits stay free for bucket addressing.
//
//inkfuse:hotpath
func shardOf(h, mask uint64) uint64 { return (h >> 56) & mask }

// groupByShard buckets the chunk's row indices by shard. Rows of shard s are
// order[starts[s]:starts[s+1]], in their original chunk order (the counting
// sort is stable), which keeps batched table contents identical to scalar.
//
//inkfuse:hotpath
func (sc *BatchScratch) groupByShard(hashes []uint64, shardMask uint64) (starts, order []int32) {
	shards := int(shardMask) + 1
	if cap(sc.starts) < shards+1 {
		sc.starts = make([]int32, shards+1) //inklint:allow alloc — scratch sized to shard count on first batch, reused after
		sc.fill = make([]int32, shards+1)   //inklint:allow alloc — scratch sized to shard count on first batch, reused after
	}
	starts = sc.starts[:shards+1]
	for i := range starts {
		starts[i] = 0
	}
	for _, h := range hashes {
		starts[shardOf(h, shardMask)+1]++
	}
	for s := 1; s <= shards; s++ {
		starts[s] += starts[s-1]
	}
	fill := sc.fill[:shards+1]
	copy(fill, starts)
	if cap(sc.order) < len(hashes) {
		sc.order = make([]int32, len(hashes)) //inklint:allow alloc — scratch grows to max batch rows once, reused after
	}
	order = sc.order[:len(hashes)]
	for i, h := range hashes {
		s := shardOf(h, shardMask)
		order[fill[s]] = int32(i)
		fill[s]++
	}
	return starts, order
}

// HashBatch hashes a whole vector of key blobs into dst (resized as needed)
// — the hashing stage of the batched kernels, kept separate so callers that
// also consult thread-local tables or bloom filters hash each key once.
//
//inkfuse:hotpath
func HashBatch(keys [][]byte, dst []uint64) []uint64 {
	if cap(dst) < len(keys) {
		dst = make([]uint64, len(keys)) //inklint:allow alloc — hash buffer grows to chunk size once; caller reuses it
	}
	dst = dst[:len(keys)]
	for i, k := range keys {
		dst[i] = Hash64(k)
	}
	return dst
}

// FindOrCreateBatch resolves a whole chunk of aggregation keys: hashes[i]
// must be Hash64(keys[i]) (use HashBatch), seeds may be nil or parallel to
// keys (per-group creation extras, see FindOrCreateSeed). dst[i] receives the
// packed group row for keys[i]. Each shard's lock is taken once per
// (chunk, shard), and the shard's bucket array is pre-sized for the whole
// batch so a resize never stalls co-locked rows mid-batch.
//
//inkfuse:hotpath
func (t *AggTable) FindOrCreateBatch(keys, seeds [][]byte, hashes []uint64, dst [][]byte, sc *BatchScratch) {
	starts, order := sc.groupByShard(hashes, t.shardMask)
	for si := range t.shards {
		lo, hi := starts[si], starts[si+1]
		if lo == hi {
			continue
		}
		t.shards[si].findOrCreateBatch(order[lo:hi], keys, seeds, hashes, dst, t.payloadInit)
	}
}

//inkfuse:hotpath
func (s *aggShard) findOrCreateBatch(idxs []int32, keys, seeds [][]byte, hashes []uint64, dst [][]byte, init []byte) {
	s.mu.Lock()
	// Deferred for the same reason as the scalar path: a memory-budget panic
	// out of the arena must not strand the shard lock mid-drain.
	defer s.mu.Unlock()
	s.reserve(len(idxs)) //inklint:allow call — amortized pre-size so buckets never resize mid-batch under the lock
	var seed []byte
	for _, i := range idxs {
		if seeds != nil {
			seed = seeds[i]
		}
		dst[i] = s.findOrCreate(keys[i], hashes[i], init, seed)
	}
}

// InsertBatch appends a whole chunk of build rows: hashes[i] must be
// Hash64(keys[i]), payloads may contain nil entries. One lock acquire per
// (chunk, shard); within a shard rows keep their chunk order, so the sealed
// probe layout is identical to a scalar build's.
//
//inkfuse:hotpath
func (t *JoinTable) InsertBatch(keys, payloads [][]byte, hashes []uint64, sc *BatchScratch) {
	starts, order := sc.groupByShard(hashes, t.shardMask)
	for si := range t.shards {
		lo, hi := starts[si], starts[si+1]
		if lo == hi {
			continue
		}
		t.shards[si].insertBatch(order[lo:hi], keys, payloads, hashes)
	}
}

//inkfuse:hotpath
func (s *joinShard) insertBatch(idxs []int32, keys, payloads [][]byte, hashes []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, i := range idxs {
		s.budget.Charge(entryOverhead)
		key, payload := keys[i], payloads[i]
		row := s.arena.Alloc(4 + len(key) + len(payload))
		binary.LittleEndian.PutUint32(row, uint32(len(key)))
		copy(row[4:], key)
		copy(row[4+len(key):], payload)
		s.rows = append(s.rows, row)           //inklint:allow alloc — amortized — shard entry arrays double
		s.hashes = append(s.hashes, hashes[i]) //inklint:allow alloc — amortized — shard entry arrays double
	}
}

// LookupBatch runs a whole chunk of probe hashes through the build-side
// bloom/tag filter (built at Seal), appending the indices that *may* match to
// sel and returning it plus the number of definite misses that never touched
// bucket memory. The table must be sealed.
//
//inkfuse:hotpath
func (t *JoinTable) LookupBatch(hashes []uint64, sel []int32) ([]int32, int) {
	f, m := t.filter, t.fmask
	skips := 0
	for i, h := range hashes {
		if f[(h>>16)&m]&bloomTag(h) != 0 {
			sel = append(sel, int32(i)) //inklint:allow alloc — sel grows to chunk size once; caller reuses the buffer
		} else {
			skips++
		}
	}
	return sel, skips
}

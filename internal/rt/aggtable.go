package rt

import (
	"bytes"
	"encoding/binary"
	"sync"
)

// AggTable is the aggregation hash table. Keys are packed key blobs; the
// payload holds the aggregate state slots. Collision resolution lives inside
// the table (paper §IV-D): FindOrCreate returns a pointer to the correctly
// resolved row, so generated code never loops over collision chains —
// identical behaviour for the fused programs and the vectorized primitives.
//
// The table is sharded by hash for concurrent morsel-driven builds.
type AggTable struct {
	payloadInit []byte
	shards      []aggShard
	shardMask   uint64
}

type aggShard struct {
	mu      sync.Mutex
	buckets []int32 // entry index + 1; 0 = empty
	mask    uint64
	hashes  []uint64
	rows    [][]byte
	arena   *Arena
	budget  *MemBudget
	resizes int64
}

// entryOverhead approximates the per-entry bookkeeping bytes outside the
// arena (hash, row header, amortized bucket slot) charged to a MemBudget.
const entryOverhead = 32

// NewAggTable creates a table whose new groups start with the given payload
// template (e.g. +Inf for MIN slots, zeroes for SUM/COUNT).
func NewAggTable(payloadInit []byte, shardCount int) *AggTable {
	if shardCount <= 0 {
		shardCount = 16
	}
	// Round up to a power of two for mask dispatch.
	sc := 1
	for sc < shardCount {
		sc <<= 1
	}
	t := &AggTable{
		payloadInit: append([]byte(nil), payloadInit...),
		shards:      make([]aggShard, sc),
		shardMask:   uint64(sc - 1),
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.buckets = make([]int32, 64)
		s.mask = 63
		s.arena = NewArena(0)
	}
	return t
}

// FindOrCreate returns the packed row for the key, creating and initializing
// it if absent. Safe for concurrent use.
//
//inkfuse:hotpath
func (t *AggTable) FindOrCreate(key []byte, h uint64) []byte {
	return t.FindOrCreateSeed(key, h, nil)
}

// FindOrCreateSeed is FindOrCreate with per-group creation extras: a new
// group's payload is the table's init template followed by seed. The
// collation support of paper §IV-D uses this to keep the original
// (non-normalized) key string in the group payload while the key blob holds
// the equivalence-class representative.
//
//inkfuse:hotpath
func (t *AggTable) FindOrCreateSeed(key []byte, h uint64, seed []byte) []byte {
	s := &t.shards[(h>>56)&t.shardMask]
	s.mu.Lock()
	// The unlock is deferred (not inlined) so that a memory-budget panic out
	// of the arena never strands the shard lock: the scheduler recovers the
	// panic and the remaining workers must still be able to drain.
	defer s.mu.Unlock()
	return s.findOrCreate(key, h, t.payloadInit, seed)
}

// SetBudget charges this table's future allocations (arena blocks, entry and
// bucket bookkeeping) to the query budget. Call before inserting.
func (t *AggTable) SetBudget(b *MemBudget) {
	if b == nil {
		return
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.budget = b
		s.arena.SetBudget(b)
	}
}

//inkfuse:hotpath
func (s *aggShard) findOrCreate(key []byte, h uint64, init, seed []byte) []byte {
	for i := h & s.mask; ; i = (i + 1) & s.mask {
		b := s.buckets[i]
		if b == 0 {
			s.budget.Charge(entryOverhead)
			row := s.arena.Alloc(4 + len(key) + len(init) + len(seed))
			binary.LittleEndian.PutUint32(row, uint32(len(key)))
			copy(row[4:], key)
			copy(row[4+len(key):], init)
			copy(row[4+len(key)+len(init):], seed)
			s.hashes = append(s.hashes, h)    //inklint:allow alloc — amortized — entry arrays double; O(1) amortized per new group
			s.rows = append(s.rows, row)      //inklint:allow alloc — amortized — entry arrays double; O(1) amortized per new group
			s.buckets[i] = int32(len(s.rows)) // index+1
			if uint64(len(s.rows))*4 > 3*(s.mask+1) {
				s.grow() //inklint:allow call — amortized bucket-array resize (doubling); intentionally cold
			}
			return row
		}
		e := b - 1
		if s.hashes[e] == h && bytes.Equal(RowKey(s.rows[e]), key) {
			return s.rows[e]
		}
	}
}

func (s *aggShard) grow() { s.growTo(uint64(2 * len(s.buckets))) }

func (s *aggShard) growTo(size uint64) {
	s.resizes++
	s.budget.Charge((int64(size) - int64(len(s.buckets))) * 4) // charge the delta
	nb := make([]int32, size)
	mask := size - 1
	for e, h := range s.hashes {
		i := h & mask
		for nb[i] != 0 {
			i = (i + 1) & mask
		}
		nb[i] = int32(e + 1)
	}
	s.buckets = nb
	s.mask = mask
}

// reserve grows the bucket array once, up front, so that the following
// `extra` inserts cannot trigger a resize. The batched path calls it after
// taking the shard lock: without it a grow could stall a whole chunk's worth
// of co-locked rows mid-batch. Charging the delta keeps the cumulative budget
// identical to the scalar path's incremental doublings.
func (s *aggShard) reserve(extra int) {
	need := uint64(len(s.rows)+extra) * 4
	size := s.mask + 1
	if need <= 3*size {
		return
	}
	for need > 3*size {
		size <<= 1
	}
	s.growTo(size)
}

// Reserve pre-sizes every shard's bucket array for roughly n total groups —
// called from NewInstance with the scheduler's morsel cardinality estimate
// (AggTableState.SizeHint) before a budget is attached, mirroring how the
// initial bucket arrays are uncharged.
func (t *AggTable) Reserve(n int) {
	if n <= 0 {
		return
	}
	per := n / len(t.shards)
	if per > maxReservePerShard {
		per = maxReservePerShard
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.reserve(per)
		s.mu.Unlock()
	}
}

// maxReservePerShard caps cardinality-estimate pre-sizing (the estimate is an
// upper bound — morsel row count — not a group count).
const maxReservePerShard = 1 << 13

// Groups returns the number of groups in the table.
func (t *AggTable) Groups() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.rows)
		s.mu.Unlock()
	}
	return n
}

// Resizes returns the total number of bucket-array resizes (stats).
func (t *AggTable) Resizes() int64 {
	var n int64
	for i := range t.shards {
		n += t.shards[i].resizes
	}
	return n
}

// Snapshot returns all group rows. Called once the build pipeline finished;
// the result backs the morsels of the aggregate-reading pipeline.
func (t *AggTable) Snapshot() [][]byte {
	out := make([][]byte, 0, t.Groups())
	for i := range t.shards {
		out = append(out, t.shards[i].rows...)
	}
	return out
}

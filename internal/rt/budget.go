package rt

import (
	"fmt"
	"sync/atomic"
)

// MemBudget caps the bytes of query-owned runtime state — arena blocks and
// hash-table bucket/entry arrays — that one query may allocate. The engine
// installs one budget per query and wires it into every table the query
// builds; charges are atomic so concurrent morsel workers share the cap.
//
// Enforcement is by panic: allocation sites sit below generated code whose
// signatures cannot carry errors (FindOrCreate returns a row pointer into
// both fused programs and primitives), so Charge panics with *BudgetExceeded
// and the scheduler's morsel recover() converts it into the query's typed
// ErrMemoryBudget failure. A nil *MemBudget is valid and unlimited.
type MemBudget struct {
	limit int64
	used  atomic.Int64
	peak  atomic.Int64
}

// NewMemBudget creates a budget capped at limit bytes (0 = track only, never
// fail).
func NewMemBudget(limit int64) *MemBudget {
	return &MemBudget{limit: limit}
}

// Charge accounts n bytes against the budget, panicking with *BudgetExceeded
// once the cap is crossed. Nil receivers and non-positive charges are no-ops.
//
//inkfuse:hotpath
func (b *MemBudget) Charge(n int64) {
	if b == nil || n <= 0 {
		return
	}
	u := b.used.Add(n)
	for {
		p := b.peak.Load()
		if u <= p || b.peak.CompareAndSwap(p, u) {
			break
		}
	}
	if b.limit > 0 && u > b.limit {
		panic(&BudgetExceeded{Used: u, Limit: b.limit})
	}
}

// Used returns the bytes currently charged.
func (b *MemBudget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Peak returns the high-water mark of charged bytes.
func (b *MemBudget) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

// Limit returns the configured cap (0 = unlimited).
func (b *MemBudget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// BudgetExceeded is the panic payload thrown by MemBudget.Charge. The
// scheduler recognizes it during morsel recovery and fails the query with
// ErrMemoryBudget instead of treating it as an engine bug.
type BudgetExceeded struct {
	Used, Limit int64
}

func (e *BudgetExceeded) Error() string {
	return fmt.Sprintf("runtime state needs %d bytes, budget is %d", e.Used, e.Limit)
}

package rt

// Arena is a bump allocator handing out byte slices from large blocks. Hash
// tables use it so that millions of packed rows cost a handful of real
// allocations. Arenas are not safe for concurrent use; each hash-table shard
// owns one.
type Arena struct {
	block     []byte
	blockSize int
	used      int64
}

const defaultArenaBlock = 1 << 16

// NewArena creates an arena with the given block size (0 = default 64 KiB).
func NewArena(blockSize int) *Arena {
	if blockSize <= 0 {
		blockSize = defaultArenaBlock
	}
	return &Arena{blockSize: blockSize}
}

// Alloc returns a zeroed slice of n bytes. Requests larger than the block
// size get their own block.
func (a *Arena) Alloc(n int) []byte {
	a.used += int64(n)
	if n > a.blockSize {
		return make([]byte, n)
	}
	if len(a.block) < n {
		a.block = make([]byte, a.blockSize)
	}
	out := a.block[:n:n]
	a.block = a.block[n:]
	return out
}

// Used returns the total bytes handed out.
func (a *Arena) Used() int64 { return a.used }

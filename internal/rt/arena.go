package rt

// Arena is a bump allocator handing out byte slices from large blocks. Hash
// tables use it so that millions of packed rows cost a handful of real
// allocations. Arenas are not safe for concurrent use; each hash-table shard
// owns one.
type Arena struct {
	block     []byte
	blockSize int
	used      int64
	budget    *MemBudget
}

const defaultArenaBlock = 1 << 16

// NewArena creates an arena with the given block size (0 = default 64 KiB).
func NewArena(blockSize int) *Arena {
	if blockSize <= 0 {
		blockSize = defaultArenaBlock
	}
	return &Arena{blockSize: blockSize}
}

// SetBudget charges all future block allocations to the query budget (nil =
// unlimited). Budget granularity is whole blocks: the query pays for arena
// capacity, not per-row slices.
func (a *Arena) SetBudget(b *MemBudget) { a.budget = b }

// Alloc returns a zeroed slice of n bytes. Requests larger than the block
// size get their own block.
//
//inkfuse:hotpath
func (a *Arena) Alloc(n int) []byte {
	a.used += int64(n)
	if n > a.blockSize {
		a.budget.Charge(int64(n))
		return make([]byte, n) //inklint:allow alloc — oversized request falls back to a dedicated block
	}
	if len(a.block) < n {
		a.budget.Charge(int64(a.blockSize))
		a.block = make([]byte, a.blockSize) //inklint:allow alloc — arena block refill — one make per blockSize bytes of rows
	}
	out := a.block[:n:n]
	a.block = a.block[n:]
	return out
}

// Used returns the total bytes handed out.
func (a *Arena) Used() int64 { return a.used }

// Package rt is the runtime system behind the generated and interpreted
// primitives: sharded aggregation and join hash tables (scalar and
// vector-at-a-time), packed-row layout helpers, arenas, memory budgets, and
// thread-local pre-aggregation.
//
// The sharded tables serialize writers with per-shard mutexes. Those critical
// sections must stay short and self-contained: holding a shard lock across a
// fault-injection point, a channel operation, or a callback is the deadlock /
// convoy shape the batched kernels are designed to avoid, and the lockscope
// analyzer (cmd/inklint) rejects it.
//
//inklint:lockscope
package rt

package rt

import (
	"regexp"
	"strings"
	"testing"
)

// Native fuzz targets (the seed corpora also run as regular unit cases under
// `go test`). Run longer campaigns with e.g.
// `go test ./internal/rt -fuzz FuzzLikeMatcher -fuzztime 30s`.

func FuzzLikeMatcher(f *testing.F) {
	f.Add("%special%requests%", "the special pending requests")
	f.Add("a_c%", "abcdef")
	f.Add("", "")
	f.Add("%%%", "x")
	f.Add("_%_", "ab")
	f.Add("PROMO%", "PROMO BRUSHED TIN")
	f.Fuzz(func(t *testing.T, pattern, s string) {
		if len(pattern) > 64 || len(s) > 256 {
			t.Skip()
		}
		// The matcher's `_` is byte-level while regexp's `.` is rune-level:
		// compare on ASCII inputs only (TPC-H data is ASCII).
		if !isASCII(pattern) || !isASCII(s) {
			t.Skip()
		}
		m := NewLikeMatcher(pattern)
		got := m.Match(s)
		want := likeRef(pattern).MatchString(s)
		if got != want {
			t.Fatalf("LIKE %q on %q: matcher=%v regexp=%v", pattern, s, got, want)
		}
	})
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

func likeRef(pattern string) *regexp.Regexp {
	var b strings.Builder
	b.WriteString(`^(?s)`)
	for _, r := range pattern {
		switch r {
		case '%':
			b.WriteString(`.*`)
		case '_':
			b.WriteString(`.`)
		default:
			b.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	b.WriteString("$")
	return regexp.MustCompile(b.String())
}

func FuzzHash64Equality(f *testing.F) {
	f.Add([]byte("abc"), []byte("abc"))
	f.Add([]byte{}, []byte{0})
	f.Add([]byte("12345678"), []byte("123456789"))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ha, hb := Hash64(a), Hash64(b)
		if string(a) == string(b) && ha != hb {
			t.Fatalf("equal keys, different hashes")
		}
	})
}

func FuzzRowKeyRoundtrip(f *testing.F) {
	f.Add([]byte("key"), []byte("payload"))
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, key, payload []byte) {
		if len(key) > 1<<16 {
			t.Skip()
		}
		tbl := NewJoinTable(2)
		tbl.Insert(key, payload, Hash64(key))
		tbl.Seal()
		it := tbl.Lookup(key, Hash64(key))
		row := it.Next()
		if row == nil {
			t.Fatal("inserted key not found")
		}
		if string(RowKey(row)) != string(key) {
			t.Fatal("key roundtrip failed")
		}
		if string(row[RowPayloadOff(row):]) != string(payload) {
			t.Fatal("payload roundtrip failed")
		}
	})
}

package rt

import (
	"encoding/binary"
	"testing"
)

// Micro-benchmarks of the runtime system the generated code leans on.

func BenchmarkHash64(b *testing.B) {
	for _, size := range []int{8, 16, 32} {
		b.Run(kBytes(size), func(b *testing.B) {
			key := make([]byte, size)
			var acc uint64
			for i := 0; i < b.N; i++ {
				binary.LittleEndian.PutUint64(key, uint64(i))
				acc ^= Hash64(key)
			}
			sinkU64 = acc
		})
	}
}

var sinkU64 uint64

func kBytes(n int) string {
	return map[int]string{8: "8B", 16: "16B", 32: "32B"}[n]
}

func BenchmarkAggTableFindOrCreate(b *testing.B) {
	for _, groups := range []int{16, 1 << 10, 1 << 16} {
		b.Run(map[int]string{16: "16groups", 1 << 10: "1Kgroups", 1 << 16: "64Kgroups"}[groups], func(b *testing.B) {
			tbl := NewAggTable(make([]byte, 8), 16)
			key := make([]byte, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				binary.LittleEndian.PutUint64(key, uint64(i%groups))
				row := tbl.FindOrCreate(key, Hash64(key))
				off := RowPayloadOff(row)
				PutI64(row, off, GetI64(row, off)+1)
			}
		})
	}
}

// BenchmarkAggTableVsMap compares against the naive Go-map aggregation an
// engine without packed rows would use.
func BenchmarkAggTableVsMap(b *testing.B) {
	const groups = 1 << 12
	b.Run("aggtable", func(b *testing.B) {
		tbl := NewAggTable(make([]byte, 8), 16)
		key := make([]byte, 8)
		for i := 0; i < b.N; i++ {
			binary.LittleEndian.PutUint64(key, uint64(i%groups))
			row := tbl.FindOrCreate(key, Hash64(key))
			off := RowPayloadOff(row)
			PutF64(row, off, GetF64(row, off)+1.5)
		}
	})
	b.Run("gomap", func(b *testing.B) {
		m := make(map[int64]float64, groups)
		for i := 0; i < b.N; i++ {
			m[int64(i%groups)] += 1.5
		}
	})
}

func BenchmarkJoinProbe(b *testing.B) {
	for _, dup := range []int{1, 4} {
		b.Run(map[int]string{1: "unique", 4: "dup4"}[dup], func(b *testing.B) {
			tbl := NewJoinTable(16)
			key := make([]byte, 8)
			const keys = 1 << 12
			for k := 0; k < keys; k++ {
				binary.LittleEndian.PutUint64(key, uint64(k))
				for d := 0; d < dup; d++ {
					tbl.Insert(key, nil, Hash64(key))
				}
			}
			tbl.Seal()
			b.ResetTimer()
			matches := 0
			for i := 0; i < b.N; i++ {
				binary.LittleEndian.PutUint64(key, uint64(i%(2*keys))) // 50% misses
				it := tbl.Lookup(key, Hash64(key))
				for it.Next() != nil {
					matches++
				}
			}
			sinkInt = matches
		})
	}
}

var sinkInt int

// benchChunkKeys builds one chunk of 8-byte keys cycling through `groups`
// distinct values — the shape an aggregation build sees morsel after morsel.
func benchChunkKeys(chunk, groups, salt int) [][]byte {
	keys := make([][]byte, chunk)
	for i := range keys {
		k := make([]byte, 8)
		binary.LittleEndian.PutUint64(k, uint64((salt*chunk+i)%groups))
		keys[i] = k
	}
	return keys
}

// BenchmarkAggBuildScalar drives the per-tuple path: one hash, one shard
// dispatch and one mutex acquire per row.
func BenchmarkAggBuildScalar(b *testing.B) {
	for _, groups := range []int{16, 1 << 10, 1 << 16} {
		b.Run(map[int]string{16: "16groups", 1 << 10: "1Kgroups", 1 << 16: "64Kgroups"}[groups], func(b *testing.B) {
			const chunk = 1024
			tbl := NewAggTable(make([]byte, 8), 16)
			keys := benchChunkKeys(chunk, groups, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i%chunk]
				row := tbl.FindOrCreate(k, Hash64(k))
				off := RowPayloadOff(row)
				PutI64(row, off, GetI64(row, off)+1)
			}
		})
	}
}

// BenchmarkAggBuildBatched drives the same workload through the chunk
// kernels: HashBatch + FindOrCreateBatch, one lock acquire per (chunk, shard).
func BenchmarkAggBuildBatched(b *testing.B) {
	for _, groups := range []int{16, 1 << 10, 1 << 16} {
		b.Run(map[int]string{16: "16groups", 1 << 10: "1Kgroups", 1 << 16: "64Kgroups"}[groups], func(b *testing.B) {
			const chunk = 1024
			tbl := NewAggTable(make([]byte, 8), 16)
			keys := benchChunkKeys(chunk, groups, 0)
			var sc BatchScratch
			hashes := make([]uint64, 0, chunk)
			dst := make([][]byte, chunk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += chunk {
				hashes = HashBatch(keys, hashes)
				tbl.FindOrCreateBatch(keys, nil, hashes, dst, &sc)
				for _, row := range dst {
					off := RowPayloadOff(row)
					PutI64(row, off, GetI64(row, off)+1)
				}
			}
		})
	}
}

// benchJoinTable builds and seals a unique-key table of `keys` 8-byte rows.
func benchJoinTable(keys int) *JoinTable {
	tbl := NewJoinTable(16)
	k := make([]byte, 8)
	for i := 0; i < keys; i++ {
		binary.LittleEndian.PutUint64(k, uint64(i))
		tbl.Insert(k, nil, Hash64(k))
	}
	tbl.Seal()
	return tbl
}

// BenchmarkJoinProbeScalarPath probes tuple-at-a-time with 50% misses; every
// probe hashes, dispatches and walks its bucket individually.
func BenchmarkJoinProbeScalarPath(b *testing.B) {
	const keys = 1 << 12
	tbl := benchJoinTable(keys)
	probes := benchChunkKeys(1024, 2*keys, 0) // half the key space is absent
	b.ReportAllocs()
	b.ResetTimer()
	matches := 0
	for i := 0; i < b.N; i++ {
		k := probes[i%1024]
		it := tbl.Lookup(k, Hash64(k))
		for it.Next() != nil {
			matches++
		}
	}
	sinkInt = matches
}

// BenchmarkJoinProbeBatchedPath hashes the chunk as a vector and consults the
// bloom filter via LookupBatch, walking buckets only for possible matches.
func BenchmarkJoinProbeBatchedPath(b *testing.B) {
	const keys = 1 << 12
	const chunk = 1024
	tbl := benchJoinTable(keys)
	probes := benchChunkKeys(chunk, 2*keys, 0)
	hashes := make([]uint64, 0, chunk)
	sel := make([]int32, 0, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	matches := 0
	for i := 0; i < b.N; i += chunk {
		hashes = HashBatch(probes, hashes)
		sel, _ = tbl.LookupBatch(hashes, sel[:0])
		for _, pi := range sel {
			it := tbl.Lookup(probes[pi], hashes[pi])
			for it.Next() != nil {
				matches++
			}
		}
	}
	sinkInt = matches
}

// BenchmarkJoinProbeBloom isolates the filter: probes drawn almost entirely
// from outside the build key space, so LookupBatch rejects them without
// touching bucket memory.
func BenchmarkJoinProbeBloom(b *testing.B) {
	const keys = 1 << 12
	const chunk = 1024
	tbl := benchJoinTable(keys)
	probes := make([][]byte, chunk)
	for i := range probes {
		k := make([]byte, 8)
		binary.LittleEndian.PutUint64(k, uint64(keys+1+i)) // all misses
		probes[i] = k
	}
	hashes := make([]uint64, 0, chunk)
	sel := make([]int32, 0, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	skipped := 0
	for i := 0; i < b.N; i += chunk {
		var sk int
		hashes = HashBatch(probes, hashes)
		sel, sk = tbl.LookupBatch(hashes, sel[:0])
		for _, pi := range sel {
			it := tbl.Lookup(probes[pi], hashes[pi])
			for it.Next() != nil {
				skipped--
			}
		}
		skipped += sk
	}
	sinkInt = skipped
}

func BenchmarkLikeMatcher(b *testing.B) {
	m := NewLikeMatcher("%special%requests%")
	subjects := []string{
		"carefully final deposits sleep",
		"the special deposit requests sleep furiously",
		"requests special ironic theodolites",
	}
	hits := 0
	for i := 0; i < b.N; i++ {
		if m.Match(subjects[i%3]) {
			hits++
		}
	}
	sinkInt = hits
}

func BenchmarkRowScratchPack(b *testing.B) {
	s := NewRowScratch(12, 8)
	const batch = 1024
	for i := 0; i < b.N; i++ {
		s.Prepare(batch)
		for r := 0; r < batch; r++ {
			PutI64(s.Row(r), 4, int64(r))
			PutI32(s.Row(r), 12, int32(r))
			s.SealKey(r)
			PutF64(s.Row(r), s.PayloadOff(r), float64(r))
		}
	}
	b.SetBytes(batch * 24)
}

package rt

import "strings"

// LikeMatcher evaluates SQL LIKE patterns with `%` (any run) and `_` (any
// single byte). Patterns are compiled once at plan time and resolved by the
// generated code through runtime state, like every other non-enumerable
// parameter (paper §IV-C).
type LikeMatcher struct {
	pattern  string
	segments []string // literal segments between % wildcards
	anchorL  bool     // no leading %
	anchorR  bool     // no trailing %
	hasUnder bool
}

// NewLikeMatcher compiles a LIKE pattern.
func NewLikeMatcher(pattern string) *LikeMatcher {
	m := &LikeMatcher{pattern: pattern}
	m.anchorL = !strings.HasPrefix(pattern, "%")
	m.anchorR = !strings.HasSuffix(pattern, "%")
	for _, seg := range strings.Split(pattern, "%") {
		if seg != "" {
			m.segments = append(m.segments, seg)
		}
	}
	m.hasUnder = strings.ContainsRune(pattern, '_')
	return m
}

// Pattern returns the original pattern.
func (m *LikeMatcher) Pattern() string { return m.pattern }

// Match reports whether s matches the pattern.
func (m *LikeMatcher) Match(s string) bool {
	segs := m.segments
	if len(segs) == 0 {
		// Pattern was only % wildcards (or empty).
		if m.anchorL && m.anchorR {
			return s == ""
		}
		return true
	}
	if m.anchorL {
		seg := segs[0]
		if !m.matchAt(s, 0, seg) {
			return false
		}
		s = s[len(seg):]
		segs = segs[1:]
	}
	var tail string
	if m.anchorR && len(segs) > 0 {
		tail = segs[len(segs)-1]
		segs = segs[:len(segs)-1]
	}
	for _, seg := range segs {
		idx := m.index(s, seg)
		if idx < 0 {
			return false
		}
		s = s[idx+len(seg):]
	}
	if m.anchorR {
		if tail == "" {
			// Fully anchored pattern (no %): the single left-anchored segment
			// must have consumed the entire string.
			return s == ""
		}
		if len(s) < len(tail) {
			return false
		}
		return m.matchAt(s, len(s)-len(tail), tail)
	}
	return true
}

// matchAt reports whether seg matches s starting at position pos, honoring _.
func (m *LikeMatcher) matchAt(s string, pos int, seg string) bool {
	if pos+len(seg) > len(s) {
		return false
	}
	if !m.hasUnder {
		return s[pos:pos+len(seg)] == seg
	}
	for i := 0; i < len(seg); i++ {
		if seg[i] != '_' && seg[i] != s[pos+i] {
			return false
		}
	}
	return true
}

// index finds the first position where seg matches inside s, or -1.
func (m *LikeMatcher) index(s, seg string) int {
	if !m.hasUnder {
		return strings.Index(s, seg)
	}
	for pos := 0; pos+len(seg) <= len(s); pos++ {
		if m.matchAt(s, pos, seg) {
			return pos
		}
	}
	return -1
}

package rt

import (
	"encoding/binary"
	"math"
	"testing"
)

// Distribution tests for Hash64 on the low-entropy keys real TPC-H columns
// produce: sequential orderkeys, a narrow band of dates, strided customer
// keys. Skew in the bits the tables consume — the top byte (shard dispatch),
// the low bits (bucket index), and the bloom filter's (h>>16, h>>40) slices —
// silently serializes the sharded tables, so each bit range is held to within
// 2x of a uniform spread.

// hashKeySet builds n 8-byte little-endian keys: start, start+stride, ...
func hashKeySet(n int, start, stride int64) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(start+int64(i)*stride))
		keys[i] = b
	}
	return keys
}

// hashKeySet32 builds n 4-byte keys (int32 orderkeys/dates hash as the
// 4-byte tail path of Hash64).
func hashKeySet32(n int, start, stride int32) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, uint32(start+int32(i)*stride))
		keys[i] = b
	}
	return keys
}

// checkSpread hashes the keys and asserts every consumer bit-range stays
// under 2x the uniform expectation.
func checkSpread(t *testing.T, name string, keys [][]byte) {
	t.Helper()
	type slice struct {
		name    string
		bins    int
		extract func(h uint64) int
	}
	slices := []slice{
		{"shard(h>>56)&15", 16, func(h uint64) int { return int((h >> 56) & 15) }},
		{"bucket h&1023", 1024, func(h uint64) int { return int(h & 1023) }},
		{"bloom(h>>16)&1023", 1024, func(h uint64) int { return int((h >> 16) & 1023) }},
		{"tag(h>>40)&7", 8, func(h uint64) int { return int((h >> 40) & 7) }},
	}
	for _, sl := range slices {
		// Require ≥64 keys per bin: below that an ideal hash's own Poisson
		// tail brushes the 2x bound and the test would flag noise.
		if len(keys) < 64*sl.bins {
			continue
		}
		counts := make([]int, sl.bins)
		for _, k := range keys {
			counts[sl.extract(Hash64(k))]++
		}
		expect := float64(len(keys)) / float64(sl.bins)
		for b, c := range counts {
			if float64(c) > 2*expect {
				t.Errorf("%s: %s bin %d holds %d keys, >2x uniform (%.1f)", name, sl.name, b, c, expect)
			}
		}
	}
}

func TestHashDistributionLowEntropyKeys(t *testing.T) {
	cases := []struct {
		name string
		keys [][]byte
	}{
		{"sequential-orderkeys-i64", hashKeySet(1<<16, 1, 1)},
		{"strided-orderkeys-i64", hashKeySet(1<<16, 1, 4)}, // TPC-H orderkeys are sparse
		{"sequential-dates-i32", hashKeySet32(1<<16, 8035, 1)},
		{"epoch-days-band-i32", hashKeySet32(1<<16, 10000, 7)},
		{"high-base-custkeys", hashKeySet(1<<16, 1<<40, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkSpread(t, tc.name, tc.keys) })
	}
}

// TestHashAvalanche flips single input bits and checks each flip changes
// close to half the output bits on average — the mixer property that keeps
// the consumer bit-ranges above independent even on near-identical keys.
func TestHashAvalanche(t *testing.T) {
	const trials = 512
	var totalFlipped, samples float64
	for trial := 0; trial < trials; trial++ {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(trial)*0x10001+3)
		h0 := Hash64(b)
		for bit := 0; bit < 64; bit++ {
			fb := make([]byte, 8)
			copy(fb, b)
			fb[bit/8] ^= 1 << (bit % 8)
			diff := h0 ^ Hash64(fb)
			pop := 0
			for d := diff; d != 0; d &= d - 1 {
				pop++
			}
			totalFlipped += float64(pop)
			samples++
		}
	}
	mean := totalFlipped / samples
	if math.Abs(mean-32) > 2 {
		t.Fatalf("avalanche mean = %.2f output bits per input-bit flip, want ~32±2", mean)
	}
}

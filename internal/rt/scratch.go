package rt

import "encoding/binary"

// RowScratch builds packed rows (key + payload) for a batch of tuples before
// they are handed to a hash table or a probe. Buffers are reused across
// batches, so packing costs no steady-state allocation. A RowScratch is
// owned by one worker's execution context: the suboperator state only carries
// the layout widths, keeping the shared state immutable (paper Fig 8).
type RowScratch struct {
	keyFixed     int
	payloadFixed int
	rows         [][]byte
}

// NewRowScratch creates scratch space for rows with the given fixed-region
// widths.
func NewRowScratch(keyFixed, payloadFixed int) *RowScratch {
	return &RowScratch{keyFixed: keyFixed, payloadFixed: payloadFixed}
}

// Prepare readies n reusable rows. Each row starts as
// [u32 keyLen=keyFixed][keyFixed zero bytes]; key strings are appended, then
// SealKey freezes the key length and reserves the fixed payload region.
func (s *RowScratch) Prepare(n int) {
	for len(s.rows) < n {
		s.rows = append(s.rows, nil)
	}
	for i := 0; i < n; i++ {
		r := s.rows[i][:0]
		need := 4 + s.keyFixed
		if cap(r) < need {
			r = make([]byte, 0, need+s.payloadFixed+16)
		}
		r = r[:need]
		for j := range r {
			r[j] = 0
		}
		binary.LittleEndian.PutUint32(r, uint32(s.keyFixed))
		s.rows[i] = r
	}
}

// Row returns row i. Valid until the next Prepare.
func (s *RowScratch) Row(i int) []byte { return s.rows[i] }

// PackKeyFixed writes nothing itself; fixed key fields are written in place
// via the Put* helpers at offset 4+off on Row(i).

// AppendKeyString appends a length-prefixed string key field to row i.
func (s *RowScratch) AppendKeyString(i int, v string) {
	s.rows[i] = AppendString(s.rows[i], v)
}

// SealKey finalizes row i's key length and reserves the fixed payload region.
func (s *RowScratch) SealKey(i int) {
	r := s.rows[i]
	binary.LittleEndian.PutUint32(r, uint32(len(r)-4))
	for j := 0; j < s.payloadFixed; j++ {
		r = append(r, 0)
	}
	s.rows[i] = r
}

// PayloadOff returns the offset of the fixed payload region of row i.
func (s *RowScratch) PayloadOff(i int) int { return RowPayloadOff(s.rows[i]) }

// AppendPayloadString appends a length-prefixed payload string to row i.
func (s *RowScratch) AppendPayloadString(i int, v string) {
	s.rows[i] = AppendString(s.rows[i], v)
}

package rt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"inkfuse/internal/types"
)

const (
	kBool = types.Bool
	kI32  = types.Int32
	kI64  = types.Int64
	kF64  = types.Float64
	kStr  = types.String
)

func TestHash64Deterministic(t *testing.T) {
	k := []byte("hello world key")
	if Hash64(k) != Hash64(append([]byte(nil), k...)) {
		t.Fatal("hash not deterministic")
	}
}

func TestHash64Distribution(t *testing.T) {
	// Low-byte distribution over sequential integer keys should be close to
	// uniform (buckets are taken from the low bits).
	buckets := make([]int, 16)
	n := 1 << 14
	for i := 0; i < n; i++ {
		var k [8]byte
		binary.LittleEndian.PutUint64(k[:], uint64(i))
		buckets[Hash64(k[:])&15]++
	}
	want := n / 16
	for b, c := range buckets {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d badly skewed: %d of %d", b, c, n)
		}
	}
}

func TestHash64EmptyAndShort(t *testing.T) {
	seen := map[uint64]bool{}
	for _, k := range [][]byte{nil, {}, {1}, {1, 2}, {2, 1}, {0, 0, 0}, {0, 0, 0, 0}} {
		seen[Hash64(k)] = true
	}
	// nil and {} must agree; everything else should differ.
	if len(seen) != 6 {
		t.Fatalf("short-key hashes collide: %d distinct of 6 expected", len(seen))
	}
}

func TestHash64PrefixSensitivity(t *testing.T) {
	if err := quick.Check(func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return Hash64(a) == Hash64(b)
		}
		// Not a strict requirement, but collisions on random short keys
		// should be essentially absent.
		return Hash64(a) != Hash64(b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArenaAlloc(t *testing.T) {
	a := NewArena(128)
	s1 := a.Alloc(10)
	s2 := a.Alloc(10)
	for i := range s1 {
		s1[i] = 0xff
	}
	for _, b := range s2 {
		if b != 0 {
			t.Fatal("arena handed out overlapping or dirty memory")
		}
	}
	if a.Used() != 20 {
		t.Fatalf("used = %d", a.Used())
	}
	// Oversized allocations get their own block.
	big := a.Alloc(1024)
	if len(big) != 1024 {
		t.Fatal("big alloc wrong size")
	}
	// Writing to the end of a block must not clobber the next allocation.
	var prev []byte
	for i := 0; i < 100; i++ {
		s := a.Alloc(7)
		if prev != nil {
			prev[6] = 1
			if s[0] != 0 {
				t.Fatal("allocations overlap")
			}
		}
		prev = s
	}
}

func TestFixedFieldRoundtrip(t *testing.T) {
	b := make([]byte, 64)
	PutBool(b, 0, true)
	PutI32(b, 1, -123456)
	PutI64(b, 5, math.MinInt64+7)
	PutF64(b, 13, -math.Pi)
	if !GetBool(b, 0) || GetI32(b, 1) != -123456 || GetI64(b, 5) != math.MinInt64+7 || GetF64(b, 13) != -math.Pi {
		t.Fatal("fixed field roundtrip failed")
	}
}

func TestStringFieldRoundtrip(t *testing.T) {
	if err := quick.Check(func(a, b string) bool {
		buf := AppendString(nil, a)
		buf = AppendString(buf, b)
		if GetString(buf, 0) != a {
			return false
		}
		off := SkipStrings(buf, 0, 1)
		return GetString(buf, off) == b
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutOffsets(t *testing.T) {
	// key: i64, str, i32; payload: f64, str, bool
	l := NewLayout([]Field{
		{Kind: kI64, Key: true},
		{Kind: kStr, Key: true},
		{Kind: kI32, Key: true},
		{Kind: kF64},
		{Kind: kStr},
		{Kind: kBool},
	})
	if l.KeyFixedWidth != 12 || l.PayloadFixedWidth != 9 {
		t.Fatalf("widths: key %d payload %d", l.KeyFixedWidth, l.PayloadFixedWidth)
	}
	if l.FixedOff[0] != 0 || l.FixedOff[2] != 8 || l.VarIdx[1] != 0 {
		t.Fatalf("key offsets wrong: %v %v", l.FixedOff, l.VarIdx)
	}
	if l.FixedOff[3] != 0 || l.FixedOff[5] != 8 || l.VarIdx[4] != 0 {
		t.Fatalf("payload offsets wrong: %v %v", l.FixedOff, l.VarIdx)
	}
	if !l.HasVarKey() || l.KeyVarCount != 1 || l.PayloadVarCount != 1 {
		t.Fatal("var counts wrong")
	}
}

func TestRowScratchPackUnpack(t *testing.T) {
	s := NewRowScratch(12, 8)
	s.Prepare(3)
	for i := 0; i < 3; i++ {
		PutI64(s.Row(i), 4+0, int64(100+i))
		PutI32(s.Row(i), 4+8, int32(i))
		s.AppendKeyString(i, fmt.Sprintf("key-%d", i))
		s.SealKey(i)
		PutF64(s.Row(i), s.PayloadOff(i)+0, float64(i)*1.5)
		s.AppendPayloadString(i, fmt.Sprintf("pay-%d", i))
	}
	for i := 0; i < 3; i++ {
		row := s.Row(i)
		key := RowKey(row)
		if GetI64(row, 4) != int64(100+i) || GetI32(row, 4+8) != int32(i) {
			t.Fatalf("fixed key fields row %d", i)
		}
		if GetString(row, KeyStringOff(row, 12, 0)) != fmt.Sprintf("key-%d", i) {
			t.Fatalf("key string row %d", i)
		}
		if GetF64(row, RowPayloadOff(row)) != float64(i)*1.5 {
			t.Fatalf("payload fixed row %d", i)
		}
		if GetString(row, PayloadStringOff(row, 8, 0)) != fmt.Sprintf("pay-%d", i) {
			t.Fatalf("payload string row %d", i)
		}
		if len(key) != 12+4+len("key-0") {
			t.Fatalf("key len %d", len(key))
		}
	}
	// Prepare must reset for reuse.
	s.Prepare(2)
	if RowKeyLen(s.Row(0)) != 12 {
		t.Fatal("prepare did not reset key length")
	}
}

func TestRowScratchGrowth(t *testing.T) {
	s := NewRowScratch(8, 0)
	for n := 1; n <= 2048; n *= 4 {
		s.Prepare(n)
		for i := 0; i < n; i++ {
			PutI64(s.Row(i), 4, int64(i))
			s.SealKey(i)
		}
		for i := 0; i < n; i++ {
			if GetI64(s.Row(i), 4) != int64(i) {
				t.Fatalf("n=%d row %d corrupted", n, i)
			}
		}
	}
}

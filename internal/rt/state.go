package rt

import "inkfuse/internal/types"

// Suboperator runtime state objects (paper §IV-C, Fig 8). During query setup
// the engine allocates one state object per suboperator that needs one and
// wires the same objects into every execution backend, which is what makes
// it safe for the hybrid backend to switch between compiled code and
// pre-generated primitives mid-query: all persistent query state lives here.

// ConstState resolves a query constant (e.g. the 42 in `x + 42`).
type ConstState struct {
	Kind types.Kind
	B    bool
	I32  int32
	I64  int64
	F64  float64
	Str  string
}

// ConstBool builds a bool constant state.
func ConstBool(v bool) *ConstState { return &ConstState{Kind: types.Bool, B: v} }

// ConstI32 builds an int32 constant state (kind may be Int32 or Date).
func ConstI32(k types.Kind, v int32) *ConstState { return &ConstState{Kind: k, I32: v} }

// ConstI64 builds an int64 constant state.
func ConstI64(v int64) *ConstState { return &ConstState{Kind: types.Int64, I64: v} }

// ConstF64 builds a float64 constant state.
func ConstF64(v float64) *ConstState { return &ConstState{Kind: types.Float64, F64: v} }

// ConstStr builds a string constant state.
func ConstStr(v string) *ConstState { return &ConstState{Kind: types.String, Str: v} }

// RowLayoutState parameterizes the packed-row builders (MakeRow/Seal) of one
// key+payload packing chain. Per-worker RowScratch instances are keyed by the
// identity of this object.
type RowLayoutState struct {
	KeyFixed     int
	PayloadFixed int
}

// OffsetState resolves a byte offset inside a packed row (key packing and
// unpacking, aggregate slots). Offsets are runtime parameters so that the
// pack/unpack suboperators stay enumerable (paper §IV-D).
type OffsetState struct {
	Off    int
	Layout *RowLayoutState // set for pack statements; nil for unpack/agg slots
}

// VarSlotState resolves a variable-size (string) slot inside a packed row:
// the slot is the VarIdx-th length-prefixed string after FixedWidth fixed
// bytes of its region.
type VarSlotState struct {
	FixedWidth int
	VarIdx     int
}

// MergeOp combines one aggregate slot of two group rows when per-worker
// pre-aggregation tables are merged after a parallel build pipeline.
type MergeOp uint8

const (
	// MergeSumI64 adds int64 slots (SUM(int), COUNT, COUNT-IF).
	MergeSumI64 MergeOp = iota
	// MergeSumF64 adds float64 slots.
	MergeSumF64
	// MergeMinF64 / MergeMaxF64 / MergeMinI32 / MergeMaxI32 keep the extremum.
	MergeMinF64
	MergeMaxF64
	MergeMinI32
	MergeMaxI32
)

// AggMerge describes how to merge one aggregate slot.
type AggMerge struct {
	Op  MergeOp
	Off int // offset inside the payload region
}

// AggTableState wires an aggregation into the generated code. Workers create
// private pre-aggregation instances (morsel-driven parallel aggregation);
// the scheduler merges them into Global when the build pipeline finishes.
type AggTableState struct {
	Init   []byte // payload template for new groups
	Shards int
	Merge  []AggMerge

	// SizeHint is the scheduler's cardinality estimate for one worker's share
	// of the build (morsel size clamped by the source row count). NewInstance
	// pre-sizes the shard bucket arrays from it so the batched path never
	// resizes while holding a shard lock mid-chunk.
	SizeHint int

	// Partitions > 0 marks an exchange-partitioned build (DESIGN.md §15): the
	// build pipeline reads one morsel per partition from an ExchangeRead
	// source and every worker writes straight into its partition of Parted —
	// no per-worker instances, no thread-local pre-aggregation, no merging.
	Partitions int

	Global *AggTable            // set by the scheduler after merging
	Parted *PartitionedAggTable // set by the scheduler before a partitioned build
}

// Reset drops the merged result and the per-run size hint, making the owning
// plan reusable for another execution. Partitioned states get a fresh empty
// partitioned table (mirroring JoinTableState.Reset): the table instance is
// wired into the plan before execution, not created by the scheduler.
func (s *AggTableState) Reset() {
	s.Global = nil
	if s.Partitions > 0 {
		s.Parted = NewPartitionedAggTable(s.Init, s.Partitions)
	} else {
		s.Parted = nil
	}
	s.SizeHint = 0
}

// Ready reports whether the build produced a readable table (the AggRead
// source's precondition).
func (s *AggTableState) Ready() bool { return s.Global != nil || s.Parted != nil }

// Snapshot returns all group rows of the built table, whichever variant the
// execution produced.
func (s *AggTableState) Snapshot() [][]byte {
	if s.Parted != nil {
		return s.Parted.Snapshot()
	}
	return s.Global.Snapshot()
}

// Groups returns the number of groups in the built table.
func (s *AggTableState) Groups() int {
	if s.Parted != nil {
		return s.Parted.Groups()
	}
	return s.Global.Groups()
}

// NewInstance creates a fresh table for one worker.
func (s *AggTableState) NewInstance() *AggTable {
	t := NewAggTable(s.Init, s.Shards)
	// Pre-size before a budget is attached: like the initial bucket arrays,
	// the estimate-driven capacity is uncharged; only demand growth is.
	t.Reserve(s.SizeHint)
	return t
}

// MergeInto folds all groups of src into dst using the merge spec. Creation
// extras beyond the init template (preserved original key strings, §IV-D
// collations) are carried over from the source group.
func (s *AggTableState) MergeInto(dst, src *AggTable) {
	for _, row := range src.Snapshot() {
		key := RowKey(row)
		seed := row[RowPayloadOff(row)+len(s.Init):]
		drow := dst.FindOrCreateSeed(key, Hash64(key), seed)
		s.mergePayload(drow, row)
	}
}

// mergePayload folds one source group row's aggregate slots into dst's.
//
//inkfuse:hotpath
func (s *AggTableState) mergePayload(drow, row []byte) {
	dOff := RowPayloadOff(drow)
	sOff := RowPayloadOff(row)
	for _, m := range s.Merge {
		do, so := dOff+m.Off, sOff+m.Off
		switch m.Op {
		case MergeSumI64:
			PutI64(drow, do, GetI64(drow, do)+GetI64(row, so))
		case MergeSumF64:
			PutF64(drow, do, GetF64(drow, do)+GetF64(row, so))
		case MergeMinF64:
			PutF64(drow, do, min(GetF64(drow, do), GetF64(row, so)))
		case MergeMaxF64:
			PutF64(drow, do, max(GetF64(drow, do), GetF64(row, so)))
		case MergeMinI32:
			PutI32(drow, do, min(GetI32(drow, do), GetI32(row, so)))
		case MergeMaxI32:
			PutI32(drow, do, max(GetI32(drow, do), GetI32(row, so)))
		}
	}
}

// JoinTableState wires a join hash table into the generated code. Exactly one
// of Table (sharded, shared-build) and Parted (exchange-partitioned,
// single-writer per partition) is set; Partitions > 0 selects the latter.
type JoinTableState struct {
	Table *JoinTable

	// Partitions > 0 marks an exchange-partitioned build (DESIGN.md §15); it
	// must equal the routing ExchangeState's partition count (VerifyPlan
	// enforces the agreement before execution).
	Partitions int
	Parted     *PartitionedJoinTable
}

// Reset replaces the sealed table with a fresh empty one of the same layout,
// making the owning plan reusable for another execution.
func (s *JoinTableState) Reset() {
	if s.Partitions > 0 {
		s.Parted = NewPartitionedJoinTable(s.Partitions)
		return
	}
	s.Table = NewJoinTable(s.Table.ShardCount())
}

// Index returns the probe-side surface of whichever table variant this state
// carries; generated probe/prefetch code works against it so probing is
// identical for partitioned and sharded builds.
//
//inkfuse:hotpath
func (s *JoinTableState) Index() JoinIndex {
	if s.Parted != nil {
		return s.Parted
	}
	return s.Table
}

// SetBudget charges the active table variant's allocations to the budget.
func (s *JoinTableState) SetBudget(b *MemBudget) {
	if s.Parted != nil {
		s.Parted.SetBudget(b)
		return
	}
	s.Table.SetBudget(b)
}

// Seal freezes the active table variant for probing.
func (s *JoinTableState) Seal() {
	if s.Parted != nil {
		s.Parted.Seal()
		return
	}
	s.Table.Seal()
}

// Rows returns the number of build rows in the active table variant.
func (s *JoinTableState) Rows() int {
	if s.Parted != nil {
		return s.Parted.Rows()
	}
	return s.Table.Rows()
}

// LikeState wires a compiled LIKE matcher into the generated code.
type LikeState struct {
	M *LikeMatcher
}

// InListState wires a set of strings for IN (...) predicates.
type InListState struct {
	Set map[string]bool
}

// NewInList builds an InListState from the member strings.
func NewInList(members ...string) *InListState {
	s := &InListState{Set: make(map[string]bool, len(members))}
	for _, m := range members {
		s.Set[m] = true
	}
	return s
}

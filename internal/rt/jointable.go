package rt

import (
	"bytes"
	"encoding/binary"
	"sync"
)

// JoinTable is the join hash table. Unlike AggTable it stores duplicate keys
// (paper §IV-E). The build phase appends packed rows under shard locks; Seal
// freezes the table into lock-free chained buckets for probing.
type JoinTable struct {
	shards    []joinShard
	shardMask uint64
	sealed    bool

	// Build-side bloom/tag filter, built at Seal: one byte per bucket-class,
	// sized to ≥2 bytes per build row, indexed by hash bits disjoint from both
	// the shard dispatch (h>>56) and the per-shard bucket index (low bits).
	// Each byte is an 8-way tag block — a probe whose tag bit is clear is a
	// definite miss and never touches bucket or row memory (selective joins:
	// most probes end here).
	filter []byte
	fmask  uint64
}

// bloomTag picks the in-byte tag bit from hash bits unused by shard and
// bucket addressing.
//
//inkfuse:hotpath
func bloomTag(h uint64) byte { return 1 << ((h >> 40) & 7) }

type joinShard struct {
	mu      sync.Mutex
	rows    [][]byte
	hashes  []uint64
	arena   *Arena
	budget  *MemBudget
	buckets []int32 // entry index + 1; 0 = empty
	next    []int32 // chain: entry index + 1; 0 = end
	mask    uint64
}

// NewJoinTable creates an empty join table.
func NewJoinTable(shardCount int) *JoinTable {
	if shardCount <= 0 {
		shardCount = 16
	}
	sc := 1
	for sc < shardCount {
		sc <<= 1
	}
	t := &JoinTable{shards: make([]joinShard, sc), shardMask: uint64(sc - 1)}
	for i := range t.shards {
		t.shards[i].arena = NewArena(0)
	}
	return t
}

// ShardCount reports the table's shard-array size (always a power of two).
func (t *JoinTable) ShardCount() int { return len(t.shards) }

// SetBudget charges this table's future allocations (arena blocks, entry
// bookkeeping, seal-time bucket arrays) to the query budget. Call before the
// build pipeline inserts.
func (t *JoinTable) SetBudget(b *MemBudget) {
	if b == nil {
		return
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.budget = b
		s.arena.SetBudget(b)
	}
}

// Insert adds a packed row (key blob + payload blob) to the table. Safe for
// concurrent use during the build pipeline.
//
//inkfuse:hotpath
func (t *JoinTable) Insert(key, payload []byte, h uint64) {
	s := &t.shards[(h>>56)&t.shardMask]
	s.mu.Lock()
	// Deferred so a memory-budget panic from the arena cannot strand the
	// shard lock while the scheduler drains the remaining workers.
	defer s.mu.Unlock()
	s.budget.Charge(entryOverhead)
	row := s.arena.Alloc(4 + len(key) + len(payload))
	binary.LittleEndian.PutUint32(row, uint32(len(key)))
	copy(row[4:], key)
	copy(row[4+len(key):], payload)
	s.rows = append(s.rows, row)   //inklint:allow alloc — amortized — shard entry arrays double
	s.hashes = append(s.hashes, h) //inklint:allow alloc — amortized — shard entry arrays double
}

// Seal builds the probe-side bucket arrays and the build-side bloom/tag
// filter. Must be called after the build pipeline completes and before any
// Lookup.
func (t *JoinTable) Seal() {
	total := 0
	for i := range t.shards {
		s := &t.shards[i]
		n := len(s.rows)
		total += n
		cap := uint64(16)
		for cap < uint64(2*n) {
			cap <<= 1
		}
		s.budget.Charge(int64(cap)*4 + int64(n)*4)
		s.buckets = make([]int32, cap)
		s.next = make([]int32, n)
		s.mask = cap - 1
		for e := 0; e < n; e++ {
			i := s.hashes[e] & s.mask
			s.next[e] = s.buckets[i]
			s.buckets[i] = int32(e + 1)
		}
	}
	fcap := uint64(64)
	for fcap < uint64(2*total) && fcap < maxBloomBytes {
		fcap <<= 1
	}
	t.shards[0].budget.Charge(int64(fcap))
	t.filter = make([]byte, fcap)
	t.fmask = fcap - 1
	for i := range t.shards {
		for _, h := range t.shards[i].hashes {
			t.filter[(h>>16)&t.fmask] |= bloomTag(h)
		}
	}
	t.sealed = true
}

// maxBloomBytes caps the filter at 64 MiB; past that the tag density is low
// enough that a bigger filter stops paying for its cache footprint.
const maxBloomBytes = 1 << 26

// MayContain consults the bloom/tag filter: false means no build row can
// match a key with this hash (no false negatives). The table must be sealed.
//
//inkfuse:hotpath
func (t *JoinTable) MayContain(h uint64) bool {
	return t.filter[(h>>16)&t.fmask]&bloomTag(h) != 0
}

// Rows returns the number of build rows.
func (t *JoinTable) Rows() int {
	n := 0
	for i := range t.shards {
		n += len(t.shards[i].rows)
	}
	return n
}

// MatchIter iterates over the build rows matching one probe key. The zero
// value is exhausted. It is a value type so probing allocates nothing.
type MatchIter struct {
	shard *joinShard
	at    int32 // entry index + 1; 0 = end
	hash  uint64
	key   []byte
}

// Lookup starts a match iteration for a probe key. The table must be sealed.
//
//inkfuse:hotpath
func (t *JoinTable) Lookup(key []byte, h uint64) MatchIter {
	s := &t.shards[(h>>56)&t.shardMask]
	return MatchIter{shard: s, at: s.buckets[h&s.mask], hash: h, key: key}
}

// Next returns the next matching build row, or nil when exhausted.
//
//inkfuse:hotpath
func (it *MatchIter) Next() []byte {
	for it.at != 0 {
		e := it.at - 1
		it.at = it.shard.next[e]
		if it.shard.hashes[e] == it.hash && bytes.Equal(RowKey(it.shard.rows[e]), it.key) {
			return it.shard.rows[e]
		}
	}
	return nil
}

// Touch reads the bucket head and first chained row header for a key without
// resolving matches. The ROF backend issues Touch over a staged chunk before
// probing, pulling the relevant cache lines in with many independent loads
// (the prefetch staging point of Relaxed Operator Fusion).
//
//inkfuse:hotpath
func (t *JoinTable) Touch(key []byte, h uint64) byte {
	// The filter line is the first stage: a definite miss never pulls bucket
	// or row cache lines, so staged prefetching only streams memory that the
	// probe pass will actually walk.
	acc := t.filter[(h>>16)&t.fmask]
	if acc&bloomTag(h) == 0 {
		return acc
	}
	s := &t.shards[(h>>56)&t.shardMask]
	b := s.buckets[h&s.mask]
	if b != 0 {
		e := b - 1
		// Touch the chain entry and the first bytes of the row; returning the
		// byte keeps the loads alive.
		return s.rows[e][0] ^ byte(s.hashes[e])
	}
	return acc
}

// Exists reports whether any build row matches the key (semi joins).
//
//inkfuse:hotpath
func (t *JoinTable) Exists(key []byte, h uint64) bool {
	it := t.Lookup(key, h)
	return it.Next() != nil
}

package rt

import (
	"bytes"
	"encoding/binary"
)

// LocalAggTable is a bounded, lock-free pre-aggregation table owned by one
// worker for one aggregation state. High-locality group-bys (TPC-H Q1's four
// groups) resolve almost every lookup here — no shard dispatch, no mutex, no
// contention — and the accumulated groups are flushed (merged) into the
// worker's backing sharded AggTable at morsel boundaries or on overflow.
//
// Group rows are packed into one fixed-capacity flat buffer that is never
// reallocated: rows handed out by FindOrCreate stay valid for the rest of the
// chunk (the aggregate-update primitives write into them in place), so the
// buffer must not move under them. When the buffer or the group budget is
// exhausted, FindOrCreate reports a miss and the caller routes the key to the
// backing table's batched path instead; flushes happen between chunks at the
// earliest (MaybeFlush) and at every morsel boundary (Flush), never mid-chunk.
//
// The table is adaptive: if after a warm-up the hit ratio stays low (a
// high-cardinality key like Q13's custkey, where pre-aggregation only doubles
// the hashing work), it disables itself for the rest of the pipeline.
type LocalAggTable struct {
	st      *AggTableState
	backing *AggTable

	buckets []int32 // entry index + 1; 0 = empty
	hashes  []uint64
	rows    [][]byte
	buf     []byte // fixed-capacity row storage; never reallocated

	probes   int64
	hits     int64
	disabled bool

	// overflow records that a lookup since the last flush bounced off a full
	// table, with ovProbes/ovHits snapshotting the counters at that moment;
	// flushProbes/flushHits snapshot them at the last flush. MaybeFlush judges
	// the hit ratio over the responsive window alone — the probes between the
	// last flush and the overflow, while the table could still absorb keys.
	// Everything after the overflow is a forced miss and says nothing about
	// whether the keys repeat.
	overflow    bool
	ovProbes    int64
	ovHits      int64
	flushProbes int64
	flushHits   int64
}

const (
	localAggBuckets = 16384   // bucket slots; ≥4x max groups keeps probes short
	localAggGroups  = 4096    // max resident groups before lookups overflow
	localAggBytes   = 1 << 19 // row storage; bounded per worker, outside MemBudget
	// Adaptive disable: after this many probes, a hit ratio below the
	// threshold means the keys don't repeat within a morsel and local
	// pre-aggregation is pure overhead.
	localAggMinProbes = 4096
	localAggHitRatio  = 0.5
)

// NewLocalAggTable creates a local table that flushes into backing.
func NewLocalAggTable(st *AggTableState, backing *AggTable) *LocalAggTable {
	return &LocalAggTable{
		st:      st,
		backing: backing,
		buckets: make([]int32, localAggBuckets),
		hashes:  make([]uint64, 0, localAggGroups),
		rows:    make([][]byte, 0, localAggGroups),
		buf:     make([]byte, 0, localAggBytes),
	}
}

// Disabled reports whether the adaptive policy has turned the table off;
// callers then route whole chunks straight to the backing batched path.
func (l *LocalAggTable) Disabled() bool { return l.disabled }

// Hits returns how many lookups were absorbed locally (an existing local
// group, no shard-table work at all).
func (l *LocalAggTable) Hits() int64 { return l.hits }

// FindOrCreate resolves one key against the local table. hit reports an
// existing local group; ok=false means the table is full (or disabled) and
// the caller must resolve the key against the backing table instead. The
// returned row stays valid until the next Flush.
//
//inkfuse:hotpath
func (l *LocalAggTable) FindOrCreate(key []byte, h uint64, seed []byte) (row []byte, hit, ok bool) {
	if l.disabled {
		return nil, false, false
	}
	l.probes++
	mask := uint64(len(l.buckets) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		b := l.buckets[i]
		if b == 0 {
			size := 4 + len(key) + len(l.st.Init) + len(seed)
			if len(l.rows) >= localAggGroups || len(l.buf)+size > cap(l.buf) {
				if !l.overflow {
					l.overflow = true
					l.ovProbes, l.ovHits = l.probes, l.hits
				}
				return nil, false, false
			}
			off := len(l.buf)
			l.buf = l.buf[:off+size]
			r := l.buf[off : off+size : off+size]
			binary.LittleEndian.PutUint32(r, uint32(len(key)))
			copy(r[4:], key)
			copy(r[4+len(key):], l.st.Init)
			copy(r[4+len(key)+len(l.st.Init):], seed)
			l.hashes = append(l.hashes, h) //inklint:allow alloc — flat local buffers capped at maxLocalGroups, reused across morsels
			l.rows = append(l.rows, r)     //inklint:allow alloc — flat local buffers capped at maxLocalGroups, reused across morsels
			l.buckets[i] = int32(len(l.rows))
			return r, false, true
		}
		e := b - 1
		if l.hashes[e] == h && bytes.Equal(RowKey(l.rows[e]), key) {
			l.hits++
			return l.rows[e], true, true
		}
	}
}

// Flush merges every local group into the backing shard table and resets the
// local table. It must only run at a morsel boundary (rows handed out during
// the current chunk become stale). Returns the number of group rows spilled.
// After the warm-up the adaptive policy may disable the table permanently for
// this worker/pipeline.
//
//inkfuse:hotpath
func (l *LocalAggTable) Flush() int64 {
	n := l.drain()
	if !l.disabled && l.probes >= localAggMinProbes &&
		float64(l.hits) < localAggHitRatio*float64(l.probes) {
		l.disabled = true
	}
	return n
}

// MaybeFlush runs the between-chunk adaptive policy. A no-op until a lookup
// has bounced off a full table; then, if the hit ratio over the responsive
// window (the probes before the table filled) shows the keys repeat
// (clustered streams like lineitems of one order, or a join output's
// duplicated probe keys), the table drains and keeps absorbing into fresh
// capacity — while a non-repeating stream disables the table on the spot
// instead of waiting for a morsel boundary that a single-morsel pipeline
// never reaches. Safe only between chunks (like Flush, draining invalidates
// handed-out rows). Returns the number of group rows spilled.
//
//inkfuse:hotpath
func (l *LocalAggTable) MaybeFlush() int64 {
	if l.disabled || !l.overflow {
		return 0
	}
	ip, ih := l.ovProbes-l.flushProbes, l.ovHits-l.flushHits
	if l.probes >= localAggMinProbes && float64(ih) < localAggHitRatio*float64(ip) {
		l.disabled = true
	}
	return l.drain()
}

// drain merges every local group into the backing shard table and resets the
// row storage, leaving the adaptive counters' interval snapshot behind.
//
//inkfuse:hotpath
func (l *LocalAggTable) drain() int64 {
	n := int64(len(l.rows))
	if n > 0 {
		initLen := len(l.st.Init)
		for ri, row := range l.rows {
			key := RowKey(row)
			seed := row[RowPayloadOff(row)+initLen:]
			drow := l.backing.FindOrCreateSeed(key, l.hashes[ri], seed)
			l.st.mergePayload(drow, row)
		}
		for i := range l.buckets {
			l.buckets[i] = 0
		}
		l.hashes = l.hashes[:0]
		l.rows = l.rows[:0]
		l.buf = l.buf[:0]
	}
	l.overflow = false
	l.flushProbes, l.flushHits = l.probes, l.hits
	return n
}

package rt

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func TestLikeMatcherCases(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"abc", "abc", true},
		{"abc", "abcd", false},
		{"abc", "ab", false},
		{"abc%", "abc", true},
		{"abc%", "abcdef", true},
		{"abc%", "xabc", false},
		{"%abc", "abc", true},
		{"%abc", "xyzabc", true},
		{"%abc", "abcx", false},
		{"%abc%", "xxabcxx", true},
		{"%abc%", "ab", false},
		{"a%c", "abbbc", true},
		{"a%c", "ac", true},
		{"a%c", "acx", false},
		{"%special%requests%", "the special deposit requests sleep", true},
		{"%special%requests%", "requests special", false}, // wrong order
		{"PROMO%", "PROMO BRUSHED TIN", true},
		{"PROMO%", "STANDARD PROMO TIN", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"a_c", "abbc", false},
		{"_", "x", true},
		{"_", "", false},
		{"_", "xy", false},
		{"%", "", true},
		{"%", "anything", true},
		{"%%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"a%b%a", "aba", true},
		{"a%b%a", "aXbXa", true},
		{"a%b%a", "ab", false},
		{"%a%a%", "aa", true},
		{"%a%a%", "a", false},
	}
	for _, c := range cases {
		m := NewLikeMatcher(c.pattern)
		if got := m.Match(c.s); got != c.want {
			t.Errorf("LIKE %q on %q: got %v want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// likeToRegexp builds the reference matcher for the property test.
func likeToRegexp(pattern string) *regexp.Regexp {
	var b strings.Builder
	b.WriteString("^")
	for _, r := range pattern {
		switch r {
		case '%':
			b.WriteString("(?s).*")
		case '_':
			b.WriteString("(?s).")
		default:
			b.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	b.WriteString("$")
	return regexp.MustCompile(b.String())
}

func TestLikeMatcherAgainstRegexp(t *testing.T) {
	alphabet := []byte("ab%_")
	f := func(pat8, s8 []uint8) bool {
		var pb, sb strings.Builder
		for _, x := range pat8 {
			pb.WriteByte(alphabet[int(x)%len(alphabet)])
		}
		for _, x := range s8 {
			// Subject strings contain only literals.
			sb.WriteByte(alphabet[int(x)%2])
		}
		pat, s := pb.String(), sb.String()
		m := NewLikeMatcher(pat)
		return m.Match(s) == likeToRegexp(pat).MatchString(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLikePatternAccessor(t *testing.T) {
	if NewLikeMatcher("a%b").Pattern() != "a%b" {
		t.Fatal("pattern accessor")
	}
}

func TestInListState(t *testing.T) {
	s := NewInList("AIR", "AIR REG")
	if !s.Set["AIR"] || !s.Set["AIR REG"] || s.Set["TRUCK"] {
		t.Fatal("in-list membership wrong")
	}
}

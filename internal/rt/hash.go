// Package rt implements the engine's runtime system: the objects that
// generated code interacts with through suboperator state (paper Fig 8).
// This covers hash tables for aggregations and joins (with collision
// resolution moved *into* the table, paper §IV-D), packed row layouts,
// key-packing scratch space, and the LIKE matcher.
//
// Nothing in this package participates in code generation; it is linked into
// both the JIT-compiled programs and the pre-generated vectorized primitives,
// which is what allows the hybrid backend to switch between them mid-query.
package rt

import "encoding/binary"

// Hash64 hashes a key blob. It is a small wyhash-style mixer over 8-byte
// words: cheap on short packed keys and with good diffusion for open
// addressing.
//
//inkfuse:hotpath
func Hash64(key []byte) uint64 {
	const (
		k0 = 0x9e3779b97f4a7c15
		k1 = 0xbf58476d1ce4e5b9
		k2 = 0x94d049bb133111eb
	)
	h := uint64(len(key))*k0 + k2
	for len(key) >= 8 {
		w := binary.LittleEndian.Uint64(key)
		h = mix64(h^w) * k1
		key = key[8:]
	}
	if len(key) > 0 {
		var w uint64
		for i := len(key) - 1; i >= 0; i-- {
			w = w<<8 | uint64(key[i])
		}
		h = mix64(h^w) * k0
	}
	return mix64(h)
}

//inkfuse:hotpath
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

package rt

import (
	"testing"

	"inkfuse/internal/types"
)

func TestConstStateBuilders(t *testing.T) {
	if c := ConstBool(true); c.Kind != types.Bool || !c.B {
		t.Fatal("bool const")
	}
	if c := ConstI32(types.Date, 42); c.Kind != types.Date || c.I32 != 42 {
		t.Fatal("date const")
	}
	if c := ConstI64(-7); c.Kind != types.Int64 || c.I64 != -7 {
		t.Fatal("i64 const")
	}
	if c := ConstF64(1.5); c.Kind != types.Float64 || c.F64 != 1.5 {
		t.Fatal("f64 const")
	}
	if c := ConstStr("x"); c.Kind != types.String || c.Str != "x" {
		t.Fatal("str const")
	}
}

func TestAggTableStateInstance(t *testing.T) {
	st := &AggTableState{Init: []byte{1, 2, 3}, Shards: 4}
	a := st.NewInstance()
	b := st.NewInstance()
	if a == b {
		t.Fatal("instances must be distinct")
	}
	row := a.FindOrCreate([]byte("k"), Hash64([]byte("k")))
	p := row[RowPayloadOff(row):]
	if p[0] != 1 || p[1] != 2 || p[2] != 3 {
		t.Fatal("payload init template not applied")
	}
}

func TestMergeAllOps(t *testing.T) {
	// One slot per merge op, exercised through MergeInto. As in the engine,
	// the init template carries the extremum sentinels.
	init := make([]byte, 6*8)
	PutF64(init, 16, 1e308)  // min f64
	PutF64(init, 24, -1e308) // max f64
	PutI32(init, 32, 1<<31-1)
	PutI32(init, 40, -(1 << 31))
	st := &AggTableState{Init: init, Shards: 1, Merge: []AggMerge{
		{Op: MergeSumI64, Off: 0},
		{Op: MergeSumF64, Off: 8},
		{Op: MergeMinF64, Off: 16},
		{Op: MergeMaxF64, Off: 24},
		{Op: MergeMinI32, Off: 32},
		{Op: MergeMaxI32, Off: 40},
	}}
	mk := func(i64 int64, f64, mnF, mxF float64, mnI, mxI int32) *AggTable {
		tbl := st.NewInstance()
		row := tbl.FindOrCreate([]byte("g"), Hash64([]byte("g")))
		off := RowPayloadOff(row)
		PutI64(row, off, i64)
		PutF64(row, off+8, f64)
		PutF64(row, off+16, mnF)
		PutF64(row, off+24, mxF)
		PutI32(row, off+32, mnI)
		PutI32(row, off+40, mxI)
		return tbl
	}
	g := st.NewInstance()
	st.MergeInto(g, mk(3, 1.5, 5, 5, 5, 5))
	st.MergeInto(g, mk(4, 2.5, 2, 9, 2, 9))
	row := g.FindOrCreate([]byte("g"), Hash64([]byte("g")))
	off := RowPayloadOff(row)
	if GetI64(row, off) != 7 || GetF64(row, off+8) != 4.0 {
		t.Fatal("sum merges wrong")
	}
	if GetF64(row, off+16) != 2 || GetF64(row, off+24) != 9 {
		t.Fatal("f64 extrema merges wrong")
	}
	if GetI32(row, off+32) != 2 || GetI32(row, off+40) != 9 {
		t.Fatal("i32 extrema merges wrong")
	}
}
